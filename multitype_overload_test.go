package melody_test

// Money conservation across concurrent multi-type runs under overload:
// three task types share one funded ledger while bid storms race auction
// closes, invalid bids are refused, and every season settles. Whatever
// the interleaving, the shared ledger must conserve money exactly and
// leave escrow empty — the invariant the HTTP-level overload scenarios
// (internal/loadgen) assert through the serving stack, checked here at
// the engine layer where the races are tightest. Run under -race.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"melody"
	"melody/internal/verify"
)

func TestMultiTypeConcurrentRunsConserveMoney(t *testing.T) {
	const (
		seasons    = 3
		workers    = 12
		goroutines = 8
		bidsPerG   = 40
		budget     = 150.0
	)
	types := []string{"labeling", "sensing", "transcribe"}

	money := melody.NewLedger()
	if _, err := money.Deposit(melody.RequesterAccount, budget*float64(len(types)*seasons), "campaign funding"); err != nil {
		t.Fatal(err)
	}
	configs := make(map[string]melody.PlatformConfig, len(types))
	for _, taskType := range types {
		tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
			InitialMean: 5.5, InitialVar: 2.25,
			Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
			EMPeriod: 10, EMWindow: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		configs[taskType] = melody.PlatformConfig{
			Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
			Estimator: tracker,
			Ledger:    money,
		}
	}
	m, err := melody.NewMultiTypePlatform(configs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]string, workers)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%02d", i)
		if err := m.RegisterWorker(ctx, ids[i]); err != nil {
			t.Fatal(err)
		}
	}

	for season := 1; season <= seasons; season++ {
		var tasks []melody.TypedTask
		budgets := make(map[string]float64, len(types))
		for _, taskType := range types {
			for j := 0; j < 2; j++ {
				tasks = append(tasks, melody.TypedTask{Type: taskType, Task: melody.Task{
					ID: fmt.Sprintf("s%d-%s-t%d", season, taskType, j), Threshold: 10,
				}})
			}
			budgets[taskType] = budget
		}
		if err := m.OpenRun(ctx, tasks, budgets); err != nil {
			t.Fatal(err)
		}

		// The storm: concurrent bidders across every type, a fraction of
		// them submitting disqualified costs (the engine-level analogue of
		// refused load), racing a close that fires partway through. Every
		// bid must resolve to accepted or a clean refusal; nothing may
		// corrupt the shared ledger.
		var accepted, refused atomic.Int64
		var wg sync.WaitGroup
		closeReady := make(chan struct{})
		var once sync.Once
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < bidsPerG; i++ {
					if g == 0 && i == bidsPerG/2 {
						once.Do(func() { close(closeReady) })
					}
					taskType := types[(g+i)%len(types)]
					cost := 1.0 + 0.9*float64(i%10)/10
					if i%7 == 0 {
						cost = 5.0 // disqualified at auction time, accepted at ingest
					}
					err := m.SubmitBid(ctx, ids[(g*bidsPerG+i)%workers], taskType,
						melody.Bid{Cost: cost, Frequency: 1})
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, melody.ErrAuctionClosed),
						errors.Is(err, melody.ErrNoRunOpen):
						refused.Add(1)
					default:
						t.Errorf("season %d bid: %v", season, err)
					}
				}
			}(g)
		}
		// Close mid-storm so late bids race the phase transition.
		<-closeReady
		outcomes, err := m.CloseAuction(ctx)
		if err != nil {
			t.Fatalf("season %d close: %v", season, err)
		}
		wg.Wait()
		if got := accepted.Load() + refused.Load(); got != goroutines*bidsPerG {
			t.Errorf("season %d: %d bids accounted, want %d", season, got, goroutines*bidsPerG)
		}

		for taskType, out := range outcomes {
			for _, a := range out.Assignments {
				if err := m.SubmitScore(ctx, a.WorkerID, taskType, a.TaskID, 6.5); err != nil {
					t.Fatalf("season %d score %s/%s: %v", season, taskType, a.WorkerID, err)
				}
			}
		}
		if err := m.FinishRun(ctx); err != nil {
			t.Fatalf("season %d finish: %v", season, err)
		}

		// The invariants hold between seasons too, not just at the end.
		if err := verify.CheckMoneyConservation(money); err != nil {
			t.Fatalf("season %d: %v", season, err)
		}
		if err := verify.CheckEscrowSettled(money); err != nil {
			t.Fatalf("season %d: %v", season, err)
		}
	}

	// Final books: conservation, settled escrow, and the requester spent no
	// more than the deposits (payments flowed to workers, the rest came
	// back).
	if err := verify.CheckMoneyConservation(money); err != nil {
		t.Error(err)
	}
	if err := verify.CheckEscrowSettled(money); err != nil {
		t.Error(err)
	}
	var workerTotal float64
	for _, ab := range money.Accounts() {
		if ab.Account != melody.RequesterAccount && string(ab.Account) != "escrow" {
			workerTotal += ab.Balance
		}
	}
	funding := budget * float64(len(types)*seasons)
	if requester := money.Balance(melody.RequesterAccount); requester+workerTotal > funding+1e-6 ||
		requester+workerTotal < funding-1e-6 {
		t.Errorf("requester %v + workers %v != funding %v", requester, workerTotal, funding)
	}
}
