package melody

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Tenant control-plane errors, matchable with errors.Is.
var (
	// ErrQuotaExceeded rejects an OpenRun that would push a tenant past
	// its configured budget quota or run-count cap. Unlike ErrOverloaded
	// the condition is not transient — it clears only when the policy is
	// raised or an epoch boundary resets the per-epoch ledger — so clients
	// must not blindly retry.
	ErrQuotaExceeded = errors.New("melody: tenant quota exceeded")
	// ErrTenantMismatch rejects a request that names two different
	// tenants at once (for example a transport header and a request body
	// that disagree); neither may silently win.
	ErrTenantMismatch = errors.New("melody: tenant mismatch")
)

// quotaTol absorbs float rounding when comparing committed spend against a
// quota, mirroring the ledger's feasibility tolerance.
const quotaTol = 1e-9

// TenantPolicy is the control-plane configuration for one tenant: how much
// budget it may commit, how many runs it may open, and how much of the
// auction-close kernel it is entitled to under contention.
//
// The zero value is the most restrictive policy (no budget, although runs
// with budget 0 still open); start from UnlimitedTenantPolicy when only
// some fields should bind.
type TenantPolicy struct {
	// BudgetQuota caps the tenant's lifetime committed spend: settled
	// auction payments across its finished runs plus the budget escrowed
	// by its open run. Negative disables the cap; zero refuses every open
	// with a positive budget.
	BudgetQuota float64
	// EpochBudgetQuota caps committed spend within one settlement epoch
	// and resets every time the epoch settler pays out. Without epoch
	// settlement it never resets and binds like a second lifetime cap.
	// Same sign convention as BudgetQuota.
	EpochBudgetQuota float64
	// MaxRuns caps how many runs the tenant may open over its lifetime;
	// <= 0 disables the cap.
	MaxRuns int
	// Weight is the tenant's share in weighted-fair auction-close
	// admission when SchedulerConfig.CloseConcurrency gates contention;
	// <= 0 selects the default weight 1.
	Weight float64
}

// UnlimitedTenantPolicy returns the permissive base policy: no budget
// caps, no run cap, default weight. Equivalent to having no policy at all.
func UnlimitedTenantPolicy() TenantPolicy {
	return TenantPolicy{BudgetQuota: -1, EpochBudgetQuota: -1}
}

// validate rejects policies whose numbers cannot be compared against
// spend (NaN or infinite quotas, NaN weight).
func (p TenantPolicy) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"budget quota", p.BudgetQuota}, {"epoch budget quota", p.EpochBudgetQuota}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("melody: invalid tenant policy: %s must be finite, got %v", f.name, f.v)
		}
	}
	if math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
		return fmt.Errorf("melody: invalid tenant policy: weight must be finite, got %v", p.Weight)
	}
	return nil
}

// weight returns the effective close-scheduling weight.
func (p TenantPolicy) weight() float64 {
	if p.Weight > 0 {
		return p.Weight
	}
	return 1
}

// TenantStatus is one tenant's control-plane view: its policy (if any)
// and its spend ledger as tracked by the scheduler.
type TenantStatus struct {
	// Tenant names the tenant.
	Tenant string
	// HasPolicy reports whether a policy was explicitly set; without one
	// the tenant is unconstrained (Policy is the zero value and must be
	// ignored).
	HasPolicy bool
	// Policy is the installed policy; meaningful only when HasPolicy.
	Policy TenantPolicy
	// Spent is the tenant's settled spend: the summed auction payments of
	// its finished runs.
	Spent float64
	// EpochSpent is the settled spend within the current settlement
	// epoch; equal to Spent when epoch settlement is off.
	EpochSpent float64
	// Escrowed is the budget committed by the tenant's open run — an
	// upper bound on its outstanding escrow — or 0 when no run is open.
	Escrowed float64
	// RunsOpened counts the runs the tenant has ever opened, including
	// the currently open one.
	RunsOpened int
	// OpenRun is the tenant's open run ID, empty when none.
	OpenRun string
	// Weight is the effective close-scheduling weight (1 without a
	// policy).
	Weight float64
}

// tenantState is the scheduler's per-tenant accounting record, guarded by
// RunScheduler.mu.
type tenantState struct {
	policy     TenantPolicy
	hasPolicy  bool
	spent      float64 // settled spend across finished runs
	epochSpent float64 // settled spend in the current settlement epoch
	escrowed   float64 // budget committed by the open run, 0 when none
	runsOpened int     // runs ever opened, including the open one
}

// tenantStateLocked returns (creating on first use) a tenant's accounting
// record; callers hold s.mu.
func (s *RunScheduler) tenantStateLocked(tenant string) *tenantState {
	ts := s.tstates[tenant]
	if ts == nil {
		ts = &tenantState{}
		s.tstates[tenant] = ts
	}
	return ts
}

// SetTenantPolicy installs or replaces a tenant's policy. The tenant does
// not need to have opened a run — quotas are usually provisioned before
// first use — and lowering a quota below the tenant's outstanding
// commitment never fails: the open run settles normally and only future
// opens are refused.
func (s *RunScheduler) SetTenantPolicy(ctx context.Context, tenant string, p TenantPolicy) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if tenant == "" {
		return errors.New("melody: empty tenant")
	}
	if err := p.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantStateLocked(tenant)
	ts.policy, ts.hasPolicy = p, true
	return nil
}

// TenantPolicy returns a tenant's installed policy and whether one exists.
func (s *RunScheduler) TenantPolicy(tenant string) (TenantPolicy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ts := s.tstates[tenant]; ts != nil && ts.hasPolicy {
		return ts.policy, true
	}
	return TenantPolicy{}, false
}

// TenantStatus returns one tenant's control-plane status, or
// ErrUnknownTenant for a tenant with neither a policy nor any run
// history.
func (s *RunScheduler) TenantStatus(tenant string) (TenantStatus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ts := s.tstates[tenant]
	if ts == nil && s.tenants[tenant] == nil {
		return TenantStatus{}, fmt.Errorf("%w: %s", ErrUnknownTenant, tenant)
	}
	return s.tenantStatusLocked(tenant, ts), nil
}

// TenantStatuses returns every known tenant's status (policy-only tenants
// included), sorted by tenant.
func (s *RunScheduler) TenantStatuses() []TenantStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make(map[string]bool, len(s.tstates)+len(s.tenants))
	for t := range s.tstates {
		names[t] = true
	}
	for t := range s.tenants {
		names[t] = true
	}
	out := make([]TenantStatus, 0, len(names))
	for t := range names {
		out = append(out, s.tenantStatusLocked(t, s.tstates[t]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// tenantStatusLocked assembles one tenant's status; callers hold s.mu.
func (s *RunScheduler) tenantStatusLocked(tenant string, ts *tenantState) TenantStatus {
	st := TenantStatus{Tenant: tenant, Weight: 1, OpenRun: s.tenantOpen[tenant]}
	if ts != nil {
		st.HasPolicy, st.Policy = ts.hasPolicy, ts.policy
		st.Spent, st.EpochSpent = ts.spent, ts.epochSpent
		st.Escrowed, st.RunsOpened = ts.escrowed, ts.runsOpened
		if ts.hasPolicy {
			st.Weight = ts.policy.weight()
		}
	}
	return st
}

// closeWeight returns a tenant's effective close-scheduling weight.
func (s *RunScheduler) closeWeight(tenant string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ts := s.tstates[tenant]; ts != nil && ts.hasPolicy {
		return ts.policy.weight()
	}
	return 1
}

// admitRunLocked enforces the tenant's policy against a prospective open
// and, on success, commits the run to the tenant's ledger (escrowed
// budget + run count). Callers hold s.mu and roll back with
// releaseRunLocked if the platform later rejects the open.
func (s *RunScheduler) admitRunLocked(tenant string, budget float64) error {
	ts := s.tenantStateLocked(tenant)
	if ts.hasPolicy {
		p := ts.policy
		if p.MaxRuns > 0 && ts.runsOpened >= p.MaxRuns {
			return fmt.Errorf("%w: tenant %q reached its run cap %d", ErrQuotaExceeded, tenant, p.MaxRuns)
		}
		if p.BudgetQuota >= 0 && ts.spent+budget > p.BudgetQuota+quotaTol {
			return fmt.Errorf("%w: tenant %q budget quota %g (spent %g, requested %g)",
				ErrQuotaExceeded, tenant, p.BudgetQuota, ts.spent, budget)
		}
		if p.EpochBudgetQuota >= 0 && ts.epochSpent+budget > p.EpochBudgetQuota+quotaTol {
			return fmt.Errorf("%w: tenant %q epoch budget quota %g (epoch spent %g, requested %g)",
				ErrQuotaExceeded, tenant, p.EpochBudgetQuota, ts.epochSpent, budget)
		}
	}
	ts.escrowed = budget
	ts.runsOpened++
	return nil
}

// releaseRunLocked rolls back admitRunLocked after a failed platform
// open; callers hold s.mu.
func (s *RunScheduler) releaseRunLocked(tenant string) {
	if ts := s.tstates[tenant]; ts != nil {
		ts.escrowed = 0
		ts.runsOpened--
	}
}

// settleRunLocked moves a finished run's actual spend from escrow to the
// settled ledgers; callers hold s.mu.
func (s *RunScheduler) settleRunLocked(tenant string, spend float64) {
	if ts := s.tstates[tenant]; ts != nil {
		ts.escrowed = 0
		ts.spent += spend
		ts.epochSpent += spend
	}
}

// resetEpochSpend zeroes every tenant's per-epoch spend ledger at an
// epoch boundary.
func (s *RunScheduler) resetEpochSpend() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range s.tstates {
		ts.epochSpent = 0
	}
}
