package melody

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

func TestWorkerRegistryShardRounding(t *testing.T) {
	cases := []struct{ n, want int }{
		{-1, DefaultRegistryShards},
		{0, DefaultRegistryShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{17, 32},
		{64, 64},
	}
	for _, c := range cases {
		if got := NewWorkerRegistry(c.n).Shards(); got != c.want {
			t.Errorf("NewWorkerRegistry(%d).Shards() = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestWorkerRegistrySemantics(t *testing.T) {
	r := NewWorkerRegistry(4)
	if r.Has("w1") {
		t.Error("empty registry has w1")
	}
	if !r.Register("w1") {
		t.Error("first Register(w1) = false, want true")
	}
	if r.Register("w1") {
		t.Error("second Register(w1) = true, want false (no-op)")
	}
	if !r.Has("w1") || r.Has("w2") {
		t.Errorf("membership wrong: Has(w1)=%v Has(w2)=%v", r.Has("w1"), r.Has("w2"))
	}
	r.Register("w2")
	if got := r.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	want := []string{"w1", "w2"}
	got := r.All()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("All() = %v, want %v", got, want)
	}
}

// TestWorkerRegistryConcurrent hammers one registry from many goroutines
// with overlapping ID ranges: exactly one registration per ID may win, the
// final membership must be complete, and readers race the writers without
// tripping the race detector.
func TestWorkerRegistryConcurrent(t *testing.T) {
	const goroutines, ids = 8, 500
	r := NewWorkerRegistry(8)
	wins := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				id := fmt.Sprintf("w%03d", i)
				if r.Register(id) {
					wins[g]++
				}
				_ = r.Has(id)
				if i%100 == 0 {
					_ = r.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != ids {
		t.Errorf("total winning registrations = %d, want %d (duplicate wins)", total, ids)
	}
	if got := r.Len(); got != ids {
		t.Errorf("Len() = %d, want %d", got, ids)
	}
	all := r.All()
	if len(all) != ids || !sort.StringsAreSorted(all) {
		t.Errorf("All() returned %d ids (sorted=%v), want %d sorted", len(all), sort.StringsAreSorted(all), ids)
	}
}
