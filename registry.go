package melody

import (
	"sort"
	"sync"
	"sync/atomic"
)

// WorkerRegistry is a striped set of registered worker IDs. The set is
// split across shards (a power of two) selected by a consistent-hash ring
// over an FNV-1a hash of the worker ID, so concurrent registrations and
// membership checks contend only when they land on the same stripe —
// registration and quality-lookup traffic never queues behind a
// platform-wide lock, and a registry can be shared by every tenant
// platform of a RunScheduler without becoming the bottleneck the single
// `map[string]bool` was.
//
// The shard count is elastic: Resize grows or shrinks the stripe set
// online with no stop-the-world rebuild. Placement goes through a ring of
// virtual points per shard, so a resize moves only the IDs whose ring
// owner changed (≈ the changed capacity fraction) instead of rehashing
// everything modulo-style. During a migration readers consult the old
// owner before the new one and movers insert-then-delete, so membership
// answers never flicker; writers re-validate their target stripe under
// its lock and retry if the ring moved beneath them. 32 shards is the
// default — enough to spread a GOMAXPROCS' worth of ingest goroutines
// with a few KB of overhead, and membership checks are read-locked so
// only same-shard writers ever collide.
type WorkerRegistry struct {
	ring     atomic.Pointer[workerRing]
	resizeMu sync.Mutex // serializes Resize; at most one migration at a time
}

// workerRing is one immutable placement epoch: the shard set plus the
// sorted virtual points that map IDs onto it. During a resize the
// migrating ring keeps prev pointing at the epoch being drained.
type workerRing struct {
	shards []*registryShard
	points []ringPoint
	prev   *workerRing
}

type ringPoint struct {
	hash  uint64
	shard uint32
}

type registryShard struct {
	mu  sync.RWMutex
	ids map[string]bool
}

// DefaultRegistryShards is the shard count used when NewWorkerRegistry is
// given n <= 0.
const DefaultRegistryShards = 32

// registryVirtualNodes is the number of ring points per shard. 64 points
// keeps the load spread within a few percent of even while a 64-shard
// ring still resolves owners in a ~12-step binary search.
const registryVirtualNodes = 64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 is FNV-1a over the worker ID, inlined to avoid the hash.Hash
// allocation on the hot membership path.
func hash64(id string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return h
}

// pointHash places virtual point v of a shard ordinal on the ring. The
// label depends only on (shard, v), so a retained shard keeps its points
// across resizes and only the new (or dropped) shards' arcs move.
func pointHash(shard, v uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range [2]uint32{shard, v} {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(w >> (8 * i)))
			h *= fnvPrime64
		}
	}
	return h
}

// roundShards rounds a requested shard count up to the next power of two
// so arc sizes stay balanced under repeated doubling; n <= 0 selects
// DefaultRegistryShards.
func roundShards(n int) int {
	if n <= 0 {
		n = DefaultRegistryShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

// buildPoints returns the sorted ring for n shards.
func buildPoints(n int) []ringPoint {
	pts := make([]ringPoint, 0, n*registryVirtualNodes)
	for s := 0; s < n; s++ {
		for v := 0; v < registryVirtualNodes; v++ {
			pts = append(pts, ringPoint{hash: pointHash(uint32(s), uint32(v)), shard: uint32(s)})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].hash < pts[j].hash })
	return pts
}

// owner returns the shard owning an ID under this ring: the first virtual
// point at or clockwise-after the ID's hash.
func (w *workerRing) owner(id string) *registryShard {
	h := hash64(id)
	pts := w.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return w.shards[pts[i].shard]
}

// NewWorkerRegistry returns an empty registry with n shards, rounded up to
// the next power of two. n <= 0 selects DefaultRegistryShards.
func NewWorkerRegistry(n int) *WorkerRegistry {
	size := roundShards(n)
	shards := make([]*registryShard, size)
	for i := range shards {
		shards[i] = &registryShard{ids: make(map[string]bool)}
	}
	r := &WorkerRegistry{}
	r.ring.Store(&workerRing{shards: shards, points: buildPoints(size)})
	return r
}

// Register adds a worker ID to the set. Registering an existing worker is
// a no-op; Register reports whether the ID was new.
func (r *WorkerRegistry) Register(id string) bool {
	for {
		ring := r.ring.Load()
		if ring.prev != nil {
			// Mid-migration the ID may still live in its old stripe; treat
			// that as registered rather than creating a duplicate (the
			// migration scan will relocate it).
			if old := ring.prev.owner(id); old != ring.owner(id) {
				old.mu.RLock()
				exists := old.ids[id]
				old.mu.RUnlock()
				if exists {
					return false
				}
			}
		}
		s := ring.owner(id)
		s.mu.Lock()
		// Re-validate under the stripe lock: a concurrent Resize may have
		// published a new ring between the load and the lock, in which
		// case this stripe may no longer own the ID.
		if cur := r.ring.Load(); cur != ring && cur.owner(id) != s {
			s.mu.Unlock()
			continue
		}
		if s.ids[id] {
			s.mu.Unlock()
			return false
		}
		s.ids[id] = true
		s.mu.Unlock()
		return true
	}
}

// Has reports whether a worker ID is registered. During a migration the
// old owner is consulted first; paired with the mover's insert-then-
// delete order this can never miss a registered ID. A miss observed
// through a ring that was replaced mid-lookup retries against the current
// epoch, so a relocation concurrent with the lookup cannot hide an ID.
func (r *WorkerRegistry) Has(id string) bool {
	for {
		ring := r.ring.Load()
		if ring.prev != nil {
			old := ring.prev.owner(id)
			old.mu.RLock()
			exists := old.ids[id]
			old.mu.RUnlock()
			if exists {
				return true
			}
		}
		s := ring.owner(id)
		s.mu.RLock()
		exists := s.ids[id]
		s.mu.RUnlock()
		if exists {
			return true
		}
		if r.ring.Load() == ring {
			return false
		}
	}
}

// stripes returns every shard reachable from a ring: its own plus, during
// a migration, the previous epoch's shards being drained (deduplicated —
// retained shards are shared structs across epochs).
func (w *workerRing) stripes() []*registryShard {
	if w.prev == nil {
		return w.shards
	}
	out := make([]*registryShard, len(w.shards), len(w.shards)+len(w.prev.shards))
	copy(out, w.shards)
	seen := make(map[*registryShard]bool, len(out))
	for _, s := range out {
		seen[s] = true
	}
	for _, s := range w.prev.shards {
		if !seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of registered workers. Mid-migration an ID being
// relocated may transiently count in both stripes; the snapshot is
// per-shard consistent, exactly like the map iteration it replaces.
func (r *WorkerRegistry) Len() int {
	ring := r.ring.Load()
	if ring.prev == nil {
		n := 0
		for _, s := range ring.shards {
			s.mu.RLock()
			n += len(s.ids)
			s.mu.RUnlock()
		}
		return n
	}
	// Relocations duplicate IDs transiently; count distinct.
	seen := make(map[string]bool)
	for _, s := range ring.stripes() {
		s.mu.RLock()
		for id := range s.ids {
			seen[id] = true
		}
		s.mu.RUnlock()
	}
	return len(seen)
}

// All returns every registered worker ID in sorted order. The snapshot is
// per-shard consistent: IDs registered concurrently with the scan may or
// may not appear, exactly like the map iteration it replaces.
func (r *WorkerRegistry) All() []string {
	ring := r.ring.Load()
	migrating := ring.prev != nil
	var seen map[string]bool
	if migrating {
		seen = make(map[string]bool)
	}
	ids := make([]string, 0, 64)
	for _, s := range ring.stripes() {
		s.mu.RLock()
		for id := range s.ids {
			if migrating {
				if seen[id] {
					continue
				}
				seen[id] = true
			}
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Shards returns the registry's current shard count (a power of two).
func (r *WorkerRegistry) Shards() int { return len(r.ring.Load().shards) }

// Resize rescales the registry to n shards (rounded up to a power of two;
// n <= 0 selects the default) and returns the resulting shard count and
// how many IDs moved. The migration is online: a transitional ring is
// published first so new registrations land on their final stripes, then
// each old stripe is drained by moving only the IDs whose ring owner
// changed — insert into the new stripe, then delete from the old — while
// readers and writers proceed under per-stripe locks. Concurrent Resize
// calls serialize.
func (r *WorkerRegistry) Resize(n int) (shards, moved int) {
	r.resizeMu.Lock()
	defer r.resizeMu.Unlock()
	size := roundShards(n)
	old := r.ring.Load()
	if size == len(old.shards) {
		return size, 0
	}
	next := make([]*registryShard, size)
	copy(next, old.shards[:min(size, len(old.shards))])
	for i := len(old.shards); i < size; i++ {
		next[i] = &registryShard{ids: make(map[string]bool)}
	}
	mig := &workerRing{shards: next, points: buildPoints(size), prev: old}
	r.ring.Store(mig)

	for _, src := range old.shards {
		src.mu.RLock()
		var relocate []string
		for id := range src.ids {
			if mig.owner(id) != src {
				relocate = append(relocate, id)
			}
		}
		src.mu.RUnlock()
		for _, id := range relocate {
			dst := mig.owner(id)
			dst.mu.Lock()
			dst.ids[id] = true
			dst.mu.Unlock()
			src.mu.Lock()
			delete(src.ids, id)
			src.mu.Unlock()
			moved++
		}
	}
	r.ring.Store(&workerRing{shards: next, points: mig.points})
	return size, moved
}

// RegistryInfo describes the registry after an elastic resize.
type RegistryInfo struct {
	// Shards is the registry's shard count after rounding.
	Shards int
	// Workers is the number of registered workers.
	Workers int
	// Moved is how many worker IDs changed stripes during the resize.
	Moved int
}
