package melody

import (
	"sort"
	"sync"
)

// WorkerRegistry is a striped set of registered worker IDs. The set is
// split across a fixed number of shards (a power of two) selected by an
// FNV-1a hash of the worker ID, so concurrent registrations and membership
// checks contend only when they land on the same stripe — registration
// and quality-lookup traffic never queues behind a platform-wide lock,
// and a registry can be shared by every tenant platform of a RunScheduler
// without becoming the bottleneck the single `map[string]bool` was.
//
// The shard count is fixed at construction: resizing a striped map online
// would require a global lock, exactly what the stripes exist to avoid.
// 32 shards is the default — enough to spread a GOMAXPROCS' worth of
// ingest goroutines with a few KB of overhead, and membership checks are
// read-locked so only same-shard writers ever collide.
type WorkerRegistry struct {
	shards []registryShard
	mask   uint32
}

type registryShard struct {
	mu  sync.RWMutex
	ids map[string]bool
}

// DefaultRegistryShards is the shard count used when NewWorkerRegistry is
// given n <= 0.
const DefaultRegistryShards = 32

// NewWorkerRegistry returns an empty registry with n shards, rounded up to
// the next power of two so shard selection is a mask, not a modulo.
// n <= 0 selects DefaultRegistryShards.
func NewWorkerRegistry(n int) *WorkerRegistry {
	if n <= 0 {
		n = DefaultRegistryShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	r := &WorkerRegistry{shards: make([]registryShard, size), mask: uint32(size - 1)}
	for i := range r.shards {
		r.shards[i].ids = make(map[string]bool)
	}
	return r
}

// shard returns the stripe for a worker ID (FNV-1a, inlined to avoid the
// hash.Hash allocation on the hot membership path).
func (r *WorkerRegistry) shard(id string) *registryShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &r.shards[h&r.mask]
}

// Register adds a worker ID to the set. Registering an existing worker is
// a no-op; Register reports whether the ID was new.
func (r *WorkerRegistry) Register(id string) bool {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ids[id] {
		return false
	}
	s.ids[id] = true
	return true
}

// Has reports whether a worker ID is registered.
func (r *WorkerRegistry) Has(id string) bool {
	s := r.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ids[id]
}

// Len returns the number of registered workers.
func (r *WorkerRegistry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.ids)
		s.mu.RUnlock()
	}
	return n
}

// All returns every registered worker ID in sorted order. The snapshot is
// per-shard consistent: IDs registered concurrently with the scan may or
// may not appear, exactly like the map iteration it replaces.
func (r *WorkerRegistry) All() []string {
	ids := make([]string, 0, r.Len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id := range s.ids {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Shards returns the registry's shard count (a power of two).
func (r *WorkerRegistry) Shards() int { return len(r.shards) }
