package melody

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownTaskType is returned for operations on an unconfigured task
// type.
var ErrUnknownTaskType = errors.New("melody: unknown task type")

// TypedTask is a task tagged with its type (e.g. "labeling", "sensing").
// Section 3.1 of the paper scopes each mechanism run to homogeneous tasks
// and notes the model "can be easily extended to the scenario with multiple
// types of tasks by designing the incentive mechanism for each individual
// type respectively" — MultiTypePlatform is that extension: one independent
// Platform (auction + quality estimator) per type.
type TypedTask struct {
	Type string
	Task Task
}

// MultiTypePlatform routes runs, bids, scores and quality queries to
// per-type Platforms. A worker has an independent quality estimate for
// every task type, reflecting that expertise does not transfer across
// heterogeneous work.
type MultiTypePlatform struct {
	platforms map[string]*Platform
	types     []string
}

// NewMultiTypePlatform builds one Platform per configured type. Estimators
// must not be shared between types (each platform owns its estimator's
// state); the constructor cannot verify this, so callers must pass a fresh
// estimator per type.
func NewMultiTypePlatform(configs map[string]PlatformConfig) (*MultiTypePlatform, error) {
	if len(configs) == 0 {
		return nil, errors.New("melody: no task types configured")
	}
	m := &MultiTypePlatform{platforms: make(map[string]*Platform, len(configs))}
	for taskType, cfg := range configs {
		if taskType == "" {
			return nil, errors.New("melody: empty task type")
		}
		p, err := NewPlatform(cfg)
		if err != nil {
			return nil, fmt.Errorf("melody: type %q: %w", taskType, err)
		}
		m.platforms[taskType] = p
		m.types = append(m.types, taskType)
	}
	sort.Strings(m.types)
	return m, nil
}

// Types returns the configured task types in sorted order.
func (m *MultiTypePlatform) Types() []string {
	return append([]string(nil), m.types...)
}

// platform resolves a task type.
func (m *MultiTypePlatform) platform(taskType string) (*Platform, error) {
	p, ok := m.platforms[taskType]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTaskType, taskType)
	}
	return p, nil
}

// RegisterWorker registers the worker for every task type.
func (m *MultiTypePlatform) RegisterWorker(ctx context.Context, workerID string) error {
	for _, taskType := range m.types {
		if err := m.platforms[taskType].RegisterWorker(ctx, workerID); err != nil {
			return err
		}
	}
	return nil
}

// OpenRun opens one run per task type present in tasks, each with its own
// budget. Types without tasks stay idle; every listed type must have a
// budget entry.
func (m *MultiTypePlatform) OpenRun(ctx context.Context, tasks []TypedTask, budgets map[string]float64) error {
	byType := make(map[string][]Task)
	for _, t := range tasks {
		if _, ok := m.platforms[t.Type]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownTaskType, t.Type)
		}
		byType[t.Type] = append(byType[t.Type], t.Task)
	}
	if len(byType) == 0 {
		return errors.New("melody: no tasks to open")
	}
	// Validate budgets first so a partial failure cannot leave some types
	// opened and others not.
	for taskType := range byType {
		if _, ok := budgets[taskType]; !ok {
			return fmt.Errorf("melody: no budget for task type %q", taskType)
		}
	}
	opened := make([]string, 0, len(byType))
	for _, taskType := range m.types {
		typeTasks, ok := byType[taskType]
		if !ok {
			continue
		}
		if err := m.platforms[taskType].OpenRun(ctx, typeTasks, budgets[taskType]); err != nil {
			// Roll back nothing: runs already opened stay open and the
			// caller sees which type failed. Validation above makes this
			// reachable only through per-task validation errors.
			return fmt.Errorf("melody: type %q: %w", taskType, err)
		}
		opened = append(opened, taskType)
	}
	_ = opened
	return nil
}

// SubmitBid records a worker's bid for one task type's open run.
func (m *MultiTypePlatform) SubmitBid(ctx context.Context, workerID, taskType string, bid Bid) error {
	p, err := m.platform(taskType)
	if err != nil {
		return err
	}
	return p.SubmitBid(ctx, workerID, bid)
}

// CloseAuction closes every open per-type auction and returns the outcomes
// keyed by type. Types with no open run are skipped.
//
// The per-type closes run concurrently — each type is an independent
// Platform with its own lock and auction kernel, so the winner-selection
// work parallelizes across types. Results are then folded in sorted type
// order, which keeps the returned map and error exactly what the old
// sequential loop produced: outcomes for the types preceding the first
// failing type, and that type's wrapped error.
func (m *MultiTypePlatform) CloseAuction(ctx context.Context) (map[string]*Outcome, error) {
	type closeResult struct {
		out *Outcome
		err error
	}
	results := make([]closeResult, len(m.types))
	var wg sync.WaitGroup
	for i, taskType := range m.types {
		wg.Add(1)
		go func(i int, p *Platform) {
			defer wg.Done()
			out, err := p.CloseAuction(ctx)
			results[i] = closeResult{out: out, err: err}
		}(i, m.platforms[taskType])
	}
	wg.Wait()
	outcomes := make(map[string]*Outcome)
	for i, taskType := range m.types {
		res := results[i]
		if res.err != nil {
			if errors.Is(res.err, ErrNoRunOpen) {
				continue
			}
			return outcomes, fmt.Errorf("melody: type %q: %w", taskType, res.err)
		}
		outcomes[taskType] = res.out
	}
	if len(outcomes) == 0 {
		return nil, ErrNoRunOpen
	}
	return outcomes, nil
}

// SubmitScore records a score for a worker's answer within one type's run.
func (m *MultiTypePlatform) SubmitScore(ctx context.Context, workerID, taskType, taskID string, score float64) error {
	p, err := m.platform(taskType)
	if err != nil {
		return err
	}
	return p.SubmitScore(ctx, workerID, taskID, score)
}

// FinishRun finishes every type's open run, updating per-type quality.
func (m *MultiTypePlatform) FinishRun(ctx context.Context) error {
	finished := 0
	for _, taskType := range m.types {
		err := m.platforms[taskType].FinishRun(ctx)
		switch {
		case err == nil:
			finished++
		case errors.Is(err, ErrNoRunOpen):
		default:
			return fmt.Errorf("melody: type %q: %w", taskType, err)
		}
	}
	if finished == 0 {
		return ErrNoRunOpen
	}
	return nil
}

// Quality returns the worker's quality estimate for one task type.
func (m *MultiTypePlatform) Quality(workerID, taskType string) (float64, error) {
	p, err := m.platform(taskType)
	if err != nil {
		return 0, err
	}
	return p.Quality(workerID)
}
