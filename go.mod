module melody

go 1.22
