package melody

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"melody/internal/core"
	"melody/internal/ledger"
	"melody/internal/obs"
)

// Money-handling re-exports: an optional double-entry ledger can be
// attached to a Platform so every run's budget is escrowed and every
// payment settles to a worker balance.
type (
	// Ledger is the double-entry ledger type.
	Ledger = ledger.Ledger
	// LedgerAccount identifies a ledger account.
	LedgerAccount = ledger.Account
	// EpochSettler batches per-run payments into periodic payout epochs on
	// a shared ledger (see ledger.NewEpochSettler).
	EpochSettler = ledger.EpochSettler
)

// NewEpochSettler returns an epoch settler that drains the payout pool
// every `every` finished runs on the given ledger.
func NewEpochSettler(l *Ledger, every int) *EpochSettler {
	return ledger.NewEpochSettler(l, every)
}

// NewLedger returns an empty ledger. Fund the requester with
// Deposit(RequesterAccount, ...) before opening runs on a ledger-backed
// platform.
func NewLedger() *Ledger { return ledger.New() }

// RequesterAccount is the requester's funding account.
const RequesterAccount = ledger.Requester

// Platform state errors, matchable with errors.Is.
var (
	// ErrRunOpen is returned when an operation requires no open run.
	ErrRunOpen = errors.New("melody: a run is already open")
	// ErrNoRunOpen is returned when an operation requires an open run.
	ErrNoRunOpen = errors.New("melody: no run is open")
	// ErrAuctionClosed is returned when bids arrive after the auction
	// closed.
	ErrAuctionClosed = errors.New("melody: auction already closed")
	// ErrAuctionOpen is returned when scores arrive before the auction
	// closed.
	ErrAuctionOpen = errors.New("melody: auction not closed yet")
	// ErrUnknownWorker is returned for operations on unregistered workers.
	ErrUnknownWorker = errors.New("melody: unknown worker")
	// ErrNotAssigned is returned when a score targets a pair that was never
	// allocated.
	ErrNotAssigned = errors.New("melody: task not assigned to worker")
	// ErrNoForecast is returned when the platform's estimator cannot
	// produce predictive distributions (only the LDS tracker can).
	ErrNoForecast = errors.New("melody: estimator does not support forecasting")
	// ErrOverloaded is returned when the serving front-end sheds a request
	// under admission control: the platform itself never saw it, so the
	// request had no effect and may be retried after the advertised
	// Retry-After delay.
	ErrOverloaded = errors.New("melody: server overloaded")
)

// Forecaster is the optional estimator capability of producing k-step-ahead
// predictive distributions; the LDS QualityTracker implements it.
type Forecaster interface {
	Forecast(workerID string, steps int) (QualityForecast, error)
}

// PlatformConfig assembles a Platform.
type PlatformConfig struct {
	// Auction holds the qualification intervals of the mechanism.
	Auction AuctionConfig
	// Estimator tracks workers' long-term quality. Usually the tracker from
	// NewQualityTracker; any Estimator works.
	Estimator Estimator
	// Ledger optionally settles money for real: OpenRun escrows the budget
	// from the requester account (which must be funded), CloseAuction pays
	// winners from escrow, FinishRun refunds the remainder. Nil disables
	// settlement.
	Ledger *Ledger
	// Settler optionally routes this platform's payments through a shared
	// epoch pool instead of paying workers directly at each auction close;
	// the RunScheduler drains the pool into aggregated payout batches at
	// epoch boundaries. Requires Ledger; nil keeps direct per-run payouts.
	Settler *EpochSettler
	// Registry optionally shares a striped worker registry with other
	// platforms (the RunScheduler gives every tenant platform the same
	// one). Nil gives the platform a private registry.
	Registry *WorkerRegistry
	// Metrics optionally receives the platform's mechanism metrics (auction
	// duration, winners, spent budget, completed runs). Nil disables
	// instrumentation at zero overhead.
	Metrics *obs.Registry
	// Tracer optionally records auction spans. Nil disables tracing.
	Tracer *obs.Tracer
}

// Platform is the paper's crowdsourcing platform: it owns the worker
// registry, runs the per-run reverse auction, collects answer scores and
// updates every worker's quality estimate between runs (the Fig. 2
// workflow). Platform is safe for concurrent use; read-only queries
// (State, Workers, Run, Quality, Forecast) share a read lock, so status
// polls never queue behind bid ingest.
type Platform struct {
	mu      sync.RWMutex
	auction *core.AuctionState
	est     Estimator
	money   *Ledger
	settler *EpochSettler
	run     int
	open    *openRun

	// registry holds the universal worker set behind striped locks, so
	// registration and membership checks never queue behind p.mu (and a
	// RunScheduler can share one registry across every tenant platform).
	registry *WorkerRegistry

	// estMu guards the estimator separately from the run state: Quality
	// and Forecast take only estMu.RLock, so posterior lookups never
	// contend with bid ingest (which holds p.mu but leaves the estimator
	// alone). Lock order: p.mu before estMu; registry stripes innermost.
	estMu sync.RWMutex

	// bidders mirrors the worker set last applied to the auction state, so
	// each CloseAuction feeds the kernel only the run-over-run delta
	// (changed bids or estimates, joins, leaves) instead of the full
	// registry.
	bidders map[string]Worker

	runsCompleted *obs.Counter // nil-safe; nil when PlatformConfig.Metrics is nil
	tracer        *obs.Tracer
}

// openRun is the mutable state of the currently open run.
type openRun struct {
	tasks      []Task
	budget     float64
	bids       map[string]Bid
	outcome    *Outcome
	assigned   map[string]map[string]bool    // worker -> task -> assigned
	scores     map[string][]float64          // worker -> scores this run
	recorded   map[string]map[string]float64 // worker -> task -> accepted score
	settlement *ledger.RunSettlement         // nil when no ledger is attached
}

// RunState is a point-in-time snapshot of where the platform is in the run
// lifecycle, used by networked front-ends to resume after a crash recovery.
type RunState struct {
	// CompletedRuns is the number of finished runs.
	CompletedRuns int
	// Open reports whether a run is currently open.
	Open bool
	// AuctionClosed reports whether the open run's auction has closed.
	AuctionClosed bool
	// Outcome is the open run's allocation; non-nil iff AuctionClosed.
	Outcome *Outcome
}

// State returns the platform's current lifecycle snapshot.
func (p *Platform) State() RunState {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := RunState{CompletedRuns: p.run}
	if p.open != nil {
		st.Open = true
		if p.open.outcome != nil {
			st.AuctionClosed = true
			st.Outcome = p.open.outcome
		}
	}
	return st
}

// NewPlatform constructs a Platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Estimator == nil {
		return nil, errors.New("melody: platform needs an estimator")
	}
	// The platform runs MELODY through the persistent incremental kernel:
	// outcomes are byte-identical to the stateless Auction, but consecutive
	// runs repair the cached worker ranking from the bid delta instead of
	// re-sorting the registry. Outcomes stay independently owned (no arena
	// reuse) because they are stored on the open run and replayed to
	// retried CloseAuction calls.
	state, err := core.NewAuctionState(cfg.Auction, core.AuctionStateOptions{
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Settler != nil && cfg.Ledger == nil {
		return nil, errors.New("melody: epoch settlement needs a ledger")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = NewWorkerRegistry(0)
	}
	return &Platform{
		auction:       state,
		est:           cfg.Estimator,
		money:         cfg.Ledger,
		settler:       cfg.Settler,
		registry:      reg,
		bidders:       make(map[string]Worker),
		runsCompleted: cfg.Metrics.Counter(obs.MetricRunsCompletedTotal, "Completed platform runs."),
		tracer:        cfg.Tracer,
	}, nil
}

// ctxErr reports whether the call should be abandoned before touching
// platform state: a cancelled or expired context fails fast, a nil context
// (tolerated for robustness, like net/http) never does.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// RegisterWorker adds a worker to the universal worker set. Registering an
// existing worker is a no-op.
func (p *Platform) RegisterWorker(ctx context.Context, workerID string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if workerID == "" {
		return errors.New("melody: empty worker ID")
	}
	p.registry.Register(workerID)
	return nil
}

// RegisterWorkerNoCtx is RegisterWorker without a context.
//
// Deprecated: use RegisterWorker with a context.
func (p *Platform) RegisterWorkerNoCtx(workerID string) error {
	return p.RegisterWorker(context.Background(), workerID)
}

// Workers returns the registered worker IDs in sorted order.
func (p *Platform) Workers() []string {
	return p.registry.All()
}

// Registry returns the platform's worker registry (shared when the
// platform was built with PlatformConfig.Registry).
func (p *Platform) Registry() *WorkerRegistry {
	return p.registry
}

// Run returns the number of completed runs.
func (p *Platform) Run() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.run
}

// Quality returns the platform's current quality estimate for the worker.
// The estimator is only read (never advanced), so concurrent Quality calls
// share the estimator's read lock — never p.mu, so a quality poll cannot
// queue behind bid ingest.
func (p *Platform) Quality(workerID string) (float64, error) {
	if !p.registry.Has(workerID) {
		return 0, fmt.Errorf("%w: %s", ErrUnknownWorker, workerID)
	}
	p.estMu.RLock()
	defer p.estMu.RUnlock()
	return p.est.Estimate(workerID), nil
}

// Forecast returns the k-step-ahead predictive distribution of a worker's
// quality, when the platform's estimator supports it (the LDS tracker
// does); otherwise ErrNoForecast.
func (p *Platform) Forecast(workerID string, steps int) (QualityForecast, error) {
	if !p.registry.Has(workerID) {
		return QualityForecast{}, fmt.Errorf("%w: %s", ErrUnknownWorker, workerID)
	}
	f, ok := p.est.(Forecaster)
	if !ok {
		return QualityForecast{}, ErrNoForecast
	}
	p.estMu.RLock()
	defer p.estMu.RUnlock()
	return f.Forecast(workerID, steps)
}

// OpenRun starts a new run: the requester publishes a task set and a
// budget. Bids are accepted until CloseAuction.
//
// OpenRun is idempotent on the run's natural key (the task set plus
// budget): re-opening the currently open run with an identical spec is a
// no-op success, so a client that lost the acknowledgment can safely
// retry. Opening a different spec while a run is open remains ErrRunOpen.
// Distinct runs should therefore use distinct task IDs (the bundled
// requester generates "run<r>-task<j>").
//
// A cancelled or expired ctx fails fast before any state changes; the
// in-memory platform does not block, so ctx otherwise only matters to
// durable backends layered on top (their WAL waits honour the deadline).
func (p *Platform) OpenRun(ctx context.Context, tasks []Task, budget float64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.open != nil {
		if p.open.budget == budget && sameTasks(p.open.tasks, tasks) {
			return nil // retried open of the same run
		}
		return ErrRunOpen
	}
	if len(tasks) == 0 {
		return errors.New("melody: a run needs at least one task")
	}
	if budget < 0 {
		return fmt.Errorf("melody: negative budget %v", budget)
	}
	seen := make(map[string]bool, len(tasks))
	copied := make([]Task, len(tasks))
	for i, t := range tasks {
		if t.ID == "" {
			return errors.New("melody: task with empty ID")
		}
		if seen[t.ID] {
			return fmt.Errorf("melody: duplicate task ID %q", t.ID)
		}
		if !(t.Threshold > 0) {
			return fmt.Errorf("melody: task %q threshold %v must be positive", t.ID, t.Threshold)
		}
		seen[t.ID] = true
		copied[i] = t
	}
	run := &openRun{
		tasks:  copied,
		budget: budget,
		bids:   make(map[string]Bid),
		scores: make(map[string][]float64),
	}
	if p.money != nil && budget > 0 {
		var settlement *ledger.RunSettlement
		var err error
		if p.settler != nil {
			settlement, err = p.money.OpenRunEpoch(p.run+1, budget, p.settler)
		} else {
			settlement, err = p.money.OpenRun(p.run+1, budget)
		}
		if err != nil {
			return fmt.Errorf("melody: escrow run budget: %w", err)
		}
		run.settlement = settlement
	}
	p.open = run
	return nil
}

// OpenRunNoCtx is OpenRun without a context.
//
// Deprecated: use OpenRun with a context.
func (p *Platform) OpenRunNoCtx(tasks []Task, budget float64) error {
	return p.OpenRun(context.Background(), tasks, budget)
}

// sameTasks reports whether two task lists are identical (same IDs and
// thresholds in the same order).
func sameTasks(a, b []Task) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SubmitBid records a worker's bid for the open run. Re-submitting replaces
// the previous bid; only the final bid before CloseAuction counts.
//
// SubmitBid is idempotent on (worker, run): re-submitting the bid already
// on record after the auction closed is a no-op success (the retry of a
// bid whose acknowledgment was lost), while a new or changed bid after the
// close remains ErrAuctionClosed.
func (p *Platform) SubmitBid(ctx context.Context, workerID string, bid Bid) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.submitBidLocked(workerID, bid)
}

// SubmitBidNoCtx is SubmitBid without a context.
//
// Deprecated: use SubmitBid with a context.
func (p *Platform) SubmitBidNoCtx(workerID string, bid Bid) error {
	return p.SubmitBid(context.Background(), workerID, bid)
}

// WorkerBid pairs a worker with a bid, for batch submission.
type WorkerBid struct {
	WorkerID string
	Bid      Bid
}

// SubmitBids submits a whole batch of bids under one lock acquisition,
// reporting each item's outcome in the BatchResult. Item semantics are
// exactly SubmitBid's, including the idempotent-replay rules; a rejected
// item does not affect its neighbours. A cancelled ctx rejects every item
// with the context error before any is applied — batches are all-or-nothing
// with respect to cancellation.
func (p *Platform) SubmitBids(ctx context.Context, bids []WorkerBid) BatchResult {
	errs := make([]error, len(bids))
	if err := ctxErr(ctx); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return NewBatchResult(errs)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, b := range bids {
		errs[i] = p.submitBidLocked(b.WorkerID, b.Bid)
	}
	return NewBatchResult(errs)
}

// SubmitBidsNoCtx is SubmitBids without a context, returning the legacy
// positional error slice.
//
// Deprecated: use SubmitBids with a context.
func (p *Platform) SubmitBidsNoCtx(bids []WorkerBid) []error {
	return p.SubmitBids(context.Background(), bids).Errs()
}

// submitBidLocked is SubmitBid's body; callers hold p.mu.
func (p *Platform) submitBidLocked(workerID string, bid Bid) error {
	if p.open == nil {
		return ErrNoRunOpen
	}
	if !p.registry.Has(workerID) {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, workerID)
	}
	if !(bid.Cost > 0) {
		return fmt.Errorf("melody: bid cost %v must be positive", bid.Cost)
	}
	if bid.Frequency < 1 {
		return fmt.Errorf("melody: bid frequency %d must be at least 1", bid.Frequency)
	}
	if p.open.outcome != nil {
		if prev, ok := p.open.bids[workerID]; ok && prev == bid {
			return nil // retried delivery of the bid that already counted
		}
		return ErrAuctionClosed
	}
	p.open.bids[workerID] = bid
	return nil
}

// CloseAuction ends the bidding phase, runs the mechanism and returns the
// allocation and payment schemes. Workers who did not bid are excluded.
//
// CloseAuction is idempotent: closing an already-closed auction returns
// the original outcome again without re-running the mechanism or settling
// any payment twice, so a retried close after a lost response is safe.
func (p *Platform) CloseAuction(ctx context.Context) (*Outcome, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.open == nil {
		return nil, ErrNoRunOpen
	}
	if p.open.outcome != nil {
		return p.open.outcome, nil // retried close: replay the outcome
	}
	// Feed the incremental kernel this run's bidder delta: new and changed
	// (bid, estimate) pairs re-enter the cached ranking, absent bidders
	// leave it. Delta order does not matter — the kernel's sorted structures
	// are a pure function of the worker multiset.
	var delta core.WorkerDelta
	p.estMu.RLock()
	for id, bid := range p.open.bids {
		w := Worker{ID: id, Bid: bid, Quality: p.est.Estimate(id)}
		if prev, ok := p.bidders[id]; !ok || prev != w {
			delta.Upserts = append(delta.Upserts, w)
		}
	}
	p.estMu.RUnlock()
	for id := range p.bidders {
		if _, ok := p.open.bids[id]; !ok {
			delta.Removes = append(delta.Removes, id)
		}
	}
	if err := p.auction.Apply(delta); err != nil {
		return nil, err
	}
	for _, w := range delta.Upserts {
		p.bidders[w.ID] = w
	}
	for _, id := range delta.Removes {
		delete(p.bidders, id)
	}
	out, err := p.auction.RunMelody(p.open.tasks, p.open.budget)
	if err != nil {
		return nil, err
	}
	if p.open.settlement != nil {
		// Settle every payment from escrow. The mechanism is budget
		// feasible, so this cannot overdraw; an error here indicates a
		// programming bug and aborts the close before state changes.
		for _, a := range out.Assignments {
			if err := p.open.settlement.Pay(LedgerAccount(a.WorkerID), a.Payment, a.TaskID); err != nil {
				return nil, fmt.Errorf("melody: settle payment: %w", err)
			}
		}
	}
	p.open.outcome = out
	p.open.recorded = make(map[string]map[string]float64)
	p.open.assigned = make(map[string]map[string]bool)
	for _, a := range out.Assignments {
		if p.open.assigned[a.WorkerID] == nil {
			p.open.assigned[a.WorkerID] = make(map[string]bool)
		}
		p.open.assigned[a.WorkerID][a.TaskID] = true
	}
	return out, nil
}

// CloseAuctionNoCtx is CloseAuction without a context.
//
// Deprecated: use CloseAuction with a context.
func (p *Platform) CloseAuctionNoCtx() (*Outcome, error) {
	return p.CloseAuction(context.Background())
}

// SubmitScore records the requester's score for a worker's answer to an
// assigned task. Each assigned (worker, task) pair takes at most one score.
//
// SubmitScore is idempotent on (worker, task, run): re-submitting the
// score already on record for the pair is a no-op success (a retried
// delivery), while a different value for an already-scored pair — or a
// pair that was never allocated — is ErrNotAssigned.
func (p *Platform) SubmitScore(ctx context.Context, workerID, taskID string, score float64) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.submitScoreLocked(workerID, taskID, score)
}

// SubmitScoreNoCtx is SubmitScore without a context.
//
// Deprecated: use SubmitScore with a context.
func (p *Platform) SubmitScoreNoCtx(workerID, taskID string, score float64) error {
	return p.SubmitScore(context.Background(), workerID, taskID, score)
}

// TaskScore is one scored assignment, for batch submission.
type TaskScore struct {
	WorkerID string
	TaskID   string
	Score    float64
}

// SubmitScores submits a whole batch of scores under one lock acquisition,
// reporting each item's outcome in the BatchResult. Item semantics are
// exactly SubmitScore's, including the idempotent-replay rules; a rejected
// item does not affect its neighbours. A cancelled ctx rejects every item
// with the context error before any is applied.
func (p *Platform) SubmitScores(ctx context.Context, scores []TaskScore) BatchResult {
	errs := make([]error, len(scores))
	if err := ctxErr(ctx); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return NewBatchResult(errs)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, s := range scores {
		errs[i] = p.submitScoreLocked(s.WorkerID, s.TaskID, s.Score)
	}
	return NewBatchResult(errs)
}

// SubmitScoresNoCtx is SubmitScores without a context, returning the legacy
// positional error slice.
//
// Deprecated: use SubmitScores with a context.
func (p *Platform) SubmitScoresNoCtx(scores []TaskScore) []error {
	return p.SubmitScores(context.Background(), scores).Errs()
}

// submitScoreLocked is SubmitScore's body; callers hold p.mu.
func (p *Platform) submitScoreLocked(workerID, taskID string, score float64) error {
	if p.open == nil {
		return ErrNoRunOpen
	}
	if p.open.outcome == nil {
		return ErrAuctionOpen
	}
	if !p.open.assigned[workerID][taskID] {
		if prev, ok := p.open.recorded[workerID][taskID]; ok {
			if prev == score {
				return nil // retried delivery of the score that already counted
			}
			return fmt.Errorf("%w: worker %s task %s already scored %v (got %v)",
				ErrNotAssigned, workerID, taskID, prev, score)
		}
		return fmt.Errorf("%w: worker %s task %s", ErrNotAssigned, workerID, taskID)
	}
	p.open.assigned[workerID][taskID] = false // consume the slot
	if p.open.recorded[workerID] == nil {
		p.open.recorded[workerID] = make(map[string]float64)
	}
	p.open.recorded[workerID][taskID] = score
	p.open.scores[workerID] = append(p.open.scores[workerID], score)
	return nil
}

// FinishRun ends the run: every registered worker's quality is updated from
// the scores collected this run (an empty set for workers who won nothing),
// and the platform becomes ready for the next OpenRun.
func (p *Platform) FinishRun(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	sp := p.tracer.Start("run.finish")
	defer sp.End()
	p.mu.Lock()
	defer p.mu.Unlock()
	sp.SetRun(p.run + 1)
	if p.open == nil {
		return ErrNoRunOpen
	}
	if p.open.outcome == nil {
		return ErrAuctionOpen
	}
	ids := p.registry.All()
	p.estMu.Lock()
	for _, id := range ids {
		if err := p.est.Observe(id, p.open.scores[id]); err != nil {
			p.estMu.Unlock()
			return fmt.Errorf("melody: update %s: %w", id, err)
		}
	}
	p.estMu.Unlock()
	if p.open.settlement != nil {
		if err := p.open.settlement.Close(); err != nil {
			return fmt.Errorf("melody: refund escrow: %w", err)
		}
	}
	p.run++
	p.open = nil
	p.runsCompleted.Inc()
	return nil
}

// FinishRunNoCtx is FinishRun without a context.
//
// Deprecated: use FinishRun with a context.
func (p *Platform) FinishRunNoCtx() error {
	return p.FinishRun(context.Background())
}
