package melody_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"melody"
)

func snapshotPlatform(t *testing.T) (*melody.Platform, *melody.Ledger) {
	t.Helper()
	ledger := melody.NewLedger()
	if _, err := ledger.Deposit(melody.RequesterAccount, 500, "season funding"); err != nil {
		t.Fatal(err)
	}
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 4},
		EMPeriod: 3, EMWindow: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
		Ledger:    ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, ledger
}

func driveSeason(t *testing.T, p *melody.Platform, runs int) {
	t.Helper()
	ctx := context.Background()
	workers := []string{"ada", "bob", "cyd"}
	for _, id := range workers {
		if err := p.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	latent := map[string]float64{"ada": 8, "bob": 6, "cyd": 4}
	for run := 1; run <= runs; run++ {
		tasks := []melody.Task{
			{ID: fmt.Sprintf("r%d-a", run), Threshold: 11},
			{ID: fmt.Sprintf("r%d-b", run), Threshold: 11},
		}
		if err := p.OpenRun(ctx, tasks, 30); err != nil {
			t.Fatal(err)
		}
		for i, id := range workers {
			if err := p.SubmitBid(ctx, id, melody.Bid{Cost: 1.0 + 0.2*float64(i), Frequency: 2}); err != nil {
				t.Fatal(err)
			}
		}
		out, err := p.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range out.Assignments {
			if err := p.SubmitScore(ctx, a.WorkerID, a.TaskID, latent[a.WorkerID]+0.1*float64(run%3)); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlatformSnapshotRoundTrip is the heart of the storage engine's
// snapshot feature: export a mid-season platform, restore it into a fresh
// one, and demand bit-identical observable state — run counter, workers,
// exact quality floats, exact ledger balances — plus identical behavior on
// the next run.
func TestPlatformSnapshotRoundTrip(t *testing.T) {
	p, ledger := snapshotPlatform(t)
	driveSeason(t, p, 5)

	snap, err := p.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot crosses the storage engine as JSON; round-trip it the
	// same way so the test covers the real encoding path (float64 survives
	// JSON exactly via shortest-representation encoding).
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded melody.PlatformSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	restored, restoredLedger := snapshotPlatform(t)
	if err := restored.RestoreSnapshot(&decoded); err != nil {
		t.Fatal(err)
	}

	if restored.Run() != p.Run() {
		t.Errorf("restored runs = %d, want %d", restored.Run(), p.Run())
	}
	liveWorkers := p.Workers()
	gotWorkers := restored.Workers()
	if len(gotWorkers) != len(liveWorkers) {
		t.Fatalf("restored workers %v, want %v", gotWorkers, liveWorkers)
	}
	for i, id := range liveWorkers {
		if gotWorkers[i] != id {
			t.Fatalf("restored workers %v, want %v", gotWorkers, liveWorkers)
		}
		lq, err := p.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := restored.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if lq != rq {
			t.Errorf("worker %s: restored quality %v != live %v", id, rq, lq)
		}
		lf, err := p.Forecast(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := restored.Forecast(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		if lf.Mean != rf.Mean || lf.Var != rf.Var {
			t.Errorf("worker %s: restored forecast (%v,%v) != live (%v,%v)", id, rf.Mean, rf.Var, lf.Mean, lf.Var)
		}
	}
	for _, acc := range ledger.Accounts() {
		if got := restoredLedger.Balance(acc.Account); got != acc.Balance {
			t.Errorf("account %s: restored balance %v != live %v", acc.Account, got, acc.Balance)
		}
	}

	// Behavioral equivalence: the next run must produce the same outcome on
	// both platforms (same auction inputs, same posterior state).
	driveSeason(t, p, 1)
	driveSeason(t, restored, 1)
	for _, id := range liveWorkers {
		lq, _ := p.Quality(id)
		rq, _ := restored.Quality(id)
		if lq != rq {
			t.Errorf("worker %s: post-restore run diverged: %v vs %v", id, rq, lq)
		}
	}
}

func TestSnapshotStateRejectsMidRun(t *testing.T) {
	p, _ := snapshotPlatform(t)
	ctx := context.Background()
	if err := p.RegisterWorker(ctx, "ada"); err != nil {
		t.Fatal(err)
	}
	if err := p.OpenRun(ctx, []melody.Task{{ID: "t", Threshold: 5}}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotState(); !errors.Is(err, melody.ErrSnapshotMidRun) {
		t.Errorf("mid-run snapshot err = %v, want ErrSnapshotMidRun", err)
	}
}

func TestRestoreSnapshotRequiresFreshPlatform(t *testing.T) {
	p, _ := snapshotPlatform(t)
	driveSeason(t, p, 1)
	snap, err := p.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	used, _ := snapshotPlatform(t)
	driveSeason(t, used, 1)
	if err := used.RestoreSnapshot(snap); err == nil {
		t.Error("restore into a used platform accepted")
	}
	fresh, _ := snapshotPlatform(t)
	wrong := *snap
	wrong.Version = 99
	if err := fresh.RestoreSnapshot(&wrong); err == nil {
		t.Error("restore of unknown snapshot version accepted")
	}
}
