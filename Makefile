GO ?= go

.PHONY: ci vet build test race bench-smoke bench-snapshot chaos-smoke clean

# ci is the tier-1 gate (see ROADMAP.md): everything must pass before a
# change lands.
ci: vet build test race chaos-smoke bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the suite under the race detector; the concurrent paths
# (quality.ObserveBatch, market.RunReplications, experiments.forEachPoint)
# carry differential tests that exercise them.
race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark once — a compile-and-liveness check, not
# a measurement.
bench-smoke:
	$(GO) test . -run '^$$' -bench . -benchtime 1x

# chaos-smoke re-runs the seeded fault-injection suite on its own: the
# chaos harness unit tests plus the 20-run soak season with a mid-season
# kill and WAL recovery (internal/platform/chaos_soak_test.go).
chaos-smoke:
	$(GO) test ./internal/chaos/ ./internal/platform/ -run 'TestChaosSoakSeason|TestTransport|TestMiddleware' -count 1

# bench-snapshot records a full BENCH_<n>.json regression snapshot against
# the latest committed one (see cmd/melody-bench).
bench-snapshot:
	$(GO) run ./cmd/melody-bench -baseline $$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)

clean:
	$(GO) clean ./...
