GO ?= go
# FUZZTIME bounds each fuzz target's smoke run inside ci; raise it for real
# exploration sessions (e.g. make fuzz-smoke FUZZTIME=10m).
FUZZTIME ?= 10s

.PHONY: ci vet build test race verify-props bench-smoke bench-scale-smoke bench-snapshot chaos-smoke fuzz-smoke load-smoke obs-smoke slo-smoke overload-bench-smoke multirun-smoke fairness-smoke clean

# ci is the tier-1 gate (see ROADMAP.md): everything must pass before a
# change lands.
ci: vet build test race verify-props chaos-smoke fuzz-smoke bench-smoke bench-scale-smoke load-smoke obs-smoke slo-smoke overload-bench-smoke multirun-smoke fairness-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order so inter-test state
# dependencies can't hide; the shuffle seed is printed on failure.
test:
	$(GO) test -shuffle=on ./...

# race re-runs the suite under the race detector; the concurrent paths
# (quality.ObserveBatch, market.RunReplications, experiments.forEachPoint)
# carry differential tests that exercise them.
race:
	$(GO) test -race ./...

# verify-props re-runs the mechanism-verification suite on its own: the
# internal/verify checkers' self-tests (truthfulness probes, differential
# oracles, counterexample shrinker) and the property tests that call them
# from internal/core. See TESTING.md for the invariant catalog.
verify-props:
	$(GO) test ./internal/verify/ ./internal/core/ -count 1

# bench-smoke runs every benchmark once — a compile-and-liveness check, not
# a measurement.
bench-smoke:
	$(GO) test . -run '^$$' -bench . -benchtime 1x

# bench-scale-smoke single-shots the n=10^5 auction-scale kernels through
# the real melody-bench harness (full build, stateful kernel, incremental
# churn): a liveness gate for the million-worker auction path without the
# multi-minute n=10^6 kernels. -smoke writes no snapshot.
bench-scale-smoke:
	$(GO) run ./cmd/melody-bench -smoke -filter '^alloc/melody(_state|_inc|_scratch)?/n100000($$|_)'

# chaos-smoke re-runs the seeded fault-injection suite on its own: the
# chaos harness unit tests, the 20-run soak season with a mid-season kill
# and WAL recovery (internal/platform/chaos_soak_test.go), and the
# segmented-engine soaks with mid-segment / mid-rotation / mid-snapshot
# kills and primary-kill replica promotion
# (internal/platform/segmented_soak_test.go).
chaos-smoke:
	$(GO) test ./internal/chaos/ ./internal/platform/ -run 'TestChaosSoakSeason|TestSegmentedChaosSoakSeason|TestReplicaPromotionSoak|TestTransport|TestMiddleware|TestFailpoints' -count 1

# fuzz-smoke gives each native fuzz target a short budget on top of its
# committed seed corpus (testdata/fuzz/ in each package); any crasher is a
# hard failure. See TESTING.md for how to run longer sessions and how to
# promote new corpus entries.
fuzz-smoke:
	$(GO) test ./internal/verify/ -run '^$$' -fuzz '^FuzzMelodyAuction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify/ -run '^$$' -fuzz '^FuzzIncrementalAuction$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eventlog/ -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eventlog/ -run '^$$' -fuzz '^FuzzSegmentHeaderDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/eventlog/ -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/platform/ -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/lds/ -run '^$$' -fuzz '^FuzzKalmanFilter$$' -fuzztime $(FUZZTIME)

# load-smoke drives a short seeded load run through the real serving path
# (loopback HTTP server, WAL group-commit backend, batched bids) and fails
# unless it reports nonzero sustained throughput and shuts down cleanly.
load-smoke:
	$(GO) run ./cmd/melody-load -backend wal -workers 8 -runs 2 -bids-per-worker 4 -batch 4 -seed 1 -check

# slo-smoke is the overload SLO gate (see TESTING.md "The SLO gate"): it
# calibrates the machine's ungated bid capacity, then drives a rated run
# (shedding must be rare) and a 3x-overload run (shedding must engage, every
# run must settle, the money invariants must hold exactly, goroutines must
# drain). All assertions are relative to the calibrated capacity, so the
# gate is meaningful on any machine.
slo-smoke:
	$(GO) run ./cmd/melody-load -scenario slo-smoke -duration 1s

# overload-bench-smoke single-shots the serve/overload kernel family (Poisson
# rated + 3x, flash-crowd burst) through melody-bench: a liveness gate for
# the open-loop overload path. -smoke writes no snapshot.
overload-bench-smoke:
	$(GO) run ./cmd/melody-bench -smoke -filter '^serve/overload'

# obs-smoke boots the real melody-platform binary with -metrics and a WAL,
# drives one complete run over HTTP, and scrapes /metrics + /debug/traces,
# failing unless the documented series and lifecycle spans are present
# (cmd/melody-obs-smoke; no curl needed).
obs-smoke:
	$(GO) run ./cmd/melody-obs-smoke

# multirun-smoke drives the mixed-tenant scenario through the run
# scheduler's full HTTP path: 2 tenants x 4 overlapping runs, once with
# tenants serialized and once concurrent. The scenario fails unless every
# run's outcome is byte-identical across the passes, money is conserved
# exactly with escrow and the epoch pool drained, and the serving stacks
# leak no goroutines.
multirun-smoke:
	$(GO) run ./cmd/melody-load -scenario multirun -tenants 2 -runs 4 -workers-per-tenant 8 -epoch-every 2 -seed 1 -check

# fairness-smoke drives 8 quota-bounded tenants through synchronized close
# volleys behind the weighted-fair gate and fails unless the max/min
# per-tenant median close-latency ratio stays <= 2, every over-quota open is
# refused, spend matches the ledger exactly (including after WAL replay),
# and per-run outcomes are byte-identical to serial execution.
fairness-smoke:
	$(GO) run ./cmd/melody-load -scenario fairness -seed 1 -check

# bench-snapshot records a full BENCH_<n>.json regression snapshot against
# the latest committed one (see cmd/melody-bench). Includes the serve/
# kernels, which re-measure serving-path throughput via internal/loadgen.
bench-snapshot:
	$(GO) run ./cmd/melody-bench -baseline $$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1)

clean:
	$(GO) clean ./...
