package quality

import (
	"math"
	"testing"

	"melody/internal/lds"
	"melody/internal/stats"
)

func testMelodyConfig() MelodyConfig {
	return MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1.0, Gamma: 0.3, Eta: 9.0},
		EMPeriod: 10,
		EMWindow: 60,
		EM:       lds.EMConfig{MaxIter: 15},
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMelodyValidation(t *testing.T) {
	if _, err := NewMelody(MelodyConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := testMelodyConfig()
	cfg.EMPeriod = -1
	if _, err := NewMelody(cfg); err == nil {
		t.Error("negative EM period accepted")
	}
	if _, err := NewMelody(testMelodyConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMelodyInitialEstimate(t *testing.T) {
	m, _ := NewMelody(testMelodyConfig())
	// Unknown worker: a * mu0 = 1.0 * 5.5.
	if got := m.Estimate("new"); !almostEqual(got, 5.5, 1e-12) {
		t.Errorf("initial estimate = %v, want 5.5", got)
	}
	if _, ok := m.Posterior("new"); ok {
		t.Error("unknown worker has a posterior")
	}
}

func TestMelodyObserveMatchesLDSUpdate(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.EMPeriod = 0 // isolate the Kalman update
	m, _ := NewMelody(cfg)
	scores := []float64{6, 7}
	if err := m.Observe("w", scores); err != nil {
		t.Fatal(err)
	}
	want, err := lds.Update(cfg.Params, cfg.Init, scores)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.Posterior("w")
	if !ok {
		t.Fatal("no posterior after observe")
	}
	if !almostEqual(got.Mean, want.Mean, 1e-12) || !almostEqual(got.Var, want.Var, 1e-12) {
		t.Errorf("posterior = %+v, want %+v", got, want)
	}
	if est := m.Estimate("w"); !almostEqual(est, cfg.Params.A*want.Mean, 1e-12) {
		t.Errorf("Estimate = %v, want a*muhat = %v", est, cfg.Params.A*want.Mean)
	}
}

func TestMelodyEmptyObservationDrifts(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.EMPeriod = 0
	m, _ := NewMelody(cfg)
	if err := m.Observe("w", nil); err != nil {
		t.Fatal(err)
	}
	post, _ := m.Posterior("w")
	// Pure prediction: variance grows by gamma (a=1).
	if !almostEqual(post.Var, cfg.Init.Var+cfg.Params.Gamma, 1e-12) {
		t.Errorf("variance after empty run = %v, want %v", post.Var, cfg.Init.Var+cfg.Params.Gamma)
	}
}

func TestMelodyEMRefinesParams(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.EMPeriod = 5
	cfg.EM = lds.EMConfig{MaxIter: 20}
	m, _ := NewMelody(cfg)
	r := stats.NewRNG(9)
	// Feed a low-noise trajectory; EM should pull eta far below the initial
	// guess of 9.
	q := 5.0
	for run := 0; run < 25; run++ {
		q += 0.02
		scores := []float64{q + r.Normal(0, 0.2), q + r.Normal(0, 0.2)}
		if err := m.Observe("w", scores); err != nil {
			t.Fatal(err)
		}
	}
	got := m.Params("w")
	if got == cfg.Params {
		t.Fatal("EM never updated the parameters")
	}
	if got.Eta >= 5 {
		t.Errorf("EM left eta at %v; expected well below the initial 9 on low-noise data", got.Eta)
	}
}

func TestMelodyTracksDriftBetterThanFrozenPrior(t *testing.T) {
	cfg := testMelodyConfig()
	m, _ := NewMelody(cfg)
	r := stats.NewRNG(10)
	q := 3.0
	for run := 0; run < 100; run++ {
		q += 0.05 // steady rise
		scores := []float64{stats.Clamp(r.Normal(q, 1), 1, 10)}
		if err := m.Observe("w", scores); err != nil {
			t.Fatal(err)
		}
	}
	finalQ := q
	if est := m.Estimate("w"); math.Abs(est-finalQ) > 1.5 {
		t.Errorf("estimate %v too far from drifted latent %v", est, finalQ)
	}
}

func TestMelodyRejectsBadScores(t *testing.T) {
	m, _ := NewMelody(testMelodyConfig())
	if err := m.Observe("w", []float64{math.NaN()}); err == nil {
		t.Error("NaN score accepted")
	}
	if err := m.Observe("w", []float64{math.Inf(1)}); err == nil {
		t.Error("Inf score accepted")
	}
}

func TestStaticFreezesAfterWarmup(t *testing.T) {
	s, err := NewStatic(5.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Estimate("w") != 5.5 {
		t.Errorf("initial estimate = %v, want 5.5", s.Estimate("w"))
	}
	for run := 0; run < 3; run++ {
		if err := s.Observe("w", []float64{4}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Estimate("w"); !almostEqual(got, 4, 1e-12) {
		t.Errorf("warmup estimate = %v, want 4", got)
	}
	// Post-warm-up observations must be ignored.
	for run := 0; run < 10; run++ {
		if err := s.Observe("w", []float64{9}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Estimate("w"); !almostEqual(got, 4, 1e-12) {
		t.Errorf("frozen estimate moved to %v", got)
	}
}

func TestStaticValidation(t *testing.T) {
	if _, err := NewStatic(5, 0); err == nil {
		t.Error("zero warmup accepted")
	}
}

func TestMLCurrentRunTracksLatestRunOnly(t *testing.T) {
	m := NewMLCurrentRun(5.5)
	if m.Estimate("w") != 5.5 {
		t.Errorf("initial = %v", m.Estimate("w"))
	}
	if err := m.Observe("w", []float64{2, 4}); err != nil {
		t.Fatal(err)
	}
	if got := m.Estimate("w"); !almostEqual(got, 3, 1e-12) {
		t.Errorf("estimate = %v, want 3", got)
	}
	if err := m.Observe("w", []float64{10}); err != nil {
		t.Fatal(err)
	}
	if got := m.Estimate("w"); !almostEqual(got, 10, 1e-12) {
		t.Errorf("estimate = %v, want 10 (current run only)", got)
	}
	// Empty run keeps the last estimate.
	if err := m.Observe("w", nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Estimate("w"); !almostEqual(got, 10, 1e-12) {
		t.Errorf("estimate after empty run = %v, want 10", got)
	}
}

func TestMLAllRunsAveragesEverything(t *testing.T) {
	m := NewMLAllRuns(5.5)
	if err := m.Observe("w", []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe("w", []float64{4, 6}); err != nil {
		t.Fatal(err)
	}
	if got := m.Estimate("w"); !almostEqual(got, 4, 1e-12) {
		t.Errorf("estimate = %v, want 4", got)
	}
	if got := m.Estimate("other"); got != 5.5 {
		t.Errorf("unseen worker = %v, want 5.5", got)
	}
}

func TestBaselinesRejectBadScores(t *testing.T) {
	st, _ := NewStatic(5, 10)
	ests := []Estimator{st, NewMLCurrentRun(5), NewMLAllRuns(5)}
	for _, e := range ests {
		if err := e.Observe("w", []float64{math.NaN()}); err == nil {
			t.Errorf("%s accepted NaN", e.Name())
		}
	}
}

func TestEstimatorNames(t *testing.T) {
	m, _ := NewMelody(testMelodyConfig())
	st, _ := NewStatic(5, 10)
	names := map[Estimator]string{
		m:                  "MELODY",
		st:                 "STATIC",
		NewMLCurrentRun(5): "ML-CR",
		NewMLAllRuns(5):    "ML-AR",
	}
	for e, want := range names {
		if e.Name() != want {
			t.Errorf("Name = %q, want %q", e.Name(), want)
		}
	}
}
