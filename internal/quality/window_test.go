package quality

import (
	"testing"

	"melody/internal/lds"
)

// TestWindowedEMAnchorsAtFilteredPosterior guards the sliding-window fix:
// EM over a trimmed history must use the filtered posterior at the window
// start, not the global prior. For a worker whose level sits persistently
// below the prior mu0=5.5, re-anchoring every window at 5.5 would keep
// re-learning a phantom decline (a well below 1) forever; with the correct
// anchor, once the window no longer contains the initial transient, the
// learned transition coefficient stays near 1.
func TestWindowedEMAnchorsAtFilteredPosterior(t *testing.T) {
	cfg := MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1, Gamma: 0.3, Eta: 1},
		EMPeriod: 10,
		EMWindow: 15,
		EM:       lds.EMConfig{MaxIter: 30},
	}
	m, err := NewMelody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 80 runs at a constant level of 3.0 — far below the prior.
	for run := 0; run < 80; run++ {
		if err := m.Observe("w", []float64{3.0, 3.0}); err != nil {
			t.Fatal(err)
		}
	}
	p := m.Params("w")
	if p.A < 0.9 {
		t.Errorf("learned a = %v; window re-anchoring regression (phantom decline)", p.A)
	}
	if est := m.Estimate("w"); est < 2.2 || est > 3.8 {
		t.Errorf("estimate = %v, want near the true level 3.0", est)
	}
}

// TestUnboundedHistoryStillWorks: EMWindow = 0 keeps the full history and
// the original prior anchor.
func TestUnboundedHistoryStillWorks(t *testing.T) {
	cfg := MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1, Gamma: 0.3, Eta: 1},
		EMPeriod: 10,
		EMWindow: 0,
		EM:       lds.EMConfig{MaxIter: 20},
	}
	m, err := NewMelody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 40; run++ {
		if err := m.Observe("w", []float64{6.0}); err != nil {
			t.Fatal(err)
		}
	}
	if est := m.Estimate("w"); est < 5.0 || est > 7.0 {
		t.Errorf("estimate = %v, want near 6.0", est)
	}
}
