package quality

import "fmt"

// Static implements the STATIC baseline [7]: worker quality is computed from
// the scores of the first WarmupRuns runs and then frozen for the rest of
// the deployment (the paper uses 50 warm-up runs). During warm-up the
// estimate is the running mean of all scores seen so far, so that allocation
// can proceed from run one.
type Static struct {
	initial    float64
	warmupRuns int
	workers    map[string]*staticWorker
}

type staticWorker struct {
	runsSeen int
	sum      float64
	count    int
	frozen   bool
	estimate float64
}

var _ Estimator = (*Static)(nil)

// NewStatic constructs the STATIC baseline. initial is the estimate for
// unseen workers; warmupRuns is the number of runs after which the estimate
// freezes.
func NewStatic(initial float64, warmupRuns int) (*Static, error) {
	if warmupRuns <= 0 {
		return nil, fmt.Errorf("quality: warmupRuns %d must be positive", warmupRuns)
	}
	return &Static{
		initial:    initial,
		warmupRuns: warmupRuns,
		workers:    make(map[string]*staticWorker),
	}, nil
}

// Name implements Estimator.
func (s *Static) Name() string { return "STATIC" }

// Estimate implements Estimator.
func (s *Static) Estimate(workerID string) float64 {
	w, ok := s.workers[workerID]
	if !ok {
		return s.initial
	}
	return w.estimate
}

// Observe implements Estimator.
func (s *Static) Observe(workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	w, ok := s.workers[workerID]
	if !ok {
		w = &staticWorker{estimate: s.initial}
		s.workers[workerID] = w
	}
	if w.frozen {
		return nil
	}
	w.runsSeen++
	for _, sc := range scores {
		w.sum += sc
		w.count++
	}
	if w.count > 0 {
		w.estimate = w.sum / float64(w.count)
	}
	if w.runsSeen >= s.warmupRuns {
		w.frozen = true
	}
	return nil
}

// MLCurrentRun implements the ML-CR baseline used by most prior
// quality-aware mechanisms: the estimate for the next run is the maximum-
// likelihood (sample-mean) quality of the current run only. Runs with no
// scores leave the estimate unchanged. This over-fits the worker's latest
// performance.
type MLCurrentRun struct {
	initial   float64
	estimates map[string]float64
}

var _ Estimator = (*MLCurrentRun)(nil)

// NewMLCurrentRun constructs the ML-CR baseline.
func NewMLCurrentRun(initial float64) *MLCurrentRun {
	return &MLCurrentRun{initial: initial, estimates: make(map[string]float64)}
}

// Name implements Estimator.
func (m *MLCurrentRun) Name() string { return "ML-CR" }

// Estimate implements Estimator.
func (m *MLCurrentRun) Estimate(workerID string) float64 {
	if e, ok := m.estimates[workerID]; ok {
		return e
	}
	return m.initial
}

// Observe implements Estimator.
func (m *MLCurrentRun) Observe(workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	if len(scores) == 0 {
		return nil
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	m.estimates[workerID] = sum / float64(len(scores))
	return nil
}

// MLAllRuns implements the ML-AR baseline [4,13]: the estimate is the
// maximum-likelihood (sample-mean) quality over the worker's entire history,
// treating every run with equal weight. This under-fits a drifting worker.
type MLAllRuns struct {
	initial float64
	sums    map[string]float64
	counts  map[string]int
}

var _ Estimator = (*MLAllRuns)(nil)

// NewMLAllRuns constructs the ML-AR baseline.
func NewMLAllRuns(initial float64) *MLAllRuns {
	return &MLAllRuns{
		initial: initial,
		sums:    make(map[string]float64),
		counts:  make(map[string]int),
	}
}

// Name implements Estimator.
func (m *MLAllRuns) Name() string { return "ML-AR" }

// Estimate implements Estimator.
func (m *MLAllRuns) Estimate(workerID string) float64 {
	if c := m.counts[workerID]; c > 0 {
		return m.sums[workerID] / float64(c)
	}
	return m.initial
}

// Observe implements Estimator.
func (m *MLAllRuns) Observe(workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	for _, s := range scores {
		m.sums[workerID] += s
		m.counts[workerID]++
	}
	return nil
}
