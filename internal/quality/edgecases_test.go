package quality_test

// Edge-case conformance tests for every quality estimator, driven through
// verify.CheckEstimator: empty score histories, all-missing observation
// runs, single-worker pools, and poison observations must all leave every
// estimator with finite, uncorrupted estimates.

import (
	"math"
	"testing"

	"melody/internal/lds"
	"melody/internal/quality"
	"melody/internal/verify"
)

// freshEstimators builds one of each estimator with the paper's Table-4
// initial belief (mu^0 = 5.5).
func freshEstimators(t *testing.T) []quality.Estimator {
	t.Helper()
	static, err := quality.NewStatic(5.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ewma, err := quality.NewEWMA(5.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := quality.NewMelody(quality.MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 4, EMWindow: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []quality.Estimator{
		static,
		ewma,
		quality.NewMLCurrentRun(5.5),
		quality.NewMLAllRuns(5.5),
		tracker,
	}
}

// TestEstimatorEmptyHistory: a worker that has never been observed — and a
// worker observed only with empty score sets — must have a finite estimate.
func TestEstimatorEmptyHistory(t *testing.T) {
	for _, e := range freshEstimators(t) {
		runs := [][][]float64{
			{{}, {}},
			{nil, nil},
			{{}, {}},
		}
		if err := verify.CheckEstimator(e, []string{"idle-1", "idle-2"}, runs); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

// TestEstimatorAllMissingRuns: long stretches with no observations at all
// (workers won no tasks for many consecutive runs) must not drift any
// estimate to NaN/Inf, and a later real observation must still be absorbed.
func TestEstimatorAllMissingRuns(t *testing.T) {
	for _, e := range freshEstimators(t) {
		runs := make([][][]float64, 0, 32)
		for r := 0; r < 30; r++ {
			runs = append(runs, [][]float64{{}})
		}
		runs = append(runs, [][]float64{{7.5, 8.0}}) // finally observed
		runs = append(runs, [][]float64{{}})         // and missing again
		if err := verify.CheckEstimator(e, []string{"ghost"}, runs); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if est := e.Estimate("ghost"); !(est > 0) || math.IsInf(est, 0) {
			t.Errorf("%s: estimate %v after sparse history", e.Name(), est)
		}
	}
}

// TestEstimatorSingleWorkerPool: a pool of one worker exercises every
// estimator's per-worker state in isolation across mixed observed/missing
// runs, including the EM refit path of the LDS tracker (EMPeriod=4 fires
// twice inside 10 runs).
func TestEstimatorSingleWorkerPool(t *testing.T) {
	for _, e := range freshEstimators(t) {
		runs := [][][]float64{
			{{6.0}},
			{{6.5, 7.0}},
			{{}},
			{{5.0}},
			{{8.0, 7.5, 6.5}},
			{{}},
			{{}},
			{{7.0}},
			{{6.0, 6.0}},
			{{9.0}},
		}
		if err := verify.CheckEstimator(e, []string{"solo"}, runs); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}
