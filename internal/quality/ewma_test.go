package quality

import (
	"math"
	"testing"
)

func TestNewEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(5, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewEWMA(5, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewEWMA(5, 0.3); err != nil {
		t.Errorf("valid alpha rejected: %v", err)
	}
}

func TestEWMAUpdateRule(t *testing.T) {
	e, _ := NewEWMA(5, 0.5)
	if e.Estimate("w") != 5 {
		t.Errorf("initial = %v", e.Estimate("w"))
	}
	if err := e.Observe("w", []float64{9}); err != nil {
		t.Fatal(err)
	}
	// 0.5*5 + 0.5*9 = 7.
	if got := e.Estimate("w"); !almostEqual(got, 7, 1e-12) {
		t.Errorf("estimate = %v, want 7", got)
	}
	if err := e.Observe("w", []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	// 0.5*7 + 0.5*2 = 4.5.
	if got := e.Estimate("w"); !almostEqual(got, 4.5, 1e-12) {
		t.Errorf("estimate = %v, want 4.5", got)
	}
}

func TestEWMAEmptyRunKeepsEstimate(t *testing.T) {
	e, _ := NewEWMA(5, 0.5)
	if err := e.Observe("w", []float64{9}); err != nil {
		t.Fatal(err)
	}
	before := e.Estimate("w")
	if err := e.Observe("w", nil); err != nil {
		t.Fatal(err)
	}
	if e.Estimate("w") != before {
		t.Errorf("empty run moved estimate %v -> %v", before, e.Estimate("w"))
	}
}

func TestEWMAAlphaOneIsMLCR(t *testing.T) {
	e, _ := NewEWMA(5, 1)
	cr := NewMLCurrentRun(5.0)
	seqs := [][]float64{{3, 5}, {8}, {}, {2, 2, 2}}
	for _, scores := range seqs {
		if err := e.Observe("w", scores); err != nil {
			t.Fatal(err)
		}
		if err := cr.Observe("w", scores); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(e.Estimate("w"), cr.Estimate("w"), 1e-12) {
			t.Fatalf("alpha=1 EWMA %v != ML-CR %v", e.Estimate("w"), cr.Estimate("w"))
		}
	}
}

func TestEWMARejectsBadScores(t *testing.T) {
	e, _ := NewEWMA(5, 0.5)
	if err := e.Observe("w", []float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestEWMATracksDrift(t *testing.T) {
	e, _ := NewEWMA(5, 0.3)
	q := 3.0
	for run := 0; run < 100; run++ {
		q += 0.05
		if err := e.Observe("w", []float64{q}); err != nil {
			t.Fatal(err)
		}
	}
	// EWMA lags a rising trend but should be close.
	if math.Abs(e.Estimate("w")-q) > 1.0 {
		t.Errorf("estimate %v too far from drifted %v", e.Estimate("w"), q)
	}
}
