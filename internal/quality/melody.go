package quality

import (
	"fmt"

	"melody/internal/lds"
)

// MelodyConfig parameterizes the LDS-based estimator.
type MelodyConfig struct {
	// Init is the platform's preset initial belief N(mu^0, sigma^0) over a
	// new worker's quality (Table 4 uses mu^0 = 5.5, sigma^0 = 2.25).
	Init lds.State
	// Params is the initial hyper-parameter guess theta^0 for every worker,
	// refined by EM as history accrues.
	Params lds.Params
	// EMPeriod is the paper's T: hyper-parameters are re-estimated with
	// Algorithm 2 every T runs (Table 4 uses T = 10). Zero disables EM.
	EMPeriod int
	// EMWindow bounds the score history EM is run over (most recent runs);
	// zero means the full history. A window keeps the cost of each EM call
	// constant over a long deployment.
	EMWindow int
	// MisfitTrigger, when positive, re-runs EM as soon as the worker's
	// model-misfit score (mean squared standardized innovation; ~1 for a
	// well-specified model) exceeds it, without waiting out the full
	// EMPeriod. This is an extension beyond the paper's fixed-period
	// Algorithm 3; a typical threshold is 2-4.
	MisfitTrigger float64
	// EM configures the inner EM loop.
	EM lds.EMConfig
}

// Validate reports whether the configuration is usable.
func (c MelodyConfig) Validate() error {
	if err := c.Init.Validate(); err != nil {
		return fmt.Errorf("quality: init state: %w", err)
	}
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("quality: params: %w", err)
	}
	if c.EMPeriod < 0 || c.EMWindow < 0 {
		return fmt.Errorf("quality: negative EM period or window")
	}
	if c.MisfitTrigger < 0 {
		return fmt.Errorf("quality: negative misfit trigger")
	}
	return nil
}

// melodyWorker is the per-worker state of Algorithm 3.
type melodyWorker struct {
	posterior lds.State
	params    lds.Params
	history   [][]float64
	// windowInit is the filtered posterior just before the oldest run still
	// in history. EM uses it as the window's initial state so a sliding
	// window does not keep re-anchoring the chain at the global prior.
	windowInit  lds.State
	sinceEM     int
	everUpdated bool
}

// Melody is the paper's quality estimator: each worker's latent quality is
// tracked with the Theorem 3 Kalman recursion, and the worker's
// hyper-parameters theta = {a, gamma, eta} are re-learned with EM every
// EMPeriod runs (Algorithm 3).
type Melody struct {
	cfg     MelodyConfig
	workers map[string]*melodyWorker
}

var _ Estimator = (*Melody)(nil)

// NewMelody constructs the MELODY estimator.
func NewMelody(cfg MelodyConfig) (*Melody, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Melody{cfg: cfg, workers: make(map[string]*melodyWorker)}, nil
}

// Name implements Estimator.
func (m *Melody) Name() string { return "MELODY" }

// Estimate implements Estimator: mu^{r+1} = a * mu-hat^r (Eq. 19). A
// never-observed worker gets a * mu^0 (Algorithm 3, line 2).
func (m *Melody) Estimate(workerID string) float64 {
	w, ok := m.workers[workerID]
	if !ok {
		return m.cfg.Params.A * m.cfg.Init.Mean
	}
	return w.params.A * w.posterior.Mean
}

// Posterior exposes the worker's current posterior belief (mu-hat, sigma-hat)
// for inspection; ok is false for unknown workers.
func (m *Melody) Posterior(workerID string) (lds.State, bool) {
	w, ok := m.workers[workerID]
	if !ok {
		return lds.State{}, false
	}
	return w.posterior, true
}

// Params exposes the worker's current hyper-parameters; unknown workers
// report the configured initial guess.
func (m *Melody) Params(workerID string) lds.Params {
	if w, ok := m.workers[workerID]; ok {
		return w.params
	}
	return m.cfg.Params
}

// Forecast returns the k-step-ahead predictive distribution of the
// worker's latent quality (steps = 1 is the next run's prior, Eq. 19).
// Unknown workers are forecast from the platform's initial belief.
func (m *Melody) Forecast(workerID string, steps int) (lds.Forecast, error) {
	posterior := m.cfg.Init
	params := m.cfg.Params
	if w, ok := m.workers[workerID]; ok {
		posterior = w.posterior
		params = w.params
	}
	return lds.ForecastAhead(params, posterior, steps)
}

// Misfit returns the worker's model-misfit score: the mean squared
// standardized one-step prediction residual over the retained history
// (near 1 when the LDS fits; far above 1 when the worker's dynamics
// violate it — see lds.MisfitScore). ok is false for workers with no
// scored history.
func (m *Melody) Misfit(workerID string) (float64, bool, error) {
	w, found := m.workers[workerID]
	if !found || !hasScores(w.history) {
		return 0, false, nil
	}
	innovations, err := lds.Innovations(w.params, w.windowInit, w.history)
	if err != nil {
		return 0, false, fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	score, err := lds.MisfitScore(innovations)
	if err != nil {
		return 0, false, fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	return score, true, nil
}

// Observe implements Estimator: the Theorem 3 posterior update, followed by
// EM re-estimation when the worker's parameters have not been updated for
// EMPeriod runs (Algorithm 3, lines 6-8).
func (m *Melody) Observe(workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	w, ok := m.workers[workerID]
	if !ok {
		w = &melodyWorker{posterior: m.cfg.Init, params: m.cfg.Params, windowInit: m.cfg.Init}
		m.workers[workerID] = w
	}
	next, err := lds.Update(w.params, w.posterior, scores)
	if err != nil {
		return fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	w.posterior = next
	w.everUpdated = true

	recorded := make([]float64, len(scores))
	copy(recorded, scores)
	w.history = append(w.history, recorded)
	for m.cfg.EMWindow > 0 && len(w.history) > m.cfg.EMWindow {
		// Slide the window: fold the evicted run into the window-start
		// prior with the filter, so EM sees a correctly anchored chain.
		evicted := w.history[0]
		w.history = w.history[1:]
		advanced, err := lds.Update(w.params, w.windowInit, evicted)
		if err != nil {
			return fmt.Errorf("quality: worker %s window: %w", workerID, err)
		}
		w.windowInit = advanced
	}

	if m.cfg.EMPeriod > 0 {
		w.sinceEM++
		due := w.sinceEM >= m.cfg.EMPeriod
		if !due && m.cfg.MisfitTrigger > 0 && hasScores(w.history) {
			// Adaptive re-estimation: a persistently surprised model
			// re-learns immediately instead of waiting out the period.
			innovations, err := lds.Innovations(w.params, w.windowInit, w.history)
			if err != nil {
				return fmt.Errorf("quality: worker %s diagnostics: %w", workerID, err)
			}
			if score, err := lds.MisfitScore(innovations); err == nil && score > m.cfg.MisfitTrigger {
				due = true
			}
		}
		if due {
			w.sinceEM = 0
			if hasScores(w.history) {
				res, err := lds.EM(w.params, w.windowInit, w.history, m.cfg.EM)
				if err != nil {
					return fmt.Errorf("quality: worker %s EM: %w", workerID, err)
				}
				w.params = res.Params
			}
		}
	}
	return nil
}

func hasScores(history [][]float64) bool {
	for _, runScores := range history {
		if len(runScores) > 0 {
			return true
		}
	}
	return false
}
