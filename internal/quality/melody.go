package quality

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"melody/internal/lds"
	"melody/internal/obs"
)

// MelodyConfig parameterizes the LDS-based estimator.
type MelodyConfig struct {
	// Init is the platform's preset initial belief N(mu^0, sigma^0) over a
	// new worker's quality (Table 4 uses mu^0 = 5.5, sigma^0 = 2.25).
	Init lds.State
	// Params is the initial hyper-parameter guess theta^0 for every worker,
	// refined by EM as history accrues.
	Params lds.Params
	// EMPeriod is the paper's T: hyper-parameters are re-estimated with
	// Algorithm 2 every T runs (Table 4 uses T = 10). Zero disables EM.
	EMPeriod int
	// EMWindow bounds the score history EM is run over (most recent runs);
	// zero means the full history. A window keeps the cost of each EM call
	// constant over a long deployment.
	EMWindow int
	// MisfitTrigger, when positive, re-runs EM as soon as the worker's
	// model-misfit score (mean squared standardized innovation; ~1 for a
	// well-specified model) exceeds it, without waiting out the full
	// EMPeriod. This is an extension beyond the paper's fixed-period
	// Algorithm 3; a typical threshold is 2-4.
	MisfitTrigger float64
	// EM configures the inner EM loop.
	EM lds.EMConfig
	// BatchConcurrency bounds the goroutine pool ObserveBatch shards
	// workers across; zero or negative means runtime.GOMAXPROCS(0).
	BatchConcurrency int
	// Metrics optionally receives EM re-estimation metrics: wall time per
	// re-estimation, total count, and the latest final log-likelihood. Nil
	// disables instrumentation.
	Metrics *obs.Registry
	// Tracer optionally records an "em.reestimate" span per re-estimation.
	Tracer *obs.Tracer
}

// Validate reports whether the configuration is usable.
func (c MelodyConfig) Validate() error {
	if err := c.Init.Validate(); err != nil {
		return fmt.Errorf("quality: init state: %w", err)
	}
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("quality: params: %w", err)
	}
	if c.EMPeriod < 0 || c.EMWindow < 0 {
		return fmt.Errorf("quality: negative EM period or window")
	}
	if c.MisfitTrigger < 0 {
		return fmt.Errorf("quality: negative misfit trigger")
	}
	return nil
}

// scoreHistory retains the per-run score sets EM learns from. With a
// positive window it is a fixed-capacity ring: evicted runs hand their
// backing slices back for reuse, so a long deployment holds exactly
// O(window) memory instead of retaining every evicted run in a shared
// backing array (the slice-aliasing leak of the seed's history[1:]
// re-slicing). With window zero the history grows unboundedly, as the
// paper's full-history variant requires.
type scoreHistory struct {
	window int // 0 = unbounded
	buf    [][]float64
	start  int // index of the oldest run when bounded
	count  int
	linear [][]float64 // scratch for a wrapped ring's chronological view
}

// evictIfFull removes and returns the oldest run's scores when the ring is
// at capacity, so the caller can fold it into the window-start prior and
// recycle the slice.
func (h *scoreHistory) evictIfFull() ([]float64, bool) {
	if h.window <= 0 || h.count < h.window {
		return nil, false
	}
	ev := h.buf[h.start]
	h.buf[h.start] = nil
	h.start = (h.start + 1) % h.window
	h.count--
	return ev, true
}

// push appends the newest run's scores.
func (h *scoreHistory) push(scores []float64) {
	if h.window <= 0 || len(h.buf) < h.window {
		h.buf = append(h.buf, scores)
	} else {
		h.buf[(h.start+h.count)%h.window] = scores
	}
	h.count++
}

// view returns the retained runs in chronological order. The result may
// alias internal scratch and is valid until the next push.
func (h *scoreHistory) view() [][]float64 {
	if h.start == 0 {
		return h.buf[:h.count]
	}
	h.linear = h.linear[:0]
	for i := 0; i < h.count; i++ {
		h.linear = append(h.linear, h.buf[(h.start+i)%len(h.buf)])
	}
	return h.linear
}

// hasScores reports whether any retained run carries at least one score.
func (h *scoreHistory) hasScores() bool {
	for i := 0; i < h.count; i++ {
		if len(h.buf[(h.start+i)%len(h.buf)]) > 0 {
			return true
		}
	}
	return false
}

// melodyWorker is the per-worker state of Algorithm 3. Each worker owns its
// inference buffers, so independent workers can be updated concurrently.
type melodyWorker struct {
	posterior lds.State
	params    lds.Params
	hist      scoreHistory
	// windowInit is the filtered posterior just before the oldest run still
	// in history. EM uses it as the window's initial state so a sliding
	// window does not keep re-anchoring the chain at the global prior.
	windowInit lds.State
	sinceEM    int
	ws         lds.Workspace    // reusable smoother/EM buffers
	inn        []lds.Innovation // reusable misfit-diagnostic buffer
	gen        uint64           // last ObserveBatch generation that touched this worker
}

// Melody is the paper's quality estimator: each worker's latent quality is
// tracked with the Theorem 3 Kalman recursion, and the worker's
// hyper-parameters theta = {a, gamma, eta} are re-learned with EM every
// EMPeriod runs (Algorithm 3).
//
// Melody is not safe for concurrent use, but ObserveBatch internally shards
// its independent per-worker updates across a bounded goroutine pool and is
// bit-identical to the equivalent sequence of Observe calls.
type Melody struct {
	cfg     MelodyConfig
	workers map[string]*melodyWorker
	// batchGen stamps workers touched by the current ObserveBatch so
	// duplicate IDs inside one batch are detected without a per-batch set.
	batchGen uint64

	// EM instrumentation handles; nil (no-op) when cfg.Metrics is nil. The
	// handles are internally atomic, so concurrent ObserveBatch shards can
	// record through them without coordination.
	emSeconds *obs.Histogram
	emRuns    *obs.Counter
	emLoglik  *obs.Gauge
}

var (
	_ Estimator     = (*Melody)(nil)
	_ BatchObserver = (*Melody)(nil)
)

// NewMelody constructs the MELODY estimator.
func NewMelody(cfg MelodyConfig) (*Melody, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Melody{
		cfg:       cfg,
		workers:   make(map[string]*melodyWorker),
		emSeconds: cfg.Metrics.Histogram(obs.MetricEMReestimateSeconds, "Wall time of one per-worker EM re-estimation.", obs.TimeBuckets()),
		emRuns:    cfg.Metrics.Counter(obs.MetricEMRunsTotal, "EM re-estimations performed."),
		emLoglik:  cfg.Metrics.Gauge(obs.MetricEMLogLikelihood, "Final log marginal likelihood of the latest EM re-estimation."),
	}, nil
}

// Name implements Estimator.
func (m *Melody) Name() string { return "MELODY" }

// Estimate implements Estimator: mu^{r+1} = a * mu-hat^r (Eq. 19). A
// never-observed worker gets a * mu^0 (Algorithm 3, line 2).
func (m *Melody) Estimate(workerID string) float64 {
	w, ok := m.workers[workerID]
	if !ok {
		return m.cfg.Params.A * m.cfg.Init.Mean
	}
	return w.params.A * w.posterior.Mean
}

// Posterior exposes the worker's current posterior belief (mu-hat, sigma-hat)
// for inspection; ok is false for unknown workers.
func (m *Melody) Posterior(workerID string) (lds.State, bool) {
	w, ok := m.workers[workerID]
	if !ok {
		return lds.State{}, false
	}
	return w.posterior, true
}

// Params exposes the worker's current hyper-parameters; unknown workers
// report the configured initial guess.
func (m *Melody) Params(workerID string) lds.Params {
	if w, ok := m.workers[workerID]; ok {
		return w.params
	}
	return m.cfg.Params
}

// Forecast returns the k-step-ahead predictive distribution of the
// worker's latent quality (steps = 1 is the next run's prior, Eq. 19).
// Unknown workers are forecast from the platform's initial belief.
func (m *Melody) Forecast(workerID string, steps int) (lds.Forecast, error) {
	posterior := m.cfg.Init
	params := m.cfg.Params
	if w, ok := m.workers[workerID]; ok {
		posterior = w.posterior
		params = w.params
	}
	return lds.ForecastAhead(params, posterior, steps)
}

// Misfit returns the worker's model-misfit score: the mean squared
// standardized one-step prediction residual over the retained history
// (near 1 when the LDS fits; far above 1 when the worker's dynamics
// violate it — see lds.MisfitScore). ok is false for workers with no
// scored history.
func (m *Melody) Misfit(workerID string) (float64, bool, error) {
	w, found := m.workers[workerID]
	if !found || !w.hist.hasScores() {
		return 0, false, nil
	}
	innovations, err := lds.InnovationsInto(w.inn[:0], w.params, w.windowInit, w.hist.view())
	w.inn = innovations
	if err != nil {
		return 0, false, fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	score, err := lds.MisfitScore(innovations)
	if err != nil {
		return 0, false, fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	return score, true, nil
}

// lookup returns the worker's state, creating it on first contact.
func (m *Melody) lookup(workerID string) *melodyWorker {
	w, ok := m.workers[workerID]
	if !ok {
		w = &melodyWorker{
			posterior:  m.cfg.Init,
			params:     m.cfg.Params,
			windowInit: m.cfg.Init,
			hist:       scoreHistory{window: m.cfg.EMWindow},
		}
		m.workers[workerID] = w
	}
	return w
}

// Observe implements Estimator: the Theorem 3 posterior update, followed by
// EM re-estimation when the worker's parameters have not been updated for
// EMPeriod runs (Algorithm 3, lines 6-8).
func (m *Melody) Observe(workerID string, scores []float64) error {
	return m.observeWorker(m.lookup(workerID), workerID, scores)
}

// observeWorker is the single-worker update shared by Observe and
// ObserveBatch. It touches only the given worker's state plus the read-only
// configuration, so distinct workers can be updated concurrently.
func (m *Melody) observeWorker(w *melodyWorker, workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	next, err := lds.Update(w.params, w.posterior, scores)
	if err != nil {
		return fmt.Errorf("quality: worker %s: %w", workerID, err)
	}
	w.posterior = next

	// Slide the window: fold the evicted run into the window-start prior
	// with the filter, so EM sees a correctly anchored chain; its slice is
	// then recycled as the backing for the newest run's copy.
	var recorded []float64
	if evicted, ok := w.hist.evictIfFull(); ok {
		advanced, err := lds.Update(w.params, w.windowInit, evicted)
		if err != nil {
			return fmt.Errorf("quality: worker %s window: %w", workerID, err)
		}
		w.windowInit = advanced
		recorded = evicted[:0]
	}
	if cap(recorded) < len(scores) {
		recorded = make([]float64, 0, len(scores))
	}
	w.hist.push(append(recorded, scores...))

	if m.cfg.EMPeriod > 0 {
		w.sinceEM++
		due := w.sinceEM >= m.cfg.EMPeriod
		if !due && m.cfg.MisfitTrigger > 0 && w.hist.hasScores() {
			// Adaptive re-estimation: a persistently surprised model
			// re-learns immediately instead of waiting out the period.
			innovations, err := lds.InnovationsInto(w.inn[:0], w.params, w.windowInit, w.hist.view())
			w.inn = innovations
			if err != nil {
				return fmt.Errorf("quality: worker %s diagnostics: %w", workerID, err)
			}
			if score, err := lds.MisfitScore(innovations); err == nil && score > m.cfg.MisfitTrigger {
				due = true
			}
		}
		if due {
			w.sinceEM = 0
			if w.hist.hasScores() {
				sp := m.cfg.Tracer.Start("em.reestimate")
				sp.SetAttr("worker", workerID)
				start := time.Now()
				res, err := w.ws.EM(w.params, w.windowInit, w.hist.view(), m.cfg.EM)
				m.emSeconds.Observe(time.Since(start).Seconds())
				sp.End()
				if err != nil {
					return fmt.Errorf("quality: worker %s EM: %w", workerID, err)
				}
				m.emRuns.Inc()
				m.emLoglik.Set(res.LogLikelihood)
				w.params = res.Params
			}
		}
	}
	return nil
}

// minParallelBatch is the batch size below which sharding overhead beats
// the win from parallel updates.
const minParallelBatch = 8

// ObserveBatch implements BatchObserver: one whole run's observations at
// once. Per-worker Kalman/EM updates are independent, so the batch is
// sharded across a bounded goroutine pool; results are bit-identical to
// calling Observe per worker in order. Unlike a serial Observe loop, which
// stops at the first failure, every worker is processed and all failures
// are reported (joined in batch order).
func (m *Melody) ObserveBatch(ids []string, scores [][]float64) error {
	if len(ids) != len(scores) {
		return fmt.Errorf("quality: batch mismatch: %d ids, %d score sets", len(ids), len(scores))
	}
	if len(ids) == 0 {
		return nil
	}
	// Resolve (and create) worker state serially: map writes are not
	// goroutine-safe, and the generation stamp flags duplicate IDs, which
	// would alias state across goroutines.
	m.batchGen++
	workers := make([]*melodyWorker, len(ids))
	duplicates := false
	for i, id := range ids {
		w := m.lookup(id)
		if w.gen == m.batchGen {
			duplicates = true
		}
		w.gen = m.batchGen
		workers[i] = w
	}

	concurrency := m.cfg.BatchConcurrency
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(ids) {
		concurrency = len(ids)
	}
	if duplicates || concurrency <= 1 || len(ids) < minParallelBatch {
		var errs []error
		for i := range ids {
			if err := m.observeWorker(workers[i], ids[i], scores[i]); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	errs := make([]error, len(ids))
	chunk := (len(ids) + concurrency - 1) / concurrency
	var wg sync.WaitGroup
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				errs[i] = m.observeWorker(workers[i], ids[i], scores[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return errors.Join(errs...)
}
