package quality

import (
	"encoding/json"
	"fmt"
	"sort"

	"melody/internal/lds"
)

// workerSnapshot is the serialized dynamic state of one tracked worker:
// everything that influences future estimates. Inference scratch buffers
// (smoother workspaces, innovation slices) are rebuilt lazily and are not
// state.
type workerSnapshot struct {
	ID         string      `json:"id"`
	Posterior  lds.State   `json:"posterior"`
	Params     lds.Params  `json:"params"`
	WindowInit lds.State   `json:"window_init"`
	SinceEM    int         `json:"since_em"`
	History    [][]float64 `json:"history,omitempty"`
}

// melodySnapshot is the serialized dynamic state of the whole estimator.
// Configuration (initial belief, EM settings) is not captured: a restored
// estimator must be constructed with the same MelodyConfig as the writer,
// exactly like a replayed platform must share the writer's configuration.
type melodySnapshot struct {
	Version int              `json:"version"`
	Workers []workerSnapshot `json:"workers,omitempty"`
}

// snapshotVersion guards the estimator snapshot encoding.
const snapshotVersion = 1

// SnapshotState serializes the estimator's dynamic state (per-worker
// posteriors, hyper-parameters, EM score history and window anchors) so a
// platform snapshot can restore it bit-identically: floats survive the JSON
// round-trip exactly (Go encodes float64 with the shortest representation
// that parses back to the same value).
func (m *Melody) SnapshotState() ([]byte, error) {
	snap := melodySnapshot{Version: snapshotVersion}
	ids := make([]string, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := m.workers[id]
		ws := workerSnapshot{
			ID:         id,
			Posterior:  w.posterior,
			Params:     w.params,
			WindowInit: w.windowInit,
			SinceEM:    w.sinceEM,
		}
		for _, run := range w.hist.view() {
			// Deep-copy each run's scores: view may alias ring scratch.
			ws.History = append(ws.History, append([]float64(nil), run...))
		}
		snap.Workers = append(snap.Workers, ws)
	}
	return json.Marshal(snap)
}

// RestoreState rebuilds the estimator's dynamic state from a SnapshotState
// payload. The estimator must be freshly constructed (no workers tracked
// yet) with the same MelodyConfig the writer used.
func (m *Melody) RestoreState(data []byte) error {
	if len(m.workers) != 0 {
		return fmt.Errorf("quality: restore target already tracks %d workers", len(m.workers))
	}
	var snap melodySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("quality: decode estimator snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("quality: estimator snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	for _, ws := range snap.Workers {
		if ws.ID == "" {
			return fmt.Errorf("quality: estimator snapshot worker with empty ID")
		}
		if _, dup := m.workers[ws.ID]; dup {
			return fmt.Errorf("quality: estimator snapshot duplicates worker %s", ws.ID)
		}
		if m.cfg.EMWindow > 0 && len(ws.History) > m.cfg.EMWindow {
			return fmt.Errorf("quality: worker %s history %d exceeds EM window %d",
				ws.ID, len(ws.History), m.cfg.EMWindow)
		}
		w := &melodyWorker{
			posterior:  ws.Posterior,
			params:     ws.Params,
			windowInit: ws.WindowInit,
			sinceEM:    ws.SinceEM,
			hist:       scoreHistory{window: m.cfg.EMWindow},
		}
		for _, run := range ws.History {
			w.hist.push(append([]float64(nil), run...))
		}
		m.workers[ws.ID] = w
	}
	return nil
}
