// Package quality implements the long-term worker-quality estimators the
// paper evaluates in Section 7.7: MELODY's LDS-based estimator (Algorithm 3,
// with periodic EM re-estimation per Algorithm 2) and the three baselines
// STATIC, ML-CR and ML-AR.
//
// An estimator consumes, run after run, the set of scores each worker earned
// (possibly empty when the worker won no tasks) and produces the estimated
// quality mu_i^{r+1} the platform uses for allocation in the next run.
package quality

import "fmt"

// Estimator is the per-run quality estimation interface shared by MELODY and
// the baselines. Implementations are not safe for concurrent use; the market
// engine drives them from a single goroutine.
type Estimator interface {
	// Name identifies the estimator in reports and figures.
	Name() string
	// Estimate returns the estimated quality for the coming run. Workers
	// never seen before receive the estimator's initial estimate.
	Estimate(workerID string) float64
	// Observe records the scores the worker earned in the run that just
	// ended and updates the worker's estimate. Call it for every worker
	// every run, with an empty slice when the worker earned no scores.
	Observe(workerID string, scores []float64) error
}

// BatchObserver is implemented by estimators that can absorb one whole
// run's observations at once. ObserveBatch(ids, scores) must produce
// exactly the state that calling Observe(ids[i], scores[i]) for every i in
// order would, but may update independent workers concurrently; the market
// engine prefers it over the serial Observe loop when available. Unlike the
// serial loop it processes every worker even when some fail, reporting all
// failures joined in batch order.
type BatchObserver interface {
	ObserveBatch(ids []string, scores [][]float64) error
}

// validateScores rejects non-finite scores early so estimator state can
// never be poisoned.
func validateScores(scores []float64) error {
	for _, s := range scores {
		if s != s { // NaN
			return fmt.Errorf("quality: NaN score")
		}
		if s > 1e18 || s < -1e18 {
			return fmt.Errorf("quality: score %v out of range", s)
		}
	}
	return nil
}
