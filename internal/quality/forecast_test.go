package quality

import (
	"testing"

	"melody/internal/lds"
)

func TestMelodyForecastUnknownWorker(t *testing.T) {
	m, _ := NewMelody(testMelodyConfig())
	f, err := m.Forecast("nobody", 1)
	if err != nil {
		t.Fatal(err)
	}
	// One step from the initial belief with a=1: mean mu0, var sigma0+gamma.
	cfg := testMelodyConfig()
	if !almostEqual(f.Mean, cfg.Init.Mean, 1e-12) {
		t.Errorf("mean = %v, want %v", f.Mean, cfg.Init.Mean)
	}
	if !almostEqual(f.Var, cfg.Init.Var+cfg.Params.Gamma, 1e-12) {
		t.Errorf("var = %v, want %v", f.Var, cfg.Init.Var+cfg.Params.Gamma)
	}
}

func TestMelodyForecastTracksPosterior(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.EMPeriod = 0
	m, _ := NewMelody(cfg)
	if err := m.Observe("w", []float64{8, 8, 8}); err != nil {
		t.Fatal(err)
	}
	f1, err := m.Forecast("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	post, _ := m.Posterior("w")
	want := lds.Predict(cfg.Params, post)
	if !almostEqual(f1.Mean, want.Mean, 1e-12) || !almostEqual(f1.Var, want.Var, 1e-12) {
		t.Errorf("forecast = %+v, want %+v", f1, want)
	}
	// One-step forecast mean equals Estimate (Eq. 19).
	if !almostEqual(f1.Mean, m.Estimate("w"), 1e-12) {
		t.Errorf("forecast mean %v != estimate %v", f1.Mean, m.Estimate("w"))
	}
	// Longer horizons are more uncertain.
	f5, err := m.Forecast("w", 5)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Var <= f1.Var {
		t.Errorf("5-step var %v not above 1-step var %v", f5.Var, f1.Var)
	}
}

func TestMelodyForecastValidation(t *testing.T) {
	m, _ := NewMelody(testMelodyConfig())
	if _, err := m.Forecast("w", 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestMelodyMisfitTriggeredEM(t *testing.T) {
	// Two trackers with EMPeriod far beyond the horizon: the one with a
	// misfit trigger must re-learn its parameters when the worker's level
	// shifts; the one without must keep theta^0.
	base := testMelodyConfig()
	base.EMPeriod = 1000
	base.Params = lds.Params{A: 1, Gamma: 0.05, Eta: 1}

	withTrigger := base
	withTrigger.MisfitTrigger = 3
	triggered, err := NewMelody(withTrigger)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMelody(base)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(m *Melody) {
		t.Helper()
		for i := 0; i < 30; i++ {
			level := 5.5
			if i >= 10 {
				level = 15 // violent shift the tight gamma cannot explain
			}
			if err := m.Observe("w", []float64{level}); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(triggered)
	feed(plain)
	if plain.Params("w") != base.Params {
		t.Fatalf("plain tracker ran EM unexpectedly: %+v", plain.Params("w"))
	}
	if triggered.Params("w") == base.Params {
		t.Error("misfit trigger never fired EM despite a level shift")
	}
}

func TestMelodyMisfitTriggerValidation(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.MisfitTrigger = -1
	if _, err := NewMelody(cfg); err == nil {
		t.Error("negative trigger accepted")
	}
}

func TestMelodyMisfit(t *testing.T) {
	cfg := testMelodyConfig()
	cfg.EMPeriod = 0
	cfg.Params = lds.Params{A: 1, Gamma: 0.05, Eta: 1}
	m, _ := NewMelody(cfg)

	// Unknown worker or no scored history: not available.
	if _, ok, err := m.Misfit("nobody"); err != nil || ok {
		t.Errorf("misfit for unknown worker = ok=%v err=%v", ok, err)
	}
	if err := m.Observe("w", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Misfit("w"); err != nil || ok {
		t.Errorf("misfit without scores = ok=%v err=%v", ok, err)
	}

	// Smooth data near the prior: misfit around 1.
	for i := 0; i < 40; i++ {
		if err := m.Observe("w", []float64{5.5}); err != nil {
			t.Fatal(err)
		}
	}
	smoothScore, ok, err := m.Misfit("w")
	if err != nil || !ok {
		t.Fatalf("misfit = ok=%v err=%v", ok, err)
	}
	// A worker with a violent level shift: misfit far above the smooth one.
	for i := 0; i < 20; i++ {
		level := 2.0
		if i%2 == 0 {
			level = 9.0
		}
		if err := m.Observe("jumper", []float64{level}); err != nil {
			t.Fatal(err)
		}
	}
	jumpScore, ok, err := m.Misfit("jumper")
	if err != nil || !ok {
		t.Fatalf("jumper misfit = ok=%v err=%v", ok, err)
	}
	if jumpScore <= smoothScore*2 {
		t.Errorf("jumper misfit %v not well above smooth %v", jumpScore, smoothScore)
	}
}
