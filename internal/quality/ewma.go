package quality

import "fmt"

// EWMA is an exponentially weighted moving average estimator — an
// extension baseline between the paper's ML-CR (all weight on the latest
// run) and ML-AR (uniform weight on all history): the estimate after run r
// is (1-alpha)*previous + alpha*mean(S_r). It adapts to drift like MELODY
// but has no model of trend (no transition coefficient) and no uncertainty,
// making it a useful ablation point for the LDS design choice.
type EWMA struct {
	initial   float64
	alpha     float64
	estimates map[string]float64
}

var _ Estimator = (*EWMA)(nil)

// NewEWMA constructs the estimator; alpha in (0, 1] is the smoothing
// weight on new evidence.
func NewEWMA(initial, alpha float64) (*EWMA, error) {
	if !(alpha > 0 && alpha <= 1) {
		return nil, fmt.Errorf("quality: EWMA alpha %v must be in (0, 1]", alpha)
	}
	return &EWMA{
		initial:   initial,
		alpha:     alpha,
		estimates: make(map[string]float64),
	}, nil
}

// Name implements Estimator.
func (e *EWMA) Name() string { return "EWMA" }

// Estimate implements Estimator.
func (e *EWMA) Estimate(workerID string) float64 {
	if v, ok := e.estimates[workerID]; ok {
		return v
	}
	return e.initial
}

// Observe implements Estimator. Runs without scores leave the estimate
// unchanged.
func (e *EWMA) Observe(workerID string, scores []float64) error {
	if err := validateScores(scores); err != nil {
		return err
	}
	if len(scores) == 0 {
		return nil
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	mean := sum / float64(len(scores))
	prev, ok := e.estimates[workerID]
	if !ok {
		prev = e.initial
	}
	e.estimates[workerID] = (1-e.alpha)*prev + e.alpha*mean
	return nil
}
