package quality

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"melody/internal/lds"
	"melody/internal/stats"
)

func batchTestConfig() MelodyConfig {
	return MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 5,
		EMWindow: 12,
		EM:       lds.EMConfig{MaxIter: 8},
	}
}

// TestObserveBatchMatchesSerial drives two identical estimators through the
// same multi-run trace — one via per-worker Observe calls, one via
// ObserveBatch — and requires bit-identical state for every worker after
// every run. Run under -race this also exercises the sharded pool.
func TestObserveBatchMatchesSerial(t *testing.T) {
	for _, cfg := range []MelodyConfig{
		batchTestConfig(),
		{Init: lds.State{Mean: 5.5, Var: 2.25}, Params: lds.Params{A: 0.98, Gamma: 0.3, Eta: 4},
			EMPeriod: 3, EMWindow: 0, MisfitTrigger: 2.5, EM: lds.EMConfig{MaxIter: 6}},
	} {
		serial, err := NewMelody(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := NewMelody(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRNG(42)
		const workers = 64
		ids := make([]string, workers)
		for i := range ids {
			ids[i] = fmt.Sprintf("w%02d", i)
		}
		for run := 0; run < 30; run++ {
			scores := make([][]float64, workers)
			for i := range scores {
				// Mix of empty, short and long score sets.
				n := r.Intn(4)
				for k := 0; k < n; k++ {
					scores[i] = append(scores[i], r.Normal(5, 2))
				}
			}
			for i := range ids {
				if err := serial.Observe(ids[i], scores[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := batched.ObserveBatch(ids, scores); err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				se, be := serial.Estimate(id), batched.Estimate(id)
				if se != be {
					t.Fatalf("run %d worker %s: serial estimate %v != batch estimate %v", run, id, se, be)
				}
				sp, _ := serial.Posterior(id)
				bp, _ := batched.Posterior(id)
				if sp != bp {
					t.Fatalf("run %d worker %s: posterior %+v != %+v", run, id, sp, bp)
				}
				if serial.Params(id) != batched.Params(id) {
					t.Fatalf("run %d worker %s: params diverged", run, id)
				}
			}
		}
	}
}

// TestObserveBatchDuplicateIDs: duplicate worker IDs inside one batch must
// degrade to the serial order, not race on shared state.
func TestObserveBatchDuplicateIDs(t *testing.T) {
	serial, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 24)
	scores := make([][]float64, 0, 24)
	for i := 0; i < 24; i++ {
		ids = append(ids, fmt.Sprintf("w%d", i%3)) // heavy duplication
		scores = append(scores, []float64{float64(i%7) + 1})
	}
	for i := range ids {
		if err := serial.Observe(ids[i], scores[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.ObserveBatch(ids, scores); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w0", "w1", "w2"} {
		if serial.Estimate(id) != batched.Estimate(id) {
			t.Errorf("worker %s: duplicate-ID batch diverged from serial", id)
		}
	}
}

// TestObserveBatchReportsAllErrors: a batch with several poisoned workers
// reports every failure, not just the first.
func TestObserveBatchReportsAllErrors(t *testing.T) {
	m, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 16)
	scores := make([][]float64, 16)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%02d", i)
		scores[i] = []float64{5}
	}
	scores[2] = []float64{math.NaN()}
	scores[11] = []float64{math.NaN()}
	err = m.ObserveBatch(ids, scores)
	if err == nil {
		t.Fatal("poisoned batch accepted")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error does not identify the NaN scores: %v", err)
	}
	// Healthy workers must still have been observed.
	if _, ok := m.Posterior("w00"); !ok {
		t.Error("healthy worker skipped by failing batch")
	}
	// Both failures joined.
	if got := strings.Count(err.Error(), "NaN"); got != 2 {
		t.Errorf("joined error mentions %d failures, want 2", got)
	}
}

// TestObserveBatchSizeMismatch rejects ragged input.
func TestObserveBatchSizeMismatch(t *testing.T) {
	m, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ObserveBatch([]string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

// TestWindowMemoryBounded guards the slice-aliasing fix: after far more
// runs than the window, the retained history must hold exactly window runs
// and reuse ring slots instead of growing the backing array.
func TestWindowMemoryBounded(t *testing.T) {
	cfg := batchTestConfig()
	cfg.EMWindow = 10
	m, err := NewMelody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 500; run++ {
		if err := m.Observe("w", []float64{5, 6}); err != nil {
			t.Fatal(err)
		}
	}
	w := m.workers["w"]
	if got := len(w.hist.buf); got != cfg.EMWindow {
		t.Errorf("ring backing holds %d slots, want %d", got, cfg.EMWindow)
	}
	if got := w.hist.count; got != cfg.EMWindow {
		t.Errorf("ring count %d, want %d", got, cfg.EMWindow)
	}
	if view := w.hist.view(); len(view) != cfg.EMWindow {
		t.Errorf("view length %d, want %d", len(view), cfg.EMWindow)
	}
}

// TestScoreHistoryRingOrder checks chronological ordering across the wrap.
func TestScoreHistoryRingOrder(t *testing.T) {
	h := scoreHistory{window: 3}
	for i := 1; i <= 7; i++ {
		if _, ok := h.evictIfFull(); ok != (i > 3) {
			t.Fatalf("push %d: unexpected eviction state %v", i, ok)
		}
		h.push([]float64{float64(i)})
	}
	view := h.view()
	want := []float64{5, 6, 7}
	for i, run := range view {
		if run[0] != want[i] {
			t.Fatalf("view = %v, want runs %v", view, want)
		}
	}
}
