package quality

import (
	"fmt"
	"testing"

	"melody/internal/stats"
)

// driveEstimator feeds a deterministic multi-run trace into m.
func driveEstimator(t *testing.T, m *Melody, runs int) {
	t.Helper()
	r := stats.NewRNG(7)
	ids := []string{"w0", "w1", "w2", "w3"}
	for run := 0; run < runs; run++ {
		for i, id := range ids {
			var scores []float64
			for k := 0; k < (run+i)%3; k++ {
				scores = append(scores, r.Normal(5, 2))
			}
			if err := m.Observe(id, scores); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEstimatorSnapshotRoundTrip(t *testing.T) {
	cfg := batchTestConfig()
	m, err := NewMelody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive past an EM re-estimation so the snapshot must carry learned
	// params and window history, not just posteriors.
	driveEstimator(t, m, 12)

	blob, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewMelody(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"w0", "w1", "w2", "w3"} {
		want := m.Estimate(id)
		got := restored.Estimate(id)
		if got != want {
			t.Errorf("worker %s: restored quality %v, want %v (bit-identical)", id, got, want)
		}
		wf, err := m.Forecast(id, 5)
		if err != nil {
			t.Fatal(err)
		}
		gf, err := restored.Forecast(id, 5)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Mean != gf.Mean || wf.Var != gf.Var {
			t.Errorf("worker %s: restored forecast (%v,%v), want (%v,%v)", id, gf.Mean, gf.Var, wf.Mean, wf.Var)
		}
	}

	// Continuing both estimators with identical observations must keep them
	// bit-identical — the snapshot carried everything, including the EM
	// window needed for the next re-estimation.
	driveEstimator(t, m, 6)
	driveEstimator(t, restored, 6)
	for _, id := range []string{"w0", "w1", "w2", "w3"} {
		want := m.Estimate(id)
		got := restored.Estimate(id)
		if got != want {
			t.Errorf("worker %s diverged after restore: %v vs %v", id, got, want)
		}
	}
}

func TestRestoreStateValidation(t *testing.T) {
	m, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveEstimator(t, m, 2)
	blob, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	used, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveEstimator(t, used, 1)
	if err := used.RestoreState(blob); err == nil {
		t.Error("restore into a non-empty estimator accepted")
	}

	fresh, err := NewMelody(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, blob := range map[string][]byte{
		"garbage":       []byte("not json"),
		"wrong version": []byte(`{"version":42,"workers":[]}`),
		"empty id":      []byte(`{"version":1,"workers":[{"id":""}]}`),
		"duplicate id": []byte(fmt.Sprintf(
			`{"version":1,"workers":[%s,%s]}`,
			`{"id":"w","posterior":{"mean":1,"var":1},"params":{"a":1,"gamma":1,"eta":1},"window_init":{"mean":1,"var":1}}`,
			`{"id":"w","posterior":{"mean":1,"var":1},"params":{"a":1,"gamma":1,"eta":1},"window_init":{"mean":1,"var":1}}`)),
	} {
		if err := fresh.RestoreState(blob); err == nil {
			t.Errorf("%s: restore accepted", name)
		}
	}
}
