// Package verify is the mechanism-verification layer of the MELODY
// reproduction: reusable, allocation-light invariant checkers over auction
// instances and outcomes, the LDS inference pipeline, and the money ledger,
// plus truthfulness deviation probes with a counterexample shrinker,
// differential oracles, and the Table-3 instance generators shared by
// property tests and fuzz targets across the repository.
//
// Every checker returns an error describing the first violation found (nil
// when the invariant holds) instead of taking a *testing.T, so the same
// checks run from unit tests, the chaos soak, and native fuzz targets.
// TESTING.md catalogs the invariants and maps each to the paper theorem it
// verifies.
//
// # Tolerances
//
// Floating-point comparisons across the repository share two constants
// instead of scattering literals:
//
//   - Tol (1e-9) is the pointwise tolerance for comparing two individually
//     computed quantities: one payment against one cost or budget, a
//     variance against zero, one utility against another. Payments are
//     short products/sums of float64 values drawn from the paper's Table-3
//     ranges (costs in [1,2], qualities in [2,4], budgets up to ~1e4), so
//     each comparison accumulates at most a handful of rounding errors of
//     relative size 2^-52 on quantities of magnitude <= 1e4 — absolute
//     drift below ~1e-11. Tol leaves two orders of magnitude of headroom
//     while still catching any economically meaningful violation (the
//     smallest real gap in the workloads is ~1e-2).
//
//   - SumTol (1e-6) is the aggregate tolerance for comparing two different
//     summation orders of the same money: TotalPayment against a re-summed
//     assignment list, ledger balances against deposits. Aggregates can
//     span ~1e5 terms, so the accumulated drift bound is ~1e4 larger than
//     the pointwise one; SumTol scales Tol accordingly.
//
// Error-feasibility direction matters: feasibility checks (payment >= cost,
// total <= budget) allow the tolerance in the lenient direction only, so a
// genuine violation larger than the float noise always surfaces.
package verify

import "math"

// Tol is the pointwise comparison tolerance. See the package documentation
// for the rationale.
const Tol = 1e-9

// SumTol is the aggregate (re-summation) comparison tolerance. See the
// package documentation for the rationale.
const SumTol = 1e-6

// almostEqual reports |a-b| <= tol, the symmetric form used for accounting
// identities (as opposed to one-sided feasibility comparisons).
func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// finite reports whether x is a usable float (not NaN, not infinite).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
