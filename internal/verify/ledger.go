package verify

import (
	"fmt"
	"math"

	"melody/internal/ledger"
)

// CheckMoneyConservation verifies the ledger's double-entry invariant: the
// sum of all account balances equals the sum of external deposits (internal
// transfers move money, never create or destroy it), and no account is
// overdrawn. This is the accounting form of budget feasibility the chaos
// soak relies on: if a crash/replay ever double-paid a worker, escrow would
// go negative or balances would exceed deposits.
func CheckMoneyConservation(l *ledger.Ledger) error {
	var deposits float64
	for _, e := range l.Entries() {
		if !finite(e.Amount) || e.Amount <= 0 {
			return fmt.Errorf("verify: ledger entry %d has non-positive amount %v", e.Seq, e.Amount)
		}
		if e.Kind == ledger.KindDeposit {
			deposits += e.Amount
		}
	}
	var total float64
	for _, ab := range l.Accounts() {
		if ab.Balance < -Tol {
			return fmt.Errorf("verify: account %q overdrawn: balance %v", ab.Account, ab.Balance)
		}
		total += ab.Balance
	}
	// Scale the aggregate tolerance with the amount of money in flight so
	// large seasons don't trip on accumulated rounding.
	tol := math.Max(SumTol, SumTol*deposits)
	if !almostEqual(total, deposits, tol) {
		return fmt.Errorf("verify: money not conserved: balances sum to %v, deposits to %v", total, deposits)
	}
	return nil
}

// CheckEscrowSettled verifies that no money is stuck in escrow — the state
// between runs, after every opened settlement has been closed and refunded.
func CheckEscrowSettled(l *ledger.Ledger) error {
	if b := l.Balance(ledger.Escrow); math.Abs(b) > SumTol {
		return fmt.Errorf("verify: escrow holds %v after settlement; expected 0", b)
	}
	return nil
}

// CheckSettlementDrained is CheckEscrowSettled extended across epoch
// settlement: after every run has finished and the settler has flushed,
// neither escrow nor the epoch pool may hold money — every escrowed cent
// either reached a worker (as an aggregated epoch payout) or refunded to
// the requester. Run it with CheckMoneyConservation after a multi-tenant
// season: together they prove concurrent runs moved money without creating,
// destroying, or stranding any.
func CheckSettlementDrained(l *ledger.Ledger) error {
	if err := CheckEscrowSettled(l); err != nil {
		return err
	}
	if b := l.Balance(ledger.EpochPool); math.Abs(b) > SumTol {
		return fmt.Errorf("verify: epoch pool holds %v after flush; expected 0", b)
	}
	return nil
}
