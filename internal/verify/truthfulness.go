package verify

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/stats"
)

// RunFunc executes a mechanism on an instance. Probes call it repeatedly on
// mutated instances, so implementations must be deterministic across calls:
// pass Melody.Run directly, and for randomized mechanisms construct a fresh
// identically-seeded mechanism inside the closure so the random stream is
// coupled between the truthful and deviating replays.
type RunFunc func(core.Instance) (*core.Outcome, error)

// Counterexample is a recorded truthfulness violation: an instance, a
// worker, and a misreported bid under which the worker's utility —
// evaluated at the TRUE bid per Definition 1 — strictly exceeds the
// truthful utility.
type Counterexample struct {
	Instance core.Instance
	// Worker indexes Instance.Workers; TrueBid is its honest bid (the bid
	// stored in Instance), Lie the profitable misreport.
	Worker  int
	TrueBid core.Bid
	Lie     core.Bid
	// TruthfulUtility and LyingUtility are the worker's utilities under the
	// honest and misreported bids.
	TruthfulUtility float64
	LyingUtility    float64
}

// Gain is the utility improvement the lie obtained.
func (c *Counterexample) Gain() float64 { return c.LyingUtility - c.TruthfulUtility }

// String renders the counterexample compactly for failure messages.
func (c *Counterexample) String() string {
	return fmt.Sprintf(
		"worker %s (N=%d, M=%d, B=%.4g): bid (c=%.6g, n=%d) -> lie (c=%.6g, n=%d) raises utility %.6g -> %.6g (gain %.3g)",
		c.Instance.Workers[c.Worker].ID, len(c.Instance.Workers), len(c.Instance.Tasks), c.Instance.Budget,
		c.TrueBid.Cost, c.TrueBid.Frequency, c.Lie.Cost, c.Lie.Frequency,
		c.TruthfulUtility, c.LyingUtility, c.Gain())
}

// CostGrid returns steps bids spanning costs [lo, hi] at the worker's true
// frequency — the deviation grid for cost-misreport probes. The grid
// deliberately includes costs outside the qualification interval (bids that
// disqualify the worker), which a truthful mechanism must also not reward.
func CostGrid(truth core.Bid, lo, hi float64, steps int) []core.Bid {
	if steps < 2 {
		steps = 2
	}
	lies := make([]core.Bid, 0, steps)
	for i := 0; i < steps; i++ {
		c := lo + (hi-lo)*float64(i)/float64(steps-1)
		lies = append(lies, core.Bid{Cost: c, Frequency: truth.Frequency})
	}
	return lies
}

// FrequencyGrid returns bids misreporting the frequency from 1 to maxFreq
// (skipping the truthful value) at the worker's true cost.
func FrequencyGrid(truth core.Bid, maxFreq int) []core.Bid {
	lies := make([]core.Bid, 0, maxFreq)
	for n := 1; n <= maxFreq; n++ {
		if n == truth.Frequency {
			continue
		}
		lies = append(lies, core.Bid{Cost: truth.Cost, Frequency: n})
	}
	return lies
}

// ProbeWorker replays the mechanism with worker w's bid replaced by each
// lie in turn and returns the first deviation that strictly improves the
// worker's utility (Theorem 5 says none may exist), or nil when every lie
// loses or ties. Utilities are always evaluated at the true bid: payments
// received minus true cost per completed task, completions capped at the
// true frequency (core.WorkerUtility).
func ProbeWorker(run RunFunc, in core.Instance, w int, lies []core.Bid) (*Counterexample, error) {
	if w < 0 || w >= len(in.Workers) {
		return nil, fmt.Errorf("verify: probe worker index %d out of range [0,%d)", w, len(in.Workers))
	}
	truth := in.Workers[w]
	base, err := run(in)
	if err != nil {
		return nil, fmt.Errorf("verify: truthful run: %w", err)
	}
	truthfulU := core.WorkerUtility(base, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
	for _, lie := range lies {
		mutated := CloneInstance(in)
		mutated.Workers[w].Bid = lie
		out, err := run(mutated)
		if err != nil {
			return nil, fmt.Errorf("verify: deviating run (lie %+v): %w", lie, err)
		}
		lyingU := core.WorkerUtility(out, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
		if lyingU > truthfulU+Tol {
			return &Counterexample{
				Instance:        in,
				Worker:          w,
				TrueBid:         truth.Bid,
				Lie:             lie,
				TruthfulUtility: truthfulU,
				LyingUtility:    lyingU,
			}, nil
		}
	}
	return nil, nil
}

// DeviationStats aggregates utility gains across many deviation probes for
// the statistical form of the truthfulness check: on instances outside the
// fixed-cover-size regime (see EqualQualityInstance), individual deviations
// can be strictly profitable, so the suite bounds how often and how much
// instead of requiring zero.
type DeviationStats struct {
	// Probes counts evaluated deviations; Gains those that strictly
	// improved the deviator's utility (beyond Tol).
	Probes int
	Gains  int
	// GainSum accumulates lyingUtility - truthfulUtility over all probes
	// (negative terms included), so GainSum/Probes is the expected gain
	// from a random misreport.
	GainSum float64
	// Worst is the largest-gain violation seen, nil when none.
	Worst *Counterexample
}

// MeanGain is the average utility change per deviation.
func (s *DeviationStats) MeanGain() float64 {
	if s.Probes == 0 {
		return 0
	}
	return s.GainSum / float64(s.Probes)
}

// GainRate is the fraction of deviations that strictly gained.
func (s *DeviationStats) GainRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Gains) / float64(s.Probes)
}

// MeasureDeviations replays the mechanism for every lie and folds each
// utility change into agg. Unlike ProbeWorker it never stops early: every
// deviation is measured.
func MeasureDeviations(run RunFunc, in core.Instance, w int, lies []core.Bid, agg *DeviationStats) error {
	if w < 0 || w >= len(in.Workers) {
		return fmt.Errorf("verify: probe worker index %d out of range [0,%d)", w, len(in.Workers))
	}
	truth := in.Workers[w]
	base, err := run(in)
	if err != nil {
		return fmt.Errorf("verify: truthful run: %w", err)
	}
	truthfulU := core.WorkerUtility(base, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
	for _, lie := range lies {
		mutated := CloneInstance(in)
		mutated.Workers[w].Bid = lie
		out, err := run(mutated)
		if err != nil {
			return fmt.Errorf("verify: deviating run (lie %+v): %w", lie, err)
		}
		lyingU := core.WorkerUtility(out, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
		agg.Probes++
		agg.GainSum += lyingU - truthfulU
		if lyingU > truthfulU+Tol {
			agg.Gains++
			if agg.Worst == nil || lyingU-truthfulU > agg.Worst.Gain() {
				agg.Worst = &Counterexample{
					Instance: in, Worker: w, TrueBid: truth.Bid, Lie: lie,
					TruthfulUtility: truthfulU, LyingUtility: lyingU,
				}
			}
		}
	}
	return nil
}

// ProbeInstances runs single-worker cost and frequency deviation probes over
// count randomized instances drawn by gen, returning the first (shrunk)
// counterexample. mech must build a RunFunc for a given probe index so
// randomized mechanisms can couple seeds per instance. It is the engine
// behind the package's Theorem-5 regression suite and FuzzMelodyAuction.
func ProbeInstances(mech func(probe int) RunFunc, gen func(probe int) core.Instance, count, devsPerWorker int) (*Counterexample, error) {
	r := stats.NewRNG(0x5eed7)
	for probe := 0; probe < count; probe++ {
		in := gen(probe)
		if len(in.Workers) == 0 {
			continue
		}
		run := mech(probe)
		w := r.Intn(len(in.Workers))
		lies := CostGrid(in.Workers[w].Bid, 0.5, 2.5, devsPerWorker)
		lies = append(lies, FrequencyGrid(in.Workers[w].Bid, 6)...)
		ce, err := ProbeWorker(run, in, w, lies)
		if err != nil {
			return nil, fmt.Errorf("verify: probe %d: %w", probe, err)
		}
		if ce != nil {
			return Shrink(run, ce), nil
		}
	}
	return nil, nil
}

// Shrink greedily minimizes a counterexample before it is reported: it
// repeatedly removes workers and tasks from the instance while the
// violation (same worker, same lie, utility still strictly improved)
// persists, so the failure a human debugs involves the fewest moving parts.
// The probed worker itself is never removed. Shrinking is best-effort: if
// the mechanism errors on a shrunk instance the removal is simply skipped.
func Shrink(run RunFunc, ce *Counterexample) *Counterexample {
	cur := ce
	for {
		smaller := shrinkStep(run, cur)
		if smaller == nil {
			return cur
		}
		cur = smaller
	}
}

// shrinkStep tries every single-element removal and returns the first that
// preserves the violation, or nil when the counterexample is 1-minimal.
func shrinkStep(run RunFunc, ce *Counterexample) *Counterexample {
	for i := range ce.Instance.Workers {
		if i == ce.Worker {
			continue
		}
		cand := CloneInstance(ce.Instance)
		cand.Workers = append(cand.Workers[:i], cand.Workers[i+1:]...)
		w := ce.Worker
		if i < w {
			w--
		}
		if v := reverify(run, cand, w, ce.Lie); v != nil {
			return v
		}
	}
	for j := range ce.Instance.Tasks {
		cand := CloneInstance(ce.Instance)
		cand.Tasks = append(cand.Tasks[:j], cand.Tasks[j+1:]...)
		if len(cand.Tasks) == 0 {
			continue
		}
		if v := reverify(run, cand, ce.Worker, ce.Lie); v != nil {
			return v
		}
	}
	return nil
}

// reverify re-runs the truthful and deviating auctions on a shrunk instance
// and rebuilds the counterexample when the gain survives.
func reverify(run RunFunc, in core.Instance, w int, lie core.Bid) *Counterexample {
	truth := in.Workers[w]
	base, err := run(in)
	if err != nil {
		return nil
	}
	truthfulU := core.WorkerUtility(base, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
	mutated := CloneInstance(in)
	mutated.Workers[w].Bid = lie
	out, err := run(mutated)
	if err != nil {
		return nil
	}
	lyingU := core.WorkerUtility(out, truth.ID, truth.Bid.Cost, truth.Bid.Frequency)
	if lyingU <= truthfulU+Tol {
		return nil
	}
	return &Counterexample{
		Instance:        in,
		Worker:          w,
		TrueBid:         truth.Bid,
		Lie:             lie,
		TruthfulUtility: truthfulU,
		LyingUtility:    lyingU,
	}
}
