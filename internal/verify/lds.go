package verify

import (
	"fmt"
	"math"

	"melody/internal/lds"
)

// llSlack is the relative slack allowed when comparing log-likelihoods
// across EM iterations: monotonicity is exact in theory (each M-step
// maximizes the EM lower bound), but the closed-form M-step and the
// variance floor introduce rounding at the 1e-12 relative scale; 1e-7
// leaves margin without masking real regressions.
func llSlack(ll float64) float64 { return 1e-7 * (1 + math.Abs(ll)) }

// CheckStates verifies the numerical invariants of a filtered trajectory:
// every posterior is a proper Gaussian belief — finite mean, strictly
// positive finite variance (Theorem 3's recursion can never produce a
// negative variance).
func CheckStates(states []lds.State) error {
	for t, s := range states {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("verify: run %d: %w", t+1, err)
		}
	}
	return nil
}

// CheckFilterSmootherConsistency verifies two structural identities tying
// the forward (Kalman) filter to the RTS smoother on the same history:
//
//  1. at t = T the smoothed marginal equals the filtered posterior exactly
//     (the backward pass starts from it), and
//  2. at every t the smoothed variance is positive and never exceeds the
//     filtered variance (conditioning on the future cannot lose
//     information).
func CheckFilterSmootherConsistency(p lds.Params, init lds.State, history [][]float64) error {
	if len(history) == 0 {
		return fmt.Errorf("verify: empty history")
	}
	filtered, err := lds.Filter(p, init, history)
	if err != nil {
		return fmt.Errorf("verify: filter: %w", err)
	}
	if err := CheckStates(filtered); err != nil {
		return err
	}
	sm, err := lds.Smooth(p, init, history)
	if err != nil {
		return fmt.Errorf("verify: smoother: %w", err)
	}
	n := sm.Runs()
	if n != len(history) {
		return fmt.Errorf("verify: smoother covered %d runs, history has %d", n, len(history))
	}
	last := filtered[n-1]
	if !almostEqual(sm.Mean[n], last.Mean, Tol*(1+math.Abs(last.Mean))) ||
		!almostEqual(sm.Var[n], last.Var, Tol*(1+last.Var)) {
		return fmt.Errorf("verify: smoothed marginal at t=T (%v, %v) != filtered posterior (%v, %v)",
			sm.Mean[n], sm.Var[n], last.Mean, last.Var)
	}
	for t := 1; t <= n; t++ {
		if !finite(sm.Mean[t]) {
			return fmt.Errorf("verify: smoothed mean at t=%d is not finite: %v", t, sm.Mean[t])
		}
		if !(sm.Var[t] > 0) || !finite(sm.Var[t]) {
			return fmt.Errorf("verify: smoothed variance at t=%d is not positive and finite: %v", t, sm.Var[t])
		}
		fv := filtered[t-1].Var
		if sm.Var[t] > fv*(1+Tol)+Tol {
			return fmt.Errorf("verify: smoothed variance %v at t=%d exceeds filtered variance %v (smoothing lost information)",
				sm.Var[t], t, fv)
		}
	}
	return nil
}

// CheckEMMonotone verifies Algorithm 2's defining property: the log
// marginal likelihood is non-decreasing across EM iterations. It evaluates
// the likelihood at the starting parameters and after k = 1..maxIter
// iterations (EM is deterministic, so the k-iteration run extends the
// (k-1)-iteration one) and reports the first decrease beyond the numerical
// slack.
func CheckEMMonotone(start lds.Params, init lds.State, history [][]float64, maxIter int) error {
	if maxIter < 1 {
		maxIter = 5
	}
	prev, err := lds.LogLikelihood(start, init, history)
	if err != nil {
		return fmt.Errorf("verify: log-likelihood at start: %w", err)
	}
	for k := 1; k <= maxIter; k++ {
		res, err := lds.EM(start, init, history, lds.EMConfig{MaxIter: k})
		if err != nil {
			return fmt.Errorf("verify: EM with %d iterations: %w", k, err)
		}
		if !finite(res.LogLikelihood) {
			return fmt.Errorf("verify: EM log-likelihood after %d iterations is not finite: %v", k, res.LogLikelihood)
		}
		if res.LogLikelihood < prev-llSlack(prev) {
			return fmt.Errorf("verify: EM log-likelihood decreased at iteration %d: %v -> %v",
				k, prev, res.LogLikelihood)
		}
		if err := res.Params.Validate(); err != nil {
			return fmt.Errorf("verify: EM produced improper parameters after %d iterations: %w", k, err)
		}
		prev = res.LogLikelihood
		if res.Iterations < k || res.Converged {
			break
		}
	}
	return nil
}
