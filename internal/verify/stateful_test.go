package verify

import (
	"testing"

	"melody/internal/core"
	"melody/internal/stats"
)

// TestStatefulMatchesStateless replays long churn sequences (joins, leaves,
// bid and posterior updates) through a persistent core.AuctionState and
// requires every run's MELODY, MELODY-DUAL and OPT-UB outcome to be
// byte-identical to the stateless mechanisms and the naive reference oracle
// run from scratch on the registry snapshot. Churn levels straddle the
// repair/rebuild threshold, and both outcome modes (fresh and arena-reused)
// are covered.
func TestStatefulMatchesStateless(t *testing.T) {
	cfg := PaperConfig()
	cases := []struct {
		name  string
		churn float64
		opts  core.AuctionStateOptions
	}{
		{"churn1pct", 0.01, core.AuctionStateOptions{}},
		{"churn10pct", 0.10, core.AuctionStateOptions{}},
		{"churn10pct-reuse", 0.10, core.AuctionStateOptions{ReuseOutcome: true}},
		{"churn60pct-rebuild", 0.60, core.AuctionStateOptions{}},
		{"always-repair", 0.30, core.AuctionStateOptions{ChurnThreshold: 1}},
		{"always-rebuild", 0.05, core.AuctionStateOptions{ChurnThreshold: 1e-9}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := stats.NewRNG(int64(700 + i))
			steps := RandomChurnSequence(r, 55, 60, 8, tc.churn)
			if err := CheckStatefulSequence(cfg, steps, tc.opts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStatefulSequenceTinyRegistries drives the degenerate shapes — an
// empty registry, a single worker, registries that drain to nothing — where
// the merge repair and the availability restore hit their boundaries.
func TestStatefulSequenceTinyRegistries(t *testing.T) {
	cfg := PaperConfig()
	r := stats.NewRNG(31)
	for _, n := range []int{1, 2, 3} {
		steps := RandomChurnSequence(r, 50, n, 3, 0.9)
		if err := CheckStatefulSequence(cfg, steps, core.AuctionStateOptions{}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// FuzzIncrementalAuction lets the fuzzer steer a whole churn sequence: the
// RNG seed, registry and task-set sizes, sequence length, churn level and
// the cache's repair/rebuild threshold. Every step of every sequence is
// checked byte-identical against the stateless mechanisms and the reference
// oracle, so any divergence between the incremental structures and a
// from-scratch build — however deep into a sequence — is a crash.
//
// Run the smoke pass with `make fuzz-smoke`, or explore with
//
//	go test ./internal/verify -run '^$' -fuzz FuzzIncrementalAuction
func FuzzIncrementalAuction(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(5), uint8(10), uint8(3), uint8(128), false)
	f.Add(int64(2), uint8(1), uint8(3), uint8(50), uint8(230), uint8(1), true)
	f.Add(int64(3), uint8(60), uint8(8), uint8(12), uint8(25), uint8(255), false)
	f.Add(int64(4), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), true)
	f.Add(int64(-77), uint8(255), uint8(255), uint8(255), uint8(255), uint8(64), true)

	cfg := PaperConfig()
	f.Fuzz(func(t *testing.T, seed int64, n, m, runs, churnRaw, thresholdRaw uint8, reuse bool) {
		r := stats.NewRNG(seed)
		sequence := RandomChurnSequence(r,
			1+int(runs%16),
			1+int(n%64),
			1+int(m%10),
			float64(churnRaw)/255,
		)
		opts := core.AuctionStateOptions{
			ChurnThreshold: float64(thresholdRaw) / 255,
			ReuseOutcome:   reuse,
		}
		if err := CheckStatefulSequence(cfg, sequence, opts); err != nil {
			t.Fatal(err)
		}
	})
}
