package verify

import (
	"fmt"

	"melody/internal/core"
)

// OutcomeKind distinguishes the two shapes of core.Outcome produced by the
// mechanisms.
type OutcomeKind int

const (
	// Integral outcomes carry the full assignment scheme (x_ij binary):
	// MELODY, MELODY-DUAL, RANDOM.
	Integral OutcomeKind = iota
	// Fractional outcomes carry only selected tasks and payments, no
	// integral assignments: the OPT-UB relaxation.
	Fractional
)

// Checks selects which invariants CheckAuctionOutcome enforces on top of
// structural well-formedness. Use the mechanism presets (MelodyChecks,
// DualChecks, RandomChecks, OptUBChecks) unless testing a custom mechanism.
type Checks struct {
	Kind OutcomeKind
	// Budget enforces TotalPayment <= Instance.Budget (constraint 9 of the
	// paper). MELODY-DUAL ignores the budget by construction, so its preset
	// disables this.
	Budget bool
	// IndividualRationality enforces payment >= declared cost per
	// assignment (Theorem 6).
	IndividualRationality bool
	// CriticalPayments enforces the critical-payment rule backing Theorem
	// 4/5: within one task every winner is paid the same per-quality price
	// (the pivot's cost density), and that price is at least the winner's
	// own cost density — i.e. the payment is independent of the winner's
	// bid. Holds for MELODY, MELODY-DUAL and RANDOM (Appendix D), not for
	// arbitrary mechanisms.
	CriticalPayments bool
}

// MelodyChecks is the full invariant set for the MELODY mechanism.
func MelodyChecks() Checks {
	return Checks{Kind: Integral, Budget: true, IndividualRationality: true, CriticalPayments: true}
}

// DualChecks is the invariant set for MELODY-DUAL: identical to MELODY's
// except the budget constraint, which the dual problem does not have.
func DualChecks() Checks {
	return Checks{Kind: Integral, IndividualRationality: true, CriticalPayments: true}
}

// RandomChecks is the invariant set for the RANDOM baseline, whose
// Appendix-D payment rule is also a pivot-density critical payment.
func RandomChecks() Checks {
	return Checks{Kind: Integral, Budget: true, IndividualRationality: true, CriticalPayments: true}
}

// OptUBChecks is the invariant set for the fractional OPT-UB bound.
func OptUBChecks() Checks { return Checks{Kind: Fractional, Budget: true} }

// CheckAuctionOutcome runs the selected invariants, returning the first
// violation. It always starts with CheckOutcome (structural
// well-formedness).
func CheckAuctionOutcome(in core.Instance, out *core.Outcome, c Checks) error {
	if err := CheckOutcome(in, out, c.Kind); err != nil {
		return err
	}
	if c.Budget {
		if err := CheckBudgetFeasible(in, out); err != nil {
			return err
		}
	}
	if c.IndividualRationality {
		if err := CheckIndividualRationality(in, out); err != nil {
			return err
		}
	}
	if c.CriticalPayments {
		if err := CheckCriticalPayments(in, out); err != nil {
			return err
		}
	}
	return nil
}

// CheckOutcome verifies structural well-formedness of an outcome against
// its instance:
//
//  1. every assignment references an existing worker and task,
//  2. no (worker, task) pair appears twice (x_ij is binary),
//  3. every assigned task is in SelectedTasks and no task is selected twice,
//  4. per-task payments sum to TaskPayment and overall to TotalPayment,
//  5. payments are positive and finite,
//  6. per-worker assignment counts respect declared frequencies,
//  7. every selected task's threshold is covered by its winners' estimated
//     quality (Definition 2),
//
// with 1, 2, 5 (per-assignment) replaced by payment-only accounting for
// Fractional outcomes, which carry no integral assignments.
func CheckOutcome(in core.Instance, out *core.Outcome, kind OutcomeKind) error {
	if out == nil {
		return fmt.Errorf("verify: nil outcome")
	}
	if !finite(out.TotalPayment) || out.TotalPayment < 0 {
		return fmt.Errorf("verify: total payment %v is not finite and non-negative", out.TotalPayment)
	}
	tasks := make(map[string]core.Task, len(in.Tasks))
	for _, t := range in.Tasks {
		tasks[t.ID] = t
	}
	selected := make(map[string]bool, len(out.SelectedTasks))
	for _, id := range out.SelectedTasks {
		if _, ok := tasks[id]; !ok {
			return fmt.Errorf("verify: selected unknown task %q", id)
		}
		if selected[id] {
			return fmt.Errorf("verify: task %q selected twice", id)
		}
		selected[id] = true
	}
	for id := range out.TaskPayment {
		if !selected[id] {
			return fmt.Errorf("verify: payment recorded for unselected task %q", id)
		}
	}

	if kind == Fractional {
		var sum float64
		for _, p := range out.TaskPayment {
			if !finite(p) || p < 0 {
				return fmt.Errorf("verify: task payment %v is not finite and non-negative", p)
			}
			sum += p
		}
		if !almostEqual(sum, out.TotalPayment, SumTol) {
			return fmt.Errorf("verify: task payments sum %v != TotalPayment %v", sum, out.TotalPayment)
		}
		if len(out.Assignments) != 0 {
			return fmt.Errorf("verify: fractional outcome carries %d integral assignments", len(out.Assignments))
		}
		return nil
	}

	workers := make(map[string]core.Worker, len(in.Workers))
	for _, w := range in.Workers {
		workers[w.ID] = w
	}
	pairSeen := make(map[[2]string]bool, len(out.Assignments))
	perTaskPay := make(map[string]float64, len(selected))
	perTaskQuality := make(map[string]float64, len(selected))
	perWorkerCount := make(map[string]int, len(workers))
	var total float64
	for _, a := range out.Assignments {
		w, ok := workers[a.WorkerID]
		if !ok {
			return fmt.Errorf("verify: assignment references unknown worker %q", a.WorkerID)
		}
		if _, ok := tasks[a.TaskID]; !ok {
			return fmt.Errorf("verify: assignment references unknown task %q", a.TaskID)
		}
		key := [2]string{a.WorkerID, a.TaskID}
		if pairSeen[key] {
			return fmt.Errorf("verify: pair (%s, %s) assigned twice (x_ij must be binary)", a.WorkerID, a.TaskID)
		}
		pairSeen[key] = true
		if !selected[a.TaskID] {
			return fmt.Errorf("verify: assignment to unselected task %q", a.TaskID)
		}
		if !finite(a.Payment) || a.Payment <= 0 {
			return fmt.Errorf("verify: non-positive payment %v to worker %q", a.Payment, a.WorkerID)
		}
		perTaskPay[a.TaskID] += a.Payment
		perTaskQuality[a.TaskID] += w.Quality
		perWorkerCount[a.WorkerID]++
		total += a.Payment
	}
	if !almostEqual(total, out.TotalPayment, SumTol) {
		return fmt.Errorf("verify: assignments sum %v != TotalPayment %v", total, out.TotalPayment)
	}
	for id := range selected {
		if !almostEqual(perTaskPay[id], out.TaskPayment[id], SumTol) {
			return fmt.Errorf("verify: task %q: payments %v != TaskPayment %v", id, perTaskPay[id], out.TaskPayment[id])
		}
		if perTaskQuality[id] < tasks[id].Threshold-Tol {
			return fmt.Errorf("verify: task %q: allocated quality %v below threshold %v",
				id, perTaskQuality[id], tasks[id].Threshold)
		}
	}
	for id, count := range perWorkerCount {
		if count > workers[id].Bid.Frequency {
			return fmt.Errorf("verify: worker %q assigned %d tasks > declared frequency %d",
				id, count, workers[id].Bid.Frequency)
		}
	}
	return nil
}

// CheckBudgetFeasible verifies the paper's budget-feasibility constraint
// (constraint 9, proved for MELODY alongside Theorem 6): the requester's
// total expense never exceeds the published budget.
func CheckBudgetFeasible(in core.Instance, out *core.Outcome) error {
	if out.TotalPayment > in.Budget+Tol {
		return fmt.Errorf("verify: total payment %v exceeds budget %v", out.TotalPayment, in.Budget)
	}
	return nil
}

// CheckIndividualRationality verifies Theorem 6: every assignment pays the
// worker at least the declared cost, so no truthful winner runs a loss.
func CheckIndividualRationality(in core.Instance, out *core.Outcome) error {
	costs := make(map[string]float64, len(in.Workers))
	for _, w := range in.Workers {
		costs[w.ID] = w.Bid.Cost
	}
	for _, a := range out.Assignments {
		if a.Payment < costs[a.WorkerID]-Tol {
			return fmt.Errorf("verify: worker %q paid %v below declared cost %v on task %q",
				a.WorkerID, a.Payment, costs[a.WorkerID], a.TaskID)
		}
	}
	return nil
}

// CheckCriticalPayments verifies the pivot-pricing structure behind the
// truthfulness proof (Theorem 4/5): within each task all winners are paid
// the same per-quality price p_ij/mu_i (the pivot worker's cost density),
// and that price is at least each winner's own cost density — making the
// payment independent of the winner's declared bid. MELODY, MELODY-DUAL and
// RANDOM all price this way.
func CheckCriticalPayments(in core.Instance, out *core.Outcome) error {
	quality := make(map[string]float64, len(in.Workers))
	density := make(map[string]float64, len(in.Workers))
	for _, w := range in.Workers {
		quality[w.ID] = w.Quality
		density[w.ID] = w.Bid.Cost / w.Quality
	}
	taskPrice := make(map[string]float64, len(out.SelectedTasks))
	for _, a := range out.Assignments {
		mu := quality[a.WorkerID]
		if !(mu > 0) {
			return fmt.Errorf("verify: winner %q has non-positive quality %v", a.WorkerID, mu)
		}
		price := a.Payment / mu
		if prev, ok := taskPrice[a.TaskID]; ok {
			if !almostEqual(prev, price, Tol) {
				return fmt.Errorf("verify: task %q pays unequal per-quality prices %v and %v (bid-dependent payments)",
					a.TaskID, prev, price)
			}
		} else {
			taskPrice[a.TaskID] = price
		}
		if price < density[a.WorkerID]-Tol {
			return fmt.Errorf("verify: task %q price %v below winner %q's own cost density %v",
				a.TaskID, price, a.WorkerID, density[a.WorkerID])
		}
	}
	return nil
}
