package verify

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"melody/internal/core"
)

// ReferenceMelody is an independent, deliberately naive implementation of
// Algorithm 1 — the pre-optimization map-based O(N*M) reference that the
// indexed allocator replaced — kept as a differential oracle. It must
// produce byte-identical outcomes to core.Melody.Run on every valid
// instance; any divergence is an allocator bug, not a tolerance issue.
func ReferenceMelody(cfg core.Config, in core.Instance) (*core.Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("verify: reference melody: %w", err)
	}
	// Rank qualified workers by descending quality-per-cost with the ID
	// tie-break (Algorithm 1, lines 1-2).
	ranked := make([]core.Worker, 0, len(in.Workers))
	for _, w := range in.Workers {
		if cfg.Qualifies(w) {
			ranked = append(ranked, w)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		di := ranked[i].Quality / ranked[i].Bid.Cost
		dj := ranked[j].Quality / ranked[j].Bid.Cost
		if di != dj {
			return di > dj
		}
		return ranked[i].ID < ranked[j].ID
	})
	// Tasks by ascending threshold (line 3).
	tasks := make([]core.Task, len(in.Tasks))
	copy(tasks, in.Tasks)
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Threshold != tasks[j].Threshold {
			return tasks[i].Threshold < tasks[j].Threshold
		}
		return tasks[i].ID < tasks[j].ID
	})

	type candidate struct {
		task    core.Task
		winners []core.Worker
		pays    []float64
		total   float64
	}
	remaining := make(map[string]int, len(ranked))
	for _, w := range ranked {
		remaining[w.ID] = w.Bid.Frequency
	}
	var candidates []candidate
	for _, task := range tasks {
		// Smallest prefix of still-available workers covering Q_j.
		var winners []core.Worker
		sum := 0.0
		covered := -1
		for idx, w := range ranked {
			if remaining[w.ID] <= 0 {
				continue
			}
			winners = append(winners, w)
			sum += w.Quality
			if sum >= task.Threshold {
				covered = idx
				break
			}
		}
		if covered < 0 {
			continue
		}
		// Critical payment against the next available worker (the pivot).
		var pivot *core.Worker
		for idx := covered + 1; idx < len(ranked); idx++ {
			if remaining[ranked[idx].ID] > 0 {
				pivot = &ranked[idx]
				break
			}
		}
		if pivot == nil {
			continue
		}
		density := pivot.Bid.Cost / pivot.Quality
		c := candidate{task: task, winners: winners, pays: make([]float64, len(winners))}
		for i, w := range winners {
			p := density * w.Quality
			c.pays[i] = p
			c.total += p
		}
		for _, w := range winners {
			remaining[w.ID]--
		}
		candidates = append(candidates, c)
	}
	// Scheme determination: accept candidates in ascending order of total
	// payment while the budget allows (lines 15-21).
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].total != candidates[j].total {
			return candidates[i].total < candidates[j].total
		}
		return candidates[i].task.ID < candidates[j].task.ID
	})
	out := &core.Outcome{TaskPayment: make(map[string]float64)}
	budget := in.Budget
	for _, c := range candidates {
		if c.total > budget {
			break
		}
		budget -= c.total
		out.SelectedTasks = append(out.SelectedTasks, c.task.ID)
		out.TaskPayment[c.task.ID] = c.total
		out.TotalPayment += c.total
		for i, w := range c.winners {
			out.Assignments = append(out.Assignments, core.Assignment{
				WorkerID: w.ID, TaskID: c.task.ID, Payment: c.pays[i],
			})
		}
	}
	return out, nil
}

// CheckAgainstReference runs the optimized MELODY and the reference oracle
// on the same instance and requires byte-identical outcomes.
func CheckAgainstReference(cfg core.Config, in core.Instance) error {
	mel, err := core.NewMelody(cfg)
	if err != nil {
		return err
	}
	got, err := mel.Run(in)
	if err != nil {
		return fmt.Errorf("verify: melody: %w", err)
	}
	want, err := ReferenceMelody(cfg, in)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("verify: melody diverges from reference oracle:\n got: %+v\nwant: %+v", got, want)
	}
	return nil
}

// CheckExactBounds verifies, on instances small enough to enumerate, that
// the mechanisms bracket the true optimum: MELODY's utility never exceeds
// the exact optimum (a truthful mechanism cannot beat the omniscient
// optimum), and the OPT-UB relaxation never falls below it. Returns
// core.ErrInstanceTooLarge unchanged when the instance is not enumerable;
// callers decide whether to skip.
func CheckExactBounds(cfg core.Config, in core.Instance) error {
	opt, err := core.ExactOPT(in, cfg)
	if err != nil {
		if errors.Is(err, core.ErrInstanceTooLarge) {
			return err
		}
		return fmt.Errorf("verify: exact search: %w", err)
	}
	mel, err := core.NewMelody(cfg)
	if err != nil {
		return err
	}
	melOut, err := mel.Run(in)
	if err != nil {
		return fmt.Errorf("verify: melody: %w", err)
	}
	if melOut.Utility() > opt {
		return fmt.Errorf("verify: MELODY satisfied %d tasks, exceeding the exact optimum %d", melOut.Utility(), opt)
	}
	ub, err := core.NewOptUB(cfg)
	if err != nil {
		return err
	}
	ubOut, err := ub.Run(in)
	if err != nil {
		return fmt.Errorf("verify: opt-ub: %w", err)
	}
	if ubOut.Utility() < opt {
		return fmt.Errorf("verify: OPT-UB covered %d tasks, below the exact optimum %d (not an upper bound)", ubOut.Utility(), opt)
	}
	return nil
}
