package verify

import (
	"testing"

	"melody/internal/core"
	"melody/internal/stats"
)

// FuzzMelodyAuction drives all four mechanisms over fuzzer-chosen instances
// and funnels every outcome through the full invariant checkers plus the
// reference differential oracle. The instance is a Table-3 draw (seed, n,
// m, budget) with one extra fuzzer-controlled worker and task appended raw,
// so the fuzzer can steer edge values (boundary costs/qualities, huge
// thresholds, zero budgets) directly; instances the validator rejects are
// skipped — Run must reject them cleanly, never panic.
//
// Run the smoke pass with `make fuzz-smoke`, or explore with
//
//	go test ./internal/verify -run '^$' -fuzz FuzzMelodyAuction
func FuzzMelodyAuction(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4), 120.0, 1.5, 3.0, uint8(2), 8.0, uint8(3))
	f.Add(int64(2), uint8(0), uint8(0), 0.0, 1.0, 2.0, uint8(1), 6.0, uint8(1))
	f.Add(int64(3), uint8(80), uint8(50), 900.0, 2.0, 4.0, uint8(5), 12.0, uint8(7))
	f.Add(int64(4), uint8(3), uint8(1), 5.0, 0.5, 9.0, uint8(200), 1e6, uint8(1))
	f.Add(int64(-9e18), uint8(255), uint8(255), 1e308, 1e-300, -3.0, uint8(0), -1.0, uint8(255))

	cfg := PaperConfig()
	mel, err := core.NewMelody(cfg)
	if err != nil {
		f.Fatal(err)
	}
	ub, err := core.NewOptUB(cfg)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seed int64, n, m uint8, budget, cost, quality float64, freq uint8, threshold float64, target uint8) {
		r := stats.NewRNG(seed)
		if budget < 0 || budget > 1e12 {
			budget = r.Uniform(0, 1000)
		}
		in := RandomInstance(r, int(n%100), int(m%60), budget)
		// The raw fuzzer-controlled worker and task: Validate is the only
		// gate, so boundary and garbage values flow to it directly.
		in.Workers = append(in.Workers, core.Worker{
			ID:      "fuzz-w",
			Bid:     core.Bid{Cost: cost, Frequency: int(freq)},
			Quality: quality,
		})
		in.Tasks = append(in.Tasks, core.Task{ID: "fuzz-t", Threshold: threshold})
		if err := in.Validate(); err != nil {
			// Invalid instances must be rejected identically by every
			// mechanism, never half-processed.
			if _, runErr := mel.Run(in); runErr == nil {
				t.Fatalf("Validate rejected the instance (%v) but MELODY ran it", err)
			}
			return
		}

		out, err := mel.Run(in)
		if err != nil {
			t.Fatalf("melody: %v", err)
		}
		if err := CheckAuctionOutcome(in, out, MelodyChecks()); err != nil {
			t.Fatal(err)
		}
		if err := CheckAgainstReference(cfg, in); err != nil {
			t.Fatal(err)
		}

		dual, err := core.NewMelodyDual(cfg, 1+int(target%9))
		if err != nil {
			t.Fatal(err)
		}
		dout, err := dual.Run(in)
		if err != nil {
			t.Fatalf("melody-dual: %v", err)
		}
		if err := CheckAuctionOutcome(in, dout, DualChecks()); err != nil {
			t.Fatal(err)
		}
		if dout.Utility() > dual.Target() {
			t.Fatalf("melody-dual overshot target %d: utility %d", dual.Target(), dout.Utility())
		}

		rnd, err := core.NewRandom(cfg, stats.NewRNG(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		rout, err := rnd.Run(in)
		if err != nil {
			t.Fatalf("random: %v", err)
		}
		if err := CheckAuctionOutcome(in, rout, RandomChecks()); err != nil {
			t.Fatal(err)
		}

		uout, err := ub.Run(in)
		if err != nil {
			t.Fatalf("opt-ub: %v", err)
		}
		if err := CheckAuctionOutcome(in, uout, OptUBChecks()); err != nil {
			t.Fatal(err)
		}
		// OPT-UB is a relaxation bound: it can never satisfy fewer tasks
		// than MELODY achieves under the same budget.
		if uout.Utility() < out.Utility() {
			t.Fatalf("OPT-UB utility %d below MELODY's %d", uout.Utility(), out.Utility())
		}
	})
}
