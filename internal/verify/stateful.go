package verify

import (
	"fmt"
	"reflect"
	"strconv"

	"melody/internal/core"
	"melody/internal/stats"
)

// This file verifies the stateful incremental auction kernel
// (core.AuctionState) against the stateless mechanisms and the naive
// reference oracle: a churn sequence is replayed through the cache while a
// shadow registry is maintained independently, and every run's outcome must
// be byte-identical across all three implementations. The same machinery
// backs TestStatefulMatchesStateless and the FuzzIncrementalAuction target.

// ChurnStep is one run of a long-term churn sequence: the registry delta
// applied before the auction, the published task set and budget, and the
// dual mechanism's utility target.
type ChurnStep struct {
	Delta  core.WorkerDelta
	Tasks  []core.Task
	Budget float64
	Target int
}

// RandomChurnSequence draws a Table-3-shaped churn sequence: the first step
// seeds the registry with n workers; each later step mutates roughly
// churn*n workers (bid/quality updates, joins and departures) and publishes
// a fresh task set. IDs of joining workers are disjoint from the seed's.
func RandomChurnSequence(r *stats.RNG, runs, n, m int, churn float64) []ChurnStep {
	steps := make([]ChurnStep, 0, runs)
	alive := make([]string, 0, n)
	drawWorker := func(id string) core.Worker {
		return core.Worker{
			ID:      id,
			Bid:     core.Bid{Cost: r.Uniform(1, 2), Frequency: r.UniformInt(1, 5)},
			Quality: r.Uniform(2, 4),
		}
	}
	drawTasks := func() []core.Task {
		tasks := make([]core.Task, 0, m)
		for j := 0; j < m; j++ {
			tasks = append(tasks, core.Task{ID: "t" + strconv.Itoa(j), Threshold: r.Uniform(6, 12)})
		}
		return tasks
	}
	seed := core.WorkerDelta{}
	for i := 0; i < n; i++ {
		id := "w" + strconv.Itoa(i)
		seed.Upserts = append(seed.Upserts, drawWorker(id))
		alive = append(alive, id)
	}
	nextJoin := 0
	steps = append(steps, ChurnStep{
		Delta: seed, Tasks: drawTasks(), Budget: r.Uniform(0, 50*float64(m)), Target: 1 + r.Intn(m+1),
	})
	for run := 1; run < runs; run++ {
		mutations := int(churn * float64(len(alive)))
		if mutations < 1 {
			mutations = 1
		}
		var d core.WorkerDelta
		touched := make(map[string]bool)
		for k := 0; k < mutations; k++ {
			switch {
			case len(alive) > 1 && r.Bernoulli(0.6): // update an existing worker
				id := alive[r.Intn(len(alive))]
				if touched[id] {
					continue
				}
				touched[id] = true
				d.Upserts = append(d.Upserts, drawWorker(id))
			case len(alive) > 1 && r.Bernoulli(0.4): // departure
				i := r.Intn(len(alive))
				id := alive[i]
				if touched[id] {
					continue
				}
				touched[id] = true
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				d.Removes = append(d.Removes, id)
			default: // join
				id := "j" + strconv.Itoa(nextJoin)
				nextJoin++
				touched[id] = true
				alive = append(alive, id)
				d.Upserts = append(d.Upserts, drawWorker(id))
			}
		}
		steps = append(steps, ChurnStep{
			Delta: d, Tasks: drawTasks(), Budget: r.Uniform(0, 50*float64(m)), Target: 1 + r.Intn(m+1),
		})
	}
	return steps
}

// CheckStatefulSequence replays a churn sequence through one persistent
// AuctionState and demands, at every step and for every mechanism (MELODY,
// MELODY-DUAL, OPT-UB), a byte-identical outcome to the stateless mechanism
// run from scratch on the registry snapshot — and, for MELODY, to the naive
// reference oracle. A nil return means the whole sequence agreed.
func CheckStatefulSequence(cfg core.Config, steps []ChurnStep, opts core.AuctionStateOptions) error {
	st, err := core.NewAuctionState(cfg, opts)
	if err != nil {
		return err
	}
	melody, err := core.NewMelody(cfg)
	if err != nil {
		return err
	}
	optub, err := core.NewOptUB(cfg)
	if err != nil {
		return err
	}
	for run, step := range steps {
		if err := st.Apply(step.Delta); err != nil {
			return fmt.Errorf("run %d: apply: %w", run, err)
		}
		in := core.Instance{Workers: st.Snapshot(), Tasks: step.Tasks, Budget: step.Budget}

		want, err := melody.Run(in)
		if err != nil {
			return fmt.Errorf("run %d: stateless melody: %w", run, err)
		}
		got, err := st.RunMelody(step.Tasks, step.Budget)
		if err != nil {
			return fmt.Errorf("run %d: stateful melody: %w", run, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("run %d: stateful MELODY diverged from stateless\n got: %+v\nwant: %+v", run, got, want)
		}
		ref, err := ReferenceMelody(cfg, in)
		if err != nil {
			return fmt.Errorf("run %d: reference: %w", run, err)
		}
		if !reflect.DeepEqual(got, ref) {
			return fmt.Errorf("run %d: stateful MELODY diverged from reference\n got: %+v\nwant: %+v", run, got, ref)
		}

		dual, err := core.NewMelodyDual(cfg, step.Target)
		if err != nil {
			return fmt.Errorf("run %d: %w", run, err)
		}
		want, err = dual.Run(in)
		if err != nil {
			return fmt.Errorf("run %d: stateless dual: %w", run, err)
		}
		got, err = st.RunDual(step.Target, step.Tasks)
		if err != nil {
			return fmt.Errorf("run %d: stateful dual: %w", run, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("run %d: stateful MELODY-DUAL diverged from stateless\n got: %+v\nwant: %+v", run, got, want)
		}

		want, err = optub.Run(in)
		if err != nil {
			return fmt.Errorf("run %d: stateless optub: %w", run, err)
		}
		got, err = st.RunOptUB(step.Tasks, step.Budget)
		if err != nil {
			return fmt.Errorf("run %d: stateful optub: %w", run, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("run %d: stateful OPT-UB diverged from stateless\n got: %+v\nwant: %+v", run, got, want)
		}
	}
	return nil
}
