package verify

import "fmt"

// TenantUsage is the checker-neutral view of one tenant's budget accounting,
// adapted from melody.TenantStatus by the caller (this package must not
// depend on the root module).
type TenantUsage struct {
	Tenant string

	// HasQuota marks a tenant with an enforced lifetime budget quota; when
	// false, Quota is ignored (the tenant is unlimited).
	HasQuota bool
	Quota    float64

	// Spent is realized spend across settled runs; Escrowed is budget held
	// by the currently open run, not yet settled or refunded.
	Spent    float64
	Escrowed float64

	// RunsOpened counts admitted opens; MaxRuns ≤ 0 means uncapped.
	RunsOpened int
	MaxRuns    int
}

// CheckTenantQuotas verifies the scheduler's admission invariant for every
// tenant: committed money (realized spend plus outstanding escrow) never
// exceeds the quota that was enforced at OpenRun, counters are sane, and a
// capped tenant never opened more runs than its cap. A violation means an
// open was admitted that the quota should have refused — the crowdsourcing
// analogue of an overdraft.
func CheckTenantQuotas(usages []TenantUsage) error {
	for _, u := range usages {
		if !finite(u.Spent) || !finite(u.Escrowed) {
			return fmt.Errorf("verify: tenant %q has non-finite usage (spent %v, escrowed %v)", u.Tenant, u.Spent, u.Escrowed)
		}
		if u.Spent < -Tol {
			return fmt.Errorf("verify: tenant %q has negative spend %v", u.Tenant, u.Spent)
		}
		if u.Escrowed < -Tol {
			return fmt.Errorf("verify: tenant %q has negative escrow %v", u.Tenant, u.Escrowed)
		}
		if u.RunsOpened < 0 {
			return fmt.Errorf("verify: tenant %q has negative run count %d", u.Tenant, u.RunsOpened)
		}
		if u.HasQuota {
			if !finite(u.Quota) || u.Quota < 0 {
				return fmt.Errorf("verify: tenant %q has invalid quota %v", u.Tenant, u.Quota)
			}
			if committed := u.Spent + u.Escrowed; committed > u.Quota+SumTol {
				return fmt.Errorf("verify: tenant %q over quota: spent %v + escrowed %v = %v exceeds quota %v",
					u.Tenant, u.Spent, u.Escrowed, committed, u.Quota)
			}
		}
		if u.MaxRuns > 0 && u.RunsOpened > u.MaxRuns {
			return fmt.Errorf("verify: tenant %q opened %d runs, cap is %d", u.Tenant, u.RunsOpened, u.MaxRuns)
		}
	}
	return nil
}
