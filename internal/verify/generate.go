package verify

import (
	"strconv"

	"melody/internal/core"
	"melody/internal/stats"
)

// PaperConfig returns the qualification intervals implied by the paper's
// Table 3: quality in [2,4], cost in [1,2]. It is the configuration every
// property test and fuzz target verifies under.
func PaperConfig() core.Config {
	return core.Config{QualityMin: 2, QualityMax: 4, CostMin: 1, CostMax: 2}
}

// RandomInstance draws a random single-run-auction instance per Table 3:
// n workers with uniform costs in [1,2), frequencies in [1,5] and qualities
// in [2,4); m tasks with thresholds in [6,12).
func RandomInstance(r *stats.RNG, n, m int, budget float64) core.Instance {
	in := core.Instance{Budget: budget}
	in.Workers = make([]core.Worker, 0, n)
	for i := 0; i < n; i++ {
		in.Workers = append(in.Workers, core.Worker{
			ID:      "w" + strconv.Itoa(i),
			Bid:     core.Bid{Cost: r.Uniform(1, 2), Frequency: r.UniformInt(1, 5)},
			Quality: r.Uniform(2, 4),
		})
	}
	in.Tasks = make([]core.Task, 0, m)
	for j := 0; j < m; j++ {
		in.Tasks = append(in.Tasks, core.Task{ID: "t" + strconv.Itoa(j), Threshold: r.Uniform(6, 12)})
	}
	return in
}

// EqualQualityInstance draws a Table-3 instance whose workers all share one
// quality level (uniform in [2,4)). With homogeneous quality a task's cover
// size k = ceil(Q_j/mu) is bid-independent, so no deviation can change the
// winner count — the fixed-k-and-pivot regime in which Theorem 4/5's
// critical-payment argument binds exactly and strict per-instance
// truthfulness is provable. See TESTING.md: on heterogeneous instances a
// deviation that changes the cover size can be strictly profitable, so
// general instances are probed statistically instead.
func EqualQualityInstance(r *stats.RNG, n, m int, budget float64) core.Instance {
	in := RandomInstance(r, n, m, budget)
	mu := r.Uniform(2, 4)
	for i := range in.Workers {
		in.Workers[i].Quality = mu
	}
	return in
}

// CloneInstance deep-copies an instance so a deviation probe can mutate one
// worker's bid without touching the original.
func CloneInstance(in core.Instance) core.Instance {
	out := core.Instance{Budget: in.Budget}
	out.Workers = make([]core.Worker, len(in.Workers))
	copy(out.Workers, in.Workers)
	out.Tasks = make([]core.Task, len(in.Tasks))
	copy(out.Tasks, in.Tasks)
	return out
}
