package verify

import (
	"errors"
	"strings"
	"testing"

	"melody/internal/core"
	"melody/internal/lds"
	"melody/internal/ledger"
	"melody/internal/stats"
)

// run constructs a deterministic MELODY RunFunc under the paper config.
func melodyRun(t *testing.T) RunFunc {
	t.Helper()
	mel, err := core.NewMelody(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mel.Run
}

// TestCheckersPassOnMechanismOutcomes: the full invariant sets hold on real
// outcomes from all four mechanisms across randomized instances.
func TestCheckersPassOnMechanismOutcomes(t *testing.T) {
	r := stats.NewRNG(42)
	cfg := PaperConfig()
	mel, _ := core.NewMelody(cfg)
	ub, _ := core.NewOptUB(cfg)
	for trial := 0; trial < 60; trial++ {
		in := RandomInstance(r.Split(), 1+r.Intn(60), 1+r.Intn(40), r.Uniform(0, 800))

		out, err := mel.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAuctionOutcome(in, out, MelodyChecks()); err != nil {
			t.Fatalf("MELODY trial %d: %v", trial, err)
		}

		dual, err := core.NewMelodyDual(cfg, 1+r.Intn(7))
		if err != nil {
			t.Fatal(err)
		}
		dout, err := dual.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAuctionOutcome(in, dout, DualChecks()); err != nil {
			t.Fatalf("MELODY-DUAL trial %d: %v", trial, err)
		}

		rnd, err := core.NewRandom(cfg, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		rout, err := rnd.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAuctionOutcome(in, rout, RandomChecks()); err != nil {
			t.Fatalf("RANDOM trial %d: %v", trial, err)
		}

		uout, err := ub.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAuctionOutcome(in, uout, OptUBChecks()); err != nil {
			t.Fatalf("OPT-UB trial %d: %v", trial, err)
		}
	}
}

// TestCheckersCatchViolations: each checker rejects a hand-broken outcome.
func TestCheckersCatchViolations(t *testing.T) {
	in := core.Instance{
		Budget: 100,
		Workers: []core.Worker{
			{ID: "a", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 3},
			{ID: "b", Bid: core.Bid{Cost: 1.5, Frequency: 2}, Quality: 3},
		},
		Tasks: []core.Task{{ID: "t", Threshold: 5}},
	}
	good := &core.Outcome{
		Assignments: []core.Assignment{
			{WorkerID: "a", TaskID: "t", Payment: 3},
			{WorkerID: "b", TaskID: "t", Payment: 3},
		},
		SelectedTasks: []string{"t"},
		TaskPayment:   map[string]float64{"t": 6},
		TotalPayment:  6,
	}
	if err := CheckAuctionOutcome(in, good, MelodyChecks()); err != nil {
		t.Fatalf("well-formed outcome rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(o *core.Outcome)
		want   string
	}{
		{"unknown worker", func(o *core.Outcome) { o.Assignments[0].WorkerID = "ghost" }, "unknown worker"},
		{"unknown task", func(o *core.Outcome) { o.Assignments[0].TaskID = "ghost" }, "unknown task"},
		{"duplicate pair", func(o *core.Outcome) { o.Assignments[1] = o.Assignments[0] }, "assigned twice"},
		{"unselected task", func(o *core.Outcome) { o.SelectedTasks = nil; o.TaskPayment = map[string]float64{} }, "unselected"},
		{"negative payment", func(o *core.Outcome) { o.Assignments[0].Payment = -1 }, "non-positive payment"},
		{"total mismatch", func(o *core.Outcome) { o.TotalPayment = 99 }, "!= TotalPayment"},
		{"task payment mismatch", func(o *core.Outcome) { o.TaskPayment["t"] = 1 }, "TaskPayment"},
		{"threshold uncovered", func(o *core.Outcome) {
			o.Assignments = o.Assignments[:1]
			o.TaskPayment["t"] = 3
			o.TotalPayment = 3
		}, "below threshold"},
		{"budget exceeded", func(o *core.Outcome) {
			o.Assignments[0].Payment = 200
			o.TaskPayment["t"] = 203
			o.TotalPayment = 203
		}, "exceeds budget"},
	}
	for _, tc := range cases {
		o := &core.Outcome{
			Assignments:   append([]core.Assignment(nil), good.Assignments...),
			SelectedTasks: append([]string(nil), good.SelectedTasks...),
			TaskPayment:   map[string]float64{"t": good.TaskPayment["t"]},
			TotalPayment:  good.TotalPayment,
		}
		tc.mutate(o)
		err := CheckAuctionOutcome(in, o, MelodyChecks())
		if err == nil {
			t.Errorf("%s: violation not caught", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCheckIndividualRationalityCatches: payment below declared cost.
func TestCheckIndividualRationalityCatches(t *testing.T) {
	in := core.Instance{
		Budget:  10,
		Workers: []core.Worker{{ID: "a", Bid: core.Bid{Cost: 2, Frequency: 1}, Quality: 3}},
		Tasks:   []core.Task{{ID: "t", Threshold: 2}},
	}
	out := &core.Outcome{
		Assignments:   []core.Assignment{{WorkerID: "a", TaskID: "t", Payment: 1}},
		SelectedTasks: []string{"t"},
		TaskPayment:   map[string]float64{"t": 1},
		TotalPayment:  1,
	}
	if err := CheckIndividualRationality(in, out); err == nil {
		t.Fatal("underpayment not caught")
	}
}

// TestCheckCriticalPaymentsCatches: bid-dependent (unequal per-quality)
// prices within one task.
func TestCheckCriticalPaymentsCatches(t *testing.T) {
	in := core.Instance{
		Budget: 100,
		Workers: []core.Worker{
			{ID: "a", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 2},
			{ID: "b", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 2},
		},
		Tasks: []core.Task{{ID: "t", Threshold: 3}},
	}
	out := &core.Outcome{
		Assignments: []core.Assignment{
			{WorkerID: "a", TaskID: "t", Payment: 2},
			{WorkerID: "b", TaskID: "t", Payment: 3},
		},
		SelectedTasks: []string{"t"},
		TaskPayment:   map[string]float64{"t": 5},
		TotalPayment:  5,
	}
	if err := CheckCriticalPayments(in, out); err == nil {
		t.Fatal("unequal per-quality prices not caught")
	}
}

// TestTruthfulnessProbeFixedCoverRegime is the strict Theorem 5 regression
// gate: across well over 200 randomized single-task instances in the
// fixed-cover-size regime (homogeneous quality, where a deviation can never
// change the winner count k — the granularity at which the paper's
// fixed-k-and-pivot proof binds), no sampled cost or frequency deviation
// may strictly improve a worker's utility, binding budgets included.
func TestTruthfulnessProbeFixedCoverRegime(t *testing.T) {
	mel, err := core.NewMelody(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9001)
	const instances = 240
	gens := make([]core.Instance, instances)
	for i := range gens {
		gens[i] = EqualQualityInstance(r.Split(), 6+r.Intn(30), 1, r.Uniform(5, 50))
	}
	ce, err := ProbeInstances(
		func(int) RunFunc { return mel.Run },
		func(probe int) core.Instance { return gens[probe] },
		instances, 12,
	)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("MELODY rewarded a misreport in the fixed-k regime: %s", ce)
	}
}

// TestTruthfulnessStatisticalGeneralRegime probes general Table-3 instances
// (heterogeneous quality, single- and multi-task), where cover-size shifts
// make individual deviations occasionally profitable: the suite bounds the
// expected gain (must be negative) and the gain frequency instead of
// requiring zero.
func TestTruthfulnessStatisticalGeneralRegime(t *testing.T) {
	mel, err := core.NewMelody(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(9002)
	var agg DeviationStats
	for probe := 0; probe < 120; probe++ {
		m := 1
		if probe%2 == 1 {
			m = 5 + r.Intn(20)
		}
		in := RandomInstance(r.Split(), 8+r.Intn(30), m, r.Uniform(20, 400))
		w := r.Intn(len(in.Workers))
		lies := CostGrid(in.Workers[w].Bid, 0.5, 2.5, 8)
		lies = append(lies, FrequencyGrid(in.Workers[w].Bid, 6)...)
		if err := MeasureDeviations(mel.Run, in, w, lies, &agg); err != nil {
			t.Fatal(err)
		}
	}
	if agg.MeanGain() > 0 {
		t.Errorf("misreporting pays on average: mean gain %v over %d probes (worst: %s)",
			agg.MeanGain(), agg.Probes, agg.Worst)
	}
	if agg.GainRate() > 0.10 {
		t.Errorf("misreporting paid in %.1f%% of %d probes; expected rare (worst: %s)",
			100*agg.GainRate(), agg.Probes, agg.Worst)
	}
}

// TestKnownCoverShiftCounterexample pins the known strict-truthfulness
// violation the probes discovered on heterogeneous instances: w3
// underbidding (1.31775 -> 1.04545) inserts itself into the cover prefix,
// GROWING the winner set from {w1,w4} to {w1,w3,w4} and pushing the pivot
// from w3 (density 0.628) to the costlier w5 (density 0.920), so w3 is paid
// above its critical bid. The probe must find it and the shrinker must keep
// it reproducible — if a future allocator change makes this instance
// truthful, this test documents the behavior shift.
func TestKnownCoverShiftCounterexample(t *testing.T) {
	in := core.Instance{
		Budget: 26.36901,
		Workers: []core.Worker{
			{ID: "w1", Bid: core.Bid{Cost: 1.33129, Frequency: 2}, Quality: 3.87836},
			{ID: "w3", Bid: core.Bid{Cost: 1.31775, Frequency: 1}, Quality: 2.09788},
			{ID: "w4", Bid: core.Bid{Cost: 1.43089, Frequency: 4}, Quality: 2.61506},
			{ID: "w5", Bid: core.Bid{Cost: 1.87443, Frequency: 3}, Quality: 2.03822},
		},
		Tasks: []core.Task{{ID: "t0", Threshold: 6.10186}},
	}
	run := melodyRun(t)
	ce, err := ProbeWorker(run, in, 1, []core.Bid{{Cost: 1.04545, Frequency: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("known cover-shift counterexample no longer reproduces; " +
			"if the payment rule changed, update TESTING.md's truthfulness caveat")
	}
	shrunk := Shrink(run, ce)
	if len(shrunk.Instance.Tasks) != 1 || len(shrunk.Instance.Workers) > 4 {
		t.Errorf("shrinker left N=%d, M=%d; want N<=4, M=1",
			len(shrunk.Instance.Workers), len(shrunk.Instance.Tasks))
	}
	if v := reverify(run, shrunk.Instance, shrunk.Worker, shrunk.Lie); v == nil {
		t.Error("shrunk counterexample does not reproduce")
	}
}

// TestTruthfulnessProbeRandomMechanism couples seeds across the truthful
// and deviating replays of RANDOM and asserts the Appendix-D payment rule
// holds on single-task instances on average; strict per-draw gains are
// possible (pool stopping points shift), so this probes a smaller grid and
// tolerates nothing only in expectation — mirroring the seed suite. Here we
// assert the probe machinery itself: it must complete without error and
// any reported gain must come with a reproducible shrunk counterexample.
func TestTruthfulnessProbeRandomMechanism(t *testing.T) {
	r := stats.NewRNG(77)
	var gains int
	const instances = 60
	for probe := 0; probe < instances; probe++ {
		seed := int64(probe*7919 + 13)
		in := RandomInstance(r.Split(), 10+r.Intn(20), 1, r.Uniform(5, 50))
		run := func(inst core.Instance) (*core.Outcome, error) {
			rnd, err := core.NewRandom(PaperConfig(), stats.NewRNG(seed))
			if err != nil {
				return nil, err
			}
			return rnd.Run(inst)
		}
		ce, err := ProbeWorker(run, in, r.Intn(len(in.Workers)), CostGrid(in.Workers[0].Bid, 1, 2, 5))
		if err != nil {
			t.Fatal(err)
		}
		if ce != nil {
			gains++
			// The violation must reproduce after shrinking (the shrinker
			// never reports a non-violation).
			shrunk := Shrink(run, ce)
			if v := reverify(run, shrunk.Instance, shrunk.Worker, shrunk.Lie); v == nil {
				t.Fatalf("shrinker reported a non-reproducing counterexample: %s", shrunk)
			}
		}
	}
	if gains > instances/4 {
		t.Fatalf("RANDOM rewarded misreports in %d/%d probes; expected rare", gains, instances)
	}
}

// payAsBid is a deliberately manipulable mechanism (pay every assigned
// worker their declared cost plus a margin proportional to it): over-
// bidding strictly gains, so probes must find and shrink a counterexample.
func payAsBid(in core.Instance) (*core.Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	out := &core.Outcome{TaskPayment: make(map[string]float64)}
	for _, task := range in.Tasks {
		var q float64
		for _, w := range in.Workers {
			q += w.Quality
		}
		if q < task.Threshold {
			continue
		}
		out.SelectedTasks = append(out.SelectedTasks, task.ID)
		for _, w := range in.Workers {
			p := 1.5 * w.Bid.Cost
			out.Assignments = append(out.Assignments, core.Assignment{WorkerID: w.ID, TaskID: task.ID, Payment: p})
			out.TaskPayment[task.ID] += p
			out.TotalPayment += p
		}
	}
	return out, nil
}

// TestProbeFindsAndShrinksCounterexample: the probe detects the pay-as-bid
// manipulation and the shrinker minimizes the instance to its essential
// core (one task; no bystander workers beyond those needed for coverage).
func TestProbeFindsAndShrinksCounterexample(t *testing.T) {
	r := stats.NewRNG(5)
	in := RandomInstance(r, 20, 8, 1e6)
	ce, err := ProbeWorker(payAsBid, in, 3, CostGrid(in.Workers[3].Bid, 1.2, 2.0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("probe missed the pay-as-bid manipulation")
	}
	shrunk := Shrink(payAsBid, ce)
	if len(shrunk.Instance.Tasks) != 1 {
		t.Errorf("shrinker left %d tasks; want 1", len(shrunk.Instance.Tasks))
	}
	// Pay-as-bid gains persist with any coverage-sufficient worker set; the
	// shrinker must have pruned most of the 20 bystanders.
	if len(shrunk.Instance.Workers) > 4 {
		t.Errorf("shrinker left %d workers; want <= 4", len(shrunk.Instance.Workers))
	}
	if v := reverify(payAsBid, shrunk.Instance, shrunk.Worker, shrunk.Lie); v == nil {
		t.Error("shrunk counterexample does not reproduce")
	}
}

// TestReferenceOracleMatchesMelody: the optimized allocator and the naive
// reference produce byte-identical outcomes, including degenerate shapes.
func TestReferenceOracleMatchesMelody(t *testing.T) {
	r := stats.NewRNG(1234)
	cfg := PaperConfig()
	for trial := 0; trial < 120; trial++ {
		in := RandomInstance(r.Split(), r.Intn(80), r.Intn(50), r.Uniform(0, 900))
		if len(in.Tasks) == 0 && len(in.Workers) == 0 {
			continue
		}
		if err := CheckAgainstReference(cfg, in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestExactBoundsBracketMechanisms: on enumerable instances, MELODY <=
// exact optimum <= OPT-UB.
func TestExactBoundsBracketMechanisms(t *testing.T) {
	r := stats.NewRNG(4321)
	cfg := PaperConfig()
	checked := 0
	for trial := 0; trial < 60; trial++ {
		in := RandomInstance(r.Split(), 2+r.Intn(5), 1+r.Intn(3), r.Uniform(2, 40))
		err := CheckExactBounds(cfg, in)
		if errors.Is(err, core.ErrInstanceTooLarge) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d/60 instances were enumerable; generator too large", checked)
	}
}

// TestLDSChecksPassOnRandomHistories: the Kalman/EM invariants hold on
// randomized score histories, including all-missing runs.
func TestLDSChecksPassOnRandomHistories(t *testing.T) {
	r := stats.NewRNG(55)
	p := lds.Params{A: 0.9, Gamma: 0.2, Eta: 0.5}
	init := lds.State{Mean: 3, Var: 1}
	for trial := 0; trial < 30; trial++ {
		runs := 1 + r.Intn(40)
		history := make([][]float64, runs)
		for i := range history {
			n := r.Intn(4) // 0 scores = unobserved run
			for j := 0; j < n; j++ {
				history[i] = append(history[i], r.Normal(3, 1))
			}
		}
		states, err := lds.Filter(p, init, history)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckStates(states); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckFilterSmootherConsistency(p, init, history); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckEMMonotone(lds.Params{A: 1, Gamma: 1, Eta: 1}, init, history, 6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// All-missing history: every run unobserved is a pure prediction chain.
	blank := make([][]float64, 12)
	states, err := lds.Filter(p, init, blank)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckStates(states); err != nil {
		t.Fatal(err)
	}
	if err := CheckFilterSmootherConsistency(p, init, blank); err != nil {
		t.Fatal(err)
	}
}

// TestLDSChecksCatchBrokenStates: a negative variance is rejected.
func TestLDSChecksCatchBrokenStates(t *testing.T) {
	if err := CheckStates([]lds.State{{Mean: 1, Var: 0.5}, {Mean: 1, Var: -0.1}}); err == nil {
		t.Fatal("negative posterior variance not caught")
	}
}

// TestLedgerConservationChecks: conservation holds across a settled run and
// detects an out-of-band mutation.
func TestLedgerConservationChecks(t *testing.T) {
	l := ledger.New()
	if _, err := l.Deposit(ledger.Requester, 100, "fund"); err != nil {
		t.Fatal(err)
	}
	s, err := l.OpenRun(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pay("w1", 12.5, "t1"); err != nil {
		t.Fatal(err)
	}
	if err := CheckMoneyConservation(l); err != nil {
		t.Fatalf("mid-run conservation: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CheckMoneyConservation(l); err != nil {
		t.Fatalf("post-close conservation: %v", err)
	}
	if err := CheckEscrowSettled(l); err != nil {
		t.Fatalf("escrow not settled: %v", err)
	}
	// An open settlement leaves money in escrow: the settled check must say
	// so.
	if _, err := l.OpenRun(2, 10); err != nil {
		t.Fatal(err)
	}
	if err := CheckEscrowSettled(l); err == nil {
		t.Fatal("stuck escrow not caught")
	}
}

// TestEstimatorCheckerCatchesPoisoning: a hostile estimator that keeps NaN
// state is rejected by CheckEstimator.
type poisonEstimator struct{ est float64 }

func (p *poisonEstimator) Name() string { return "POISON" }
func (p *poisonEstimator) Estimate(string) float64 {
	return p.est
}
func (p *poisonEstimator) Observe(_ string, scores []float64) error {
	for _, s := range scores {
		p.est += s // accepts NaN, poisoning all future estimates
	}
	return nil
}

func TestEstimatorCheckerCatchesPoisoning(t *testing.T) {
	e := &poisonEstimator{est: 3}
	err := CheckEstimator(e, []string{"w1"}, [][][]float64{{{3, 3.5}}, {{}}})
	if err == nil {
		t.Fatal("NaN-accepting estimator not caught")
	}
}

// melodyRun is referenced by fuzz seeds; keep the helper exercised.
func TestMelodyRunHelper(t *testing.T) {
	run := melodyRun(t)
	out, err := run(RandomInstance(stats.NewRNG(1), 8, 3, 50))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckOutcome(RandomInstance(stats.NewRNG(1), 8, 3, 50), out, Integral); err != nil {
		t.Fatal(err)
	}
}
