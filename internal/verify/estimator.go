package verify

import (
	"fmt"
	"math"

	"melody/internal/quality"
)

// CheckEstimator drives a quality estimator through a deterministic
// observation schedule and verifies the conformance contract every
// estimator (MELODY's LDS tracker and the baselines alike) must honor:
//
//  1. unseen workers get a finite initial estimate,
//  2. after every Observe — including empty score sets (the worker won no
//     tasks that run) and all-missing observation runs — every estimate
//     stays finite,
//  3. a rejected observation (NaN or absurd score) returns an error and
//     does not poison state: the worker's estimate is unchanged.
//
// runs[r][i] holds the scores ids[i] earned in run r; an empty slice means
// the worker was unobserved that run, mirroring Estimator.Observe's
// contract that it is called for every worker every run.
func CheckEstimator(e quality.Estimator, ids []string, runs [][][]float64) error {
	if est := e.Estimate("verify-never-seen-worker"); !finite(est) {
		return fmt.Errorf("verify: %s: initial estimate %v for unseen worker is not finite", e.Name(), est)
	}
	for r, scores := range runs {
		if len(scores) != len(ids) {
			return fmt.Errorf("verify: run %d has %d score sets for %d workers", r+1, len(scores), len(ids))
		}
		for i, id := range ids {
			if err := e.Observe(id, scores[i]); err != nil {
				return fmt.Errorf("verify: %s: observe worker %q run %d: %w", e.Name(), id, r+1, err)
			}
			if est := e.Estimate(id); !finite(est) {
				return fmt.Errorf("verify: %s: estimate for %q is %v after run %d", e.Name(), id, est, r+1)
			}
		}
	}
	// Poison resistance: a bad score batch must fail cleanly and leave the
	// estimate where it was.
	for _, id := range ids {
		before := e.Estimate(id)
		if err := e.Observe(id, []float64{math.NaN()}); err == nil {
			return fmt.Errorf("verify: %s: NaN score accepted for worker %q", e.Name(), id)
		}
		if after := e.Estimate(id); after != before {
			return fmt.Errorf("verify: %s: rejected observation moved %q's estimate %v -> %v",
				e.Name(), id, before, after)
		}
	}
	return nil
}
