package experiments

import (
	"fmt"
	"runtime"

	"melody/internal/core"
	"melody/internal/market"
	"melody/internal/quality"
	"melody/internal/report"
	"melody/internal/stats"
)

// Fig9CI is an extension of the paper's Fig. 9: instead of a single
// simulated deployment per estimator, it runs several independent
// replications in parallel and reports cross-replication means with 95%
// confidence half-widths. The paper draws conclusions from one trajectory;
// the replicated version shows the estimator ordering is not a seed
// artifact.
func Fig9CI(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	lt := PaperLongTerm()
	lt.Workers = opts.scaled(120, 30)
	lt.TasksPerRun = opts.scaled(120, 30)
	lt.Runs = opts.scaled(400, 40)
	replications := opts.scaled(8, 3)

	buildFor := func(makeEst func() (quality.Estimator, error)) func(seed int64) (*market.Engine, error) {
		return func(seed int64) (*market.Engine, error) {
			r := stats.NewRNG(seed)
			population, err := lt.Population(r.Split())
			if err != nil {
				return nil, err
			}
			est, err := makeEst()
			if err != nil {
				return nil, err
			}
			mech, err := core.NewMelody(lt.AuctionConfig())
			if err != nil {
				return nil, err
			}
			return market.NewEngine(market.Config{
				Mechanism: mech, Auction: lt.AuctionConfig(),
				Estimator: est, Workers: population,
				TasksPerRun: lt.TasksPerRun, ThresholdMin: lt.ThresholdLo, ThresholdMax: lt.ThresholdHi,
				Budget: lt.Budget, ScoreSigma: lt.ScoreSigma,
				ScoreLo: lt.ScoreLo, ScoreHi: lt.ScoreHi,
				RNG: r.Split(),
			})
		}
	}

	type candidate struct {
		name string
		make func() (quality.Estimator, error)
	}
	candidates := []candidate{
		{"STATIC", func() (quality.Estimator, error) { return quality.NewStatic(lt.InitMean, 50) }},
		{"ML-CR", func() (quality.Estimator, error) { return quality.NewMLCurrentRun(lt.InitMean), nil }},
		{"ML-AR", func() (quality.Estimator, error) { return quality.NewMLAllRuns(lt.InitMean), nil }},
		{"EWMA", func() (quality.Estimator, error) { return quality.NewEWMA(lt.InitMean, 0.3) }},
		{"MELODY", func() (quality.Estimator, error) { return lt.MelodyEstimator() }},
	}

	errFig := &report.Figure{
		ID: "fig9ci-error", Title: "Estimation error per run, mean over replications",
		XLabel: "run", YLabel: "average estimation error",
	}
	utilFig := &report.Figure{
		ID: "fig9ci-utility", Title: "True requester utility per run, mean over replications",
		XLabel: "run", YLabel: "requester's utility",
	}
	out := &Output{}
	seeds := market.Seeds(opts.Seed, replications)
	concurrency := runtime.NumCPU()
	for _, cand := range candidates {
		reps, err := market.RunReplications(buildFor(cand.make), seeds, lt.Runs, concurrency)
		if err != nil {
			return nil, fmt.Errorf("fig9ci %s: %w", cand.name, err)
		}
		agg, err := market.AggregateReplications(reps)
		if err != nil {
			return nil, err
		}
		xs, ys := downsample(agg.MeanError, 80)
		errFig.Series = append(errFig.Series, report.Series{Name: cand.name, X: xs, Y: ys})
		xs, ys = downsample(agg.MeanUtility, 80)
		utilFig.Series = append(utilFig.Series, report.Series{Name: cand.name, X: xs, Y: ys})

		meanErr, meanUtil := agg.OverallMeans()
		// Representative CI from the final run.
		last := agg.Runs - 1
		out.Notes = append(out.Notes, fmt.Sprintf(
			"%s: overall error %.3f, overall utility %.2f (final-run 95%% CI half-widths: ±%.3f err, ±%.2f util; %d replications)",
			cand.name, meanErr, meanUtil, agg.ErrorCI95[last], agg.UtilityCI95[last], replications))
	}
	out.Figures = append(out.Figures, errFig, utilFig)
	return out, nil
}
