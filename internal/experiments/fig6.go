package experiments

import (
	"errors"
	"fmt"

	"melody/internal/core"
	"melody/internal/report"
	"melody/internal/stats"
)

// fig6Sweeps holds one candidate worker's deviation profiles.
type fig6Sweeps struct {
	index      int
	costX      []float64
	costY      []float64
	freqX      []float64
	freqY      []float64
	atTruth    float64
	bestDeviat float64 // best utility over all deviations
}

// gain is how much the best deviation beats truth (0 for a clean,
// theorem-shaped profile).
func (s *fig6Sweeps) gain() float64 {
	g := s.bestDeviat - s.atTruth
	if g < 0 {
		return 0
	}
	return g
}

// Fig6 reproduces the short-term truthfulness check (Fig. 6): utility of a
// winner and a loser as their declared cost and frequency deviate from the
// true bid. The paper "randomly picks" one winner and one loser whose
// curves peak at the true bid; because Algorithm 1's critical payment is
// per-task, cross-task interactions make some workers' profiles deviate
// from the clean theorem shape, so we scan candidates and plot the cleanest
// of each kind, reporting the clean fraction in the notes (the quantitative
// finding is discussed in EXPERIMENTS.md).
func Fig6(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	in, cfg := fig5Instance(opts, r)
	mel, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		return nil, err
	}
	base, err := mel.Run(in)
	if err != nil {
		return nil, err
	}

	utilityWithBid := func(idx int, bid core.Bid) (float64, error) {
		truth := in.Workers[idx]
		mutated := core.Instance{Budget: in.Budget, Tasks: in.Tasks}
		mutated.Workers = make([]core.Worker, len(in.Workers))
		copy(mutated.Workers, in.Workers)
		mutated.Workers[idx].Bid = bid
		out, err := mel.Run(mutated)
		if err != nil {
			return 0, err
		}
		return core.WorkerUtility(out, truth.ID, truth.Bid.Cost, truth.Bid.Frequency), nil
	}

	sweep := func(idx int) (*fig6Sweeps, error) {
		truth := in.Workers[idx]
		s := &fig6Sweeps{index: idx}
		const points = 21
		for i := 0; i < points; i++ {
			c := cfg.CostLo + (cfg.CostHi-cfg.CostLo)*float64(i)/float64(points-1)
			u, err := utilityWithBid(idx, core.Bid{Cost: c, Frequency: truth.Bid.Frequency})
			if err != nil {
				return nil, err
			}
			s.costX = append(s.costX, c)
			s.costY = append(s.costY, u)
			if u > s.bestDeviat {
				s.bestDeviat = u
			}
		}
		for f := cfg.FreqLo; f <= cfg.FreqHi; f++ {
			u, err := utilityWithBid(idx, core.Bid{Cost: truth.Bid.Cost, Frequency: f})
			if err != nil {
				return nil, err
			}
			s.freqX = append(s.freqX, float64(f))
			s.freqY = append(s.freqY, u)
			if u > s.bestDeviat {
				s.bestDeviat = u
			}
		}
		var err error
		s.atTruth, err = utilityWithBid(idx, truth.Bid)
		if err != nil {
			return nil, err
		}
		return s, nil
	}

	// Collect candidate winners and losers.
	payments := base.WorkerPayments()
	auction := cfg.AuctionConfig()
	const maxCandidates = 40
	var winners, losers []int
	for i, w := range in.Workers {
		if _, won := payments[w.ID]; won {
			if len(winners) < maxCandidates {
				winners = append(winners, i)
			}
		} else if auction.Qualifies(w) && len(losers) < maxCandidates {
			losers = append(losers, i)
		}
	}
	if len(winners) == 0 || len(losers) == 0 {
		return nil, errors.New("experiments: fig6 instance produced no winner or no loser")
	}

	pickCleanest := func(candidates []int) (*fig6Sweeps, int, error) {
		var best *fig6Sweeps
		clean := 0
		for _, idx := range candidates {
			s, err := sweep(idx)
			if err != nil {
				return nil, 0, err
			}
			if s.gain() <= 1e-9 {
				clean++
			}
			if best == nil || s.gain() < best.gain() {
				best = s
			}
		}
		return best, clean, nil
	}

	winner, cleanWinners, err := pickCleanest(winners)
	if err != nil {
		return nil, err
	}
	loser, cleanLosers, err := pickCleanest(losers)
	if err != nil {
		return nil, err
	}

	makeFigs := func(s *fig6Sweeps, who, idSuffixCost, idSuffixFreq string) []*report.Figure {
		truth := in.Workers[s.index]
		return []*report.Figure{
			{
				ID:     idSuffixCost,
				Title:  fmt.Sprintf("Cost-truthfulness of %s %s (true cost %.3f)", who, truth.ID, truth.Bid.Cost),
				XLabel: "actual bid of cost", YLabel: "utility",
				Series: []report.Series{
					{Name: "utility", X: s.costX, Y: s.costY},
					{Name: "true bid marker", X: []float64{truth.Bid.Cost}, Y: []float64{s.atTruth}},
				},
			},
			{
				ID:     idSuffixFreq,
				Title:  fmt.Sprintf("Frequency-truthfulness of %s %s (true frequency %d)", who, truth.ID, truth.Bid.Frequency),
				XLabel: "actual bid of frequency", YLabel: "utility",
				Series: []report.Series{
					{Name: "utility", X: s.freqX, Y: s.freqY},
					{Name: "true bid marker", X: []float64{float64(truth.Bid.Frequency)}, Y: []float64{s.atTruth}},
				},
			},
		}
	}

	out := &Output{}
	out.Figures = append(out.Figures, makeFigs(winner, "winner", "fig6a", "fig6b")...)
	out.Figures = append(out.Figures, makeFigs(loser, "loser", "fig6c", "fig6d")...)
	out.Notes = append(out.Notes,
		fmt.Sprintf("winner panels: plotted worker's best deviation gain %.4f; %d/%d scanned winners were theorem-clean",
			winner.gain(), cleanWinners, len(winners)),
		fmt.Sprintf("loser panels: plotted worker's best deviation gain %.4f; %d/%d scanned losers were theorem-clean",
			loser.gain(), cleanLosers, len(losers)),
		"single-task auctions are exactly truthful (core property tests); multi-task profiles can deviate via cross-task pivot shifts — see EXPERIMENTS.md",
	)
	return out, nil
}
