// Package experiments defines one runnable experiment per table and figure
// of the paper's evaluation (Section 7), built on the core mechanism, the
// quality estimators, and the market engine. Each experiment returns typed
// figures/tables that cmd/melody-sim renders and bench_test.go regenerates.
package experiments

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/lds"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// Options control an experiment run.
type Options struct {
	// Seed makes the experiment reproducible.
	Seed int64
	// Scale in (0, 1] shrinks sweep sizes, repetition counts and horizons
	// proportionally so tests and quick benches stay fast. 1 reproduces the
	// paper-scale experiment.
	Scale float64
}

// withDefaults normalizes options.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	return o
}

// scaled returns max(minimum, round(full*scale)).
func (o Options) scaled(full, minimum int) int {
	v := int(float64(full)*o.Scale + 0.5)
	if v < minimum {
		return minimum
	}
	return v
}

// SRAConfig is the Table 3 workload: the distributions that the single-run
// auction experiments draw workers and tasks from.
type SRAConfig struct {
	QualityLo, QualityHi     float64 // mu_i ~ U[2,4]
	CostLo, CostHi           float64 // c_i ~ U[1,2]
	FreqLo, FreqHi           int     // n_i ~ U[1,5]
	ThresholdLo, ThresholdHi float64 // Q_j ~ U[6,12]
}

// PaperSRA is Table 3's parameter setting.
func PaperSRA() SRAConfig {
	return SRAConfig{
		QualityLo: 2, QualityHi: 4,
		CostLo: 1, CostHi: 2,
		FreqLo: 1, FreqHi: 5,
		ThresholdLo: 6, ThresholdHi: 12,
	}
}

// AuctionConfig returns the qualification intervals implied by the
// workload's supports.
func (c SRAConfig) AuctionConfig() core.Config {
	return core.Config{
		QualityMin: c.QualityLo, QualityMax: c.QualityHi,
		CostMin: c.CostLo, CostMax: c.CostHi,
	}
}

// Instance draws one SRA instance with n workers, m tasks and the given
// budget.
func (c SRAConfig) Instance(r *stats.RNG, n, m int, budget float64) core.Instance {
	in := core.Instance{
		Budget:  budget,
		Workers: make([]core.Worker, n),
		Tasks:   make([]core.Task, m),
	}
	for i := range in.Workers {
		in.Workers[i] = core.Worker{
			ID: fmt.Sprintf("w%d", i),
			Bid: core.Bid{
				Cost:      r.Uniform(c.CostLo, c.CostHi),
				Frequency: r.UniformInt(c.FreqLo, c.FreqHi),
			},
			Quality: r.Uniform(c.QualityLo, c.QualityHi),
		}
	}
	for j := range in.Tasks {
		in.Tasks[j] = core.Task{
			ID:        fmt.Sprintf("t%d", j),
			Threshold: r.Uniform(c.ThresholdLo, c.ThresholdHi),
		}
	}
	return in
}

// LongTermConfig is the Table 4 workload for the Section 7.7 experiments.
type LongTermConfig struct {
	Workers      int     // N = 300
	TasksPerRun  int     // M^r = 500
	Runs         int     // 1000
	Budget       float64 // B^r = 800
	ThresholdLo  float64 // Q_j ~ U[20,40]
	ThresholdHi  float64
	CostLo       float64 // c_i ~ U[1,2]
	CostHi       float64
	FreqLo       int // n_i ~ U[1,5]
	FreqHi       int
	ScoreLo      float64 // scores clamped to [1,10]
	ScoreHi      float64
	ScoreSigma   float64 // sigma_S = 3
	InitMean     float64 // mu^0 = 5.5
	InitVar      float64 // sigma^0 = 2.25
	EMPeriod     int     // T = 10
	PatternNoise float64 // per-run jitter on latent trajectories
}

// PaperLongTerm is Table 4's parameter setting.
func PaperLongTerm() LongTermConfig {
	return LongTermConfig{
		Workers: 300, TasksPerRun: 500, Runs: 1000, Budget: 800,
		ThresholdLo: 20, ThresholdHi: 40,
		CostLo: 1, CostHi: 2, FreqLo: 1, FreqHi: 5,
		ScoreLo: 1, ScoreHi: 10, ScoreSigma: 3,
		InitMean: 5.5, InitVar: 2.25, EMPeriod: 10,
		PatternNoise: 0.4,
	}
}

// AuctionConfig returns the qualification intervals for the long-term
// setting: quality on the score scale, cost on the bid support.
func (c LongTermConfig) AuctionConfig() core.Config {
	return core.Config{
		QualityMin: c.ScoreLo, QualityMax: c.ScoreHi,
		CostMin: c.CostLo, CostMax: c.CostHi,
	}
}

// Population draws the simulated workforce with trajectories mixed over the
// four Fig. 1 archetypes.
func (c LongTermConfig) Population(r *stats.RNG) ([]*workerpool.Worker, error) {
	return workerpool.NewPopulation(r, workerpool.PopulationConfig{
		N: c.Workers, Runs: c.Runs,
		CostMin: c.CostLo, CostMax: c.CostHi,
		FreqMin: c.FreqLo, FreqMax: c.FreqHi,
		QualityLo: c.ScoreLo, QualityHi: c.ScoreHi,
		Noise: c.PatternNoise,
	})
}

// MelodyEstimator builds the paper's estimator for this setting: prior
// N(mu^0, sigma^0), EM every T runs over a bounded window.
func (c LongTermConfig) MelodyEstimator() (*quality.Melody, error) {
	return quality.NewMelody(quality.MelodyConfig{
		Init:     lds.State{Mean: c.InitMean, Var: c.InitVar},
		Params:   lds.Params{A: 1.0, Gamma: 0.3, Eta: c.ScoreSigma * c.ScoreSigma},
		EMPeriod: c.EMPeriod,
		EMWindow: 60,
		EM:       lds.EMConfig{MaxIter: 12},
	})
}
