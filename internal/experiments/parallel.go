package experiments

import (
	"errors"
	"runtime"
	"sync"
)

// forEachPoint evaluates fn(0..n-1) across up to GOMAXPROCS goroutines and
// blocks until all finish. Errors do not cancel remaining points (each point
// is independent); they are returned joined in index order so the output is
// deterministic regardless of completion order. fn must only write to
// per-index state.
//
// Experiment drivers use it to parallelize sweep points after the
// randomness has been pre-split serially: every point receives its RNG
// stream before any evaluation starts, so the fan-out cannot perturb the
// seed-determined stream tree (see splitPointRNGs).
func forEachPoint(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}
