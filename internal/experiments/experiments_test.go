package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 7, Scale: 0.08} }

func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(out.Figures) == 0 && len(out.Tables) == 0 {
				t.Fatalf("%s produced no figures or tables", e.ID)
			}
			for _, f := range out.Figures {
				if err := f.Validate(); err != nil {
					t.Errorf("%s: %v", e.ID, err)
				}
			}
			for _, tbl := range out.Tables {
				if err := tbl.Validate(); err != nil {
					t.Errorf("%s: %v", e.ID, err)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig9" {
		t.Errorf("ByID returned %q", e.ID)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.1}.withDefaults()
	if got := o.scaled(1000, 10); got != 100 {
		t.Errorf("scaled(1000) = %d, want 100", got)
	}
	if got := o.scaled(50, 20); got != 20 {
		t.Errorf("scaled floor = %d, want 20", got)
	}
	if def := (Options{}).withDefaults(); def.Scale != 1 {
		t.Errorf("default scale = %v", def.Scale)
	}
	if def := (Options{Scale: 2}).withDefaults(); def.Scale != 1 {
		t.Errorf("overscale = %v", def.Scale)
	}
}

// TestFig4ShapeMelodyBetweenBaselines: at each sweep point, MELODY's
// utility must not exceed OPT-UB and on aggregate must beat RANDOM — the
// qualitative content of Fig. 4.
func TestFig4ShapeMelodyBetweenBaselines(t *testing.T) {
	out, err := Fig4a(Options{Seed: 11, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figures[0]
	bySuffix := map[string][]float64{}
	for _, s := range fig.Series {
		switch {
		case strings.HasPrefix(s.Name, "OPT-UB"):
			bySuffix["ub"] = append(bySuffix["ub"], s.Y...)
		case strings.HasPrefix(s.Name, "MELODY"):
			bySuffix["mel"] = append(bySuffix["mel"], s.Y...)
		case strings.HasPrefix(s.Name, "RANDOM"):
			bySuffix["rnd"] = append(bySuffix["rnd"], s.Y...)
		}
	}
	var melSum, rndSum float64
	for i := range bySuffix["mel"] {
		if bySuffix["mel"][i] > bySuffix["ub"][i]+1e-9 {
			t.Errorf("point %d: MELODY %v above OPT-UB %v", i, bySuffix["mel"][i], bySuffix["ub"][i])
		}
		melSum += bySuffix["mel"][i]
		rndSum += bySuffix["rnd"][i]
	}
	if melSum <= rndSum {
		t.Errorf("MELODY aggregate %v not above RANDOM %v", melSum, rndSum)
	}
}

// TestFig5aNoIRViolations: the individual-rationality scatter must report
// zero violations.
func TestFig5aNoIRViolations(t *testing.T) {
	out, err := Fig5a(Options{Seed: 13, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Notes) == 0 || !strings.Contains(out.Notes[0], " 0 individual-rationality violations") {
		t.Errorf("unexpected IR note: %v", out.Notes)
	}
	s := out.Figures[0].Series[0]
	for i := range s.X {
		if s.Y[i] < s.X[i]-1e-9 {
			t.Errorf("winner %d paid %v below cost %v", i, s.Y[i], s.X[i])
		}
	}
}

// TestFig5cPaymentNeverExceedsBudget: every payment point lies on or below
// the diagonal.
func TestFig5cPaymentNeverExceedsBudget(t *testing.T) {
	out, err := Fig5c(Options{Seed: 17, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var pay, diag []float64
	for _, s := range out.Figures[0].Series {
		if s.Name == "total payment" {
			pay = s.Y
		} else {
			diag = s.Y
		}
	}
	for i := range pay {
		if pay[i] > diag[i]+1e-9 {
			t.Errorf("budget %v: payment %v exceeds it", diag[i], pay[i])
		}
	}
}

// TestFig6PanelsAndLoserCleanliness: fig6 must produce the four panels and
// pick a loser whose profile is theorem-clean (losers form the easier
// class); the winner panel reports its residual deviation gain honestly in
// the notes.
func TestFig6Panels(t *testing.T) {
	out, err := Fig6(Options{Seed: 19, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 4 {
		t.Fatalf("fig6 produced %d panels", len(out.Figures))
	}
	wantIDs := map[string]bool{"fig6a": true, "fig6b": true, "fig6c": true, "fig6d": true}
	for _, f := range out.Figures {
		if !wantIDs[f.ID] {
			t.Errorf("unexpected panel %s", f.ID)
		}
	}
	foundLoserNote := false
	for _, note := range out.Notes {
		if strings.Contains(note, "loser panels") {
			foundLoserNote = true
			if !strings.Contains(note, "gain 0.0000") {
				t.Errorf("loser panel not clean: %s", note)
			}
		}
	}
	if !foundLoserNote {
		t.Error("missing loser note")
	}
}

// TestFig9MelodyWins: MELODY must achieve the lowest average estimation
// error and the highest average true utility among the four estimators —
// the headline of the paper.
func TestFig9MelodyWins(t *testing.T) {
	if testing.Short() {
		t.Skip("long-term simulation")
	}
	lt := PaperLongTerm()
	lt.Workers = 60
	lt.TasksPerRun = 60
	lt.Runs = 200
	ests, err := fig9Estimators(lt)
	if err != nil {
		t.Fatal(err)
	}
	var results []*fig9Result
	for _, est := range ests {
		res, err := runLongTerm(23, lt, est)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		t.Logf("%s: avgError=%.3f avgUtility=%.2f", res.name, res.avgError, res.avgUtility)
	}
	var melody *fig9Result
	for _, res := range results {
		if res.name == "MELODY" {
			melody = res
		}
	}
	for _, res := range results {
		if res.name == "MELODY" {
			continue
		}
		if melody.avgError >= res.avgError {
			t.Errorf("MELODY error %.3f not below %s error %.3f", melody.avgError, res.name, res.avgError)
		}
		if melody.avgUtility <= res.avgUtility {
			t.Errorf("MELODY utility %.2f not above %s utility %.2f", melody.avgUtility, res.name, res.avgUtility)
		}
	}
}

func TestDownsample(t *testing.T) {
	ys := []float64{1, 2, 3, 4, 5, 6}
	xs, out := downsample(ys, 3)
	if len(out) != 3 || out[0] != 1.5 || out[1] != 3.5 || out[2] != 5.5 {
		t.Errorf("downsample = %v", out)
	}
	if xs[0] != 2 || xs[2] != 6 {
		t.Errorf("downsample xs = %v", xs)
	}
	// No-op when already small enough.
	xs, out = downsample(ys, 10)
	if len(out) != 6 || xs[5] != 6 {
		t.Errorf("no-op downsample = %v %v", xs, out)
	}
}
