package experiments

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/report"
	"melody/internal/stats"
)

// sweepPoint is one x position of a Fig. 4 sweep, evaluated for the three
// mechanisms and averaged over repetitions.
type sweepResult struct {
	optUB, melody, random float64
}

// sweepSpec describes one sweep point's workload.
type sweepSpec struct {
	n, m   int
	budget float64
}

// splitPointRNGs derives one point's RNG streams from the sweep stream: two
// splits per repetition — the instance stream, then the RANDOM-mechanism
// stream — in exactly the order the serial driver used to interleave them.
// Splitting every point up front from a single goroutine is what lets
// runSweep evaluate the points concurrently while reproducing the serial
// driver's stream tree bit for bit (see TestRunSweepMatchesSerialSplits).
func splitPointRNGs(r *stats.RNG, reps int) []*stats.RNG {
	rngs := make([]*stats.RNG, 2*reps)
	for i := range rngs {
		rngs[i] = r.Split()
	}
	return rngs
}

// runSweep evaluates every spec — in parallel, up to GOMAXPROCS points at a
// time — and returns the results in spec order.
func runSweep(r *stats.RNG, cfg SRAConfig, specs []sweepSpec, reps int) ([]sweepResult, error) {
	rngs := make([][]*stats.RNG, len(specs))
	for i := range specs {
		rngs[i] = splitPointRNGs(r, reps)
	}
	results := make([]sweepResult, len(specs))
	err := forEachPoint(len(specs), func(i int) error {
		res, err := runSweepPoint(rngs[i], cfg, specs[i].n, specs[i].m, specs[i].budget, reps)
		if err != nil {
			return fmt.Errorf("sweep point N=%d M=%d B=%g: %w", specs[i].n, specs[i].m, specs[i].budget, err)
		}
		results[i] = res
		return nil
	})
	return results, err
}

// runSweepPoint draws reps instances and averages each mechanism's utility.
// rngs carries the point's pre-split streams, two per repetition
// (splitPointRNGs order).
func runSweepPoint(rngs []*stats.RNG, cfg SRAConfig, n, m int, budget float64, reps int) (sweepResult, error) {
	auction := cfg.AuctionConfig()
	mel, err := core.NewMelody(auction)
	if err != nil {
		return sweepResult{}, err
	}
	ub, err := core.NewOptUB(auction)
	if err != nil {
		return sweepResult{}, err
	}
	var res sweepResult
	for rep := 0; rep < reps; rep++ {
		in := cfg.Instance(rngs[2*rep], n, m, budget)
		rnd, err := core.NewRandom(auction, rngs[2*rep+1])
		if err != nil {
			return sweepResult{}, err
		}
		uo, err := ub.Run(in)
		if err != nil {
			return sweepResult{}, err
		}
		mo, err := mel.Run(in)
		if err != nil {
			return sweepResult{}, err
		}
		ro, err := rnd.Run(in)
		if err != nil {
			return sweepResult{}, err
		}
		res.optUB += float64(uo.Utility())
		res.melody += float64(mo.Utility())
		res.random += float64(ro.Utility())
	}
	f := float64(reps)
	res.optUB /= f
	res.melody /= f
	res.random /= f
	return res, nil
}

// competitivenessNotes summarizes the two headline numbers of Section 7.1:
// the worst observed OPT-UB/MELODY ratio and the average MELODY/RANDOM
// improvement.
func competitivenessNotes(points []sweepResult) []string {
	worstRatio := 1.0
	var gainSum float64
	var gainN int
	for _, p := range points {
		if p.melody > 0 {
			if ratio := p.optUB / p.melody; ratio > worstRatio {
				worstRatio = ratio
			}
		}
		if p.random > 0 {
			gainSum += (p.melody - p.random) / p.random
			gainN++
		}
	}
	notes := []string{
		fmt.Sprintf("max observed approximation factor OPT-UB/MELODY = %.3f (paper reports 1.337)", worstRatio),
	}
	if gainN > 0 {
		notes = append(notes, fmt.Sprintf(
			"MELODY outperforms RANDOM by %.1f%% on average (paper reports 259.2%%)",
			100*gainSum/float64(gainN)))
	}
	return notes
}

// Fig4a reproduces Fig. 4a: requester utility vs the number of workers
// (Table 3 setting I: M=500, N=10..700, B in {600, 800}).
func Fig4a(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	cfg := PaperSRA()
	m := opts.scaled(500, 40)
	reps := opts.scaled(3, 1)
	budgets := []float64{600, 800}
	maxN := opts.scaled(700, 60)
	step := maxN / 12
	if step < 1 {
		step = 1
	}

	fig := &report.Figure{
		ID: "fig4a", Title: "Requester's utility changing with the number of workers",
		XLabel: "number of workers", YLabel: "requester's utility",
	}
	var specs []sweepSpec
	for _, budget := range budgets {
		for n := step; n <= maxN; n += step {
			specs = append(specs, sweepSpec{n: n, m: m, budget: budget})
		}
	}
	all, err := runSweep(r, cfg, specs, reps)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, budget := range budgets {
		var xs []float64
		var ub, mel, rnd []float64
		for n := step; n <= maxN; n += step {
			p := all[idx]
			idx++
			xs = append(xs, float64(n))
			ub = append(ub, p.optUB)
			mel = append(mel, p.melody)
			rnd = append(rnd, p.random)
		}
		tag := fmt.Sprintf(" (B=%g)", budget)
		fig.Series = append(fig.Series,
			report.Series{Name: "OPT-UB" + tag, X: xs, Y: ub},
			report.Series{Name: "MELODY" + tag, X: xs, Y: mel},
			report.Series{Name: "RANDOM" + tag, X: xs, Y: rnd},
		)
	}
	return &Output{Figures: []*report.Figure{fig}, Notes: competitivenessNotes(all)}, nil
}

// Fig4b reproduces Fig. 4b: requester utility vs budget (Table 3 setting
// II: M=500, N in {100, 250}, B=10..2310).
func Fig4b(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	cfg := PaperSRA()
	m := opts.scaled(500, 40)
	reps := opts.scaled(3, 1)
	ns := []int{opts.scaled(100, 20), opts.scaled(250, 40)}
	maxB := 2310.0 * opts.Scale
	if maxB < 200 {
		maxB = 200
	}
	stepB := maxB / 12

	fig := &report.Figure{
		ID: "fig4b", Title: "Requester's utility changing with the value of budget",
		XLabel: "budget", YLabel: "requester's utility",
	}
	var specs []sweepSpec
	for _, n := range ns {
		for b := stepB; b <= maxB+1e-9; b += stepB {
			specs = append(specs, sweepSpec{n: n, m: m, budget: b})
		}
	}
	all, err := runSweep(r, cfg, specs, reps)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, n := range ns {
		var xs []float64
		var ub, mel, rnd []float64
		for b := stepB; b <= maxB+1e-9; b += stepB {
			p := all[idx]
			idx++
			xs = append(xs, b)
			ub = append(ub, p.optUB)
			mel = append(mel, p.melody)
			rnd = append(rnd, p.random)
		}
		tag := fmt.Sprintf(" (N=%d)", n)
		fig.Series = append(fig.Series,
			report.Series{Name: "OPT-UB" + tag, X: xs, Y: ub},
			report.Series{Name: "MELODY" + tag, X: xs, Y: mel},
			report.Series{Name: "RANDOM" + tag, X: xs, Y: rnd},
		)
	}
	return &Output{Figures: []*report.Figure{fig}, Notes: competitivenessNotes(all)}, nil
}

// Fig4c reproduces Fig. 4c: requester utility vs the number of tasks
// (Table 3 setting III: M=10..700, N in {100, 400}, B=2000).
func Fig4c(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	cfg := PaperSRA()
	reps := opts.scaled(3, 1)
	ns := []int{opts.scaled(100, 20), opts.scaled(400, 50)}
	maxM := opts.scaled(700, 60)
	step := maxM / 12
	if step < 1 {
		step = 1
	}

	fig := &report.Figure{
		ID: "fig4c", Title: "Requester's utility changing with the number of tasks",
		XLabel: "number of tasks", YLabel: "requester's utility",
	}
	var specs []sweepSpec
	for _, n := range ns {
		for m := step; m <= maxM; m += step {
			specs = append(specs, sweepSpec{n: n, m: m, budget: 2000})
		}
	}
	all, err := runSweep(r, cfg, specs, reps)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, n := range ns {
		var xs []float64
		var ub, mel, rnd []float64
		for m := step; m <= maxM; m += step {
			p := all[idx]
			idx++
			xs = append(xs, float64(m))
			ub = append(ub, p.optUB)
			mel = append(mel, p.melody)
			rnd = append(rnd, p.random)
		}
		tag := fmt.Sprintf(" (N=%d)", n)
		fig.Series = append(fig.Series,
			report.Series{Name: "OPT-UB" + tag, X: xs, Y: ub},
			report.Series{Name: "MELODY" + tag, X: xs, Y: mel},
			report.Series{Name: "RANDOM" + tag, X: xs, Y: rnd},
		)
	}
	return &Output{Figures: []*report.Figure{fig}, Notes: competitivenessNotes(all)}, nil
}
