package experiments

import (
	"fmt"

	"melody/internal/report"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// Fig1 reproduces the paper's Fig. 1: one typical latent-quality curve per
// archetype (rising, declining, fluctuating, stable). The paper plots
// quality curves mined from an AMT affective-text dataset; we generate
// synthetic curves from the same archetypes (the substitution is documented
// in DESIGN.md) and verify each against the paper's footnote-4 stability
// criterion.
func Fig1(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	runs := opts.scaled(60, 20)

	fig := &report.Figure{
		ID:     "fig1",
		Title:  "Four typical types of workers' long-term quality curves",
		XLabel: "run",
		YLabel: "quality",
	}
	var notes []string
	for _, p := range workerpool.AllPatterns() {
		traj, err := workerpool.Generate(r.Split(), workerpool.TrajectoryConfig{
			Pattern: p, Runs: runs, Lo: 0, Hi: 100, Noise: 4,
		})
		if err != nil {
			return nil, err
		}
		xs := make([]float64, runs)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		fig.Series = append(fig.Series, report.Series{Name: p.String(), X: xs, Y: traj})

		stable, err := stats.PaperStability.IsStable(traj)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s archetype: stable per footnote-4 criterion = %v (paper: only 'stable' should be)", p, stable))
	}
	return &Output{Figures: []*report.Figure{fig}, Notes: notes}, nil
}
