package experiments

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/market"
	"melody/internal/quality"
	"melody/internal/report"
	"melody/internal/stats"
)

// fig9Result is one estimator's trace through the long-term simulation.
type fig9Result struct {
	name       string
	errors     []float64 // estimation error per run
	utilities  []float64 // true requester utility per run
	avgError   float64
	avgUtility float64
}

// runLongTerm simulates the Table 4 world under one estimator. The worker
// population is rebuilt from the same seed for every estimator so all four
// face identical latent trajectories, bids and task streams.
func runLongTerm(seed int64, lt LongTermConfig, est quality.Estimator) (*fig9Result, error) {
	r := stats.NewRNG(seed)
	population, err := lt.Population(r.Split())
	if err != nil {
		return nil, err
	}
	mech, err := core.NewMelody(lt.AuctionConfig())
	if err != nil {
		return nil, err
	}
	eng, err := market.NewEngine(market.Config{
		Mechanism: mech, Auction: lt.AuctionConfig(),
		Estimator: est, Workers: population,
		TasksPerRun: lt.TasksPerRun, ThresholdMin: lt.ThresholdLo, ThresholdMax: lt.ThresholdHi,
		Budget: lt.Budget, ScoreSigma: lt.ScoreSigma,
		ScoreLo: lt.ScoreLo, ScoreHi: lt.ScoreHi,
		RNG: r.Split(),
	})
	if err != nil {
		return nil, err
	}
	res := &fig9Result{name: est.Name()}
	var errAcc, utilAcc stats.Accumulator
	for run := 0; run < lt.Runs; run++ {
		step, err := eng.Step()
		if err != nil {
			return nil, err
		}
		res.errors = append(res.errors, step.EstimationError)
		res.utilities = append(res.utilities, float64(step.TrueUtility))
		errAcc.Add(step.EstimationError)
		utilAcc.Add(float64(step.TrueUtility))
	}
	res.avgError = errAcc.Mean()
	res.avgUtility = utilAcc.Mean()
	return res, nil
}

// downsample averages ys into at most points buckets, returning bucket-end
// run indices and bucket means. It keeps figure output readable for
// 1,000-run traces.
func downsample(ys []float64, points int) (xs, out []float64) {
	if points <= 0 || len(ys) <= points {
		xs = make([]float64, len(ys))
		for i := range ys {
			xs[i] = float64(i + 1)
		}
		return xs, ys
	}
	bucket := (len(ys) + points - 1) / points
	for start := 0; start < len(ys); start += bucket {
		end := start + bucket
		if end > len(ys) {
			end = len(ys)
		}
		mean, _ := stats.Mean(ys[start:end])
		xs = append(xs, float64(end))
		out = append(out, mean)
	}
	return xs, out
}

// fig9Estimators builds the four competitors with identical initial
// estimates (mu^0).
func fig9Estimators(lt LongTermConfig) ([]quality.Estimator, error) {
	mel, err := lt.MelodyEstimator()
	if err != nil {
		return nil, err
	}
	static, err := quality.NewStatic(lt.InitMean, 50)
	if err != nil {
		return nil, err
	}
	return []quality.Estimator{
		static,
		quality.NewMLCurrentRun(lt.InitMean),
		quality.NewMLAllRuns(lt.InitMean),
		mel,
	}, nil
}

// Fig9 reproduces Fig. 9 and the Section 7.7 summary: the per-run average
// quality-estimation error (panel a) and the requester's true utility per
// run (panel b) for STATIC, ML-CR, ML-AR and MELODY on the Table 4 world,
// plus the aggregate improvements the paper headlines.
func Fig9(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	lt := PaperLongTerm()
	lt.Workers = opts.scaled(lt.Workers, 40)
	lt.TasksPerRun = opts.scaled(lt.TasksPerRun, 40)
	lt.Runs = opts.scaled(lt.Runs, 60)

	ests, err := fig9Estimators(lt)
	if err != nil {
		return nil, err
	}
	// The four competitors are fully independent — each rebuilds its world
	// from a fresh stats.NewRNG(opts.Seed) — so they run concurrently;
	// results stay in estimator order.
	results := make([]*fig9Result, len(ests))
	err = forEachPoint(len(ests), func(i int) error {
		res, err := runLongTerm(opts.Seed, lt, ests[i])
		if err != nil {
			return fmt.Errorf("fig9 %s: %w", ests[i].Name(), err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	errFig := &report.Figure{
		ID: "fig9a", Title: "Average estimation error of quality per run",
		XLabel: "run", YLabel: "average estimation error",
	}
	utilFig := &report.Figure{
		ID: "fig9b", Title: "Requester's (true) utility per run",
		XLabel: "run", YLabel: "requester's utility",
	}
	for _, res := range results {
		xs, ys := downsample(res.errors, 100)
		errFig.Series = append(errFig.Series, report.Series{Name: res.name, X: xs, Y: ys})
		xs, ys = downsample(res.utilities, 100)
		utilFig.Series = append(utilFig.Series, report.Series{Name: res.name, X: xs, Y: ys})
	}

	out := &Output{Figures: []*report.Figure{errFig, utilFig}}
	var melody *fig9Result
	for _, res := range results {
		if res.name == "MELODY" {
			melody = res
		}
	}
	out.Notes = append(out.Notes, fmt.Sprintf(
		"MELODY average requester utility %.1f (paper: 94.6 at full scale)", melody.avgUtility))
	paperUtilGain := map[string]string{"STATIC": "46.6%", "ML-CR": "19.7%", "ML-AR": "18.2%"}
	paperErrDrop := map[string]string{"STATIC": "24.2%", "ML-CR": "18.5%", "ML-AR": "17.6%"}
	for _, res := range results {
		if res.name == "MELODY" {
			continue
		}
		utilGain := 0.0
		if res.avgUtility > 0 {
			utilGain = 100 * (melody.avgUtility - res.avgUtility) / res.avgUtility
		}
		errDrop := 0.0
		if res.avgError > 0 {
			errDrop = 100 * (res.avgError - melody.avgError) / res.avgError
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"vs %s: utility +%.1f%% (paper %s), estimation error -%.1f%% (paper %s)",
			res.name, utilGain, paperUtilGain[res.name], errDrop, paperErrDrop[res.name]))
	}
	return out, nil
}
