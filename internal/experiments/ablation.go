package experiments

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/lds"
	"melody/internal/market"
	"melody/internal/quality"
	"melody/internal/report"
	"melody/internal/stats"
)

// posteriorEstimator ablates Eq. (19): it allocates with the *posterior*
// mean mu-hat^r instead of the one-step prediction a*mu-hat^r, i.e. it
// ignores the transition model at allocation time.
type posteriorEstimator struct {
	inner *quality.Melody
}

var _ quality.Estimator = (*posteriorEstimator)(nil)

func (p *posteriorEstimator) Name() string { return "MELODY-posterior" }

func (p *posteriorEstimator) Estimate(workerID string) float64 {
	if post, ok := p.inner.Posterior(workerID); ok {
		return post.Mean
	}
	return p.inner.Estimate(workerID)
}

func (p *posteriorEstimator) Observe(workerID string, scores []float64) error {
	return p.inner.Observe(workerID, scores)
}

// ablationCell runs one configuration on the reduced Table 4 world and
// returns (avg estimation error, avg true utility).
func ablationCell(seed int64, lt LongTermConfig, auction core.Config, est quality.Estimator) (float64, float64, error) {
	r := stats.NewRNG(seed)
	population, err := lt.Population(r.Split())
	if err != nil {
		return 0, 0, err
	}
	mech, err := core.NewMelody(auction)
	if err != nil {
		return 0, 0, err
	}
	eng, err := market.NewEngine(market.Config{
		Mechanism: mech, Auction: auction,
		Estimator: est, Workers: population,
		TasksPerRun: lt.TasksPerRun, ThresholdMin: lt.ThresholdLo, ThresholdMax: lt.ThresholdHi,
		Budget: lt.Budget, ScoreSigma: lt.ScoreSigma,
		ScoreLo: lt.ScoreLo, ScoreHi: lt.ScoreHi,
		RNG: r.Split(),
	})
	if err != nil {
		return 0, 0, err
	}
	var errAcc, utilAcc stats.Accumulator
	for run := 0; run < lt.Runs; run++ {
		res, err := eng.Step()
		if err != nil {
			return 0, 0, err
		}
		errAcc.Add(res.EstimationError)
		utilAcc.Add(float64(res.TrueUtility))
	}
	return errAcc.Mean(), utilAcc.Mean(), nil
}

// Ablations sweeps the design choices DESIGN.md calls out — the EM
// re-estimation period T (Algorithm 3), the EM history window, the
// qualification interval (Algorithm 1, line 1), and allocating with the
// prior (Eq. 19) versus the raw posterior mean — each on the same reduced
// Table 4 world, reporting average estimation error and true utility.
func Ablations(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	lt := PaperLongTerm()
	lt.Workers = opts.scaled(120, 30)
	lt.TasksPerRun = opts.scaled(120, 30)
	lt.Runs = opts.scaled(400, 40)

	melodyWith := func(period, window int) (*quality.Melody, error) {
		return quality.NewMelody(quality.MelodyConfig{
			Init:     lds.State{Mean: lt.InitMean, Var: lt.InitVar},
			Params:   lds.Params{A: 1, Gamma: 0.3, Eta: lt.ScoreSigma * lt.ScoreSigma},
			EMPeriod: period,
			EMWindow: window,
			EM:       lds.EMConfig{MaxIter: 12},
		})
	}

	tbl := &report.Table{
		ID:     "ablation",
		Title:  "Design-choice ablations on the reduced Table 4 world",
		Header: []string{"Ablation", "Configuration", "avg est. error", "avg true utility"},
	}
	// Rows are declared serially, then every cell — an independent world
	// rebuilt from opts.Seed with its own estimator — is simulated in
	// parallel; the table keeps declaration order.
	type rowSpec struct {
		group, config string
		est           quality.Estimator
		auction       core.Config
	}
	var rows []rowSpec
	addRow := func(group, config string, est quality.Estimator, auction core.Config) error {
		rows = append(rows, rowSpec{group: group, config: config, est: est, auction: auction})
		return nil
	}

	paperAuction := lt.AuctionConfig()

	// 1. EM period T.
	for _, period := range []int{0, 1, 10, 50} {
		est, err := melodyWith(period, 60)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("T=%d", period)
		if period == 0 {
			label = "EM off"
		}
		if err := addRow("EM period", label, est, paperAuction); err != nil {
			return nil, err
		}
	}

	// 2. EM window.
	for _, window := range []int{20, 60, 0} {
		est, err := melodyWith(lt.EMPeriod, window)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("window=%d", window)
		if window == 0 {
			label = "window=unbounded"
		}
		if err := addRow("EM window", label, est, paperAuction); err != nil {
			return nil, err
		}
	}

	// 3. Qualification interval: the paper's score-scale interval versus an
	// effectively disabled filter.
	wide := core.Config{QualityMin: 1e-9, QualityMax: 1e9, CostMin: 1e-9, CostMax: 1e9}
	for _, q := range []struct {
		label   string
		auction core.Config
	}{
		{"paper interval", paperAuction},
		{"disabled", wide},
	} {
		est, err := melodyWith(lt.EMPeriod, 60)
		if err != nil {
			return nil, err
		}
		if err := addRow("qualification", q.label, est, q.auction); err != nil {
			return nil, err
		}
	}

	// 4. Allocation estimate: prior a*mu-hat (Eq. 19) vs posterior mean.
	prior, err := melodyWith(lt.EMPeriod, 60)
	if err != nil {
		return nil, err
	}
	if err := addRow("allocation estimate", "prior (Eq. 19)", prior, paperAuction); err != nil {
		return nil, err
	}
	innerForPost, err := melodyWith(lt.EMPeriod, 60)
	if err != nil {
		return nil, err
	}
	if err := addRow("allocation estimate", "posterior mean", &posteriorEstimator{inner: innerForPost}, paperAuction); err != nil {
		return nil, err
	}

	tbl.Rows = make([][]string, len(rows))
	if err := forEachPoint(len(rows), func(i int) error {
		row := rows[i]
		errMean, utilMean, err := ablationCell(opts.Seed, lt, row.auction, row.est)
		if err != nil {
			return fmt.Errorf("ablation %s/%s: %w", row.group, row.config, err)
		}
		tbl.Rows[i] = []string{
			row.group, row.config,
			fmt.Sprintf("%.3f", errMean),
			fmt.Sprintf("%.2f", utilMean),
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return &Output{
		Tables: []*report.Table{tbl},
		Notes: []string{
			"rows within one ablation group share the identical world (same seed, population, task stream)",
		},
	}, nil
}
