package experiments

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/market"
	"melody/internal/report"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// fig7Setting is the reduced long-term world used by the truthfulness
// study. The paper runs 1,000 repetitions of 100 runs on the full Section
// 7.2 instance; we keep the 100-run horizon but shrink the population and
// task set (the utility-gain *shape* is what the figure demonstrates; see
// EXPERIMENTS.md for the substitution note).
type fig7Setting struct {
	workers  int
	tasks    int
	runs     int
	reps     int
	budget   float64
	longterm LongTermConfig
}

func newFig7Setting(opts Options) fig7Setting {
	return fig7Setting{
		workers:  opts.scaled(100, 20),
		tasks:    opts.scaled(100, 10),
		runs:     opts.scaled(100, 10),
		reps:     opts.scaled(10, 2),
		budget:   400,
		longterm: PaperLongTerm(),
	}
}

// totalUtility simulates one repetition and returns the designated worker's
// total utility across all runs.
func (s fig7Setting) totalUtility(seed int64, strategy workerpool.Strategy) (float64, error) {
	r := stats.NewRNG(seed)
	lt := s.longterm
	population, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: s.workers, Runs: s.runs,
		CostMin: lt.CostLo, CostMax: lt.CostHi,
		FreqMin: lt.FreqLo, FreqMax: lt.FreqHi,
		QualityLo: lt.ScoreLo, QualityHi: lt.ScoreHi,
		Noise: lt.PatternNoise,
	})
	if err != nil {
		return 0, err
	}
	subject := population[0]
	subject.Strategy = strategy

	est, err := lt.MelodyEstimator()
	if err != nil {
		return 0, err
	}
	mech, err := core.NewMelody(lt.AuctionConfig())
	if err != nil {
		return 0, err
	}
	eng, err := market.NewEngine(market.Config{
		Mechanism: mech, Auction: lt.AuctionConfig(),
		Estimator: est, Workers: population,
		TasksPerRun: s.tasks, ThresholdMin: lt.ThresholdLo, ThresholdMax: lt.ThresholdHi,
		Budget: s.budget, ScoreSigma: lt.ScoreSigma,
		ScoreLo: lt.ScoreLo, ScoreHi: lt.ScoreHi,
		RNG: r.Split(),
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for run := 0; run < s.runs; run++ {
		res, err := eng.Step()
		if err != nil {
			return 0, err
		}
		total += res.WorkerUtilities[subject.ID]
	}
	return total, nil
}

// averageGain returns the mean utility gain of cheating with probability p
// relative to the truthful twin simulation (identical seeds), over reps
// repetitions.
func (s fig7Setting) averageGain(baseSeed int64, p float64, cheat func(prob float64) workerpool.Strategy) (float64, error) {
	var gain stats.Accumulator
	for rep := 0; rep < s.reps; rep++ {
		seed := baseSeed + int64(rep)*1_000_003
		truthful, err := s.totalUtility(seed, workerpool.Truthful{})
		if err != nil {
			return 0, err
		}
		lying, err := s.totalUtility(seed, cheat(p))
		if err != nil {
			return 0, err
		}
		gain.Add(lying - truthful)
	}
	return gain.Mean(), nil
}

// Fig7 reproduces Fig. 7: the expected total-utility gain from misreporting
// cost (panel a) or frequency (panel b) as the cheating probability grows,
// for always-higher, always-lower and random misreports. Long-term
// truthfulness (Theorem 5) predicts non-positive gains everywhere, with
// over-bidding cost hurting the most.
func Fig7(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	s := newFig7Setting(opts)
	lt := s.longterm
	probs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

	costCheat := func(dir workerpool.CheatDirection) func(float64) workerpool.Strategy {
		return func(p float64) workerpool.Strategy {
			return workerpool.CostCheat{Prob: p, Direction: dir, CostMin: lt.CostLo, CostMax: lt.CostHi}
		}
	}
	freqCheat := func(dir workerpool.CheatDirection) func(float64) workerpool.Strategy {
		return func(p float64) workerpool.Strategy {
			return workerpool.FrequencyCheat{Prob: p, Direction: dir, FreqMax: lt.FreqHi}
		}
	}

	type panelSpec struct {
		figID, title string
		cheats       map[workerpool.CheatDirection]func(float64) workerpool.Strategy
	}
	panels := []panelSpec{
		{
			figID: "fig7a", title: "Long-term cost-truthfulness (total utility gain vs cheat probability)",
			cheats: map[workerpool.CheatDirection]func(float64) workerpool.Strategy{
				workerpool.CheatHigher: costCheat(workerpool.CheatHigher),
				workerpool.CheatLower:  costCheat(workerpool.CheatLower),
				workerpool.CheatRandom: costCheat(workerpool.CheatRandom),
			},
		},
		{
			figID: "fig7b", title: "Long-term frequency-truthfulness (total utility gain vs cheat probability)",
			cheats: map[workerpool.CheatDirection]func(float64) workerpool.Strategy{
				workerpool.CheatHigher: freqCheat(workerpool.CheatHigher),
				workerpool.CheatLower:  freqCheat(workerpool.CheatLower),
				workerpool.CheatRandom: freqCheat(workerpool.CheatRandom),
			},
		},
	}

	out := &Output{}
	for pi, panel := range panels {
		fig := &report.Figure{
			ID: panel.figID, Title: panel.title,
			XLabel: "cheating probability", YLabel: "expected total utility gain",
		}
		for _, dir := range []workerpool.CheatDirection{workerpool.CheatHigher, workerpool.CheatLower, workerpool.CheatRandom} {
			xs := make([]float64, 0, len(probs))
			ys := make([]float64, 0, len(probs))
			for _, p := range probs {
				g, err := s.averageGain(opts.Seed+int64(pi)*7_000_001, p, panel.cheats[dir])
				if err != nil {
					return nil, err
				}
				xs = append(xs, p)
				ys = append(ys, g)
			}
			fig.Series = append(fig.Series, report.Series{Name: "bid " + dir.String(), X: xs, Y: ys})
			out.Notes = append(out.Notes, fmt.Sprintf("%s bid-%s: gain at p=1 is %.3f (paper: negative, worst for higher cost bids)",
				panel.figID, dir, ys[len(ys)-1]))
		}
		out.Figures = append(out.Figures, fig)
	}
	return out, nil
}
