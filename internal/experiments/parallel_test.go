package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"melody/internal/core"
	"melody/internal/stats"
)

func TestForEachPointOrderAndErrors(t *testing.T) {
	if err := forEachPoint(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}

	out := make([]int, 100)
	var calls atomic.Int64
	if err := forEachPoint(len(out), func(i int) error {
		calls.Add(1)
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Fatalf("fn called %d times, want 100", calls.Load())
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("index %d got %d", i, v)
		}
	}

	boom := errors.New("boom-7")
	err := forEachPoint(10, func(i int) error {
		if i == 7 || i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("joined error lost the cause: %v", err)
	}
}

// TestRunSweepMatchesSerialSplits pins the RNG contract of the parallel
// sweep driver: pre-splitting every point's streams from one goroutine and
// evaluating in parallel must reproduce, bit for bit, what the seed's
// serial driver produced by interleaving r.Split() calls with evaluation.
func TestRunSweepMatchesSerialSplits(t *testing.T) {
	cfg := PaperSRA()
	auction := cfg.AuctionConfig()
	specs := []sweepSpec{
		{n: 30, m: 40, budget: 200},
		{n: 50, m: 25, budget: 120},
		{n: 10, m: 60, budget: 600},
		{n: 80, m: 80, budget: 50},
	}
	const reps = 3

	// Serial oracle: the pre-parallelization driver, with Split interleaved
	// into the evaluation loop.
	serial := func(seed int64) []sweepResult {
		r := stats.NewRNG(seed)
		mel, err := core.NewMelody(auction)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := core.NewOptUB(auction)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]sweepResult, len(specs))
		for p, spec := range specs {
			var res sweepResult
			for rep := 0; rep < reps; rep++ {
				in := cfg.Instance(r.Split(), spec.n, spec.m, spec.budget)
				rnd, err := core.NewRandom(auction, r.Split())
				if err != nil {
					t.Fatal(err)
				}
				uo, err := ub.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				mo, err := mel.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				ro, err := rnd.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				res.optUB += float64(uo.Utility())
				res.melody += float64(mo.Utility())
				res.random += float64(ro.Utility())
			}
			res.optUB /= reps
			res.melody /= reps
			res.random /= reps
			out[p] = res
		}
		return out
	}

	for _, seed := range []int64{1, 17, 424242} {
		want := serial(seed)
		got, err := runSweep(stats.NewRNG(seed), cfg, specs, reps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: parallel sweep diverged from serial driver\ngot:  %+v\nwant: %+v", seed, got, want)
		}
	}
}

// TestFig4aDeterministic: the parallel driver must yield identical output
// across invocations regardless of goroutine scheduling.
func TestFig4aDeterministic(t *testing.T) {
	opts := Options{Seed: 31, Scale: 0.1}
	a, err := Fig4a(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4a(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig4a output differs between identically-seeded invocations")
	}
}

// TestAblationsDeterministic: parallel cells must not reorder or perturb
// the table.
func TestAblationsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long-term simulation")
	}
	opts := Options{Seed: 31, Scale: 0.05}
	a, err := Ablations(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ablations(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Ablations output differs between identically-seeded invocations")
	}
	for i, row := range a.Tables[0].Rows {
		if len(row) != 4 || row[0] == "" {
			t.Fatalf("row %d malformed: %v", i, row)
		}
	}
}
