package experiments

import (
	"fmt"
	"time"

	"melody/internal/core"
	"melody/internal/report"
	"melody/internal/stats"
)

// timeRun measures MELODY's wall-clock allocation time on one instance,
// averaged over reps executions.
func timeRun(mel *core.Melody, in core.Instance, reps int) (float64, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := mel.Run(in); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(reps) / 1000.0, nil
}

// Fig8 reproduces Fig. 8: MELODY's running time as the number of workers
// (panel a, M in {500, 5000}) and the number of tasks (panel b, N in
// {500, 2000}) grow, with B=800. Theorem 8 predicts O(NM) scaling, i.e.
// linear in each panel.
func Fig8(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	cfg := PaperSRA()
	mel, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		return nil, err
	}
	reps := 3
	budget := 800.0

	out := &Output{}

	// Panel a: time vs N.
	figA := &report.Figure{
		ID: "fig8a", Title: "Running time changing with the number of workers",
		XLabel: "number of workers", YLabel: "running time (ms)",
	}
	maxN := opts.scaled(1000, 100)
	stepN := maxN / 10
	for _, m := range []int{opts.scaled(500, 50), opts.scaled(5000, 200)} {
		var xs, ys []float64
		for n := stepN; n <= maxN; n += stepN {
			in := cfg.Instance(r.Split(), n, m, budget)
			ms, err := timeRun(mel, in, reps)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, ms)
		}
		figA.Series = append(figA.Series, report.Series{
			Name: fmt.Sprintf("M=%d", m), X: xs, Y: ys,
		})
	}
	out.Figures = append(out.Figures, figA)

	// Panel b: time vs M.
	figB := &report.Figure{
		ID: "fig8b", Title: "Running time changing with the number of tasks",
		XLabel: "number of tasks", YLabel: "running time (ms)",
	}
	maxM := opts.scaled(5000, 200)
	stepM := maxM / 10
	for _, n := range []int{opts.scaled(500, 50), opts.scaled(2000, 100)} {
		var xs, ys []float64
		for m := stepM; m <= maxM; m += stepM {
			in := cfg.Instance(r.Split(), n, m, budget)
			ms, err := timeRun(mel, in, reps)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(m))
			ys = append(ys, ms)
		}
		figB.Series = append(figB.Series, report.Series{
			Name: fmt.Sprintf("N=%d", n), X: xs, Y: ys,
		})
	}
	out.Figures = append(out.Figures, figB)

	// A rough linearity check: the time at the largest N should be within a
	// generous factor of the linear extrapolation from the smallest N.
	for _, fig := range out.Figures {
		for _, s := range fig.Series {
			if len(s.X) < 2 || s.Y[0] <= 0 {
				continue
			}
			predicted := s.Y[0] * s.X[len(s.X)-1] / s.X[0]
			actual := s.Y[len(s.Y)-1]
			out.Notes = append(out.Notes, fmt.Sprintf(
				"%s %s: last point %.3f ms vs linear extrapolation %.3f ms",
				fig.ID, s.Name, actual, predicted))
		}
	}
	return out, nil
}
