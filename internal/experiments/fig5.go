package experiments

import (
	"fmt"
	"sort"

	"melody/internal/core"
	"melody/internal/report"
	"melody/internal/stats"
)

// fig5Instance is the Section 7.2 setting: Table 3 setting II with N=300
// and B=2000.
func fig5Instance(opts Options, r *stats.RNG) (core.Instance, SRAConfig) {
	cfg := PaperSRA()
	n := opts.scaled(300, 40)
	m := opts.scaled(500, 60)
	return cfg.Instance(r, n, m, 2000), cfg
}

// Fig5a reproduces Fig. 5a: for every worker with a non-zero payment, the
// total cost (c_i * assigned tasks) against the total payment received. The
// individual-rationality check is that every point lies on or above the
// diagonal.
func Fig5a(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	in, cfg := fig5Instance(opts, r)
	mel, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		return nil, err
	}
	out, err := mel.Run(in)
	if err != nil {
		return nil, err
	}
	costs := make(map[string]float64, len(in.Workers))
	for _, w := range in.Workers {
		costs[w.ID] = w.Bid.Cost
	}
	type point struct{ cost, pay float64 }
	var pts []point
	counts := out.WorkerTaskCount()
	violations := 0
	for id, pay := range out.WorkerPayments() {
		cost := costs[id] * float64(counts[id])
		pts = append(pts, point{cost, pay})
		if pay < cost-1e-9 {
			violations++
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].cost < pts[j].cost })
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.cost, p.pay
	}
	fig := &report.Figure{
		ID: "fig5a", Title: "Individual rationality check (total payment vs total cost per winner)",
		XLabel: "total cost", YLabel: "total payment",
		Series: []report.Series{{Name: "winners", X: xs, Y: ys}},
	}
	return &Output{
		Figures: []*report.Figure{fig},
		Notes: []string{fmt.Sprintf(
			"%d winners, %d individual-rationality violations (paper and Theorem 6: zero)",
			len(pts), violations)},
	}, nil
}

// Fig5b reproduces Fig. 5b: the histogram and empirical CDF of workers'
// utilities under the Fig. 5a setting.
func Fig5b(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	in, cfg := fig5Instance(opts, r)
	mel, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		return nil, err
	}
	out, err := mel.Run(in)
	if err != nil {
		return nil, err
	}
	var utilities []float64
	var negatives int
	for _, w := range in.Workers {
		u := core.WorkerUtility(out, w.ID, w.Bid.Cost, w.Bid.Frequency)
		utilities = append(utilities, u)
		if u < -1e-9 {
			negatives++
		}
	}
	var acc stats.Accumulator
	for _, u := range utilities {
		acc.Add(u)
	}
	hi := acc.Max()
	if hi <= 0 {
		hi = 1
	}
	hist, err := stats.NewHistogram(0, hi*1.0001, 20)
	if err != nil {
		return nil, err
	}
	for _, u := range utilities {
		hist.Add(u)
	}
	histX := make([]float64, len(hist.Counts))
	histY := make([]float64, len(hist.Counts))
	for i := range hist.Counts {
		histX[i] = hist.BinCenter(i)
		histY[i] = hist.Density(i)
	}
	ecdf, err := stats.NewECDF(utilities)
	if err != nil {
		return nil, err
	}
	cdfX := make([]float64, 41)
	cdfY := make([]float64, 41)
	for i := range cdfX {
		x := hi * float64(i) / 40
		cdfX[i] = x
		cdfY[i] = ecdf.At(x)
	}
	histFig := &report.Figure{
		ID: "fig5b-hist", Title: "Distribution of workers' utility (histogram)",
		XLabel: "utility", YLabel: "fraction of workers",
		Series: []report.Series{{Name: "density", X: histX, Y: histY}},
	}
	cdfFig := &report.Figure{
		ID: "fig5b-cdf", Title: "Distribution of workers' utility (CDF)",
		XLabel: "utility", YLabel: "P(U <= u)",
		Series: []report.Series{{Name: "CDF", X: cdfX, Y: cdfY}},
	}
	return &Output{
		Figures: []*report.Figure{histFig, cdfFig},
		Notes: []string{fmt.Sprintf(
			"utility mean %.3f max %.3f, %d negative utilities (paper: mean 0.059, max 0.479, none negative)",
			acc.Mean(), acc.Max(), negatives)},
	}, nil
}

// Fig5c reproduces Fig. 5c: the requester's actual total payment as the
// budget sweeps 0..1500; payment tracks the budget then saturates, and
// never exceeds it.
func Fig5c(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	cfg := PaperSRA()
	n := opts.scaled(300, 40)
	m := opts.scaled(500, 60)
	mel, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		return nil, err
	}
	in := cfg.Instance(r, n, m, 0)

	var xs, pays, diag []float64
	violations := 0
	for b := 0.0; b <= 1500; b += 100 {
		in.Budget = b
		out, err := mel.Run(in)
		if err != nil {
			return nil, err
		}
		xs = append(xs, b)
		pays = append(pays, out.TotalPayment)
		diag = append(diag, b)
		if out.TotalPayment > b+1e-9 {
			violations++
		}
	}
	fig := &report.Figure{
		ID: "fig5c", Title: "Budget feasibility check (total payment vs budget)",
		XLabel: "budget", YLabel: "total payment",
		Series: []report.Series{
			{Name: "total payment", X: xs, Y: pays},
			{Name: "budget (y=x)", X: xs, Y: diag},
		},
	}
	return &Output{
		Figures: []*report.Figure{fig},
		Notes: []string{fmt.Sprintf(
			"%d budget violations across the sweep (paper and constraint (9): zero)", violations)},
	}, nil
}
