package experiments

import (
	"fmt"

	"melody/internal/report"
)

// Table1 reproduces the paper's Table 1: the property comparison between
// MELODY and the cited mechanisms. The entries are the paper's claims; the
// MELODY column is backed by this repository's property tests (see
// internal/core/properties_test.go and EXPERIMENTS.md).
func Table1(opts Options) (*Output, error) {
	tbl := &report.Table{
		ID:     "table1",
		Title:  "Comparison of incentive mechanisms with MELODY",
		Header: []string{"Property", "[2]", "[3]", "[4]", "[5]", "[6]", "[7]", "MELODY"},
		Rows: [][]string{
			{"Truthfulness", "", "y", "y", "y", "", "", "y"},
			{"Individual rationality", "", "y", "y", "y", "", "", "y"},
			{"Competitiveness", "", "y", "", "y", "", "", "y"},
			{"Computational efficiency", "", "y", "y", "y", "", "y", "y"},
			{"Budget feasibility", "", "y", "y", "", "", "y", "y"},
			{"(short-term) Quality awareness", "", "", "y", "y", "y", "y", "y"},
			{"Long-term quality awareness", "", "", "", "", "", "", "y"},
		},
	}
	return &Output{
		Tables: []*report.Table{tbl},
		Notes: []string{
			"MELODY column verified executably: individual rationality and budget " +
				"feasibility hold on every tested instance; truthfulness holds exactly " +
				"per task (single-task auctions) and statistically on multi-task runs.",
		},
	}, nil
}

// Table3 prints the SRA experiment settings (paper Table 3).
func Table3(opts Options) (*Output, error) {
	c := PaperSRA()
	rng := func(lo, hi float64) string { return fmt.Sprintf("[%g, %g]", lo, hi) }
	tbl := &report.Table{
		ID:     "table3",
		Title:  "Parameter settings for the SRA problem",
		Header: []string{"Setting", "mu_i", "c_i", "n_i", "Q_j", "M", "N", "B"},
		Rows: [][]string{
			{"I", rng(c.QualityLo, c.QualityHi), rng(c.CostLo, c.CostHi),
				fmt.Sprintf("[%d, %d]", c.FreqLo, c.FreqHi), rng(c.ThresholdLo, c.ThresholdHi),
				"500", "10 to 700", "600, 800"},
			{"II", rng(c.QualityLo, c.QualityHi), rng(c.CostLo, c.CostHi),
				fmt.Sprintf("[%d, %d]", c.FreqLo, c.FreqHi), rng(c.ThresholdLo, c.ThresholdHi),
				"500", "100, 250", "10 to 2310"},
			{"III", rng(c.QualityLo, c.QualityHi), rng(c.CostLo, c.CostHi),
				fmt.Sprintf("[%d, %d]", c.FreqLo, c.FreqHi), rng(c.ThresholdLo, c.ThresholdHi),
				"10 to 700", "100, 400", "2000"},
		},
	}
	return &Output{Tables: []*report.Table{tbl}}, nil
}

// Table4 prints the long-term experiment settings (paper Table 4).
func Table4(opts Options) (*Output, error) {
	c := PaperLongTerm()
	tbl := &report.Table{
		ID:     "table4",
		Title:  "Parameter settings for workers' long-term quality updating",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"s_ij^r", fmt.Sprintf("[%g, %g]", c.ScoreLo, c.ScoreHi)},
			{"c_i^r", fmt.Sprintf("[%g, %g]", c.CostLo, c.CostHi)},
			{"n_i^r", fmt.Sprintf("[%d, %d]", c.FreqLo, c.FreqHi)},
			{"Q_j^r", fmt.Sprintf("[%g, %g]", c.ThresholdLo, c.ThresholdHi)},
			{"M^r", fmt.Sprintf("%d", c.TasksPerRun)},
			{"N", fmt.Sprintf("%d", c.Workers)},
			{"B^r", fmt.Sprintf("%g", c.Budget)},
			{"runs", fmt.Sprintf("%d", c.Runs)},
			{"sigma_S", fmt.Sprintf("%g", c.ScoreSigma)},
			{"mu_i^0", fmt.Sprintf("%g", c.InitMean)},
			{"sigma_i^0", fmt.Sprintf("%g", c.InitVar)},
			{"T (EM period)", fmt.Sprintf("%d", c.EMPeriod)},
		},
	}
	return &Output{Tables: []*report.Table{tbl}}, nil
}
