package experiments

import (
	"fmt"
	"sort"

	"melody/internal/report"
)

// Output is what one experiment produces: figures, tables and free-form
// summary notes (paper-vs-measured comparisons).
type Output struct {
	Figures []*report.Figure
	Tables  []*report.Table
	Notes   []string
}

// Experiment pairs an identifier from the paper (table or figure number)
// with a runnable reproduction.
type Experiment struct {
	// ID matches DESIGN.md's per-experiment index, e.g. "fig4a", "table1".
	ID string
	// Description summarizes what the paper shows there.
	Description string
	// Run executes the experiment.
	Run func(opts Options) (*Output, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Description: "mechanism property comparison", Run: Table1},
		{ID: "fig1", Description: "four long-term quality archetypes", Run: Fig1},
		{ID: "table3", Description: "SRA parameter settings", Run: Table3},
		{ID: "fig4a", Description: "requester utility vs number of workers", Run: Fig4a},
		{ID: "fig4b", Description: "requester utility vs budget", Run: Fig4b},
		{ID: "fig4c", Description: "requester utility vs number of tasks", Run: Fig4c},
		{ID: "fig5a", Description: "individual rationality check", Run: Fig5a},
		{ID: "fig5b", Description: "worker utility distribution", Run: Fig5b},
		{ID: "fig5c", Description: "budget feasibility check", Run: Fig5c},
		{ID: "fig6", Description: "short-term truthfulness check", Run: Fig6},
		{ID: "fig7", Description: "long-term truthfulness check", Run: Fig7},
		{ID: "fig8", Description: "running time scaling", Run: Fig8},
		{ID: "table4", Description: "long-term parameter settings", Run: Table4},
		{ID: "fig9", Description: "long-term quality awareness", Run: Fig9},
		{ID: "casestudy", Description: "footnote-4 stable-worker fraction (extension)", Run: CaseStudy},
		{ID: "fig9ci", Description: "fig9 with parallel replications and 95% CIs (extension)", Run: Fig9CI},
		{ID: "ablation", Description: "design-choice ablations: EM period/window, qualification, Eq. 19 (extension)", Run: Ablations},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}
