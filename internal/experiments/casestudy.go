package experiments

import (
	"fmt"

	"melody/internal/report"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// CaseStudy reproduces the Section 1 / footnote 4 measurement: the fraction
// of workers whose long-term quality curve is "stable" under the paper's
// criterion (regression slope within [-0.05, 0.05] and variance below 100,
// on a 0-100 quality scale). The paper measured 8.5% on the AMT
// affective-text dataset; we apply the same executable criterion to a
// synthetic population whose archetype mix approximates the paper's
// observation (most workers rise, decline or fluctuate), and report the
// per-archetype classification rates, validating that the criterion
// separates the archetypes the way the paper's case study assumes.
func CaseStudy(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	r := stats.NewRNG(opts.Seed)
	workersPerPattern := opts.scaled(200, 20)
	runs := opts.scaled(60, 20)

	tbl := &report.Table{
		ID:     "casestudy",
		Title:  "Footnote-4 stability criterion applied per archetype",
		Header: []string{"Archetype", "Workers", "Classified stable", "Rate"},
	}
	var notes []string
	totalStable, total := 0, 0
	// The AMT-motivated mix: the paper reports 8.5% stable, so the
	// population is weighted toward the dynamic archetypes.
	weights := map[workerpool.Pattern]float64{
		workerpool.Rising:      0.33,
		workerpool.Declining:   0.28,
		workerpool.Fluctuating: 0.305,
		workerpool.Stable:      0.085,
	}
	mixStable, mixTotal := 0, 0
	for _, p := range workerpool.AllPatterns() {
		stable := 0
		for i := 0; i < workersPerPattern; i++ {
			traj, err := workerpool.Generate(r.Split(), workerpool.TrajectoryConfig{
				Pattern: p, Runs: runs, Lo: 0, Hi: 100, Noise: 4,
			})
			if err != nil {
				return nil, err
			}
			isStable, err := stats.PaperStability.IsStable(traj)
			if err != nil {
				return nil, err
			}
			if isStable {
				stable++
			}
		}
		totalStable += stable
		total += workersPerPattern
		tbl.Rows = append(tbl.Rows, []string{
			p.String(),
			fmt.Sprintf("%d", workersPerPattern),
			fmt.Sprintf("%d", stable),
			fmt.Sprintf("%.1f%%", 100*float64(stable)/float64(workersPerPattern)),
		})
		// Contribution to the weighted AMT-style mix.
		share := weights[p]
		mixStable += int(share * float64(stable))
		mixTotal += int(share * float64(workersPerPattern))
	}
	notes = append(notes,
		fmt.Sprintf("uniform-mix stable fraction: %.1f%% of %d workers",
			100*float64(totalStable)/float64(total), total),
		fmt.Sprintf("AMT-weighted mix stable fraction: %.1f%% (paper's case study: 8.5%%)",
			100*float64(mixStable)/float64(maxInt(mixTotal, 1))),
		"the criterion classifies the stable archetype as stable and the dynamic archetypes as not, as the paper's Fig. 1 discussion assumes",
	)
	return &Output{Tables: []*report.Table{tbl}, Notes: notes}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
