// Package workerpool models the simulated worker population: latent-quality
// trajectories following the four archetypes of the paper's Fig. 1 (rising,
// declining, fluctuating, stable), score emission per Eq. (13), and bidding
// strategies (truthful and the misreporting behaviours of the Fig. 7
// long-term truthfulness study).
package workerpool

import (
	"errors"
	"fmt"
	"math"

	"melody/internal/stats"
)

// Pattern is a long-term latent-quality archetype from Fig. 1.
type Pattern int

// The four archetypes observed in the AMT affective-text dataset.
const (
	Rising Pattern = iota + 1
	Declining
	Fluctuating
	Stable
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Rising:
		return "rising"
	case Declining:
		return "declining"
	case Fluctuating:
		return "fluctuating"
	case Stable:
		return "stable"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// AllPatterns lists the archetypes in presentation order (Fig. 1a-1d).
func AllPatterns() []Pattern {
	return []Pattern{Rising, Declining, Fluctuating, Stable}
}

// TrajectoryConfig parameterizes latent-quality generation. Qualities live
// on the score scale [Lo, Hi] (Table 4 uses [1, 10]).
type TrajectoryConfig struct {
	Pattern Pattern
	Runs    int
	Lo, Hi  float64
	// Noise is the standard deviation of the per-run Gaussian jitter added
	// on top of the global pattern.
	Noise float64
}

// Validate reports whether the configuration is usable.
func (c TrajectoryConfig) Validate() error {
	if c.Runs <= 0 {
		return fmt.Errorf("workerpool: trajectory needs at least one run, got %d", c.Runs)
	}
	if c.Hi <= c.Lo {
		return fmt.Errorf("workerpool: quality range [%v, %v] inverted", c.Lo, c.Hi)
	}
	if c.Noise < 0 {
		return errors.New("workerpool: negative noise")
	}
	switch c.Pattern {
	case Rising, Declining, Fluctuating, Stable:
	default:
		return fmt.Errorf("workerpool: unknown pattern %v", c.Pattern)
	}
	return nil
}

// Generate produces a latent-quality trajectory q^1..q^Runs following the
// configured global pattern with random per-worker shape parameters and
// additive Gaussian noise, clamped to [Lo, Hi]. The paper's Section 7.7
// generates worker quality exactly this way ("the quality sequence of each
// worker follows a specific global pattern ... with random noises").
func Generate(r *stats.RNG, cfg TrajectoryConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	span := cfg.Hi - cfg.Lo
	out := make([]float64, cfg.Runs)
	switch cfg.Pattern {
	case Rising, Declining:
		// Logistic ramp between two random levels, mirrored for Declining:
		// expertise accumulates gradually, which is the paper's explanation
		// for monotone trends.
		low := cfg.Lo + span*r.Uniform(0.05, 0.3)
		high := cfg.Hi - span*r.Uniform(0.05, 0.3)
		mid := float64(cfg.Runs) * r.Uniform(0.3, 0.7)
		steep := r.Uniform(4, 10) / float64(cfg.Runs)
		for t := range out {
			frac := 1 / (1 + math.Exp(-steep*(float64(t)-mid)))
			v := low + (high-low)*frac
			if cfg.Pattern == Declining {
				v = low + high - v
			}
			out[t] = v
		}
	case Fluctuating:
		// Two superimposed sinusoids with random period and phase around a
		// random base level.
		base := cfg.Lo + span*r.Uniform(0.35, 0.65)
		amp1 := span * r.Uniform(0.1, 0.25)
		amp2 := span * r.Uniform(0.05, 0.15)
		per1 := float64(cfg.Runs) * r.Uniform(0.2, 0.5)
		per2 := float64(cfg.Runs) * r.Uniform(0.05, 0.15)
		ph1 := r.Uniform(0, 2*math.Pi)
		ph2 := r.Uniform(0, 2*math.Pi)
		for t := range out {
			out[t] = base +
				amp1*math.Sin(2*math.Pi*float64(t)/per1+ph1) +
				amp2*math.Sin(2*math.Pi*float64(t)/per2+ph2)
		}
	case Stable:
		level := cfg.Lo + span*r.Uniform(0.3, 0.7)
		for t := range out {
			out[t] = level
		}
	}
	for t := range out {
		out[t] = stats.Clamp(out[t]+r.Normal(0, cfg.Noise), cfg.Lo, cfg.Hi)
	}
	return out, nil
}

// EmitScores draws the observed score set for a worker who completed n
// tasks in a run with latent quality q: each score is N(q, sigma^2) clamped
// to the score scale (Eq. 13; Table 4 clamps to [1, 10] with sigma_S = 3).
func EmitScores(r *stats.RNG, q float64, n int, sigma, lo, hi float64) []float64 {
	if n <= 0 {
		return nil
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = stats.Clamp(r.Normal(q, sigma), lo, hi)
	}
	return scores
}
