package workerpool

import (
	"fmt"

	"melody/internal/core"
	"melody/internal/stats"
)

// Strategy decides what a worker bids each run given their true bid. The
// long-term truthfulness study (Fig. 7) needs workers who misreport with a
// configurable probability and direction.
type Strategy interface {
	// Bid returns the declared bid for the run. Implementations may
	// randomize using the provided source.
	Bid(r *stats.RNG, truth core.Bid) core.Bid
}

// Truthful always declares the true bid.
type Truthful struct{}

var _ Strategy = Truthful{}

// Bid implements Strategy.
func (Truthful) Bid(_ *stats.RNG, truth core.Bid) core.Bid { return truth }

// CheatDirection selects how a misreporting worker distorts the bid.
type CheatDirection int

// The three cheating behaviours studied in Fig. 7.
const (
	// CheatHigher reports a value above the true one.
	CheatHigher CheatDirection = iota + 1
	// CheatLower reports a value below the true one.
	CheatLower
	// CheatRandom reports a uniformly random value within bounds.
	CheatRandom
)

// String implements fmt.Stringer.
func (d CheatDirection) String() string {
	switch d {
	case CheatHigher:
		return "higher"
	case CheatLower:
		return "lower"
	case CheatRandom:
		return "random"
	default:
		return fmt.Sprintf("CheatDirection(%d)", int(d))
	}
}

// CostCheat misreports the cost bid with probability Prob, leaving
// frequency truthful. Reported costs stay within [CostMin, CostMax] so the
// worker remains qualified — the interesting deviations are the ones the
// platform cannot filter.
type CostCheat struct {
	Prob             float64
	Direction        CheatDirection
	CostMin, CostMax float64
}

var _ Strategy = CostCheat{}

// Bid implements Strategy.
func (c CostCheat) Bid(r *stats.RNG, truth core.Bid) core.Bid {
	if !r.Bernoulli(c.Prob) {
		return truth
	}
	lie := truth
	switch c.Direction {
	case CheatHigher:
		lie.Cost = r.Uniform(truth.Cost, c.CostMax)
	case CheatLower:
		lie.Cost = r.Uniform(c.CostMin, truth.Cost)
	default:
		lie.Cost = r.Uniform(c.CostMin, c.CostMax)
	}
	return lie
}

// FrequencyCheat misreports the frequency bid with probability Prob,
// leaving cost truthful. Reported frequencies stay within [1, FreqMax].
type FrequencyCheat struct {
	Prob      float64
	Direction CheatDirection
	FreqMax   int
}

var _ Strategy = FrequencyCheat{}

// Bid implements Strategy.
func (c FrequencyCheat) Bid(r *stats.RNG, truth core.Bid) core.Bid {
	if !r.Bernoulli(c.Prob) {
		return truth
	}
	lie := truth
	switch c.Direction {
	case CheatHigher:
		if truth.Frequency < c.FreqMax {
			lie.Frequency = r.UniformInt(truth.Frequency+1, c.FreqMax)
		}
	case CheatLower:
		if truth.Frequency > 1 {
			lie.Frequency = r.UniformInt(1, truth.Frequency-1)
		}
	default:
		lie.Frequency = r.UniformInt(1, c.FreqMax)
	}
	return lie
}

// Worker is a simulated worker: immutable true bid, a latent-quality
// trajectory indexed by run, and a bidding strategy. ArrivalRun and
// DepartureRun model churn: the worker participates in 1-based runs r with
// ArrivalRun <= r and (DepartureRun == 0 or r < DepartureRun). The zero
// values mean "always present", so populations without churn need not set
// them. Newly arrived workers exercise the paper's Algorithm 3 newcomer
// branch: their first estimate comes from the preset prior N(mu^0, sigma^0).
type Worker struct {
	ID           string
	TrueBid      core.Bid
	Trajectory   []float64
	Strategy     Strategy
	ArrivalRun   int
	DepartureRun int
}

// ActiveAt reports whether the worker participates in the given 1-based
// run.
func (w *Worker) ActiveAt(run int) bool {
	if w.ArrivalRun > 0 && run < w.ArrivalRun {
		return false
	}
	if w.DepartureRun > 0 && run >= w.DepartureRun {
		return false
	}
	return true
}

// LatentQuality returns q_i^r for run (zero-based). Runs beyond the
// trajectory hold the final value, so long simulations degrade gracefully.
func (w *Worker) LatentQuality(run int) float64 {
	if len(w.Trajectory) == 0 {
		return 0
	}
	if run >= len(w.Trajectory) {
		run = len(w.Trajectory) - 1
	}
	if run < 0 {
		run = 0
	}
	return w.Trajectory[run]
}

// PopulationConfig draws a whole worker population per Table 4: true costs
// and frequencies uniform in their ranges, trajectories mixed over the four
// archetypes.
type PopulationConfig struct {
	N                    int
	Runs                 int
	CostMin, CostMax     float64
	FreqMin, FreqMax     int
	QualityLo, QualityHi float64
	Noise                float64
	// PatternWeights maps each archetype to its share of the population.
	// Empty means uniform over the four archetypes.
	PatternWeights map[Pattern]float64
}

// NewPopulation draws n simulated workers with truthful strategies; callers
// can override Strategy per worker afterwards.
func NewPopulation(r *stats.RNG, cfg PopulationConfig) ([]*Worker, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workerpool: population size %d must be positive", cfg.N)
	}
	weights := cfg.PatternWeights
	if len(weights) == 0 {
		weights = map[Pattern]float64{Rising: 1, Declining: 1, Fluctuating: 1, Stable: 1}
	}
	var total float64
	for _, p := range AllPatterns() {
		total += weights[p]
	}
	if total <= 0 {
		return nil, fmt.Errorf("workerpool: pattern weights sum to %v", total)
	}
	workers := make([]*Worker, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		pick := r.Uniform(0, total)
		pattern := Stable
		for _, p := range AllPatterns() {
			if pick < weights[p] {
				pattern = p
				break
			}
			pick -= weights[p]
		}
		traj, err := Generate(r, TrajectoryConfig{
			Pattern: pattern,
			Runs:    cfg.Runs,
			Lo:      cfg.QualityLo,
			Hi:      cfg.QualityHi,
			Noise:   cfg.Noise,
		})
		if err != nil {
			return nil, fmt.Errorf("workerpool: worker %d: %w", i, err)
		}
		workers = append(workers, &Worker{
			ID: fmt.Sprintf("w%04d", i),
			TrueBid: core.Bid{
				Cost:      r.Uniform(cfg.CostMin, cfg.CostMax),
				Frequency: r.UniformInt(cfg.FreqMin, cfg.FreqMax),
			},
			Trajectory: traj,
			Strategy:   Truthful{},
		})
	}
	return workers, nil
}
