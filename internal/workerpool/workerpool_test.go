package workerpool

import (
	"testing"

	"melody/internal/core"
	"melody/internal/stats"
)

func trajCfg(p Pattern) TrajectoryConfig {
	return TrajectoryConfig{Pattern: p, Runs: 200, Lo: 1, Hi: 10, Noise: 0.3}
}

func TestTrajectoryConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     TrajectoryConfig
		wantErr bool
	}{
		{name: "valid", cfg: trajCfg(Rising)},
		{name: "zero runs", cfg: TrajectoryConfig{Pattern: Rising, Lo: 1, Hi: 10}, wantErr: true},
		{name: "inverted range", cfg: TrajectoryConfig{Pattern: Rising, Runs: 10, Lo: 10, Hi: 1}, wantErr: true},
		{name: "negative noise", cfg: TrajectoryConfig{Pattern: Rising, Runs: 10, Lo: 1, Hi: 10, Noise: -1}, wantErr: true},
		{name: "bad pattern", cfg: TrajectoryConfig{Pattern: Pattern(0), Runs: 10, Lo: 1, Hi: 10}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestGenerateBoundsAndLength(t *testing.T) {
	r := stats.NewRNG(1)
	for _, p := range AllPatterns() {
		traj, err := Generate(r, trajCfg(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(traj) != 200 {
			t.Fatalf("%v: length %d", p, len(traj))
		}
		for i, q := range traj {
			if q < 1 || q > 10 {
				t.Fatalf("%v: q[%d] = %v out of [1,10]", p, i, q)
			}
		}
	}
}

func TestRisingTrajectoryRises(t *testing.T) {
	r := stats.NewRNG(2)
	for trial := 0; trial < 10; trial++ {
		traj, err := Generate(r, trajCfg(Rising))
		if err != nil {
			t.Fatal(err)
		}
		head, _ := stats.Mean(traj[:40])
		tail, _ := stats.Mean(traj[len(traj)-40:])
		if tail <= head {
			t.Errorf("trial %d: rising trajectory fell %v -> %v", trial, head, tail)
		}
	}
}

func TestDecliningTrajectoryDeclines(t *testing.T) {
	r := stats.NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		traj, err := Generate(r, trajCfg(Declining))
		if err != nil {
			t.Fatal(err)
		}
		head, _ := stats.Mean(traj[:40])
		tail, _ := stats.Mean(traj[len(traj)-40:])
		if tail >= head {
			t.Errorf("trial %d: declining trajectory rose %v -> %v", trial, head, tail)
		}
	}
}

func TestStableTrajectoryIsStable(t *testing.T) {
	r := stats.NewRNG(4)
	cfg := trajCfg(Stable)
	cfg.Noise = 0.2
	for trial := 0; trial < 10; trial++ {
		traj, err := Generate(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := stats.PaperStability.IsStable(traj)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Errorf("trial %d: stable trajectory fails the paper's stability criterion", trial)
		}
	}
}

func TestFluctuatingTrajectoryHasSwing(t *testing.T) {
	r := stats.NewRNG(5)
	traj, err := Generate(r, trajCfg(Fluctuating))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := stats.Variance(traj)
	if v < 0.2 {
		t.Errorf("fluctuating trajectory variance %v too small", v)
	}
}

func TestPatternString(t *testing.T) {
	want := map[Pattern]string{
		Rising: "rising", Declining: "declining",
		Fluctuating: "fluctuating", Stable: "stable", Pattern(99): "Pattern(99)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestEmitScores(t *testing.T) {
	r := stats.NewRNG(6)
	scores := EmitScores(r, 5.5, 1000, 3, 1, 10)
	if len(scores) != 1000 {
		t.Fatalf("len = %d", len(scores))
	}
	var acc stats.Accumulator
	for _, s := range scores {
		if s < 1 || s > 10 {
			t.Fatalf("score %v out of range", s)
		}
		acc.Add(s)
	}
	if acc.Mean() < 4.5 || acc.Mean() > 6.5 {
		t.Errorf("score mean %v far from latent 5.5", acc.Mean())
	}
	if got := EmitScores(r, 5, 0, 3, 1, 10); got != nil {
		t.Errorf("zero tasks should emit nil, got %v", got)
	}
}

func TestTruthfulStrategy(t *testing.T) {
	truth := core.Bid{Cost: 1.5, Frequency: 3}
	if got := (Truthful{}).Bid(stats.NewRNG(1), truth); got != truth {
		t.Errorf("Truthful.Bid = %+v, want %+v", got, truth)
	}
}

func TestCostCheatDirections(t *testing.T) {
	r := stats.NewRNG(7)
	truth := core.Bid{Cost: 1.5, Frequency: 3}
	higher := CostCheat{Prob: 1, Direction: CheatHigher, CostMin: 1, CostMax: 2}
	lower := CostCheat{Prob: 1, Direction: CheatLower, CostMin: 1, CostMax: 2}
	random := CostCheat{Prob: 1, Direction: CheatRandom, CostMin: 1, CostMax: 2}
	for i := 0; i < 100; i++ {
		if b := higher.Bid(r, truth); b.Cost < truth.Cost || b.Cost > 2 {
			t.Fatalf("higher cheat produced %v", b.Cost)
		}
		if b := lower.Bid(r, truth); b.Cost > truth.Cost || b.Cost < 1 {
			t.Fatalf("lower cheat produced %v", b.Cost)
		}
		if b := random.Bid(r, truth); b.Cost < 1 || b.Cost >= 2 {
			t.Fatalf("random cheat produced %v", b.Cost)
		}
		if b := higher.Bid(r, truth); b.Frequency != truth.Frequency {
			t.Fatal("cost cheat changed frequency")
		}
	}
	never := CostCheat{Prob: 0, Direction: CheatHigher, CostMin: 1, CostMax: 2}
	if b := never.Bid(r, truth); b != truth {
		t.Errorf("prob 0 cheat lied: %+v", b)
	}
}

func TestFrequencyCheatDirections(t *testing.T) {
	r := stats.NewRNG(8)
	truth := core.Bid{Cost: 1.5, Frequency: 3}
	higher := FrequencyCheat{Prob: 1, Direction: CheatHigher, FreqMax: 5}
	lower := FrequencyCheat{Prob: 1, Direction: CheatLower, FreqMax: 5}
	for i := 0; i < 100; i++ {
		if b := higher.Bid(r, truth); b.Frequency <= truth.Frequency-1 || b.Frequency > 5 {
			t.Fatalf("higher cheat produced %d", b.Frequency)
		}
		if b := lower.Bid(r, truth); b.Frequency >= truth.Frequency || b.Frequency < 1 {
			t.Fatalf("lower cheat produced %d", b.Frequency)
		}
	}
	// At the boundary there is no room to lie higher.
	atMax := core.Bid{Cost: 1, Frequency: 5}
	if b := higher.Bid(r, atMax); b != atMax {
		t.Errorf("boundary cheat changed bid: %+v", b)
	}
}

func TestLatentQuality(t *testing.T) {
	w := &Worker{Trajectory: []float64{1, 2, 3}}
	tests := []struct {
		run  int
		want float64
	}{{0, 1}, {2, 3}, {5, 3}, {-1, 1}}
	for _, tt := range tests {
		if got := w.LatentQuality(tt.run); got != tt.want {
			t.Errorf("LatentQuality(%d) = %v, want %v", tt.run, got, tt.want)
		}
	}
	empty := &Worker{}
	if got := empty.LatentQuality(0); got != 0 {
		t.Errorf("empty trajectory = %v, want 0", got)
	}
}

func TestNewPopulation(t *testing.T) {
	r := stats.NewRNG(9)
	cfg := PopulationConfig{
		N: 50, Runs: 100,
		CostMin: 1, CostMax: 2,
		FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10,
		Noise: 0.5,
	}
	workers, err := NewPopulation(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 50 {
		t.Fatalf("population size %d", len(workers))
	}
	seen := make(map[string]bool)
	for _, w := range workers {
		if seen[w.ID] {
			t.Fatalf("duplicate worker ID %s", w.ID)
		}
		seen[w.ID] = true
		if w.TrueBid.Cost < 1 || w.TrueBid.Cost >= 2 {
			t.Errorf("cost %v out of range", w.TrueBid.Cost)
		}
		if w.TrueBid.Frequency < 1 || w.TrueBid.Frequency > 5 {
			t.Errorf("frequency %d out of range", w.TrueBid.Frequency)
		}
		if len(w.Trajectory) != 100 {
			t.Errorf("trajectory length %d", len(w.Trajectory))
		}
		if _, ok := w.Strategy.(Truthful); !ok {
			t.Error("default strategy is not Truthful")
		}
	}
}

func TestNewPopulationValidation(t *testing.T) {
	r := stats.NewRNG(10)
	if _, err := NewPopulation(r, PopulationConfig{N: 0}); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := NewPopulation(r, PopulationConfig{
		N: 5, Runs: 10, CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10,
		PatternWeights: map[Pattern]float64{Rising: 0},
	}); err == nil {
		t.Error("zero-sum weights accepted")
	}
}

func TestNewPopulationWeights(t *testing.T) {
	r := stats.NewRNG(11)
	cfg := PopulationConfig{
		N: 40, Runs: 150,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10, Noise: 0.1,
		PatternWeights: map[Pattern]float64{Rising: 1},
	}
	workers, err := NewPopulation(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every trajectory must rise.
	for _, w := range workers {
		head, _ := stats.Mean(w.Trajectory[:30])
		tail, _ := stats.Mean(w.Trajectory[len(w.Trajectory)-30:])
		if tail <= head {
			t.Errorf("worker %s: weighted-rising population produced non-rising trajectory", w.ID)
		}
	}
}

func TestCheatDirectionString(t *testing.T) {
	if CheatHigher.String() != "higher" || CheatLower.String() != "lower" ||
		CheatRandom.String() != "random" {
		t.Error("CheatDirection strings wrong")
	}
}
