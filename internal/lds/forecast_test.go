package lds

import (
	"math"
	"testing"
)

func TestForecastAheadOneStepMatchesPredict(t *testing.T) {
	p := Params{A: 0.9, Gamma: 0.4, Eta: 1}
	st := State{Mean: 5, Var: 2}
	f, err := ForecastAhead(p, st, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Predict(p, st)
	if f.Mean != want.Mean || f.Var != want.Var {
		t.Errorf("forecast = %+v, predict = %+v", f, want)
	}
}

func TestForecastAheadClosedForm(t *testing.T) {
	p := Params{A: 0.8, Gamma: 0.5, Eta: 1}
	st := State{Mean: 10, Var: 1}
	k := 4
	f, err := ForecastAhead(p, st, k)
	if err != nil {
		t.Fatal(err)
	}
	a2 := p.A * p.A
	wantMean := st.Mean * math.Pow(p.A, float64(k))
	wantVar := st.Var * math.Pow(a2, float64(k))
	for i := 0; i < k; i++ {
		wantVar += p.Gamma * math.Pow(a2, float64(i))
	}
	if !almostEqual(f.Mean, wantMean, 1e-12) {
		t.Errorf("mean = %v, want %v", f.Mean, wantMean)
	}
	if !almostEqual(f.Var, wantVar, 1e-12) {
		t.Errorf("var = %v, want %v", f.Var, wantVar)
	}
}

func TestForecastAheadValidation(t *testing.T) {
	good := Params{A: 1, Gamma: 1, Eta: 1}
	st := State{Mean: 0, Var: 1}
	if _, err := ForecastAhead(good, st, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := ForecastAhead(Params{}, st, 1); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := ForecastAhead(good, State{}, 1); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestForecastInterval(t *testing.T) {
	f := Forecast{Steps: 1, Mean: 0, Var: 1}
	lo, hi, err := f.Interval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Standard normal 95% interval is +/- 1.95996.
	if !almostEqual(lo, -1.95996, 1e-4) || !almostEqual(hi, 1.95996, 1e-4) {
		t.Errorf("95%% interval = [%v, %v]", lo, hi)
	}
	// Scaled and shifted.
	f = Forecast{Steps: 1, Mean: 5, Var: 4}
	lo, hi, err = f.Interval(0.6827) // ~1 sigma
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lo, 3, 0.01) || !almostEqual(hi, 7, 0.01) {
		t.Errorf("1-sigma interval = [%v, %v], want ~[3, 7]", lo, hi)
	}
	if _, _, err := f.Interval(0); err == nil {
		t.Error("zero mass accepted")
	}
	if _, _, err := f.Interval(1); err == nil {
		t.Error("unit mass accepted")
	}
}

func TestGaussianQuantile(t *testing.T) {
	tests := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.95996},
		{0.025, -1.95996},
		{0.8413, 0.9998}, // ~1 sigma
	}
	for _, tt := range tests {
		if got := gaussianQuantile(tt.p); !almostEqual(got, tt.want, 1e-3) {
			t.Errorf("quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestForecastVarianceGrowsWithHorizon(t *testing.T) {
	p := Params{A: 1, Gamma: 0.3, Eta: 1}
	st := State{Mean: 5, Var: 1}
	prev := 0.0
	for k := 1; k <= 10; k++ {
		f, err := ForecastAhead(p, st, k)
		if err != nil {
			t.Fatal(err)
		}
		if f.Var <= prev {
			t.Fatalf("variance did not grow at horizon %d: %v <= %v", k, f.Var, prev)
		}
		prev = f.Var
	}
}
