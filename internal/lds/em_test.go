package lds

import (
	"testing"

	"melody/internal/stats"
)

// synthHistory simulates a score history from known parameters.
func synthHistory(r *stats.RNG, p Params, init State, runs int, scoresPerRun func(run int) int) [][]float64 {
	q := r.NormalVar(init.Mean, init.Var)
	history := make([][]float64, runs)
	for t := 0; t < runs; t++ {
		q = r.NormalVar(p.A*q, p.Gamma)
		n := scoresPerRun(t)
		scores := make([]float64, n)
		for j := range scores {
			scores[j] = r.NormalVar(q, p.Eta)
		}
		history[t] = scores
	}
	return history
}

func TestEMRejectsDegenerateInputs(t *testing.T) {
	start := Params{A: 1, Gamma: 1, Eta: 1}
	init := State{Mean: 0, Var: 1}
	if _, err := EM(start, init, nil, EMConfig{}); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := EM(start, init, [][]float64{{}, {}}, EMConfig{}); err == nil {
		t.Error("history with no scores accepted")
	}
	if _, err := EM(Params{}, init, [][]float64{{1}}, EMConfig{}); err == nil {
		t.Error("invalid start params accepted")
	}
}

func TestEMImprovesLogLikelihood(t *testing.T) {
	r := stats.NewRNG(101)
	truth := Params{A: 0.98, Gamma: 0.3, Eta: 2.5}
	init := State{Mean: 5.5, Var: 2.25}
	history := synthHistory(r, truth, init, 120, func(int) int { return 3 })

	start := Params{A: 1.2, Gamma: 1.5, Eta: 0.5}
	llStart, err := LogLikelihood(start, init, history)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EM(start, init, history, EMConfig{MaxIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood <= llStart {
		t.Errorf("EM did not improve likelihood: %v -> %v", llStart, res.LogLikelihood)
	}
}

func TestEMMonotoneLikelihood(t *testing.T) {
	// The fundamental EM guarantee: each iteration cannot decrease the
	// marginal likelihood. We step one iteration at a time and check.
	r := stats.NewRNG(55)
	truth := Params{A: 0.95, Gamma: 0.5, Eta: 1.5}
	init := State{Mean: 5.5, Var: 2.25}
	history := synthHistory(r, truth, init, 60, func(t int) int { return 1 + t%3 })

	cur := Params{A: 0.5, Gamma: 2.0, Eta: 0.3}
	prevLL, err := LogLikelihood(cur, init, history)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		res, err := EM(cur, init, history, EMConfig{MaxIter: 1, Tol: 1e-300})
		if err != nil {
			t.Fatal(err)
		}
		ll := res.LogLikelihood
		if ll < prevLL-1e-8 {
			t.Fatalf("iteration %d decreased log likelihood: %v -> %v", i+1, prevLL, ll)
		}
		prevLL = ll
		cur = res.Params
	}
}

func TestEMRecoversParameters(t *testing.T) {
	r := stats.NewRNG(2024)
	truth := Params{A: 0.99, Gamma: 0.2, Eta: 3.0}
	init := State{Mean: 5.5, Var: 2.25}
	history := synthHistory(r, truth, init, 800, func(int) int { return 4 })

	start := Params{A: 0.8, Gamma: 1.0, Eta: 1.0}
	res, err := EM(start, init, history, EMConfig{MaxIter: 200, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Params
	if !almostEqual(got.A, truth.A, 0.05) {
		t.Errorf("A = %v, want ~%v", got.A, truth.A)
	}
	if !almostEqual(got.Eta, truth.Eta, 0.5) {
		t.Errorf("Eta = %v, want ~%v", got.Eta, truth.Eta)
	}
	// Gamma is the hardest to pin down; accept the right order of magnitude.
	if got.Gamma <= 0 || got.Gamma > 1.0 {
		t.Errorf("Gamma = %v, want positive and near %v", got.Gamma, truth.Gamma)
	}
}

func TestEMHandlesSparseObservation(t *testing.T) {
	// Workers frequently win no tasks in a run; EM must cope with mostly
	// empty score sets.
	r := stats.NewRNG(7)
	truth := Params{A: 1.0, Gamma: 0.4, Eta: 2.0}
	init := State{Mean: 5.5, Var: 2.25}
	history := synthHistory(r, truth, init, 200, func(t int) int {
		if t%4 == 0 {
			return 2
		}
		return 0
	})
	res, err := EM(Params{A: 1, Gamma: 1, Eta: 1}, init, history, EMConfig{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Params.Validate(); err != nil {
		t.Errorf("EM produced invalid params: %v", err)
	}
}

func TestEMConvergesFlagAndIterations(t *testing.T) {
	r := stats.NewRNG(31)
	truth := Params{A: 0.9, Gamma: 0.5, Eta: 1.0}
	init := State{Mean: 5, Var: 1}
	history := synthHistory(r, truth, init, 100, func(int) int { return 2 })

	res, err := EM(truth, init, history, EMConfig{MaxIter: 100, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("EM starting at a near-optimum should converge within 100 iterations")
	}
	if res.Iterations <= 0 || res.Iterations > 100 {
		t.Errorf("Iterations = %d out of range", res.Iterations)
	}
}

func TestEMVarianceFloor(t *testing.T) {
	// A constant history drives gamma toward zero; the floor must keep the
	// model proper.
	history := make([][]float64, 50)
	for i := range history {
		history[i] = []float64{5, 5}
	}
	res, err := EM(Params{A: 1, Gamma: 0.5, Eta: 0.5}, State{Mean: 5, Var: 1}, history,
		EMConfig{MaxIter: 100, VarFloor: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.Gamma < 1e-6 || res.Params.Eta < 1e-6 {
		t.Errorf("variance floor violated: %+v", res.Params)
	}
}
