package lds

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"melody/internal/stats"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{name: "valid", p: Params{A: 1, Gamma: 0.5, Eta: 2}},
		{name: "zero gamma", p: Params{A: 1, Gamma: 0, Eta: 2}, wantErr: true},
		{name: "negative eta", p: Params{A: 1, Gamma: 0.5, Eta: -1}, wantErr: true},
		{name: "nan a", p: Params{A: math.NaN(), Gamma: 0.5, Eta: 2}, wantErr: true},
		{name: "inf gamma", p: Params{A: 1, Gamma: math.Inf(1), Eta: 2}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestStateValidate(t *testing.T) {
	if err := (State{Mean: 5, Var: 1}).Validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	if err := (State{Mean: 5, Var: 0}).Validate(); err == nil {
		t.Error("zero variance accepted")
	}
	if err := (State{Mean: math.Inf(1), Var: 1}).Validate(); err == nil {
		t.Error("infinite mean accepted")
	}
}

func TestUpdateMatchesTheorem3Formulas(t *testing.T) {
	// Directly check Eq. (17)-(18) on a hand-computed example.
	p := Params{A: 0.9, Gamma: 0.4, Eta: 2.0}
	prev := State{Mean: 5.0, Var: 1.0}
	scores := []float64{6.0, 4.0, 5.0} // N=3, S=15

	k := p.A*p.A*prev.Var + p.Gamma // 0.81 + 0.4 = 1.21
	n, s := 3.0, 15.0
	wantMean := (p.A*p.Eta*prev.Mean + k*s) / (n*k + p.Eta)
	wantVar := k * p.Eta / (n*k + p.Eta)

	got, err := Update(p, prev, scores)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Mean, wantMean, 1e-12) {
		t.Errorf("Mean = %v, want %v", got.Mean, wantMean)
	}
	if !almostEqual(got.Var, wantVar, 1e-12) {
		t.Errorf("Var = %v, want %v", got.Var, wantVar)
	}
}

func TestUpdateEmptyScoresEqualsPredict(t *testing.T) {
	p := Params{A: 0.95, Gamma: 0.3, Eta: 1.0}
	prev := State{Mean: 4.2, Var: 0.8}
	got, err := Update(p, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Predict(p, prev)
	if got != want {
		t.Errorf("Update with no scores = %+v, want Predict = %+v", got, want)
	}
}

func TestUpdateRejectsBadInputs(t *testing.T) {
	good := Params{A: 1, Gamma: 1, Eta: 1}
	if _, err := Update(Params{}, State{Mean: 0, Var: 1}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Update(good, State{Mean: 0, Var: -1}, nil); err == nil {
		t.Error("invalid state accepted")
	}
	if _, err := Update(good, State{Mean: 0, Var: 1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN score accepted")
	}
}

// TestUpdateIsConjugateBayes verifies Theorem 3 against a from-first-
// principles sequential Bayesian update: predict once, then fold each score
// in one at a time with the standard single-observation conjugate formulas.
func TestUpdateIsConjugateBayes(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(Params{
				A:     r.Float64()*2 - 0.5,
				Gamma: r.Float64()*2 + 0.01,
				Eta:   r.Float64()*3 + 0.01,
			})
			vals[1] = reflect.ValueOf(State{
				Mean: r.Float64()*10 - 5,
				Var:  r.Float64()*3 + 0.01,
			})
			n := r.Intn(6) + 1
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = r.Float64()*10 - 5
			}
			vals[2] = reflect.ValueOf(scores)
		},
	}
	f := func(p Params, prev State, scores []float64) bool {
		got, err := Update(p, prev, scores)
		if err != nil {
			return false
		}
		b := Predict(p, prev)
		for _, s := range scores {
			predVar := b.Var + p.Eta
			gain := b.Var / predVar
			b = State{Mean: b.Mean + gain*(s-b.Mean), Var: b.Var * p.Eta / predVar}
		}
		return almostEqual(got.Mean, b.Mean, 1e-9) && almostEqual(got.Var, b.Var, 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPosteriorVarianceShrinksWithMoreScores(t *testing.T) {
	p := Params{A: 1, Gamma: 0.2, Eta: 3.0}
	prev := State{Mean: 5, Var: 2}
	prevVar := math.Inf(1)
	for n := 1; n <= 10; n++ {
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = 5
		}
		st, err := Update(p, prev, scores)
		if err != nil {
			t.Fatal(err)
		}
		if st.Var <= 0 {
			t.Fatalf("posterior variance %v not positive at n=%d", st.Var, n)
		}
		if st.Var >= prevVar {
			t.Fatalf("posterior variance %v did not shrink at n=%d (prev %v)", st.Var, n, prevVar)
		}
		prevVar = st.Var
	}
}

func TestFilterEqualsIteratedUpdate(t *testing.T) {
	p := Params{A: 0.9, Gamma: 0.3, Eta: 1.0}
	init := State{Mean: 5.5, Var: 2.25}
	history := [][]float64{{5.0}, {6.0, 6.5}, {}, {4.0}}

	states, err := Filter(p, init, history)
	if err != nil {
		t.Fatal(err)
	}
	cur := init
	for i, scores := range history {
		next, err := Update(p, cur, scores)
		if err != nil {
			t.Fatal(err)
		}
		if states[i] != next {
			t.Errorf("run %d: Filter %+v != Update %+v", i+1, states[i], next)
		}
		cur = next
	}
}

func TestSmoothErrors(t *testing.T) {
	good := Params{A: 1, Gamma: 1, Eta: 1}
	init := State{Mean: 0, Var: 1}
	if _, err := Smooth(good, init, nil); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := Smooth(Params{}, init, [][]float64{{1}}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSmoothedVarianceNotAboveFiltered(t *testing.T) {
	p := Params{A: 0.95, Gamma: 0.4, Eta: 2.0}
	init := State{Mean: 5.5, Var: 2.25}
	r := stats.NewRNG(8)
	history := make([][]float64, 30)
	for i := range history {
		n := r.Intn(4)
		history[i] = make([]float64, n)
		for j := range history[i] {
			history[i][j] = r.Normal(5, 2)
		}
	}
	filtered, err := Filter(p, init, history)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Smooth(p, init, history)
	if err != nil {
		t.Fatal(err)
	}
	for i := range filtered {
		if sm.Var[i+1] > filtered[i].Var+1e-12 {
			t.Errorf("run %d: smoothed var %v > filtered var %v", i+1, sm.Var[i+1], filtered[i].Var)
		}
	}
	// The final smoothed state equals the final filtered state.
	last := len(history)
	if !almostEqual(sm.Mean[last], filtered[last-1].Mean, 1e-12) ||
		!almostEqual(sm.Var[last], filtered[last-1].Var, 1e-12) {
		t.Error("final smoothed state differs from final filtered state")
	}
}

func TestPredictGrowsUncertainty(t *testing.T) {
	p := Params{A: 1, Gamma: 0.5, Eta: 1}
	st := State{Mean: 3, Var: 1}
	next := Predict(p, st)
	if next.Var <= st.Var {
		t.Errorf("prediction with a=1 must grow variance: %v -> %v", st.Var, next.Var)
	}
	if next.Mean != 3 {
		t.Errorf("prediction mean = %v, want 3", next.Mean)
	}
}
