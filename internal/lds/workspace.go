package lds

// Workspace holds reusable buffers for the smoother, EM, the filter and the
// innovation diagnostics, so repeated inference over the same worker (the
// estimator's per-run hot path) runs allocation-free once the buffers have
// grown to the history length. A Workspace is not safe for concurrent use;
// give each worker (or goroutine) its own. The zero value is ready to use.
//
// Results returned by Workspace methods alias its buffers and are valid
// only until the next call on the same Workspace; the package-level Smooth,
// EM, Filter and Innovations wrappers use a fresh Workspace per call and
// stay safe to retain.
type Workspace struct {
	filtered  []State
	predicted []float64
	sm        Smoothed
}

// states returns a zeroed State buffer of length n.
func growStates(buf []State, n int) []State {
	if cap(buf) < n {
		return make([]State, n)
	}
	return buf[:n]
}

// growFloats returns a zeroed float64 buffer of length n.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
