package lds

// This file contains a brute-force multivariate-Gaussian oracle used to
// verify the Kalman filter and RTS smoother exactly. The joint distribution
// of (q_0, ..., q_R) given all scores is Gaussian with a tridiagonal
// precision matrix; we build that matrix densely, invert it with Gaussian
// elimination, and compare marginals and lag-one covariances against the
// recursive implementations.

import (
	"math"
	"testing"
)

// solveDense inverts a symmetric positive-definite matrix via Gauss-Jordan
// elimination with partial pivoting. Only suitable for tiny test systems.
func solveDense(m [][]float64) [][]float64 {
	n := len(m)
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		pv := aug[col][col]
		for j := range aug[col] {
			aug[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			for j := range aug[r] {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = make([]float64, n)
		copy(inv[i], aug[i][n:])
	}
	return inv
}

// jointPosterior computes the exact posterior mean vector and covariance
// matrix of (q_0..q_R) given the full score history, via the tridiagonal
// precision construction.
func jointPosterior(p Params, init State, history [][]float64) (mean []float64, cov [][]float64) {
	n := len(history)
	dim := n + 1
	prec := make([][]float64, dim)
	for i := range prec {
		prec[i] = make([]float64, dim)
	}
	b := make([]float64, dim)

	prec[0][0] = 1 / init.Var
	b[0] = init.Mean / init.Var
	for t := 1; t <= n; t++ {
		// Transition q_t | q_{t-1} ~ N(a q_{t-1}, gamma).
		prec[t][t] += 1 / p.Gamma
		prec[t-1][t-1] += p.A * p.A / p.Gamma
		prec[t-1][t] -= p.A / p.Gamma
		prec[t][t-1] -= p.A / p.Gamma
		// Emissions.
		for _, s := range history[t-1] {
			prec[t][t] += 1 / p.Eta
			b[t] += s / p.Eta
		}
	}
	cov = solveDense(prec)
	mean = make([]float64, dim)
	for i := range mean {
		for j := range b {
			mean[i] += cov[i][j] * b[j]
		}
	}
	return mean, cov
}

func TestSmootherMatchesDenseOracle(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		init    State
		history [][]float64
	}{
		{
			name:    "short dense history",
			params:  Params{A: 0.95, Gamma: 0.4, Eta: 2.0},
			init:    State{Mean: 5.5, Var: 2.25},
			history: [][]float64{{6.1, 5.2}, {4.8}, {5.9, 6.3, 5.5}},
		},
		{
			name:    "history with missing runs",
			params:  Params{A: 1.0, Gamma: 0.1, Eta: 3.0},
			init:    State{Mean: 5.5, Var: 2.25},
			history: [][]float64{{7.0}, {}, {}, {3.0, 4.0}},
		},
		{
			name:    "shrinking transition",
			params:  Params{A: 0.8, Gamma: 1.0, Eta: 0.5},
			init:    State{Mean: 0, Var: 1},
			history: [][]float64{{1.0, 1.5}, {2.0}, {}, {2.5}, {3.0, 2.8, 3.1}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wantMean, wantCov := jointPosterior(tt.params, tt.init, tt.history)
			sm, err := Smooth(tt.params, tt.init, tt.history)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(wantMean); i++ {
				if !almostEqual(sm.Mean[i], wantMean[i], 1e-9) {
					t.Errorf("smoothed mean[%d] = %v, oracle %v", i, sm.Mean[i], wantMean[i])
				}
				if !almostEqual(sm.Var[i], wantCov[i][i], 1e-9) {
					t.Errorf("smoothed var[%d] = %v, oracle %v", i, sm.Var[i], wantCov[i][i])
				}
			}
			for i := 1; i < len(wantMean); i++ {
				if !almostEqual(sm.CrossCov[i], wantCov[i][i-1], 1e-9) {
					t.Errorf("cross cov[%d] = %v, oracle %v", i, sm.CrossCov[i], wantCov[i][i-1])
				}
			}
		})
	}
}

func TestFilterMatchesDenseOracleAtFinalStep(t *testing.T) {
	params := Params{A: 0.9, Gamma: 0.3, Eta: 1.5}
	init := State{Mean: 5.5, Var: 2.25}
	history := [][]float64{{6.0, 5.0}, {4.5}, {}, {5.8, 6.2}}

	states, err := Filter(params, init, history)
	if err != nil {
		t.Fatal(err)
	}
	wantMean, wantCov := jointPosterior(params, init, history)
	last := len(history)
	// The filtered posterior at the final run conditions on everything, so
	// it must agree with the smoothed (joint) marginal there.
	if !almostEqual(states[last-1].Mean, wantMean[last], 1e-9) {
		t.Errorf("final filtered mean = %v, oracle %v", states[last-1].Mean, wantMean[last])
	}
	if !almostEqual(states[last-1].Var, wantCov[last][last], 1e-9) {
		t.Errorf("final filtered var = %v, oracle %v", states[last-1].Var, wantCov[last][last])
	}
}

func TestLogLikelihoodMatchesDenseOracle(t *testing.T) {
	// For a purely-observed tiny model we can also compute the marginal
	// likelihood densely: marginalize the latent chain by brute force using
	// the score-space Gaussian N(Hm, H Sigma H^T + eta I).
	params := Params{A: 0.9, Gamma: 0.5, Eta: 1.2}
	init := State{Mean: 2.0, Var: 1.0}
	history := [][]float64{{2.5}, {1.8, 2.2}}

	// Prior over (q_0, q_1, q_2): mean and covariance from the transition
	// chain with no observations.
	noObs := [][]float64{{}, {}}
	priorMean, priorCov := jointPosterior(params, init, noObs)

	// Observation matrix H maps latent index to each score: scores are
	// q_1; q_2, q_2.
	obsIdx := []int{1, 2, 2}
	obs := []float64{2.5, 1.8, 2.2}
	d := len(obs)
	sMean := make([]float64, d)
	sCov := make([][]float64, d)
	for i := range sCov {
		sCov[i] = make([]float64, d)
		sMean[i] = priorMean[obsIdx[i]]
		for j := range sCov[i] {
			sCov[i][j] = priorCov[obsIdx[i]][obsIdx[j]]
			if i == j {
				sCov[i][j] += params.Eta
			}
		}
	}
	// Dense log N(obs; sMean, sCov).
	inv := solveDense(sCov)
	det := denseDet(sCov)
	var quad float64
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			quad += (obs[i] - sMean[i]) * inv[i][j] * (obs[j] - sMean[j])
		}
	}
	want := -0.5*(float64(d)*math.Log(2*math.Pi)+math.Log(det)) - 0.5*quad

	got, err := LogLikelihood(params, init, history)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("LogLikelihood = %v, oracle %v", got, want)
	}
}

// denseDet computes the determinant by LU-style elimination (test only).
func denseDet(m [][]float64) float64 {
	n := len(m)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		copy(a[i], m[i])
	}
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			det = -det
		}
		det *= a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	return det
}
