// Package lds implements the scalar-Gaussian Linear Dynamical System that
// MELODY uses to model a worker's long-term latent quality (Section 5 of the
// paper).
//
// The model, following Eq. (12)-(14):
//
//	q_r | q_{r-1} ~ N(a*q_{r-1}, gamma)          (transition)
//	s_{r,j} | q_r ~ N(q_r, eta), j = 1..N_r      (emission, i.i.d. per run)
//	q_0           ~ N(mu0, sigma0)               (initial state)
//
// where q_r is the latent quality in run r and S_r = {s_{r,1}, ..., s_{r,N_r}}
// is the set of scores the worker received in run r. A run in which the
// worker received no tasks contributes an empty score set and is handled as a
// pure prediction step.
//
// The package provides three operations:
//
//   - Filter: the forward (Kalman) recursion producing the posterior
//     alpha-hat(q_r) = N(mu_r, sigma_r) of Theorem 3, one step at a time or
//     over a whole history.
//   - Smoother: the backward RTS recursion producing p(q_r | S_1..S_R) with
//     lag-one cross covariances, required by EM.
//   - EM: Algorithm 2, maximum-likelihood estimation of theta = {a, gamma,
//     eta} from a score history.
package lds

import (
	"errors"
	"fmt"
	"math"
)

// Params are the per-worker hyper-parameters theta = {a, gamma, eta} of the
// LDS (transition coefficient, transition variance, emission variance).
type Params struct {
	A     float64 // transition coefficient a
	Gamma float64 // transition (process) variance, > 0
	Eta   float64 // emission (observation) variance, > 0
}

// Validate reports whether the parameters define a proper LDS.
func (p Params) Validate() error {
	switch {
	case math.IsNaN(p.A) || math.IsInf(p.A, 0):
		return errors.New("lds: transition coefficient is not finite")
	case !(p.Gamma > 0) || math.IsInf(p.Gamma, 0):
		return fmt.Errorf("lds: transition variance %v must be positive and finite", p.Gamma)
	case !(p.Eta > 0) || math.IsInf(p.Eta, 0):
		return fmt.Errorf("lds: emission variance %v must be positive and finite", p.Eta)
	default:
		return nil
	}
}

// State is a Gaussian belief N(Mean, Var) over the latent quality. It is
// used both for the prior alpha(q_r) and the posterior alpha-hat(q_r).
type State struct {
	Mean float64
	Var  float64
}

// Validate reports whether the state is a proper Gaussian belief.
func (s State) Validate() error {
	switch {
	case math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0):
		return errors.New("lds: state mean is not finite")
	case !(s.Var > 0) || math.IsInf(s.Var, 0):
		return fmt.Errorf("lds: state variance %v must be positive and finite", s.Var)
	default:
		return nil
	}
}

// Predict propagates a posterior belief through the transition density,
// producing the prior for the next run: alpha(q_{r+1}) per Eq. (3) with the
// Gaussian forms of Eq. (12). The prior mean a*mu is exactly Eq. (19)'s
// estimated quality for the next run.
func Predict(p Params, posterior State) State {
	return State{
		Mean: p.A * posterior.Mean,
		Var:  p.A*p.A*posterior.Var + p.Gamma,
	}
}

// Update folds one run's observed score set into the belief, implementing
// Theorem 3 (Eq. 17-18). prev is the posterior of run r-1; scores is S_r.
// An empty score set yields the pure prediction (the worker was not observed
// this run, so the posterior equals the prior).
func Update(p Params, prev State, scores []float64) (State, error) {
	if err := p.Validate(); err != nil {
		return State{}, err
	}
	if err := prev.Validate(); err != nil {
		return State{}, err
	}
	k := p.A*p.A*prev.Var + p.Gamma // K = a^2*sigma_{r-1} + gamma
	n := float64(len(scores))
	if len(scores) == 0 {
		return State{Mean: p.A * prev.Mean, Var: k}, nil
	}
	var sum float64
	for _, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return State{}, fmt.Errorf("lds: score %v is not finite", s)
		}
		sum += s
	}
	denom := n*k + p.Eta
	return State{
		Mean: (p.A*p.Eta*prev.Mean + k*sum) / denom, // Eq. (17)
		Var:  k * p.Eta / denom,                     // Eq. (18)
	}, nil
}

// Filter runs the forward recursion over a full history. history[r] is the
// score set of run r+1 (empty slices allowed). It returns the filtered
// posterior after each run. init is the platform's initial belief
// N(mu0, sigma0).
func Filter(p Params, init State, history [][]float64) ([]State, error) {
	return FilterInto(nil, p, init, history)
}

// FilterInto is the buffer-reusing form of Filter: the filtered posteriors
// are appended into dst[:0] (growing it as needed) so a caller looping over
// histories can amortize the output allocation away.
func FilterInto(dst []State, p Params, init State, history [][]float64) ([]State, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	out := growStates(dst, len(history))
	cur := init
	for r, scores := range history {
		next, err := Update(p, cur, scores)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", r+1, err)
		}
		out[r] = next
		cur = next
	}
	return out, nil
}

// LogLikelihood returns the log marginal likelihood log p(S_1..S_R) of the
// history under the model, computed from the one-step predictive densities.
// For a run with N scores, the predictive distribution of the scores given
// the past factorizes via the latent state; we compute it exactly using the
// joint Gaussian of (q_r, s_r1..s_rN | past).
func LogLikelihood(p Params, init State, history [][]float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := init.Validate(); err != nil {
		return 0, err
	}
	var ll float64
	cur := init
	for r, scores := range history {
		prior := Predict(p, cur)
		// Sequentially condition on each score within the run: each score
		// s ~ N(mean, var+eta) given the current within-run belief, then the
		// belief is updated conjugately. This yields the exact joint density.
		b := prior
		for _, s := range scores {
			predVar := b.Var + p.Eta
			diff := s - b.Mean
			ll += -0.5*math.Log(2*math.Pi*predVar) - diff*diff/(2*predVar)
			// Conjugate single-observation update.
			gain := b.Var / predVar
			b = State{Mean: b.Mean + gain*diff, Var: b.Var * p.Eta / predVar}
		}
		next, err := Update(p, cur, scores)
		if err != nil {
			return 0, fmt.Errorf("run %d: %w", r+1, err)
		}
		cur = next
	}
	return ll, nil
}
