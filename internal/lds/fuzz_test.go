package lds_test

import (
	"math"
	"testing"

	"melody/internal/lds"
	"melody/internal/stats"
	"melody/internal/verify"
)

// saneKalmanRegime bounds the fuzzed hyper-parameters to the numerically
// meaningful range. The validator accepts any positive finite variances,
// but e.g. eta = 1e300 overflows the filter's float64 arithmetic by design;
// the fuzzer's job here is logic bugs (negative variances, smoother/filter
// divergence, EM decreases), not float overflow, so wilder regimes are
// skipped rather than sanitized — the interesting boundary inputs stay
// under the fuzzer's direct control.
func saneKalmanRegime(p lds.Params, init lds.State) bool {
	return math.Abs(p.A) <= 1.5 &&
		p.Gamma >= 1e-6 && p.Gamma <= 1e3 &&
		p.Eta >= 1e-6 && p.Eta <= 1e3 &&
		math.Abs(init.Mean) <= 1e3 &&
		init.Var >= 1e-6 && init.Var <= 1e3
}

// FuzzKalmanFilter drives the filter, smoother and EM over fuzzer-chosen
// hyper-parameters and seed-derived score histories (with missing runs) and
// funnels the results through the verify LDS checkers: posterior variances
// stay positive (Theorem 3), the smoothed marginal matches the filtered
// posterior at t=T with no variance inflation, and the EM log-likelihood
// never decreases (Algorithm 2). Invalid parameters must be rejected by
// Filter, never half-processed.
//
// Explore with `go test ./internal/lds -run '^$' -fuzz FuzzKalmanFilter`.
func FuzzKalmanFilter(f *testing.F) {
	f.Add(1.0, 0.3, 9.0, 5.5, 2.25, int64(1), uint8(6), uint8(3), uint8(0))
	f.Add(0.9, 0.1, 1.0, 0.0, 1.0, int64(2), uint8(1), uint8(1), uint8(0))
	f.Add(-1.2, 1e-6, 1e3, -999.0, 1e-6, int64(3), uint8(11), uint8(3), uint8(255))
	f.Add(1.0, 0.3, 9.0, 5.5, 2.25, int64(4), uint8(8), uint8(0), uint8(255)) // all-missing
	f.Add(math.NaN(), -1.0, 0.0, math.Inf(1), -2.25, int64(5), uint8(3), uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, a, gamma, eta, m0, v0 float64, seed int64, runs, obs, missing uint8) {
		p := lds.Params{A: a, Gamma: gamma, Eta: eta}
		init := lds.State{Mean: m0, Var: v0}

		r := stats.NewRNG(seed)
		n := 1 + int(runs%12)
		history := make([][]float64, n)
		for t2 := 0; t2 < n; t2++ {
			if missing&(1<<(uint(t2)%8)) != 0 {
				continue // missing run: no observations
			}
			k := int(obs % 4)
			for o := 0; o < k; o++ {
				history[t2] = append(history[t2], r.Uniform(0, 10))
			}
		}

		if p.Validate() != nil || init.Validate() != nil {
			if _, err := lds.Filter(p, init, history); err == nil {
				t.Fatalf("Filter accepted invalid params %+v / init %+v", p, init)
			}
			if _, err := lds.Smooth(p, init, history); err == nil {
				t.Fatalf("Smooth accepted invalid params %+v / init %+v", p, init)
			}
			return
		}
		if !saneKalmanRegime(p, init) {
			t.Skip("outside the numerically sane regime")
		}

		filtered, err := lds.Filter(p, init, history)
		if err != nil {
			t.Fatalf("filter: %v", err)
		}
		if err := verify.CheckStates(filtered); err != nil {
			t.Fatal(err)
		}
		ll, err := lds.LogLikelihood(p, init, history)
		if err != nil {
			t.Fatalf("log-likelihood: %v", err)
		}
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			t.Fatalf("log-likelihood is not finite: %v", ll)
		}
		if err := verify.CheckFilterSmootherConsistency(p, init, history); err != nil {
			t.Fatal(err)
		}
		scores := 0
		for _, run := range history {
			scores += len(run)
		}
		if scores > 0 {
			// EM needs at least one observation to form an M-step; the
			// filter and smoother above already covered the all-missing case.
			if err := verify.CheckEMMonotone(p, init, history, 3); err != nil {
				t.Fatal(err)
			}
		} else if _, err := lds.EM(p, init, history, lds.EMConfig{MaxIter: 1}); err == nil {
			t.Fatal("EM learned from a history with no scores")
		}
	})
}
