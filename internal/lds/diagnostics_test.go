package lds

import (
	"math"
	"testing"

	"melody/internal/stats"
)

func TestInnovationsStandardNormalUnderTruth(t *testing.T) {
	r := stats.NewRNG(404)
	truth := Params{A: 0.98, Gamma: 0.3, Eta: 2.0}
	init := State{Mean: 5.5, Var: 2.25}
	history := synthHistory(r, truth, init, 2000, func(t int) int { return 1 + t%3 })

	innovations, err := Innovations(truth, init, history)
	if err != nil {
		t.Fatal(err)
	}
	if len(innovations) != 2000 {
		t.Fatalf("got %d innovations, want 2000", len(innovations))
	}
	var acc stats.Accumulator
	for _, in := range innovations {
		acc.Add(in.Standardized)
	}
	if !almostEqual(acc.Mean(), 0, 0.08) {
		t.Errorf("innovation mean = %v, want ~0", acc.Mean())
	}
	if !almostEqual(acc.Variance(), 1, 0.12) {
		t.Errorf("innovation variance = %v, want ~1", acc.Variance())
	}
	score, err := MisfitScore(innovations)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(score, 1, 0.12) {
		t.Errorf("misfit score = %v, want ~1 for a well-specified model", score)
	}
}

func TestInnovationsDetectLevelShift(t *testing.T) {
	// A worker whose quality jumps by +10 mid-history violates the smooth
	// transition model; the misfit score must blow up.
	r := stats.NewRNG(405)
	p := Params{A: 1, Gamma: 0.05, Eta: 1.0}
	init := State{Mean: 5, Var: 0.5}
	history := make([][]float64, 100)
	for t := range history {
		level := 5.0
		if t >= 50 {
			level = 15.0
		}
		history[t] = []float64{r.NormalVar(level, p.Eta)}
	}
	innovations, err := Innovations(p, init, history)
	if err != nil {
		t.Fatal(err)
	}
	score, err := MisfitScore(innovations)
	if err != nil {
		t.Fatal(err)
	}
	if score < 1.5 {
		t.Errorf("misfit score = %v; expected well above 1 for a level shift", score)
	}
	// The run right after the shift must carry an extreme innovation.
	var atShift float64
	for _, in := range innovations {
		if in.Run == 51 {
			atShift = in.Standardized
		}
	}
	if atShift < 4 {
		t.Errorf("innovation at the shift = %v, want > 4 sigma", atShift)
	}
}

func TestInnovationsSkipEmptyRuns(t *testing.T) {
	p := Params{A: 1, Gamma: 0.3, Eta: 1}
	init := State{Mean: 5, Var: 1}
	history := [][]float64{{5}, {}, {6}, {}}
	innovations, err := Innovations(p, init, history)
	if err != nil {
		t.Fatal(err)
	}
	if len(innovations) != 2 {
		t.Fatalf("got %d innovations, want 2", len(innovations))
	}
	if innovations[0].Run != 1 || innovations[1].Run != 3 {
		t.Errorf("runs = %d, %d; want 1, 3", innovations[0].Run, innovations[1].Run)
	}
}

func TestInnovationsValidation(t *testing.T) {
	if _, err := Innovations(Params{}, State{Mean: 0, Var: 1}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	good := Params{A: 1, Gamma: 1, Eta: 1}
	if _, err := Innovations(good, State{}, nil); err == nil {
		t.Error("invalid init accepted")
	}
	if _, err := Innovations(good, State{Mean: 0, Var: 1}, [][]float64{{1, math.Inf(1)}}); err == nil {
		t.Error("infinite score accepted")
	}
	if _, err := MisfitScore(nil); err == nil {
		t.Error("empty misfit accepted")
	}
}
