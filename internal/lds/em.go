package lds

import (
	"errors"
	"fmt"
	"math"
)

// EMConfig controls Algorithm 2 (EM parameter learning).
type EMConfig struct {
	// MaxIter bounds the number of EM iterations. Defaults to 50.
	MaxIter int
	// Tol stops iteration when the largest absolute parameter change falls
	// below it. Defaults to 1e-6.
	Tol float64
	// VarFloor is the smallest variance EM will assign to gamma or eta,
	// keeping the model proper on degenerate histories. Defaults to 1e-6.
	VarFloor float64
}

func (c EMConfig) withDefaults() EMConfig {
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.VarFloor <= 0 {
		c.VarFloor = 1e-6
	}
	return c
}

// EMResult reports the outcome of parameter learning.
type EMResult struct {
	Params     Params
	Iterations int
	// LogLikelihood is the final log marginal likelihood of the history.
	LogLikelihood float64
	// Converged indicates the tolerance was reached before MaxIter.
	Converged bool
}

// EM implements Algorithm 2: maximum-likelihood estimation of the worker's
// hyper-parameters theta = {a, gamma, eta} from the score history S_1..S_R
// via Expectation Maximization. init is the fixed platform prior over q_0
// (the paper presets N(mu0, sigma0) and does not re-estimate it). start is
// the initial guess theta^0.
//
// The E-step computes smoothed sufficient statistics E[q_t], E[q_t^2] and
// E[q_t q_{t-1}] with the RTS smoother. The M-step maximizes the expected
// complete-data log likelihood of Eq. (15) in closed form:
//
//	a     = sum_t E[q_t q_{t-1}] / sum_t E[q_{t-1}^2]
//	gamma = (1/R) sum_t ( E[q_t^2] - 2a E[q_t q_{t-1}] + a^2 E[q_{t-1}^2] )
//	eta   = sum_t sum_j ( (s_tj - E[q_t])^2 + Var[q_t] ) / sum_t N_t
//
// with sums over t = 1..R (transitions from the fixed q_0 included).
func EM(start Params, init State, history [][]float64, cfg EMConfig) (EMResult, error) {
	return new(Workspace).EM(start, init, history, cfg)
}

// EM is the buffer-reusing form of the package-level EM: every iteration's
// smoother pass runs in the workspace's buffers, so repeated re-estimation
// over the same worker allocates nothing once the buffers have grown to the
// window length.
func (ws *Workspace) EM(start Params, init State, history [][]float64, cfg EMConfig) (EMResult, error) {
	cfg = cfg.withDefaults()
	if err := start.Validate(); err != nil {
		return EMResult{}, err
	}
	if err := init.Validate(); err != nil {
		return EMResult{}, err
	}
	if len(history) == 0 {
		return EMResult{}, errors.New("lds: cannot learn from an empty history")
	}
	totalScores := 0
	for _, s := range history {
		totalScores += len(s)
	}
	if totalScores == 0 {
		return EMResult{}, errors.New("lds: cannot learn from a history with no scores")
	}

	cur := start
	res := EMResult{Params: cur}
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		sm, err := ws.Smooth(cur, init, history)
		if err != nil {
			return EMResult{}, fmt.Errorf("EM iteration %d: %w", iter, err)
		}
		next, err := mStep(sm, history, init, cfg.VarFloor)
		if err != nil {
			return EMResult{}, fmt.Errorf("EM iteration %d: %w", iter, err)
		}
		res.Iterations = iter
		delta := math.Max(math.Abs(next.A-cur.A),
			math.Max(math.Abs(next.Gamma-cur.Gamma), math.Abs(next.Eta-cur.Eta)))
		cur = next
		if delta < cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Params = cur
	ll, err := LogLikelihood(cur, init, history)
	if err != nil {
		return EMResult{}, err
	}
	res.LogLikelihood = ll
	return res, nil
}

// mStep computes the closed-form M-step from smoothed statistics.
func mStep(sm *Smoothed, history [][]float64, init State, varFloor float64) (Params, error) {
	n := sm.Runs()

	// Second moments: E[q_t^2] = Var + Mean^2, E[q_t q_{t-1}] = CrossCov +
	// Mean_t * Mean_{t-1}.
	var sumCross, sumPrevSq, sumCurSq float64
	for t := 1; t <= n; t++ {
		sumCross += sm.CrossCov[t] + sm.Mean[t]*sm.Mean[t-1]
		sumPrevSq += sm.Var[t-1] + sm.Mean[t-1]*sm.Mean[t-1]
		sumCurSq += sm.Var[t] + sm.Mean[t]*sm.Mean[t]
	}
	if sumPrevSq <= 0 {
		return Params{}, errors.New("lds: degenerate history (zero prior second moment)")
	}
	a := sumCross / sumPrevSq
	gamma := (sumCurSq - 2*a*sumCross + a*a*sumPrevSq) / float64(n)
	gamma = math.Max(gamma, varFloor)

	var sumSq float64
	var count float64
	for t := 1; t <= n; t++ {
		for _, s := range history[t-1] {
			d := s - sm.Mean[t]
			sumSq += d*d + sm.Var[t]
			count++
		}
	}
	eta := math.Max(sumSq/count, varFloor)

	p := Params{A: a, Gamma: gamma, Eta: eta}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	_ = init // initial state is fixed by the platform and not re-estimated
	return p, nil
}
