package lds

import (
	"fmt"
	"math"
)

// Forecast is a k-step-ahead predictive distribution over a worker's
// latent quality, with a Gaussian credible interval.
type Forecast struct {
	// Steps is the forecast horizon (1 = next run, matching Eq. 19).
	Steps int
	// Mean and Var define the predictive Gaussian N(Mean, Var).
	Mean float64
	Var  float64
}

// Interval returns the central credible interval that contains the stated
// probability mass (e.g. 0.95). Implemented with an inverse-erf free
// approximation: the quantile is computed by bisection on the Gaussian CDF,
// which is exact to the tolerance of math.Erf.
func (f Forecast) Interval(mass float64) (lo, hi float64, err error) {
	if !(mass > 0 && mass < 1) {
		return 0, 0, fmt.Errorf("lds: interval mass %v must be in (0,1)", mass)
	}
	z := gaussianQuantile((1 + mass) / 2)
	sd := math.Sqrt(f.Var)
	return f.Mean - z*sd, f.Mean + z*sd, nil
}

// gaussianQuantile returns the standard-normal quantile by bisection on the
// CDF Phi(x) = (1 + erf(x/sqrt2))/2. p must be in (0, 1).
func gaussianQuantile(p float64) float64 {
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*(1+math.Erf(mid/math.Sqrt2)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Predict.Forecast: ForecastAhead propagates a posterior belief k steps
// through the transition density with no intervening observations:
//
//	mean_k = a^k * mu
//	var_k  = a^{2k} * sigma + gamma * (a^{2(k-1)} + ... + a^2 + 1)
//
// For k = 1 this is exactly the prior alpha(q_{r+1}) of Eq. (3)/(19).
func ForecastAhead(p Params, posterior State, steps int) (Forecast, error) {
	if err := p.Validate(); err != nil {
		return Forecast{}, err
	}
	if err := posterior.Validate(); err != nil {
		return Forecast{}, err
	}
	if steps < 1 {
		return Forecast{}, fmt.Errorf("lds: forecast steps %d must be at least 1", steps)
	}
	cur := posterior
	for i := 0; i < steps; i++ {
		cur = Predict(p, cur)
	}
	return Forecast{Steps: steps, Mean: cur.Mean, Var: cur.Var}, nil
}
