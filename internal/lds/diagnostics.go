package lds

import (
	"fmt"
	"math"
)

// Innovation is a standardized one-step prediction residual: for a run
// with N observed scores, the predictive distribution of the score mean
// given all earlier runs is N(prior.Mean, prior.Var + eta/N), and the
// innovation is the observed mean's z-score under it. If the model fits,
// innovations are i.i.d. standard normal — persistent large values signal
// a mis-specified worker model (e.g. a level shift the transition cannot
// explain), which is how a platform can decide a worker's hyper-parameters
// need re-learning sooner than the fixed period T.
type Innovation struct {
	// Run is the 1-based run index within the history.
	Run int
	// Standardized is the z-scored prediction residual.
	Standardized float64
}

// Innovations computes the standardized residual of every non-empty run in
// the history. Runs without scores contribute no innovation (there is
// nothing to predict against).
func Innovations(p Params, init State, history [][]float64) ([]Innovation, error) {
	return InnovationsInto(nil, p, init, history)
}

// InnovationsInto is the buffer-reusing form of Innovations: residuals are
// appended into dst[:0] so per-run diagnostics (e.g. a misfit trigger
// evaluated after every observation) can run allocation-free.
func InnovationsInto(dst []Innovation, p Params, init State, history [][]float64) ([]Innovation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	out := dst[:0]
	cur := init
	for r, scores := range history {
		prior := Predict(p, cur)
		if len(scores) > 0 {
			var sum float64
			for _, s := range scores {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					return nil, fmt.Errorf("lds: run %d: score %v is not finite", r+1, s)
				}
				sum += s
			}
			n := float64(len(scores))
			mean := sum / n
			predVar := prior.Var + p.Eta/n
			out = append(out, Innovation{
				Run:          r + 1,
				Standardized: (mean - prior.Mean) / math.Sqrt(predVar),
			})
		}
		next, err := Update(p, cur, scores)
		if err != nil {
			return nil, fmt.Errorf("lds: run %d: %w", r+1, err)
		}
		cur = next
	}
	return out, nil
}

// MisfitScore summarizes innovations into a single scalar: the mean of
// squared standardized residuals. A well-specified model scores near 1;
// values far above 1 indicate the model underfits the worker's dynamics.
func MisfitScore(innovations []Innovation) (float64, error) {
	if len(innovations) == 0 {
		return 0, fmt.Errorf("lds: no innovations to score")
	}
	var sum float64
	for _, in := range innovations {
		sum += in.Standardized * in.Standardized
	}
	return sum / float64(len(innovations)), nil
}
