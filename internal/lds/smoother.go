package lds

import (
	"errors"
	"fmt"
)

// Smoothed holds the outputs of the RTS (Rauch-Tung-Striebel) backward pass
// over a score history of R runs. Index 0 corresponds to the initial state
// q_0 (the platform prior); indices 1..R correspond to runs 1..R.
type Smoothed struct {
	// Mean[t] and Var[t] are E[q_t | S_1..S_R] and Var[q_t | S_1..S_R].
	Mean []float64
	Var  []float64
	// CrossCov[t] is Cov(q_t, q_{t-1} | S_1..S_R) for t = 1..R; CrossCov[0]
	// is unused and zero.
	CrossCov []float64
}

// Smooth runs the forward filter followed by the RTS backward recursion,
// returning smoothed marginals for q_0..q_R and the lag-one cross
// covariances EM needs. history[r] is the score set of run r+1. The result
// is freshly allocated; use Workspace.Smooth on a hot path to reuse
// buffers across calls.
func Smooth(p Params, init State, history [][]float64) (*Smoothed, error) {
	return new(Workspace).Smooth(p, init, history)
}

// Smooth is the buffer-reusing form of the package-level Smooth: the
// returned Smoothed aliases the workspace and is valid until the next call
// on it.
func (ws *Workspace) Smooth(p Params, init State, history [][]float64) (*Smoothed, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	n := len(history)
	if n == 0 {
		return nil, errors.New("lds: cannot smooth an empty history")
	}

	// Forward pass. filtered[t], predicted[t] for t = 0..n, where
	// predicted[t] is the prior variance P_t = a^2*V_{t-1} + gamma used by
	// the backward gain (predicted[0] unused).
	ws.filtered = growStates(ws.filtered, n+1)
	ws.predicted = growFloats(ws.predicted, n+1)
	filtered := ws.filtered
	predicted := ws.predicted
	filtered[0] = init
	for t := 1; t <= n; t++ {
		predicted[t] = p.A*p.A*filtered[t-1].Var + p.Gamma
		next, err := Update(p, filtered[t-1], history[t-1])
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", t, err)
		}
		filtered[t] = next
	}

	// Backward pass.
	ws.sm.Mean = growFloats(ws.sm.Mean, n+1)
	ws.sm.Var = growFloats(ws.sm.Var, n+1)
	ws.sm.CrossCov = growFloats(ws.sm.CrossCov, n+1)
	sm := &ws.sm
	sm.Mean[n] = filtered[n].Mean
	sm.Var[n] = filtered[n].Var
	for t := n - 1; t >= 0; t-- {
		// Smoother gain J_t = V_t * a / P_{t+1}.
		j := filtered[t].Var * p.A / predicted[t+1]
		sm.Mean[t] = filtered[t].Mean + j*(sm.Mean[t+1]-p.A*filtered[t].Mean)
		sm.Var[t] = filtered[t].Var + j*j*(sm.Var[t+1]-predicted[t+1])
		// Lag-one covariance Cov(q_{t+1}, q_t | all) = J_t * V_{t+1|T}.
		sm.CrossCov[t+1] = j * sm.Var[t+1]
	}
	return sm, nil
}

// Runs returns the number of runs R covered by the smoothed history.
func (s *Smoothed) Runs() int { return len(s.Mean) - 1 }
