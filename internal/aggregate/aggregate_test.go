package aggregate

import (
	"math"
	"testing"
)

var unit = Scale{Lo: 0, Hi: 1}
var paper = Scale{Lo: 1, Hi: 10}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestScaleValidate(t *testing.T) {
	if err := (Scale{Lo: 1, Hi: 1}).Validate(); err == nil {
		t.Error("degenerate scale accepted")
	}
	if err := (Scale{Lo: 2, Hi: 1}).Validate(); err == nil {
		t.Error("inverted scale accepted")
	}
	if err := paper.Validate(); err != nil {
		t.Errorf("valid scale rejected: %v", err)
	}
}

func TestMajorityVote(t *testing.T) {
	answers := []LabelAnswer{
		{WorkerID: "a", Label: "cat"},
		{WorkerID: "b", Label: "cat"},
		{WorkerID: "c", Label: "cat"},
		{WorkerID: "d", Label: "dog"},
	}
	scores, err := MajorityVote(answers, paper)
	if err != nil {
		t.Fatal(err)
	}
	// cat voters: 3/4 support -> 1 + 9*0.75 = 7.75; dog voter: 1/4 -> 3.25.
	for _, id := range []string{"a", "b", "c"} {
		if !almostEqual(scores[id], 7.75, 1e-12) {
			t.Errorf("%s = %v, want 7.75", id, scores[id])
		}
	}
	if !almostEqual(scores["d"], 3.25, 1e-12) {
		t.Errorf("d = %v, want 3.25", scores["d"])
	}
}

func TestMajorityVoteUnanimous(t *testing.T) {
	answers := []LabelAnswer{
		{WorkerID: "a", Label: "x"},
		{WorkerID: "b", Label: "x"},
	}
	scores, err := MajorityVote(answers, paper)
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range scores {
		if s != 10 {
			t.Errorf("%s = %v, want 10 (unanimous)", id, s)
		}
	}
}

func TestMajorityVoteErrors(t *testing.T) {
	if _, err := MajorityVote(nil, paper); err == nil {
		t.Error("empty vote accepted")
	}
	if _, err := MajorityVote([]LabelAnswer{{WorkerID: "", Label: "x"}}, paper); err == nil {
		t.Error("empty worker ID accepted")
	}
	dup := []LabelAnswer{{WorkerID: "a", Label: "x"}, {WorkerID: "a", Label: "y"}}
	if _, err := MajorityVote(dup, paper); err == nil {
		t.Error("duplicate worker accepted")
	}
	if _, err := MajorityVote([]LabelAnswer{{WorkerID: "a", Label: "x"}}, Scale{}); err == nil {
		t.Error("invalid scale accepted")
	}
}

func TestPluralityLabel(t *testing.T) {
	tests := []struct {
		name    string
		answers []LabelAnswer
		want    string
	}{
		{
			name: "clear majority",
			answers: []LabelAnswer{
				{WorkerID: "a", Label: "dog"}, {WorkerID: "b", Label: "dog"},
				{WorkerID: "c", Label: "cat"},
			},
			want: "dog",
		},
		{
			name: "tie broken lexicographically",
			answers: []LabelAnswer{
				{WorkerID: "a", Label: "dog"}, {WorkerID: "b", Label: "cat"},
			},
			want: "cat",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := PluralityLabel(tt.answers)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("PluralityLabel = %q, want %q", got, tt.want)
			}
		})
	}
	if _, err := PluralityLabel(nil); err == nil {
		t.Error("empty vote accepted")
	}
}

func TestGoldQuestions(t *testing.T) {
	g := GoldQuestions{
		Truth: map[string]string{"t1": "cat"},
		Scale: paper,
	}
	score, ok, err := g.Score("t1", "cat")
	if err != nil || !ok || score != 10 {
		t.Errorf("correct answer = (%v, %v, %v), want (10, true, nil)", score, ok, err)
	}
	score, ok, err = g.Score("t1", "dog")
	if err != nil || !ok || score != 1 {
		t.Errorf("wrong answer = (%v, %v, %v), want (1, true, nil)", score, ok, err)
	}
	_, ok, err = g.Score("t2", "cat")
	if err != nil || ok {
		t.Errorf("non-gold task = (%v, %v), want (false, nil)", ok, err)
	}
	bad := GoldQuestions{Scale: Scale{}}
	if _, _, err := bad.Score("t", "x"); err == nil {
		t.Error("invalid scale accepted")
	}
}

func TestCentroidDeviation(t *testing.T) {
	answers := []NumericAnswer{
		{WorkerID: "a", Value: 10},
		{WorkerID: "b", Value: 10},
		{WorkerID: "c", Value: 16}, // centroid 12; deviations 2, 2, 4
	}
	scores, err := CentroidDeviation(answers, 0, unit)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(scores["a"], 0.5, 1e-12) || !almostEqual(scores["b"], 0.5, 1e-12) {
		t.Errorf("a,b = %v,%v, want 0.5", scores["a"], scores["b"])
	}
	if !almostEqual(scores["c"], 0, 1e-12) {
		t.Errorf("c = %v, want 0 (farthest)", scores["c"])
	}
}

func TestCentroidDeviationExplicitMax(t *testing.T) {
	answers := []NumericAnswer{
		{WorkerID: "a", Value: 5},
		{WorkerID: "b", Value: 7}, // centroid 6, deviations 1 each
	}
	scores, err := CentroidDeviation(answers, 4, unit)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(scores["a"], 0.75, 1e-12) || !almostEqual(scores["b"], 0.75, 1e-12) {
		t.Errorf("scores = %v, want 0.75 each", scores)
	}
	// Deviations beyond maxDev clamp to Lo.
	far := []NumericAnswer{
		{WorkerID: "a", Value: 0},
		{WorkerID: "b", Value: 100},
	}
	scores, err = CentroidDeviation(far, 10, unit)
	if err != nil {
		t.Fatal(err)
	}
	if scores["a"] != 0 || scores["b"] != 0 {
		t.Errorf("clamped scores = %v, want 0", scores)
	}
}

func TestCentroidDeviationIdenticalAnswers(t *testing.T) {
	answers := []NumericAnswer{
		{WorkerID: "a", Value: 3},
		{WorkerID: "b", Value: 3},
	}
	scores, err := CentroidDeviation(answers, 0, paper)
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range scores {
		if s != 10 {
			t.Errorf("%s = %v, want 10 (identical answers)", id, s)
		}
	}
}

func TestCentroidDeviationErrors(t *testing.T) {
	if _, err := CentroidDeviation(nil, 0, unit); err == nil {
		t.Error("empty answers accepted")
	}
	if _, err := CentroidDeviation([]NumericAnswer{{WorkerID: "", Value: 1}}, 0, unit); err == nil {
		t.Error("empty worker ID accepted")
	}
	dup := []NumericAnswer{{WorkerID: "a", Value: 1}, {WorkerID: "a", Value: 2}}
	if _, err := CentroidDeviation(dup, 0, unit); err == nil {
		t.Error("duplicate worker accepted")
	}
	if _, err := CentroidDeviation([]NumericAnswer{{WorkerID: "a", Value: math.NaN()}}, 0, unit); err == nil {
		t.Error("NaN answer accepted")
	}
}

func TestCentroid(t *testing.T) {
	c, err := Centroid([]NumericAnswer{{WorkerID: "a", Value: 2}, {WorkerID: "b", Value: 4}})
	if err != nil || c != 3 {
		t.Errorf("Centroid = (%v, %v), want (3, nil)", c, err)
	}
	if _, err := Centroid(nil); err == nil {
		t.Error("empty centroid accepted")
	}
}
