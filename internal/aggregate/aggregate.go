// Package aggregate implements the score-measurement methods the paper
// delegates to (footnote 5 and Section 2.3): turning raw worker answers
// into the per-answer scores s_ij that drive MELODY's quality inference.
//
// Three scorers are provided, covering the paper's citations:
//
//   - MajorityVote: for categorical answers (labels), score an answer by
//     agreement with the majority of redundant answers — the unsupervised
//     method footnote 5 names.
//   - GoldQuestions: score by agreement with known ground truth on planted
//     gold tasks ("scores given by the requester manually after answer
//     verification").
//   - CentroidDeviation: for numeric answers (sensor readings), score by
//     deviation from the cluster centroid, following Yang et al. [10].
//
// All scorers emit scores on a caller-chosen [Lo, Hi] scale so they plug
// directly into the platform's quality model.
package aggregate

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Scale is the score interval scores are emitted on (Table 4 uses [1, 10]).
type Scale struct {
	Lo, Hi float64
}

// Validate reports whether the scale is proper.
func (s Scale) Validate() error {
	if s.Hi <= s.Lo {
		return fmt.Errorf("aggregate: scale [%v, %v] inverted", s.Lo, s.Hi)
	}
	return nil
}

// at maps a fraction in [0,1] onto the scale.
func (s Scale) at(frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return s.Lo + (s.Hi-s.Lo)*frac
}

// LabelAnswer is one categorical answer to a task.
type LabelAnswer struct {
	WorkerID string
	Label    string
}

// MajorityVote scores categorical answers to one task by agreement with
// the plurality label. Workers agreeing with the plurality receive the
// plurality's support fraction mapped onto the scale; disagreeing workers
// receive their own label's support fraction. With a unanimous crowd every
// worker scores Hi.
//
// Ties are broken toward the lexicographically smallest label so scoring
// is deterministic.
func MajorityVote(answers []LabelAnswer, scale Scale) (map[string]float64, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return nil, errors.New("aggregate: no answers to vote on")
	}
	support := make(map[string]int)
	seen := make(map[string]bool, len(answers))
	for _, a := range answers {
		if a.WorkerID == "" {
			return nil, errors.New("aggregate: answer with empty worker ID")
		}
		if seen[a.WorkerID] {
			return nil, fmt.Errorf("aggregate: duplicate answer from %s", a.WorkerID)
		}
		seen[a.WorkerID] = true
		support[a.Label]++
	}
	total := float64(len(answers))
	scores := make(map[string]float64, len(answers))
	for _, a := range answers {
		scores[a.WorkerID] = scale.at(float64(support[a.Label]) / total)
	}
	return scores, nil
}

// PluralityLabel returns the winning label of a vote (ties broken toward
// the lexicographically smallest label).
func PluralityLabel(answers []LabelAnswer) (string, error) {
	if len(answers) == 0 {
		return "", errors.New("aggregate: no answers to vote on")
	}
	support := make(map[string]int)
	for _, a := range answers {
		support[a.Label]++
	}
	labels := make([]string, 0, len(support))
	for l := range support {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	best := labels[0]
	for _, l := range labels[1:] {
		if support[l] > support[best] {
			best = l
		}
	}
	return best, nil
}

// GoldQuestions scores answers against known ground truth: a correct
// answer scores Hi, an incorrect one Lo. Tasks without gold truth are
// skipped (absent from the result).
type GoldQuestions struct {
	// Truth maps task ID to the correct label.
	Truth map[string]string
	Scale Scale
}

// Score evaluates one (task, answer) pair. ok is false when the task has
// no gold truth.
func (g GoldQuestions) Score(taskID, label string) (float64, bool, error) {
	if err := g.Scale.Validate(); err != nil {
		return 0, false, err
	}
	truth, has := g.Truth[taskID]
	if !has {
		return 0, false, nil
	}
	if label == truth {
		return g.Scale.Hi, true, nil
	}
	return g.Scale.Lo, true, nil
}

// NumericAnswer is one numeric answer (e.g. a sensor reading) to a task.
type NumericAnswer struct {
	WorkerID string
	Value    float64
}

// CentroidDeviation scores numeric answers to one task by their deviation
// from the answers' centroid, after Yang et al. [10]: the closest answer
// scores Hi and scores fall linearly to Lo at (or beyond) maxDev absolute
// deviation. A non-positive maxDev uses the largest observed deviation
// (so the farthest answer scores exactly Lo; with a single answer or all
// answers identical, everyone scores Hi).
func CentroidDeviation(answers []NumericAnswer, maxDev float64, scale Scale) (map[string]float64, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		return nil, errors.New("aggregate: no answers to score")
	}
	seen := make(map[string]bool, len(answers))
	var sum float64
	for _, a := range answers {
		if a.WorkerID == "" {
			return nil, errors.New("aggregate: answer with empty worker ID")
		}
		if seen[a.WorkerID] {
			return nil, fmt.Errorf("aggregate: duplicate answer from %s", a.WorkerID)
		}
		if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
			return nil, fmt.Errorf("aggregate: non-finite answer from %s", a.WorkerID)
		}
		seen[a.WorkerID] = true
		sum += a.Value
	}
	centroid := sum / float64(len(answers))
	if maxDev <= 0 {
		for _, a := range answers {
			if d := math.Abs(a.Value - centroid); d > maxDev {
				maxDev = d
			}
		}
	}
	scores := make(map[string]float64, len(answers))
	for _, a := range answers {
		d := math.Abs(a.Value - centroid)
		if maxDev == 0 {
			scores[a.WorkerID] = scale.Hi
			continue
		}
		scores[a.WorkerID] = scale.at(1 - d/maxDev)
	}
	return scores, nil
}

// Centroid returns the mean of the numeric answers.
func Centroid(answers []NumericAnswer) (float64, error) {
	if len(answers) == 0 {
		return 0, errors.New("aggregate: no answers")
	}
	var sum float64
	for _, a := range answers {
		sum += a.Value
	}
	return sum / float64(len(answers)), nil
}
