package chaos

import (
	"fmt"
	"sync"
)

// Failpoints is a deterministic kill-point registry for crash testing the
// storage engine. A subsystem under test threads a hook (Hook) into its
// write paths and consults it at named points — "just before the rotation
// rename", "halfway through a segment append" — and a test arms the precise
// hit it wants to die at. Unlike the probabilistic Scenario faults, an
// armed failpoint fires exactly once at exactly the chosen hit, so a soak
// can kill a process mid-rotation on demand and then assert recovery.
//
// Failpoints is safe for concurrent use; the zero value of the hook (nil)
// injects nothing, matching the nil-disabled convention of the obs layer.
type Failpoints struct {
	mu    sync.Mutex
	armed map[string]int // name -> remaining hits before firing (1 = next)
	hits  map[string]int // name -> total times the point was reached
	fired map[string]int // name -> times the point actually failed
}

// NewFailpoints returns an empty registry.
func NewFailpoints() *Failpoints {
	return &Failpoints{
		armed: make(map[string]int),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
}

// Arm schedules the failpoint to fire on its nth future hit (n = 1 means
// the very next one). Re-arming replaces the previous schedule.
func (f *Failpoints) Arm(name string, n int) {
	if f == nil || n < 1 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed[name] = n
}

// Disarm cancels a pending schedule.
func (f *Failpoints) Disarm(name string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.armed, name)
}

// Check records a hit at the named point and reports whether the armed
// schedule says to fail here: a non-nil error wrapping ErrInjected. The
// instrumented subsystem returns that error up its failure path, simulating
// a crash at the point.
func (f *Failpoints) Check(name string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits[name]++
	n, ok := f.armed[name]
	if !ok {
		return nil
	}
	if n > 1 {
		f.armed[name] = n - 1
		return nil
	}
	delete(f.armed, name)
	f.fired[name]++
	return fmt.Errorf("%w: failpoint %s", ErrInjected, name)
}

// Hits returns how many times the named point has been reached.
func (f *Failpoints) Hits(name string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[name]
}

// Fired returns how many times the named point has injected a failure.
func (f *Failpoints) Fired(name string) int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[name]
}

// Hook adapts the registry to the plain func(name) error hook shape storage
// code accepts, keeping that code free of a chaos dependency. A nil
// registry yields a nil hook (no instrumentation at all).
func (f *Failpoints) Hook() func(string) error {
	if f == nil {
		return nil
	}
	return f.Check
}
