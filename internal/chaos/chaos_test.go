package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	s, err := Parse("seed=42,drop=0.05,dup=0.1,err=0.02,lose=0.03,delay=1ms-20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Scenario{Seed: 42, Drop: 0.05, Dup: 0.1, Err: 0.02, Lose: 0.03,
		DelayMin: time.Millisecond, DelayMax: 20 * time.Millisecond}
	if s != want {
		t.Errorf("Parse = %+v, want %+v", s, want)
	}
	if s2, err := Parse(s.String()); err != nil || s2 != s {
		t.Errorf("String round trip = %+v, %v", s2, err)
	}
	if s, err := Parse("delay=5ms"); err != nil || s.DelayMax != 5*time.Millisecond || s.DelayMin != 0 {
		t.Errorf("single delay = %+v, %v", s, err)
	}
	if s, err := Parse(""); err != nil || s.Active() {
		t.Errorf("empty spec = %+v, %v", s, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "drop", "delay=xyz", "drop=-0.1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// countingTransport records deliveries and returns 200s.
type countingTransport struct{ delivered atomic.Int64 }

func (c *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	c.delivered.Add(1)
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("{}")),
		Header:     make(http.Header),
		Request:    req,
	}, nil
}

func TestTransportFaultMix(t *testing.T) {
	inner := &countingTransport{}
	tr, err := NewTransport(inner, Scenario{Seed: 7, Drop: 0.2, Dup: 0.2, Lose: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	const calls = 2000
	var ok, failed, injected int
	for i := 0; i < calls; i++ {
		req, err := http.NewRequest(http.MethodGet, "http://example.test/", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			failed++
			if errors.Is(err, ErrInjected) {
				injected++
			}
			continue
		}
		discard(resp)
		ok++
	}
	if injected != failed {
		t.Errorf("%d failures but %d injected", failed, injected)
	}
	// P(visible failure) = drop + (1-drop)*lose = 0.2 + 0.8*0.2 = 0.36.
	if failed < calls*30/100 || failed > calls*42/100 {
		t.Errorf("failed = %d/%d, want ~36%%", failed, calls)
	}
	// Deliveries: (1-drop)*(1+dup) in expectation = 0.8*1.2 = 0.96 per call.
	delivered := inner.delivered.Load()
	if delivered < calls*90/100 || delivered > calls*102/100 {
		t.Errorf("delivered = %d for %d calls, want ~96%%", delivered, calls)
	}
	if delivered <= int64(calls-failed) {
		t.Errorf("no duplicate deliveries observed: %d delivered, %d succeeded", delivered, ok)
	}
}

func TestTransportDeterminism(t *testing.T) {
	run := func() []bool {
		inner := &countingTransport{}
		tr, err := NewTransport(inner, Scenario{Seed: 11, Drop: 0.3, Lose: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []bool
		for i := 0; i < 200; i++ {
			req, _ := http.NewRequest(http.MethodGet, "http://example.test/", nil)
			resp, err := tr.RoundTrip(req)
			if err == nil {
				discard(resp)
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at request %d", i)
		}
	}
}

func TestMiddlewareDupAndErr(t *testing.T) {
	var handled atomic.Int64
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		handled.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	h, err := Middleware(Scenario{Seed: 3, Dup: 0.3, Err: 0.2}, next)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	const calls = 1000
	var ok, unavailable int
	for i := 0; i < calls; i++ {
		resp, err := ts.Client().Post(ts.URL, "application/json", strings.NewReader(`{"x":1}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			unavailable++
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if unavailable < calls*14/100 || unavailable > calls*26/100 {
		t.Errorf("503s = %d/%d, want ~20%%", unavailable, calls)
	}
	// Handled ≈ ok * (1 + dup): duplicates run the handler twice.
	if h := handled.Load(); h <= int64(ok) {
		t.Errorf("no duplicate handling observed: handled %d, ok %d", h, ok)
	}
}

func TestMiddlewareDropAbortsConnection(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	h, err := Middleware(Scenario{Seed: 1, Drop: 0.999}, next)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	failures := 0
	for i := 0; i < 20; i++ {
		resp, err := ts.Client().Get(ts.URL)
		if err != nil {
			failures++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if failures == 0 {
		t.Error("drop=0.999 produced no transport errors")
	}
}

func TestValidate(t *testing.T) {
	if err := (Scenario{Drop: 1.0}).Validate(); err == nil {
		t.Error("drop=1 accepted")
	}
	if err := (Scenario{DelayMin: 2, DelayMax: 1}).Validate(); err == nil {
		t.Error("inverted delay range accepted")
	}
	if err := (Scenario{}).Validate(); err != nil {
		t.Errorf("zero scenario rejected: %v", err)
	}
	if _, err := NewTransport(nil, Scenario{Drop: 2}); err == nil {
		t.Error("NewTransport accepted invalid scenario")
	}
	if _, err := Middleware(Scenario{Err: -1}, http.NotFoundHandler()); err == nil {
		t.Error("Middleware accepted invalid scenario")
	}
}
