package chaos

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with client-observable faults:
// added latency, connection drops before delivery, duplicated deliveries,
// and lost replies after delivery. Inject it into an http.Client to make
// every caller of that client live through the scenario.
type Transport struct {
	inner    http.RoundTripper
	scenario Scenario
	dice     *dice
}

// NewTransport validates the scenario and wraps inner (nil means
// http.DefaultTransport).
func NewTransport(inner http.RoundTripper, s Scenario) (*Transport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, scenario: s, dice: newDice(s.Seed)}, nil
}

var _ http.RoundTripper = (*Transport)(nil)

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// Draw every fault decision up front so the fault stream depends only
	// on the request sequence, not on which faults fired.
	s := t.scenario
	var (
		delay = t.dice.delay(s.DelayMin, s.DelayMax)
		drop  = t.dice.roll(s.Drop)
		dup   = t.dice.roll(s.Dup)
		lose  = t.dice.roll(s.Lose)
	)
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if drop {
		return nil, fmt.Errorf("connection dropped before delivery: %w", ErrInjected)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if dup {
		// Deliver the same request a second time; the first delivery's
		// response is discarded, as if a network layer retransmitted.
		if clone, ok := cloneRequest(req); ok {
			discard(resp)
			resp, err = t.inner.RoundTrip(clone)
			if err != nil {
				return nil, err
			}
		}
	}
	if lose {
		discard(resp)
		return nil, fmt.Errorf("response lost after delivery: %w", ErrInjected)
	}
	return resp, nil
}

// cloneRequest builds a replayable copy of req for a duplicate delivery.
// Requests whose body cannot be replayed (no GetBody) are not duplicated.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone, true
	}
	if req.GetBody == nil {
		return nil, false
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	clone.Body = body
	return clone, true
}

// discard drains and closes a response body so the underlying connection
// can be reused.
func discard(resp *http.Response) {
	if resp != nil && resp.Body != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
