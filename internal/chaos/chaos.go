// Package chaos injects deterministic, seeded faults into the MELODY
// networked platform: request drops, duplicated deliveries, lost replies,
// injected server errors and latency. The same Scenario drives a
// client-side http.RoundTripper wrapper (Transport) and a server-side
// middleware (Middleware), so tests and the cmd/melody-platform -chaos
// flag exercise the identical failure model the retry/idempotency layer is
// designed to survive.
//
// Faults are drawn from a single seeded stream, so a scenario replays the
// same fault sequence for the same sequence of requests. Under concurrent
// traffic the assignment of faults to requests depends on scheduling, but
// the aggregate fault mix stays fixed — which is what soak tests assert
// over.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"melody/internal/stats"
)

// ErrInjected is the sentinel wrapped by every fault the harness injects,
// so tests can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Scenario configures the fault mix. The zero value injects nothing.
type Scenario struct {
	// Seed seeds the fault stream; scenarios with equal seeds and equal
	// request sequences inject identical fault sequences.
	Seed int64
	// Drop is the probability a request is lost before reaching the
	// server (a connection drop; the operation never happens).
	Drop float64
	// Dup is the probability a request is delivered twice (the duplicate
	// delivery a retrying network layer can produce).
	Dup float64
	// Err is the probability the server answers 503 without handling the
	// request (middleware only).
	Err float64
	// Lose is the probability the request is handled but the response is
	// lost (the client sees a transport error even though the operation
	// happened — the case idempotency exists for).
	Lose float64
	// DelayMin and DelayMax bound the uniform extra latency added to each
	// request. Zero adds none.
	DelayMin, DelayMax time.Duration
}

// Validate reports whether the scenario is usable.
func (s Scenario) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"dup", s.Dup}, {"err", s.Err}, {"lose", s.Lose}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("chaos: %s probability %v outside [0, 1)", p.name, p.v)
		}
	}
	if s.DelayMin < 0 || s.DelayMax < s.DelayMin {
		return fmt.Errorf("chaos: delay range [%v, %v] invalid", s.DelayMin, s.DelayMax)
	}
	return nil
}

// Active reports whether the scenario injects any fault at all.
func (s Scenario) Active() bool {
	return s.Drop > 0 || s.Dup > 0 || s.Err > 0 || s.Lose > 0 || s.DelayMax > 0
}

// String renders the scenario in the Parse format.
func (s Scenario) String() string {
	return fmt.Sprintf("seed=%d,drop=%g,dup=%g,err=%g,lose=%g,delay=%s-%s",
		s.Seed, s.Drop, s.Dup, s.Err, s.Lose, s.DelayMin, s.DelayMax)
}

// Parse builds a Scenario from a compact spec like
// "seed=42,drop=0.05,dup=0.05,err=0.02,lose=0.05,delay=1ms-20ms".
// Unknown keys are errors; omitted keys keep their zero value. A delay
// without a dash ("delay=20ms") means a fixed range [0, 20ms].
func Parse(spec string) (Scenario, error) {
	var s Scenario
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, value, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("chaos: malformed field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			s.Seed, err = strconv.ParseInt(value, 10, 64)
		case "drop":
			s.Drop, err = strconv.ParseFloat(value, 64)
		case "dup":
			s.Dup, err = strconv.ParseFloat(value, 64)
		case "err":
			s.Err, err = strconv.ParseFloat(value, 64)
		case "lose":
			s.Lose, err = strconv.ParseFloat(value, 64)
		case "delay":
			lo, hi, dashed := strings.Cut(value, "-")
			if dashed {
				if s.DelayMin, err = time.ParseDuration(lo); err == nil {
					s.DelayMax, err = time.ParseDuration(hi)
				}
			} else {
				s.DelayMax, err = time.ParseDuration(value)
			}
		default:
			return s, fmt.Errorf("chaos: unknown field %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("chaos: field %q: %w", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// dice is the shared, mutex-guarded seeded fault stream.
type dice struct {
	mu  sync.Mutex
	rng *stats.RNG
}

func newDice(seed int64) *dice { return &dice{rng: stats.NewRNG(seed)} }

// roll draws one Bernoulli fault decision.
func (d *dice) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rng.Bernoulli(p)
}

// delay draws one latency sample from [min, max].
func (d *dice) delay(min, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.rng.Uniform(float64(min), float64(max)))
}
