package chaos

import (
	"bytes"
	"io"
	"net/http"
	"time"

	"melody/internal/obs"
)

// Option configures Middleware.
type Option func(*middlewareConfig)

type middlewareConfig struct {
	metrics *obs.Registry
}

// WithMetrics counts injected faults into the
// melody_chaos_injected_total{fault=...} counter, one label per fault kind
// (delay, err, drop, dup, lose).
func WithMetrics(reg *obs.Registry) Option {
	return func(c *middlewareConfig) { c.metrics = reg }
}

// Middleware wraps an http.Handler with server-observable faults: added
// latency, 503 responses sent without handling, duplicated deliveries (the
// handler runs twice for one request), dropped connections before
// handling, and lost replies (the handler runs, the connection dies before
// the response leaves). cmd/melody-platform mounts it under -chaos.
func Middleware(s Scenario, next http.Handler, opts ...Option) (http.Handler, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var cfg middlewareConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var injected *obs.CounterVec
	if cfg.metrics != nil {
		injected = cfg.metrics.CounterVec(obs.MetricChaosInjectedTotal,
			"Faults injected by the chaos layer, by fault kind.", "fault")
	}
	count := func(fault string) {
		if injected != nil {
			injected.With(fault).Inc()
		}
	}
	d := newDice(s.Seed)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var (
			delay = d.delay(s.DelayMin, s.DelayMax)
			fail  = d.roll(s.Err)
			drop  = d.roll(s.Drop)
			dup   = d.roll(s.Dup)
			lose  = d.roll(s.Lose)
		)
		if delay > 0 {
			count("delay")
			select {
			case <-r.Context().Done():
				return
			case <-time.After(delay):
			}
		}
		if fail {
			count("err")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"chaos: injected server error","code":"unavailable"}` + "\n"))
			return
		}
		if drop {
			// Abort the connection without a response: the client sees a
			// transport error and the operation never happened.
			count("drop")
			panic(http.ErrAbortHandler)
		}
		if !dup && !lose {
			next.ServeHTTP(w, r)
			return
		}
		// dup and lose both need replayable deliveries: buffer the body
		// once and hand each delivery its own reader.
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		deliver := func(w http.ResponseWriter) {
			req := r.Clone(r.Context())
			req.Body = io.NopCloser(bytes.NewReader(body))
			next.ServeHTTP(w, req)
		}
		if dup {
			// First delivery's response is discarded, as if a network
			// layer retransmitted the request.
			count("dup")
			deliver(discardWriter{})
		}
		if lose {
			// Handle the request, then kill the connection before the
			// response escapes: the operation happened, the client must
			// retry into the idempotency layer.
			count("lose")
			deliver(discardWriter{})
			panic(http.ErrAbortHandler)
		}
		deliver(w)
	}), nil
}

// discardWriter swallows a handler's response.
type discardWriter struct{}

func (discardWriter) Header() http.Header         { return make(http.Header) }
func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardWriter) WriteHeader(int)             {}
