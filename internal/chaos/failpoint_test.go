package chaos

import (
	"errors"
	"testing"
)

func TestFailpointsFireOnNthHit(t *testing.T) {
	fp := NewFailpoints()
	fp.Arm("x", 3)
	for i := 1; i <= 2; i++ {
		if err := fp.Check("x"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := fp.Check("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 err = %v, want ErrInjected", err)
	}
	// One-shot: the schedule is consumed.
	if err := fp.Check("x"); err != nil {
		t.Fatalf("hit 4 fired again: %v", err)
	}
	if fp.Hits("x") != 4 || fp.Fired("x") != 1 {
		t.Errorf("hits = %d fired = %d, want 4 and 1", fp.Hits("x"), fp.Fired("x"))
	}
}

func TestFailpointsDisarmAndNil(t *testing.T) {
	fp := NewFailpoints()
	fp.Arm("y", 1)
	fp.Disarm("y")
	if err := fp.Check("y"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	var nilFP *Failpoints
	if nilFP.Hook() != nil {
		t.Error("nil registry returned a non-nil hook")
	}
	if err := nilFP.Check("z"); err != nil {
		t.Error("nil registry injected a fault")
	}
	fp.Arm("neg", 0) // n < 1 is ignored
	if err := fp.Check("neg"); err != nil {
		t.Errorf("n=0 arm fired: %v", err)
	}
}
