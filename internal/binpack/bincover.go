// Package binpack implements the dual bin packing (bin covering) problem
// that Theorem 1 reduces the SRA problem to, together with the classical
// approximation algorithms of Csirik, Frenk, Zhang and Labbé [46] whose
// guarantee supplies the beta constant of Lemma 4.
//
// An instance is a set of item sizes and a bin capacity C; the goal is to
// partition items into a maximum number of bins each of total size >= C.
// The package provides:
//
//   - Next-Fit covering (the "simple" algorithm, guarantee OPT/2 - ...),
//   - the improved two-phase algorithm filling bins with one large item
//     plus small items (guarantee 2/3 asymptotically),
//   - an exhaustive exact solver for tiny instances (test oracle),
//   - the UpperBound sum(s)/C used to certify solutions,
//   - ReduceSRA, the executable Theorem 1 reduction from an SRA instance.
package binpack

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"melody/internal/core"
)

// Instance is one bin covering problem.
type Instance struct {
	// Sizes are the item sizes, all positive.
	Sizes []float64
	// Capacity is the bin capacity C > 0.
	Capacity float64
}

// Validate reports whether the instance is well formed.
func (in Instance) Validate() error {
	if !(in.Capacity > 0) || math.IsInf(in.Capacity, 0) {
		return fmt.Errorf("binpack: capacity %v must be positive and finite", in.Capacity)
	}
	for i, s := range in.Sizes {
		if !(s > 0) || math.IsInf(s, 0) {
			return fmt.Errorf("binpack: item %d size %v must be positive and finite", i, s)
		}
	}
	return nil
}

// Cover is a solution: Bins[k] lists the indices of the items in covered
// bin k. Leftover items are not reported.
type Cover struct {
	Bins [][]int
}

// Count returns the number of covered bins.
func (c Cover) Count() int { return len(c.Bins) }

// Verify checks that every bin in the cover reaches the capacity and no
// item is used twice.
func (c Cover) Verify(in Instance) error {
	used := make(map[int]bool)
	for k, bin := range c.Bins {
		var sum float64
		for _, idx := range bin {
			if idx < 0 || idx >= len(in.Sizes) {
				return fmt.Errorf("binpack: bin %d references item %d out of range", k, idx)
			}
			if used[idx] {
				return fmt.Errorf("binpack: item %d used twice", idx)
			}
			used[idx] = true
			sum += in.Sizes[idx]
		}
		if sum < in.Capacity-1e-9 {
			return fmt.Errorf("binpack: bin %d total %v below capacity %v", k, sum, in.Capacity)
		}
	}
	return nil
}

// UpperBound returns floor(sum(sizes)/C), an upper bound on the number of
// coverable bins.
func UpperBound(in Instance) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, s := range in.Sizes {
		sum += s
	}
	return int(sum / in.Capacity), nil
}

// NextFit is the simple online covering algorithm: items are thrown into
// the current bin until it reaches the capacity, then the bin is closed.
// Its worst-case guarantee is NF >= (OPT-1)/2 for any item order; on items
// sorted in decreasing order it performs considerably better.
func NextFit(in Instance) (Cover, error) {
	if err := in.Validate(); err != nil {
		return Cover{}, err
	}
	var cover Cover
	var current []int
	var sum float64
	for idx, s := range in.Sizes {
		current = append(current, idx)
		sum += s
		if sum >= in.Capacity {
			cover.Bins = append(cover.Bins, current)
			current = nil
			sum = 0
		}
	}
	return cover, nil
}

// NextFitDecreasing sorts items in decreasing size before running NextFit,
// which removes the pathological orderings.
func NextFitDecreasing(in Instance) (Cover, error) {
	if err := in.Validate(); err != nil {
		return Cover{}, err
	}
	order := make([]int, len(in.Sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.Sizes[order[a]] > in.Sizes[order[b]] })

	var cover Cover
	var current []int
	var sum float64
	for _, idx := range order {
		current = append(current, idx)
		sum += in.Sizes[idx]
		if sum >= in.Capacity {
			cover.Bins = append(cover.Bins, current)
			current = nil
			sum = 0
		}
	}
	return cover, nil
}

// Improved is the two-phase algorithm of [46]: phase one covers bins with
// single large items (size >= C); phase two pairs the largest remaining
// item with the smallest items needed to finish the bin. Asymptotic
// guarantee 2/3 * OPT.
func Improved(in Instance) (Cover, error) {
	if err := in.Validate(); err != nil {
		return Cover{}, err
	}
	order := make([]int, len(in.Sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.Sizes[order[a]] > in.Sizes[order[b]] })

	var cover Cover
	lo, hi := 0, len(order)-1
	// Phase one: single-item bins.
	for lo < len(order) && in.Sizes[order[lo]] >= in.Capacity {
		cover.Bins = append(cover.Bins, []int{order[lo]})
		lo++
	}
	// Phase two: one big item plus the smallest items that finish the bin.
	for lo <= hi {
		bin := []int{order[lo]}
		sum := in.Sizes[order[lo]]
		lo++
		for sum < in.Capacity && lo <= hi {
			bin = append(bin, order[hi])
			sum += in.Sizes[order[hi]]
			hi--
		}
		if sum >= in.Capacity {
			cover.Bins = append(cover.Bins, bin)
		}
	}
	return cover, nil
}

// Exact solves tiny instances by exhaustive search (test oracle). It
// returns only the optimal count; reconstructing an optimal cover is not
// needed by the tests.
func Exact(in Instance) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	n := len(in.Sizes)
	if n > 12 {
		return 0, errors.New("binpack: instance too large for exact search")
	}
	ub, err := UpperBound(in)
	if err != nil {
		return 0, err
	}
	if ub == 0 || n == 0 {
		return 0, nil
	}
	// DFS: assign each item to one of the open bins or leave it unused.
	best := 0
	bins := make([]float64, 0, ub)
	var dfs func(item int)
	dfs = func(item int) {
		if item == n {
			covered := 0
			for _, b := range bins {
				if b >= in.Capacity-1e-9 {
					covered++
				}
			}
			if covered > best {
				best = covered
			}
			return
		}
		// Prune: even covering every remaining bin cannot beat best.
		if len(bins) <= best && len(bins) == ub {
			covered := 0
			for _, b := range bins {
				if b >= in.Capacity-1e-9 {
					covered++
				}
			}
			if covered+int(remainingSum(in, item)/in.Capacity) <= best {
				return
			}
		}
		// Leave the item unused.
		dfs(item + 1)
		// Put it in each existing bin.
		for i := range bins {
			bins[i] += in.Sizes[item]
			dfs(item + 1)
			bins[i] -= in.Sizes[item]
		}
		// Open a new bin (bounded by the upper bound).
		if len(bins) < ub {
			bins = append(bins, in.Sizes[item])
			dfs(item + 1)
			bins = bins[:len(bins)-1]
		}
	}
	dfs(0)
	return best, nil
}

func remainingSum(in Instance, from int) float64 {
	var sum float64
	for _, s := range in.Sizes[from:] {
		sum += s
	}
	return sum
}

// ReduceSRA is the executable Theorem 1 reduction: an SRA instance with
// zero payments, unit frequencies and a common threshold C maps to bin
// covering with item sizes mu_i and capacity C. Solving the SRA instance
// solves the covering instance, establishing NP-hardness of SRA.
func ReduceSRA(workers []core.Worker, capacity float64) (Instance, error) {
	in := Instance{Capacity: capacity, Sizes: make([]float64, len(workers))}
	for i, w := range workers {
		in.Sizes[i] = w.Quality
	}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}
