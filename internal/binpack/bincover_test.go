package binpack

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"melody/internal/core"
	"melody/internal/stats"
)

func TestInstanceValidate(t *testing.T) {
	if err := (Instance{Capacity: 0}).Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := (Instance{Capacity: 1, Sizes: []float64{0}}).Validate(); err == nil {
		t.Error("zero item accepted")
	}
	if err := (Instance{Capacity: 1, Sizes: []float64{0.5}}).Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestUpperBound(t *testing.T) {
	in := Instance{Capacity: 10, Sizes: []float64{5, 5, 5, 5, 5}}
	ub, err := UpperBound(in)
	if err != nil {
		t.Fatal(err)
	}
	if ub != 2 {
		t.Errorf("UpperBound = %d, want 2", ub)
	}
}

func TestNextFitHandExample(t *testing.T) {
	in := Instance{Capacity: 10, Sizes: []float64{6, 5, 4, 7, 3, 8}}
	cover, err := NextFit(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Verify(in); err != nil {
		t.Fatal(err)
	}
	// 6+5 covers, 4+7 covers, 3+8 covers.
	if cover.Count() != 3 {
		t.Errorf("NextFit = %d bins, want 3", cover.Count())
	}
}

func TestExactHandExamples(t *testing.T) {
	tests := []struct {
		name string
		in   Instance
		want int
	}{
		{"empty", Instance{Capacity: 5}, 0},
		{"single large item", Instance{Capacity: 5, Sizes: []float64{6}}, 1},
		{"pairs", Instance{Capacity: 10, Sizes: []float64{5, 5, 5, 5}}, 2},
		{"one short", Instance{Capacity: 10, Sizes: []float64{5, 4}}, 0},
		{"mixed", Instance{Capacity: 10, Sizes: []float64{9, 2, 8, 3, 1, 1}}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Exact(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Exact = %d, want %d", got, tt.want)
			}
		})
	}
	if _, err := Exact(Instance{Capacity: 1, Sizes: make([]float64, 13)}); err == nil {
		t.Error("oversized exact accepted (and sizes invalid)")
	}
}

// coverSpec generates random small covering instances.
type coverSpec struct {
	Seed int64
	N    int
}

// Generate implements quick.Generator.
func (coverSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(coverSpec{Seed: r.Int63(), N: 1 + r.Intn(9)})
}

func (s coverSpec) instance() Instance {
	r := stats.NewRNG(s.Seed)
	in := Instance{Capacity: 10, Sizes: make([]float64, s.N)}
	for i := range in.Sizes {
		in.Sizes[i] = r.Uniform(1, 12)
	}
	return in
}

// TestAlgorithmsAreValidAndBounded: every algorithm produces a verifiable
// cover, never beats the exact optimum, and never exceeds the size bound.
func TestAlgorithmsAreValidAndBounded(t *testing.T) {
	algos := map[string]func(Instance) (Cover, error){
		"NextFit":           NextFit,
		"NextFitDecreasing": NextFitDecreasing,
		"Improved":          Improved,
	}
	f := func(spec coverSpec) bool {
		in := spec.instance()
		opt, err := Exact(in)
		if err != nil {
			return false
		}
		ub, err := UpperBound(in)
		if err != nil {
			return false
		}
		if opt > ub {
			t.Fatalf("exact %d exceeds upper bound %d", opt, ub)
		}
		for name, algo := range algos {
			cover, err := algo(in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := cover.Verify(in); err != nil {
				t.Fatalf("%s produced invalid cover: %v", name, err)
			}
			if cover.Count() > opt {
				t.Fatalf("%s covered %d bins, exact optimum is %d", name, cover.Count(), opt)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestImprovedGuarantee: the two-phase algorithm's asymptotic 2/3
// guarantee, tested as Improved >= floor(2*OPT/3) - 1 to absorb the
// additive constant on small instances.
func TestImprovedGuarantee(t *testing.T) {
	f := func(spec coverSpec) bool {
		in := spec.instance()
		opt, err := Exact(in)
		if err != nil {
			return false
		}
		cover, err := Improved(in)
		if err != nil {
			return false
		}
		return cover.Count() >= (2*opt)/3-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNextFitGuarantee: NF >= (OPT-1)/2.
func TestNextFitGuarantee(t *testing.T) {
	f := func(spec coverSpec) bool {
		in := spec.instance()
		opt, err := Exact(in)
		if err != nil {
			return false
		}
		cover, err := NextFit(in)
		if err != nil {
			return false
		}
		return cover.Count() >= (opt-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCoverVerifyRejectsBadCovers(t *testing.T) {
	in := Instance{Capacity: 10, Sizes: []float64{5, 5, 4}}
	bad := []Cover{
		{Bins: [][]int{{0}}},            // under capacity
		{Bins: [][]int{{0, 0}}},         // duplicate item
		{Bins: [][]int{{0, 7}}},         // out of range
		{Bins: [][]int{{0, 1}, {1, 2}}}, // item reused across bins
	}
	for i, c := range bad {
		if err := c.Verify(in); err == nil {
			t.Errorf("case %d: invalid cover accepted", i)
		}
	}
}

// TestReduceSRA: the Theorem 1 reduction maps worker qualities to item
// sizes, and solving the covering instance bounds the SRA optimum with
// zero payments and unit frequencies.
func TestReduceSRA(t *testing.T) {
	workers := []core.Worker{
		{ID: "a", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 6},
		{ID: "b", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 5},
		{ID: "c", Bid: core.Bid{Cost: 1, Frequency: 1}, Quality: 5},
	}
	in, err := ReduceSRA(workers, 10)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	// 6+5 covers one bin; remaining 5 cannot cover another.
	if opt != 1 {
		t.Errorf("reduced optimum = %d, want 1", opt)
	}
	if _, err := ReduceSRA(nil, 0); err == nil {
		t.Error("invalid capacity accepted")
	}
}
