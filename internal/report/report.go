// Package report renders the experiment harness's outputs: named data
// series (figures) and tables, as aligned text for terminals and as CSV for
// downstream plotting.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one named line in a figure: y values over shared or per-series
// x values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: a set of series plus axis metadata.
type Figure struct {
	ID     string // e.g. "fig4a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Validate reports whether all series are well formed.
func (f *Figure) Validate() error {
	if f.ID == "" {
		return errors.New("report: figure without ID")
	}
	if len(f.Series) == 0 {
		return fmt.Errorf("report: figure %s has no series", f.ID)
	}
	for _, s := range f.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: figure %s series %q: %d x values, %d y values",
				f.ID, s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("report: figure %s series %q is empty", f.ID, s.Name)
		}
	}
	return nil
}

// Render writes the figure as an aligned text table: one row per x value of
// the first series, one column per series. Series are aligned by position
// when they share x values; otherwise each series is printed in its own
// block.
func (f *Figure) Render(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	if f.sharedX() {
		header := append([]string{f.XLabel}, seriesNames(f.Series)...)
		rows := make([][]string, len(f.Series[0].X))
		for i := range rows {
			row := make([]string, 0, len(f.Series)+1)
			row = append(row, formatFloat(f.Series[0].X[i]))
			for _, s := range f.Series {
				row = append(row, formatFloat(s.Y[i]))
			}
			rows[i] = row
		}
		return writeAligned(w, header, rows)
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "## series %s\n", s.Name); err != nil {
			return err
		}
		rows := make([][]string, len(s.X))
		for i := range rows {
			rows[i] = []string{formatFloat(s.X[i]), formatFloat(s.Y[i])}
		}
		if err := writeAligned(w, []string{f.XLabel, f.YLabel}, rows); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the figure in long form: series,x,y.
func (f *Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "series,x,y\n"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n",
				csvEscape(s.Name), formatFloat(s.X[i]), formatFloat(s.Y[i])); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *Figure) sharedX() bool {
	first := f.Series[0].X
	for _, s := range f.Series[1:] {
		if len(s.X) != len(first) {
			return false
		}
		for i := range first {
			if s.X[i] != first[i] {
				return false
			}
		}
	}
	return true
}

// Table is a reproduced paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Validate reports whether the table is rectangular.
func (t *Table) Validate() error {
	if t.ID == "" {
		return errors.New("report: table without ID")
	}
	if len(t.Header) == 0 {
		return fmt.Errorf("report: table %s has no header", t.ID)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("report: table %s row %d has %d cells, header has %d",
				t.ID, i, len(row), len(t.Header))
		}
	}
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	return writeAligned(w, t.Header, t.Rows)
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = csvEscape(c)
		}
		if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func seriesNames(ss []Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

func writeAligned(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
