package report

import (
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "fig4a", Title: "Utility vs workers", XLabel: "N", YLabel: "utility",
		Series: []Series{
			{Name: "MELODY", X: []float64{10, 20}, Y: []float64{5, 9}},
			{Name: "RANDOM", X: []float64{10, 20}, Y: []float64{2, 3}},
		},
	}
}

func TestFigureValidate(t *testing.T) {
	if err := sampleFigure().Validate(); err != nil {
		t.Fatalf("valid figure rejected: %v", err)
	}
	bad := []*Figure{
		{},
		{ID: "f"},
		{ID: "f", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}},
		{ID: "f", Series: []Series{{Name: "s"}}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid figure accepted", i)
		}
	}
}

func TestFigureRenderSharedX(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig4a", "MELODY", "RANDOM", "10", "20", "N"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Shared-x figures are one table, not per-series blocks.
	if strings.Contains(out, "## series") {
		t.Error("shared-x figure rendered per-series blocks")
	}
}

func TestFigureRenderDisjointX(t *testing.T) {
	f := sampleFigure()
	f.Series[1].X = []float64{11, 21}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## series MELODY") {
		t.Error("disjoint-x figure should render per-series blocks")
	}
}

func TestFigureWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5", len(lines))
	}
	if lines[1] != "MELODY,10,5" {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestTableValidateAndRender(t *testing.T) {
	tbl := &Table{
		ID: "table1", Title: "Properties",
		Header: []string{"Mechanism", "Truthful"},
		Rows:   [][]string{{"MELODY", "yes"}},
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MELODY") {
		t.Error("render missing row")
	}
	bad := &Table{ID: "t", Header: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if err := bad.Validate(); err == nil {
		t.Error("ragged table accepted")
	}
	if err := (&Table{}).Validate(); err == nil {
		t.Error("empty table accepted")
	}
}

func TestTableWriteCSVEscaping(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "x",
		Header: []string{"name", "note"},
		Rows:   [][]string{{`a,b`, `say "hi"`}},
	}
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{{10, "10"}, {2.5, "2.5"}, {-3, "-3"}, {0.123456789, "0.123457"}}
	for _, tt := range tests {
		if got := formatFloat(tt.v); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
