package report

import (
	"strings"
	"testing"
)

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID: "table1", Title: "Props",
		Header: []string{"Name", "Value"},
		Rows:   [][]string{{"a|b", "1"}},
	}
	var b strings.Builder
	if err := tbl.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "### table1 — Props") {
		t.Errorf("missing heading:\n%s", out)
	}
	if !strings.Contains(out, "| Name | Value |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Errorf("missing separator:\n%s", out)
	}
	if !strings.Contains(out, `a\|b`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if err := (&Table{}).RenderMarkdown(&b); err == nil {
		t.Error("invalid table accepted")
	}
}

func TestFigureRenderMarkdownSharedX(t *testing.T) {
	var b strings.Builder
	if err := sampleFigure().RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "| N | MELODY | RANDOM |") {
		t.Errorf("missing combined header:\n%s", out)
	}
	if !strings.Contains(out, "| 10 | 5 | 2 |") {
		t.Errorf("missing data row:\n%s", out)
	}
}

func TestFigureRenderMarkdownDisjointX(t *testing.T) {
	f := sampleFigure()
	f.Series[1].X = []float64{11, 21}
	var b strings.Builder
	if err := f.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "**series MELODY**") || !strings.Contains(out, "**series RANDOM**") {
		t.Errorf("missing per-series blocks:\n%s", out)
	}
	if err := (&Figure{}).RenderMarkdown(&b); err == nil {
		t.Error("invalid figure accepted")
	}
}
