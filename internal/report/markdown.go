package report

import (
	"fmt"
	"io"
	"strings"
)

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if err := writeMarkdownRow(w, t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeMarkdownRow(w, sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeMarkdownRow(w, row); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// RenderMarkdown writes the figure as a markdown table: shared-x figures
// become one table with a column per series; disjoint-x figures render one
// table per series.
func (f *Figure) RenderMarkdown(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title); err != nil {
		return err
	}
	writeTable := func(header []string, rows [][]string) error {
		if err := writeMarkdownRow(w, header); err != nil {
			return err
		}
		sep := make([]string, len(header))
		for i := range sep {
			sep[i] = "---"
		}
		if err := writeMarkdownRow(w, sep); err != nil {
			return err
		}
		for _, row := range rows {
			if err := writeMarkdownRow(w, row); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if f.sharedX() {
		header := append([]string{f.XLabel}, seriesNames(f.Series)...)
		rows := make([][]string, len(f.Series[0].X))
		for i := range rows {
			row := make([]string, 0, len(f.Series)+1)
			row = append(row, formatFloat(f.Series[0].X[i]))
			for _, s := range f.Series {
				row = append(row, formatFloat(s.Y[i]))
			}
			rows[i] = row
		}
		return writeTable(header, rows)
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "**series %s**\n\n", markdownEscape(s.Name)); err != nil {
			return err
		}
		rows := make([][]string, len(s.X))
		for i := range rows {
			rows[i] = []string{formatFloat(s.X[i]), formatFloat(s.Y[i])}
		}
		if err := writeTable([]string{f.XLabel, f.YLabel}, rows); err != nil {
			return err
		}
	}
	return nil
}

func writeMarkdownRow(w io.Writer, cells []string) error {
	escaped := make([]string, len(cells))
	for i, c := range cells {
		escaped[i] = markdownEscape(c)
	}
	_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
	return err
}

func markdownEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
