package market

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"melody/internal/stats"
)

// Replication is one independent simulation's telemetry.
type Replication struct {
	Seed    int64
	Results []*RunResult
}

// RunReplications executes independent simulations for every seed, up to
// `concurrency` at a time (defaulting to runtime.GOMAXPROCS(0) when
// non-positive), each built by the caller's factory and stepped for `runs`
// runs. Engines must not share mutable state (each factory call must create
// fresh estimators, populations and RNGs). The returned replications are
// ordered by the seeds slice regardless of completion order; errors cancel
// nothing and are reported joined in seed order after all goroutines drain
// (each replication is independent, so partial results remain valid).
func RunReplications(build func(seed int64) (*Engine, error), seeds []int64, runs, concurrency int) ([]Replication, error) {
	if build == nil {
		return nil, errors.New("market: nil engine factory")
	}
	if len(seeds) == 0 {
		return nil, errors.New("market: no seeds")
	}
	if runs <= 0 {
		return nil, fmt.Errorf("market: runs %d must be positive", runs)
	}
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(seeds) {
		concurrency = len(seeds)
	}

	out := make([]Replication, len(seeds))
	errs := make([]error, len(seeds))
	jobs := make(chan int, len(seeds))
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				seed := seeds[idx]
				eng, err := build(seed)
				if err != nil {
					errs[idx] = fmt.Errorf("market: seed %d: %w", seed, err)
					continue
				}
				results, err := eng.Steps(runs)
				if err != nil {
					errs[idx] = fmt.Errorf("market: seed %d: %w", seed, err)
					continue
				}
				out[idx] = Replication{Seed: seed, Results: results}
			}
		}()
	}
	for idx := range seeds {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	return out, errors.Join(errs...)
}

// Aggregate summarizes replications into per-run cross-replication means
// and 95% confidence half-widths (normal approximation) for the estimation
// error and the true requester utility.
type Aggregate struct {
	Runs int
	// MeanError[r] is the mean estimation error at run r+1 across
	// replications; ErrorCI95[r] is the 95% confidence half-width.
	MeanError []float64
	ErrorCI95 []float64
	// MeanUtility and UtilityCI95 are the same for true requester utility.
	MeanUtility []float64
	UtilityCI95 []float64
}

// AggregateReplications combines replications; all must have the same
// number of runs.
func AggregateReplications(reps []Replication) (*Aggregate, error) {
	if len(reps) == 0 {
		return nil, errors.New("market: no replications to aggregate")
	}
	runs := len(reps[0].Results)
	for _, rep := range reps {
		if len(rep.Results) != runs {
			return nil, fmt.Errorf("market: replication %d has %d runs, want %d",
				rep.Seed, len(rep.Results), runs)
		}
	}
	agg := &Aggregate{
		Runs:        runs,
		MeanError:   make([]float64, runs),
		ErrorCI95:   make([]float64, runs),
		MeanUtility: make([]float64, runs),
		UtilityCI95: make([]float64, runs),
	}
	n := float64(len(reps))
	for r := 0; r < runs; r++ {
		var errAcc, utilAcc stats.Accumulator
		for _, rep := range reps {
			errAcc.Add(rep.Results[r].EstimationError)
			utilAcc.Add(float64(rep.Results[r].TrueUtility))
		}
		agg.MeanError[r] = errAcc.Mean()
		agg.MeanUtility[r] = utilAcc.Mean()
		if len(reps) > 1 {
			agg.ErrorCI95[r] = 1.96 * math.Sqrt(errAcc.SampleVariance()/n)
			agg.UtilityCI95[r] = 1.96 * math.Sqrt(utilAcc.SampleVariance()/n)
		}
	}
	return agg, nil
}

// OverallMeans returns the across-runs averages of the aggregated error
// and utility, the single-number summaries Section 7.7 reports.
func (a *Aggregate) OverallMeans() (meanError, meanUtility float64) {
	me, _ := stats.Mean(a.MeanError)
	mu, _ := stats.Mean(a.MeanUtility)
	return me, mu
}

// Seeds returns n deterministic, well-spread seeds derived from base.
func Seeds(base int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)*1_000_003
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds
}
