package market

import (
	"testing"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Tasks: 5, ThresholdMin: 10, ThresholdMax: 20, Budget: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []RunSpec{
		{Tasks: 0, ThresholdMin: 10, ThresholdMax: 20, Budget: 100},
		{Tasks: 5, ThresholdMin: 20, ThresholdMax: 10, Budget: 100},
		{Tasks: 5, ThresholdMin: 0, ThresholdMax: 20, Budget: 100},
		{Tasks: 5, ThresholdMin: 10, ThresholdMax: 20, Budget: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestRotatingRequestersValidation(t *testing.T) {
	if _, err := RotatingRequesters(nil); err == nil {
		t.Error("empty requesters accepted")
	}
	if _, err := RotatingRequesters([]RequesterSpec{
		{ID: "", Tasks: 5, ThresholdMin: 10, ThresholdMax: 20, Budget: 100},
	}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := RotatingRequesters([]RequesterSpec{
		{ID: "a", Tasks: 5, ThresholdMin: 10, ThresholdMax: 20, Budget: 100},
		{ID: "a", Tasks: 5, ThresholdMin: 10, ThresholdMax: 20, Budget: 100},
	}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := RotatingRequesters([]RequesterSpec{
		{ID: "a", Tasks: 0, ThresholdMin: 10, ThresholdMax: 20, Budget: 100},
	}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRotatingRequestersCycle(t *testing.T) {
	spec, err := RotatingRequesters([]RequesterSpec{
		{ID: "alpha", Tasks: 3, ThresholdMin: 10, ThresholdMax: 20, Budget: 50},
		{ID: "beta", Tasks: 7, ThresholdMin: 30, ThresholdMax: 40, Budget: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		s := spec(run)
		wantID := "alpha"
		if run%2 == 1 {
			wantID = "beta"
		}
		if s.RequesterID != wantID {
			t.Errorf("run %d requester = %s, want %s", run, s.RequesterID, wantID)
		}
	}
	if spec(1).Budget != 200 || spec(0).Tasks != 3 {
		t.Error("spec fields not carried through")
	}
}

func TestEngineWithRotatingRequesters(t *testing.T) {
	r := stats.NewRNG(606)
	workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: 40, Runs: 20,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := RotatingRequesters([]RequesterSpec{
		{ID: "labels-inc", Tasks: 10, ThresholdMin: 20, ThresholdMax: 30, Budget: 150},
		{ID: "sense-co", Tasks: 30, ThresholdMin: 10, ThresholdMax: 15, Budget: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewMelody(longTermAuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: quality.NewMLAllRuns(5.5), Workers: workers,
		Spec:       spec,
		ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.Steps(10)
	if err != nil {
		t.Fatal(err)
	}
	grouped := PerRequester(results)
	if len(grouped["labels-inc"]) != 5 || len(grouped["sense-co"]) != 5 {
		t.Fatalf("grouping = %d/%d, want 5/5", len(grouped["labels-inc"]), len(grouped["sense-co"]))
	}
	for _, res := range grouped["labels-inc"] {
		if res.TotalPayment > 150+1e-9 {
			t.Errorf("labels-inc run %d overspent: %v", res.Run, res.TotalPayment)
		}
		if res.EstimatedUtility > 10 {
			t.Errorf("labels-inc run %d satisfied %d > 10 tasks", res.Run, res.EstimatedUtility)
		}
	}
	for _, res := range grouped["sense-co"] {
		if res.TotalPayment > 60+1e-9 {
			t.Errorf("sense-co run %d overspent: %v", res.Run, res.TotalPayment)
		}
	}
}

func TestEngineSpecValidationFailsLazily(t *testing.T) {
	r := stats.NewRNG(607)
	workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: 5, Runs: 5,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewMelody(longTermAuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: quality.NewMLAllRuns(5.5), Workers: workers,
		Spec:       func(int) RunSpec { return RunSpec{} }, // invalid per-run
		ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err == nil {
		t.Error("invalid per-run spec accepted")
	}
}
