package market

import (
	"strings"
	"testing"

	"melody/internal/core"
	"melody/internal/lds"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// longTermAuctionConfig mirrors the Section 7.7 setting: qualities live on
// the score scale [1,10], costs in [1,2].
func longTermAuctionConfig() core.Config {
	return core.Config{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2}
}

func testEngine(t *testing.T, seed int64, est quality.Estimator, n, m, runs int) *Engine {
	t.Helper()
	r := stats.NewRNG(seed)
	workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: n, Runs: runs,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewMelody(longTermAuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: est, Workers: workers,
		TasksPerRun: m, ThresholdMin: 20, ThresholdMax: 40,
		Budget: 800, ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func melodyEstimator(t *testing.T) *quality.Melody {
	t.Helper()
	est, err := quality.NewMelody(quality.MelodyConfig{
		Init:     lds.State{Mean: 5.5, Var: 2.25},
		Params:   lds.Params{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10,
		EMWindow: 50,
		EM:       lds.EMConfig{MaxIter: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestConfigValidate(t *testing.T) {
	mech, _ := core.NewMelody(longTermAuctionConfig())
	est := quality.NewMLAllRuns(5.5)
	w := &workerpool.Worker{ID: "w", TrueBid: core.Bid{Cost: 1, Frequency: 1},
		Trajectory: []float64{5}, Strategy: workerpool.Truthful{}}
	valid := Config{
		Mechanism: mech, Auction: longTermAuctionConfig(), Estimator: est,
		Workers: []*workerpool.Worker{w}, TasksPerRun: 10,
		ThresholdMin: 20, ThresholdMax: 40, Budget: 800,
		ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10, RNG: stats.NewRNG(1),
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []struct {
		name   string
		mutate func(c Config) Config
	}{
		{"nil mechanism", func(c Config) Config { c.Mechanism = nil; return c }},
		{"nil estimator", func(c Config) Config { c.Estimator = nil; return c }},
		{"no workers", func(c Config) Config { c.Workers = nil; return c }},
		{"zero tasks", func(c Config) Config { c.TasksPerRun = 0; return c }},
		{"bad thresholds", func(c Config) Config { c.ThresholdMin = 40; c.ThresholdMax = 20; return c }},
		{"negative budget", func(c Config) Config { c.Budget = -1; return c }},
		{"negative sigma", func(c Config) Config { c.ScoreSigma = -1; return c }},
		{"bad score range", func(c Config) Config { c.ScoreLo = 10; c.ScoreHi = 1; return c }},
		{"nil rng", func(c Config) Config { c.RNG = nil; return c }},
		{"nil worker", func(c Config) Config { c.Workers = []*workerpool.Worker{nil}; return c }},
		{"no strategy", func(c Config) Config {
			c.Workers = []*workerpool.Worker{{ID: "x", Trajectory: []float64{5}}}
			return c
		}},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.mutate(valid).Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEngineStepBasics(t *testing.T) {
	eng := testEngine(t, 42, quality.NewMLAllRuns(5.5), 100, 50, 20)
	res, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Run != 1 {
		t.Errorf("Run = %d, want 1", res.Run)
	}
	if res.EstimatedUtility < 0 || res.EstimatedUtility > 50 {
		t.Errorf("EstimatedUtility = %d out of [0,50]", res.EstimatedUtility)
	}
	if res.TrueUtility > res.EstimatedUtility {
		t.Errorf("TrueUtility %d exceeds EstimatedUtility %d", res.TrueUtility, res.EstimatedUtility)
	}
	if res.TotalPayment > 800+1e-9 {
		t.Errorf("payment %v exceeds budget", res.TotalPayment)
	}
	if res.QualifiedWorkers <= 0 {
		t.Error("no qualified workers in a generous population")
	}
	if res.EstimationError < 0 {
		t.Errorf("negative estimation error %v", res.EstimationError)
	}
	if eng.Run() != 1 {
		t.Errorf("engine run counter = %d", eng.Run())
	}
}

func TestEngineStepsAccumulate(t *testing.T) {
	eng := testEngine(t, 43, quality.NewMLCurrentRun(5.5), 80, 40, 30)
	results, err := eng.Steps(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Run != i+1 {
			t.Errorf("result %d has Run %d", i, r.Run)
		}
	}
	if _, err := eng.Steps(0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestEngineWithMelodyEstimatorLearns(t *testing.T) {
	// Over a long horizon the MELODY estimator must reduce the estimation
	// error well below the initial run's.
	est := melodyEstimator(t)
	eng := testEngine(t, 44, est, 60, 30, 120)
	results, err := eng.Steps(120)
	if err != nil {
		t.Fatal(err)
	}
	head, _ := stats.Mean(collectErrors(results[:10]))
	tail, _ := stats.Mean(collectErrors(results[len(results)-10:]))
	if tail >= head {
		t.Errorf("estimation error did not improve: first10=%v last10=%v", head, tail)
	}
}

func TestEngineWorkerUtilitiesNonNegativeUnderTruthfulness(t *testing.T) {
	eng := testEngine(t, 45, quality.NewMLAllRuns(5.5), 80, 40, 20)
	results, err := eng.Steps(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		for id, u := range res.WorkerUtilities {
			if u < -1e-9 {
				t.Fatalf("run %d: truthful worker %s has negative utility %v", res.Run, id, u)
			}
		}
	}
}

func TestEngineDeterministicGivenSeed(t *testing.T) {
	run := func() []*RunResult {
		eng := testEngine(t, 46, quality.NewMLAllRuns(5.5), 50, 25, 10)
		results, err := eng.Steps(10)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(), run()
	for i := range a {
		if a[i].EstimatedUtility != b[i].EstimatedUtility ||
			a[i].TrueUtility != b[i].TrueUtility ||
			a[i].TotalPayment != b[i].TotalPayment ||
			a[i].EstimationError != b[i].EstimationError {
			t.Fatalf("run %d differs between identical seeds", i+1)
		}
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	// An estimator that errors must surface with run context.
	eng := testEngine(t, 47, failingEstimator{}, 10, 5, 5)
	_, err := eng.Step()
	if err == nil || !strings.Contains(err.Error(), "run 1") {
		t.Errorf("expected run-context error, got %v", err)
	}
}

type failingEstimator struct{}

func (failingEstimator) Name() string            { return "FAIL" }
func (failingEstimator) Estimate(string) float64 { return 5 }
func (failingEstimator) Observe(string, []float64) error {
	return strings.NewReader("").UnreadByte() // any non-nil error
}

func collectErrors(rs []*RunResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.EstimationError
	}
	return out
}
