package market

import (
	"errors"
	"testing"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// buildSmallEngine is a replication factory over a tiny world.
func buildSmallEngine(t *testing.T) func(seed int64) (*Engine, error) {
	t.Helper()
	return func(seed int64) (*Engine, error) {
		r := stats.NewRNG(seed)
		workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
			N: 30, Runs: 50,
			CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
			QualityLo: 1, QualityHi: 10, Noise: 0.3,
		})
		if err != nil {
			return nil, err
		}
		mech, err := core.NewMelody(longTermAuctionConfig())
		if err != nil {
			return nil, err
		}
		return NewEngine(Config{
			Mechanism: mech, Auction: longTermAuctionConfig(),
			Estimator: quality.NewMLAllRuns(5.5), Workers: workers,
			TasksPerRun: 20, ThresholdMin: 20, ThresholdMax: 40,
			Budget: 200, ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
			RNG: r.Split(),
		})
	}
}

func TestRunReplicationsValidation(t *testing.T) {
	build := buildSmallEngine(t)
	if _, err := RunReplications(nil, []int64{1}, 5, 2); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := RunReplications(build, nil, 5, 2); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := RunReplications(build, []int64{1}, 0, 2); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestRunReplicationsParallelMatchesSequential(t *testing.T) {
	build := buildSmallEngine(t)
	seeds := Seeds(7, 4)

	parallel, err := RunReplications(build, seeds, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := RunReplications(build, seeds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if parallel[i].Seed != sequential[i].Seed {
			t.Fatalf("seed order differs at %d", i)
		}
		for r := range parallel[i].Results {
			p, s := parallel[i].Results[r], sequential[i].Results[r]
			if p.EstimationError != s.EstimationError || p.TrueUtility != s.TrueUtility {
				t.Fatalf("seed %d run %d differs between parallel and sequential", seeds[i], r+1)
			}
		}
	}
}

func TestRunReplicationsPropagatesFactoryError(t *testing.T) {
	wantErr := errors.New("boom")
	build := func(seed int64) (*Engine, error) {
		if seed == 2 {
			return nil, wantErr
		}
		return buildSmallEngine(t)(seed)
	}
	_, err := RunReplications(build, []int64{1, 2, 3}, 5, 3)
	if err == nil || !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestAggregateReplications(t *testing.T) {
	build := buildSmallEngine(t)
	reps, err := RunReplications(build, Seeds(11, 3), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateReplications(reps)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 8 || len(agg.MeanError) != 8 || len(agg.MeanUtility) != 8 {
		t.Fatalf("aggregate shape wrong: %+v", agg)
	}
	for r := 0; r < agg.Runs; r++ {
		if agg.MeanError[r] < 0 || agg.ErrorCI95[r] < 0 || agg.UtilityCI95[r] < 0 {
			t.Fatalf("negative aggregate at run %d", r+1)
		}
	}
	me, mu := agg.OverallMeans()
	if me <= 0 || mu < 0 {
		t.Errorf("overall means = %v, %v", me, mu)
	}
}

func TestAggregateReplicationsErrors(t *testing.T) {
	if _, err := AggregateReplications(nil); err == nil {
		t.Error("empty aggregation accepted")
	}
	ragged := []Replication{
		{Seed: 1, Results: []*RunResult{{Run: 1}}},
		{Seed: 2, Results: []*RunResult{{Run: 1}, {Run: 2}}},
	}
	if _, err := AggregateReplications(ragged); err == nil {
		t.Error("ragged replications accepted")
	}
}

func TestSeeds(t *testing.T) {
	seeds := Seeds(100, 5)
	if len(seeds) != 5 {
		t.Fatalf("len = %d", len(seeds))
	}
	seen := make(map[int64]bool)
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}
