package market

import (
	"reflect"
	"testing"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// opaqueMechanism hides the concrete mechanism type from NewEngine's
// type switch, forcing the engine onto the stateless Mechanism.Run path.
type opaqueMechanism struct{ core.Mechanism }

// statefulTestEngine builds an engine over a seeded population with churn
// (arrival/departure windows), so the stateful path exercises joins and
// leaves as well as per-run bid and posterior updates.
func statefulTestEngine(t *testing.T, seed int64, mech core.Mechanism, runs int) *Engine {
	t.Helper()
	r := stats.NewRNG(seed)
	workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: 40, Runs: runs,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 5,
		QualityLo: 1, QualityHi: 10, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic churn windows: every 4th worker arrives late, every 5th
	// departs early, so the stateful path sees joins and leaves mid-sequence.
	for i, w := range workers {
		if i%4 == 1 {
			w.ArrivalRun = 2 + i%7
		}
		if i%5 == 2 {
			w.DepartureRun = runs - 3 - i%5
		}
	}
	est := quality.NewMLAllRuns(5.5)
	eng, err := NewEngine(Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: est, Workers: workers,
		TasksPerRun: 6, ThresholdMin: 20, ThresholdMax: 40,
		Budget: 600, ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineStatefulMatchesStateless runs two identically-seeded long-term
// simulations — one through the incremental AuctionState fast path, one
// with the mechanism's concrete type hidden so every run re-executes the
// stateless algorithm — and requires bit-identical telemetry on every run,
// for both MELODY and MELODY-DUAL.
func TestEngineStatefulMatchesStateless(t *testing.T) {
	const runs = 40
	mkMelody := func(t *testing.T) core.Mechanism {
		m, err := core.NewMelody(longTermAuctionConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	mkDual := func(t *testing.T) core.Mechanism {
		m, err := core.NewMelodyDual(longTermAuctionConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, tc := range []struct {
		name string
		mk   func(*testing.T) core.Mechanism
	}{
		{"melody", mkMelody},
		{"dual", mkDual},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			stateful := statefulTestEngine(t, 90125, tc.mk(t), runs)
			if stateful.state == nil {
				t.Fatal("engine did not attach the stateful auction path")
			}
			stateless := statefulTestEngine(t, 90125, opaqueMechanism{tc.mk(t)}, runs)
			if stateless.state != nil {
				t.Fatal("opaque mechanism unexpectedly got the stateful path")
			}
			for run := 0; run < runs; run++ {
				a, err := stateful.Step()
				if err != nil {
					t.Fatalf("run %d: stateful: %v", run+1, err)
				}
				b, err := stateless.Step()
				if err != nil {
					t.Fatalf("run %d: stateless: %v", run+1, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("run %d: stateful engine diverged from stateless\n got: %+v\nwant: %+v", run+1, a, b)
				}
			}
		})
	}
}
