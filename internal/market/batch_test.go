package market

import (
	"reflect"
	"testing"

	"melody/internal/quality"
)

// serialOnly hides the BatchObserver interface of the wrapped estimator so
// the engine is forced down the serial Observe loop.
type serialOnly struct {
	quality.Estimator
}

// TestEngineBatchObserveMatchesSerial runs two identically-seeded worlds —
// one where the engine sees *quality.Melody (batch path), one where the
// estimator is wrapped so only Observe is visible — and requires the full
// telemetry of every run to be deep-equal. This pins the ISSUE acceptance
// criterion that the sharded observe path is bit-identical to the seed's
// serial loop at the system level, not just per worker.
func TestEngineBatchObserveMatchesSerial(t *testing.T) {
	const seed, n, m, runs = 97, 40, 30, 25

	batchEst := melodyEstimator(t)
	if _, ok := quality.Estimator(batchEst).(quality.BatchObserver); !ok {
		t.Fatal("quality.Melody no longer implements BatchObserver; test is vacuous")
	}
	serialEst := serialOnly{melodyEstimator(t)}
	if _, ok := quality.Estimator(serialEst).(quality.BatchObserver); ok {
		t.Fatal("serialOnly wrapper leaks BatchObserver; test is vacuous")
	}

	batchEng := testEngine(t, seed, batchEst, n, m, runs)
	serialEng := testEngine(t, seed, serialEst, n, m, runs)

	batchRes, err := batchEng.Steps(runs)
	if err != nil {
		t.Fatal(err)
	}
	serialRes, err := serialEng.Steps(runs)
	if err != nil {
		t.Fatal(err)
	}
	for r := range serialRes {
		if !reflect.DeepEqual(batchRes[r], serialRes[r]) {
			t.Fatalf("run %d diverged:\nbatch:  %+v\nserial: %+v", r+1, batchRes[r], serialRes[r])
		}
	}
}

// TestRunReplicationsDefaultConcurrency: non-positive concurrency must run
// (defaulting to GOMAXPROCS) instead of deadlocking or erroring.
func TestRunReplicationsDefaultConcurrency(t *testing.T) {
	build := func(seed int64) (*Engine, error) {
		return testEngine(t, seed, melodyEstimator(t), 15, 10, 5), nil
	}
	reps, err := RunReplications(build, []int64{1, 2, 3, 4, 5}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 5 {
		t.Fatalf("got %d replications, want 5", len(reps))
	}
	for i, rep := range reps {
		if rep.Seed != []int64{1, 2, 3, 4, 5}[i] {
			t.Fatalf("replication %d out of seed order: %+v", i, rep)
		}
		if len(rep.Results) != 5 {
			t.Fatalf("replication %d has %d runs, want 5", i, len(rep.Results))
		}
	}
}
