package market

import (
	"testing"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

func TestWorkerActiveAt(t *testing.T) {
	tests := []struct {
		name    string
		arrival int
		depart  int
		run     int
		want    bool
	}{
		{"always present", 0, 0, 1, true},
		{"before arrival", 5, 0, 4, false},
		{"at arrival", 5, 0, 5, true},
		{"before departure", 0, 10, 9, true},
		{"at departure", 0, 10, 10, false},
		{"window", 3, 8, 5, true},
		{"after window", 3, 8, 8, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := &workerpool.Worker{ArrivalRun: tt.arrival, DepartureRun: tt.depart}
			if got := w.ActiveAt(tt.run); got != tt.want {
				t.Errorf("ActiveAt(%d) = %v, want %v", tt.run, got, tt.want)
			}
		})
	}
}

// churnEngine builds a world with one late-arriving worker and one early-
// departing worker among steady residents.
func churnEngine(t *testing.T, est quality.Estimator) (*Engine, *workerpool.Worker, *workerpool.Worker) {
	t.Helper()
	r := stats.NewRNG(314)
	flat := func(level float64, runs int) []float64 {
		traj := make([]float64, runs)
		for i := range traj {
			traj[i] = level
		}
		return traj
	}
	const runs = 20
	newcomer := &workerpool.Worker{
		ID: "newcomer", TrueBid: core.Bid{Cost: 1.0, Frequency: 3},
		Trajectory: flat(9, runs), Strategy: workerpool.Truthful{},
		ArrivalRun: 11,
	}
	leaver := &workerpool.Worker{
		ID: "leaver", TrueBid: core.Bid{Cost: 1.0, Frequency: 3},
		Trajectory: flat(9, runs), Strategy: workerpool.Truthful{},
		DepartureRun: 6,
	}
	workers := []*workerpool.Worker{newcomer, leaver}
	for i := 0; i < 10; i++ {
		workers = append(workers, &workerpool.Worker{
			ID:         "resident-" + string(rune('a'+i)),
			TrueBid:    core.Bid{Cost: 1.2, Frequency: 3},
			Trajectory: flat(6, runs),
			Strategy:   workerpool.Truthful{},
		})
	}
	mech, err := core.NewMelody(longTermAuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: est, Workers: workers,
		TasksPerRun: 5, ThresholdMin: 15, ThresholdMax: 20,
		Budget: 100, ScoreSigma: 0.5, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, newcomer, leaver
}

func TestChurnNewcomerAndLeaver(t *testing.T) {
	est := melodyEstimator(t)
	eng, newcomer, leaver := churnEngine(t, est)

	newcomerEverAssignedEarly := false
	leaverEverAssignedLate := false
	for run := 1; run <= 20; run++ {
		if run == 11 {
			// Entering the arrival run, the newcomer's estimate must still
			// be the prior a*mu0 = 5.5 (Algorithm 3, newcomer branch) — it
			// has never been observed.
			if got := est.Estimate(newcomer.ID); got != 5.5 {
				t.Errorf("newcomer arrival estimate = %v, want prior 5.5", got)
			}
		}
		res, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		_, newcomerActive := res.WorkerUtilities[newcomer.ID]
		_, leaverActive := res.WorkerUtilities[leaver.ID]
		if run < 11 && newcomerActive {
			newcomerEverAssignedEarly = true
		}
		if run >= 6 && leaverActive {
			leaverEverAssignedLate = true
		}
	}
	if newcomerEverAssignedEarly {
		t.Error("newcomer participated before arrival")
	}
	if leaverEverAssignedLate {
		t.Error("leaver participated after departure")
	}
	// After 10 active runs with latent quality 9 and cheap bids, the
	// newcomer's estimate should have risen well above the prior.
	if got := est.Estimate(newcomer.ID); got < 7 {
		t.Errorf("newcomer estimate after arrival = %v, want > 7", got)
	}
}

func TestChurnLeaverEstimateFrozen(t *testing.T) {
	est := quality.NewMLAllRuns(5.5)
	eng, _, leaver := churnEngine(t, est)
	var atDeparture float64
	for run := 1; run <= 20; run++ {
		if run == 6 {
			atDeparture = est.Estimate(leaver.ID)
		}
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := est.Estimate(leaver.ID); got != atDeparture {
		t.Errorf("departed worker's estimate moved: %v -> %v", atDeparture, got)
	}
}
