// Package market implements MELODY's multi-run simulation engine: the
// continuously running reverse auction of Fig. 2/Fig. 3. Each run the engine
// generates a task set, collects bids from the simulated worker population,
// executes a single-run mechanism, emits scores for the completed tasks from
// the workers' latent qualities, and feeds the scores back into a quality
// estimator for the next run.
package market

import (
	"errors"
	"fmt"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

// Config assembles one long-term simulation (Table 4 supplies the paper's
// values; see experiments.LongTermConfig).
type Config struct {
	// Mechanism runs the per-run auction (usually core.Melody).
	Mechanism core.Mechanism
	// Auction holds the qualification intervals, needed to compute the
	// estimation-error metric over the qualified set W^r.
	Auction core.Config
	// Estimator supplies mu_i^r each run and absorbs the scores.
	Estimator quality.Estimator
	// Workers is the simulated population.
	Workers []*workerpool.Worker
	// TasksPerRun is M^r; thresholds Q_j are drawn uniformly from
	// [ThresholdMin, ThresholdMax].
	TasksPerRun  int
	ThresholdMin float64
	ThresholdMax float64
	// Budget is B^r, constant across runs as in Table 4.
	Budget float64
	// Spec, when set, overrides the four static demand fields above with a
	// per-run specification — e.g. RotatingRequesters for the paper's
	// multi-requester model. The zero-based run index is passed in.
	Spec func(run int) RunSpec
	// ScoreSigma, ScoreLo, ScoreHi parameterize score emission (Eq. 13 with
	// clamping to the score scale).
	ScoreSigma float64
	ScoreLo    float64
	ScoreHi    float64
	// RNG drives task thresholds, bids and score noise.
	RNG *stats.RNG
}

// Validate reports whether the configuration is complete.
func (c Config) Validate() error {
	switch {
	case c.Mechanism == nil:
		return errors.New("market: nil mechanism")
	case c.Estimator == nil:
		return errors.New("market: nil estimator")
	case len(c.Workers) == 0:
		return errors.New("market: empty worker population")
	case c.ScoreSigma < 0:
		return fmt.Errorf("market: negative score sigma %v", c.ScoreSigma)
	case c.ScoreHi <= c.ScoreLo:
		return fmt.Errorf("market: score range [%v, %v] invalid", c.ScoreLo, c.ScoreHi)
	case c.RNG == nil:
		return errors.New("market: nil RNG")
	}
	if c.Spec == nil {
		static := RunSpec{
			Tasks:        c.TasksPerRun,
			ThresholdMin: c.ThresholdMin,
			ThresholdMax: c.ThresholdMax,
			Budget:       c.Budget,
		}
		if err := static.Validate(); err != nil {
			return err
		}
	}
	if err := c.Auction.Validate(); err != nil {
		return fmt.Errorf("market: %w", err)
	}
	for i, w := range c.Workers {
		if w == nil {
			return fmt.Errorf("market: worker %d is nil", i)
		}
		if w.Strategy == nil {
			return fmt.Errorf("market: worker %s has no strategy", w.ID)
		}
	}
	return nil
}

// RunResult is the per-run telemetry of the engine.
type RunResult struct {
	// Run is the 1-based run index.
	Run int
	// RequesterID identifies this run's requester when a multi-requester
	// Spec is configured; empty for the single-requester default.
	RequesterID string
	// EstimatedUtility is U^r under estimated qualities (Definition 3) —
	// the number of selected tasks.
	EstimatedUtility int
	// TrueUtility counts selected tasks whose received *latent* quality
	// reaches the threshold (the paper's "requester's real utility").
	TrueUtility int
	// TotalPayment is the requester's spend this run.
	TotalPayment float64
	// EstimationError is the average |q_i^r - mu_i^r| over the qualified
	// worker set W^r (the Section 7.7 metric). Zero when no worker
	// qualifies.
	EstimationError float64
	// QualifiedWorkers is |W^r|.
	QualifiedWorkers int
	// WorkerUtilities maps each worker to their realized utility this run
	// (payments received minus true cost for completed tasks).
	WorkerUtilities map[string]float64
}

// Engine drives the multi-run loop. Not safe for concurrent use.
//
// When the configured mechanism is the stateless MELODY or MELODY-DUAL, the
// engine transparently runs it through a persistent core.AuctionState:
// between runs it diffs the active worker set against the previous run's and
// feeds the auction only the delta (bid/posterior updates, joins, leaves),
// so steady-state runs repair the ranked structures locally instead of
// re-sorting the population. Outcomes are byte-identical to calling
// Mechanism.Run directly (pinned by TestEngineStatefulMatchesStateless).
type Engine struct {
	cfg Config
	run int

	// Incremental auction fast path; state is nil for mechanisms without a
	// stateful adapter (RANDOM, OPT-UB, test doubles).
	state *core.AuctionState
	prev  map[string]core.Worker
	delta core.WorkerDelta
}

// NewEngine validates the configuration and returns a ready engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg}
	// The engine fully consumes each outcome before the next Step, so the
	// state can recycle the outcome arenas (ReuseOutcome).
	var mechCfg core.Config
	switch m := cfg.Mechanism.(type) {
	case *core.Melody:
		mechCfg = m.Config()
	case *core.MelodyDual:
		mechCfg = m.Config()
	default:
		return e, nil
	}
	state, err := core.NewAuctionState(mechCfg, core.AuctionStateOptions{ReuseOutcome: true})
	if err != nil {
		return nil, fmt.Errorf("market: %w", err)
	}
	e.state = state
	e.prev = make(map[string]core.Worker)
	return e, nil
}

// runAuction executes one run's mechanism, through the incremental state
// when one is attached.
func (e *Engine) runAuction(in core.Instance) (*core.Outcome, error) {
	if e.state == nil {
		return e.cfg.Mechanism.Run(in)
	}
	d := e.delta
	d.Upserts = d.Upserts[:0]
	d.Removes = d.Removes[:0]
	seen := make(map[string]bool, len(in.Workers))
	for _, w := range in.Workers {
		seen[w.ID] = true
		if prev, ok := e.prev[w.ID]; !ok || prev != w {
			d.Upserts = append(d.Upserts, w)
		}
	}
	for id := range e.prev {
		if !seen[id] {
			d.Removes = append(d.Removes, id)
		}
	}
	e.delta = d
	if err := e.state.Apply(d); err != nil {
		return nil, err
	}
	// Sync the mirror only after Apply committed, so a rejected delta leaves
	// mirror and state agreeing.
	for _, w := range d.Upserts {
		e.prev[w.ID] = w
	}
	for _, id := range d.Removes {
		delete(e.prev, id)
	}
	switch m := e.cfg.Mechanism.(type) {
	case *core.Melody:
		return e.state.RunMelody(in.Tasks, in.Budget)
	case *core.MelodyDual:
		return e.state.RunDual(m.Target(), in.Tasks)
	default:
		return nil, errors.New("market: stateful path attached to unknown mechanism")
	}
}

// Run returns the number of completed runs.
func (e *Engine) Run() int { return e.run }

// Step executes one run of the Fig. 2 workflow and returns its telemetry.
func (e *Engine) Step() (*RunResult, error) {
	cfg := e.cfg
	runIdx := e.run // zero-based trajectory index

	// 1. This run's requester publishes a task set with a budget.
	spec := RunSpec{
		Tasks:        cfg.TasksPerRun,
		ThresholdMin: cfg.ThresholdMin,
		ThresholdMax: cfg.ThresholdMax,
		Budget:       cfg.Budget,
	}
	if cfg.Spec != nil {
		spec = cfg.Spec(runIdx)
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("market: run %d: %w", runIdx+1, err)
		}
	}
	tasks := make([]core.Task, spec.Tasks)
	for j := range tasks {
		tasks[j] = core.Task{
			ID:        fmt.Sprintf("r%d-t%d", runIdx+1, j),
			Threshold: cfg.RNG.Uniform(spec.ThresholdMin, spec.ThresholdMax),
		}
	}

	// 2. Active workers bid; the platform attaches its quality estimates.
	// Workers outside their arrival/departure window sit the run out.
	active := make([]*workerpool.Worker, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		if w.ActiveAt(runIdx + 1) {
			active = append(active, w)
		}
	}
	workers := make([]core.Worker, len(active))
	estimates := make(map[string]float64, len(active))
	for i, w := range active {
		est := cfg.Estimator.Estimate(w.ID)
		estimates[w.ID] = est
		workers[i] = core.Worker{
			ID:      w.ID,
			Bid:     w.Strategy.Bid(cfg.RNG, w.TrueBid),
			Quality: est,
		}
	}

	// 3. The mechanism determines the allocation and payment schemes.
	instance := core.Instance{Workers: workers, Tasks: tasks, Budget: spec.Budget}
	out, err := e.runAuction(instance)
	if err != nil {
		return nil, fmt.Errorf("market: run %d: %w", runIdx+1, err)
	}

	// 4. Workers complete their tasks (at most their true frequency) and
	// the requester scores the answers from the latent quality. Score
	// emission stays serial — it draws from the engine's single RNG stream —
	// while the estimator updates are deferred to one batch below.
	latent := make(map[string]float64, len(active))
	assigned := out.WorkerTaskCount()
	result := &RunResult{
		Run:              runIdx + 1,
		RequesterID:      spec.RequesterID,
		EstimatedUtility: out.Utility(),
		TotalPayment:     out.TotalPayment,
		WorkerUtilities:  make(map[string]float64, len(active)),
	}
	ids := make([]string, len(active))
	scoreSets := make([][]float64, len(active))
	var errSum float64
	for i, w := range active {
		q := w.LatentQuality(runIdx)
		latent[w.ID] = q

		completed := assigned[w.ID]
		if completed > w.TrueBid.Frequency {
			completed = w.TrueBid.Frequency
		}
		ids[i] = w.ID
		scoreSets[i] = workerpool.EmitScores(cfg.RNG, q, completed, cfg.ScoreSigma, cfg.ScoreLo, cfg.ScoreHi)

		result.WorkerUtilities[w.ID] = core.WorkerUtility(out, w.ID, w.TrueBid.Cost, w.TrueBid.Frequency)
		bidWorker := core.Worker{ID: w.ID, Bid: w.TrueBid, Quality: estimates[w.ID]}
		if cfg.Auction.Qualifies(bidWorker) {
			result.QualifiedWorkers++
			diff := q - estimates[w.ID]
			if diff < 0 {
				diff = -diff
			}
			errSum += diff
		}
	}

	// 5. The platform updates every worker's quality for the next run.
	// Estimators that support batch observation absorb the whole run at
	// once (MELODY shards its independent per-worker Kalman/EM updates
	// across a goroutine pool, bit-identically to the serial loop).
	if batch, ok := cfg.Estimator.(quality.BatchObserver); ok {
		if err := batch.ObserveBatch(ids, scoreSets); err != nil {
			return nil, fmt.Errorf("market: run %d: observe batch: %w", runIdx+1, err)
		}
	} else {
		for i, id := range ids {
			if err := cfg.Estimator.Observe(id, scoreSets[i]); err != nil {
				return nil, fmt.Errorf("market: run %d: observe %s: %w", runIdx+1, id, err)
			}
		}
	}
	if result.QualifiedWorkers > 0 {
		result.EstimationError = errSum / float64(result.QualifiedWorkers)
	}
	result.TrueUtility = core.TrueUtility(out, tasks, latent)

	e.run++
	return result, nil
}

// Steps executes n runs and collects their telemetry.
func (e *Engine) Steps(n int) ([]*RunResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("market: step count %d must be positive", n)
	}
	results := make([]*RunResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := e.Step()
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
