package market

import (
	"errors"
	"fmt"
)

// RunSpec describes one run's demand side: who is requesting, how many
// tasks, their threshold range and the budget. The paper's system model
// (Section 3.1) has several requesters in the cloud with one publicizing a
// task set per run; a RunSpec generator captures that rotation.
type RunSpec struct {
	RequesterID  string
	Tasks        int
	ThresholdMin float64
	ThresholdMax float64
	Budget       float64
}

// Validate reports whether the spec can drive a run.
func (s RunSpec) Validate() error {
	switch {
	case s.Tasks <= 0:
		return fmt.Errorf("market: run spec with %d tasks", s.Tasks)
	case s.ThresholdMax < s.ThresholdMin || s.ThresholdMin <= 0:
		return fmt.Errorf("market: run spec threshold range [%v, %v] invalid", s.ThresholdMin, s.ThresholdMax)
	case s.Budget < 0:
		return fmt.Errorf("market: run spec budget %v negative", s.Budget)
	default:
		return nil
	}
}

// RequesterSpec is one requester's standing demand profile.
type RequesterSpec struct {
	ID           string
	Tasks        int
	ThresholdMin float64
	ThresholdMax float64
	Budget       float64
}

// RotatingRequesters returns a RunSpec generator that cycles round-robin
// through the given requesters, one per run, as in the paper's multi-
// requester model.
func RotatingRequesters(requesters []RequesterSpec) (func(run int) RunSpec, error) {
	if len(requesters) == 0 {
		return nil, errors.New("market: no requesters")
	}
	seen := make(map[string]bool, len(requesters))
	for i, r := range requesters {
		if r.ID == "" {
			return nil, fmt.Errorf("market: requester %d has empty ID", i)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("market: duplicate requester %q", r.ID)
		}
		seen[r.ID] = true
		spec := RunSpec{
			RequesterID:  r.ID,
			Tasks:        r.Tasks,
			ThresholdMin: r.ThresholdMin,
			ThresholdMax: r.ThresholdMax,
			Budget:       r.Budget,
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("market: requester %q: %w", r.ID, err)
		}
	}
	reqs := make([]RequesterSpec, len(requesters))
	copy(reqs, requesters)
	return func(run int) RunSpec {
		r := reqs[run%len(reqs)]
		return RunSpec{
			RequesterID:  r.ID,
			Tasks:        r.Tasks,
			ThresholdMin: r.ThresholdMin,
			ThresholdMax: r.ThresholdMax,
			Budget:       r.Budget,
		}
	}, nil
}

// PerRequester groups run results by requester ID.
func PerRequester(results []*RunResult) map[string][]*RunResult {
	out := make(map[string][]*RunResult)
	for _, r := range results {
		out[r.RequesterID] = append(out[r.RequesterID], r)
	}
	return out
}
