package market

// Resilience tests: degenerate worlds must produce empty-but-valid runs,
// never panics or corrupted telemetry.

import (
	"testing"

	"melody/internal/core"
	"melody/internal/quality"
	"melody/internal/stats"
	"melody/internal/workerpool"
)

func degenerateEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	r := stats.NewRNG(777)
	workers, err := workerpool.NewPopulation(r.Split(), workerpool.PopulationConfig{
		N: 20, Runs: 10,
		CostMin: 1, CostMax: 2, FreqMin: 1, FreqMax: 3,
		QualityLo: 1, QualityHi: 10, Noise: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewMelody(longTermAuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mechanism: mech, Auction: longTermAuctionConfig(),
		Estimator: quality.NewMLAllRuns(5.5), Workers: workers,
		TasksPerRun: 10, ThresholdMin: 20, ThresholdMax: 40,
		Budget: 200, ScoreSigma: 3, ScoreLo: 1, ScoreHi: 10,
		RNG: r.Split(),
	}
	mutate(&cfg)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineUnsatisfiableThresholds(t *testing.T) {
	// Thresholds no pool of 20 workers can cover: every run must complete
	// with zero utility and zero payment, and telemetry stays sane.
	eng := degenerateEngine(t, func(c *Config) {
		c.ThresholdMin = 5000
		c.ThresholdMax = 6000
	})
	for run := 0; run < 5; run++ {
		res, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedUtility != 0 || res.TrueUtility != 0 || res.TotalPayment != 0 {
			t.Fatalf("unsatisfiable run produced utility %d/%d payment %v",
				res.EstimatedUtility, res.TrueUtility, res.TotalPayment)
		}
		if res.EstimationError < 0 {
			t.Fatal("negative estimation error")
		}
	}
}

func TestEngineAllWorkersDisqualified(t *testing.T) {
	// A qualification interval that no bid can satisfy: runs proceed with
	// zero qualified workers.
	eng := degenerateEngine(t, func(c *Config) {
		narrow := core.Config{QualityMin: 100, QualityMax: 200, CostMin: 1, CostMax: 2}
		mech, err := core.NewMelody(narrow)
		if err != nil {
			t.Fatal(err)
		}
		c.Mechanism = mech
		c.Auction = narrow
	})
	res, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.QualifiedWorkers != 0 {
		t.Errorf("qualified = %d, want 0", res.QualifiedWorkers)
	}
	if res.EstimationError != 0 {
		t.Errorf("estimation error over empty set = %v, want 0", res.EstimationError)
	}
	if res.EstimatedUtility != 0 {
		t.Errorf("utility = %d, want 0", res.EstimatedUtility)
	}
}

func TestEngineZeroBudget(t *testing.T) {
	eng := degenerateEngine(t, func(c *Config) { c.Budget = 0 })
	res, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPayment != 0 || res.EstimatedUtility != 0 {
		t.Errorf("zero-budget run paid %v for %d tasks", res.TotalPayment, res.EstimatedUtility)
	}
}

func TestRandomMechanismDeterministicGivenSeed(t *testing.T) {
	cfgRun := func() *core.Outcome {
		rnd, err := core.NewRandom(longTermAuctionConfig(), stats.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRNG(5)
		in := core.Instance{Budget: 100}
		for i := 0; i < 30; i++ {
			in.Workers = append(in.Workers, core.Worker{
				ID:      string(rune('a' + i)),
				Bid:     core.Bid{Cost: r.Uniform(1, 2), Frequency: 2},
				Quality: r.Uniform(1, 10),
			})
		}
		for j := 0; j < 10; j++ {
			in.Tasks = append(in.Tasks, core.Task{ID: string(rune('A' + j)), Threshold: r.Uniform(10, 20)})
		}
		out, err := rnd.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := cfgRun(), cfgRun()
	if a.TotalPayment != b.TotalPayment || len(a.Assignments) != len(b.Assignments) {
		t.Error("RANDOM with identical seeds diverged")
	}
}
