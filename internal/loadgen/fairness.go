package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"melody"
	"melody/internal/eventlog"
	"melody/internal/verify"
)

// FairnessConfig parameterizes the weighted-fair close scheduling scenario:
// N equal-weight tenants, each driving one run per round against a single
// scheduler whose close gate admits CloseConcurrency auction closes at a
// time. Every round all tenants close simultaneously, so the gate — not
// tenant luck — decides who waits.
type FairnessConfig struct {
	// Tenants is the number of contending tenants (default 8).
	Tenants int
	// Rounds is how many runs each tenant drives; each round ends in a
	// synchronized close volley. More rounds smooth scheduling noise out
	// of the per-tenant close-latency medians (default 24).
	Rounds int
	// WorkersPerTenant sizes each tenant's bidder pool; bigger pools make
	// the close computation heavier, which is what the gate arbitrates —
	// queue wait must dominate goroutine-wakeup jitter for the latency
	// ratio to measure the gate rather than the OS (default 96).
	WorkersPerTenant int
	// Tasks per run; like the pool size, it scales close weight
	// (default 32).
	Tasks int
	// Budget per run (default 200). Every tenant's lifetime quota is set
	// to exactly Rounds*Budget, so the whole season fits and nothing more.
	Budget float64
	// Seed drives worker costs; both passes reuse the same draws.
	Seed int64
	// CloseConcurrency is the gate capacity (default 1: fully serialized
	// closes, maximum contention).
	CloseConcurrency int
	// MaxRatio is the acceptance bound on max/min median close latency
	// across tenants (default 2).
	MaxRatio float64
}

// withDefaults fills zero fields.
func (c FairnessConfig) withDefaults() FairnessConfig {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 24
	}
	if c.WorkersPerTenant <= 0 {
		c.WorkersPerTenant = 96
	}
	if c.Tasks <= 0 {
		c.Tasks = 32
	}
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CloseConcurrency <= 0 {
		c.CloseConcurrency = 1
	}
	if c.MaxRatio <= 0 {
		c.MaxRatio = 2
	}
	return c
}

// FairnessResult is what the fairness scenario measured and proved.
type FairnessResult struct {
	Tenants          int `json:"tenants"`
	Rounds           int `json:"rounds"`
	TotalRuns        int `json:"total_runs"`
	CloseConcurrency int `json:"close_concurrency"`
	// MinMedianCloseMs and MaxMedianCloseMs are the extremes of the
	// per-tenant median close latency under contention; FairnessRatio is
	// their ratio (the acceptance metric).
	MinMedianCloseMs float64 `json:"min_median_close_ms"`
	MaxMedianCloseMs float64 `json:"max_median_close_ms"`
	FairnessRatio    float64 `json:"fairness_ratio"`
	// OutcomesMatch reports byte-identical per-run outcomes between the
	// serial and concurrent passes — the gate reorders waiting, never
	// results.
	OutcomesMatch bool `json:"outcomes_match"`
	// QuotaRefusals counts over-quota opens refused with ErrQuotaExceeded
	// after each tenant's quota was lowered to its realized spend; it must
	// equal Tenants.
	QuotaRefusals int `json:"quota_refusals"`
	// SpentMatchesLedger reports that the scheduler's per-tenant spend
	// accounting sums exactly (within tolerance) to the requester's ledger
	// outflow.
	SpentMatchesLedger bool `json:"spent_matches_ledger"`
	// ReplayConsistent reports that a WAL-backed mini-season replayed into
	// a fresh scheduler reconstructed identical tenant quotas and usage,
	// and that the replayed scheduler still refuses the over-quota open.
	ReplayConsistent  bool    `json:"replay_consistent"`
	SerialSeconds     float64 `json:"serial_seconds"`
	ConcurrentSeconds float64 `json:"concurrent_seconds"`
}

// closeLatencyFloorMs guards the fairness ratio's denominator: medians
// below this are within scheduler-wakeup jitter, where a ratio stops
// measuring the gate and starts measuring the OS.
const closeLatencyFloorMs = 0.02

// newFairnessScheduler boots a funded scheduler for one pass.
func newFairnessScheduler(cfg FairnessConfig, closeConcurrency int) (*melody.RunScheduler, *melody.Ledger, error) {
	money := melody.NewLedger()
	funding := cfg.Budget * float64(cfg.Tenants*cfg.Rounds)
	if _, err := money.Deposit(melody.RequesterAccount, funding, "fairness funding"); err != nil {
		return nil, nil, err
	}
	sched, err := melody.NewRunScheduler(melody.SchedulerConfig{
		Auction: melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		NewEstimator: func(string) (melody.Estimator, error) {
			return melody.NewQualityTracker(melody.QualityTrackerConfig{
				InitialMean: 5.5, InitialVar: 2.25,
				Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
				EMPeriod: 10, EMWindow: 60,
			})
		},
		Ledger:           money,
		CloseConcurrency: closeConcurrency,
	})
	if err != nil {
		return nil, nil, err
	}
	return sched, money, nil
}

// fairnessPolicies installs every tenant's quota: exactly the season's
// budget (Rounds*Budget), equal weight.
func fairnessPolicies(ctx context.Context, sched *melody.RunScheduler, cfg FairnessConfig, loads []tenantWorkload) error {
	for _, wl := range loads {
		policy := melody.UnlimitedTenantPolicy()
		policy.BudgetQuota = cfg.Budget * float64(cfg.Rounds)
		policy.Weight = 1
		if err := sched.SetTenantPolicy(ctx, wl.tenant, policy); err != nil {
			return fmt.Errorf("policy %s: %w", wl.tenant, err)
		}
	}
	return nil
}

// runPhase runs f for every tenant index concurrently and returns the
// first error.
func runPhase(n int, f func(i int) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f(i); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// openAndBid opens one tenant's run for the round and submits every
// worker's bid, mirroring driveTenantDirect's inputs exactly so the serial
// and concurrent passes stay digest-comparable.
func openAndBid(ctx context.Context, sched *melody.RunScheduler, cfg FairnessConfig, wl tenantWorkload, round int) (string, error) {
	runID := fmt.Sprintf("%s-r%d", wl.tenant, round)
	tasks := make([]melody.Task, cfg.Tasks)
	for j := range tasks {
		tasks[j] = melody.Task{ID: fmt.Sprintf("%s-t%d", runID, j), Threshold: 10}
	}
	if err := sched.OpenRun(ctx, runID, wl.tenant, tasks, cfg.Budget); err != nil {
		return runID, fmt.Errorf("open %s: %w", runID, err)
	}
	for i, w := range wl.workers {
		if err := sched.SubmitBid(ctx, runID, w, melody.Bid{Cost: wl.costs[i], Frequency: 1}); err != nil {
			return runID, fmt.Errorf("bid %s %s: %w", runID, w, err)
		}
	}
	return runID, nil
}

// scoreAndFinish scores every assignment deterministically and finishes
// the run.
func scoreAndFinish(ctx context.Context, sched *melody.RunScheduler, wl tenantWorkload, runID string, out *melody.Outcome) error {
	scores := make([]melody.TaskScore, 0, len(out.Assignments))
	for _, asg := range out.Assignments {
		scores = append(scores, melody.TaskScore{
			WorkerID: asg.WorkerID, TaskID: asg.TaskID,
			Score: detScore(wl.tenant, runID, asg.WorkerID, asg.TaskID),
		})
	}
	if len(scores) > 0 {
		if err := sched.SubmitScores(ctx, runID, scores).Err(); err != nil {
			return fmt.Errorf("scores %s: %w", runID, err)
		}
	}
	if err := sched.FinishRun(ctx, runID); err != nil {
		return fmt.Errorf("finish %s: %w", runID, err)
	}
	return nil
}

// tenantUsages adapts scheduler tenant statuses to the neutral shape the
// verify package checks.
func tenantUsages(statuses []melody.TenantStatus) []verify.TenantUsage {
	usages := make([]verify.TenantUsage, 0, len(statuses))
	for _, st := range statuses {
		u := verify.TenantUsage{
			Tenant:     st.Tenant,
			Spent:      st.Spent,
			Escrowed:   st.Escrowed,
			RunsOpened: st.RunsOpened,
		}
		if st.HasPolicy {
			if q := st.Policy.BudgetQuota; q >= 0 {
				u.HasQuota, u.Quota = true, q
			}
			u.MaxRuns = st.Policy.MaxRuns
		}
		usages = append(usages, u)
	}
	return usages
}

// median returns the middle of xs (mean of the two middles when even).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// RunFairness executes the fairness scenario. The identical workload runs
// once serially (tenant after tenant, no gate) and once with all tenants
// contending through a CloseConcurrency-wide fair gate, every round ending
// in a synchronized close volley with rotated arrival order. It reports
// the max/min ratio of per-tenant median close latency, asserts
// byte-identical outcomes across the passes, proves quota enforcement
// (over-quota opens refused, scheduler spend matching the ledger to the
// cent, the verify checker passing) and replays a WAL-backed mini-season
// to show quotas survive recovery.
func RunFairness(cfg FairnessConfig) (FairnessResult, error) {
	cfg = cfg.withDefaults()
	loads := buildWorkloads(MultiRunConfig{
		Tenants: cfg.Tenants, WorkersPerTenant: cfg.WorkersPerTenant, Seed: cfg.Seed,
	}.withDefaults())
	ctx := context.Background()
	res := FairnessResult{
		Tenants: cfg.Tenants, Rounds: cfg.Rounds,
		TotalRuns:        cfg.Tenants * cfg.Rounds,
		CloseConcurrency: cfg.CloseConcurrency,
	}

	// Serial pass: tenants one after another, ungated — the outcome
	// baseline the gated concurrent pass must reproduce byte for byte.
	serialSched, _, err := newFairnessScheduler(cfg, 0)
	if err != nil {
		return res, err
	}
	if err := fairnessPolicies(ctx, serialSched, cfg, loads); err != nil {
		return res, err
	}
	for _, wl := range loads {
		for _, w := range wl.workers {
			if err := serialSched.RegisterWorker(ctx, w); err != nil {
				return res, fmt.Errorf("loadgen: register %s: %w", w, err)
			}
		}
	}
	serialDigests := make(map[string]string)
	serialStart := time.Now()
	for _, wl := range loads {
		for round := 1; round <= cfg.Rounds; round++ {
			runID, err := openAndBid(ctx, serialSched, cfg, wl, round)
			if err != nil {
				return res, fmt.Errorf("loadgen: serial %w", err)
			}
			out, err := serialSched.CloseAuction(ctx, runID)
			if err != nil {
				return res, fmt.Errorf("loadgen: serial close %s: %w", runID, err)
			}
			serialDigests[runID] = coreOutcomeDigest(out)
			if err := scoreAndFinish(ctx, serialSched, wl, runID, out); err != nil {
				return res, fmt.Errorf("loadgen: serial %w", err)
			}
		}
	}
	res.SerialSeconds = time.Since(serialStart).Seconds()

	// Concurrent pass: all tenants contend through the gate.
	sched, money, err := newFairnessScheduler(cfg, cfg.CloseConcurrency)
	if err != nil {
		return res, err
	}
	if err := fairnessPolicies(ctx, sched, cfg, loads); err != nil {
		return res, err
	}
	for _, wl := range loads {
		for _, w := range wl.workers {
			if err := sched.RegisterWorker(ctx, w); err != nil {
				return res, fmt.Errorf("loadgen: register %s: %w", w, err)
			}
		}
	}
	concDigests := make(map[string]string)
	var digestMu sync.Mutex
	closeLatencies := make([][]float64, cfg.Tenants)
	runIDs := make([]string, cfg.Tenants)
	outcomes := make([]*melody.Outcome, cfg.Tenants)
	concStart := time.Now()
	for round := 1; round <= cfg.Rounds; round++ {
		if err := runPhase(cfg.Tenants, func(i int) error {
			id, err := openAndBid(ctx, sched, cfg, loads[i], round)
			runIDs[i] = id
			return err
		}); err != nil {
			return res, fmt.Errorf("loadgen: concurrent round %d: %w", round, err)
		}
		// Close volley: every tenant closes at once, launch order rotated
		// per round so any positional bias in goroutine wakeup spreads
		// evenly across tenants — the measurement then isolates the gate's
		// ordering from spawn-order luck.
		if err := runPhase(cfg.Tenants, func(k int) error {
			i := (round - 1 + k) % cfg.Tenants
			start := time.Now()
			out, err := sched.CloseAuction(ctx, runIDs[i])
			if err != nil {
				return fmt.Errorf("close %s: %w", runIDs[i], err)
			}
			closeLatencies[i] = append(closeLatencies[i], float64(time.Since(start).Microseconds())/1000)
			outcomes[i] = out
			digestMu.Lock()
			concDigests[runIDs[i]] = coreOutcomeDigest(out)
			digestMu.Unlock()
			return nil
		}); err != nil {
			return res, fmt.Errorf("loadgen: concurrent round %d: %w", round, err)
		}
		if err := runPhase(cfg.Tenants, func(i int) error {
			return scoreAndFinish(ctx, sched, loads[i], runIDs[i], outcomes[i])
		}); err != nil {
			return res, fmt.Errorf("loadgen: concurrent round %d: %w", round, err)
		}
		// Quota invariant at every round boundary, not just the end.
		if err := verify.CheckTenantQuotas(tenantUsages(sched.TenantStatuses())); err != nil {
			return res, fmt.Errorf("loadgen: round %d: %w", round, err)
		}
	}
	res.ConcurrentSeconds = time.Since(concStart).Seconds()

	// Serial-equivalence: the gate may reorder waiting, never outcomes.
	res.OutcomesMatch = true
	if len(concDigests) != len(serialDigests) {
		return res, fmt.Errorf("loadgen: digest count mismatch: serial %d, concurrent %d",
			len(serialDigests), len(concDigests))
	}
	for id, sd := range serialDigests {
		if concDigests[id] != sd {
			res.OutcomesMatch = false
			return res, fmt.Errorf("loadgen: run %s outcome diverged between serial and gated passes", id)
		}
	}

	// Fairness: max/min per-tenant median close latency.
	minMs, maxMs := math.Inf(1), 0.0
	for _, lats := range closeLatencies {
		m := median(lats)
		minMs = math.Min(minMs, m)
		maxMs = math.Max(maxMs, m)
	}
	res.MinMedianCloseMs, res.MaxMedianCloseMs = minMs, maxMs
	res.FairnessRatio = maxMs / math.Max(minMs, closeLatencyFloorMs)

	// Money: scheduler spend accounting must match the ledger's requester
	// outflow exactly, and the standard conservation checks must hold.
	funding := cfg.Budget * float64(cfg.Tenants*cfg.Rounds)
	var totalSpent float64
	for _, st := range sched.TenantStatuses() {
		totalSpent += st.Spent
	}
	outflow := funding - money.Balance(melody.RequesterAccount)
	tol := math.Max(verify.SumTol, verify.SumTol*funding)
	res.SpentMatchesLedger = math.Abs(totalSpent-outflow) <= tol
	if !res.SpentMatchesLedger {
		return res, fmt.Errorf("loadgen: tenant spend %v does not match ledger outflow %v", totalSpent, outflow)
	}
	if err := verify.CheckMoneyConservation(money); err != nil {
		return res, err
	}
	if err := verify.CheckSettlementDrained(money); err != nil {
		return res, err
	}

	// Quota enforcement: lower every tenant's quota to its realized spend;
	// the next open must be refused with the typed sentinel.
	for _, wl := range loads {
		st, err := sched.TenantStatus(wl.tenant)
		if err != nil {
			return res, fmt.Errorf("loadgen: status %s: %w", wl.tenant, err)
		}
		policy := melody.UnlimitedTenantPolicy()
		policy.BudgetQuota = st.Spent
		policy.Weight = 1
		if err := sched.SetTenantPolicy(ctx, wl.tenant, policy); err != nil {
			return res, fmt.Errorf("loadgen: lower quota %s: %w", wl.tenant, err)
		}
		err = sched.OpenRun(ctx, wl.tenant+"-over", wl.tenant,
			[]melody.Task{{ID: wl.tenant + "-over-t0", Threshold: 10}}, cfg.Budget)
		if !errors.Is(err, melody.ErrQuotaExceeded) {
			return res, fmt.Errorf("loadgen: over-quota open on %s: got %v, want ErrQuotaExceeded", wl.tenant, err)
		}
		res.QuotaRefusals++
	}
	if err := verify.CheckTenantQuotas(tenantUsages(sched.TenantStatuses())); err != nil {
		return res, err
	}

	// Durability: quotas and usage must survive WAL replay.
	replayOK, err := fairnessReplayCheck(cfg)
	if err != nil {
		return res, err
	}
	res.ReplayConsistent = replayOK

	if res.FairnessRatio > cfg.MaxRatio {
		return res, fmt.Errorf("loadgen: fairness ratio %.2f exceeds %.2f (medians %.3f..%.3f ms)",
			res.FairnessRatio, cfg.MaxRatio, minMs, maxMs)
	}
	return res, nil
}

// fairnessReplayCheck drives a small WAL-backed season (2 tenants, 2 runs
// each), lowers one tenant's quota below its next open, and verifies that
// a fresh scheduler replayed from the log reconstructs identical tenant
// statuses — policies included — and still refuses the over-quota open.
func fairnessReplayCheck(cfg FairnessConfig) (bool, error) {
	dir, err := os.MkdirTemp("", "melody-fairness-")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "fairness.wal")

	const tenants, rounds = 2, 2
	small := cfg
	small.Tenants, small.Rounds = tenants, rounds
	if small.WorkersPerTenant > 8 {
		small.WorkersPerTenant = 8
	}
	loads := buildWorkloads(MultiRunConfig{
		Tenants: tenants, WorkersPerTenant: small.WorkersPerTenant, Seed: small.Seed,
	}.withDefaults())
	ctx := context.Background()

	sched, _, err := newFairnessScheduler(small, 0)
	if err != nil {
		return false, err
	}
	ps, wal, err := eventlog.OpenPersistentScheduler(path, sched, eventlog.Options{SyncEveryAppend: true})
	if err != nil {
		return false, err
	}
	for _, wl := range loads {
		policy := melody.UnlimitedTenantPolicy()
		policy.BudgetQuota = small.Budget * float64(rounds)
		if err := ps.SetTenantPolicy(ctx, wl.tenant, policy); err != nil {
			return false, err
		}
		for _, w := range wl.workers {
			if err := ps.RegisterWorker(ctx, w); err != nil {
				return false, err
			}
		}
	}
	for _, wl := range loads {
		for round := 1; round <= rounds; round++ {
			runID := fmt.Sprintf("%s-r%d", wl.tenant, round)
			tasks := make([]melody.Task, small.Tasks)
			for j := range tasks {
				tasks[j] = melody.Task{ID: fmt.Sprintf("%s-t%d", runID, j), Threshold: 10}
			}
			if err := ps.OpenRun(ctx, runID, wl.tenant, tasks, small.Budget); err != nil {
				return false, err
			}
			for i, w := range wl.workers {
				if err := ps.SubmitBid(ctx, runID, w, melody.Bid{Cost: wl.costs[i], Frequency: 1}); err != nil {
					return false, err
				}
			}
			out, err := ps.CloseAuction(ctx, runID)
			if err != nil {
				return false, err
			}
			scores := make([]melody.TaskScore, 0, len(out.Assignments))
			for _, asg := range out.Assignments {
				scores = append(scores, melody.TaskScore{
					WorkerID: asg.WorkerID, TaskID: asg.TaskID,
					Score: detScore(wl.tenant, runID, asg.WorkerID, asg.TaskID),
				})
			}
			if len(scores) > 0 {
				if err := ps.SubmitScores(ctx, runID, scores).Err(); err != nil {
					return false, err
				}
			}
			if err := ps.FinishRun(ctx, runID); err != nil {
				return false, err
			}
		}
	}
	// Lower tenant0's quota to its spend (a logged policy event) and show
	// the next open is refused — this refusal is what replay must preserve.
	victim := loads[0].tenant
	st, err := ps.TenantStatus(victim)
	if err != nil {
		return false, err
	}
	lowered := melody.UnlimitedTenantPolicy()
	lowered.BudgetQuota = st.Spent
	if err := ps.SetTenantPolicy(ctx, victim, lowered); err != nil {
		return false, err
	}
	overTasks := []melody.Task{{ID: victim + "-over-t0", Threshold: 10}}
	if err := ps.OpenRun(ctx, victim+"-over", victim, overTasks, small.Budget); !errors.Is(err, melody.ErrQuotaExceeded) {
		return false, fmt.Errorf("loadgen: pre-replay over-quota open: got %v, want ErrQuotaExceeded", err)
	}
	before := ps.TenantStatuses()
	if err := wal.Close(); err != nil {
		return false, err
	}

	replayed, _, err := newFairnessScheduler(small, 0)
	if err != nil {
		return false, err
	}
	ps2, wal2, err := eventlog.OpenPersistentScheduler(path, replayed, eventlog.Options{SyncEveryAppend: true})
	if err != nil {
		return false, fmt.Errorf("loadgen: replay: %w", err)
	}
	defer wal2.Close()
	after := ps2.TenantStatuses()
	if len(before) != len(after) {
		return false, fmt.Errorf("loadgen: replay tenant count %d, want %d", len(after), len(before))
	}
	for i := range before {
		if !sameTenantStatus(before[i], after[i]) {
			return false, fmt.Errorf("loadgen: replay diverged for tenant %s: %+v vs %+v",
				before[i].Tenant, before[i], after[i])
		}
	}
	if err := verify.CheckTenantQuotas(tenantUsages(after)); err != nil {
		return false, err
	}
	if err := ps2.OpenRun(ctx, victim+"-over", victim, overTasks, small.Budget); !errors.Is(err, melody.ErrQuotaExceeded) {
		return false, fmt.Errorf("loadgen: post-replay over-quota open: got %v, want ErrQuotaExceeded", err)
	}
	return true, nil
}

// sameTenantStatus compares two tenant statuses field by field, with a
// small tolerance on the money floats (replay recomputes them through the
// identical arithmetic, but the comparison should not hinge on that).
func sameTenantStatus(a, b melody.TenantStatus) bool {
	const tol = 1e-9
	return a.Tenant == b.Tenant &&
		a.HasPolicy == b.HasPolicy &&
		a.Policy == b.Policy &&
		math.Abs(a.Spent-b.Spent) <= tol &&
		math.Abs(a.EpochSpent-b.EpochSpent) <= tol &&
		math.Abs(a.Escrowed-b.Escrowed) <= tol &&
		a.RunsOpened == b.RunsOpened &&
		a.OpenRun == b.OpenRun
}
