// Package loadgen drives the HTTP serving path end to end under load: it
// boots a real platform server on a loopback listener, runs N concurrent
// worker clients through complete seasons (bid, close, score, finish), and
// reports sustained bid-ingest throughput with latency percentiles. It is
// the measurement engine behind cmd/melody-load and the serve/ kernels in
// cmd/melody-bench.
//
// Two drive modes share one harness: Run is the closed-loop mode (every
// worker waits for its previous request), RunOverload is the open-loop mode
// (arrivals fire on a schedule regardless of completions) used to push a
// server past its capacity and watch admission control shed. AssertSLO
// turns either result into a pass/fail service-level gate for CI.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"melody"
	"melody/internal/eventlog"
	"melody/internal/obs"
	"melody/internal/platform"
	"melody/internal/stats"
)

// Backend selects what the server persists to.
const (
	// BackendMem serves from the in-memory platform: no durability, the
	// ceiling of the serving path.
	BackendMem = "mem"
	// BackendWAL serves from the write-ahead-logged platform with the
	// group-commit pipeline (the production -wal configuration).
	BackendWAL = "wal"
	// BackendWALSerial is the pre-group-commit baseline: one fsync per
	// append. Kept for before/after throughput comparisons.
	BackendWALSerial = "wal-serial"
)

// Config parameterizes a load run.
type Config struct {
	// Backend is BackendMem, BackendWAL or BackendWALSerial.
	Backend string
	// WALDir is where WAL backends put their log file; empty means a fresh
	// temporary directory, removed when the run ends.
	WALDir string
	// Workers is the number of concurrent worker clients.
	Workers int
	// Runs is the number of complete runs (seasons of 1) to drive.
	Runs int
	// Tasks is the number of tasks per run.
	Tasks int
	// Budget is the per-run budget.
	Budget float64
	// BidsPerWorker is how many bids each worker submits per run; bids
	// after the first are resubmissions (the platform replaces them), which
	// keeps the ingest path hot without distorting the auction.
	BidsPerWorker int
	// Batch groups each worker's bids into batch round trips of this size;
	// values <= 1 use the single-bid endpoint.
	Batch int
	// Seed drives every random choice, so a run is reproducible.
	Seed int64
	// Observe instruments the whole stack (server, WAL, auction, client)
	// with an obs registry and span ring, scrapes GET /metrics over the real
	// listener after the run, and attaches the scrape plus a span summary to
	// the Result.
	Observe bool

	// Admission arms server-side admission control; nil serves ungated.
	// With a gate armed, shed bids are counted in Result.Shed instead of
	// failing the run.
	Admission *platform.AdmissionConfig
	// Adaptive arms the load clients' AIMD concurrency window; nil leaves
	// client concurrency fixed.
	Adaptive *platform.AdaptiveConfig
	// Retry overrides the load clients' retry policy; nil keeps the client
	// default. Overload measurements usually want MaxAttempts 1 so a shed
	// is counted once rather than retried into acceptance.
	Retry *platform.RetryPolicy
	// Tenant is sent as the X-Melody-Tenant header by the load clients,
	// engaging per-tenant rate limits when Admission configures them.
	Tenant string
	// Ledger attaches a funded double-entry ledger to the platform so every
	// run escrows, pays and refunds real money — the state the money
	// conservation invariants check after an overload run.
	Ledger bool
	// WrapHandler, when non-nil, wraps the outermost HTTP handler — the
	// hook the chaos middleware uses to combine fault injection with
	// overload.
	WrapHandler func(http.Handler) http.Handler
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = BackendMem
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Tasks <= 0 {
		c.Tasks = 4
	}
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.BidsPerWorker <= 0 {
		c.BidsPerWorker = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Latency summarizes per-request latencies in milliseconds.
type Latency struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Result is what a load run measured.
type Result struct {
	Backend string `json:"backend"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	// Bids is the total number of bids the platform accepted across all
	// runs. Without admission control every attempted bid is accepted.
	Bids int `json:"bids"`
	// Shed is the number of bids admission control refused with 429.
	Shed int `json:"shed,omitempty"`
	// BidPhaseSeconds is the wall-clock time spent in bidding phases.
	BidPhaseSeconds float64 `json:"bid_phase_seconds"`
	// BidsPerSec is sustained ingest throughput: Bids / BidPhaseSeconds.
	BidsPerSec float64 `json:"bids_per_sec"`
	// Latency summarizes the bid submission round trips (one batch POST is
	// one sample).
	Latency Latency `json:"latency"`
	// ElapsedSeconds is the whole run including scoring and finishing.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Metrics is the post-run GET /metrics scrape parsed into series
	// (populated only with Config.Observe).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// TraceSummary aggregates the retained spans by name (populated only
	// with Config.Observe).
	TraceSummary []obs.SpanStat `json:"trace_summary,omitempty"`
	// ClientRetries counts transport-level retries the load clients made
	// (populated only with Config.Observe).
	ClientRetries int64 `json:"client_retries,omitempty"`
}

// harness is one booted serving stack: platform (optionally WAL-backed and
// ledger-funded), HTTP server on a real loopback listener, and a shared
// client transport. Both drive modes build on it.
type harness struct {
	cfg      Config
	registry *obs.Registry
	tracer   *obs.Tracer
	plat     *melody.Platform
	money    *melody.Ledger // nil without Config.Ledger
	addr     string

	httpSrv   *http.Server
	serveErr  chan error
	transport *http.Transport
	cleanups  []func() // run LIFO by close()
	closed    bool
}

// startHarness boots the serving stack for cfg. Callers must call close()
// (idempotent); shutdown() first for a verified graceful stop.
func startHarness(cfg Config) (*harness, error) {
	h := &harness{cfg: cfg}
	if cfg.Observe {
		h.registry = obs.NewRegistry()
		obs.RegisterBaseline(h.registry)
		h.tracer = obs.NewTracer(4096)
	}

	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 60,
		Metrics: h.registry,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Ledger {
		h.money = melody.NewLedger()
		// Fund the requester for every run's escrow up front; finishes
		// refund what the auction did not spend.
		if _, err := h.money.Deposit(melody.RequesterAccount, cfg.Budget*float64(cfg.Runs), "loadgen funding"); err != nil {
			return nil, err
		}
	}
	h.plat, err = melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
		Ledger:    h.money,
		Metrics:   h.registry,
		Tracer:    h.tracer,
	})
	if err != nil {
		return nil, err
	}

	var backend platform.Backend = h.plat
	switch cfg.Backend {
	case BackendMem:
	case BackendWAL, BackendWALSerial:
		dir := cfg.WALDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "melody-load-*")
			if err != nil {
				return nil, err
			}
			h.cleanups = append(h.cleanups, func() { os.RemoveAll(tmp) })
			dir = tmp
		}
		opts := eventlog.Options{
			SyncEveryAppend: true,
			SerialCommit:    cfg.Backend == BackendWALSerial,
			Metrics:         h.registry,
			Tracer:          h.tracer,
		}
		pp, wal, err := eventlog.OpenPersistentOptions(filepath.Join(dir, "load.wal"), h.plat, opts)
		if err != nil {
			h.close()
			return nil, err
		}
		h.cleanups = append(h.cleanups, func() { wal.Close() })
		backend = pp
	default:
		h.close()
		return nil, fmt.Errorf("loadgen: unknown backend %q", cfg.Backend)
	}

	srvOpts := []platform.ServerOption{
		platform.WithMetrics(h.registry), platform.WithTracer(h.tracer),
	}
	if cfg.Admission != nil {
		srvOpts = append(srvOpts, platform.WithAdmission(*cfg.Admission))
	}
	srv, err := platform.NewServer(backend, nil, srvOpts...)
	if err != nil {
		h.close()
		return nil, err
	}
	handler := http.Handler(srv.Handler())
	if cfg.Observe {
		// The exposition endpoints share the API listener here: loadgen
		// scrapes its own server, the way the smoke test curls a platform.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle("GET /metrics", obs.MetricsHandler(h.registry))
		mux.Handle("GET /debug/traces", obs.TracesHandler(h.tracer))
		handler = mux
	}
	if cfg.WrapHandler != nil {
		handler = cfg.WrapHandler(handler)
	}
	// A real TCP listener, not httptest: loadgen also runs inside the
	// non-test melody-load binary.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.close()
		return nil, err
	}
	h.addr = ln.Addr().String()
	h.httpSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	h.serveErr = make(chan error, 1)
	go func() { h.serveErr <- h.httpSrv.Serve(ln) }()

	h.transport = &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	return h, nil
}

// client builds a platform client against the harness server, wired to the
// harness observability and the Config's retry/adaptive/tenant knobs.
func (h *harness) client() (*platform.Client, error) {
	return platform.NewClientOptions("http://"+h.addr, platform.ClientOptions{
		HTTPClient: &http.Client{Transport: h.transport, Timeout: 30 * time.Second},
		Metrics:    h.registry,
		Tracer:     h.tracer,
		Retry:      h.cfg.Retry,
		Adaptive:   h.cfg.Adaptive,
		Tenant:     h.cfg.Tenant,
	})
}

// controlClient is the requester-side client: no tenant identity and no
// adaptive window, so control-plane traffic is never entangled with the
// load clients' budgets. (The server exempts the control plane anyway;
// this keeps the measurement honest too.)
func (h *harness) controlClient() (*platform.Client, error) {
	return platform.NewClientOptions("http://"+h.addr, platform.ClientOptions{
		HTTPClient: &http.Client{Transport: h.transport, Timeout: 30 * time.Second},
		Metrics:    h.registry,
		Tracer:     h.tracer,
	})
}

// shutdown stops the server gracefully and verifies Serve exited clean.
func (h *harness) shutdown() error {
	// Drop the client's keep-alive connections first — a speculatively
	// dialed conn that never carried a request sits in StateNew on the
	// server and would otherwise hold Shutdown until its read deadline.
	h.transport.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("loadgen: shutdown: %w", err)
	}
	if err := <-h.serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("loadgen: serve: %w", err)
	}
	h.serveErr = nil
	return nil
}

// close releases everything the harness holds; safe to call twice and
// after shutdown.
func (h *harness) close() {
	if h.closed {
		return
	}
	h.closed = true
	if h.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = h.httpSrv.Shutdown(ctx)
		cancel()
		if h.serveErr != nil {
			<-h.serveErr
		}
	}
	if h.transport != nil {
		h.transport.CloseIdleConnections()
	}
	for i := len(h.cleanups) - 1; i >= 0; i-- {
		h.cleanups[i]()
	}
	h.cleanups = nil
}

// scrape fetches the harness's own /metrics endpoint (Observe only).
func (h *harness) scrape() (map[string]float64, error) {
	return scrapeMetrics("http://" + h.addr + "/metrics")
}

// Run executes one closed-loop load run and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	h, err := startHarness(cfg)
	if err != nil {
		return Result{}, err
	}
	defer h.close()

	client, err := h.client()
	if err != nil {
		return Result{}, err
	}
	control, err := h.controlClient()
	if err != nil {
		return Result{}, err
	}

	ctx := context.Background()
	rng := stats.NewRNG(cfg.Seed)
	workerIDs := make([]string, cfg.Workers)
	costs := make([]float64, cfg.Workers)
	for i := range workerIDs {
		workerIDs[i] = fmt.Sprintf("w%04d", i)
		costs[i] = rng.Uniform(1, 2) // within the qualification range [1, 2]
		if err := control.RegisterWorker(ctx, workerIDs[i]); err != nil {
			return Result{}, fmt.Errorf("loadgen: register %s: %w", workerIDs[i], err)
		}
	}

	res := Result{Backend: cfg.Backend, Workers: cfg.Workers, Runs: cfg.Runs}
	var latMu sync.Mutex
	var latencies []float64 // ms per submission round trip
	var accepted, shed atomic.Int64

	start := time.Now()
	for run := 1; run <= cfg.Runs; run++ {
		tasks := make([]platform.TaskSpec, cfg.Tasks)
		for j := range tasks {
			tasks[j] = platform.TaskSpec{ID: fmt.Sprintf("r%d-t%d", run, j), Threshold: 10}
		}
		if err := control.OpenRun(ctx, tasks, cfg.Budget); err != nil {
			return Result{}, fmt.Errorf("loadgen: open run %d: %w", run, err)
		}

		// Bid phase: every worker hammers the ingest path concurrently. A
		// 429 shed is part of the measurement, not a failure; anything else
		// aborts the run.
		bidStart := time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id, cost := workerIDs[i], costs[i]
				local := make([]float64, 0, cfg.BidsPerWorker)
				if cfg.Batch > 1 {
					for done := 0; done < cfg.BidsPerWorker; {
						n := cfg.Batch
						if rem := cfg.BidsPerWorker - done; n > rem {
							n = rem
						}
						reqs := make([]platform.BidRequest, n)
						for k := range reqs {
							reqs[k] = platform.BidRequest{WorkerID: id, Cost: cost, Frequency: 1}
						}
						t0 := time.Now()
						res, err := client.SubmitBids(ctx, reqs)
						switch {
						case err == nil:
							local = append(local, float64(time.Since(t0).Microseconds())/1000)
							if err := res.Err(); err != nil {
								errCh <- err
								return
							}
							accepted.Add(int64(n))
						case errors.Is(err, melody.ErrOverloaded):
							shed.Add(int64(n))
						default:
							errCh <- err
							return
						}
						done += n
					}
				} else {
					for k := 0; k < cfg.BidsPerWorker; k++ {
						t0 := time.Now()
						err := client.SubmitBid(ctx, id, cost, 1)
						switch {
						case err == nil:
							local = append(local, float64(time.Since(t0).Microseconds())/1000)
							accepted.Add(1)
						case errors.Is(err, melody.ErrOverloaded):
							shed.Add(1)
						default:
							errCh <- err
							return
						}
					}
				}
				latMu.Lock()
				latencies = append(latencies, local...)
				latMu.Unlock()
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return Result{}, fmt.Errorf("loadgen: bid phase run %d: %w", run, err)
		default:
		}
		res.BidPhaseSeconds += time.Since(bidStart).Seconds()

		out, err := control.CloseAuction(ctx)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: close run %d: %w", run, err)
		}
		scores := make([]platform.ScoreRequest, 0, len(out.Assignments))
		for _, asg := range out.Assignments {
			scores = append(scores, platform.ScoreRequest{
				WorkerID: asg.WorkerID, TaskID: asg.TaskID, Score: rng.Uniform(1, 10),
			})
		}
		if len(scores) > 0 {
			res, err := control.SubmitScores(ctx, scores)
			if err != nil {
				return Result{}, fmt.Errorf("loadgen: score run %d: %w", run, err)
			}
			if err := res.Err(); err != nil {
				return Result{}, fmt.Errorf("loadgen: score run %d: %w", run, err)
			}
		}
		if err := control.FinishRun(ctx); err != nil {
			return Result{}, fmt.Errorf("loadgen: finish run %d: %w", run, err)
		}
	}
	res.ElapsedSeconds = time.Since(start).Seconds()
	res.Bids = int(accepted.Load())
	res.Shed = int(shed.Load())
	if res.BidPhaseSeconds > 0 {
		res.BidsPerSec = float64(res.Bids) / res.BidPhaseSeconds
	}

	// A run where admission shed everything has no samples; that is a
	// measurement (melody-load turns it into a failing exit), not an error.
	if len(latencies) > 0 || res.Shed == 0 {
		res.Latency, err = summarize(latencies)
		if err != nil {
			return Result{}, err
		}
	}

	if cfg.Observe {
		series, err := h.scrape()
		if err != nil {
			return Result{}, err
		}
		res.Metrics = series
		res.TraceSummary = obs.Summarize(h.tracer.Spans())
		res.ClientRetries = h.registry.Counter(obs.MetricClientRetriesTotal, "").Value()
	}

	// The server must come down cleanly: Shutdown makes Serve return
	// ErrServerClosed, anything else is a failure worth surfacing.
	if err := h.shutdown(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// scrapeMetrics fetches and parses a Prometheus text exposition.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape metrics: HTTP %d", resp.StatusCode)
	}
	series, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape metrics: %w", err)
	}
	return series, nil
}

// summarize reduces round-trip latencies (ms) to percentiles.
func summarize(ms []float64) (Latency, error) {
	if len(ms) == 0 {
		return Latency{}, errors.New("loadgen: no latency samples")
	}
	l := Latency{N: len(ms)}
	for _, q := range []struct {
		q   float64
		dst *float64
	}{{0.50, &l.P50}, {0.95, &l.P95}, {0.99, &l.P99}, {1.0, &l.Max}} {
		v, err := stats.Quantile(ms, q.q)
		if err != nil {
			return Latency{}, err
		}
		*q.dst = v
	}
	return l, nil
}
