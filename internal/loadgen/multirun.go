package loadgen

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"melody"
	"melody/internal/eventlog"
	"melody/internal/platform"
	"melody/internal/stats"
	"melody/internal/verify"
)

// MultiRunConfig parameterizes the mixed-tenant multi-run scenario: N
// tenants, each driving its own sequence of runs against one run-scheduler
// server, with every tenant's traffic (open, bids, close, scores, finish)
// interleaving with every other's.
type MultiRunConfig struct {
	// Tenants is the number of concurrent tenants; each maps to one
	// estimator and one run sequence on the scheduler.
	Tenants int
	// RunsPerTenant is how many complete runs each tenant drives. Runs
	// within a tenant are sequential (the scheduler enforces it); runs
	// across tenants overlap freely.
	RunsPerTenant int
	// WorkersPerTenant is how many workers bid in each tenant's runs.
	// Worker IDs are disjoint across tenants ("t<i>w<j>"), so each
	// tenant's auction sees only its own bidders.
	WorkersPerTenant int
	// Tasks is the number of tasks per run.
	Tasks int
	// Budget is the per-run budget.
	Budget float64
	// BidsPerWorker is how many bids each worker submits per run
	// (resubmissions after the first, keeping ingest hot).
	BidsPerWorker int
	// Batch groups bids into batch round trips; <= 1 uses single bids.
	Batch int
	// Seed drives every random choice; both passes reuse the same draws,
	// so serial and concurrent executions see identical inputs.
	Seed int64
	// EpochEvery batches payouts into settlement epochs of this many
	// finished runs; 0 settles per run.
	EpochEvery int
	// CloseConcurrency bounds auction closes running at once through the
	// scheduler's weighted-fair gate; 0 leaves closes ungated.
	CloseConcurrency int
	// Backend is BackendMem (default) or BackendWAL. With BackendWAL every
	// mutation is appended to a durable event log before acknowledging, and
	// concurrent tenants amortize fsyncs through group commit — the goodput
	// gap between the serial and concurrent passes then measures how much
	// of the commit cost overlapping runs can share.
	Backend string
	// WALDir hosts the per-pass event logs; a temp dir when empty.
	WALDir string
	// Direct drives the scheduler backend in-process instead of over HTTP.
	// This isolates the scheduler's own concurrency (no shared phase lock,
	// striped registry, group-commit WAL) from HTTP serving overhead — on a
	// small machine the HTTP path's per-request CPU can mask most of what
	// overlapping runs buy.
	Direct bool
}

// withDefaults fills zero fields.
func (c MultiRunConfig) withDefaults() MultiRunConfig {
	if c.Tenants <= 0 {
		c.Tenants = 2
	}
	if c.RunsPerTenant <= 0 {
		c.RunsPerTenant = 4
	}
	if c.WorkersPerTenant <= 0 {
		c.WorkersPerTenant = 8
	}
	if c.Tasks <= 0 {
		c.Tasks = 3
	}
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.BidsPerWorker <= 0 {
		c.BidsPerWorker = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.EpochEvery < 0 {
		c.EpochEvery = 0
	}
	if c.Backend == "" {
		c.Backend = BackendMem
	}
	return c
}

// MultiRunResult is what the multirun scenario measured. The scenario runs
// the identical workload twice against fresh schedulers — tenants one
// after another (serial), then all tenants at once (concurrent) — and
// compares wall-clock goodput and per-run outcomes between the passes.
type MultiRunResult struct {
	Tenants       int `json:"tenants"`
	RunsPerTenant int `json:"runs_per_tenant"`
	TotalRuns     int `json:"total_runs"`
	// Bids is the number of accepted bids per pass.
	Bids int `json:"bids"`
	// SerialSeconds and ConcurrentSeconds are each pass's wall time.
	SerialSeconds     float64 `json:"serial_seconds"`
	ConcurrentSeconds float64 `json:"concurrent_seconds"`
	// SerialRunsPerSec and ConcurrentRunsPerSec are goodput: completed
	// runs per second of wall time.
	SerialRunsPerSec     float64 `json:"serial_runs_per_sec"`
	ConcurrentRunsPerSec float64 `json:"concurrent_runs_per_sec"`
	// Speedup is concurrent goodput over serial goodput.
	Speedup float64 `json:"speedup"`
	// OutcomesMatch reports whether every run's outcome digest (the full
	// assignment list with %.17g payments) was byte-identical between the
	// serial and concurrent passes — the serial-equivalence property of
	// per-tenant mechanism isolation.
	OutcomesMatch bool `json:"outcomes_match"`
	// Epochs is how many payout epochs the concurrent pass settled.
	Epochs int `json:"epochs"`
}

// multiStack is one booted run-scheduler serving stack.
type multiStack struct {
	sched     *melody.RunScheduler
	money     *melody.Ledger
	backend   platform.MultiRunBackend
	wal       *eventlog.Log
	walTmp    string
	addr      string
	httpSrv   *http.Server
	serveErr  chan error
	transport *http.Transport
}

// startMultiStack boots a fresh scheduler (its own estimators, registry
// and funded ledger) behind a multi-run HTTP server on a loopback
// listener. With BackendWAL the scheduler is wrapped in a
// PersistentScheduler over a group-commit event log, so every mutation
// pays for durability before acknowledging.
func startMultiStack(cfg MultiRunConfig, pass string) (*multiStack, error) {
	money := melody.NewLedger()
	funding := cfg.Budget * float64(cfg.Tenants*cfg.RunsPerTenant)
	if _, err := money.Deposit(melody.RequesterAccount, funding, "multirun funding"); err != nil {
		return nil, err
	}
	sched, err := melody.NewRunScheduler(melody.SchedulerConfig{
		Auction: melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		NewEstimator: func(string) (melody.Estimator, error) {
			return melody.NewQualityTracker(melody.QualityTrackerConfig{
				InitialMean: 5.5, InitialVar: 2.25,
				Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
				EMPeriod: 10, EMWindow: 60,
			})
		},
		Ledger:           money,
		EpochEvery:       cfg.EpochEvery,
		CloseConcurrency: cfg.CloseConcurrency,
	})
	if err != nil {
		return nil, err
	}
	// Every tenant gets a lifetime budget quota of exactly its season
	// (runs x budget): the workload fits, and the verify checker below can
	// hold the scheduler's spend accounting to a real bound.
	for i := 0; i < cfg.Tenants; i++ {
		policy := melody.UnlimitedTenantPolicy()
		policy.BudgetQuota = cfg.Budget * float64(cfg.RunsPerTenant)
		if err := sched.SetTenantPolicy(context.Background(), fmt.Sprintf("tenant%d", i), policy); err != nil {
			return nil, err
		}
	}
	st := &multiStack{sched: sched, money: money}
	var backend platform.MultiRunBackend = sched
	if cfg.Backend == BackendWAL {
		dir := cfg.WALDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "melody-multirun-")
			if err != nil {
				return nil, err
			}
			st.walTmp = tmp
			dir = tmp
		}
		wal, err := eventlog.OpenOptions(filepath.Join(dir, pass+".wal"), eventlog.Options{SyncEveryAppend: true})
		if err != nil {
			st.cleanup()
			return nil, err
		}
		st.wal = wal
		ps, err := eventlog.NewPersistentScheduler(sched, wal)
		if err != nil {
			st.cleanup()
			return nil, err
		}
		backend = ps
	}
	st.backend = backend
	if cfg.Direct {
		return st, nil
	}
	srv, err := platform.NewMultiServer(backend, nil)
	if err != nil {
		st.cleanup()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.cleanup()
		return nil, err
	}
	st.addr = ln.Addr().String()
	st.httpSrv = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	st.serveErr = make(chan error, 1)
	st.transport = &http.Transport{
		MaxIdleConns:        cfg.Tenants * 4,
		MaxIdleConnsPerHost: cfg.Tenants * 4,
	}
	go func() { st.serveErr <- st.httpSrv.Serve(ln) }()
	return st, nil
}

// cleanup releases the stack's non-server resources (log, temp dir).
func (st *multiStack) cleanup() {
	if st.wal != nil {
		_ = st.wal.Close()
		st.wal = nil
	}
	if st.walTmp != "" {
		_ = os.RemoveAll(st.walTmp)
		st.walTmp = ""
	}
}

// stop shuts the stack down gracefully and verifies Serve exited clean.
func (st *multiStack) stop() error {
	if st.httpSrv == nil {
		st.cleanup()
		return nil
	}
	st.transport.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("loadgen: multirun shutdown: %w", err)
	}
	if err := <-st.serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("loadgen: multirun serve: %w", err)
	}
	st.cleanup()
	return nil
}

// client builds a tenant-scoped client against the stack.
func (st *multiStack) client(tenant string) (*platform.Client, error) {
	return platform.NewClientOptions("http://"+st.addr, platform.ClientOptions{
		HTTPClient: &http.Client{Transport: st.transport, Timeout: 30 * time.Second},
		Tenant:     tenant,
	})
}

// detScore is the deterministic score for (tenant, run, worker, task):
// a hash mapped into the quality range [1, 10]. Determinism is what makes
// the serial and concurrent passes produce comparable quality
// trajectories — and therefore byte-identical outcomes.
func detScore(tenant, runID, worker, task string) float64 {
	h := fnv.New64a()
	for _, s := range []string{tenant, "\x00", runID, "\x00", worker, "\x00", task} {
		_, _ = h.Write([]byte(s))
	}
	return 1 + 9*float64(h.Sum64()%100000)/100000
}

// outcomeDigest flattens an outcome for cross-pass comparison. The
// platform emits assignments in deterministic order, so the digest is
// simply the full list with %.17g payments (exact float identity).
func outcomeDigest(out platform.OutcomeResponse) string {
	var b strings.Builder
	for _, a := range out.Assignments {
		fmt.Fprintf(&b, "%s/%s=%.17g;", a.TaskID, a.WorkerID, a.Payment)
	}
	fmt.Fprintf(&b, "total=%.17g", out.TotalPayment)
	return b.String()
}

// coreOutcomeDigest is outcomeDigest for the in-process outcome type.
func coreOutcomeDigest(out *melody.Outcome) string {
	var b strings.Builder
	for _, a := range out.Assignments {
		fmt.Fprintf(&b, "%s/%s=%.17g;", a.TaskID, a.WorkerID, a.Payment)
	}
	fmt.Fprintf(&b, "total=%.17g", out.TotalPayment)
	return b.String()
}

// tenantWorkload is one tenant's precomputed inputs, shared by both
// passes so they drive identical bids.
type tenantWorkload struct {
	tenant  string
	workers []string
	costs   []float64
}

// buildWorkloads draws every tenant's worker costs from a per-tenant RNG,
// so the inputs do not depend on scheduling order.
func buildWorkloads(cfg MultiRunConfig) []tenantWorkload {
	loads := make([]tenantWorkload, cfg.Tenants)
	for i := range loads {
		rng := stats.NewRNG(cfg.Seed + int64(i)*7919)
		wl := tenantWorkload{tenant: fmt.Sprintf("tenant%d", i)}
		for j := 0; j < cfg.WorkersPerTenant; j++ {
			wl.workers = append(wl.workers, fmt.Sprintf("t%dw%03d", i, j))
			wl.costs = append(wl.costs, rng.Uniform(1, 2))
		}
		loads[i] = wl
	}
	return loads
}

// driveTenant runs one tenant's full run sequence over HTTP and returns
// digest-per-runID plus the number of accepted bids.
func driveTenant(ctx context.Context, client *platform.Client, cfg MultiRunConfig, wl tenantWorkload, digests *sync.Map) (int, error) {
	bids := 0
	for runIdx := 1; runIdx <= cfg.RunsPerTenant; runIdx++ {
		runID := fmt.Sprintf("%s-r%d", wl.tenant, runIdx)
		tasks := make([]platform.TaskSpec, cfg.Tasks)
		for j := range tasks {
			tasks[j] = platform.TaskSpec{ID: fmt.Sprintf("%s-t%d", runID, j), Threshold: 10}
		}
		run, err := client.OpenRunID(ctx, runID, wl.tenant, tasks, cfg.Budget)
		if err != nil {
			return bids, fmt.Errorf("open %s: %w", runID, err)
		}
		// Bid phase: all of the tenant's workers bid, with resubmissions
		// keeping the ingest path hot.
		for k := 0; k < cfg.BidsPerWorker; k++ {
			if cfg.Batch > 1 {
				reqs := make([]platform.BidRequest, len(wl.workers))
				for i, w := range wl.workers {
					reqs[i] = platform.BidRequest{WorkerID: w, Cost: wl.costs[i], Frequency: 1}
				}
				for lo := 0; lo < len(reqs); lo += cfg.Batch {
					hi := lo + cfg.Batch
					if hi > len(reqs) {
						hi = len(reqs)
					}
					res, err := run.SubmitBids(ctx, reqs[lo:hi])
					if err != nil {
						return bids, fmt.Errorf("bids %s: %w", runID, err)
					}
					if err := res.Err(); err != nil {
						return bids, fmt.Errorf("bids %s: %w", runID, err)
					}
					bids += hi - lo
				}
			} else {
				for i, w := range wl.workers {
					if err := run.SubmitBid(ctx, w, wl.costs[i], 1); err != nil {
						return bids, fmt.Errorf("bid %s %s: %w", runID, w, err)
					}
					bids++
				}
			}
		}
		out, err := run.CloseAuction(ctx)
		if err != nil {
			return bids, fmt.Errorf("close %s: %w", runID, err)
		}
		digests.Store(runID, outcomeDigest(out))
		// Score every assignment deterministically, then finish.
		scores := make([]platform.ScoreRequest, 0, len(out.Assignments))
		for _, asg := range out.Assignments {
			scores = append(scores, platform.ScoreRequest{
				WorkerID: asg.WorkerID, TaskID: asg.TaskID,
				Score: detScore(wl.tenant, runID, asg.WorkerID, asg.TaskID),
			})
		}
		if len(scores) > 0 {
			res, err := run.SubmitScores(ctx, scores)
			if err != nil {
				return bids, fmt.Errorf("scores %s: %w", runID, err)
			}
			if err := res.Err(); err != nil {
				return bids, fmt.Errorf("scores %s: %w", runID, err)
			}
		}
		if err := run.FinishRun(ctx); err != nil {
			return bids, fmt.Errorf("finish %s: %w", runID, err)
		}
	}
	return bids, nil
}

// driveTenantDirect is driveTenant without the HTTP hop: one tenant's
// full run sequence issued straight against the scheduler backend.
func driveTenantDirect(ctx context.Context, be platform.MultiRunBackend, cfg MultiRunConfig, wl tenantWorkload, digests *sync.Map) (int, error) {
	bids := 0
	for runIdx := 1; runIdx <= cfg.RunsPerTenant; runIdx++ {
		runID := fmt.Sprintf("%s-r%d", wl.tenant, runIdx)
		tasks := make([]melody.Task, cfg.Tasks)
		for j := range tasks {
			tasks[j] = melody.Task{ID: fmt.Sprintf("%s-t%d", runID, j), Threshold: 10}
		}
		if err := be.OpenRun(ctx, runID, wl.tenant, tasks, cfg.Budget); err != nil {
			return bids, fmt.Errorf("open %s: %w", runID, err)
		}
		for k := 0; k < cfg.BidsPerWorker; k++ {
			if cfg.Batch > 1 {
				reqs := make([]melody.WorkerBid, len(wl.workers))
				for i, w := range wl.workers {
					reqs[i] = melody.WorkerBid{WorkerID: w, Bid: melody.Bid{Cost: wl.costs[i], Frequency: 1}}
				}
				for lo := 0; lo < len(reqs); lo += cfg.Batch {
					hi := lo + cfg.Batch
					if hi > len(reqs) {
						hi = len(reqs)
					}
					if err := be.SubmitBids(ctx, runID, reqs[lo:hi]).Err(); err != nil {
						return bids, fmt.Errorf("bids %s: %w", runID, err)
					}
					bids += hi - lo
				}
			} else {
				for i, w := range wl.workers {
					if err := be.SubmitBid(ctx, runID, w, melody.Bid{Cost: wl.costs[i], Frequency: 1}); err != nil {
						return bids, fmt.Errorf("bid %s %s: %w", runID, w, err)
					}
					bids++
				}
			}
		}
		out, err := be.CloseAuction(ctx, runID)
		if err != nil {
			return bids, fmt.Errorf("close %s: %w", runID, err)
		}
		digests.Store(runID, coreOutcomeDigest(out))
		scores := make([]melody.TaskScore, 0, len(out.Assignments))
		for _, asg := range out.Assignments {
			scores = append(scores, melody.TaskScore{
				WorkerID: asg.WorkerID, TaskID: asg.TaskID,
				Score: detScore(wl.tenant, runID, asg.WorkerID, asg.TaskID),
			})
		}
		if len(scores) > 0 {
			if err := be.SubmitScores(ctx, runID, scores).Err(); err != nil {
				return bids, fmt.Errorf("scores %s: %w", runID, err)
			}
		}
		if err := be.FinishRun(ctx, runID); err != nil {
			return bids, fmt.Errorf("finish %s: %w", runID, err)
		}
	}
	return bids, nil
}

// multiPass executes the whole workload once — serially (tenant after
// tenant) or concurrently (one goroutine per tenant) — against a fresh
// stack, verifies money conservation and settlement drain, and returns
// the per-run outcome digests, wall time, accepted bids and epoch count.
func multiPass(cfg MultiRunConfig, loads []tenantWorkload, concurrent bool) (map[string]string, float64, int, int, error) {
	pass := "serial"
	if concurrent {
		pass = "concurrent"
	}
	st, err := startMultiStack(cfg, pass)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	stopped := false
	defer func() {
		if stopped {
			return
		}
		if st.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = st.httpSrv.Shutdown(ctx)
			cancel()
		}
		st.cleanup()
	}()
	ctx := context.Background()
	var clients []*platform.Client
	if cfg.Direct {
		for _, wl := range loads {
			for _, w := range wl.workers {
				if err := st.backend.RegisterWorker(ctx, w); err != nil {
					return nil, 0, 0, 0, fmt.Errorf("loadgen: register %s: %w", w, err)
				}
			}
		}
	} else {
		control, err := st.client("")
		if err != nil {
			return nil, 0, 0, 0, err
		}
		for _, wl := range loads {
			for _, w := range wl.workers {
				if err := control.RegisterWorker(ctx, w); err != nil {
					return nil, 0, 0, 0, fmt.Errorf("loadgen: register %s: %w", w, err)
				}
			}
		}
		clients = make([]*platform.Client, len(loads))
		for i, wl := range loads {
			if clients[i], err = st.client(wl.tenant); err != nil {
				return nil, 0, 0, 0, err
			}
		}
	}
	drive := func(i int, wl tenantWorkload, digests *sync.Map) (int, error) {
		if cfg.Direct {
			return driveTenantDirect(ctx, st.backend, cfg, wl, digests)
		}
		return driveTenant(ctx, clients[i], cfg, wl, digests)
	}

	var digests sync.Map
	var bidsTotal int
	start := time.Now()
	if concurrent {
		var wg sync.WaitGroup
		errCh := make(chan error, len(loads))
		bidCh := make(chan int, len(loads))
		for i, wl := range loads {
			wg.Add(1)
			go func(i int, wl tenantWorkload) {
				defer wg.Done()
				n, err := drive(i, wl, &digests)
				if err != nil {
					errCh <- fmt.Errorf("loadgen: tenant %s: %w", wl.tenant, err)
				}
				bidCh <- n
			}(i, wl)
		}
		wg.Wait()
		close(bidCh)
		for n := range bidCh {
			bidsTotal += n
		}
		select {
		case err := <-errCh:
			return nil, 0, 0, 0, err
		default:
		}
	} else {
		for i, wl := range loads {
			n, err := drive(i, wl, &digests)
			bidsTotal += n
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("loadgen: tenant %s: %w", wl.tenant, err)
			}
		}
	}
	elapsed := time.Since(start).Seconds()

	// Settle any mid-epoch remainder, then hold the ledger to account:
	// money conserved, nothing stranded in escrow or the epoch pool.
	if err := st.sched.Flush(); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("loadgen: flush: %w", err)
	}
	if err := verify.CheckMoneyConservation(st.money); err != nil {
		return nil, 0, 0, 0, err
	}
	if err := verify.CheckSettlementDrained(st.money); err != nil {
		return nil, 0, 0, 0, err
	}
	if err := verify.CheckTenantQuotas(tenantUsages(st.sched.TenantStatuses())); err != nil {
		return nil, 0, 0, 0, err
	}
	epochs := 0
	if s := st.sched.Settler(); s != nil {
		epochs = s.Epochs()
	}

	stopped = true
	if err := st.stop(); err != nil {
		return nil, 0, 0, 0, err
	}
	out := make(map[string]string)
	digests.Range(func(k, v any) bool {
		out[k.(string)] = v.(string)
		return true
	})
	return out, elapsed, bidsTotal, epochs, nil
}

// RunMultiRun executes the mixed-tenant multi-run scenario: the identical
// workload runs once serially and once with all tenants concurrent, each
// against a fresh scheduler stack. It reports the goodput speedup and
// whether per-run outcomes were byte-identical across the passes, and
// fails if money is not conserved, settlement leaves residue, or the
// serving stack leaks goroutines.
func RunMultiRun(cfg MultiRunConfig) (MultiRunResult, error) {
	cfg = cfg.withDefaults()
	loads := buildWorkloads(cfg)
	before := runtime.NumGoroutine()

	serial, sSecs, bids, _, err := multiPass(cfg, loads, false)
	if err != nil {
		return MultiRunResult{}, fmt.Errorf("loadgen: serial pass: %w", err)
	}
	conc, cSecs, _, epochs, err := multiPass(cfg, loads, true)
	if err != nil {
		return MultiRunResult{}, fmt.Errorf("loadgen: concurrent pass: %w", err)
	}

	res := MultiRunResult{
		Tenants:           cfg.Tenants,
		RunsPerTenant:     cfg.RunsPerTenant,
		TotalRuns:         cfg.Tenants * cfg.RunsPerTenant,
		Bids:              bids,
		SerialSeconds:     sSecs,
		ConcurrentSeconds: cSecs,
		Epochs:            epochs,
		OutcomesMatch:     true,
	}
	if sSecs > 0 {
		res.SerialRunsPerSec = float64(res.TotalRuns) / sSecs
	}
	if cSecs > 0 {
		res.ConcurrentRunsPerSec = float64(res.TotalRuns) / cSecs
	}
	if res.SerialRunsPerSec > 0 {
		res.Speedup = res.ConcurrentRunsPerSec / res.SerialRunsPerSec
	}
	if len(serial) != res.TotalRuns || len(conc) != res.TotalRuns {
		return res, fmt.Errorf("loadgen: digest count mismatch: serial %d, concurrent %d, want %d",
			len(serial), len(conc), res.TotalRuns)
	}
	for id, sd := range serial {
		if conc[id] != sd {
			res.OutcomesMatch = false
			return res, fmt.Errorf("loadgen: run %s outcome diverged between serial and concurrent passes", id)
		}
	}

	// Both stacks are down; every server, client and watchdog goroutine
	// must have drained. Allow the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("loadgen: goroutine leak: %d before, %d after multirun",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return res, nil
}
