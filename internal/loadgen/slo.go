package loadgen

// The SLO gate: turn an overload measurement into a pass/fail verdict CI
// can act on. Targets are expressed relative to the machine (shed-rate
// fractions, tail-over-median ratios, rates derived from a calibration
// run) rather than as absolute latencies, so the gate holds on a loaded CI
// box and a fast workstation alike.

import (
	"errors"
	"fmt"
	"strings"
)

// SLO is a set of service-level assertions over an OverloadResult. Zero
// fields disable their check (except failures and invariant violations,
// which always count — see AssertSLO).
type SLO struct {
	// MaxShedRate is the highest tolerable Shed/Offered fraction. At rated
	// load this is near zero; under deliberate overload it is close to the
	// overload factor's implied floor. Negative disables, zero means "shed
	// nothing".
	MaxShedRate float64
	// MinShedRate asserts the scenario actually overloaded the server —
	// a 3x overload run that shed nothing measured the wrong thing.
	MinShedRate float64
	// MinAccepted is the least goodput (accepted bids) the run must show:
	// a server that sheds 100% is "up" in no useful sense.
	MinAccepted int
	// MinRunsCompleted asserts settlement survived the load; normally
	// Load.Runs.
	MinRunsCompleted int
	// MaxP99OverP50 bounds the accepted-bid tail relative to its own
	// median — the machine-scaled form of a p99 target. Zero disables.
	MaxP99OverP50 float64
	// MaxP99Ms is an optional absolute ceiling for environments that can
	// promise one. Zero disables.
	MaxP99Ms float64
	// MaxGoroutineGrowth bounds GoroutineEnd - GoroutineStart after
	// shutdown. Zero disables.
	MaxGoroutineGrowth int
	// AllowFailures tolerates that many non-shed errors; failures beyond
	// it (default: any) violate the SLO.
	AllowFailures int
}

// AssertSLO checks res against slo and returns one error listing every
// missed target, or nil when the SLO holds. Invariant violations recorded
// on the result (money conservation, escrow settlement, unfinished runs)
// always fail the gate, whatever the SLO says.
func AssertSLO(res OverloadResult, slo SLO) error {
	var missed []string
	for _, v := range res.Violations {
		missed = append(missed, "invariant: "+v)
	}
	if res.Failed > slo.AllowFailures {
		missed = append(missed, fmt.Sprintf("failures: %d non-shed errors (allowed %d)",
			res.Failed, slo.AllowFailures))
	}
	if slo.MaxShedRate >= 0 && res.ShedRate > slo.MaxShedRate {
		missed = append(missed, fmt.Sprintf("shed rate %.3f > max %.3f", res.ShedRate, slo.MaxShedRate))
	}
	if slo.MinShedRate > 0 && res.ShedRate < slo.MinShedRate {
		missed = append(missed, fmt.Sprintf("shed rate %.3f < min %.3f (scenario did not overload)",
			res.ShedRate, slo.MinShedRate))
	}
	if res.Accepted < slo.MinAccepted {
		missed = append(missed, fmt.Sprintf("accepted %d < min %d", res.Accepted, slo.MinAccepted))
	}
	if res.RunsCompleted < slo.MinRunsCompleted {
		missed = append(missed, fmt.Sprintf("runs completed %d < min %d (settlement starved)",
			res.RunsCompleted, slo.MinRunsCompleted))
	}
	if slo.MaxP99OverP50 > 0 && res.Latency.N > 0 && res.Latency.P50 > 0 {
		if ratio := res.Latency.P99 / res.Latency.P50; ratio > slo.MaxP99OverP50 {
			missed = append(missed, fmt.Sprintf("p99/p50 %.1f > max %.1f (p99 %.2fms, p50 %.2fms)",
				ratio, slo.MaxP99OverP50, res.Latency.P99, res.Latency.P50))
		}
	}
	if slo.MaxP99Ms > 0 && res.Latency.P99 > slo.MaxP99Ms {
		missed = append(missed, fmt.Sprintf("p99 %.2fms > max %.2fms", res.Latency.P99, slo.MaxP99Ms))
	}
	if slo.MaxGoroutineGrowth > 0 {
		if growth := res.GoroutineEnd - res.GoroutineStart; growth > slo.MaxGoroutineGrowth {
			missed = append(missed, fmt.Sprintf("goroutines grew by %d > max %d (%d -> %d)",
				growth, slo.MaxGoroutineGrowth, res.GoroutineStart, res.GoroutineEnd))
		}
	}
	if len(missed) == 0 {
		return nil
	}
	return errors.New("loadgen: SLO violated:\n  - " + strings.Join(missed, "\n  - "))
}

// CalibrateRate measures this machine's closed-loop ingest capacity with a
// short ungated run and returns it in bids/sec. The SLO smoke derives its
// rated and overload rates from this number, so the same gate passes on
// any machine that can serve at all: "rated" means a fraction of what this
// box just demonstrated, not a hard-coded request rate.
func CalibrateRate(cfg Config) (float64, error) {
	cfg = cfg.withDefaults()
	cfg.Admission = nil // measure capacity, not policy
	res, err := Run(cfg)
	if err != nil {
		return 0, fmt.Errorf("loadgen: calibrate: %w", err)
	}
	if res.BidsPerSec <= 0 {
		return 0, errors.New("loadgen: calibrate: measured zero throughput")
	}
	return res.BidsPerSec, nil
}
