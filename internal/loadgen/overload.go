package loadgen

// Open-loop overload scenarios: arrivals fire on a schedule regardless of
// how fast the server answers, which is what actually happens when a flash
// crowd hits a crowdsourcing platform. Closed-loop load (Run) can never
// exceed the server's capacity — every client politely waits — so it can
// never show what admission control does. RunOverload can.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"melody"
	"melody/internal/platform"
	"melody/internal/stats"
	"melody/internal/verify"
)

// Arrival selects the open-loop arrival process.
type Arrival string

const (
	// ArrivalPoisson fires arrivals with exponential inter-arrival times at
	// a constant mean rate — the steady-overload scenario.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalRamp grows the arrival rate linearly from BaseRate to Rate
	// over the phase — the scenario where load crosses capacity mid-run.
	ArrivalRamp Arrival = "ramp"
	// ArrivalBurst alternates BaseRate background traffic with Rate bursts
	// every BurstPeriod — the flash-crowd scenario.
	ArrivalBurst Arrival = "burst"
)

// OverloadConfig parameterizes an open-loop overload run.
type OverloadConfig struct {
	// Load is the harness configuration. Admission should normally be set —
	// an ungated server under sustained overload just accumulates latency.
	// Ledger is forced on: the money invariants are the point.
	Load Config
	// Arrival is the arrival process; default ArrivalPoisson.
	Arrival Arrival
	// Rate is the peak offered load in bids/sec (mean rate for Poisson, end
	// rate for ramp, burst rate for burst). Required.
	Rate float64
	// BaseRate is the ramp's start rate / the burst scenario's background
	// rate; default Rate/4. Ignored by ArrivalPoisson.
	BaseRate float64
	// Duration is each run's bidding phase length; default 2s.
	Duration time.Duration
	// BurstPeriod spaces flash crowds; default Duration/4.
	BurstPeriod time.Duration
	// BurstLen is each flash crowd's length; default BurstPeriod/4.
	BurstLen time.Duration
}

func (c OverloadConfig) withDefaults() (OverloadConfig, error) {
	c.Load = c.Load.withDefaults()
	c.Load.Ledger = true
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	switch c.Arrival {
	case ArrivalPoisson, ArrivalRamp, ArrivalBurst:
	default:
		return c, fmt.Errorf("loadgen: unknown arrival process %q", c.Arrival)
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("loadgen: overload rate %v, want > 0", c.Rate)
	}
	if c.BaseRate <= 0 {
		c.BaseRate = c.Rate / 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.BurstPeriod <= 0 {
		c.BurstPeriod = c.Duration / 4
	}
	if c.BurstLen <= 0 {
		c.BurstLen = c.BurstPeriod / 4
	}
	return c, nil
}

// rateAt is the instantaneous offered rate t seconds into the phase.
func (c OverloadConfig) rateAt(t float64) float64 {
	switch c.Arrival {
	case ArrivalRamp:
		frac := t / c.Duration.Seconds()
		if frac > 1 {
			frac = 1
		}
		return c.BaseRate + (c.Rate-c.BaseRate)*frac
	case ArrivalBurst:
		period, burst := c.BurstPeriod.Seconds(), c.BurstLen.Seconds()
		if math.Mod(t, period) < burst {
			return c.Rate
		}
		return c.BaseRate
	default:
		return c.Rate
	}
}

// schedule draws one phase's arrival offsets from the seeded stream: a
// non-homogeneous Poisson process via per-step exponential inter-arrivals
// at the instantaneous rate.
func (c OverloadConfig) schedule(rng *stats.RNG) []time.Duration {
	var ts []time.Duration
	d := c.Duration.Seconds()
	for t := 0.0; ; {
		r := c.rateAt(t)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		t += -math.Log(u) / r
		if t >= d {
			return ts
		}
		ts = append(ts, time.Duration(t*float64(time.Second)))
	}
}

// OverloadResult is what an open-loop overload run measured.
type OverloadResult struct {
	Arrival Arrival `json:"arrival"`
	Backend string  `json:"backend"`
	// Offered is the number of arrivals the schedule fired.
	Offered int `json:"offered"`
	// Accepted, Shed, Failed partition Offered: platform took the bid,
	// admission refused it with 429, or something else went wrong.
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Failed   int `json:"failed"`
	// ShedRate is Shed / Offered.
	ShedRate float64 `json:"shed_rate"`
	// OfferedPerSec and GoodputPerSec are offered and accepted throughput
	// over the bidding phases.
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// Latency summarizes accepted bids only — shed round trips are the
	// fast path by design and would flatter the tail.
	Latency Latency `json:"latency"`
	// RunsCompleted counts runs that opened, closed, scored and finished.
	// Overload must never stop a run from settling: this equals Load.Runs
	// on a healthy server no matter how hard the bid path was shed.
	RunsCompleted int `json:"runs_completed"`
	// Violations lists every invariant the post-run verification found
	// broken (money conservation, escrow settlement). Empty on a healthy
	// run.
	Violations []string `json:"violations,omitempty"`
	// GoroutineStart/End bracket the run; a large delta after shutdown
	// means the overload leaked goroutines.
	GoroutineStart int `json:"goroutine_start"`
	GoroutineEnd   int `json:"goroutine_end"`
	// ElapsedSeconds is the whole scenario.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Metrics is the post-run scrape (Load.Observe only), taken before
	// shutdown so gauges still carry their final values.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// RunOverload executes one open-loop overload scenario: for each run it
// opens the auction, fires bids on the arrival schedule without waiting
// for completions, then closes, scores and finishes through the exempt
// control plane. After the last run it verifies the money invariants and
// checks the process drained.
func RunOverload(cfg OverloadConfig) (OverloadResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return OverloadResult{}, err
	}
	res := OverloadResult{
		Arrival: cfg.Arrival, Backend: cfg.Load.Backend,
		GoroutineStart: runtime.NumGoroutine(),
	}

	h, err := startHarness(cfg.Load)
	if err != nil {
		return OverloadResult{}, err
	}
	defer h.close()

	bidClient, err := h.client()
	if err != nil {
		return OverloadResult{}, err
	}
	control, err := h.controlClient()
	if err != nil {
		return OverloadResult{}, err
	}

	ctx := context.Background()
	rng := stats.NewRNG(cfg.Load.Seed)
	workerIDs := make([]string, cfg.Load.Workers)
	costs := make([]float64, cfg.Load.Workers)
	for i := range workerIDs {
		workerIDs[i] = fmt.Sprintf("w%04d", i)
		costs[i] = rng.Uniform(1, 2)
		if err := control.RegisterWorker(ctx, workerIDs[i]); err != nil {
			return OverloadResult{}, fmt.Errorf("loadgen: register %s: %w", workerIDs[i], err)
		}
	}

	var accepted, shed, failed atomic.Int64
	var latMu sync.Mutex
	var latencies []float64
	var phaseSeconds float64

	start := time.Now()
	for run := 1; run <= cfg.Load.Runs; run++ {
		tasks := make([]platform.TaskSpec, cfg.Load.Tasks)
		for j := range tasks {
			tasks[j] = platform.TaskSpec{ID: fmt.Sprintf("r%d-t%d", run, j), Threshold: 10}
		}
		if err := control.OpenRun(ctx, tasks, cfg.Load.Budget); err != nil {
			return res, fmt.Errorf("loadgen: open run %d: %w", run, err)
		}

		arrivals := cfg.schedule(rng)
		res.Offered += len(arrivals)
		phaseStart := time.Now()
		var wg sync.WaitGroup
		for i, at := range arrivals {
			// Open loop: wait for the arrival instant, never for the
			// previous request. Falling behind the schedule fires
			// immediately, which only makes the burst harsher.
			if d := time.Until(phaseStart.Add(at)); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := i % len(workerIDs)
				t0 := time.Now()
				err := bidClient.SubmitBid(ctx, workerIDs[w], costs[w], 1)
				switch {
				case err == nil:
					ms := float64(time.Since(t0).Microseconds()) / 1000
					latMu.Lock()
					latencies = append(latencies, ms)
					latMu.Unlock()
					accepted.Add(1)
				case overloadedErr(err):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}(i)
		}
		wg.Wait()
		phaseSeconds += time.Since(phaseStart).Seconds()

		// Settlement through the exempt control plane: this must work no
		// matter how hard the bid path was shed.
		out, err := control.CloseAuction(ctx)
		if err != nil {
			return res, fmt.Errorf("loadgen: close run %d: %w", run, err)
		}
		scores := make([]platform.ScoreRequest, 0, len(out.Assignments))
		for _, asg := range out.Assignments {
			scores = append(scores, platform.ScoreRequest{
				WorkerID: asg.WorkerID, TaskID: asg.TaskID, Score: rng.Uniform(1, 10),
			})
		}
		if len(scores) > 0 {
			sres, err := control.SubmitScores(ctx, scores)
			if err != nil {
				return res, fmt.Errorf("loadgen: score run %d: %w", run, err)
			}
			if err := sres.Err(); err != nil {
				return res, fmt.Errorf("loadgen: score run %d: %w", run, err)
			}
		}
		if err := control.FinishRun(ctx); err != nil {
			return res, fmt.Errorf("loadgen: finish run %d: %w", run, err)
		}
		res.RunsCompleted++
	}
	res.ElapsedSeconds = time.Since(start).Seconds()
	res.Accepted = int(accepted.Load())
	res.Shed = int(shed.Load())
	res.Failed = int(failed.Load())
	if res.Offered > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Offered)
	}
	if phaseSeconds > 0 {
		res.OfferedPerSec = float64(res.Offered) / phaseSeconds
		res.GoodputPerSec = float64(res.Accepted) / phaseSeconds
	}
	if len(latencies) > 0 {
		res.Latency, err = summarize(latencies)
		if err != nil {
			return res, err
		}
	}

	// The money invariants hold exactly however much was shed: every run's
	// escrow was paid out or refunded, and not a unit was minted or lost.
	if h.money != nil {
		if err := verify.CheckMoneyConservation(h.money); err != nil {
			res.Violations = append(res.Violations, err.Error())
		}
		if err := verify.CheckEscrowSettled(h.money); err != nil {
			res.Violations = append(res.Violations, err.Error())
		}
	}
	if got := h.plat.Run(); got != cfg.Load.Runs {
		res.Violations = append(res.Violations,
			fmt.Sprintf("loadgen: platform completed %d runs, want %d", got, cfg.Load.Runs))
	}

	if cfg.Load.Observe {
		series, err := h.scrape()
		if err != nil {
			return res, err
		}
		res.Metrics = series
	}

	if err := h.shutdown(); err != nil {
		return res, err
	}
	// Give transient goroutines (HTTP conns, timers) a moment to drain
	// before reading the end count, so the growth check measures leaks,
	// not scheduling.
	deadline := time.Now().Add(2 * time.Second)
	for {
		res.GoroutineEnd = runtime.NumGoroutine()
		if res.GoroutineEnd <= res.GoroutineStart || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return res, nil
}

// overloadedErr reports whether err is an admission shed.
func overloadedErr(err error) bool {
	return errors.Is(err, melody.ErrOverloaded)
}
