package loadgen

import "testing"

// TestRunSmoke drives a short seeded load run against each backend and
// checks the harness reports real work: nonzero bids, positive throughput,
// populated percentiles, clean shutdown (Run errors on anything else).
func TestRunSmoke(t *testing.T) {
	for _, backend := range []string{BackendMem, BackendWAL, BackendWALSerial} {
		t.Run(backend, func(t *testing.T) {
			res, err := Run(Config{
				Backend: backend, Workers: 4, Runs: 2, Tasks: 2,
				BidsPerWorker: 3, Batch: 2, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bids != 4*2*3 {
				t.Errorf("Bids = %d, want %d", res.Bids, 4*2*3)
			}
			if res.BidsPerSec <= 0 {
				t.Errorf("BidsPerSec = %v, want > 0", res.BidsPerSec)
			}
			if res.Latency.N == 0 || res.Latency.P99 < res.Latency.P50 {
				t.Errorf("latency summary inconsistent: %+v", res.Latency)
			}
		})
	}
}

func TestRunUnknownBackend(t *testing.T) {
	if _, err := Run(Config{Backend: "floppy"}); err == nil {
		t.Error("unknown backend accepted")
	}
}
