package loadgen

import "testing"

// TestRunSmoke drives a short seeded load run against each backend and
// checks the harness reports real work: nonzero bids, positive throughput,
// populated percentiles, clean shutdown (Run errors on anything else).
func TestRunSmoke(t *testing.T) {
	for _, backend := range []string{BackendMem, BackendWAL, BackendWALSerial} {
		t.Run(backend, func(t *testing.T) {
			res, err := Run(Config{
				Backend: backend, Workers: 4, Runs: 2, Tasks: 2,
				BidsPerWorker: 3, Batch: 2, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bids != 4*2*3 {
				t.Errorf("Bids = %d, want %d", res.Bids, 4*2*3)
			}
			if res.BidsPerSec <= 0 {
				t.Errorf("BidsPerSec = %v, want > 0", res.BidsPerSec)
			}
			if res.Latency.N == 0 || res.Latency.P99 < res.Latency.P50 {
				t.Errorf("latency summary inconsistent: %+v", res.Latency)
			}
		})
	}
}

func TestRunUnknownBackend(t *testing.T) {
	if _, err := Run(Config{Backend: "floppy"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestRunObserveMetricsMatchTallies runs an instrumented load run and
// cross-checks the scraped /metrics series against the generator's own
// bookkeeping: every bid the generator sent must appear in the server's
// per-endpoint request counters, every run it drove in the runs-completed
// counter, and the WAL's append counter must cover one record per accepted
// mutation.
func TestRunObserveMetricsMatchTallies(t *testing.T) {
	const workers, runs, tasks, bidsPer, batch = 4, 2, 2, 4, 2
	res, err := Run(Config{
		Backend: BackendWAL, Workers: workers, Runs: runs, Tasks: tasks,
		BidsPerWorker: bidsPer, Batch: batch, Seed: 7, Observe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Observe run returned no metrics scrape")
	}

	// Each worker splits bidsPer bids into ceil(bidsPer/batch) batch POSTs
	// per run.
	perWorkerPosts := (bidsPer + batch - 1) / batch
	wantBatchPosts := float64(workers * runs * perWorkerPosts)
	if got := res.Metrics[`melody_http_requests_total{endpoint="bid_batch"}`]; got != wantBatchPosts {
		t.Errorf("bid_batch requests = %g, want %g", got, wantBatchPosts)
	}
	for endpoint, want := range map[string]float64{
		"register_worker": workers,
		"open_run":        runs,
		"close":           runs,
		"finish":          runs,
		"score_batch":     runs,
	} {
		key := `melody_http_requests_total{endpoint="` + endpoint + `"}`
		if got := res.Metrics[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if got := res.Metrics["melody_runs_completed_total"]; got != float64(runs) {
		t.Errorf("melody_runs_completed_total = %g, want %d", got, runs)
	}

	// The WAL records every accepted mutation: registrations, run opens,
	// every bid (including replaced resubmissions), accepted scores, closes
	// and finishes. Bids alone give a hard floor.
	minAppends := float64(workers*runs*bidsPer + workers + 3*runs)
	if got := res.Metrics["melody_wal_appends_total"]; got < minAppends {
		t.Errorf("melody_wal_appends_total = %g, want >= %g", got, minAppends)
	}
	if got := res.Metrics["melody_wal_commits_total"]; got <= 0 || got > res.Metrics["melody_wal_appends_total"] {
		t.Errorf("melody_wal_commits_total = %g, want in (0, appends]", got)
	}

	// The span ring saw the run lifecycle.
	want := map[string]bool{"run.bidding": false, "run.scoring": false, "auction.run": false, "run.finish": false, "wal.commit": false}
	for _, st := range res.TraceSummary {
		if _, ok := want[st.Name]; ok {
			want[st.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace summary is missing span %q (have %+v)", name, res.TraceSummary)
		}
	}
}
