package loadgen

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"melody/internal/chaos"
	"melody/internal/platform"
	"melody/internal/stats"
)

// tightAdmission is a gate small enough that modest open-loop rates
// overload it deterministically in a fast test.
func tightAdmission() *platform.AdmissionConfig {
	return &platform.AdmissionConfig{
		MaxInFlight: 2, MaxQueue: 2, QueueTimeout: 2 * time.Millisecond,
		RetryAfter: 5 * time.Millisecond,
	}
}

// noRetry keeps overload accounting honest: one arrival, one verdict.
var noRetry = platform.RetryPolicy{MaxAttempts: 1}

func TestScheduleShapes(t *testing.T) {
	base := OverloadConfig{Rate: 2000, BaseRate: 200, Duration: time.Second,
		BurstPeriod: 250 * time.Millisecond, BurstLen: 50 * time.Millisecond}
	counts := map[Arrival]int{}
	for _, a := range []Arrival{ArrivalPoisson, ArrivalRamp, ArrivalBurst} {
		cfg := base
		cfg.Arrival = a
		cfg.Load = Config{}.withDefaults()
		arrivals := cfg.schedule(stats.NewRNG(42))
		counts[a] = len(arrivals)
		last := time.Duration(-1)
		for _, at := range arrivals {
			if at <= last || at >= cfg.Duration {
				t.Fatalf("%s: arrival %v out of order or past the phase", a, at)
			}
			last = at
		}
	}
	// Poisson fires at the full rate the whole second; the ramp averages
	// (base+peak)/2; bursts run at peak only 1/5 of the time. With rate
	// 2000 the law of large numbers makes the ordering robust.
	if !(counts[ArrivalPoisson] > counts[ArrivalRamp] && counts[ArrivalRamp] > counts[ArrivalBurst]) {
		t.Errorf("schedule densities out of order: poisson=%d ramp=%d burst=%d",
			counts[ArrivalPoisson], counts[ArrivalRamp], counts[ArrivalBurst])
	}
	if p := counts[ArrivalPoisson]; p < 1600 || p > 2400 {
		t.Errorf("poisson arrivals = %d, want ~2000", p)
	}
}

// TestRunOverloadSheds drives a Poisson overload into a rate-limited
// server and checks the full contract: arrivals partition exactly into
// accepted/shed/failed, shedding really happened, every run settled, and
// the money invariants hold.
func TestRunOverloadSheds(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Load: Config{
			Workers: 8, Runs: 2, Tasks: 2, Seed: 11,
			Admission: &platform.AdmissionConfig{TenantRatePerSec: 40, TenantBurst: 5,
				RetryAfter: 5 * time.Millisecond},
			Tenant: "load",
			Retry:  &noRetry,
		},
		Arrival:  ArrivalPoisson,
		Rate:     300,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Accepted + res.Shed + res.Failed; got != res.Offered {
		t.Errorf("partition broken: %d+%d+%d != offered %d", res.Accepted, res.Shed, res.Failed, res.Offered)
	}
	if res.Failed != 0 {
		t.Errorf("%d non-shed failures under pure overload", res.Failed)
	}
	if res.Shed == 0 {
		t.Error("300/s against a 40/s budget shed nothing")
	}
	if res.Accepted == 0 {
		t.Error("rate limit starved the bid path completely")
	}
	if res.RunsCompleted != 2 {
		t.Errorf("runs completed = %d, want 2 (settlement must survive overload)", res.RunsCompleted)
	}
	if len(res.Violations) != 0 {
		t.Errorf("invariant violations under overload: %v", res.Violations)
	}
	if err := AssertSLO(res, SLO{
		MaxShedRate: 0.99, MinShedRate: 0.2, MinAccepted: 1,
		MinRunsCompleted: 2, MaxGoroutineGrowth: 40,
	}); err != nil {
		t.Errorf("SLO that matches the measurement failed: %v", err)
	}
}

// TestRunOverloadBurstWithConcurrencyGate exercises the flash-crowd
// arrival process against the in-flight gate (the other shedding path).
func TestRunOverloadBurstWithConcurrencyGate(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Load: Config{
			Workers: 8, Runs: 1, Tasks: 2, Seed: 13,
			Admission: tightAdmission(),
			Retry:     &noRetry,
		},
		Arrival:     ArrivalBurst,
		Rate:        2500,
		BaseRate:    50,
		Duration:    400 * time.Millisecond,
		BurstPeriod: 100 * time.Millisecond,
		BurstLen:    40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Accepted + res.Shed + res.Failed; got != res.Offered {
		t.Errorf("partition broken: %d+%d+%d != offered %d", res.Accepted, res.Shed, res.Failed, res.Offered)
	}
	if res.Failed != 0 {
		t.Errorf("%d non-shed failures under burst", res.Failed)
	}
	if res.RunsCompleted != 1 || len(res.Violations) != 0 {
		t.Errorf("burst broke settlement: runs=%d violations=%v", res.RunsCompleted, res.Violations)
	}
}

// TestRunOverloadWithChaos is the combo soak: fault injection (errors,
// lost replies, latency) layered over admission control, with retrying
// clients. Settlement and the money invariants must hold through both.
func TestRunOverloadWithChaos(t *testing.T) {
	scenario := chaos.Scenario{Seed: 7, Err: 0.05, Lose: 0.02,
		DelayMin: 0, DelayMax: 2 * time.Millisecond}
	retry := platform.RetryPolicy{MaxAttempts: 6, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	res, err := RunOverload(OverloadConfig{
		Load: Config{
			Workers: 8, Runs: 2, Tasks: 2, Seed: 17,
			Admission: &platform.AdmissionConfig{TenantRatePerSec: 60, TenantBurst: 10,
				RetryAfter: 2 * time.Millisecond},
			Tenant: "load",
			Retry:  &retry,
			WrapHandler: func(next http.Handler) http.Handler {
				h, err := chaos.Middleware(scenario, next)
				if err != nil {
					t.Fatal(err)
					return next
				}
				return h
			},
		},
		Arrival:  ArrivalPoisson,
		Rate:     250,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsCompleted != 2 {
		t.Errorf("chaos+overload broke settlement: runs completed = %d, want 2", res.RunsCompleted)
	}
	if len(res.Violations) != 0 {
		t.Errorf("invariant violations under chaos+overload: %v", res.Violations)
	}
	if res.Accepted == 0 {
		t.Error("no bid survived chaos+overload; the retry layer should carry some through")
	}
}

func TestRunOverloadRejectsBadConfig(t *testing.T) {
	if _, err := RunOverload(OverloadConfig{Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RunOverload(OverloadConfig{Rate: 10, Arrival: "tsunami"}); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

func TestAssertSLO(t *testing.T) {
	healthy := OverloadResult{
		Offered: 1000, Accepted: 700, Shed: 300, ShedRate: 0.3,
		RunsCompleted:  3,
		Latency:        Latency{N: 700, P50: 2, P99: 10},
		GoroutineStart: 10, GoroutineEnd: 12,
	}
	slo := SLO{
		MaxShedRate: 0.5, MinShedRate: 0.1, MinAccepted: 100,
		MinRunsCompleted: 3, MaxP99OverP50: 20, MaxGoroutineGrowth: 10,
	}
	if err := AssertSLO(healthy, slo); err != nil {
		t.Fatalf("healthy result failed: %v", err)
	}
	for name, breakIt := range map[string]func(*OverloadResult, *SLO){
		"violations":    func(r *OverloadResult, _ *SLO) { r.Violations = []string{"money leaked"} },
		"failures":      func(r *OverloadResult, _ *SLO) { r.Failed = 1 },
		"shed too high": func(_ *OverloadResult, s *SLO) { s.MaxShedRate = 0.1 },
		"shed too low":  func(_ *OverloadResult, s *SLO) { s.MinShedRate = 0.9 },
		"goodput":       func(_ *OverloadResult, s *SLO) { s.MinAccepted = 10000 },
		"settlement":    func(_ *OverloadResult, s *SLO) { s.MinRunsCompleted = 4 },
		"tail ratio":    func(r *OverloadResult, _ *SLO) { r.Latency.P99 = 100 },
		"absolute p99":  func(_ *OverloadResult, s *SLO) { s.MaxP99Ms = 5 },
		"goroutines":    func(r *OverloadResult, _ *SLO) { r.GoroutineEnd = 100 },
	} {
		r, s := healthy, slo
		breakIt(&r, &s)
		err := AssertSLO(r, s)
		if err == nil {
			t.Errorf("%s: violation not caught", name)
			continue
		}
		if !strings.Contains(err.Error(), "SLO violated") {
			t.Errorf("%s: error %q lacks the verdict prefix", name, err)
		}
	}
	// MaxShedRate < 0 disables the upper bound.
	r := healthy
	r.ShedRate = 1
	if err := AssertSLO(r, SLO{MaxShedRate: -1, MinRunsCompleted: 3}); err != nil {
		t.Errorf("disabled shed bound still enforced: %v", err)
	}
}

func TestCalibrateRate(t *testing.T) {
	rate, err := CalibrateRate(Config{Workers: 4, Runs: 1, Tasks: 2, BidsPerWorker: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Errorf("calibrated rate = %v, want > 0", rate)
	}
}
