package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"melody"
	"melody/internal/obs"
)

// APIError is a non-2xx platform response, carrying the HTTP status, the
// server's error message, and the machine-readable error code when the
// failure maps onto a melody sentinel error.
type APIError struct {
	Status  int
	Message string
	Code    string
	// RetryAfter is the server's backoff hint from a Retry-After header
	// (zero when absent). Admission-control sheds (429) always carry one;
	// the retrying client never retries sooner than the hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("platform: HTTP %d: %s", e.Status, e.Message)
}

// Is lets callers branch on platform state with the melody sentinels —
// errors.Is(err, melody.ErrAuctionClosed) — instead of matching statuses
// or message strings across the wire.
func (e *APIError) Is(target error) bool {
	if e.Code == "" {
		return false
	}
	return sentinelForCode(e.Code) == target
}

// RetryPolicy bounds the client's retry loop. Retries are safe because the
// platform's mutation protocol is idempotent: a retried request whose
// first delivery succeeded (but whose response was lost) is a no-op
// success on the server.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call; values below 2
	// disable retries.
	MaxAttempts int
	// BaseDelay is the first backoff step; subsequent steps double.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy NewClient installs: 4 attempts with
// 25ms base backoff capped at 1s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: time.Second}
}

// backoffDelay returns the sleep before retry number attempt (0-based),
// using capped exponential growth with equal jitter: half the step is
// deterministic, half is scaled by u in [0, 1).
func backoffDelay(p RetryPolicy, attempt int, u float64) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(u*float64(d/2))
}

// retryable classifies an attempt's failure: transport-level errors
// (connection drops, resets, per-attempt timeouts) and 5xx/408/429
// responses are worth retrying; any other HTTP response — in particular
// every other 4xx — reached the server and reflects platform state, so
// retrying cannot help.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 ||
			apiErr.Status == http.StatusRequestTimeout ||
			apiErr.Status == http.StatusTooManyRequests
	}
	var urlErr *url.Error
	return errors.As(err, &urlErr)
}

// Client talks to a platform Server, transparently retrying transient
// failures per its RetryPolicy. With ClientOptions.Adaptive set it also
// runs an AIMD concurrency window over all concurrent calls, backing off
// when the server sheds load and probing back up on success.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	tenant  string
	limiter *adaptiveLimiter // nil without ClientOptions.Adaptive
	log     *slog.Logger
	tracer  *obs.Tracer
	reqs    *obs.Counter
	retries *obs.Counter
}

// ClientOptions configures NewClientOptions. The zero value gives the same
// client NewClient does: default HTTP transport, DefaultRetryPolicy, no
// instrumentation.
type ClientOptions struct {
	// HTTPClient overrides the transport; nil means a default client with a
	// 10s timeout.
	HTTPClient *http.Client
	// Retry overrides the retry policy; nil means DefaultRetryPolicy.
	Retry *RetryPolicy
	// Metrics optionally counts requests (melody_client_requests_total) and
	// retries (melody_client_retries_total).
	Metrics *obs.Registry
	// Tracer optionally records one "client.retry" span per retried attempt.
	Tracer *obs.Tracer
	// Logger receives a debug line per retry; nil disables logging.
	Logger *slog.Logger
	// Adaptive enables the AIMD concurrency window: concurrent calls on
	// this client are capped by a window that halves on 429 sheds and
	// grows by one per window of successes. Nil disables the limiter.
	Adaptive *AdaptiveConfig
	// Tenant, when non-empty, is sent as the X-Melody-Tenant header on
	// every request, attributing the traffic to a per-tenant rate budget
	// under server-side admission control.
	Tenant string
}

// NewClient creates a client for the platform at baseURL (e.g.
// "http://127.0.0.1:8080"). httpClient may be nil for a default with a 10s
// timeout. The client retries transient failures per DefaultRetryPolicy;
// use NewClientOptions to tune or disable that, or to instrument the client.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	return NewClientOptions(baseURL, ClientOptions{HTTPClient: httpClient})
}

// NewClientWithPolicy is NewClient with an explicit retry policy.
func NewClientWithPolicy(baseURL string, httpClient *http.Client, policy RetryPolicy) (*Client, error) {
	return NewClientOptions(baseURL, ClientOptions{HTTPClient: httpClient, Retry: &policy})
}

// NewClientOptions is the full-control constructor every other client
// constructor funnels through.
func NewClientOptions(baseURL string, opts ClientOptions) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("platform: empty base URL")
	}
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("platform: invalid base URL: %w", err)
	}
	httpClient := opts.HTTPClient
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	policy := DefaultRetryPolicy()
	if opts.Retry != nil {
		policy = *opts.Retry
	}
	logger := opts.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		http:    httpClient,
		retry:   policy,
		tenant:  opts.Tenant,
		log:     logger,
		tracer:  opts.Tracer,
		reqs:    opts.Metrics.Counter(obs.MetricClientRequestsTotal, "Platform client API calls issued."),
		retries: opts.Metrics.Counter(obs.MetricClientRetriesTotal, "Platform client attempts retried after a transient failure."),
	}
	if opts.Adaptive != nil {
		c.limiter = newAdaptiveLimiter(*opts.Adaptive,
			opts.Metrics.Gauge(obs.MetricClientWindow, "Adaptive client concurrency window (floor of the AIMD window)."))
	}
	return c, nil
}

// ConcurrencyWindow reports the adaptive limiter's current window, or 0
// when the client runs without one. Load generators use it to observe the
// AIMD dynamics.
func (c *Client) ConcurrencyWindow() int {
	if c.limiter == nil {
		return 0
	}
	return c.limiter.Window()
}

// do issues a request with optional JSON body and decodes a JSON response
// into out (which may be nil), retrying retryable failures with capped
// exponential backoff. Request bodies are encoded into a pooled buffer that
// is reused across requests (and across retries of the same request).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var buf []byte
	if body != nil {
		bb := getBuf()
		defer putBuf(bb)
		if err := json.NewEncoder(bb).Encode(body); err != nil {
			return fmt.Errorf("platform: encode request: %w", err)
		}
		buf = bb.Bytes()
	}
	c.reqs.Inc()
	if c.limiter != nil {
		if err := c.limiter.acquire(ctx); err != nil {
			return err
		}
		defer c.limiter.release()
	}
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, path, buf, out)
		if err == nil {
			if c.limiter != nil {
				c.limiter.onSuccess()
			}
			return nil
		}
		if c.limiter != nil && overloaded(err) {
			c.limiter.onOverload()
		}
		if attempt+1 >= c.retry.MaxAttempts || !retryable(err) || ctx.Err() != nil {
			return err
		}
		c.retries.Inc()
		sp := c.tracer.Start("client.retry")
		sp.SetAttr("path", path)
		sp.SetAttrInt("attempt", int64(attempt+1))
		c.log.Debug("retrying request",
			"method", method, "path", path, "attempt", attempt+1, "error", err)
		// The server's Retry-After hint is a floor under the backoff: the
		// client never knocks again sooner than the gate asked it to.
		delay := backoffDelay(c.retry, attempt, rand.Float64())
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > delay {
			delay = apiErr.RetryAfter
		}
		select {
		case <-ctx.Done():
			sp.End()
			return err
		case <-time.After(delay):
		}
		sp.End()
	}
}

// overloaded reports whether an attempt failed because the server shed the
// request under admission control.
func overloaded(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

// attempt issues the request once.
func (c *Client) attempt(ctx context.Context, method, path string, buf []byte, out any) error {
	var reader io.Reader
	if buf != nil {
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("platform: build request: %w", err)
	}
	if buf != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(TenantHeader, c.tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("platform: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
			apiErr.Error = resp.Status
		}
		return &APIError{
			Status: resp.StatusCode, Message: apiErr.Error, Code: apiErr.Code,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("platform: decode response: %w", err)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header value in seconds. The server
// emits integer seconds for >=1s delays (the RFC 7231 form) and decimal
// seconds below that; HTTP-date values and garbage parse to zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil || secs <= 0 || secs > 3600 {
		return 0
	}
	return time.Duration(secs * float64(time.Second))
}

// Status fetches the platform's current run phase.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// RegisterWorker registers a worker ID.
func (c *Client) RegisterWorker(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers", RegisterWorkerRequest{WorkerID: workerID}, nil)
}

// Workers lists registered worker IDs.
func (c *Client) Workers(ctx context.Context) ([]string, error) {
	var out WorkersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out); err != nil {
		return nil, err
	}
	return out.Workers, nil
}

// Quality fetches the platform's quality estimate for a worker.
func (c *Client) Quality(ctx context.Context, workerID string) (float64, error) {
	var out QualityResponse
	if err := c.do(ctx, http.MethodGet, "/v1/workers/"+url.PathEscape(workerID)+"/quality", nil, &out); err != nil {
		return 0, err
	}
	return out.Quality, nil
}

// Forecast fetches the k-step-ahead predictive distribution of a worker's
// quality with its 95% credible interval.
func (c *Client) Forecast(ctx context.Context, workerID string, steps int) (ForecastResponse, error) {
	var out ForecastResponse
	path := fmt.Sprintf("/v1/workers/%s/forecast?steps=%d", url.PathEscape(workerID), steps)
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// OpenRun starts a run with the given tasks and budget.
//
// Deprecated: use OpenRunID, which names the run (the idempotency key)
// and its tenant explicitly and returns the run-scoped RunAPI handle.
// OpenRun only works against single-run backends.
func (c *Client) OpenRun(ctx context.Context, tasks []TaskSpec, budget float64) error {
	return c.do(ctx, http.MethodPost, "/v1/runs", OpenRunRequest{Tasks: tasks, Budget: budget}, nil)
}

// OpenRunID opens a run under a client-chosen ID for a tenant and returns
// the run-scoped handle. The ID is the idempotency key: retrying the same
// (id, tasks, budget) open is a no-op success, while reusing an ID with a
// different spec is rejected. Required form on a multi-run backend;
// works against a single-run backend too (tenant may be empty there).
func (c *Client) OpenRunID(ctx context.Context, id, tenant string, tasks []TaskSpec, budget float64) (*RunAPI, error) {
	var out OpenRunResponse
	err := c.do(ctx, http.MethodPost, "/v1/runs",
		OpenRunRequest{Tasks: tasks, Budget: budget, ID: id, Tenant: tenant}, &out)
	if err != nil {
		return nil, err
	}
	runID := out.RunID
	if runID == "" {
		runID = id
	}
	return c.Run(runID), nil
}

// Runs lists the runs currently in flight, in open order.
func (c *Client) Runs(ctx context.Context) ([]RunStatus, error) {
	var out RunsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out); err != nil {
		return nil, err
	}
	return out.Runs, nil
}

// Tenants lists every known tenant's control-plane status (policy-only
// tenants included), sorted by tenant. Multi-run backends only.
func (c *Client) Tenants(ctx context.Context) ([]TenantStatusResponse, error) {
	var out TenantsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out); err != nil {
		return nil, err
	}
	return out.Tenants, nil
}

// Tenant fetches one tenant's control-plane status: its policy (if any)
// and its spend ledger. Unknown tenants map back to
// melody.ErrUnknownTenant via errors.Is.
func (c *Client) Tenant(ctx context.Context, id string) (TenantStatusResponse, error) {
	var out TenantStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/tenants/"+url.PathEscape(id), nil, &out)
	return out, err
}

// PutTenant installs or replaces a tenant's policy and returns the
// resulting status. Tenants may be provisioned before their first run;
// lowering a quota below the tenant's outstanding commitment never fails
// (the open run settles, future opens are refused).
func (c *Client) PutTenant(ctx context.Context, id string, policy TenantPolicySpec) (TenantStatusResponse, error) {
	var out TenantStatusResponse
	err := c.do(ctx, http.MethodPut, "/v1/tenants/"+url.PathEscape(id),
		TenantPolicyRequest{Policy: policy}, &out)
	return out, err
}

// ResizeRegistry reshards the server's worker registry online and reports
// the resulting shard count and how many workers moved.
func (c *Client) ResizeRegistry(ctx context.Context, shards int) (RegistryResponse, error) {
	var out RegistryResponse
	err := c.do(ctx, http.MethodPut, "/v1/registry", RegistryResizeRequest{Shards: shards}, &out)
	return out, err
}

// Run returns a handle scoped to one run's /v1/runs/{id}/... endpoints.
// The special ID "current" (what the legacy current-run methods delegate
// to) addresses the most recently opened in-flight run.
func (c *Client) Run(id string) *RunAPI {
	return &RunAPI{c: c, id: id}
}

// RunAPI is a client handle scoped to a single run. All methods route to
// /v1/runs/{id}/..., so calls against different runs — different tenants'
// auctions — proceed concurrently on the server with no shared phase.
type RunAPI struct {
	c  *Client
	id string
}

// ID returns the run ID the handle is scoped to.
func (r *RunAPI) ID() string { return r.id }

// path builds the run-scoped endpoint path.
func (r *RunAPI) path(suffix string) string {
	return "/v1/runs/" + url.PathEscape(r.id) + suffix
}

// SubmitBid submits or replaces a worker's bid for this run.
func (r *RunAPI) SubmitBid(ctx context.Context, workerID string, cost float64, frequency int) error {
	return r.c.do(ctx, http.MethodPost, r.path("/bids"),
		BidRequest{WorkerID: workerID, Cost: cost, Frequency: frequency}, nil)
}

// SubmitBids submits a whole slice of bids for this run in one round trip,
// with the same per-item contract as Client.SubmitBids.
func (r *RunAPI) SubmitBids(ctx context.Context, bids []BidRequest) (melody.BatchResult, error) {
	var out BatchResponse
	if err := r.c.do(ctx, http.MethodPost, r.path("/bids/batch"),
		BidBatchRequest{Bids: bids}, &out); err != nil {
		return melody.BatchResult{}, err
	}
	if len(out.Results) != len(bids) {
		return melody.BatchResult{}, fmt.Errorf("platform: batch response has %d results for %d bids",
			len(out.Results), len(bids))
	}
	return batchResultFromWire(out.Results), nil
}

// CloseAuction ends this run's bidding and returns the allocation.
func (r *RunAPI) CloseAuction(ctx context.Context) (OutcomeResponse, error) {
	var out OutcomeResponse
	err := r.c.do(ctx, http.MethodPost, r.path("/close"), nil, &out)
	return out, err
}

// Outcome fetches this run's allocation after the auction closed.
func (r *RunAPI) Outcome(ctx context.Context) (OutcomeResponse, error) {
	var out OutcomeResponse
	err := r.c.do(ctx, http.MethodGet, r.path("/outcome"), nil, &out)
	return out, err
}

// SubmitAnswer uploads a worker's answer for a task assigned in this run.
func (r *RunAPI) SubmitAnswer(ctx context.Context, workerID, taskID, payload string) error {
	return r.c.do(ctx, http.MethodPost, r.path("/answers"),
		AnswerRequest{WorkerID: workerID, TaskID: taskID, Payload: payload}, nil)
}

// Answers lists the answers submitted so far in this run.
func (r *RunAPI) Answers(ctx context.Context) ([]Answer, error) {
	var out AnswersResponse
	if err := r.c.do(ctx, http.MethodGet, r.path("/answers"), nil, &out); err != nil {
		return nil, err
	}
	return out.Answers, nil
}

// SubmitScore records the requester's score for an answer in this run.
func (r *RunAPI) SubmitScore(ctx context.Context, workerID, taskID string, score float64) error {
	return r.c.do(ctx, http.MethodPost, r.path("/scores"),
		ScoreRequest{WorkerID: workerID, TaskID: taskID, Score: score}, nil)
}

// SubmitScores submits a whole slice of scores for this run in one round
// trip, with the same per-item contract as SubmitBids.
func (r *RunAPI) SubmitScores(ctx context.Context, scores []ScoreRequest) (melody.BatchResult, error) {
	var out BatchResponse
	if err := r.c.do(ctx, http.MethodPost, r.path("/scores/batch"),
		ScoreBatchRequest{Scores: scores}, &out); err != nil {
		return melody.BatchResult{}, err
	}
	if len(out.Results) != len(scores) {
		return melody.BatchResult{}, fmt.Errorf("platform: batch response has %d results for %d scores",
			len(out.Results), len(scores))
	}
	return batchResultFromWire(out.Results), nil
}

// FinishRun completes this run and triggers its tenant's quality update.
func (r *RunAPI) FinishRun(ctx context.Context) error {
	return r.c.do(ctx, http.MethodPost, r.path("/finish"), nil, nil)
}

// SubmitBid submits or replaces a worker's bid for the open run.
//
// Deprecated: use Run(id).SubmitBid — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) SubmitBid(ctx context.Context, workerID string, cost float64, frequency int) error {
	return c.Run("current").SubmitBid(ctx, workerID, cost, frequency)
}

// SubmitBids submits a whole slice of bids in one round trip. The returned
// BatchResult carries one outcome per bid: ErrAt(i) is nil for accepted
// items and the same error a single-item SubmitBid would have returned
// otherwise. The call error is non-nil only when the batch itself failed
// (transport fault, malformed or oversized batch) — in that case the zero
// BatchResult is returned.
//
// Deprecated: use Run(id).SubmitBids — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) SubmitBids(ctx context.Context, bids []BidRequest) (melody.BatchResult, error) {
	return c.Run("current").SubmitBids(ctx, bids)
}

// SubmitScores submits a whole slice of scores in one round trip, with the
// same per-item contract as SubmitBids.
//
// Deprecated: use Run(id).SubmitScores — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) SubmitScores(ctx context.Context, scores []ScoreRequest) (melody.BatchResult, error) {
	return c.Run("current").SubmitScores(ctx, scores)
}

// batchResultFromWire decodes per-item wire results into a BatchResult.
func batchResultFromWire(results []BatchItemResult) melody.BatchResult {
	errs := make([]error, len(results))
	for i, res := range results {
		errs[i] = res.Err()
	}
	return melody.NewBatchResult(errs)
}

// CloseAuction ends bidding and returns the allocation.
//
// Deprecated: use Run(id).CloseAuction — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) CloseAuction(ctx context.Context) (OutcomeResponse, error) {
	return c.Run("current").CloseAuction(ctx)
}

// Outcome fetches the current run's allocation after the auction closed.
//
// Deprecated: use Run(id).Outcome — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) Outcome(ctx context.Context) (OutcomeResponse, error) {
	return c.Run("current").Outcome(ctx)
}

// SubmitAnswer uploads a worker's answer for an assigned task.
//
// Deprecated: use Run(id).SubmitAnswer — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) SubmitAnswer(ctx context.Context, workerID, taskID, payload string) error {
	return c.Run("current").SubmitAnswer(ctx, workerID, taskID, payload)
}

// Answers lists the answers submitted so far in the current run.
//
// Deprecated: use Run(id).Answers — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) Answers(ctx context.Context) ([]Answer, error) {
	return c.Run("current").Answers(ctx)
}

// SubmitScore records the requester's score for an answer.
//
// Deprecated: use Run(id).SubmitScore — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) SubmitScore(ctx context.Context, workerID, taskID string, score float64) error {
	return c.Run("current").SubmitScore(ctx, workerID, taskID, score)
}

// FinishRun completes the run and triggers the quality update.
//
// Deprecated: use Run(id).FinishRun — this method routes through the
// deprecated "current" run alias, which is ambiguous once runs overlap.
func (c *Client) FinishRun(ctx context.Context) error {
	return c.Run("current").FinishRun(ctx)
}
