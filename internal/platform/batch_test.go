package platform

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"melody"
)

// openTestRun registers workers w0..w{n-1} and opens a run with the given
// tasks, failing the test on any error.
func openTestRun(t *testing.T, c *Client, n int, tasks []TaskSpec, budget float64) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if err := c.RegisterWorker(ctx, fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.OpenRun(ctx, tasks, budget); err != nil {
		t.Fatal(err)
	}
}

func TestBidBatchHappyPath(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	openTestRun(t, c, 4, []TaskSpec{{ID: "t1", Threshold: 10}}, 100)

	bids := make([]BidRequest, 4)
	for i := range bids {
		bids[i] = BidRequest{WorkerID: fmt.Sprintf("w%d", i), Cost: 1.5, Frequency: 1}
	}
	res, err := c.SubmitBids(ctx, bids)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Errs() {
		if e != nil {
			t.Errorf("bid %d rejected: %v", i, e)
		}
	}
	out, err := c.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignments) == 0 {
		t.Error("batched bids produced no assignments")
	}
}

// TestBidBatchPerItemErrors pins the per-item contract: a rejected item
// carries the same sentinel-mappable error the single-bid endpoint would
// have produced, and does not abort its neighbours.
func TestBidBatchPerItemErrors(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	openTestRun(t, c, 2, []TaskSpec{{ID: "t1", Threshold: 10}}, 100)

	res, err := c.SubmitBids(ctx, []BidRequest{
		{WorkerID: "w0", Cost: 1.5, Frequency: 1},
		{WorkerID: "ghost", Cost: 1.5, Frequency: 1},
		{WorkerID: "w1", Cost: 1.2, Frequency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrAt(0) != nil || res.ErrAt(2) != nil {
		t.Errorf("valid bids rejected: %v, %v", res.ErrAt(0), res.ErrAt(2))
	}
	if !errors.Is(res.ErrAt(1), melody.ErrUnknownWorker) {
		t.Errorf("unknown-worker bid error = %v, want ErrUnknownWorker", res.ErrAt(1))
	}
	if res.FailedCount() != 1 || res.OK() {
		t.Errorf("FailedCount = %d, OK = %v; want 1, false", res.FailedCount(), res.OK())
	}
	if !errors.Is(res.Err(), melody.ErrUnknownWorker) {
		t.Errorf("rolled-up Err = %v, want to match ErrUnknownWorker", res.Err())
	}
}

func TestScoreBatchPerItemErrors(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	openTestRun(t, c, 4, []TaskSpec{{ID: "t1", Threshold: 10}}, 100)
	if _, err := c.SubmitBids(ctx, []BidRequest{
		{WorkerID: "w0", Cost: 1.2, Frequency: 1},
		{WorkerID: "w1", Cost: 1.4, Frequency: 1},
		{WorkerID: "w2", Cost: 1.3, Frequency: 1},
		{WorkerID: "w3", Cost: 1.6, Frequency: 1},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := c.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignments) == 0 {
		t.Fatal("no assignments")
	}
	scores := []ScoreRequest{
		{WorkerID: out.Assignments[0].WorkerID, TaskID: out.Assignments[0].TaskID, Score: 7},
		{WorkerID: "w1", TaskID: "no-such-task", Score: 5},
	}
	res, err := c.SubmitScores(ctx, scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrAt(0) != nil {
		t.Errorf("assigned score rejected: %v", res.ErrAt(0))
	}
	if !errors.Is(res.ErrAt(1), melody.ErrNotAssigned) {
		t.Errorf("unassigned score error = %v, want ErrNotAssigned", res.ErrAt(1))
	}
	if err := c.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestBidBatchIdempotentReplay pins batch-level retry safety: replaying a
// whole batch (lost-response retry) is a per-item no-op success.
func TestBidBatchIdempotentReplay(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	openTestRun(t, c, 3, []TaskSpec{{ID: "t1", Threshold: 10}}, 100)

	bids := []BidRequest{
		{WorkerID: "w0", Cost: 1.5, Frequency: 1},
		{WorkerID: "w1", Cost: 1.2, Frequency: 2},
		{WorkerID: "w2", Cost: 1.8, Frequency: 1},
	}
	for round := 0; round < 2; round++ {
		res, err := c.SubmitBids(ctx, bids)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, e := range res.Errs() {
			if e != nil {
				t.Errorf("round %d bid %d: %v", round, i, e)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ts, c := newTestServer(t)
	ctx := context.Background()

	if _, err := c.SubmitBids(ctx, nil); err == nil {
		t.Error("empty batch accepted")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Errorf("empty batch error = %v, want 400 APIError", err)
		}
	}

	over := make([]BidRequest, MaxBatchItems+1)
	for i := range over {
		over[i] = BidRequest{WorkerID: "w", Cost: 1, Frequency: 1}
	}
	if _, err := c.SubmitBids(ctx, over); err == nil {
		t.Error("oversized batch accepted")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Errorf("oversized batch error = %v, want 400 APIError", err)
		}
	}
	_ = ts
}

// TestBidBatcherCoalesces drives many concurrent single-bid submissions
// through a BidBatcher and asserts they land in far fewer HTTP round trips
// than bids, with every caller getting its own outcome back.
func TestBidBatcherCoalesces(t *testing.T) {
	p := newTestPlatform(t)
	srv, err := NewServer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var batchPosts, singlePosts atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/runs/current/bids/batch":
			batchPosts.Add(1)
		case "/v1/runs/current/bids":
			singlePosts.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counted)
	t.Cleanup(ts.Close)
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	const nBids = 48
	ctx := context.Background()
	openTestRun(t, c, nBids, []TaskSpec{{ID: "t1", Threshold: 10}}, 100)

	b := NewBidBatcher(c, 16, 5*time.Millisecond)
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < nBids; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := b.Submit(ctx, fmt.Sprintf("w%d", i), 1.5, 1); err != nil {
				t.Errorf("bid %d: %v", i, err)
				failures.Add(1)
			}
		}(i)
	}
	wg.Wait()
	b.Close()

	if n := singlePosts.Load(); n != 0 {
		t.Errorf("%d bids bypassed the batcher", n)
	}
	if n := batchPosts.Load(); n == 0 || n >= nBids {
		t.Errorf("batcher used %d round trips for %d bids; expected coalescing", n, nBids)
	}
	// Per-item failure still reaches its caller through the batcher (while
	// the auction is still open, so the unknown worker is the failure).
	b2 := NewBidBatcher(c, 4, time.Millisecond)
	defer b2.Close()
	if err := b2.Submit(ctx, "ghost", 1.5, 1); !errors.Is(err, melody.ErrUnknownWorker) {
		t.Errorf("batched unknown-worker bid error = %v, want ErrUnknownWorker", err)
	}
	if err := b.Submit(ctx, "late", 1.5, 1); err == nil {
		t.Error("closed batcher accepted a bid")
	}

	// Every bid actually landed: the auction sees all workers.
	out, err := c.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Assignments) == 0 {
		t.Error("no assignments from batched bids")
	}
}
