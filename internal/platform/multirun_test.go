package platform

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"melody"
)

// newTestScheduler builds a run scheduler over a funded shared ledger with
// the reference tracker/auction configuration.
func newTestScheduler(t *testing.T, funded float64, epochEvery int) (*melody.RunScheduler, *melody.Ledger) {
	t.Helper()
	money := melody.NewLedger()
	if _, err := money.Deposit(melody.RequesterAccount, funded, "test funding"); err != nil {
		t.Fatal(err)
	}
	s, err := melody.NewRunScheduler(melody.SchedulerConfig{
		Auction: melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		NewEstimator: func(string) (melody.Estimator, error) {
			return melody.NewQualityTracker(melody.QualityTrackerConfig{
				InitialMean: 5.5, InitialVar: 2.25,
				Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
				EMPeriod: 10, EMWindow: 50,
			})
		},
		Ledger:     money,
		EpochEvery: epochEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, money
}

func newMultiTestServer(t *testing.T, backend MultiRunBackend) *httptest.Server {
	t.Helper()
	srv, err := NewMultiServer(backend, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func tenantClient(t *testing.T, ts *httptest.Server, tenant string) *Client {
	t.Helper()
	c, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Tenant: tenant})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// driveRunHTTP pushes one run through bidding, close, scoring and finish
// entirely over the wire.
func driveRunHTTP(ctx context.Context, c *Client, runID string, tenant string, workers int) error {
	run, err := c.OpenRunID(ctx, runID, tenant, []TaskSpec{
		{ID: runID + "-t1", Threshold: 10},
		{ID: runID + "-t2", Threshold: 10},
	}, 100)
	if err != nil {
		return fmt.Errorf("open %s: %w", runID, err)
	}
	for i := 0; i < workers; i++ {
		w := fmt.Sprintf("%s-w%d", tenant, i)
		if err := run.SubmitBid(ctx, w, 1+0.1*float64(i), 1); err != nil {
			return fmt.Errorf("bid %s: %w", w, err)
		}
	}
	out, err := run.CloseAuction(ctx)
	if err != nil {
		return fmt.Errorf("close %s: %w", runID, err)
	}
	for _, a := range out.Assignments {
		if err := run.SubmitScore(ctx, a.WorkerID, a.TaskID, 7); err != nil {
			return fmt.Errorf("score %s: %w", runID, err)
		}
	}
	if err := run.FinishRun(ctx); err != nil {
		return fmt.Errorf("finish %s: %w", runID, err)
	}
	return nil
}

// TestMultiServerConcurrentTenants serves three tenants' overlapping run
// sequences from one multi-run server and checks completion, the /v1/runs
// listing, and exact money conservation on the shared ledger.
func TestMultiServerConcurrentTenants(t *testing.T) {
	ctx := context.Background()
	const tenants, runs, workers = 3, 2, 5
	sched, money := newTestScheduler(t, float64(tenants*runs)*100, 2)
	ts := newMultiTestServer(t, sched)

	for ti := 0; ti < tenants; ti++ {
		c := tenantClient(t, ts, fmt.Sprintf("t%d", ti))
		for i := 0; i < workers; i++ {
			if err := c.RegisterWorker(ctx, fmt.Sprintf("t%d-w%d", ti, i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, tenants)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			c := tenantClient(t, ts, tenant)
			for r := 1; r <= runs; r++ {
				if err := driveRunHTTP(ctx, c, fmt.Sprintf("%s-r%d", tenant, r), tenant, workers); err != nil {
					errCh <- err
					return
				}
			}
		}(fmt.Sprintf("t%d", ti))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if got := sched.CompletedRuns(); got != tenants*runs {
		t.Errorf("completed runs = %d, want %d", got, tenants*runs)
	}
	c := tenantClient(t, ts, "t0")
	if rs, err := c.Runs(ctx); err != nil || len(rs) != 0 {
		t.Errorf("Runs() after completion = %v, %v; want empty", rs, err)
	}
	if err := sched.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, acct := range []melody.LedgerAccount{"escrow", "epoch_pool"} {
		if b := money.Balance(acct); b > 1e-9 || b < -1e-9 {
			t.Errorf("%s holds %v after flush, want 0", acct, b)
		}
	}
}

// TestMultiServerRunsListing opens two tenants' runs without closing them
// and checks both appear, with tenants, in GET /v1/runs.
func TestMultiServerRunsListing(t *testing.T) {
	ctx := context.Background()
	sched, _ := newTestScheduler(t, 400, 0)
	ts := newMultiTestServer(t, sched)
	tasks := []TaskSpec{{ID: "t1", Threshold: 10}}

	ca := tenantClient(t, ts, "a")
	cb := tenantClient(t, ts, "b")
	if _, err := ca.OpenRunID(ctx, "a-r1", "a", tasks, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.OpenRunID(ctx, "b-r1", "b", tasks, 100); err != nil {
		t.Fatal(err)
	}
	rs, err := ca.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, r := range rs {
		seen[r.RunID] = r.Tenant
	}
	if seen["a-r1"] != "a" || seen["b-r1"] != "b" {
		t.Errorf("Runs() = %v, want a-r1@a and b-r1@b", rs)
	}
}

// TestMultiServerIdempotentRetries replays open, close and finish over the
// wire — the at-least-once client contract against run-ID-keyed state.
func TestMultiServerIdempotentRetries(t *testing.T) {
	ctx := context.Background()
	sched, money := newTestScheduler(t, 100, 0)
	ts := newMultiTestServer(t, sched)
	c := tenantClient(t, ts, "a")
	for i := 0; i < 3; i++ {
		if err := c.RegisterWorker(ctx, fmt.Sprintf("a-w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tasks := []TaskSpec{{ID: "r1-t1", Threshold: 10}}
	run, err := c.OpenRunID(ctx, "r1", "a", tasks, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenRunID(ctx, "r1", "a", tasks, 100); err != nil {
		t.Errorf("replayed open = %v, want success", err)
	}
	if got := money.Balance("escrow"); got != 100 {
		t.Errorf("escrow after replayed open = %v, want 100", got)
	}
	if err := run.SubmitBid(ctx, "a-w0", 1.2, 1); err != nil {
		t.Fatal(err)
	}
	out1, err := run.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := run.CloseAuction(ctx)
	if err != nil {
		t.Fatalf("replayed close = %v, want outcome", err)
	}
	if fmt.Sprintf("%+v", out1) != fmt.Sprintf("%+v", out2) {
		t.Errorf("replayed close diverged:\n%+v\n%+v", out1, out2)
	}
	for _, a := range out1.Assignments {
		if err := run.SubmitScore(ctx, a.WorkerID, a.TaskID, 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	before := money.Balance(melody.RequesterAccount)
	if err := run.FinishRun(ctx); err != nil {
		t.Errorf("replayed finish = %v, want success", err)
	}
	if got := money.Balance(melody.RequesterAccount); got != before {
		t.Errorf("replayed finish moved money: %v -> %v", before, got)
	}
}

// TestMultiServerCurrentAlias drives a run through the deprecated
// single-run client methods, which address the "current" alias, against
// the multi-run server.
func TestMultiServerCurrentAlias(t *testing.T) {
	ctx := context.Background()
	sched, _ := newTestScheduler(t, 100, 0)
	ts := newMultiTestServer(t, sched)
	c := tenantClient(t, ts, "a")
	if err := c.RegisterWorker(ctx, "a-w0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenRunID(ctx, "r1", "a", []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitBid(ctx, "a-w0", 1.3, 1); err != nil {
		t.Fatalf("legacy bid via current: %v", err)
	}
	out, err := c.CloseAuction(ctx)
	if err != nil {
		t.Fatalf("legacy close via current: %v", err)
	}
	for _, a := range out.Assignments {
		if err := c.SubmitScore(ctx, a.WorkerID, a.TaskID, 6); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishRun(ctx); err != nil {
		t.Fatalf("legacy finish via current: %v", err)
	}
	if got := sched.CompletedRuns(); got != 1 {
		t.Errorf("completed runs = %d, want 1", got)
	}
}
