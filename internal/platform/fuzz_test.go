package platform

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"melody"
)

// fuzzEndpoints enumerates every route the server registers, so the fuzzer
// selects a real handler (never the mux's plain-text 404) and the JSON-error
// contract below applies to the whole surface.
var fuzzEndpoints = []struct{ method, path string }{
	{http.MethodGet, "/v1/status"},
	{http.MethodPost, "/v1/workers"},
	{http.MethodGet, "/v1/workers"},
	{http.MethodGet, "/v1/workers/w1/quality"},
	{http.MethodGet, "/v1/workers/w1/forecast"},
	{http.MethodPost, "/v1/runs"},
	{http.MethodPost, "/v1/runs/current/bids"},
	{http.MethodPost, "/v1/runs/current/close"},
	{http.MethodGet, "/v1/runs/current/outcome"},
	{http.MethodPost, "/v1/runs/current/answers"},
	{http.MethodGet, "/v1/runs/current/answers"},
	{http.MethodPost, "/v1/runs/current/scores"},
	{http.MethodPost, "/v1/runs/current/finish"},
}

// newFuzzHandler builds a fresh platform and server per execution so state
// from one fuzz input can never leak into the next.
func newFuzzHandler(t testing.TB) http.Handler {
	t.Helper()
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler()
}

// do issues one request against the in-process handler.
func do(h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// FuzzWireDecode throws fuzzer-chosen bodies at every API endpoint and
// checks the wire contract: no handler panics, every status is a valid HTTP
// code, and every non-2xx body decodes as an ErrorResponse with a
// non-empty message — malformed JSON, wrong types, huge numbers and garbage
// bytes must all surface as clean errors, never as a hung run or a 200.
// The advance flag first walks the platform into the bidding phase with
// valid requests, exposing the phase-dependent handlers (bids, close,
// answers, scores) to the same garbage.
//
// Explore with `go test ./internal/platform -run '^$' -fuzz FuzzWireDecode`.
func FuzzWireDecode(f *testing.F) {
	f.Add(uint8(0), false, []byte(`{}`))
	f.Add(uint8(1), false, []byte(`{"workerId":"w1"}`))
	f.Add(uint8(5), false, []byte(`{"tasks":[{"id":"t1","threshold":6}],"budget":50}`))
	f.Add(uint8(6), true, []byte(`{"workerId":"w1","cost":1.5,"frequency":2}`))
	f.Add(uint8(6), true, []byte(`{"workerId":"w1","cost":1e308,"frequency":-2}`))
	f.Add(uint8(11), true, []byte(`{"workerId":"w1","taskId":"t1","score":"not a number"}`))
	f.Add(uint8(255), false, []byte(`not json`))
	f.Add(uint8(7), true, []byte(nil))

	f.Fuzz(func(t *testing.T, endpoint uint8, advance bool, body []byte) {
		h := newFuzzHandler(t)
		if advance {
			do(h, http.MethodPost, "/v1/workers", []byte(`{"workerId":"w1"}`))
			do(h, http.MethodPost, "/v1/runs", []byte(`{"tasks":[{"id":"t1","threshold":6}],"budget":50}`))
		}
		ep := fuzzEndpoints[int(endpoint)%len(fuzzEndpoints)]
		rec := do(h, ep.method, ep.path, body)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("%s %s returned impossible status %d", ep.method, ep.path, rec.Code)
		}
		if rec.Code >= 400 {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("%s %s: %d body is not a JSON error: %q", ep.method, ep.path, rec.Code, rec.Body.Bytes())
			}
			if er.Error == "" {
				t.Fatalf("%s %s: %d error response has empty message", ep.method, ep.path, rec.Code)
			}
		}
		// Whatever the fuzzed request did, the platform must still answer
		// a well-formed status request: no input may wedge the server.
		st := do(h, http.MethodGet, "/v1/status", nil)
		if st.Code != http.StatusOK {
			t.Fatalf("status endpoint broken after fuzzed request: %d %q", st.Code, st.Body.Bytes())
		}
		var status StatusResponse
		if err := json.Unmarshal(st.Body.Bytes(), &status); err != nil {
			t.Fatalf("status body corrupt after fuzzed request: %v", err)
		}
	})
}
