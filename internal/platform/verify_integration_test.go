package platform

// End-to-end mechanism verification over the wire: a full Fig. 2 run is
// driven through the HTTP API and the outcome that comes back is checked
// against the same invariants (Theorems 5/6, budget feasibility, critical
// payments) the unit suites enforce, plus money conservation on the
// attached ledger. This catches wire-layer bugs — dropped assignments,
// re-ordered payments, float truncation — that in-process tests cannot see.

import (
	"context"
	"net/http/httptest"
	"testing"

	"melody"
	"melody/internal/core"
	"melody/internal/ledger"
	"melody/internal/stats"
	"melody/internal/verify"
)

func TestWireOutcomeSatisfiesMechanismInvariants(t *testing.T) {
	money := ledger.New()
	if _, err := money.Deposit(ledger.Requester, 1_000, "funding"); err != nil {
		t.Fatal(err)
	}
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction: cfg, Estimator: tracker, Ledger: money,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r := stats.NewRNG(2024)
	ids := []string{"wa", "wb", "wc", "wd", "we", "wf", "wg", "wh"}
	for _, id := range ids {
		if err := c.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	for run := 0; run < 3; run++ {
		tasks := []TaskSpec{
			{ID: "t1", Threshold: r.Uniform(6, 12)},
			{ID: "t2", Threshold: r.Uniform(6, 12)},
			{ID: "t3", Threshold: r.Uniform(6, 12)},
		}
		budget := r.Uniform(30, 120)
		if err := c.OpenRun(ctx, tasks, budget); err != nil {
			t.Fatal(err)
		}
		// Reconstruct the instance the auction will see: the quality each
		// worker carries into the run is the tracker's current estimate,
		// readable over the same API.
		in := core.Instance{Budget: budget}
		for _, id := range ids {
			cost := r.Uniform(1, 2)
			freq := r.UniformInt(1, 4)
			if err := c.SubmitBid(ctx, id, cost, freq); err != nil {
				t.Fatal(err)
			}
			q, err := c.Quality(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			in.Workers = append(in.Workers, core.Worker{
				ID: id, Bid: core.Bid{Cost: cost, Frequency: freq}, Quality: q,
			})
		}
		for _, task := range tasks {
			in.Tasks = append(in.Tasks, core.Task{ID: task.ID, Threshold: task.Threshold})
		}

		wire, err := c.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// The wire format carries no per-task payment map; rebuild it from
		// the assignments before running the structural checks.
		out := &core.Outcome{
			SelectedTasks: wire.SelectedTasks,
			TotalPayment:  wire.TotalPayment,
			TaskPayment:   make(map[string]float64),
		}
		for _, a := range wire.Assignments {
			out.Assignments = append(out.Assignments, core.Assignment{
				WorkerID: a.WorkerID, TaskID: a.TaskID, Payment: a.Payment,
			})
			out.TaskPayment[a.TaskID] += a.Payment
		}
		if err := verify.CheckAuctionOutcome(in, out, verify.MelodyChecks()); err != nil {
			t.Fatalf("run %d: %v", run+1, err)
		}
		// And the wire outcome must match running MELODY locally on the
		// reconstructed instance: the API may not distort the allocation.
		if err := verify.CheckAgainstReference(cfg, in); err != nil {
			t.Fatalf("run %d: %v", run+1, err)
		}

		for _, a := range wire.Assignments {
			if err := c.SubmitScore(ctx, a.WorkerID, a.TaskID, r.Uniform(3, 9)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckMoneyConservation(money); err != nil {
			t.Fatalf("run %d: %v", run+1, err)
		}
		if err := verify.CheckEscrowSettled(money); err != nil {
			t.Fatalf("run %d: %v", run+1, err)
		}
	}
}
