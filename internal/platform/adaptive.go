package platform

import (
	"context"
	"math"
	"sync"

	"melody/internal/obs"
)

// AdaptiveConfig tunes the client's AIMD concurrency window: the number of
// platform calls a Client lets proceed concurrently grows by roughly one
// per window of successes (additive increase) and halves on every
// overload signal — a 429 shed or a Retry-After hint — mirroring how the
// server's admission gate wants clients to behave (multiplicative
// decrease). The window floor keeps progress alive through sustained
// overload; honoring Retry-After does the actual waiting.
type AdaptiveConfig struct {
	// MinWindow is the floor the window never drops below; 0 defaults to 1.
	MinWindow int
	// MaxWindow caps additive growth; 0 defaults to 256.
	MaxWindow int
	// InitialWindow is the starting window; 0 defaults to MinWindow+1.
	InitialWindow int
	// Backoff is the multiplicative-decrease factor applied on overload;
	// 0 defaults to 0.5. Values are clamped into (0, 1).
	Backoff float64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.MinWindow <= 0 {
		c.MinWindow = 1
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 256
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.InitialWindow <= 0 {
		c.InitialWindow = c.MinWindow + 1
	}
	if c.InitialWindow > c.MaxWindow {
		c.InitialWindow = c.MaxWindow
	}
	if !(c.Backoff > 0 && c.Backoff < 1) {
		c.Backoff = 0.5
	}
	return c
}

// adaptiveLimiter is the AIMD window shared by every call on one Client.
// Acquire blocks while the in-flight count has used up the current window;
// onSuccess / onOverload move the window. Safe for concurrent use.
type adaptiveLimiter struct {
	cfg AdaptiveConfig

	mu       sync.Mutex
	cond     *sync.Cond
	window   float64 // fractional AIMD state; floor() is the usable window
	inFlight int

	gauge *obs.Gauge // nil-safe
}

func newAdaptiveLimiter(cfg AdaptiveConfig, gauge *obs.Gauge) *adaptiveLimiter {
	l := &adaptiveLimiter{cfg: cfg.withDefaults(), gauge: gauge}
	l.cond = sync.NewCond(&l.mu)
	l.window = float64(l.cfg.InitialWindow)
	l.gauge.Set(math.Floor(l.window))
	return l
}

// acquire blocks until an in-flight slot is free under the current window
// or ctx ends. The caller must release() exactly once after acquiring.
func (l *adaptiveLimiter) acquire(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// A cond wait cannot watch ctx directly; a watcher goroutine wakes the
	// waiters when the context ends so cancelled callers leave the queue.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.inFlight >= int(l.window) {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	l.inFlight++
	return nil
}

// release frees the slot taken by acquire.
func (l *adaptiveLimiter) release() {
	l.mu.Lock()
	l.inFlight--
	l.cond.Broadcast()
	l.mu.Unlock()
}

// onSuccess applies additive increase: one extra slot per full window of
// successful calls.
func (l *adaptiveLimiter) onSuccess() {
	l.mu.Lock()
	l.window += 1 / l.window
	if max := float64(l.cfg.MaxWindow); l.window > max {
		l.window = max
	}
	l.gauge.Set(math.Floor(l.window))
	l.cond.Broadcast()
	l.mu.Unlock()
}

// onOverload applies multiplicative decrease after a shed (429) response.
func (l *adaptiveLimiter) onOverload() {
	l.mu.Lock()
	l.window *= l.cfg.Backoff
	if min := float64(l.cfg.MinWindow); l.window < min {
		l.window = min
	}
	l.gauge.Set(math.Floor(l.window))
	l.mu.Unlock()
}

// Window exposes the current usable window, for tests and reporting.
func (l *adaptiveLimiter) Window() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.window)
}
