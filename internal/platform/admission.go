package platform

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"melody"
	"melody/internal/obs"
)

// TenantHeader carries the caller's tenant identity for per-tenant rate
// limiting. The bundled Client sets it from ClientOptions.Tenant; requests
// without the header share no rate budget and are only subject to the
// concurrency gate.
const TenantHeader = "X-Melody-Tenant"

// AdmissionConfig bounds what the server accepts before it starts shedding
// load. The zero value disables every gate (the pre-admission behaviour).
//
// Admission applies only to the sheddable ingest endpoints — worker
// registration, bid submission and answer upload. The control plane
// (open/close/finish/outcome/status) and the requester's scoring traffic
// are never shed, so a run that opened always settles: phase transitions
// run, scores land, the ledger refunds escrow. Bids may be refused; the
// auction simply allocates over the bids that made it in.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently admitted ingest requests; 0 disables
	// the concurrency gate.
	MaxInFlight int
	// AnswerMaxInFlight carves the answer endpoint out of the shared
	// in-flight gate into its own budget, so a flood of answer uploads
	// during scoring can never occupy every slot and starve bid ingest
	// (and vice versa). 0 keeps answers on the shared gate.
	AnswerMaxInFlight int
	// TenantMaxRuns caps how many runs a tenant (TenantHeader) may hold in
	// flight at once on a multi-run backend; further opens are shed with
	// 429 until one of the tenant's runs finishes. 0 disables the quota.
	TenantMaxRuns int
	// MaxQueue is how many ingest requests may wait for a slot beyond
	// MaxInFlight before new arrivals fast-fail with 429. 0 means no
	// waiting room: the gate sheds as soon as every slot is taken.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits before it is
	// shed anyway; 0 defaults to 100ms. The bound keeps queue time out of
	// the latency tail instead of letting it grow without limit.
	QueueTimeout time.Duration
	// TenantRatePerSec is each tenant's sustained ingest budget in
	// requests per second (token bucket, refilled continuously); 0
	// disables per-tenant limiting. Tenancy comes from TenantHeader.
	TenantRatePerSec float64
	// TenantBurst is the token bucket's capacity; 0 defaults to
	// max(1, TenantRatePerSec).
	TenantBurst float64
	// RetryAfter is the backoff hint attached to every 429; 0 defaults to
	// 250ms. Sub-second hints are emitted with decimals (both ends of this
	// API are ours); standard integer-second parsing still reads >=1s
	// values.
	RetryAfter time.Duration
}

// withDefaults fills the zero knobs that have non-zero defaults.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.TenantRatePerSec
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	return c
}

// enabled reports whether any gate is configured.
func (c AdmissionConfig) enabled() bool {
	return c.MaxInFlight > 0 || c.AnswerMaxInFlight > 0 ||
		c.TenantRatePerSec > 0 || c.TenantMaxRuns > 0
}

// WithAdmission arms admission control on the server's ingest endpoints.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *Server) {
		if cfg.enabled() {
			s.admission = newAdmission(cfg)
		}
	}
}

// admission is the server-side load gate: a bounded in-flight semaphore
// with a bounded waiting room, plus per-tenant token buckets. It never
// blocks the control plane — only the endpoints the server explicitly
// routes through it.
type admission struct {
	cfg AdmissionConfig
	// slots is the shared ingest semaphore; ansSlots, when non-nil, is the
	// answer endpoint's dedicated budget (per-endpoint admission), so
	// answer uploads and bid ingest shed independently.
	slots    chan struct{} // nil when MaxInFlight is 0
	ansSlots chan struct{} // nil when AnswerMaxInFlight is 0

	queued   atomic.Int64
	inFlight atomic.Int64

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	// runsMu guards openRuns, the per-tenant runs-in-flight counts backing
	// the TenantMaxRuns quota.
	runsMu   sync.Mutex
	openRuns map[string]int

	// nil-safe instrument handles, bound by instrument().
	shed        *obs.CounterVec
	rateLimited *obs.Counter
	queueDepth  *obs.Gauge
	inFlightG   *obs.Gauge
}

// tokenBucket is one tenant's rate budget, refilled continuously.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(cfg AdmissionConfig) *admission {
	a := &admission{cfg: cfg.withDefaults()}
	if a.cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, a.cfg.MaxInFlight)
	}
	if a.cfg.AnswerMaxInFlight > 0 {
		a.ansSlots = make(chan struct{}, a.cfg.AnswerMaxInFlight)
	}
	if a.cfg.TenantRatePerSec > 0 {
		a.buckets = make(map[string]*tokenBucket)
	}
	if a.cfg.TenantMaxRuns > 0 {
		a.openRuns = make(map[string]int)
	}
	return a
}

// instrument binds the admission metric families; reg may be nil.
func (a *admission) instrument(reg *obs.Registry) {
	a.shed = reg.CounterVec(obs.MetricAdmissionShedTotal,
		"Requests shed with 429 by admission control, by endpoint.", "endpoint")
	a.rateLimited = reg.Counter(obs.MetricAdmissionRateLimitedTotal,
		"Requests shed because a tenant exhausted its rate budget.")
	a.queueDepth = reg.Gauge(obs.MetricAdmissionQueueDepth,
		"Ingest requests currently queued for an admission slot.")
	a.inFlightG = reg.Gauge(obs.MetricAdmissionInFlight,
		"Ingest requests currently holding an admission slot.")
}

// admit decides one ingest request's fate: it returns a release function
// when the request may proceed, or false when it must be shed. Shedding is
// recorded against the endpoint's counter here, so callers only write the
// 429.
func (a *admission) admit(r *http.Request, endpoint string) (release func(), ok bool) {
	if tenant := r.Header.Get(TenantHeader); tenant != "" && a.buckets != nil {
		if !a.takeToken(tenant) {
			a.rateLimited.Inc()
			a.shed.With(endpoint).Inc()
			return nil, false
		}
	}
	// The answer endpoint draws from its own budget when one is carved
	// out; everything else shares the main gate.
	slots := a.slots
	if endpoint == "answer" && a.ansSlots != nil {
		slots = a.ansSlots
	}
	if slots == nil {
		return func() {}, true
	}
	select {
	case slots <- struct{}{}:
	default:
		// Every slot is taken: join the bounded queue or shed. The queued
		// counter admits one waiter past MaxQueue in a race at worst —
		// admission is a load gate, not an exact semaphore.
		if a.queued.Load() >= int64(a.cfg.MaxQueue) {
			a.shed.With(endpoint).Inc()
			return nil, false
		}
		a.queued.Add(1)
		a.queueDepth.Set(float64(a.queued.Load()))
		timer := time.NewTimer(a.cfg.QueueTimeout)
		defer timer.Stop()
		var admitted bool
		select {
		case slots <- struct{}{}:
			admitted = true
		case <-timer.C:
		case <-r.Context().Done():
		}
		a.queued.Add(-1)
		a.queueDepth.Set(float64(a.queued.Load()))
		if !admitted {
			a.shed.With(endpoint).Inc()
			return nil, false
		}
	}
	a.inFlightG.Set(float64(a.inFlight.Add(1)))
	return func() {
		<-slots
		a.inFlightG.Set(float64(a.inFlight.Add(-1)))
	}, true
}

// acquireRun claims one of a tenant's runs-in-flight quota slots. It
// returns the release to call when the run finishes (or fails to open),
// or ok=false when the tenant is at its cap and the open must be shed.
// Tenants are identified by TenantHeader; requests without one share the
// unnamed bucket. A nil admission or a zero quota admits everything.
func (a *admission) acquireRun(tenant string) (release func(), ok bool) {
	if a == nil || a.openRuns == nil {
		return func() {}, true
	}
	a.runsMu.Lock()
	defer a.runsMu.Unlock()
	if a.openRuns[tenant] >= a.cfg.TenantMaxRuns {
		a.shed.With("open_run").Inc()
		return nil, false
	}
	a.openRuns[tenant]++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.runsMu.Lock()
			defer a.runsMu.Unlock()
			if a.openRuns[tenant] > 0 {
				a.openRuns[tenant]--
			}
		})
	}, true
}

// takeToken spends one token from the tenant's bucket, refilling by the
// wall clock since the last take.
func (a *admission) takeToken(tenant string) bool {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: a.cfg.TenantBurst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.cfg.TenantRatePerSec
		if b.tokens > a.cfg.TenantBurst {
			b.tokens = a.cfg.TenantBurst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterValue formats a Retry-After delay. Whole seconds use the
// RFC 7231 integer form; sub-second hints keep three decimals so a fast
// local loop is not forced into full-second backoff.
func retryAfterValue(d time.Duration) string {
	if d >= time.Second && d%time.Second == 0 {
		return strconv.Itoa(int(d / time.Second))
	}
	return strconv.FormatFloat(d.Seconds(), 'f', 3, 64)
}

// writeShed answers a shed request: 429, a Retry-After hint, and the
// overloaded wire code so clients can branch with
// errors.Is(err, melody.ErrOverloaded).
func writeShed(w http.ResponseWriter, retryAfter time.Duration) {
	w.Header().Set("Retry-After", retryAfterValue(retryAfter))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error: fmt.Sprintf("%v: retry after %v", melody.ErrOverloaded, retryAfter),
		Code:  string(melody.CodeOverloaded),
	})
}

// gate wraps an ingest handler with the admission decision; the handler
// runs only for admitted requests. With admission disabled it returns the
// handler untouched.
func (s *Server) gate(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.admission == nil {
		return h
	}
	a := s.admission
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := a.admit(r, endpoint)
		if !ok {
			writeShed(w, a.cfg.RetryAfter)
			return
		}
		defer release()
		h(w, r)
	}
}
