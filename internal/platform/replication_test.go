package platform

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"melody/internal/eventlog"
)

// startReplServer boots a platform server with replication mounted over a
// small segmented log.
func startReplServer(t *testing.T) (*httptest.Server, *eventlog.SegmentedLog) {
	t.Helper()
	p, _ := buildLedgerPlatform(t)
	backend, seg, err := eventlog.OpenPersistentSegmented(t.TempDir(), p, eventlog.SegmentedOptions{
		Options:      eventlog.Options{SyncEveryAppend: true},
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	srv, err := NewServer(backend, nil, WithReplicationSource(seg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Put some records in the log through the public API.
	ctx := context.Background()
	for _, id := range []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"} {
		if err := backend.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	return ts, seg
}

func TestReplicationEndpoints(t *testing.T) {
	ts, seg := startReplServer(t)
	rc, err := NewReplicationClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	m, err := rc.Manifest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != seg.Seq() {
		t.Errorf("wire manifest seq = %d, want %d", m.Seq, seg.Seq())
	}
	if len(m.Segments) == 0 {
		t.Fatal("wire manifest offers no segments")
	}

	// Chunks round-trip the durable bytes exactly.
	first := m.Segments[0]
	var got []byte
	var off int64
	for {
		chunk, done, err := rc.Chunk(ctx, first.Name, off, 64)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, chunk...)
		off += int64(len(chunk))
		if done || len(chunk) == 0 {
			break
		}
	}
	want, _, err := seg.ReadFileRange(first.Name, 0, int(first.Size))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("wire chunks differ from direct ReadFileRange")
	}

	// Unknown files are 404, mapped distinctly from bad parameters.
	_, _, err = rc.Chunk(ctx, "seg-9999999999999999.wal", 0, 64)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown file err = %v, want 404 APIError", err)
	}

	// Acks surface in the status endpoint.
	if err := rc.Ack(ctx, "replica-a", first.Name, first.Size); err != nil {
		t.Fatal(err)
	}
	status, err := rc.ReplicationStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Replicas) != 1 || status.Replicas[0].ID != "replica-a" ||
		status.Replicas[0].Offset != first.Size {
		t.Errorf("status = %+v, want replica-a at %d", status.Replicas, first.Size)
	}
	if status.Seq != seg.Seq() {
		t.Errorf("status seq = %d, want %d", status.Seq, seg.Seq())
	}
}

func TestReplicationNotMountedWithoutSource(t *testing.T) {
	p, _ := buildLedgerPlatform(t)
	srv, err := NewServer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/replication/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("replication endpoint answered %d on a server with no source", resp.StatusCode)
	}
}
