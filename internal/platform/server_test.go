package platform

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"melody"
)

// newTestPlatform builds the reference platform configuration shared by
// the HTTP tests and the serial-equivalence comparisons.
func newTestPlatform(t *testing.T) *melody.Platform {
	t.Helper()
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := NewServer(newTestPlatform(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil platform accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", nil); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := NewClient("http://x", nil); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

func TestStatusIdle(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseIdle || st.Run != 0 || st.Workers != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestFullRunOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()

	for _, id := range []string{"w1", "w2", "w3"} {
		if err := c.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	workers, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 3 {
		t.Fatalf("workers = %v", workers)
	}

	tasks := []TaskSpec{{ID: "t1", Threshold: 9}, {ID: "t2", Threshold: 9}}
	if err := c.OpenRun(ctx, tasks, 100); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseBidding || st.Run != 1 {
		t.Errorf("status after open = %+v", st)
	}

	for _, id := range []string{"w1", "w2", "w3"} {
		if err := c.SubmitBid(ctx, id, 1.2, 2); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.SelectedTasks) == 0 {
		t.Fatal("no tasks selected")
	}
	got, err := c.Outcome(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Assignments) != len(out.Assignments) {
		t.Errorf("Outcome mismatch: %d vs %d", len(got.Assignments), len(out.Assignments))
	}

	for _, a := range out.Assignments {
		if err := c.SubmitAnswer(ctx, a.WorkerID, a.TaskID, AnswerPayload(7.0)); err != nil {
			t.Fatal(err)
		}
	}
	answers, err := c.Answers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(out.Assignments) {
		t.Fatalf("answers = %d, want %d", len(answers), len(out.Assignments))
	}
	for _, ans := range answers {
		sample, err := ParseAnswerPayload(ans.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SubmitScore(ctx, ans.WorkerID, ans.TaskID, sample); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}

	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != PhaseIdle || st.Run != 1 {
		t.Errorf("status after finish = %+v", st)
	}
	q, err := c.Quality(ctx, out.Assignments[0].WorkerID)
	if err != nil {
		t.Fatal(err)
	}
	if q <= 5.5 {
		t.Errorf("scored worker quality %v did not rise", q)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	ts, c := newTestServer(t)
	ctx := context.Background()

	// Conflict: bid with no open run.
	err := c.SubmitBid(ctx, "w", 1, 1)
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Errorf("bid without run = %v", err)
	}
	// Not found: quality of unknown worker.
	_, err = c.Quality(ctx, "ghost")
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown quality = %v", err)
	}
	// Bad request: malformed JSON body.
	resp, err := ts.Client().Post(ts.URL+"/v1/workers", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	// Unknown field rejected.
	resp, err = ts.Client().Post(ts.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"workerId":"w","extra":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", resp.StatusCode)
	}
}

func asAPIError(err error, target **APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*APIError)
	if ok {
		*target = e
	}
	return ok
}

func TestAnswerValidation(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if err := c.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenRun(ctx, []TaskSpec{{ID: "t", Threshold: 3}}, 50); err != nil {
		t.Fatal(err)
	}
	// Answers before close are rejected.
	if err := c.SubmitAnswer(ctx, "w1", "t", AnswerPayload(5)); err == nil {
		t.Error("answer before close accepted")
	}
	if err := c.SubmitBid(ctx, "w1", 1.5, 1); err != nil {
		t.Fatal(err)
	}
	// One worker cannot satisfy threshold 3 alone unless quality suffices;
	// initial estimate 5.5 >= 3 so the task can be covered, but there is no
	// pivot worker -> no allocation. Answer for unassigned pair must 404.
	if _, err := c.CloseAuction(ctx); err != nil {
		t.Fatal(err)
	}
	err := c.SubmitAnswer(ctx, "w1", "t", AnswerPayload(5))
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unassigned answer = %v", err)
	}
}

func TestParseAnswerPayload(t *testing.T) {
	p := AnswerPayload(7.25)
	v, err := ParseAnswerPayload(p)
	if err != nil || v != 7.25 {
		t.Errorf("round trip = %v, %v", v, err)
	}
	if _, err := ParseAnswerPayload("garbage"); err == nil {
		t.Error("garbage payload accepted")
	}
	if _, err := ParseAnswerPayload("q=notanumber"); err == nil {
		t.Error("non-numeric payload accepted")
	}
}
