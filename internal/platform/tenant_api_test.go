package platform

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"melody"
)

func f64(v float64) *float64 { return &v }

// TestTenantAPIOverHTTP drives the typed control plane end to end: PUT
// installs a policy, GET and the listing reflect it together with the
// live spend ledger, and the quota refusal crosses the wire as a 403 with
// the quota_exceeded code, recoverable via errors.Is.
func TestTenantAPIOverHTTP(t *testing.T) {
	ctx := context.Background()
	sched, _ := newTestScheduler(t, 400, 0)
	ts := newMultiTestServer(t, sched)
	c := tenantClient(t, ts, "acme")

	put, err := c.PutTenant(ctx, "acme", TenantPolicySpec{BudgetQuota: f64(150), MaxRuns: 5, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if put.Tenant != "acme" || put.Policy == nil || *put.Policy.BudgetQuota != 150 || put.Weight != 2 {
		t.Fatalf("PUT ack = %+v, want the installed policy echoed", put)
	}

	got, err := c.Tenant(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy == nil || *got.Policy.BudgetQuota != 150 || got.Policy.MaxRuns != 5 {
		t.Fatalf("GET = %+v, want the PUT policy", got)
	}
	if _, err := c.Tenant(ctx, "ghost"); !errors.Is(err, melody.ErrUnknownTenant) {
		t.Fatalf("GET unknown tenant = %v, want ErrUnknownTenant", err)
	}

	// Run history shows up in the status: open a run and watch escrow.
	for i := 0; i < 3; i++ {
		if err := c.RegisterWorker(ctx, string(rune('a'+i))+"-w"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.OpenRunID(ctx, "r1", "acme", []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	got, err = c.Tenant(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if got.Escrowed != 100 || got.RunsOpened != 1 || got.OpenRunID != "r1" {
		t.Fatalf("status mid-run = %+v, want escrow 100 / 1 run / r1 open", got)
	}

	// The listing includes a policy-only neighbor, sorted. Cross-tenant
	// administration uses a client with no tenant header (the header would
	// conflict with the path).
	admin := tenantClient(t, ts, "")
	if _, err := admin.PutTenant(ctx, "aaa", TenantPolicySpec{Weight: 3}); err != nil {
		t.Fatal(err)
	}
	all, err := admin.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Tenant != "aaa" || all[1].Tenant != "acme" {
		t.Fatalf("listing = %+v, want [aaa acme]", all)
	}

	// A quota refusal crosses the wire typed: 403 + quota_exceeded.
	if _, err := c.PutTenant(ctx, "acme", TenantPolicySpec{BudgetQuota: f64(0)}); err != nil {
		t.Fatal(err)
	}
	// The open run does not block the PUT; a *new* run for a second tenant
	// under its own zero quota is refused. Reuse acme after finishing is
	// equivalent but the open run is still out — use tenant "aaa".
	if _, err := admin.PutTenant(ctx, "aaa", TenantPolicySpec{BudgetQuota: f64(0)}); err != nil {
		t.Fatal(err)
	}
	ca := tenantClient(t, ts, "aaa")
	_, err = ca.OpenRunID(ctx, "q1", "aaa", []TaskSpec{{ID: "t1", Threshold: 10}}, 50)
	if !errors.Is(err, melody.ErrQuotaExceeded) {
		t.Fatalf("over-quota open = %v, want ErrQuotaExceeded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusForbidden || apiErr.Code != "quota_exceeded" {
		t.Fatalf("wire form = %+v, want 403 quota_exceeded", apiErr)
	}
}

// TestTenantAPIMismatchRejected: a request naming two disagreeing tenants —
// transport header vs body on open, header vs path on PUT — is rejected
// with the tenant_mismatch code instead of letting either side silently
// win.
func TestTenantAPIMismatchRejected(t *testing.T) {
	ctx := context.Background()
	sched, _ := newTestScheduler(t, 400, 0)
	ts := newMultiTestServer(t, sched)
	c := tenantClient(t, ts, "acme") // every request carries X-Melody-Tenant: acme

	_, err := c.OpenRunID(ctx, "r1", "rival", []TaskSpec{{ID: "t1", Threshold: 10}}, 100)
	if !errors.Is(err, melody.ErrTenantMismatch) {
		t.Fatalf("open with disagreeing body tenant = %v, want ErrTenantMismatch", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != "tenant_mismatch" {
		t.Fatalf("wire form = %+v, want 400 tenant_mismatch", apiErr)
	}
	// The refused open must not have claimed the run ID or the tenant slot.
	if _, err := c.OpenRunID(ctx, "r1", "acme", []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatalf("open after rejected mismatch = %v, want success", err)
	}

	if _, err := c.PutTenant(ctx, "rival", TenantPolicySpec{Weight: 2}); !errors.Is(err, melody.ErrTenantMismatch) {
		t.Fatalf("PUT with disagreeing path tenant = %v, want ErrTenantMismatch", err)
	}
	// Header agreeing with the path (or absent) is fine.
	if _, err := c.PutTenant(ctx, "acme", TenantPolicySpec{Weight: 2}); err != nil {
		t.Fatalf("PUT with agreeing header = %v, want success", err)
	}
}

// TestTenantAPISingleRunServer: the control plane exists only on multi-run
// servers; a single-run platform answers 501.
func TestTenantAPISingleRunServer(t *testing.T) {
	ctx := context.Background()
	_, c := newTestServer(t)
	var apiErr *APIError
	if _, err := c.Tenants(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("GET /v1/tenants on single-run server = %v, want 501", err)
	}
	if _, err := c.PutTenant(ctx, "acme", TenantPolicySpec{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("PUT /v1/tenants on single-run server = %v, want 501", err)
	}
	if _, err := c.ResizeRegistry(ctx, 8); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Fatalf("PUT /v1/registry on single-run server = %v, want 501", err)
	}
}

// TestRegistryResizeOverHTTP: the elastic reshard admin call reports the
// rounded shard count and member total, and serving continues across it.
func TestRegistryResizeOverHTTP(t *testing.T) {
	ctx := context.Background()
	sched, _ := newTestScheduler(t, 400, 0)
	ts := newMultiTestServer(t, sched)
	c := tenantClient(t, ts, "acme")
	for i := 0; i < 6; i++ {
		if err := c.RegisterWorker(ctx, "acme-w"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.ResizeRegistry(ctx, 5) // rounds up to 8
	if err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 8 || resp.Workers != 6 {
		t.Fatalf("resize = %+v, want shards 8 workers 6", resp)
	}
	if err := driveRunHTTP(ctx, c, "r1", "acme", 6); err != nil {
		t.Fatalf("run after resize: %v", err)
	}
}
