package platform

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"melody"
	"melody/internal/stats"
)

// AnswerPayload encodes a simulated answer whose intrinsic quality is q.
// Real deployments would carry task output here; the demo agents carry the
// quality sample the requester's verification would measure.
func AnswerPayload(q float64) string {
	return "q=" + strconv.FormatFloat(q, 'f', 4, 64)
}

// ParseAnswerPayload extracts the quality sample from a demo payload.
func ParseAnswerPayload(payload string) (float64, error) {
	rest, ok := strings.CutPrefix(payload, "q=")
	if !ok {
		return 0, fmt.Errorf("platform: malformed answer payload %q", payload)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return 0, fmt.Errorf("platform: malformed answer payload %q: %w", payload, err)
	}
	return v, nil
}

// WorkerAgentConfig configures an autonomous worker client.
type WorkerAgentConfig struct {
	Client   *Client
	WorkerID string
	// Cost and Frequency form the agent's (truthful) bid.
	Cost      float64
	Frequency int
	// LatentQuality returns the worker's latent quality for a run index;
	// answers embed a noisy sample of it.
	LatentQuality func(run int) float64
	// ScoreSigma is the emission noise of answer samples.
	ScoreSigma float64
	// PollInterval is how often the agent polls /v1/status. Defaults to
	// 50ms.
	PollInterval time.Duration
	// RNG drives the answer noise.
	RNG *stats.RNG
}

// WorkerAgent is an autonomous worker: it registers itself, bids in every
// run, and uploads answers for its allocated tasks. Its lifecycle follows
// the managed-goroutine pattern: NewWorkerAgent starts the loop, Stop
// signals it and waits for exit.
type WorkerAgent struct {
	cfg  WorkerAgentConfig
	stop context.CancelFunc
	done chan struct{}
	err  error
}

// NewWorkerAgent validates the config, registers the worker and starts the
// agent loop.
func NewWorkerAgent(ctx context.Context, cfg WorkerAgentConfig) (*WorkerAgent, error) {
	if cfg.Client == nil || cfg.WorkerID == "" || cfg.LatentQuality == nil || cfg.RNG == nil {
		return nil, errors.New("platform: worker agent needs client, ID, latent quality and RNG")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if err := cfg.Client.RegisterWorker(ctx, cfg.WorkerID); err != nil {
		return nil, fmt.Errorf("platform: register %s: %w", cfg.WorkerID, err)
	}
	loopCtx, cancel := context.WithCancel(ctx)
	a := &WorkerAgent{cfg: cfg, stop: cancel, done: make(chan struct{})}
	go a.loop(loopCtx)
	return a, nil
}

// Stop signals the agent to exit and waits for it. It returns the first
// fatal error the loop hit, if any.
func (a *WorkerAgent) Stop() error {
	a.stop()
	<-a.done
	return a.err
}

// loop is the agent's poll loop. Transient API errors are tolerated; only
// context cancellation ends the loop.
func (a *WorkerAgent) loop(ctx context.Context) {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.PollInterval)
	defer ticker.Stop()
	lastBid := 0
	lastAnswered := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		status, err := a.cfg.Client.Status(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			continue // transient
		}
		switch status.Phase {
		case PhaseBidding:
			if status.Run == lastBid {
				continue
			}
			err := a.cfg.Client.SubmitBid(ctx, a.cfg.WorkerID, a.cfg.Cost, a.cfg.Frequency)
			switch {
			case err == nil:
				lastBid = status.Run
			case errors.Is(err, melody.ErrAuctionClosed):
				// The bidding deadline closed the auction between our
				// status poll and the bid; this run is lost for us.
				lastBid = status.Run
			}
		case PhaseScoring:
			if status.Run == lastAnswered {
				continue
			}
			err := a.answer(ctx, status.Run)
			switch {
			case err == nil:
				lastAnswered = status.Run
			case errors.Is(err, melody.ErrNoRunOpen), errors.Is(err, melody.ErrNotAssigned):
				// The run finished under us (scoring deadline) or we
				// were never a winner; nothing left to upload.
				lastAnswered = status.Run
			}
		}
	}
}

// answer uploads one answer per task assigned to this agent in the current
// run.
func (a *WorkerAgent) answer(ctx context.Context, run int) error {
	out, err := a.cfg.Client.Outcome(ctx)
	if err != nil {
		return err
	}
	q := a.cfg.LatentQuality(run)
	for _, asg := range out.Assignments {
		if asg.WorkerID != a.cfg.WorkerID {
			continue
		}
		sample := a.cfg.RNG.Normal(q, a.cfg.ScoreSigma)
		if err := a.cfg.Client.SubmitAnswer(ctx, a.cfg.WorkerID, asg.TaskID, AnswerPayload(sample)); err != nil {
			return err
		}
	}
	return nil
}

// RequesterConfig configures the requester driver.
type RequesterConfig struct {
	Client *Client
	// Tasks generates the run's task set.
	Tasks func(run int) []TaskSpec
	// Budget is the per-run budget.
	Budget float64
	// BidWait is how long to keep the auction open for bids.
	BidWait time.Duration
	// AnswerTimeout bounds how long to wait for all answers.
	AnswerTimeout time.Duration
	// ScoreLo and ScoreHi clamp scores onto the platform's score scale.
	ScoreLo, ScoreHi float64
}

// Requester drives complete runs against a platform: open, wait for bids,
// close, collect answers, score them from the embedded quality samples, and
// finish.
type Requester struct {
	cfg RequesterConfig
}

// NewRequester validates the configuration.
func NewRequester(cfg RequesterConfig) (*Requester, error) {
	if cfg.Client == nil || cfg.Tasks == nil {
		return nil, errors.New("platform: requester needs client and task generator")
	}
	if cfg.BidWait <= 0 {
		cfg.BidWait = 200 * time.Millisecond
	}
	if cfg.AnswerTimeout <= 0 {
		cfg.AnswerTimeout = 5 * time.Second
	}
	if cfg.ScoreHi <= cfg.ScoreLo {
		return nil, fmt.Errorf("platform: score range [%v, %v] invalid", cfg.ScoreLo, cfg.ScoreHi)
	}
	return &Requester{cfg: cfg}, nil
}

// RunOnce drives a single complete run and returns the auction outcome.
func (q *Requester) RunOnce(ctx context.Context, run int) (OutcomeResponse, error) {
	c := q.cfg.Client
	if err := c.OpenRun(ctx, q.cfg.Tasks(run), q.cfg.Budget); err != nil {
		return OutcomeResponse{}, fmt.Errorf("platform: open run %d: %w", run, err)
	}
	select {
	case <-ctx.Done():
		return OutcomeResponse{}, ctx.Err()
	case <-time.After(q.cfg.BidWait):
	}
	out, err := c.CloseAuction(ctx)
	if err != nil {
		return OutcomeResponse{}, fmt.Errorf("platform: close run %d: %w", run, err)
	}

	// Wait until every assignment has an answer, bounded by a context
	// deadline rather than a polled clock; when it expires, score whatever
	// arrived (missing winners degrade into the estimator's
	// missing-observation path).
	waitCtx, cancel := context.WithDeadline(ctx, time.Now().Add(q.cfg.AnswerTimeout))
	defer cancel()
	var answers []Answer
wait:
	for {
		answers, err = c.Answers(ctx)
		if err != nil {
			return OutcomeResponse{}, fmt.Errorf("platform: answers run %d: %w", run, err)
		}
		if len(answers) >= len(out.Assignments) {
			break
		}
		select {
		case <-waitCtx.Done():
			if ctx.Err() != nil {
				return OutcomeResponse{}, ctx.Err()
			}
			break wait
		case <-time.After(20 * time.Millisecond):
		}
	}
	// All scores ship in one batch round trip; per-item errors come back in
	// the same positions, so the tolerated cases stay per-answer.
	var scores []ScoreRequest
	for _, ans := range answers {
		sample, err := ParseAnswerPayload(ans.Payload)
		if err != nil {
			continue // unscorable answer; skip rather than abort the run
		}
		scores = append(scores, ScoreRequest{
			WorkerID: ans.WorkerID,
			TaskID:   ans.TaskID,
			Score:    stats.Clamp(sample, q.cfg.ScoreLo, q.cfg.ScoreHi),
		})
	}
	if len(scores) > 0 {
		res, err := c.SubmitScores(ctx, scores)
		if err != nil {
			return OutcomeResponse{}, fmt.Errorf("platform: score run %d: %w", run, err)
		}
		for _, item := range res.Failed() {
			itemErr := item.Err
			if errors.Is(itemErr, melody.ErrNotAssigned) {
				continue
			}
			if errors.Is(itemErr, melody.ErrNoRunOpen) {
				// The scoring deadline finished the run under us; the
				// remaining scores are moot.
				return out, nil
			}
			return OutcomeResponse{}, fmt.Errorf("platform: score run %d: %w", run, itemErr)
		}
	}
	if err := c.FinishRun(ctx); err != nil {
		return OutcomeResponse{}, fmt.Errorf("platform: finish run %d: %w", run, err)
	}
	return out, nil
}
