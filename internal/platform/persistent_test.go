package platform

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"melody"
	"melody/internal/eventlog"
)

// The write-ahead-logged platform must satisfy the server's backend
// contract.
var _ Backend = (*eventlog.PersistentPlatform)(nil)

func buildPlatform(t *testing.T) *melody.Platform {
	t.Helper()
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPersistentServerSurvivesRestart drives runs over HTTP against a
// WAL-backed server, "crashes" it, boots a replacement from the same log,
// and checks the state carried over.
func TestPersistentServerSurvivesRestart(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "platform.wal")
	ctx := context.Background()

	boot := func() (*httptest.Server, *Client, *eventlog.Log) {
		backend, wal, err := eventlog.OpenPersistent(walPath, buildPlatform(t))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(backend, nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		client, err := NewClient(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		return ts, client, wal
	}

	// First life: register workers and complete two runs.
	ts, c, wal := boot()
	for _, id := range []string{"w1", "w2", "w3"} {
		if err := c.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	var lastQuality float64
	for run := 1; run <= 2; run++ {
		if err := c.OpenRun(ctx, []TaskSpec{{ID: taskID(run), Threshold: 9}}, 50); err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"w1", "w2", "w3"} {
			if err := c.SubmitBid(ctx, id, 1.2, 1); err != nil {
				t.Fatal(err)
			}
		}
		out, err := c.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range out.Assignments {
			if err := c.SubmitScore(ctx, a.WorkerID, a.TaskID, 8); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
	}
	q, err := c.Quality(ctx, "w1")
	if err != nil {
		t.Fatal(err)
	}
	lastQuality = q
	// Crash: close the server and the log.
	ts.Close()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same log, fresh platform.
	ts2, c2, wal2 := boot()
	defer ts2.Close()
	defer wal2.Close()

	st, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 {
		t.Errorf("restored workers = %d, want 3", st.Workers)
	}
	q2, err := c2.Quality(ctx, "w1")
	if err != nil {
		t.Fatal(err)
	}
	if q2 != lastQuality {
		t.Errorf("restored quality %v != pre-crash %v", q2, lastQuality)
	}
	// The restored platform accepts the next run.
	if err := c2.OpenRun(ctx, []TaskSpec{{ID: "after-restart", Threshold: 9}}, 50); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2", "w3"} {
		if err := c2.SubmitBid(ctx, id, 1.2, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c2.CloseAuction(ctx); err != nil {
		t.Fatal(err)
	}
}

func taskID(run int) string { return "task-" + string(rune('0'+run)) }
