package platform

// Chaos soak: a full 20-run season driven through the chaos middleware —
// injected latency, 503s, dropped connections, duplicated deliveries and
// lost responses — over a WAL-backed, ledger-backed platform, with a hard
// kill and recovery in the middle of run 11. The retry layer and the
// idempotent mutation protocol must absorb every fault: the season
// completes, money is conserved, no run overspends its budget, and
// replaying the WAL reproduces the live platform exactly.

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"melody"
	"melody/internal/chaos"
	"melody/internal/eventlog"
	"melody/internal/stats"
)

const (
	soakRuns    = 20
	soakBudget  = 50.0
	soakDeposit = 2000.0
)

func soakTasks(run int) []TaskSpec {
	return []TaskSpec{
		{ID: fmt.Sprintf("soak-r%d-a", run), Threshold: 10},
		{ID: fmt.Sprintf("soak-r%d-b", run), Threshold: 10},
	}
}

// buildLedgerPlatform constructs a platform with a funded ledger attached.
func buildLedgerPlatform(t *testing.T) (*melody.Platform, *melody.Ledger) {
	t.Helper()
	ledger := melody.NewLedger()
	if _, err := ledger.Deposit(melody.RequesterAccount, soakDeposit, "season funding"); err != nil {
		t.Fatal(err)
	}
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
		Ledger:    ledger,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, ledger
}

// soakWorld is one "life" of the platform: a WAL-backed server behind the
// chaos middleware, a fleet of worker agents, and a requester — all talking
// through retrying clients.
type soakWorld struct {
	platform  *melody.Platform
	ledger    *melody.Ledger
	ts        *httptest.Server
	wal       *eventlog.Log
	agents    []*WorkerAgent
	requester *Requester
}

func startSoakWorld(t *testing.T, ctx context.Context, walPath string, scenario chaos.Scenario, rng *stats.RNG) *soakWorld {
	t.Helper()
	p, ledger := buildLedgerPlatform(t)
	backend, wal, err := eventlog.OpenPersistent(walPath, p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(backend, nil, WithDeadlines(10*time.Second, 10*time.Second))
	if err != nil {
		wal.Close()
		t.Fatal(err)
	}
	handler, err := chaos.Middleware(scenario, srv.Handler())
	if err != nil {
		wal.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)

	policy := RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	newRetryingClient := func() *Client {
		c, err := NewClientWithPolicy(ts.URL, ts.Client(), policy)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	w := &soakWorld{platform: p, ledger: ledger, ts: ts, wal: wal}
	for i := 0; i < 4; i++ {
		latent := 4 + float64(i)*1.5
		agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:        newRetryingClient(),
			WorkerID:      fmt.Sprintf("soak-%d", i),
			Cost:          1.1 + 0.2*float64(i),
			Frequency:     2,
			LatentQuality: func(int) float64 { return latent },
			ScoreSigma:    0.4,
			PollInterval:  10 * time.Millisecond,
			RNG:           rng.Split(),
		})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		w.agents = append(w.agents, agent)
	}
	w.requester, err = NewRequester(RequesterConfig{
		Client:        newRetryingClient(),
		Tasks:         soakTasks,
		Budget:        soakBudget,
		BidWait:       250 * time.Millisecond,
		AnswerTimeout: 5 * time.Second,
		ScoreLo:       1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// kill tears the world down abruptly: agents stopped, server gone, log
// closed. State survives only through the WAL.
func (w *soakWorld) kill(t *testing.T) {
	t.Helper()
	for _, a := range w.agents {
		if err := a.Stop(); err != nil {
			t.Errorf("agent stop: %v", err)
		}
	}
	w.ts.Close()
	if err := w.wal.Close(); err != nil {
		t.Errorf("wal close: %v", err)
	}
}

func TestChaosSoakSeason(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	walPath := filepath.Join(t.TempDir(), "soak.wal")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	scenario := chaos.Scenario{
		Seed: 42, Drop: 0.03, Dup: 0.05, Err: 0.05, Lose: 0.03,
		DelayMax: 2 * time.Millisecond,
	}
	rng := stats.NewRNG(99)

	// First life: runs 1–10 complete, run 11 gets as far as a closed
	// auction before the hard kill.
	w1 := startSoakWorld(t, ctx, walPath, scenario, rng)
	var outcomes []OutcomeResponse
	for run := 1; run <= 10; run++ {
		out, err := w1.requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		outcomes = append(outcomes, out)
	}
	if err := w1.requester.cfg.Client.OpenRun(ctx, soakTasks(11), soakBudget); err != nil {
		t.Fatalf("open run 11: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // let the agents bid
	if _, err := w1.requester.cfg.Client.CloseAuction(ctx); err != nil {
		t.Fatalf("close run 11: %v", err)
	}
	w1.kill(t)

	// Second life: recover from the WAL mid-run. The requester re-drives
	// run 11 from the top — every mutation it replays (open, close) is a
	// no-op against the recovered state — then the season runs to 20.
	scenario.Seed = 43
	w2 := startSoakWorld(t, ctx, walPath, scenario, rng)
	defer w2.kill(t)
	for run := 11; run <= soakRuns; run++ {
		out, err := w2.requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("run %d (after recovery): %v", run, err)
		}
		outcomes = append(outcomes, out)
	}

	// Season-level invariants.
	if got := w2.platform.Run(); got != soakRuns {
		t.Errorf("completed runs = %d, want %d", got, soakRuns)
	}
	totalPaid := 0.0
	assigned := 0
	for i, out := range outcomes {
		if out.TotalPayment > soakBudget+1e-9 {
			t.Errorf("run %d overspent: paid %.3f of budget %.1f", i+1, out.TotalPayment, soakBudget)
		}
		totalPaid += out.TotalPayment
		assigned += len(out.Assignments)
	}
	if assigned == 0 {
		t.Fatal("no tasks were ever assigned across the season")
	}

	// Ledger invariants: double-entry conservation (balances sum to the
	// deposit), an empty escrow once the season is idle, and the requester
	// out exactly what the auctions paid.
	sum := 0.0
	for _, acc := range w2.ledger.Accounts() {
		if acc.Balance < -1e-9 {
			t.Errorf("account %s has negative balance %.6f", acc.Account, acc.Balance)
		}
		sum += acc.Balance
	}
	if math.Abs(sum-soakDeposit) > 1e-6 {
		t.Errorf("ledger lost money: balances sum to %.6f, deposits were %.1f", sum, soakDeposit)
	}
	if esc := w2.ledger.Balance("escrow"); math.Abs(esc) > 1e-9 {
		t.Errorf("escrow not empty after season: %.6f", esc)
	}
	reqBal := w2.ledger.Balance(melody.RequesterAccount)
	if math.Abs(reqBal-(soakDeposit-totalPaid)) > 1e-6 {
		t.Errorf("requester balance %.6f, want %.6f (deposit %.1f - paid %.6f)",
			reqBal, soakDeposit-totalPaid, soakDeposit, totalPaid)
	}

	// Replay determinism: a cold replay of the WAL must land on exactly
	// the live platform's state — same runs, same workers, same quality
	// estimates, same money.
	replayed, replayLedger := buildLedgerPlatform(t)
	if err := eventlog.Replay(walPath, replayed); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.Run() != w2.platform.Run() {
		t.Errorf("replayed runs = %d, live = %d", replayed.Run(), w2.platform.Run())
	}
	liveWorkers := w2.platform.Workers()
	replayWorkers := replayed.Workers()
	if len(replayWorkers) != len(liveWorkers) {
		t.Fatalf("replayed workers = %v, live = %v", replayWorkers, liveWorkers)
	}
	for i, id := range liveWorkers {
		if replayWorkers[i] != id {
			t.Fatalf("replayed workers = %v, live = %v", replayWorkers, liveWorkers)
		}
		lq, err := w2.platform.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := replayed.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if lq != rq {
			t.Errorf("worker %s: replayed quality %v != live %v", id, rq, lq)
		}
	}
	for _, acc := range w2.ledger.Accounts() {
		if got := replayLedger.Balance(acc.Account); math.Abs(got-acc.Balance) > 1e-9 {
			t.Errorf("account %s: replayed balance %.6f != live %.6f", acc.Account, got, acc.Balance)
		}
	}
}
