package platform

// Segmented-engine chaos soaks: seasons driven over the segmented storage
// engine (rotation, snapshots, compaction) through the chaos middleware,
// with deterministic kill points — mid-segment append, mid-rotation rename,
// mid-snapshot write — armed mid-season, plus a primary-kill /
// replica-promotion soak. After every life the recovered (or promoted)
// platform must be bit-identical to the state the previous life
// acknowledged, money must be conserved, and no run may overspend.

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"melody"
	"melody/internal/chaos"
	"melody/internal/eventlog"
	"melody/internal/stats"
)

// segWorld is one life of the platform on the segmented engine.
type segWorld struct {
	platform  *melody.Platform
	ledger    *melody.Ledger
	backend   *eventlog.PersistentPlatform
	seg       *eventlog.SegmentedLog
	ts        *httptest.Server
	agents    []*WorkerAgent
	requester *Requester
}

func segSoakOptions(fp *chaos.Failpoints) eventlog.SegmentedOptions {
	return eventlog.SegmentedOptions{
		Options:       eventlog.Options{SyncEveryAppend: true},
		SegmentBytes:  1024, // a run's records span segments, forcing rotations
		SnapshotEvery: 30,   // a snapshot lands roughly every few runs
		Failpoint:     fp.Hook(),
	}
}

func startSegWorld(t *testing.T, ctx context.Context, dir string, fp *chaos.Failpoints, scenario chaos.Scenario, rng *stats.RNG) *segWorld {
	t.Helper()
	p, ledger := buildLedgerPlatform(t)
	backend, seg, err := eventlog.OpenPersistentSegmented(dir, p, segSoakOptions(fp))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(backend, nil,
		WithDeadlines(10*time.Second, 10*time.Second),
		WithReplicationSource(seg))
	if err != nil {
		seg.Close()
		t.Fatal(err)
	}
	handler, err := chaos.Middleware(scenario, srv.Handler())
	if err != nil {
		seg.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)

	policy := RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	newRetryingClient := func() *Client {
		c, err := NewClientWithPolicy(ts.URL, ts.Client(), policy)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	w := &segWorld{platform: p, ledger: ledger, backend: backend, seg: seg, ts: ts}
	for i := 0; i < 4; i++ {
		latent := 4 + float64(i)*1.5
		agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:        newRetryingClient(),
			WorkerID:      fmt.Sprintf("seg-%d", i),
			Cost:          1.1 + 0.2*float64(i),
			Frequency:     2,
			LatentQuality: func(int) float64 { return latent },
			ScoreSigma:    0.4,
			PollInterval:  10 * time.Millisecond,
			RNG:           rng.Split(),
		})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		w.agents = append(w.agents, agent)
	}
	w.requester, err = NewRequester(RequesterConfig{
		Client:        newRetryingClient(),
		Tasks:         soakTasks,
		Budget:        soakBudget,
		BidWait:       150 * time.Millisecond,
		AnswerTimeout: 5 * time.Second,
		ScoreLo:       1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// kill tears the world down abruptly; state survives only on disk.
func (w *segWorld) kill(t *testing.T) {
	t.Helper()
	for _, a := range w.agents {
		if err := a.Stop(); err != nil {
			t.Errorf("agent stop: %v", err)
		}
	}
	w.ts.Close()
	w.seg.Close() // a poisoned log's close error is the simulated crash itself
}

// assertRecoveredMatchesLive boots a throwaway recovery from dir and
// compares it against the given live state: run counter, worker set, exact
// quality floats, exact ledger balances.
func assertRecoveredMatchesLive(t *testing.T, dir string, live *melody.Platform, liveLedger *melody.Ledger) {
	t.Helper()
	p, ledger := buildLedgerPlatform(t)
	backend, seg, err := eventlog.OpenPersistentSegmented(dir, p, eventlog.SegmentedOptions{
		Options: eventlog.Options{SyncEveryAppend: true},
	})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer seg.Close()
	_ = backend
	if p.Run() != live.Run() {
		t.Errorf("recovered runs = %d, live = %d", p.Run(), live.Run())
	}
	liveWorkers := live.Workers()
	gotWorkers := p.Workers()
	if len(gotWorkers) != len(liveWorkers) {
		t.Fatalf("recovered workers = %v, live = %v", gotWorkers, liveWorkers)
	}
	for i, id := range liveWorkers {
		if gotWorkers[i] != id {
			t.Fatalf("recovered workers = %v, live = %v", gotWorkers, liveWorkers)
		}
		lq, err := live.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := p.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if lq != rq {
			t.Errorf("worker %s: recovered quality %v != live %v", id, rq, lq)
		}
	}
	for _, acc := range liveLedger.Accounts() {
		if got := ledger.Balance(acc.Account); math.Abs(got-acc.Balance) > 1e-9 {
			t.Errorf("account %s: recovered balance %.6f != live %.6f", acc.Account, got, acc.Balance)
		}
	}
}

// assertMoneyConserved checks the ledger invariants at season end.
func assertMoneyConserved(t *testing.T, ledger *melody.Ledger, outcomes []OutcomeResponse) {
	t.Helper()
	totalPaid := 0.0
	for i, out := range outcomes {
		if out.TotalPayment > soakBudget+1e-9 {
			t.Errorf("run %d overspent: paid %.3f of budget %.1f", i+1, out.TotalPayment, soakBudget)
		}
		totalPaid += out.TotalPayment
	}
	sum := 0.0
	for _, acc := range ledger.Accounts() {
		if acc.Balance < -1e-9 {
			t.Errorf("account %s has negative balance %.6f", acc.Account, acc.Balance)
		}
		sum += acc.Balance
	}
	if math.Abs(sum-soakDeposit) > 1e-6 {
		t.Errorf("ledger lost money: balances sum to %.6f, deposits were %.1f", sum, soakDeposit)
	}
	if esc := ledger.Balance("escrow"); math.Abs(esc) > 1e-9 {
		t.Errorf("escrow not empty after season: %.6f", esc)
	}
	reqBal := ledger.Balance(melody.RequesterAccount)
	if math.Abs(reqBal-(soakDeposit-totalPaid)) > 1e-6 {
		t.Errorf("requester balance %.6f, want %.6f", reqBal, soakDeposit-totalPaid)
	}
}

// TestSegmentedChaosSoakSeason runs a 14-run season on the segmented engine
// through chaos middleware, with three armed kills: mid-segment append,
// mid-rotation rename, and mid-snapshot write. Each kill is followed by a
// recovery whose state must match what the dead life had acknowledged.
func TestSegmentedChaosSoakSeason(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	dir := filepath.Join(t.TempDir(), "segwal")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	scenario := chaos.Scenario{
		Seed: 42, Drop: 0.02, Dup: 0.04, Err: 0.04, Lose: 0.02,
		DelayMax: 2 * time.Millisecond,
	}
	rng := stats.NewRNG(99)
	var outcomes []OutcomeResponse
	const totalRuns = 14

	// Each life arms one kill point after a couple of healthy runs, drives
	// until the poisoned log surfaces the crash, and dies.
	kills := []string{eventlog.FailpointSegmentAppend, eventlog.FailpointRotateRename}
	run := 1
	for life, kp := range kills {
		fp := chaos.NewFailpoints()
		scenario.Seed = int64(42 + life)
		w := startSegWorld(t, ctx, dir, fp, scenario, rng)
		healthy := run + 2
		for ; run <= healthy && run <= totalRuns; run++ {
			out, err := w.requester.RunOnce(ctx, run)
			if err != nil {
				t.Fatalf("life %d run %d: %v", life, run, err)
			}
			outcomes = append(outcomes, out)
		}
		// Arm the kill: the next append that crosses the point poisons the
		// log, so some run soon fails mid-flight.
		fp.Arm(kp, 1)
		liveRuns := w.platform.Run()
		for ; run <= totalRuns; run++ {
			out, err := w.requester.RunOnce(ctx, run)
			if err != nil {
				break
			}
			liveRuns = w.platform.Run()
			outcomes = append(outcomes, out)
		}
		if fp.Fired(kp) == 0 {
			t.Fatalf("life %d: kill point %s never fired", life, kp)
		}
		w.kill(t)

		// Recovery must reach at least the acknowledged completed runs and
		// reproduce the quality state for fully settled history.
		p2, _ := buildLedgerPlatform(t)
		_, seg2, err := eventlog.OpenPersistentSegmented(dir, p2, eventlog.SegmentedOptions{
			Options: eventlog.Options{SyncEveryAppend: true},
		})
		if err != nil {
			t.Fatalf("life %d recovery: %v", life, err)
		}
		if p2.Run() < liveRuns {
			t.Errorf("life %d: recovered %d runs, acknowledged %d", life, p2.Run(), liveRuns)
		}
		seg2.Close()
		// The failed run is re-driven from the top next life (idempotent
		// mutation protocol), so rewind the loop to it.
		run = p2.Run() + 1
	}

	// Final life: no kills on the write path, but arm the snapshot point —
	// a snapshot failure must NOT fail any run, only surface on SnapshotErr.
	fp := chaos.NewFailpoints()
	scenario.Seed = 77
	w := startSegWorld(t, ctx, dir, fp, scenario, rng)
	fp.Arm(eventlog.FailpointSnapshotWrite, 1)
	snapKillSeen := false
	for ; run <= totalRuns; run++ {
		out, err := w.requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("final life run %d: %v", run, err)
		}
		outcomes = append(outcomes, out)
		// The snapshot failure must surface on SnapshotErr without failing
		// the run; check right after the firing run, before a later
		// successful snapshot clears the error again.
		if !snapKillSeen && fp.Fired(eventlog.FailpointSnapshotWrite) > 0 {
			snapKillSeen = true
			if err := w.backend.SnapshotErr(); err == nil {
				t.Error("snapshot kill fired but SnapshotErr is nil")
			}
		}
	}
	if w.platform.Run() != totalRuns {
		t.Errorf("completed runs = %d, want %d", w.platform.Run(), totalRuns)
	}
	assertMoneyConserved(t, w.ledger, outcomes)

	// The finished season recovers bit-identically.
	w.kill(t)
	assertRecoveredMatchesLive(t, dir, w.platform, w.ledger)
}

// TestReplicaPromotionSoak kills a primary mid-season and promotes a
// replica that had been streaming its segments over the wire (through the
// same chaos middleware as the client traffic). The promoted platform must
// be bit-identical both to the primary's acknowledged state and to a full
// from-scratch replay of the replica's files, must conserve money, and must
// keep serving runs.
func TestReplicaPromotionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	primaryDir := filepath.Join(t.TempDir(), "primary")
	replicaDir := filepath.Join(t.TempDir(), "replica")
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rng := stats.NewRNG(7)
	scenario := chaos.Scenario{
		Seed: 11, Drop: 0.02, Dup: 0.03, Err: 0.03, Lose: 0.02,
		DelayMax: time.Millisecond,
	}

	p, ledger := buildLedgerPlatform(t)
	// Compaction stays off on the primary so the replica mirrors the whole
	// chain and a full from-scratch replay oracle is possible.
	backend, seg, err := eventlog.OpenPersistentSegmented(primaryDir, p, eventlog.SegmentedOptions{
		Options:           eventlog.Options{SyncEveryAppend: true},
		SegmentBytes:      1024,
		SnapshotEvery:     30,
		DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(backend, nil,
		WithDeadlines(10*time.Second, 10*time.Second),
		WithReplicationSource(seg))
	if err != nil {
		t.Fatal(err)
	}
	handler, err := chaos.Middleware(scenario, srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)

	policy := RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	newClient := func() *Client {
		c, err := NewClientWithPolicy(ts.URL, ts.Client(), policy)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	var agents []*WorkerAgent
	for i := 0; i < 4; i++ {
		latent := 4 + float64(i)*1.5
		agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:        newClient(),
			WorkerID:      fmt.Sprintf("rep-%d", i),
			Cost:          1.1 + 0.2*float64(i),
			Frequency:     2,
			LatentQuality: func(int) float64 { return latent },
			ScoreSigma:    0.4,
			PollInterval:  10 * time.Millisecond,
			RNG:           rng.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	requester, err := NewRequester(RequesterConfig{
		Client:  newClient(),
		Tasks:   soakTasks,
		Budget:  soakBudget,
		BidWait: 150 * time.Millisecond, AnswerTimeout: 5 * time.Second,
		ScoreLo: 1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The replica streams over the same chaotic wire the clients use.
	replSrcClient, err := NewClientWithPolicy(ts.URL, ts.Client(), policy)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eventlog.NewReplicator(eventlog.ReplicatorConfig{
		Dir:    replicaDir,
		Source: &ReplicationClient{c: replSrcClient},
		ID:     "soak-replica",
	})
	if err != nil {
		t.Fatal(err)
	}

	var outcomes []OutcomeResponse
	const runs = 10
	for run := 1; run <= runs; run++ {
		out, err := requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		outcomes = append(outcomes, out)
		if _, err := rep.Sync(ctx); err != nil {
			t.Fatalf("replica sync after run %d: %v", run, err)
		}
	}
	// Drain to the durable tail, then kill the primary abruptly.
	for {
		prog, err := rep.Sync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if prog.BytesCopied == 0 && prog.LagBytes == 0 {
			break
		}
	}
	if seg.SnapshotSeq() == 0 {
		t.Fatal("primary never snapshotted; promotion would not exercise the bounded path")
	}
	for _, a := range agents {
		_ = a.Stop()
	}
	ts.Close()
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote the replica: standard recovery over its mirrored files.
	pp, pledger := buildLedgerPlatform(t)
	promoted, pseg, err := eventlog.OpenPersistentSegmented(replicaDir, pp, eventlog.SegmentedOptions{
		Options:      eventlog.Options{SyncEveryAppend: true},
		SegmentBytes: 1024, SnapshotEvery: 30, DisableCompaction: true,
	})
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}

	// Oracle 1: bit-identical to the primary's acknowledged state.
	if pp.Run() != p.Run() {
		t.Errorf("promoted runs = %d, primary = %d", pp.Run(), p.Run())
	}
	for _, id := range p.Workers() {
		lq, err := p.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		q, err := pp.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if q != lq {
			t.Errorf("worker %s: promoted quality %v != primary %v", id, q, lq)
		}
	}
	for _, acc := range ledger.Accounts() {
		if got := pledger.Balance(acc.Account); math.Abs(got-acc.Balance) > 1e-9 {
			t.Errorf("account %s: promoted balance %.6f != primary %.6f", acc.Account, got, acc.Balance)
		}
	}

	// Oracle 2: bit-identical to a full from-scratch replay of the replica's
	// own files (no snapshot shortcut).
	replayed, _ := buildLedgerPlatform(t)
	if err := eventlog.ReplaySegments(replicaDir, replayed); err != nil {
		t.Fatalf("full replay of replica files: %v", err)
	}
	for _, id := range pp.Workers() {
		q, err := pp.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := replayed.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if q != rq {
			t.Errorf("worker %s: promoted %v != full replay %v", id, q, rq)
		}
	}

	// Money conservation on the promoted node.
	assertMoneyConserved(t, pledger, outcomes)

	// The promoted node keeps serving: two more runs through a fresh server.
	srv2, err := NewServer(promoted, nil,
		WithDeadlines(10*time.Second, 10*time.Second),
		WithReplicationSource(pseg))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer pseg.Close()
	newClient2 := func() *Client {
		c, err := NewClientWithPolicy(ts2.URL, ts2.Client(), policy)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	var agents2 []*WorkerAgent
	for i := 0; i < 4; i++ {
		latent := 4 + float64(i)*1.5
		agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:        newClient2(),
			WorkerID:      fmt.Sprintf("rep-%d", i),
			Cost:          1.1 + 0.2*float64(i),
			Frequency:     2,
			LatentQuality: func(int) float64 { return latent },
			ScoreSigma:    0.4,
			PollInterval:  10 * time.Millisecond,
			RNG:           rng.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents2 = append(agents2, agent)
	}
	defer func() {
		for _, a := range agents2 {
			_ = a.Stop()
		}
	}()
	requester2, err := NewRequester(RequesterConfig{
		Client:  newClient2(),
		Tasks:   soakTasks,
		Budget:  soakBudget,
		BidWait: 150 * time.Millisecond, AnswerTimeout: 5 * time.Second,
		ScoreLo: 1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := runs + 1; run <= runs+2; run++ {
		if _, err := requester2.RunOnce(ctx, run); err != nil {
			t.Fatalf("post-promotion run %d: %v", run, err)
		}
	}
	if pp.Run() != runs+2 {
		t.Errorf("post-promotion completed runs = %d, want %d", pp.Run(), runs+2)
	}
}
