package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that round-trips through JSON as a Go
// duration string ("250ms", "1m30s"); bare numbers decode as nanoseconds
// for compatibility with time.Duration's native encoding.
type Duration time.Duration

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes a duration string or a nanosecond count.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("platform: invalid duration %q: %w", x, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("platform: invalid duration %v (want a string like \"250ms\")", v)
	}
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Config is the full configuration of a melody-platform process — every
// knob cmd/melody-platform exposes as a flag, in one typed, JSON-loadable
// struct. The binary resolves its configuration in three layers:
// DefaultConfig, then a -config JSON file, then explicit command-line
// flags, and logs the resolved result at startup.
type Config struct {
	// Addr is the public API listen address.
	Addr string `json:"addr"`

	// Mechanism qualification intervals (Theta_m/Theta_M, C_m/C_M).
	QualityMin float64 `json:"qualityMin"`
	QualityMax float64 `json:"qualityMax"`
	CostMin    float64 `json:"costMin"`
	CostMax    float64 `json:"costMax"`

	// Quality-tracker priors and EM cadence.
	InitMean float64 `json:"initMean"`
	InitVar  float64 `json:"initVar"`
	EMPeriod int     `json:"emPeriod"`

	// Durability: single-file WAL or segmented engine (mutually
	// exclusive), plus the segmented engine's tuning and replication.
	WAL           string `json:"wal,omitempty"`
	WALDir        string `json:"walDir,omitempty"`
	SegmentBytes  int64  `json:"segmentBytes"`
	SnapshotEvery int    `json:"snapshotEvery"`
	NoCompaction  bool   `json:"noCompaction,omitempty"`
	ReplicaOf     string `json:"replicaOf,omitempty"`
	ReplicaID     string `json:"replicaID,omitempty"`
	Promote       bool   `json:"promote,omitempty"`

	// Admission control (see AdmissionConfig).
	MaxInFlight    int      `json:"maxInFlight,omitempty"`
	AnswerInFlight int      `json:"answerInFlight,omitempty"`
	AdmissionQueue int      `json:"admissionQueue,omitempty"`
	QueueTimeout   Duration `json:"queueTimeout,omitempty"`
	TenantRate     float64  `json:"tenantRate,omitempty"`
	TenantBurst    float64  `json:"tenantBurst,omitempty"`
	RetryAfter     Duration `json:"retryAfter,omitempty"`
	TenantMaxRuns  int      `json:"tenantMaxRuns,omitempty"`

	// Multi-tenant run scheduler.
	Multi            bool    `json:"multi,omitempty"`
	EpochEvery       int     `json:"epochEvery,omitempty"`
	Fund             float64 `json:"fund,omitempty"`
	RegistryShards   int     `json:"registryShards,omitempty"`
	CloseConcurrency int     `json:"closeConcurrency,omitempty"`
	// Tenants pre-provisions tenant policies at boot (config file only —
	// there is no flag form). Policies from a recovered WAL replay after
	// and therefore override these boot values, so a runtime PUT survives
	// a restart.
	Tenants map[string]TenantPolicySpec `json:"tenants,omitempty"`

	// Run-phase watchdogs.
	BidDeadline   Duration `json:"bidDeadline,omitempty"`
	ScoreDeadline Duration `json:"scoreDeadline,omitempty"`

	// Operability: fault injection, side listeners, tracing, logging.
	Chaos         string `json:"chaos,omitempty"`
	PprofAddr     string `json:"pprof,omitempty"`
	MetricsAddr   string `json:"metrics,omitempty"`
	TraceCapacity int    `json:"traceCapacity"`
	LogLevel      string `json:"logLevel"`
}

// DefaultConfig returns the built-in defaults, identical to the historical
// flag defaults.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:8080",
		QualityMin:    1,
		QualityMax:    10,
		CostMin:       1,
		CostMax:       2,
		InitMean:      5.5,
		InitVar:       2.25,
		EMPeriod:      10,
		SegmentBytes:  64 << 20, // eventlog.DefaultSegmentBytes, duplicated so platform stays independent of the storage engine
		SnapshotEvery: 10000,
		TraceCapacity: 1024,
		LogLevel:      "info",
	}
}

// LoadConfig reads a JSON config file over the defaults, rejecting unknown
// fields so typos fail loudly instead of silently running with defaults.
func LoadConfig(path string) (Config, error) {
	cfg := DefaultConfig()
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("platform: read config: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("platform: parse config %s: %w", path, err)
	}
	return cfg, nil
}

// Validate rejects inconsistent combinations, mirroring the historical
// flag-validation rules.
func (c Config) Validate() error {
	switch {
	case c.WAL != "" && c.WALDir != "":
		return errors.New("wal and walDir are mutually exclusive")
	case c.ReplicaOf != "" && c.WALDir == "":
		return errors.New("replicaOf requires walDir (the local mirror directory)")
	case c.ReplicaOf != "" && c.Promote:
		return errors.New("replicaOf and promote are mutually exclusive: stop following before promoting")
	case c.Promote && c.WALDir == "":
		return errors.New("promote requires walDir (the replica's data directory)")
	case !c.Multi && (c.TenantMaxRuns > 0 || c.EpochEvery > 0 || c.RegistryShards > 0 ||
		c.CloseConcurrency > 0 || len(c.Tenants) > 0):
		return errors.New("tenantMaxRuns, epochEvery, registryShards, closeConcurrency and tenants require multi")
	case c.Multi && c.WALDir != "":
		return errors.New("multi supports wal (single-file log); the segmented engine serves the single-run platform only")
	case c.EpochEvery > 0 && c.Fund <= 0:
		return errors.New("epochEvery requires fund (epoch settlement aggregates ledger payouts)")
	}
	return nil
}

// String renders the resolved configuration as one JSON line for the
// startup log.
func (c Config) String() string {
	out, err := json.Marshal(c)
	if err != nil {
		return fmt.Sprintf("%+v", struct{ Config }{c})
	}
	return string(out)
}
