package platform

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "melody.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadConfigLayersOverDefaults: fields absent from the file keep their
// defaults, present ones override, and tenant policies parse into typed
// specs.
func TestLoadConfigLayersOverDefaults(t *testing.T) {
	path := writeConfig(t, `{
		"addr": "127.0.0.1:9999",
		"multi": true,
		"epochEvery": 4,
		"fund": 1000,
		"closeConcurrency": 2,
		"queueTimeout": "250ms",
		"retryAfter": 50000000,
		"tenants": {
			"acme": {"budgetQuota": 500, "maxRuns": 10, "weight": 2},
			"free": {"budgetQuota": 0}
		}
	}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != "127.0.0.1:9999" || !cfg.Multi || cfg.CloseConcurrency != 2 {
		t.Fatalf("overridden fields wrong: %+v", cfg)
	}
	def := DefaultConfig()
	if cfg.QualityMin != def.QualityMin || cfg.SegmentBytes != def.SegmentBytes || cfg.LogLevel != def.LogLevel {
		t.Fatalf("untouched fields lost their defaults: %+v", cfg)
	}
	if cfg.QueueTimeout.Std() != 250*time.Millisecond {
		t.Errorf("queueTimeout = %v, want 250ms (duration string form)", cfg.QueueTimeout.Std())
	}
	if cfg.RetryAfter.Std() != 50*time.Millisecond {
		t.Errorf("retryAfter = %v, want 50ms (nanosecond number form)", cfg.RetryAfter.Std())
	}
	acme := cfg.Tenants["acme"].Policy()
	if acme.BudgetQuota != 500 || acme.MaxRuns != 10 || acme.Weight != 2 {
		t.Errorf("acme policy = %+v", acme)
	}
	free := cfg.Tenants["free"].Policy()
	if free.BudgetQuota != 0 || free.EpochBudgetQuota >= 0 {
		t.Errorf("explicit zero quota must stay 0 with epoch quota unlimited: %+v", free)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestLoadConfigRejectsUnknownFields: typos fail loudly.
func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	path := writeConfig(t, `{"adress": "127.0.0.1:9999"}`)
	if _, err := LoadConfig(path); err == nil || !strings.Contains(err.Error(), "adress") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

// TestConfigValidate pins the inconsistent-combination rules.
func TestConfigValidate(t *testing.T) {
	base := DefaultConfig()
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"wal and walDir", func(c *Config) { c.WAL = "a.wal"; c.WALDir = "d" }},
		{"replica without walDir", func(c *Config) { c.ReplicaOf = "host:1" }},
		{"tenant knobs without multi", func(c *Config) { c.CloseConcurrency = 1 }},
		{"tenants without multi", func(c *Config) {
			c.Tenants = map[string]TenantPolicySpec{"a": {}}
		}},
		{"multi with segmented engine", func(c *Config) { c.Multi = true; c.WALDir = "d" }},
		{"epochs without funding", func(c *Config) { c.Multi = true; c.EpochEvery = 2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.edit(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := base
	ok.Multi = true
	ok.EpochEvery = 2
	ok.Fund = 100
	ok.CloseConcurrency = 1
	ok.Tenants = map[string]TenantPolicySpec{"a": {Weight: 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("consistent multi config rejected: %v", err)
	}
}

// TestConfigStringRoundTrips: the startup log line is valid JSON that
// LoadConfig would accept back.
func TestConfigStringRoundTrips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Multi = true
	cfg.QueueTimeout = Duration(300 * time.Millisecond)
	path := writeConfig(t, cfg.String())
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("String() output rejected by LoadConfig: %v", err)
	}
	if back.QueueTimeout != cfg.QueueTimeout || back.Multi != cfg.Multi || back.Addr != cfg.Addr {
		t.Errorf("round trip diverged: %+v vs %+v", back, cfg)
	}
}
