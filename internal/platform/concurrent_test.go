package platform

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"melody"
)

// TestConcurrentServingMatchesSerial drives full runs with many goroutines
// submitting bids and scores concurrently while others hammer the read-only
// endpoints, then compares every observable outcome — allocations,
// payments, per-worker quality estimates — against a serial reference
// platform fed the same inputs one at a time. With Frequency-1 bids each
// worker holds at most one assignment, so results must be bit-identical to
// the serial order-equivalence class regardless of interleaving. Run under
// -race (make race does) this also exercises the split stateMu/ansMu server
// locking and the platform's RWMutex read paths.
func TestConcurrentServingMatchesSerial(t *testing.T) {
	const nWorkers, nRuns = 12, 3
	ctx := context.Background()

	_, c := newTestServer(t)
	ref := newTestPlatform(t)

	workerID := func(i int) string { return fmt.Sprintf("w%02d", i) }
	cost := func(i int) float64 { return 1 + float64(i%10)/10 }            // within [1, 2]
	score := func(i, run int) float64 { return 1 + float64((3*i+run)%10) } // within [1, 10]

	for i := 0; i < nWorkers; i++ {
		if err := c.RegisterWorker(ctx, workerID(i)); err != nil {
			t.Fatal(err)
		}
		if err := ref.RegisterWorker(ctx, workerID(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Read-only pollers run for the whole test, poking every read endpoint
	// concurrently with the mutations.
	pollCtx, stopPolling := context.WithCancel(ctx)
	var pollers sync.WaitGroup
	var pollErrs atomic.Int64
	for g := 0; g < 4; g++ {
		pollers.Add(1)
		go func(g int) {
			defer pollers.Done()
			for i := 0; pollCtx.Err() == nil; i++ {
				switch i % 3 {
				case 0:
					if _, err := c.Status(pollCtx); err != nil && pollCtx.Err() == nil {
						pollErrs.Add(1)
					}
				case 1:
					if _, err := c.Workers(pollCtx); err != nil && pollCtx.Err() == nil {
						pollErrs.Add(1)
					}
				case 2:
					id := workerID((g + i) % nWorkers)
					if _, err := c.Quality(pollCtx, id); err != nil && pollCtx.Err() == nil {
						pollErrs.Add(1)
					}
				}
			}
		}(g)
	}
	defer pollers.Wait()
	defer stopPolling()

	for run := 1; run <= nRuns; run++ {
		tasks := []TaskSpec{
			{ID: fmt.Sprintf("r%d-t1", run), Threshold: 10},
			{ID: fmt.Sprintf("r%d-t2", run), Threshold: 10},
			{ID: fmt.Sprintf("r%d-t3", run), Threshold: 10},
		}
		if err := c.OpenRun(ctx, tasks, 100); err != nil {
			t.Fatal(err)
		}
		refTasks := make([]melody.Task, len(tasks))
		for i, ts := range tasks {
			refTasks[i] = melody.Task{ID: ts.ID, Threshold: ts.Threshold}
		}
		if err := ref.OpenRun(ctx, refTasks, 100); err != nil {
			t.Fatal(err)
		}

		// Concurrent bids against the server; serial bids into the reference.
		var wg sync.WaitGroup
		for i := 0; i < nWorkers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := c.SubmitBid(ctx, workerID(i), cost(i), 1); err != nil {
					t.Errorf("run %d bid %d: %v", run, i, err)
				}
			}(i)
		}
		wg.Wait()
		for i := 0; i < nWorkers; i++ {
			if err := ref.SubmitBid(ctx, workerID(i), melody.Bid{Cost: cost(i), Frequency: 1}); err != nil {
				t.Fatalf("ref bid %d: %v", i, err)
			}
		}

		out, err := c.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		refOut, err := ref.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if out.TotalPayment != refOut.TotalPayment {
			t.Errorf("run %d: concurrent payment %v != serial %v", run, out.TotalPayment, refOut.TotalPayment)
		}
		if len(out.Assignments) != len(refOut.Assignments) {
			t.Fatalf("run %d: %d assignments vs serial %d", run, len(out.Assignments), len(refOut.Assignments))
		}

		// Concurrent scores for every assignment; the reference gets the same
		// scores serially. Frequency-1 bids mean one score per worker, so
		// submission order cannot matter.
		for _, asg := range out.Assignments {
			wg.Add(1)
			go func(asg AssignmentSpec) {
				defer wg.Done()
				i := workerIndex(asg.WorkerID)
				err := c.SubmitScore(ctx, asg.WorkerID, asg.TaskID, score(i, run))
				if err != nil && !errors.Is(err, melody.ErrNotAssigned) {
					t.Errorf("run %d score %s: %v", run, asg.WorkerID, err)
				}
			}(asg)
		}
		wg.Wait()
		for _, asg := range refOut.Assignments {
			i := workerIndex(asg.WorkerID)
			if err := ref.SubmitScore(ctx, asg.WorkerID, asg.TaskID, score(i, run)); err != nil {
				t.Fatalf("ref score %s: %v", asg.WorkerID, err)
			}
		}

		if err := c.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
		if err := ref.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stopPolling()
	pollers.Wait()
	if n := pollErrs.Load(); n != 0 {
		t.Errorf("%d read-only polls failed during concurrent serving", n)
	}

	// Every worker's quality estimate must match the serial reference
	// exactly — same floats, not approximately.
	for i := 0; i < nWorkers; i++ {
		id := workerID(i)
		got, err := c.Quality(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("worker %s: concurrent quality %v != serial %v", id, got, want)
		}
	}
}

// workerIndex recovers i from the "w%02d" IDs above.
func workerIndex(id string) int {
	var i int
	fmt.Sscanf(id, "w%02d", &i)
	return i
}
