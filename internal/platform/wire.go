// Package platform exposes the MELODY crowdsourcing platform over HTTP:
// a JSON API for worker registration, bidding, allocation, answer
// submission and scoring, mirroring the paper's Fig. 2 workflow, plus a Go
// client and ready-made worker/requester agents. The cmd/melody-platform,
// cmd/melody-worker and cmd/melody-requester binaries are thin wrappers
// around this package.
package platform

import (
	"bytes"
	"net/http"
	"sync"

	"melody"
)

// Phase describes where the current run is in its lifecycle.
type Phase string

// Run phases, surfaced by GET /v1/status.
const (
	// PhaseIdle means no run is open.
	PhaseIdle Phase = "idle"
	// PhaseBidding means a run is open and accepting bids.
	PhaseBidding Phase = "bidding"
	// PhaseScoring means the auction closed; answers and scores are being
	// collected.
	PhaseScoring Phase = "scoring"
)

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	// Run is the 1-based index of the current run while one is open, or the
	// number of completed runs when idle.
	Run int `json:"run"`
	// Phase is the lifecycle phase of the most recently opened run (idle
	// when no run is open).
	Phase Phase `json:"phase"`
	// Workers is the number of registered workers.
	Workers int `json:"workers"`
	// OpenRuns is the number of runs currently in flight; at most 1 on a
	// single-run backend, unbounded on a run-scheduler backend.
	OpenRuns int `json:"openRuns,omitempty"`
}

// RegisterWorkerRequest is the body of POST /v1/workers.
type RegisterWorkerRequest struct {
	WorkerID string `json:"workerId"`
}

// WorkersResponse is the body of GET /v1/workers.
type WorkersResponse struct {
	Workers []string `json:"workers"`
}

// QualityResponse is the body of GET /v1/workers/{id}/quality.
type QualityResponse struct {
	WorkerID string  `json:"workerId"`
	Quality  float64 `json:"quality"`
}

// ForecastResponse is the body of GET /v1/workers/{id}/forecast: the
// k-step-ahead predictive distribution with a 95% credible interval.
type ForecastResponse struct {
	WorkerID string  `json:"workerId"`
	Steps    int     `json:"steps"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Lo95     float64 `json:"lo95"`
	Hi95     float64 `json:"hi95"`
}

// TaskSpec is one task in an OpenRunRequest.
type TaskSpec struct {
	ID        string  `json:"id"`
	Threshold float64 `json:"threshold"`
}

// OpenRunRequest is the body of POST /v1/runs.
//
// ID and Tenant address the run-scheduler backend: ID is the
// client-chosen, scheduler-wide unique run identifier (the idempotency
// key every later /v1/runs/{id}/... call routes on), and Tenant names the
// tenant whose estimator and run sequence the run belongs to. Both are
// optional on a single-run backend, where the server synthesizes "r<n>"
// IDs; ID is required on a multi-run backend.
type OpenRunRequest struct {
	Tasks  []TaskSpec `json:"tasks"`
	Budget float64    `json:"budget"`
	ID     string     `json:"id,omitempty"`
	Tenant string     `json:"tenant,omitempty"`
}

// OpenRunResponse is the body of a successful POST /v1/runs: the run's ID
// (echoed or synthesized) for use in /v1/runs/{id}/... paths.
type OpenRunResponse struct {
	RunID string `json:"runId"`
}

// RunStatus is one in-flight run in a RunsResponse.
type RunStatus struct {
	RunID  string `json:"runId"`
	Tenant string `json:"tenant,omitempty"`
	Phase  Phase  `json:"phase"`
}

// RunsResponse is the body of GET /v1/runs: every run currently in
// flight, in open order.
type RunsResponse struct {
	Runs []RunStatus `json:"runs"`
}

// BidRequest is the body of POST /v1/runs/{run}/bids.
type BidRequest struct {
	WorkerID  string  `json:"workerId"`
	Cost      float64 `json:"cost"`
	Frequency int     `json:"frequency"`
}

// AssignmentSpec is one allocated (worker, task, payment) triple.
type AssignmentSpec struct {
	WorkerID string  `json:"workerId"`
	TaskID   string  `json:"taskId"`
	Payment  float64 `json:"payment"`
}

// OutcomeResponse is the body of POST /v1/runs/current/close and GET
// /v1/runs/current/outcome.
type OutcomeResponse struct {
	Assignments   []AssignmentSpec `json:"assignments"`
	SelectedTasks []string         `json:"selectedTasks"`
	TotalPayment  float64          `json:"totalPayment"`
}

// AnswerRequest is the body of POST /v1/runs/current/answers.
type AnswerRequest struct {
	WorkerID string `json:"workerId"`
	TaskID   string `json:"taskId"`
	Payload  string `json:"payload"`
}

// Answer is one submitted answer, as returned by GET
// /v1/runs/current/answers.
type Answer struct {
	WorkerID string `json:"workerId"`
	TaskID   string `json:"taskId"`
	Payload  string `json:"payload"`
}

// AnswersResponse is the body of GET /v1/runs/current/answers.
type AnswersResponse struct {
	Answers []Answer `json:"answers"`
}

// ScoreRequest is the body of POST /v1/runs/current/scores.
type ScoreRequest struct {
	WorkerID string  `json:"workerId"`
	TaskID   string  `json:"taskId"`
	Score    float64 `json:"score"`
}

// MaxBatchItems bounds the item count of a single batch request; larger
// batches are rejected with 400 before any item is applied.
const MaxBatchItems = 4096

// BidBatchRequest is the body of POST /v1/runs/current/bids/batch: many
// bids in one round trip. Items are applied independently in order, with
// per-item outcomes in the BatchResponse; a rejected item never aborts its
// neighbours. Retrying a whole batch is safe — replayed items are no-op
// successes under the platform's idempotent mutation protocol.
type BidBatchRequest struct {
	Bids []BidRequest `json:"bids"`
}

// ScoreBatchRequest is the body of POST /v1/runs/current/scores/batch.
type ScoreBatchRequest struct {
	Scores []ScoreRequest `json:"scores"`
}

// BatchItemResult is one item's outcome inside a BatchResponse: results[i]
// reports items[i]. Status/Error/Code mirror what the single-item endpoint
// would have answered for that item alone.
type BatchItemResult struct {
	OK     bool   `json:"ok"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"`
}

// Err surfaces a failed item as the same *APIError a single-item call
// would have produced, so errors.Is against the melody sentinels works
// per item; it is nil for accepted items.
func (r BatchItemResult) Err() error {
	if r.OK {
		return nil
	}
	status := r.Status
	if status == 0 {
		status = http.StatusBadRequest
	}
	return &APIError{Status: status, Message: r.Error, Code: r.Code}
}

// BatchResponse is the body of the batch endpoints. The HTTP status is 200
// whenever the batch itself was well-formed; item failures live here.
type BatchResponse struct {
	Results []BatchItemResult `json:"results"`
}

// ErrorResponse is the body of every non-2xx response. Code carries the
// machine-readable platform error so clients can map it back onto the
// melody sentinel errors (see APIError.Is); it is empty for errors with no
// sentinel (validation failures, malformed bodies).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Wire error codes, one per melody sentinel error. The canonical mapping
// lives next to the sentinels in the melody package (melody.ErrorCodeFor /
// melody.SentinelForCode); these aliases keep the wire package's historical
// names compiling.
const (
	CodeRunOpen       = string(melody.CodeRunOpen)
	CodeNoRunOpen     = string(melody.CodeNoRunOpen)
	CodeAuctionClosed = string(melody.CodeAuctionClosed)
	CodeAuctionOpen   = string(melody.CodeAuctionOpen)
	CodeUnknownWorker = string(melody.CodeUnknownWorker)
	CodeNotAssigned   = string(melody.CodeNotAssigned)
	CodeNoForecast    = string(melody.CodeNoForecast)
)

// Tenant control-plane wire types. Admin surfaces ship typed
// request/response structs — never ad-hoc maps — so the schema is
// greppable, versionable, and fuzzable like the rest of the wire (see
// DESIGN §13).

// TenantPolicySpec is the wire form of a melody.TenantPolicy. The quota
// fields are pointers so "absent" (unlimited) and an explicit 0 (no
// budget at all) stay distinguishable in JSON.
type TenantPolicySpec struct {
	// BudgetQuota caps lifetime committed spend (settled + escrowed);
	// absent or negative disables the cap, zero refuses any budgeted open.
	BudgetQuota *float64 `json:"budgetQuota,omitempty"`
	// EpochBudgetQuota caps committed spend per settlement epoch; same
	// convention as BudgetQuota.
	EpochBudgetQuota *float64 `json:"epochBudgetQuota,omitempty"`
	// MaxRuns caps lifetime opened runs; <= 0 disables the cap.
	MaxRuns int `json:"maxRuns,omitempty"`
	// Weight is the weighted-fair close-admission share; <= 0 selects 1.
	Weight float64 `json:"weight,omitempty"`
}

// Policy converts the wire spec into the in-memory policy.
func (s TenantPolicySpec) Policy() melody.TenantPolicy {
	p := melody.UnlimitedTenantPolicy()
	if s.BudgetQuota != nil {
		p.BudgetQuota = *s.BudgetQuota
	}
	if s.EpochBudgetQuota != nil {
		p.EpochBudgetQuota = *s.EpochBudgetQuota
	}
	p.MaxRuns = s.MaxRuns
	p.Weight = s.Weight
	return p
}

// specFromPolicy converts an in-memory policy back to its wire form.
func specFromPolicy(p melody.TenantPolicy) TenantPolicySpec {
	s := TenantPolicySpec{MaxRuns: p.MaxRuns, Weight: p.Weight}
	if p.BudgetQuota >= 0 {
		q := p.BudgetQuota
		s.BudgetQuota = &q
	}
	if p.EpochBudgetQuota >= 0 {
		q := p.EpochBudgetQuota
		s.EpochBudgetQuota = &q
	}
	return s
}

// TenantPolicyRequest is the body of PUT /v1/tenants/{id}.
type TenantPolicyRequest struct {
	Policy TenantPolicySpec `json:"policy"`
}

// TenantStatusResponse is one tenant's control-plane status: GET
// /v1/tenants/{id} and the PUT acknowledgment.
type TenantStatusResponse struct {
	Tenant string `json:"tenant"`
	// Policy is the installed policy; absent when the tenant has run
	// history but no policy (unconstrained).
	Policy *TenantPolicySpec `json:"policy,omitempty"`
	// Spent is the settled spend across the tenant's finished runs.
	Spent float64 `json:"spent"`
	// EpochSpent is the settled spend in the current settlement epoch.
	EpochSpent float64 `json:"epochSpent,omitempty"`
	// Escrowed is the budget committed by the tenant's open run.
	Escrowed float64 `json:"escrowed,omitempty"`
	// RunsOpened counts runs ever opened, including the open one.
	RunsOpened int `json:"runsOpened,omitempty"`
	// OpenRunID is the tenant's open run, omitted when none.
	OpenRunID string `json:"openRunId,omitempty"`
	// Weight is the effective close-scheduling weight.
	Weight float64 `json:"weight"`
}

// TenantsResponse is the body of GET /v1/tenants.
type TenantsResponse struct {
	Tenants []TenantStatusResponse `json:"tenants"`
}

// RegistryResizeRequest is the body of PUT /v1/registry: an elastic
// reshard of the worker registry.
type RegistryResizeRequest struct {
	Shards int `json:"shards"`
}

// RegistryResponse describes the registry after a resize.
type RegistryResponse struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	Moved   int `json:"moved,omitempty"`
}

// toTenantStatusResponse converts a scheduler status to its wire form.
func toTenantStatusResponse(st melody.TenantStatus) TenantStatusResponse {
	resp := TenantStatusResponse{
		Tenant:     st.Tenant,
		Spent:      st.Spent,
		EpochSpent: st.EpochSpent,
		Escrowed:   st.Escrowed,
		RunsOpened: st.RunsOpened,
		OpenRunID:  st.OpenRun,
		Weight:     st.Weight,
	}
	if st.HasPolicy {
		spec := specFromPolicy(st.Policy)
		resp.Policy = &spec
	}
	return resp
}

// errorCode maps a platform error onto its wire code ("" when none).
func errorCode(err error) string {
	return string(melody.ErrorCodeFor(err))
}

// sentinelForCode maps a wire code back onto the melody sentinel (nil when
// unknown).
func sentinelForCode(code string) error {
	return melody.SentinelForCode(melody.ErrorCode(code))
}

// bufPool recycles encode/decode buffers across requests on both sides of
// the wire, so steady-state serving does not allocate a fresh buffer per
// message.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// poolBufCap bounds what returns to the pool: a rare giant message must not
// pin its buffer forever.
const poolBufCap = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > poolBufCap {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// toOutcomeResponse converts a core outcome to its wire form.
func toOutcomeResponse(out *melody.Outcome) OutcomeResponse {
	resp := OutcomeResponse{
		SelectedTasks: append([]string(nil), out.SelectedTasks...),
		TotalPayment:  out.TotalPayment,
	}
	for _, a := range out.Assignments {
		resp.Assignments = append(resp.Assignments, AssignmentSpec{
			WorkerID: a.WorkerID, TaskID: a.TaskID, Payment: a.Payment,
		})
	}
	return resp
}
