package platform

// Tests for the client-side overload response: the AIMD limiter's window
// arithmetic and blocking behaviour, the Retry-After floor under backoff,
// retried-after-shed idempotency, and the BidBatcher under concurrent
// Submit/Close (run with -race by make ci).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"melody"
)

func TestAdaptiveLimiterWindowMoves(t *testing.T) {
	l := newAdaptiveLimiter(AdaptiveConfig{MinWindow: 1, MaxWindow: 8, InitialWindow: 8}, nil)
	if got := l.Window(); got != 8 {
		t.Fatalf("initial window = %d, want 8", got)
	}
	// Multiplicative decrease: 8 -> 4 -> 2 -> 1, floored at MinWindow.
	for _, want := range []int{4, 2, 1, 1} {
		l.onOverload()
		if got := l.Window(); got != want {
			t.Errorf("window after overload = %d, want %d", got, want)
		}
	}
	// Additive increase: from 1, one success adds a whole slot; growth then
	// slows to ~1 per window of successes and caps at MaxWindow.
	l.onSuccess()
	if got := l.Window(); got != 2 {
		t.Errorf("window after success at floor = %d, want 2", got)
	}
	for i := 0; i < 1000; i++ {
		l.onSuccess()
	}
	if got := l.Window(); got != 8 {
		t.Errorf("window after sustained success = %d, want cap 8", got)
	}
}

func TestAdaptiveLimiterBlocksAtWindow(t *testing.T) {
	l := newAdaptiveLimiter(AdaptiveConfig{MinWindow: 1, MaxWindow: 4, InitialWindow: 1}, nil)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Window 1, one in flight: the next acquire must block until release.
	acquired := make(chan struct{})
	go func() {
		if err := l.acquire(context.Background()); err == nil {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("second acquire did not block at window 1")
	case <-time.After(30 * time.Millisecond):
	}
	l.release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("release did not unblock the waiting acquire")
	}
	l.release()
}

func TestAdaptiveLimiterAcquireHonorsContext(t *testing.T) {
	l := newAdaptiveLimiter(AdaptiveConfig{MinWindow: 1, MaxWindow: 1, InitialWindow: 1}, nil)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- l.acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	// The slot was never granted to the cancelled waiter.
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("slot leaked to a cancelled waiter: %v", err)
	}
	l.release()
}

// TestClientWindowShrinksOnShed drives a Client with the AIMD limiter
// against a server that sheds everything, and checks the window collapses
// to the floor while recovery grows it back.
func TestClientWindowShrinksOnShed(t *testing.T) {
	var shedding atomic.Bool
	shedding.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if shedding.Load() {
			writeShed(w, 5*time.Millisecond)
			return
		}
		writeJSON(w, http.StatusOK, StatusResponse{Phase: PhaseIdle})
	}))
	defer ts.Close()
	client, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      &noRetry,
		Adaptive:   &AdaptiveConfig{MinWindow: 1, MaxWindow: 64, InitialWindow: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := client.Status(ctx); !errors.Is(err, melody.ErrOverloaded) {
			t.Fatalf("call %d: err = %v, want ErrOverloaded", i, err)
		}
	}
	if got := client.ConcurrencyWindow(); got != 1 {
		t.Errorf("window after sustained shed = %d, want floor 1", got)
	}
	shedding.Store(false)
	for i := 0; i < 3; i++ {
		if _, err := client.Status(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := client.ConcurrencyWindow(); got < 2 {
		t.Errorf("window after recovery = %d, want growth above the floor", got)
	}
}

// TestClientHonorsRetryAfter checks the retry loop waits at least the
// server's Retry-After hint even when the backoff policy alone would retry
// sooner.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	const hint = 150 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", retryAfterValue(hint))
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Error: "overloaded", Code: string(melody.CodeOverloaded),
			})
			return
		}
		writeJSON(w, http.StatusOK, StatusResponse{Phase: PhaseIdle})
	}))
	defer ts.Close()
	client, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Status(context.Background()); err != nil {
		t.Fatalf("shed-then-ok should succeed, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Errorf("retry waited %v, want at least the Retry-After hint %v", elapsed, hint)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

// shedFirstAttempts wraps a server handler and sheds the first N attempts
// of every distinct mutation (method+path+attempt counting), modelling an
// overloaded server that recovers while the client retries. Used to prove
// the retry-after-shed path composes with server-side idempotency.
type shedFirstAttempts struct {
	next  http.Handler
	sheds int32 // sheds this many attempts per key

	mu   sync.Mutex
	seen map[string]int32
}

func (s *shedFirstAttempts) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.Path
	s.mu.Lock()
	if s.seen == nil {
		s.seen = make(map[string]int32)
	}
	s.seen[key]++
	n := s.seen[key]
	s.mu.Unlock()
	if r.Method == http.MethodPost && n <= s.sheds {
		writeShed(w, 2*time.Millisecond)
		return
	}
	s.next.ServeHTTP(w, r)
}

// TestRetryAfterShedReplaysAreNoOps is the satellite-2 property test: a
// mutation that was shed with 429 and then retried — possibly interleaved
// with a duplicate of an already-applied mutation — lands exactly once.
// Every POST is shed on its first attempt, so every applied mutation is a
// retry; replaying it again afterwards must still be a no-op success.
func TestRetryAfterShedReplaysAreNoOps(t *testing.T) {
	srv, err := NewServer(newTestPlatform(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	shedder := &shedFirstAttempts{next: srv.Handler(), sheds: 1}
	ts := httptest.NewServer(shedder)
	defer ts.Close()
	client, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(),
		Retry:      &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []string{"w1", "w2"} {
		if err := client.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	// Shed-then-retried bid, then an explicit duplicate: still one bid.
	if err := client.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Errorf("replay after shed-retry: %v", err)
	}
	if err := client.SubmitBid(ctx, "w2", 1.5, 2); err != nil {
		t.Fatal(err)
	}
	out, err := client.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := client.CloseAuction(ctx)
	if err != nil {
		t.Errorf("replayed CloseAuction after sheds: %v", err)
	}
	if out2.TotalPayment != out.TotalPayment || len(out2.Assignments) != len(out.Assignments) {
		t.Errorf("replayed close diverged: %+v vs %+v", out2, out)
	}
	for _, a := range out.Assignments {
		if err := client.SubmitScore(ctx, a.WorkerID, a.TaskID, 7); err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitScore(ctx, a.WorkerID, a.TaskID, 7); err != nil {
			t.Errorf("replayed SubmitScore after sheds: %v", err)
		}
	}
	if err := client.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.FinishRun(ctx); err != nil {
		t.Errorf("replayed FinishRun after sheds: %v", err)
	}
	status, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Phase != PhaseIdle || status.Run != 1 {
		t.Errorf("after shed/replay run: phase %s run %d, want idle run 1", status.Phase, status.Run)
	}
}

// TestBidBatcherConcurrentSubmitClose races many Submits against Close:
// every Submit must resolve (accepted by a flushed batch or refused by the
// closed batcher), nothing may hang, and Close must wait for in-flight
// flushes. Run under -race.
func TestBidBatcherConcurrentSubmitClose(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()
	const workers = 8
	for i := 0; i < workers; i++ {
		if err := client.RegisterWorker(ctx, "w"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	b := NewBidBatcher(client, 8, time.Millisecond)
	const goroutines, perG = 8, 50
	var landed, refused atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := b.Submit(ctx, "w"+strconv.Itoa(g%workers), 1.0+0.001*float64(g*perG+i), 1)
				switch {
				case err == nil:
					landed.Add(1)
				case errors.Is(err, context.Canceled):
					refused.Add(1) // submitted after Close
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(g)
	}
	// Close midway through the storm, racing the submitters.
	time.Sleep(5 * time.Millisecond)
	b.Close()
	wg.Wait()
	b.Close() // second Close must be a no-op
	if got := landed.Load() + refused.Load(); got != goroutines*perG {
		t.Errorf("submits accounted = %d, want %d", got, goroutines*perG)
	}
	if landed.Load() == 0 {
		t.Error("close raced ahead of every submit; expected some bids to land")
	}
	// The run still settles over whatever bids landed.
	if _, err := client.CloseAuction(ctx); err != nil {
		t.Fatal(err)
	}
}
