package platform

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"melody/internal/eventlog"
)

// ReplicationSource is the storage-engine surface the server exposes to
// replicas: the durable file manifest and frame-aligned byte-range reads.
// *eventlog.SegmentedLog satisfies it.
type ReplicationSource interface {
	Manifest() (eventlog.Manifest, error)
	ReadFileRange(name string, off int64, maxLen int) (data []byte, done bool, err error)
}

var _ ReplicationSource = (*eventlog.SegmentedLog)(nil)

// WithReplicationSource mounts the /v1/replication endpoints, serving the
// given storage engine's durable files to pulling replicas.
func WithReplicationSource(src ReplicationSource) ServerOption {
	return func(s *Server) { s.replSrc = src }
}

// ReplicaState is one replica's acked position as seen by the primary.
type ReplicaState struct {
	ID      string    `json:"id"`
	Segment string    `json:"segment"`
	Offset  int64     `json:"offset"`
	LastAck time.Time `json:"last_ack"`
}

// ReplicationStatusResponse reports the primary's durable sequence and
// every replica that has acked, for failover tooling to pick the most
// caught-up replica.
type ReplicationStatusResponse struct {
	Seq      int64          `json:"seq"`
	Replicas []ReplicaState `json:"replicas"`
}

// ChunkResponse carries one byte range of a replicated file. Data is
// base64 on the wire (JSON []byte); Done reports the bytes reach the
// file's durable end.
type ChunkResponse struct {
	Data []byte `json:"data"`
	Done bool   `json:"done"`
}

// AckRequest reports a replica's durable position to the primary.
type AckRequest struct {
	ReplicaID string `json:"replica_id"`
	Segment   string `json:"segment"`
	Offset    int64  `json:"offset"`
}

// mountReplication adds the replication endpoints; called from Handler when
// a source was configured.
func (s *Server) mountReplication(mux *http.ServeMux) {
	s.route(mux, "GET /v1/replication/manifest", "repl_manifest", s.handleReplManifest)
	s.route(mux, "GET /v1/replication/chunk", "repl_chunk", s.handleReplChunk)
	s.route(mux, "POST /v1/replication/ack", "repl_ack", s.handleReplAck)
	s.route(mux, "GET /v1/replication/status", "repl_status", s.handleReplStatus)
}

func (s *Server) handleReplManifest(w http.ResponseWriter, _ *http.Request) {
	m, err := s.replSrc.Manifest()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleReplChunk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: missing name parameter"})
		return
	}
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil || off < 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: invalid off parameter"})
		return
	}
	maxLen := 0
	if raw := q.Get("max"); raw != "" {
		if maxLen, err = strconv.Atoi(raw); err != nil || maxLen < 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: invalid max parameter"})
			return
		}
	}
	data, done, err := s.replSrc.ReadFileRange(name, off, maxLen)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, eventlog.ErrUnknownFile) {
			// The file was compacted away (or never existed); the replica
			// re-fetches the manifest and moves on.
			status = http.StatusNotFound
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ChunkResponse{Data: data, Done: done})
}

func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	var req AckRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.ReplicaID == "" {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: missing replica_id"})
		return
	}
	s.replMu.Lock()
	if s.replicas == nil {
		s.replicas = make(map[string]ReplicaState)
	}
	s.replicas[req.ReplicaID] = ReplicaState{
		ID: req.ReplicaID, Segment: req.Segment, Offset: req.Offset, LastAck: time.Now(),
	}
	s.replMu.Unlock()
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	m, err := s.replSrc.Manifest()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.replMu.Lock()
	replicas := make([]ReplicaState, 0, len(s.replicas))
	for _, st := range s.replicas {
		replicas = append(replicas, st)
	}
	s.replMu.Unlock()
	sort.Slice(replicas, func(i, j int) bool { return replicas[i].ID < replicas[j].ID })
	writeJSON(w, http.StatusOK, ReplicationStatusResponse{Seq: m.Seq, Replicas: replicas})
}

// ReplicationClient implements eventlog.ReplicaSource against a primary's
// /v1/replication endpoints, so a replica process follows a live primary
// with nothing but its base URL:
//
//	src, _ := platform.NewReplicationClient(primaryURL, nil)
//	rep, _ := eventlog.NewReplicator(eventlog.ReplicatorConfig{Dir: dir, Source: src})
//	rep.Run(ctx)
type ReplicationClient struct {
	c *Client
}

var _ eventlog.ReplicaSource = (*ReplicationClient)(nil)

// NewReplicationClient builds a replication source for the primary at
// baseURL. httpClient may be nil for a default with a 10s timeout; the
// underlying platform client's retry policy smooths over primary restarts.
func NewReplicationClient(baseURL string, httpClient *http.Client) (*ReplicationClient, error) {
	c, err := NewClient(baseURL, httpClient)
	if err != nil {
		return nil, err
	}
	return &ReplicationClient{c: c}, nil
}

// Manifest implements eventlog.ReplicaSource.
func (rc *ReplicationClient) Manifest(ctx context.Context) (eventlog.Manifest, error) {
	var m eventlog.Manifest
	err := rc.c.do(ctx, http.MethodGet, "/v1/replication/manifest", nil, &m)
	return m, err
}

// Chunk implements eventlog.ReplicaSource.
func (rc *ReplicationClient) Chunk(ctx context.Context, name string, off int64, maxLen int) ([]byte, bool, error) {
	path := fmt.Sprintf("/v1/replication/chunk?name=%s&off=%d&max=%d",
		url.QueryEscape(name), off, maxLen)
	var out ChunkResponse
	if err := rc.c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, false, err
	}
	return out.Data, out.Done, nil
}

// Ack implements eventlog.ReplicaSource.
func (rc *ReplicationClient) Ack(ctx context.Context, replicaID, segment string, off int64) error {
	return rc.c.do(ctx, http.MethodPost, "/v1/replication/ack",
		AckRequest{ReplicaID: replicaID, Segment: segment, Offset: off}, nil)
}

// ReplicationStatus fetches the primary's replication status (for failover
// tooling; not part of the ReplicaSource contract).
func (rc *ReplicationClient) ReplicationStatus(ctx context.Context) (ReplicationStatusResponse, error) {
	var out ReplicationStatusResponse
	err := rc.c.do(ctx, http.MethodGet, "/v1/replication/status", nil, &out)
	return out, err
}
