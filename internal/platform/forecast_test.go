package platform

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"melody"
)

func TestForecastEndpoint(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if err := c.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	f, err := c.Forecast(ctx, "w1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.WorkerID != "w1" || f.Steps != 1 {
		t.Errorf("forecast = %+v", f)
	}
	// A fresh worker forecasts around the prior mean 5.5.
	if f.Mean < 5 || f.Mean > 6 {
		t.Errorf("forecast mean %v far from prior 5.5", f.Mean)
	}
	if f.Lo95 >= f.Mean || f.Hi95 <= f.Mean {
		t.Errorf("credible interval [%v, %v] does not bracket mean %v", f.Lo95, f.Hi95, f.Mean)
	}
	// Longer horizons widen the interval.
	f5, err := c.Forecast(ctx, "w1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if f5.Variance <= f.Variance {
		t.Errorf("5-step variance %v not above 1-step %v", f5.Variance, f.Variance)
	}
}

func TestForecastEndpointErrors(t *testing.T) {
	ts, c := newTestServer(t)
	ctx := context.Background()

	var apiErr *APIError
	_, err := c.Forecast(ctx, "ghost", 1)
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown worker forecast = %v", err)
	}
	if err := c.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Forecast(ctx, "w1", 0)
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("zero steps forecast = %v", err)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/workers/w1/forecast?steps=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric steps status = %d", resp.StatusCode)
	}
}

func TestForecastNotImplementedForBaselines(t *testing.T) {
	// A platform with a baseline estimator cannot forecast; the API maps
	// this to 501.
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: melody.NewMLAllRunsEstimator(melody.EstimatorConfig{Initial: 5.5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	_, err = c.Forecast(ctx, "w1", 1)
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusNotImplemented {
		t.Errorf("baseline forecast = %v, want 501", err)
	}
}
