package platform

// Retry-layer tests: backoff shape, error classification, the retry loop
// against a failing server, and the server-side idempotency that makes
// retrying mutations safe.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"melody"
)

func TestBackoffDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	// With u=1 the jitter term is maximal, so the delay equals the full
	// step: 10, 20, 40, then capped at 40.
	for i, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond,
	} {
		if got := backoffDelay(p, i, 1); got != want {
			t.Errorf("attempt %d: delay(u=1) = %v, want %v", i, got, want)
		}
	}
	// With u=0 only the deterministic half remains.
	if got := backoffDelay(p, 0, 0); got != 5*time.Millisecond {
		t.Errorf("delay(u=0) = %v, want 5ms", got)
	}
	if got := backoffDelay(RetryPolicy{}, 3, 0.5); got != 0 {
		t.Errorf("zero policy delay = %v, want 0", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&url.Error{Op: "Post", URL: "http://x", Err: errors.New("connection refused")}, true},
		{&APIError{Status: http.StatusInternalServerError}, true},
		{&APIError{Status: http.StatusServiceUnavailable}, true},
		{&APIError{Status: http.StatusRequestTimeout}, true},
		{&APIError{Status: http.StatusTooManyRequests}, true},
		{&APIError{Status: http.StatusBadRequest}, false},
		{&APIError{Status: http.StatusNotFound}, false},
		{&APIError{Status: http.StatusConflict}, false},
		{errors.New("not a transport error"), false},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAPIErrorIsSentinel(t *testing.T) {
	err := &APIError{Status: http.StatusConflict, Message: "closed", Code: CodeAuctionClosed}
	if !errors.Is(err, melody.ErrAuctionClosed) {
		t.Error("auction_closed APIError does not match melody.ErrAuctionClosed")
	}
	if errors.Is(err, melody.ErrNoRunOpen) {
		t.Error("auction_closed APIError matches the wrong sentinel")
	}
	if errors.Is(&APIError{Status: 400}, melody.ErrRunOpen) {
		t.Error("code-less APIError matches a sentinel")
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, StatusResponse{Phase: PhaseIdle})
	}))
	defer ts.Close()
	client, err := NewClientWithPolicy(ts.URL, ts.Client(),
		RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Status(context.Background()); err != nil {
		t.Fatalf("two 503s then 200 should succeed, got %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, melody.ErrUnknownWorker)
	}))
	defer ts.Close()
	client, err := NewClientWithPolicy(ts.URL, ts.Client(),
		RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Quality(context.Background(), "ghost")
	if !errors.Is(err, melody.ErrUnknownWorker) {
		t.Fatalf("err = %v, want ErrUnknownWorker", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("4xx was retried: server saw %d attempts, want 1", n)
	}
}

func TestClientRetryStopsOnContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	client, err := NewClientWithPolicy(ts.URL, ts.Client(),
		RetryPolicy{MaxAttempts: 1000, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := client.Status(ctx); err == nil {
		t.Fatal("expected an error against an always-503 server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ignored context cancellation, ran %v", elapsed)
	}
}

// TestMutationReplaysAreNoOps drives one run over HTTP, replaying every
// mutation as a retry-after-lost-response would, and checks the replays
// succeed without disturbing the run.
func TestMutationReplaysAreNoOps(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()
	for _, id := range []string{"w1", "w2"} {
		if err := client.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	tasks := []TaskSpec{{ID: "t1", Threshold: 10}}
	if err := client.OpenRun(ctx, tasks, 100); err != nil {
		t.Fatal(err)
	}
	if err := client.OpenRun(ctx, tasks, 100); err != nil {
		t.Errorf("replayed OpenRun: %v", err)
	}
	if err := client.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Errorf("replayed SubmitBid: %v", err)
	}
	if err := client.SubmitBid(ctx, "w2", 1.5, 2); err != nil {
		t.Fatal(err)
	}
	out, err := client.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := client.CloseAuction(ctx)
	if err != nil {
		t.Errorf("replayed CloseAuction: %v", err)
	}
	if out2.TotalPayment != out.TotalPayment || len(out2.Assignments) != len(out.Assignments) {
		t.Errorf("replayed close returned a different outcome: %+v vs %+v", out2, out)
	}
	for _, a := range out.Assignments {
		if err := client.SubmitAnswer(ctx, a.WorkerID, a.TaskID, AnswerPayload(7)); err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitAnswer(ctx, a.WorkerID, a.TaskID, AnswerPayload(7)); err != nil {
			t.Errorf("replayed SubmitAnswer: %v", err)
		}
	}
	answers, err := client.Answers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(out.Assignments) {
		t.Errorf("duplicate answers recorded: %d answers for %d assignments",
			len(answers), len(out.Assignments))
	}
	for _, a := range out.Assignments {
		if err := client.SubmitScore(ctx, a.WorkerID, a.TaskID, 7); err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitScore(ctx, a.WorkerID, a.TaskID, 7); err != nil {
			t.Errorf("replayed SubmitScore: %v", err)
		}
	}
	if err := client.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.FinishRun(ctx); err != nil {
		t.Errorf("replayed FinishRun: %v", err)
	}
	status, err := client.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.Phase != PhaseIdle || status.Run != 1 {
		t.Errorf("after replays: phase %s run %d, want idle run 1", status.Phase, status.Run)
	}
}

// TestRunDeadlines arms the watchdog and drives a run where neither the
// close nor the finish ever arrives: the deadlines must move the run along
// on their own.
func TestRunDeadlines(t *testing.T) {
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(p, nil, WithDeadlines(100*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := client.RegisterWorker(ctx, "slow"); err != nil {
		t.Fatal(err)
	}
	if err := client.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitBid(ctx, "slow", 1.2, 2); err != nil {
		t.Fatal(err)
	}
	// Nobody closes the auction: the bidding deadline must.
	waitForPhase(t, client, PhaseScoring)
	// Nobody answers or scores: the scoring deadline must finish the run,
	// observing the winner as missing.
	waitForPhase(t, client, PhaseIdle)
	if p.Run() != 1 {
		t.Errorf("completed runs = %d, want 1", p.Run())
	}
}

// waitForPhase polls status until the platform reaches the phase or 5s
// elapse.
func waitForPhase(t *testing.T, client *Client, want Phase) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		status, err := client.Status(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if status.Phase == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("platform never reached phase %s", want)
}
