package platform

// Failure injection: the worker agents must survive transient network
// failures without losing their place in the run protocol.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"melody/internal/stats"
)

// flakyTransport fails every k-th request with a transport error.
type flakyTransport struct {
	inner   http.RoundTripper
	counter atomic.Int64
	every   int64
}

// RoundTrip implements http.RoundTripper.
func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.counter.Add(1)%f.every == 0 {
		return nil, errors.New("injected network failure")
	}
	return f.inner.RoundTrip(req)
}

func TestAgentsSurviveFlakyNetwork(t *testing.T) {
	ts, _ := newTestServer(t)
	flaky := &http.Client{
		Transport: &flakyTransport{inner: ts.Client().Transport, every: 4},
		Timeout:   5 * time.Second,
	}
	flakyClient, err := NewClient(ts.URL, flaky)
	if err != nil {
		t.Fatal(err)
	}
	// The requester uses a reliable client (it aborts on errors by design);
	// the agents use the flaky one.
	reliableClient, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	r := stats.NewRNG(5)
	var agents []*WorkerAgent
	for i := 0; i < 5; i++ {
		// Registration itself may hit an injected failure; retry a few
		// times like a real client would.
		var agent *WorkerAgent
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			agent, err = NewWorkerAgent(ctx, WorkerAgentConfig{
				Client:        flakyClient,
				WorkerID:      fmt.Sprintf("flaky-%d", i),
				Cost:          r.Uniform(1, 2),
				Frequency:     2,
				LatentQuality: func(int) float64 { return 7 },
				ScoreSigma:    0.5,
				PollInterval:  10 * time.Millisecond,
				RNG:           r.Split(),
			})
			if err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("agent %d never registered: %v", i, err)
		}
		agents = append(agents, agent)
	}
	defer func() {
		for _, a := range agents {
			if err := a.Stop(); err != nil {
				t.Errorf("stop: %v", err)
			}
		}
	}()

	requester, err := NewRequester(RequesterConfig{
		Client: reliableClient,
		Tasks: func(run int) []TaskSpec {
			return []TaskSpec{{ID: fmt.Sprintf("r%d", run), Threshold: 12}}
		},
		Budget:        100,
		BidWait:       400 * time.Millisecond, // generous so flaky bids land
		AnswerTimeout: 5 * time.Second,
		ScoreLo:       1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	selected := 0
	for run := 1; run <= 4; run++ {
		out, err := requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		selected += len(out.SelectedTasks)
	}
	if selected == 0 {
		t.Error("flaky agents never completed a single task across 4 runs")
	}
}

func TestServerRejectsWrongMethods(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/runs/current/close")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route = %d, want 405", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE workers = %d, want 405", resp.StatusCode)
	}
}

// Verify the test-only transport satisfies the interface.
var _ http.RoundTripper = (*flakyTransport)(nil)
