package platform

import (
	"context"
	"sync"
	"time"
)

// BidBatcher coalesces concurrent single-bid submissions into batch round
// trips: callers use Submit exactly like Client.SubmitBid, and bids that
// arrive while a flush is in flight (or within the linger window) share one
// POST /v1/runs/current/bids/batch. Each caller still gets its own per-item
// error back. Safe for concurrent use.
type BidBatcher struct {
	client *Client

	// maxBatch flushes as soon as this many bids are pending; linger bounds
	// how long a lone bid waits for company.
	maxBatch int
	linger   time.Duration

	mu      sync.Mutex
	pending []pendingBid
	timer   *time.Timer
	flushes sync.WaitGroup
	closed  bool
}

type pendingBid struct {
	req  BidRequest
	done chan error
}

// NewBidBatcher wraps client in a coalescing layer. maxBatch <= 0 defaults
// to 256 (and is capped at MaxBatchItems); linger <= 0 defaults to 2ms.
func NewBidBatcher(client *Client, maxBatch int, linger time.Duration) *BidBatcher {
	if maxBatch <= 0 {
		maxBatch = 256
	}
	if maxBatch > MaxBatchItems {
		maxBatch = MaxBatchItems
	}
	if linger <= 0 {
		linger = 2 * time.Millisecond
	}
	return &BidBatcher{client: client, maxBatch: maxBatch, linger: linger}
}

// Submit enqueues one bid and blocks until its batch lands (or ctx ends).
// The returned error is the same a direct Client.SubmitBid would produce:
// per-item platform errors map onto the melody sentinels, batch-level
// failures are reported to every bid that rode in the batch.
func (b *BidBatcher) Submit(ctx context.Context, workerID string, cost float64, frequency int) error {
	done := make(chan error, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return context.Canceled
	}
	b.pending = append(b.pending, pendingBid{
		req:  BidRequest{WorkerID: workerID, Cost: cost, Frequency: frequency},
		done: done,
	})
	switch {
	case len(b.pending) >= b.maxBatch:
		b.startFlushLocked()
	case b.timer == nil:
		b.timer = time.AfterFunc(b.linger, b.flushTimer)
	}
	b.mu.Unlock()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The bid stays in its batch — cancellation abandons the wait, not
		// the submission (retrying it later is a no-op anyway).
		return ctx.Err()
	}
}

// flushTimer fires when the linger window closes.
func (b *BidBatcher) flushTimer() {
	b.mu.Lock()
	b.timer = nil
	if len(b.pending) > 0 && !b.closed {
		b.startFlushLocked()
	}
	b.mu.Unlock()
}

// startFlushLocked detaches the pending batch and sends it on a background
// goroutine; callers hold b.mu. The flush uses a background context so one
// caller's cancellation cannot fail the neighbours sharing its batch.
func (b *BidBatcher) startFlushLocked() {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.flushes.Add(1)
	go func() {
		defer b.flushes.Done()
		reqs := make([]BidRequest, len(batch))
		for i, p := range batch {
			reqs[i] = p.req
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		res, err := b.client.SubmitBids(ctx, reqs)
		for i, p := range batch {
			if err != nil {
				p.done <- err
				continue
			}
			p.done <- res.ErrAt(i)
		}
	}()
}

// Close flushes any pending bids and waits for in-flight batches to land.
// Submissions after Close fail immediately.
func (b *BidBatcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	if len(b.pending) > 0 {
		b.startFlushLocked()
	}
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	b.flushes.Wait()
}
