package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"melody"
	"melody/internal/obs"
)

// Backend is the single-run platform surface the HTTP server drives. It is
// satisfied by *melody.Platform and by eventlog.PersistentPlatform (the
// write-ahead-logged variant used with -wal).
// Mutations take the request context first, so cancellation and deadlines
// reach the backend's durability waits; read-only queries are lock-scoped
// and context-free.
type Backend interface {
	RegisterWorker(ctx context.Context, workerID string) error
	OpenRun(ctx context.Context, tasks []melody.Task, budget float64) error
	SubmitBid(ctx context.Context, workerID string, bid melody.Bid) error
	CloseAuction(ctx context.Context) (*melody.Outcome, error)
	SubmitScore(ctx context.Context, workerID, taskID string, score float64) error
	FinishRun(ctx context.Context) error
	Workers() []string
	Run() int
	State() melody.RunState
	Quality(workerID string) (float64, error)
	Forecast(workerID string, steps int) (melody.QualityForecast, error)
}

var _ Backend = (*melody.Platform)(nil)

// BatchBackend is the optional batch extension of Backend: a whole slice of
// bids or scores applied under one lock acquisition (and, for the WAL
// backend, made durable by one group commit) with per-item errors. Both
// *melody.Platform and eventlog.PersistentPlatform implement it; the server
// detects it at construction and falls back to item-at-a-time submission
// against backends that don't.
type BatchBackend interface {
	SubmitBids(ctx context.Context, bids []melody.WorkerBid) melody.BatchResult
	SubmitScores(ctx context.Context, scores []melody.TaskScore) melody.BatchResult
}

var _ BatchBackend = (*melody.Platform)(nil)

// MultiRunBackend is the multi-tenant platform surface: every run-scoped
// mutation is keyed by run ID, so N runs from different tenants proceed
// concurrently. It is satisfied by *melody.RunScheduler and by
// eventlog.PersistentScheduler (the WAL-backed variant).
type MultiRunBackend interface {
	RegisterWorker(ctx context.Context, workerID string) error
	OpenRun(ctx context.Context, runID, tenant string, tasks []melody.Task, budget float64) error
	SubmitBid(ctx context.Context, runID, workerID string, bid melody.Bid) error
	SubmitBids(ctx context.Context, runID string, bids []melody.WorkerBid) melody.BatchResult
	CloseAuction(ctx context.Context, runID string) (*melody.Outcome, error)
	SubmitScore(ctx context.Context, runID, workerID, taskID string, score float64) error
	SubmitScores(ctx context.Context, runID string, scores []melody.TaskScore) melody.BatchResult
	FinishRun(ctx context.Context, runID string) error
	Workers() []string
	CompletedRuns() int
	OpenRuns() []melody.RunInfo
	Run(runID string) (melody.RunInfo, error)
	Quality(tenant, workerID string) (float64, error)
	Forecast(tenant, workerID string, steps int) (melody.QualityForecast, error)
	// Tenant control plane: typed policies (budget quotas, run caps,
	// close-scheduling weights) administered over /v1/tenants.
	SetTenantPolicy(ctx context.Context, tenant string, p melody.TenantPolicy) error
	TenantStatus(tenant string) (melody.TenantStatus, error)
	TenantStatuses() []melody.TenantStatus
	// ResizeRegistry reshards the worker registry online.
	ResizeRegistry(ctx context.Context, n int) (melody.RegistryInfo, error)
}

var _ MultiRunBackend = (*melody.RunScheduler)(nil)

// maxDoneRuns bounds how many finished runs the server remembers for
// idempotent replays of late client retries; older entries are evicted in
// completion order.
const maxDoneRuns = 1024

// runState is one run's HTTP-side state machine: its lifecycle phase,
// recorded outcome, answer store, watchdog timer and phase span. Each run
// owns its own mutex, so two tenants' runs never contend on a shared
// phase lock — the run registry (Server.mu) is only held for map lookups,
// never across a backend call or another run's work.
type runState struct {
	id     string
	tenant string
	num    int // 1-based open index, for logs/spans/legacy status

	mu      sync.Mutex
	phase   Phase
	tasks   []melody.Task // open spec for replay detection; nil after resume
	budget  float64
	spec    bool // whether tasks/budget record the open spec
	outcome *OutcomeResponse
	answers []Answer
	timer   *time.Timer // pending phase-deadline action, nil when disarmed
	span    *obs.ActiveSpan
	done    bool
	// quotaRelease returns the tenant's runs-in-flight quota slot; nil
	// once released (or when no quota is armed).
	quotaRelease func()
}

// Server exposes a platform backend over HTTP. It adds the answer-routing
// layer (workers submit answers, the requester fetches them for scoring)
// that the core platform leaves to the deployment, plus the run-deadline
// watchdog that keeps a season moving when workers or the requester crash
// mid-run.
//
// Runs are addressed as /v1/runs/{id}/...; the id "current" is a
// deprecated alias for the most recently opened run that is still in
// flight, kept so single-run clients work unchanged. A Server drives
// either a single-run Backend (NewServer) or a MultiRunBackend
// (NewMultiServer, e.g. a melody.RunScheduler) — on the latter, runs from
// different tenants move through bidding→scoring→finish concurrently.
//
// Locking: Server.mu guards only the run registry (runs map, current
// pointer, counters) and is never held across a backend call; each
// runState.mu guards that run's phase/outcome/answers. Lock order:
// Server.mu and runState.mu are never nested except registry-then-run for
// reads; backend-internal locks are below both.
type Server struct {
	platform Backend         // single-run backend; nil in multi-run mode
	batch    BatchBackend    // non-nil when platform supports batch submission
	multi    MultiRunBackend // multi-run backend; nil in single-run mode
	log      *slog.Logger

	// Per-endpoint metric families and the span tracer; nil (no-op) unless
	// WithMetrics / WithTracer were given.
	metrics *obs.Registry
	reqs    *obs.CounterVec
	reqErrs *obs.CounterVec
	reqSecs *obs.HistogramVec
	tracer  *obs.Tracer

	// bidDeadline and scoreDeadline bound how long a run may sit in the
	// bidding and scoring phases; zero disables the watchdog.
	bidDeadline   time.Duration
	scoreDeadline time.Duration

	// admission, when non-nil, gates the sheddable ingest endpoints
	// (register/bid/answer) behind bounded queues and per-tenant rate
	// limits, and bounds per-tenant runs in flight; the control plane and
	// scoring are never shed, so an opened run always settles. See
	// AdmissionConfig.
	admission *admission

	mu        sync.RWMutex
	runs      map[string]*runState // by run ID, in-flight and recently done
	order     []string             // in-flight run IDs in open order
	doneOrder []string             // finished run IDs, for bounded retention
	current   *runState            // most recently opened in-flight run
	lastRun   int                  // 1-based index of the last opened run

	// replSrc, when non-nil, exposes the storage engine's durable files on
	// the /v1/replication endpoints; replMu guards the ack positions.
	replSrc  ReplicationSource
	replMu   sync.Mutex
	replicas map[string]ReplicaState
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithDeadlines arms the run watchdog: a run still bidding after bid
// elapses is closed with the bids that arrived, and a run still scoring
// after score elapses is finished with the scores that arrived — absent
// winners degrade into the estimator's missing-observation path instead of
// wedging the season. Zero disables either deadline.
func WithDeadlines(bid, score time.Duration) ServerOption {
	return func(s *Server) { s.bidDeadline, s.scoreDeadline = bid, score }
}

// WithMetrics instruments every endpoint with request, error and latency
// families labelled by endpoint name.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithTracer records run-phase spans ("run.bidding" from open to close,
// "run.scoring" from close to finish).
func WithTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// newServer builds the common server shell and binds instruments.
func newServer(logger *slog.Logger, opts ...ServerOption) *Server {
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &Server{log: logger, runs: make(map[string]*runState)}
	for _, opt := range opts {
		opt(s)
	}
	s.reqs = s.metrics.CounterVec(obs.MetricHTTPRequestsTotal, "HTTP requests served, by endpoint.", "endpoint")
	s.reqErrs = s.metrics.CounterVec(obs.MetricHTTPErrorsTotal, "HTTP requests answered with a non-2xx status, by endpoint.", "endpoint")
	s.reqSecs = s.metrics.HistogramVec(obs.MetricHTTPRequestSeconds, "HTTP request handling time, by endpoint.", "endpoint", obs.TimeBuckets())
	if s.admission != nil {
		s.admission.instrument(s.metrics)
	}
	return s
}

// resumeRun installs a runState for a run the backend reports as still in
// flight (relevant after a WAL crash recovery), restoring its phase —
// with its outcome — and re-arming the matching deadline.
func (s *Server) resumeRun(id, tenant string, num int, outcome *melody.Outcome) {
	rs := &runState{id: id, tenant: tenant, num: num, phase: PhaseBidding}
	rs.mu.Lock()
	if outcome != nil {
		rs.phase = PhaseScoring
		resp := toOutcomeResponse(outcome)
		rs.outcome = &resp
		s.scheduleRunLocked(rs, s.scoreDeadline, s.deadlineFinish)
		s.startRunSpanLocked(rs, "run.scoring")
		s.log.Info("resumed run in scoring phase", "run", id)
	} else {
		s.scheduleRunLocked(rs, s.bidDeadline, s.deadlineClose)
		s.startRunSpanLocked(rs, "run.bidding")
		s.log.Info("resumed run in bidding phase", "run", id)
	}
	rs.mu.Unlock()
	s.runs[id] = rs
	s.order = append(s.order, id)
	s.current = rs
}

// NewServer wraps a single-run platform backend in the HTTP API. logger
// may be nil to disable request logging. The server resumes mid-run state
// from the backend: an open run restores the bidding or scoring phase —
// with its outcome — rather than idling forever.
func NewServer(p Backend, logger *slog.Logger, opts ...ServerOption) (*Server, error) {
	if p == nil {
		return nil, errors.New("platform: nil platform")
	}
	s := newServer(logger, opts...)
	s.platform = p
	if bb, ok := p.(BatchBackend); ok {
		s.batch = bb
	}
	st := p.State()
	s.lastRun = st.CompletedRuns
	if st.Open {
		num := st.CompletedRuns + 1
		s.lastRun = num
		s.resumeRun(fmt.Sprintf("r%d", num), "", num, st.Outcome)
	}
	return s, nil
}

// NewMultiServer wraps a multi-run backend (a melody.RunScheduler or its
// WAL-backed variant) in the same HTTP API, with concurrent per-run state
// machines: every run the backend reports open is resumed with its phase
// and deadline.
func NewMultiServer(m MultiRunBackend, logger *slog.Logger, opts ...ServerOption) (*Server, error) {
	if m == nil {
		return nil, errors.New("platform: nil backend")
	}
	s := newServer(logger, opts...)
	s.multi = m
	for _, info := range m.OpenRuns() {
		s.lastRun++
		s.resumeRun(info.ID, info.Tenant, s.lastRun, info.Outcome)
	}
	return s, nil
}

// scheduleRunLocked re-arms a run's phase-deadline timer; callers hold
// rs.mu. A non-positive deadline just disarms any pending action.
func (s *Server) scheduleRunLocked(rs *runState, d time.Duration, fire func(*runState)) {
	if rs.timer != nil {
		rs.timer.Stop()
		rs.timer = nil
	}
	if d <= 0 {
		return
	}
	rs.timer = time.AfterFunc(d, func() { fire(rs) })
}

// startRunSpanLocked ends a run's active phase span and opens a new one.
// Callers hold rs.mu.
func (s *Server) startRunSpanLocked(rs *runState, name string) {
	rs.span.End()
	rs.span = s.tracer.Start(name)
	rs.span.SetRun(rs.num)
}

// deadlineClose fires when a run sat in bidding past the deadline.
func (s *Server) deadlineClose(rs *runState) {
	rs.mu.Lock()
	stale := rs.done || rs.phase != PhaseBidding
	rs.mu.Unlock()
	if stale {
		return
	}
	s.log.Info("bidding deadline reached, closing auction", "run", rs.id)
	if _, err := s.closeRun(context.Background(), rs); err != nil {
		s.log.Warn("deadline close failed", "run", rs.id, "err", err)
	}
}

// deadlineFinish fires when a run sat in scoring past the deadline. The
// run finishes with whatever scores arrived; winners that never answered
// are observed as missing (empty score sets), so a crashed worker degrades
// the quality estimate instead of blocking the season.
func (s *Server) deadlineFinish(rs *runState) {
	rs.mu.Lock()
	stale := rs.done || rs.phase != PhaseScoring
	rs.mu.Unlock()
	if stale {
		return
	}
	s.log.Info("scoring deadline reached, finishing with collected scores", "run", rs.id)
	if err := s.finishRun(context.Background(), rs); err != nil {
		s.log.Warn("deadline finish failed", "run", rs.id, "err", err)
	}
}

// Handler returns the HTTP handler with all routes mounted. When the server
// has metrics, every endpoint is wrapped with request/error counters and a
// latency histogram labelled by a stable endpoint name; without metrics the
// handlers are mounted bare, so the disabled path adds nothing.
//
// Run-scoped routes take /v1/runs/{run}/..., where {run} is the run ID
// from OpenRunResponse or the deprecated alias "current" (the most
// recently opened in-flight run).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /v1/status", "status", s.handleStatus)
	s.route(mux, "POST /v1/workers", "register_worker", s.gate("register_worker", s.handleRegisterWorker))
	s.route(mux, "GET /v1/workers", "list_workers", s.handleListWorkers)
	s.route(mux, "GET /v1/workers/{id}/quality", "quality", s.handleQuality)
	s.route(mux, "GET /v1/workers/{id}/forecast", "forecast", s.handleForecast)
	s.route(mux, "GET /v1/runs", "list_runs", s.handleListRuns)
	s.route(mux, "POST /v1/runs", "open_run", s.handleOpenRun)
	s.route(mux, "POST /v1/runs/{run}/bids", "bid", s.gate("bid", s.handleBid))
	s.route(mux, "POST /v1/runs/{run}/bids/batch", "bid_batch", s.gate("bid_batch", s.handleBidBatch))
	s.route(mux, "POST /v1/runs/{run}/close", "close", s.handleClose)
	s.route(mux, "GET /v1/runs/{run}/outcome", "outcome", s.handleOutcome)
	s.route(mux, "POST /v1/runs/{run}/answers", "answer", s.gate("answer", s.handleAnswer))
	s.route(mux, "GET /v1/runs/{run}/answers", "list_answers", s.handleListAnswers)
	s.route(mux, "POST /v1/runs/{run}/scores", "score", s.handleScore)
	s.route(mux, "POST /v1/runs/{run}/scores/batch", "score_batch", s.handleScoreBatch)
	s.route(mux, "POST /v1/runs/{run}/finish", "finish", s.handleFinish)
	s.route(mux, "GET /v1/tenants", "list_tenants", s.handleListTenants)
	s.route(mux, "GET /v1/tenants/{id}", "get_tenant", s.handleGetTenant)
	s.route(mux, "PUT /v1/tenants/{id}", "put_tenant", s.handlePutTenant)
	s.route(mux, "PUT /v1/registry", "resize_registry", s.handleResizeRegistry)
	if s.replSrc != nil {
		s.mountReplication(mux)
	}
	return mux
}

// route mounts one endpoint, instrumenting it when metrics are enabled.
func (s *Server) route(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	if s.metrics == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	reqs := s.reqs.With(endpoint)
	reqErrs := s.reqErrs.With(endpoint)
	secs := s.reqSecs.With(endpoint)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(&sw, r)
		secs.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			reqErrs.Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// writeJSON writes v with the given status, staging the encoding through a
// pooled buffer so steady-state responses reuse memory across requests.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, "encode failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// errorStatus maps a platform error onto its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, melody.ErrRunOpen),
		errors.Is(err, melody.ErrAuctionClosed),
		errors.Is(err, melody.ErrAuctionOpen),
		errors.Is(err, melody.ErrNoRunOpen):
		return http.StatusConflict
	case errors.Is(err, melody.ErrUnknownWorker),
		errors.Is(err, melody.ErrNotAssigned),
		errors.Is(err, melody.ErrUnknownRun),
		errors.Is(err, melody.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, melody.ErrNoForecast):
		return http.StatusNotImplemented
	case errors.Is(err, melody.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, melody.ErrQuotaExceeded):
		// Permanent until the policy changes, so not 429: clients must not
		// blindly retry a refused open.
		return http.StatusForbidden
	case errors.Is(err, melody.ErrTenantMismatch):
		return http.StatusBadRequest
	}
	return http.StatusBadRequest
}

// writeError maps platform errors onto HTTP statuses, attaching the wire
// error code so clients can recover the melody sentinel with errors.Is.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errorStatus(err), ErrorResponse{Error: err.Error(), Code: errorCode(err)})
}

// decodeBody decodes a JSON body, rejecting unknown fields.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("platform: invalid request body: %w", err)
	}
	return nil
}

// completedRuns reports the backend's finished-run count.
func (s *Server) completedRuns() int {
	if s.multi != nil {
		return s.multi.CompletedRuns()
	}
	return s.platform.Run()
}

// backendWorkers lists the backend's registered workers.
func (s *Server) backendWorkers() []string {
	if s.multi != nil {
		return s.multi.Workers()
	}
	return s.platform.Workers()
}

// lookupRun resolves a run path segment to its state. "current" (and the
// empty segment) is the deprecated single-run alias for the most recently
// opened in-flight run.
func (s *Server) lookupRun(name string) (*runState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" || name == "current" {
		if s.current == nil {
			return nil, melody.ErrNoRunOpen
		}
		return s.current, nil
	}
	if rs := s.runs[name]; rs != nil {
		return rs, nil
	}
	return nil, fmt.Errorf("%w: %s", melody.ErrUnknownRun, name)
}

// resolveRun resolves the {run} path value of a request.
func (s *Server) resolveRun(r *http.Request) (*runState, error) {
	return s.lookupRun(r.PathValue("run"))
}

// isDone reports whether the run has finished.
func (rs *runState) isDone() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.done
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	cur := s.current
	open := len(s.order)
	s.mu.RUnlock()
	phase := PhaseIdle
	run := 0
	if cur != nil {
		cur.mu.Lock()
		if !cur.done {
			phase = cur.phase
			run = cur.num
		}
		cur.mu.Unlock()
	}
	if phase == PhaseIdle {
		run = s.completedRuns()
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Run:      run,
		Phase:    phase,
		Workers:  len(s.backendWorkers()),
		OpenRuns: open,
	})
}

func (s *Server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	states := make([]*runState, 0, len(s.order))
	for _, id := range s.order {
		if rs := s.runs[id]; rs != nil {
			states = append(states, rs)
		}
	}
	s.mu.RUnlock()
	resp := RunsResponse{Runs: make([]RunStatus, 0, len(states))}
	for _, rs := range states {
		rs.mu.Lock()
		if !rs.done {
			resp.Runs = append(resp.Runs, RunStatus{RunID: rs.id, Tenant: rs.tenant, Phase: rs.phase})
		}
		rs.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req RegisterWorkerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var err error
	if s.multi != nil {
		err = s.multi.RegisterWorker(r.Context(), req.WorkerID)
	} else {
		err = s.platform.RegisterWorker(r.Context(), req.WorkerID)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	s.log.Debug("registered worker", "worker", req.WorkerID)
	writeJSON(w, http.StatusCreated, struct{}{})
}

func (s *Server) handleListWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, WorkersResponse{Workers: s.backendWorkers()})
}

// requestTenant extracts the caller's tenant for tenant-scoped reads: the
// ?tenant= query parameter, else the admission tenant header.
func requestTenant(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return r.Header.Get(TenantHeader)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var q float64
	var err error
	if s.multi != nil {
		q, err = s.multi.Quality(requestTenant(r), id)
	} else {
		q, err = s.platform.Quality(id)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, QualityResponse{WorkerID: id, Quality: q})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	steps := 1
	if raw := r.URL.Query().Get("steps"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid steps parameter"})
			return
		}
		steps = v
	}
	var f melody.QualityForecast
	var err error
	if s.multi != nil {
		f, err = s.multi.Forecast(requestTenant(r), id, steps)
	} else {
		f, err = s.platform.Forecast(id, steps)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	lo, hi, err := f.Interval(0.95)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ForecastResponse{
		WorkerID: id, Steps: f.Steps, Mean: f.Mean, Variance: f.Var, Lo95: lo, Hi95: hi,
	})
}

// tasksEqual reports whether two task lists are identical.
func tasksEqual(a, b []melody.Task) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *Server) handleOpenRun(w http.ResponseWriter, r *http.Request) {
	var req OpenRunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	tasks := make([]melody.Task, len(req.Tasks))
	for i, t := range req.Tasks {
		tasks[i] = melody.Task{ID: t.ID, Threshold: t.Threshold}
	}
	// Tenant-identity precedence: header and body may each name the
	// tenant, but when both do they must agree — rejecting the conflict
	// outright beats one silently winning and a run (or an admission
	// quota slot) landing on the wrong tenant.
	tenant := req.Tenant
	if header := r.Header.Get(TenantHeader); header != "" {
		if tenant != "" && tenant != header {
			writeError(w, fmt.Errorf("%w: header %q vs body %q", melody.ErrTenantMismatch, header, req.Tenant))
			return
		}
		tenant = header
	}

	// Replay fast path: an explicit run ID the server already knows is an
	// idempotency key. A finished run with the same spec acknowledges
	// without touching the backend; a different spec is a conflict.
	if req.ID != "" {
		s.mu.RLock()
		rs := s.runs[req.ID]
		s.mu.RUnlock()
		if rs != nil {
			rs.mu.Lock()
			mismatch := rs.spec && (rs.budget != req.Budget || !tasksEqual(rs.tasks, tasks))
			done := rs.done
			rs.mu.Unlock()
			if mismatch {
				writeError(w, fmt.Errorf("%w: run %q already opened with a different spec", melody.ErrRunOpen, req.ID))
				return
			}
			if done {
				writeJSON(w, http.StatusCreated, OpenRunResponse{RunID: req.ID})
				return
			}
			// Still in flight: fall through to the backend's idempotent open.
		}
	}

	// Claim a runs-in-flight quota slot before the backend sees the open,
	// so a shed open has no side effects; the claim is returned on replay
	// detection, open failure, and run finish.
	release := func() {}
	if s.admission != nil {
		rel, ok := s.admission.acquireRun(tenant)
		if !ok {
			writeShed(w, s.admission.cfg.RetryAfter)
			return
		}
		release = rel
	}

	var err error
	if s.multi != nil {
		switch {
		case req.ID == "":
			err = fmt.Errorf("platform: open run needs an id on a multi-run backend")
		case tenant == "":
			err = fmt.Errorf("platform: open run needs a tenant on a multi-run backend")
		default:
			err = s.multi.OpenRun(r.Context(), req.ID, tenant, tasks, req.Budget)
		}
	} else {
		err = s.platform.OpenRun(r.Context(), tasks, req.Budget)
	}
	if err != nil {
		release()
		writeError(w, err)
		return
	}

	id := req.ID
	num := 0
	if s.multi == nil {
		num = s.platform.Run() + 1
		if id == "" {
			id = fmt.Sprintf("r%d", num)
		}
	} else if info, ierr := s.multi.Run(id); ierr == nil && info.Finished {
		// The backend replayed an open for a run it already completed but
		// the server no longer tracks; acknowledge without resurrecting it.
		release()
		writeJSON(w, http.StatusCreated, OpenRunResponse{RunID: id})
		return
	}

	s.mu.Lock()
	if existing := s.runs[id]; existing != nil && !existing.isDoneRegistryLocked() {
		// Idempotent replay of a run already in flight: nothing to reset.
		s.mu.Unlock()
		release()
		writeJSON(w, http.StatusCreated, OpenRunResponse{RunID: id})
		return
	}
	rs := &runState{
		id: id, tenant: tenant, num: num, phase: PhaseBidding,
		tasks: tasks, budget: req.Budget, spec: true, quotaRelease: release,
	}
	if s.multi == nil {
		s.lastRun = num
	} else {
		s.lastRun++
		rs.num = s.lastRun
	}
	s.runs[id] = rs
	s.order = append(s.order, id)
	s.current = rs
	s.mu.Unlock()

	rs.mu.Lock()
	s.scheduleRunLocked(rs, s.bidDeadline, s.deadlineClose)
	s.startRunSpanLocked(rs, "run.bidding")
	rs.mu.Unlock()
	s.log.Info("run opened", "run", id, "tenant", tenant, "tasks", len(tasks), "budget", req.Budget)
	writeJSON(w, http.StatusCreated, OpenRunResponse{RunID: id})
}

// isDoneRegistryLocked is isDone for callers already holding Server.mu;
// taking rs.mu under the registry lock follows the documented lock order.
func (rs *runState) isDoneRegistryLocked() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.done
}

// errsOf builds a BatchResult failing every one of n items with err.
func errsOf(n int, err error) melody.BatchResult {
	errs := make([]error, n)
	for i := range errs {
		errs[i] = err
	}
	return melody.NewBatchResult(errs)
}

func (s *Server) handleBid(w http.ResponseWriter, r *http.Request) {
	var req BidRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	rs, err := s.resolveRun(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if rs.isDone() {
		writeError(w, fmt.Errorf("%w: run %s finished", melody.ErrNoRunOpen, rs.id))
		return
	}
	bid := melody.Bid{Cost: req.Cost, Frequency: req.Frequency}
	if s.multi != nil {
		err = s.multi.SubmitBid(r.Context(), rs.id, req.WorkerID, bid)
	} else {
		err = s.platform.SubmitBid(r.Context(), req.WorkerID, bid)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// batchResults converts a backend BatchResult into wire results.
func batchResults(res melody.BatchResult) []BatchItemResult {
	results := make([]BatchItemResult, res.Len())
	for i := range results {
		err := res.ErrAt(i)
		if err == nil {
			results[i] = BatchItemResult{OK: true}
			continue
		}
		results[i] = BatchItemResult{
			Status: errorStatus(err), Error: err.Error(), Code: errorCode(err),
		}
	}
	return results
}

// checkBatchSize rejects empty and oversized batches before any item is
// applied, so a malformed batch is all-or-nothing.
func checkBatchSize(w http.ResponseWriter, n int) bool {
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: empty batch"})
		return false
	}
	if n > MaxBatchItems {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("platform: batch of %d items exceeds limit %d", n, MaxBatchItems),
		})
		return false
	}
	return true
}

func (s *Server) handleBidBatch(w http.ResponseWriter, r *http.Request) {
	var req BidBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !checkBatchSize(w, len(req.Bids)) {
		return
	}
	bids := make([]melody.WorkerBid, len(req.Bids))
	for i, b := range req.Bids {
		bids[i] = melody.WorkerBid{
			WorkerID: b.WorkerID,
			Bid:      melody.Bid{Cost: b.Cost, Frequency: b.Frequency},
		}
	}
	var res melody.BatchResult
	switch rs, err := s.resolveRun(r); {
	case err != nil:
		res = errsOf(len(bids), err)
	case rs.isDone():
		res = errsOf(len(bids), fmt.Errorf("%w: run %s finished", melody.ErrNoRunOpen, rs.id))
	case s.multi != nil:
		res = s.multi.SubmitBids(r.Context(), rs.id, bids)
	case s.batch != nil:
		res = s.batch.SubmitBids(r.Context(), bids)
	default:
		errs := make([]error, len(bids))
		for i, b := range bids {
			errs[i] = s.platform.SubmitBid(r.Context(), b.WorkerID, b.Bid)
		}
		res = melody.NewBatchResult(errs)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: batchResults(res)})
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	var req ScoreBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !checkBatchSize(w, len(req.Scores)) {
		return
	}
	scores := make([]melody.TaskScore, len(req.Scores))
	for i, sc := range req.Scores {
		scores[i] = melody.TaskScore{WorkerID: sc.WorkerID, TaskID: sc.TaskID, Score: sc.Score}
	}
	var res melody.BatchResult
	switch rs, err := s.resolveRun(r); {
	case err != nil:
		res = errsOf(len(scores), err)
	case rs.isDone():
		res = errsOf(len(scores), fmt.Errorf("%w: run %s finished", melody.ErrNoRunOpen, rs.id))
	case s.multi != nil:
		res = s.multi.SubmitScores(r.Context(), rs.id, scores)
	case s.batch != nil:
		res = s.batch.SubmitScores(r.Context(), scores)
	default:
		errs := make([]error, len(scores))
		for i, sc := range scores {
			errs[i] = s.platform.SubmitScore(r.Context(), sc.WorkerID, sc.TaskID, sc.Score)
		}
		res = melody.NewBatchResult(errs)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: batchResults(res)})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	rs, err := s.resolveRun(r)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.closeRun(r.Context(), rs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// closeRun is the close path shared by the HTTP handler and the
// bidding-deadline watchdog. Closing an already-closed run replays the
// recorded outcome (the backend's close is idempotent) without restarting
// the scoring deadline — even after the run finished, so late retries
// stay safe.
func (s *Server) closeRun(ctx context.Context, rs *runState) (OutcomeResponse, error) {
	rs.mu.Lock()
	if rs.outcome != nil {
		resp := *rs.outcome
		rs.mu.Unlock()
		return resp, nil
	}
	if rs.done {
		rs.mu.Unlock()
		return OutcomeResponse{}, fmt.Errorf("%w: run %s finished", melody.ErrNoRunOpen, rs.id)
	}
	rs.mu.Unlock()

	var out *melody.Outcome
	var err error
	if s.multi != nil {
		out, err = s.multi.CloseAuction(ctx, rs.id)
	} else {
		out, err = s.platform.CloseAuction(ctx)
	}
	if err != nil {
		return OutcomeResponse{}, err
	}
	resp := toOutcomeResponse(out)
	rs.mu.Lock()
	if rs.outcome == nil {
		rs.outcome = &resp
		rs.phase = PhaseScoring
		s.scheduleRunLocked(rs, s.scoreDeadline, s.deadlineFinish)
		s.startRunSpanLocked(rs, "run.scoring")
	}
	resp = *rs.outcome
	rs.mu.Unlock()
	s.log.Info("auction closed", "run", rs.id,
		"selected_tasks", len(resp.SelectedTasks), "payment", resp.TotalPayment)
	return resp, nil
}

func (s *Server) handleOutcome(w http.ResponseWriter, r *http.Request) {
	rs, err := s.resolveRun(r)
	if err != nil {
		if errors.Is(err, melody.ErrNoRunOpen) {
			err = melody.ErrAuctionOpen // legacy "current" semantics when idle
		}
		writeError(w, err)
		return
	}
	rs.mu.Lock()
	out := rs.outcome
	rs.mu.Unlock()
	if out == nil {
		writeError(w, melody.ErrAuctionOpen)
		return
	}
	writeJSON(w, http.StatusOK, *out)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	rs, err := s.resolveRun(r)
	if err != nil {
		if errors.Is(err, melody.ErrNoRunOpen) {
			err = melody.ErrAuctionOpen // legacy "current" semantics when idle
		}
		writeError(w, err)
		return
	}
	// Phase, assignment and the store mutation all sit under the run's own
	// lock: answer traffic serializes per run, never across runs.
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.done || rs.phase != PhaseScoring {
		writeError(w, melody.ErrAuctionOpen)
		return
	}
	if rs.outcome == nil || !rs.assignedLocked(req.WorkerID, req.TaskID) {
		writeError(w, fmt.Errorf("%w: worker %s task %s", melody.ErrNotAssigned, req.WorkerID, req.TaskID))
		return
	}
	// Idempotent on (worker, task, run): a duplicate delivery replaces the
	// recorded answer instead of duplicating it, so the requester never
	// sees — and never double-scores — the same assignment twice.
	for i := range rs.answers {
		if rs.answers[i].WorkerID == req.WorkerID && rs.answers[i].TaskID == req.TaskID {
			rs.answers[i].Payload = req.Payload
			writeJSON(w, http.StatusAccepted, struct{}{})
			return
		}
	}
	rs.answers = append(rs.answers, Answer{
		WorkerID: req.WorkerID, TaskID: req.TaskID, Payload: req.Payload,
	})
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// assignedLocked reports whether (worker, task) is in the run's outcome.
// Callers hold rs.mu.
func (rs *runState) assignedLocked(workerID, taskID string) bool {
	for _, a := range rs.outcome.Assignments {
		if a.WorkerID == workerID && a.TaskID == taskID {
			return true
		}
	}
	return false
}

func (s *Server) handleListAnswers(w http.ResponseWriter, r *http.Request) {
	rs, err := s.resolveRun(r)
	if err != nil {
		if errors.Is(err, melody.ErrNoRunOpen) {
			// Legacy "current" semantics: no run means no answers, not an
			// error — the requester polls this between runs.
			writeJSON(w, http.StatusOK, AnswersResponse{})
			return
		}
		writeError(w, err)
		return
	}
	rs.mu.Lock()
	answers := append([]Answer(nil), rs.answers...)
	rs.mu.Unlock()
	writeJSON(w, http.StatusOK, AnswersResponse{Answers: answers})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	rs, err := s.resolveRun(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if rs.isDone() {
		writeError(w, fmt.Errorf("%w: run %s finished", melody.ErrNoRunOpen, rs.id))
		return
	}
	if s.multi != nil {
		err = s.multi.SubmitScore(r.Context(), rs.id, req.WorkerID, req.TaskID, req.Score)
	} else {
		err = s.platform.SubmitScore(r.Context(), req.WorkerID, req.TaskID, req.Score)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	rs, err := s.resolveRun(r)
	if err != nil {
		// A retried finish whose first delivery landed may find no current
		// run at all (single-run alias after the server completed the run,
		// possibly across a restart); report the replay as a no-op success.
		if s.multi == nil && errors.Is(err, melody.ErrNoRunOpen) {
			s.mu.RLock()
			last := s.lastRun
			s.mu.RUnlock()
			if last > 0 && s.platform.Run() >= last {
				writeJSON(w, http.StatusOK, struct{}{})
				return
			}
		}
		writeError(w, err)
		return
	}
	if err := s.finishRun(r.Context(), rs); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// requireMulti guards the tenant control plane: the single-run platform
// has no tenants, so the endpoints exist only on multi-run servers.
func (s *Server) requireMulti(w http.ResponseWriter) bool {
	if s.multi == nil {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{
			Error: "platform: tenant control plane requires the multi-run scheduler (-multi)",
		})
		return false
	}
	return true
}

func (s *Server) handleListTenants(w http.ResponseWriter, _ *http.Request) {
	if !s.requireMulti(w) {
		return
	}
	statuses := s.multi.TenantStatuses()
	resp := TenantsResponse{Tenants: make([]TenantStatusResponse, len(statuses))}
	for i, st := range statuses {
		resp.Tenants[i] = toTenantStatusResponse(st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	if !s.requireMulti(w) {
		return
	}
	st, err := s.multi.TenantStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toTenantStatusResponse(st))
}

func (s *Server) handlePutTenant(w http.ResponseWriter, r *http.Request) {
	if !s.requireMulti(w) {
		return
	}
	id := r.PathValue("id")
	// The path names the tenant; a disagreeing X-Melody-Tenant header is
	// the same routing bug the open path rejects.
	if header := r.Header.Get(TenantHeader); header != "" && header != id {
		writeError(w, fmt.Errorf("%w: header %q vs path %q", melody.ErrTenantMismatch, header, id))
		return
	}
	var req TenantPolicyRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.multi.SetTenantPolicy(r.Context(), id, req.Policy.Policy()); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.multi.TenantStatus(id)
	if err != nil {
		writeError(w, err)
		return
	}
	s.log.Info("tenant policy set", "tenant", id,
		"budgetQuota", st.Policy.BudgetQuota, "epochBudgetQuota", st.Policy.EpochBudgetQuota,
		"maxRuns", st.Policy.MaxRuns, "weight", st.Weight)
	writeJSON(w, http.StatusOK, toTenantStatusResponse(st))
}

func (s *Server) handleResizeRegistry(w http.ResponseWriter, r *http.Request) {
	if !s.requireMulti(w) {
		return
	}
	var req RegistryResizeRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.multi.ResizeRegistry(r.Context(), req.Shards)
	if err != nil {
		writeError(w, err)
		return
	}
	s.log.Info("registry resized", "shards", info.Shards, "workers", info.Workers, "moved", info.Moved)
	writeJSON(w, http.StatusOK, RegistryResponse{Shards: info.Shards, Workers: info.Workers, Moved: info.Moved})
}

// finishRun is the finish path shared by the HTTP handler and the
// scoring-deadline watchdog. Winners without scores degrade into the
// estimator's missing-observation path inside the backend's FinishRun.
// Finishing an already-finished run is a no-op success.
func (s *Server) finishRun(ctx context.Context, rs *runState) error {
	if rs.isDone() {
		return nil // retried finish
	}
	var err error
	if s.multi != nil {
		err = s.multi.FinishRun(ctx, rs.id)
	} else {
		err = s.platform.FinishRun(ctx)
	}
	if err != nil {
		// The deadline watchdog (or a concurrent retry) may have finished
		// the run between our check and the backend call.
		if rs.isDone() && errors.Is(err, melody.ErrNoRunOpen) {
			return nil
		}
		return err
	}
	s.completeRun(rs)
	s.log.Info("run finished", "run", rs.id, "completed_runs", s.completedRuns())
	return nil
}

// completeRun transitions a run to done: the watchdog disarms, the phase
// span ends, the answer store is released, the tenant's runs-in-flight
// quota slot returns, and the run leaves the in-flight registry (retained
// for idempotent replays until evicted). The recorded outcome is kept so
// late close retries still replay it.
func (s *Server) completeRun(rs *runState) {
	rs.mu.Lock()
	if rs.done {
		rs.mu.Unlock()
		return
	}
	rs.done = true
	rs.phase = PhaseIdle
	rs.answers = nil
	if rs.timer != nil {
		rs.timer.Stop()
		rs.timer = nil
	}
	rs.span.End()
	rs.span = nil
	release := rs.quotaRelease
	rs.quotaRelease = nil
	rs.mu.Unlock()
	if release != nil {
		release()
	}

	s.mu.Lock()
	if s.current == rs {
		s.current = nil
	}
	for i, id := range s.order {
		if id == rs.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.doneOrder = append(s.doneOrder, rs.id)
	for len(s.doneOrder) > maxDoneRuns {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.runs, evict)
	}
	s.mu.Unlock()
}
