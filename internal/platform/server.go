package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"melody"
	"melody/internal/obs"
)

// Backend is the platform surface the HTTP server drives. It is satisfied
// by *melody.Platform and by eventlog.PersistentPlatform (the write-ahead-
// logged variant used with -wal).
// Mutations take the request context first, so cancellation and deadlines
// reach the backend's durability waits; read-only queries are lock-scoped
// and context-free.
type Backend interface {
	RegisterWorker(ctx context.Context, workerID string) error
	OpenRun(ctx context.Context, tasks []melody.Task, budget float64) error
	SubmitBid(ctx context.Context, workerID string, bid melody.Bid) error
	CloseAuction(ctx context.Context) (*melody.Outcome, error)
	SubmitScore(ctx context.Context, workerID, taskID string, score float64) error
	FinishRun(ctx context.Context) error
	Workers() []string
	Run() int
	State() melody.RunState
	Quality(workerID string) (float64, error)
	Forecast(workerID string, steps int) (melody.QualityForecast, error)
}

var _ Backend = (*melody.Platform)(nil)

// BatchBackend is the optional batch extension of Backend: a whole slice of
// bids or scores applied under one lock acquisition (and, for the WAL
// backend, made durable by one group commit) with per-item errors. Both
// *melody.Platform and eventlog.PersistentPlatform implement it; the server
// detects it at construction and falls back to item-at-a-time submission
// against backends that don't.
type BatchBackend interface {
	SubmitBids(ctx context.Context, bids []melody.WorkerBid) melody.BatchResult
	SubmitScores(ctx context.Context, scores []melody.TaskScore) melody.BatchResult
}

var _ BatchBackend = (*melody.Platform)(nil)

// Server exposes a platform Backend over HTTP. It adds the answer-routing
// layer (workers submit answers, the requester fetches them for scoring)
// that the core platform leaves to the deployment, plus the run-deadline
// watchdog that keeps a season moving when workers or the requester crash
// mid-run.
//
// Locking: stateMu guards the run lifecycle (phase, run, outcome, timer)
// and ansMu guards the answer store, so answer traffic during scoring never
// contends with status polls or phase transitions. When both are needed,
// stateMu is acquired first.
type Server struct {
	platform Backend
	batch    BatchBackend // non-nil when platform supports batch submission
	log      *slog.Logger

	// Per-endpoint metric families and the span tracer; nil (no-op) unless
	// WithMetrics / WithTracer were given.
	metrics *obs.Registry
	reqs    *obs.CounterVec
	reqErrs *obs.CounterVec
	reqSecs *obs.HistogramVec
	tracer  *obs.Tracer
	// phaseSpan is the active run-phase span ("run.bidding" or
	// "run.scoring"); guarded by stateMu.
	phaseSpan *obs.ActiveSpan

	// bidDeadline and scoreDeadline bound how long a run may sit in the
	// bidding and scoring phases; zero disables the watchdog.
	bidDeadline   time.Duration
	scoreDeadline time.Duration

	// admission, when non-nil, gates the sheddable ingest endpoints
	// (register/bid/answer) behind bounded queues and per-tenant rate
	// limits; the control plane and scoring are never shed, so an opened
	// run always settles. See AdmissionConfig.
	admission *admission

	stateMu sync.RWMutex
	phase   Phase
	run     int // 1-based index of the run currently open (or last opened)
	outcome *OutcomeResponse
	timer   *time.Timer // pending phase-deadline action, nil when disarmed

	ansMu   sync.Mutex
	answers []Answer

	// replSrc, when non-nil, exposes the storage engine's durable files on
	// the /v1/replication endpoints; replMu guards the ack positions.
	replSrc  ReplicationSource
	replMu   sync.Mutex
	replicas map[string]ReplicaState
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithDeadlines arms the run watchdog: a run still bidding after bid
// elapses is closed with the bids that arrived, and a run still scoring
// after score elapses is finished with the scores that arrived — absent
// winners degrade into the estimator's missing-observation path instead of
// wedging the season. Zero disables either deadline.
func WithDeadlines(bid, score time.Duration) ServerOption {
	return func(s *Server) { s.bidDeadline, s.scoreDeadline = bid, score }
}

// WithMetrics instruments every endpoint with request, error and latency
// families labelled by endpoint name.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithTracer records run-phase spans ("run.bidding" from open to close,
// "run.scoring" from close to finish).
func WithTracer(tr *obs.Tracer) ServerOption {
	return func(s *Server) { s.tracer = tr }
}

// NewServer wraps a platform backend in an HTTP API. logger may be nil to
// disable request logging. The server resumes mid-run state from the
// backend (relevant after a WAL crash recovery): an open run restores the
// bidding or scoring phase — with its outcome — rather than idling forever.
func NewServer(p Backend, logger *slog.Logger, opts ...ServerOption) (*Server, error) {
	if p == nil {
		return nil, errors.New("platform: nil platform")
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &Server{platform: p, log: logger, phase: PhaseIdle}
	if bb, ok := p.(BatchBackend); ok {
		s.batch = bb
	}
	for _, opt := range opts {
		opt(s)
	}
	s.reqs = s.metrics.CounterVec(obs.MetricHTTPRequestsTotal, "HTTP requests served, by endpoint.", "endpoint")
	s.reqErrs = s.metrics.CounterVec(obs.MetricHTTPErrorsTotal, "HTTP requests answered with a non-2xx status, by endpoint.", "endpoint")
	s.reqSecs = s.metrics.HistogramVec(obs.MetricHTTPRequestSeconds, "HTTP request handling time, by endpoint.", "endpoint", obs.TimeBuckets())
	if s.admission != nil {
		s.admission.instrument(s.metrics)
	}
	st := p.State()
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.run = st.CompletedRuns
	if st.Open {
		s.run = st.CompletedRuns + 1
		if st.AuctionClosed {
			s.phase = PhaseScoring
			resp := toOutcomeResponse(st.Outcome)
			s.outcome = &resp
			s.scheduleLocked(s.scoreDeadline, s.run, s.deadlineFinish)
			s.startPhaseSpanLocked("run.scoring")
			s.log.Info("resumed run in scoring phase", "run", s.run)
		} else {
			s.phase = PhaseBidding
			s.scheduleLocked(s.bidDeadline, s.run, s.deadlineClose)
			s.startPhaseSpanLocked("run.bidding")
			s.log.Info("resumed run in bidding phase", "run", s.run)
		}
	}
	return s, nil
}

// scheduleLocked re-arms the phase-deadline timer; callers hold stateMu for
// writing. A non-positive deadline just disarms any pending action.
func (s *Server) scheduleLocked(d time.Duration, run int, fire func(run int)) {
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if d <= 0 {
		return
	}
	s.timer = time.AfterFunc(d, func() { fire(run) })
}

// startPhaseSpanLocked ends any active phase span and opens a new one for
// the current run. Callers hold stateMu for writing.
func (s *Server) startPhaseSpanLocked(name string) {
	s.phaseSpan.End()
	s.phaseSpan = s.tracer.Start(name)
	s.phaseSpan.SetRun(s.run)
}

// endPhaseSpanLocked closes the active phase span, if any. Callers hold
// stateMu for writing.
func (s *Server) endPhaseSpanLocked() {
	s.phaseSpan.End()
	s.phaseSpan = nil
}

// deadlineClose fires when a run sat in bidding past the deadline.
func (s *Server) deadlineClose(run int) {
	s.stateMu.RLock()
	stale := s.phase != PhaseBidding || s.run != run
	s.stateMu.RUnlock()
	if stale {
		return
	}
	s.log.Info("bidding deadline reached, closing auction", "run", run)
	if _, err := s.closeAuction(context.Background()); err != nil {
		s.log.Warn("deadline close failed", "run", run, "err", err)
	}
}

// deadlineFinish fires when a run sat in scoring past the deadline. The
// run finishes with whatever scores arrived; winners that never answered
// are observed as missing (empty score sets), so a crashed worker degrades
// the quality estimate instead of blocking the season.
func (s *Server) deadlineFinish(run int) {
	s.stateMu.RLock()
	stale := s.phase != PhaseScoring || s.run != run
	s.stateMu.RUnlock()
	if stale {
		return
	}
	s.log.Info("scoring deadline reached, finishing with collected scores", "run", run)
	if err := s.finishRun(context.Background()); err != nil {
		s.log.Warn("deadline finish failed", "run", run, "err", err)
	}
}

// Handler returns the HTTP handler with all routes mounted. When the server
// has metrics, every endpoint is wrapped with request/error counters and a
// latency histogram labelled by a stable endpoint name; without metrics the
// handlers are mounted bare, so the disabled path adds nothing.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.route(mux, "GET /v1/status", "status", s.handleStatus)
	s.route(mux, "POST /v1/workers", "register_worker", s.gate("register_worker", s.handleRegisterWorker))
	s.route(mux, "GET /v1/workers", "list_workers", s.handleListWorkers)
	s.route(mux, "GET /v1/workers/{id}/quality", "quality", s.handleQuality)
	s.route(mux, "GET /v1/workers/{id}/forecast", "forecast", s.handleForecast)
	s.route(mux, "POST /v1/runs", "open_run", s.handleOpenRun)
	s.route(mux, "POST /v1/runs/current/bids", "bid", s.gate("bid", s.handleBid))
	s.route(mux, "POST /v1/runs/current/bids/batch", "bid_batch", s.gate("bid_batch", s.handleBidBatch))
	s.route(mux, "POST /v1/runs/current/close", "close", s.handleClose)
	s.route(mux, "GET /v1/runs/current/outcome", "outcome", s.handleOutcome)
	s.route(mux, "POST /v1/runs/current/answers", "answer", s.gate("answer", s.handleAnswer))
	s.route(mux, "GET /v1/runs/current/answers", "list_answers", s.handleListAnswers)
	s.route(mux, "POST /v1/runs/current/scores", "score", s.handleScore)
	s.route(mux, "POST /v1/runs/current/scores/batch", "score_batch", s.handleScoreBatch)
	s.route(mux, "POST /v1/runs/current/finish", "finish", s.handleFinish)
	if s.replSrc != nil {
		s.mountReplication(mux)
	}
	return mux
}

// route mounts one endpoint, instrumenting it when metrics are enabled.
func (s *Server) route(mux *http.ServeMux, pattern, endpoint string, h http.HandlerFunc) {
	if s.metrics == nil {
		mux.HandleFunc(pattern, h)
		return
	}
	reqs := s.reqs.With(endpoint)
	reqErrs := s.reqErrs.With(endpoint)
	secs := s.reqSecs.With(endpoint)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(&sw, r)
		secs.Observe(time.Since(start).Seconds())
		if sw.status >= 400 {
			reqErrs.Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// writeJSON writes v with the given status, staging the encoding through a
// pooled buffer so steady-state responses reuse memory across requests.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, "encode failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// errorStatus maps a platform error onto its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, melody.ErrRunOpen),
		errors.Is(err, melody.ErrAuctionClosed),
		errors.Is(err, melody.ErrAuctionOpen),
		errors.Is(err, melody.ErrNoRunOpen):
		return http.StatusConflict
	case errors.Is(err, melody.ErrUnknownWorker),
		errors.Is(err, melody.ErrNotAssigned):
		return http.StatusNotFound
	case errors.Is(err, melody.ErrNoForecast):
		return http.StatusNotImplemented
	case errors.Is(err, melody.ErrOverloaded):
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// writeError maps platform errors onto HTTP statuses, attaching the wire
// error code so clients can recover the melody sentinel with errors.Is.
func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errorStatus(err), ErrorResponse{Error: err.Error(), Code: errorCode(err)})
}

// decodeBody decodes a JSON body, rejecting unknown fields.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("platform: invalid request body: %w", err)
	}
	return nil
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.stateMu.RLock()
	phase := s.phase
	run := s.run
	s.stateMu.RUnlock()
	if phase == PhaseIdle {
		run = s.platform.Run()
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Run:     run,
		Phase:   phase,
		Workers: len(s.platform.Workers()),
	})
}

func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req RegisterWorkerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.platform.RegisterWorker(r.Context(), req.WorkerID); err != nil {
		writeError(w, err)
		return
	}
	s.log.Debug("registered worker", "worker", req.WorkerID)
	writeJSON(w, http.StatusCreated, struct{}{})
}

func (s *Server) handleListWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, WorkersResponse{Workers: s.platform.Workers()})
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q, err := s.platform.Quality(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, QualityResponse{WorkerID: id, Quality: q})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	steps := 1
	if raw := r.URL.Query().Get("steps"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid steps parameter"})
			return
		}
		steps = v
	}
	f, err := s.platform.Forecast(id, steps)
	if err != nil {
		writeError(w, err)
		return
	}
	lo, hi, err := f.Interval(0.95)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ForecastResponse{
		WorkerID: id, Steps: f.Steps, Mean: f.Mean, Variance: f.Var, Lo95: lo, Hi95: hi,
	})
}

func (s *Server) handleOpenRun(w http.ResponseWriter, r *http.Request) {
	var req OpenRunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	tasks := make([]melody.Task, len(req.Tasks))
	for i, t := range req.Tasks {
		tasks[i] = melody.Task{ID: t.ID, Threshold: t.Threshold}
	}
	if err := s.platform.OpenRun(r.Context(), tasks, req.Budget); err != nil {
		writeError(w, err)
		return
	}
	s.stateMu.Lock()
	run := s.platform.Run() + 1
	// An idempotent replay of the currently open run must not reset the
	// run's answers, outcome or deadline; only a genuinely new run does.
	if s.phase == PhaseIdle || s.run != run {
		s.run = run
		s.phase = PhaseBidding
		s.outcome = nil
		s.ansMu.Lock()
		s.answers = nil
		s.ansMu.Unlock()
		s.scheduleLocked(s.bidDeadline, run, s.deadlineClose)
		s.startPhaseSpanLocked("run.bidding")
		s.log.Info("run opened", "run", run, "tasks", len(tasks), "budget", req.Budget)
	}
	s.stateMu.Unlock()
	writeJSON(w, http.StatusCreated, struct{}{})
}

func (s *Server) handleBid(w http.ResponseWriter, r *http.Request) {
	var req BidRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	bid := melody.Bid{Cost: req.Cost, Frequency: req.Frequency}
	if err := s.platform.SubmitBid(r.Context(), req.WorkerID, bid); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// batchResults converts a backend BatchResult into wire results.
func batchResults(res melody.BatchResult) []BatchItemResult {
	results := make([]BatchItemResult, res.Len())
	for i := range results {
		err := res.ErrAt(i)
		if err == nil {
			results[i] = BatchItemResult{OK: true}
			continue
		}
		results[i] = BatchItemResult{
			Status: errorStatus(err), Error: err.Error(), Code: errorCode(err),
		}
	}
	return results
}

// checkBatchSize rejects empty and oversized batches before any item is
// applied, so a malformed batch is all-or-nothing.
func checkBatchSize(w http.ResponseWriter, n int) bool {
	if n == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "platform: empty batch"})
		return false
	}
	if n > MaxBatchItems {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("platform: batch of %d items exceeds limit %d", n, MaxBatchItems),
		})
		return false
	}
	return true
}

func (s *Server) handleBidBatch(w http.ResponseWriter, r *http.Request) {
	var req BidBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !checkBatchSize(w, len(req.Bids)) {
		return
	}
	bids := make([]melody.WorkerBid, len(req.Bids))
	for i, b := range req.Bids {
		bids[i] = melody.WorkerBid{
			WorkerID: b.WorkerID,
			Bid:      melody.Bid{Cost: b.Cost, Frequency: b.Frequency},
		}
	}
	var res melody.BatchResult
	if s.batch != nil {
		res = s.batch.SubmitBids(r.Context(), bids)
	} else {
		errs := make([]error, len(bids))
		for i, b := range bids {
			errs[i] = s.platform.SubmitBid(r.Context(), b.WorkerID, b.Bid)
		}
		res = melody.NewBatchResult(errs)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: batchResults(res)})
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	var req ScoreBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !checkBatchSize(w, len(req.Scores)) {
		return
	}
	scores := make([]melody.TaskScore, len(req.Scores))
	for i, sc := range req.Scores {
		scores[i] = melody.TaskScore{WorkerID: sc.WorkerID, TaskID: sc.TaskID, Score: sc.Score}
	}
	var res melody.BatchResult
	if s.batch != nil {
		res = s.batch.SubmitScores(r.Context(), scores)
	} else {
		errs := make([]error, len(scores))
		for i, sc := range scores {
			errs[i] = s.platform.SubmitScore(r.Context(), sc.WorkerID, sc.TaskID, sc.Score)
		}
		res = melody.NewBatchResult(errs)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: batchResults(res)})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	resp, err := s.closeAuction(r.Context())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// closeAuction is the close path shared by the HTTP handler and the
// bidding-deadline watchdog. Closing an already-closed run replays the
// recorded outcome (the platform's close is idempotent) without restarting
// the scoring deadline.
func (s *Server) closeAuction(ctx context.Context) (OutcomeResponse, error) {
	s.stateMu.RLock()
	if s.phase == PhaseScoring && s.outcome != nil {
		resp := *s.outcome
		s.stateMu.RUnlock()
		return resp, nil
	}
	s.stateMu.RUnlock()
	out, err := s.platform.CloseAuction(ctx)
	if err != nil {
		return OutcomeResponse{}, err
	}
	resp := toOutcomeResponse(out)
	s.stateMu.Lock()
	s.phase = PhaseScoring
	s.outcome = &resp
	s.scheduleLocked(s.scoreDeadline, s.run, s.deadlineFinish)
	s.startPhaseSpanLocked("run.scoring")
	s.stateMu.Unlock()
	s.log.Info("auction closed", "run", s.run,
		"selected_tasks", len(resp.SelectedTasks), "payment", resp.TotalPayment)
	return resp, nil
}

func (s *Server) handleOutcome(w http.ResponseWriter, _ *http.Request) {
	s.stateMu.RLock()
	out := s.outcome
	s.stateMu.RUnlock()
	if out == nil {
		writeError(w, melody.ErrAuctionOpen)
		return
	}
	writeJSON(w, http.StatusOK, *out)
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	// Phase and assignment are checked under the state read lock — answer
	// traffic never serializes against other answers at this stage — and the
	// store mutation happens under ansMu (acquired inside stateMu, matching
	// the lock order documented on Server).
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.phase != PhaseScoring {
		writeError(w, melody.ErrAuctionOpen)
		return
	}
	if s.outcome == nil || !s.assignedLocked(req.WorkerID, req.TaskID) {
		writeError(w, fmt.Errorf("%w: worker %s task %s", melody.ErrNotAssigned, req.WorkerID, req.TaskID))
		return
	}
	s.ansMu.Lock()
	defer s.ansMu.Unlock()
	// Idempotent on (worker, task, run): a duplicate delivery replaces the
	// recorded answer instead of duplicating it, so the requester never
	// sees — and never double-scores — the same assignment twice.
	for i := range s.answers {
		if s.answers[i].WorkerID == req.WorkerID && s.answers[i].TaskID == req.TaskID {
			s.answers[i].Payload = req.Payload
			writeJSON(w, http.StatusAccepted, struct{}{})
			return
		}
	}
	s.answers = append(s.answers, Answer{
		WorkerID: req.WorkerID, TaskID: req.TaskID, Payload: req.Payload,
	})
	writeJSON(w, http.StatusAccepted, struct{}{})
}

// assignedLocked reports whether (worker, task) is in the current outcome.
// Callers hold stateMu (read or write).
func (s *Server) assignedLocked(workerID, taskID string) bool {
	for _, a := range s.outcome.Assignments {
		if a.WorkerID == workerID && a.TaskID == taskID {
			return true
		}
	}
	return false
}

func (s *Server) handleListAnswers(w http.ResponseWriter, _ *http.Request) {
	s.ansMu.Lock()
	answers := append([]Answer(nil), s.answers...)
	s.ansMu.Unlock()
	writeJSON(w, http.StatusOK, AnswersResponse{Answers: answers})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.platform.SubmitScore(r.Context(), req.WorkerID, req.TaskID, req.Score); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct{}{})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	if err := s.finishRun(r.Context()); err != nil {
		// A retried finish whose first delivery landed sees ErrNoRunOpen
		// from the platform; when the server's state shows that run did
		// complete, report the replay as a no-op success.
		s.stateMu.RLock()
		replayed := errors.Is(err, melody.ErrNoRunOpen) &&
			s.phase == PhaseIdle && s.run > 0 && s.platform.Run() >= s.run
		s.stateMu.RUnlock()
		if !replayed {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// finishRun is the finish path shared by the HTTP handler and the
// scoring-deadline watchdog. Winners without scores degrade into the
// estimator's missing-observation path inside the platform's FinishRun.
func (s *Server) finishRun(ctx context.Context) error {
	if err := s.platform.FinishRun(ctx); err != nil {
		return err
	}
	s.stateMu.Lock()
	s.phase = PhaseIdle
	s.outcome = nil
	s.ansMu.Lock()
	s.answers = nil
	s.ansMu.Unlock()
	s.scheduleLocked(0, 0, nil)
	s.endPhaseSpanLocked()
	s.stateMu.Unlock()
	s.log.Info("run finished", "completed_runs", s.platform.Run())
	return nil
}
