package platform

// Admission-control tests: the concurrency gate and per-tenant rate
// limits, the 429 + Retry-After contract, control-plane exemption, the
// regression that a shed request never reaches the WAL or the ledger, and
// race-exercising concurrent-ingest paths (run under -race in make ci).

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"melody"
	"melody/internal/eventlog"
	"melody/internal/obs"
)

// noRetry is the policy the shed tests use so a 429 surfaces instead of
// being retried away.
var noRetry = RetryPolicy{MaxAttempts: 1}

// blockingBackend wraps a Backend and parks SubmitBid until released, so a
// test can pin the admission gate's in-flight slots deterministically.
type blockingBackend struct {
	Backend
	entered chan struct{} // one send per SubmitBid that starts
	release chan struct{} // closed to let them finish
}

func (b *blockingBackend) SubmitBid(ctx context.Context, workerID string, bid melody.Bid) error {
	b.entered <- struct{}{}
	<-b.release
	return b.Backend.SubmitBid(ctx, workerID, bid)
}

func TestAdmissionConcurrencyGateSheds(t *testing.T) {
	bb := &blockingBackend{
		Backend: newTestPlatform(t),
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	srv, err := NewServer(bb, nil, WithAdmission(AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 0, QueueTimeout: 20 * time.Millisecond,
		RetryAfter: 50 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Retry: &noRetry})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := client.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := client.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}

	// Pin the single slot with a bid that blocks inside the backend.
	pinned := make(chan error, 1)
	go func() { pinned <- client.SubmitBid(ctx, "w1", 1.2, 2) }()
	<-bb.entered

	// A second bid finds no slot and no waiting room: shed with 429, a
	// Retry-After hint, and the overloaded sentinel.
	err = client.SubmitBid(ctx, "w1", 1.3, 2)
	if !errors.Is(err, melody.ErrOverloaded) {
		t.Fatalf("second bid err = %v, want ErrOverloaded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("second bid err = %T, want *APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Errorf("shed status = %d, want 429", apiErr.Status)
	}
	if apiErr.RetryAfter != 50*time.Millisecond {
		t.Errorf("shed Retry-After = %v, want 50ms", apiErr.RetryAfter)
	}

	// The control plane is exempt: closing the auction works even while
	// ingest is saturated.
	if _, err := client.CloseAuction(ctx); err != nil {
		t.Errorf("close while ingest saturated: %v", err)
	}
	close(bb.release)
	// The pinned bid reaches the platform after the close; it loses the
	// race and reports auction-closed — admission must not mask that.
	if err := <-pinned; err != nil && !errors.Is(err, melody.ErrAuctionClosed) {
		t.Errorf("pinned bid err = %v, want nil or ErrAuctionClosed", err)
	}
	if rs, err := srv.lookupRun("current"); err != nil {
		t.Errorf("resolve current run: %v", err)
	} else if err := srv.finishRun(ctx, rs); err != nil {
		t.Errorf("finish after shed: %v", err)
	}
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	bb := &blockingBackend{
		Backend: newTestPlatform(t),
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	srv, err := NewServer(bb, nil, WithAdmission(AdmissionConfig{
		MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 2 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Retry: &noRetry})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := client.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := client.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- client.SubmitBid(ctx, "w1", 1.2, 2) }()
	<-bb.entered
	// The second bid queues behind the pinned slot instead of shedding,
	// and is admitted once the first completes.
	second := make(chan error, 1)
	go func() { second <- client.SubmitBid(ctx, "w1", 1.4, 2) }()
	time.Sleep(20 * time.Millisecond) // let it reach the queue
	close(bb.release)
	<-bb.entered // the queued bid enters the backend
	if err := <-first; err != nil {
		t.Errorf("pinned bid: %v", err)
	}
	if err := <-second; err != nil {
		t.Errorf("queued bid: %v", err)
	}
}

func TestAdmissionTenantRateLimit(t *testing.T) {
	srv, err := NewServer(newTestPlatform(t), nil, WithAdmission(AdmissionConfig{
		TenantRatePerSec: 0.001, TenantBurst: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// The anonymous setup client is not rate-limited (no tenant header).
	setup, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Retry: &noRetry})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := setup.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := setup.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	tenant, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(), Retry: &noRetry, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 2: two bids pass, the third is rate-limited.
	if err := tenant.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Fatalf("bid 1: %v", err)
	}
	if err := tenant.SubmitBid(ctx, "w1", 1.3, 2); err != nil {
		t.Fatalf("bid 2: %v", err)
	}
	if err := tenant.SubmitBid(ctx, "w1", 1.4, 2); !errors.Is(err, melody.ErrOverloaded) {
		t.Fatalf("bid 3 err = %v, want ErrOverloaded", err)
	}
	// A different tenant has its own bucket.
	other, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(), Retry: &noRetry, Tenant: "globex",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.SubmitBid(ctx, "w1", 1.5, 2); err != nil {
		t.Errorf("other tenant's first bid: %v", err)
	}
	// The anonymous client is untouched by tenant budgets.
	if err := setup.SubmitBid(ctx, "w1", 1.6, 2); err != nil {
		t.Errorf("anonymous bid: %v", err)
	}
}

// TestShedBidNeverPersisted is the regression test that a 429-shed bid
// leaves no trace: no WAL append, no ledger entry, no platform state.
func TestShedBidNeverPersisted(t *testing.T) {
	reg := obs.NewRegistry()
	money := melody.NewLedger()
	if _, err := money.Deposit(melody.RequesterAccount, 1000, "funding"); err != nil {
		t.Fatal(err)
	}
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 9},
		EMPeriod: 10, EMWindow: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
		Ledger:    money,
	})
	if err != nil {
		t.Fatal(err)
	}
	pp, wal, err := eventlog.OpenPersistentOptions(t.TempDir()+"/shed.wal", p, eventlog.Options{
		SyncEveryAppend: true,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	srv, err := NewServer(pp, nil, WithAdmission(AdmissionConfig{
		TenantRatePerSec: 0.001, TenantBurst: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	setup, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Retry: &noRetry})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := NewClientOptions(ts.URL, ClientOptions{
		HTTPClient: ts.Client(), Retry: &noRetry, Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := setup.RegisterWorker(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := setup.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	// One accepted bid spends the tenant's only token.
	if err := tenant.SubmitBid(ctx, "w1", 1.2, 2); err != nil {
		t.Fatal(err)
	}
	appends := reg.Counter(obs.MetricWALAppendsTotal, "").Value()
	entries := len(money.Entries())

	if err := tenant.SubmitBid(ctx, "w1", 1.9, 1); !errors.Is(err, melody.ErrOverloaded) {
		t.Fatalf("shed bid err = %v, want ErrOverloaded", err)
	}
	if got := reg.Counter(obs.MetricWALAppendsTotal, "").Value(); got != appends {
		t.Errorf("shed bid was WAL-appended: appends %d -> %d", appends, got)
	}
	if got := len(money.Entries()); got != entries {
		t.Errorf("shed bid touched the ledger: entries %d -> %d", entries, got)
	}
	// The run settles on the accepted bid alone, and the shed bid's values
	// never appear in the outcome.
	out, err := setup.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Assignments {
		if a.Payment <= 0 {
			t.Errorf("assignment %+v has non-positive payment", a)
		}
	}
	for _, a := range out.Assignments {
		if err := setup.SubmitScore(ctx, a.WorkerID, a.TaskID, 6); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	if err := checkConservation(money); err != nil {
		t.Error(err)
	}
}

// checkConservation is a local money-conservation check (sum of balances
// equals deposits); the full invariant library lives in internal/verify,
// which this package cannot import without a cycle in the verify
// integration tests' direction.
func checkConservation(l *melody.Ledger) error {
	var deposits, total float64
	for _, e := range l.Entries() {
		if e.Kind == "deposit" {
			deposits += e.Amount
		}
	}
	for _, ab := range l.Accounts() {
		total += ab.Balance
	}
	if diff := total - deposits; diff > 1e-6 || diff < -1e-6 {
		return errors.New("money not conserved after shed run")
	}
	return nil
}

// TestAdmissionConcurrentStorm hammers a bounded gate from many goroutines
// and checks the books balance: every request is either accepted or shed,
// and the gate's slots all return. Run under -race by make ci.
func TestAdmissionConcurrentStorm(t *testing.T) {
	srv, err := NewServer(newTestPlatform(t), nil, WithAdmission(AdmissionConfig{
		MaxInFlight: 4, MaxQueue: 8, QueueTimeout: 50 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	setup, err := NewClientOptions(ts.URL, ClientOptions{HTTPClient: ts.Client(), Retry: &noRetry})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2", "w3", "w4"} {
		if err := setup.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.OpenRun(ctx, []TaskSpec{{ID: "t1", Threshold: 10}}, 100); err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 16, 25
	var accepted, shed, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{"w1", "w2", "w3", "w4"}
			for i := 0; i < perG; i++ {
				err := setup.SubmitBid(ctx, ids[(g+i)%4], 1.0+0.001*float64(g*perG+i), 1)
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, melody.ErrOverloaded):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := accepted.Load() + shed.Load() + failed.Load(); got != goroutines*perG {
		t.Errorf("requests accounted = %d, want %d", got, goroutines*perG)
	}
	if failed.Load() != 0 {
		t.Errorf("%d requests failed with non-overload errors", failed.Load())
	}
	if accepted.Load() == 0 {
		t.Error("storm starved completely: zero accepted bids")
	}
	// The gate must be fully drained: a final bid cannot be blocked by
	// leaked slots.
	if err := setup.SubmitBid(ctx, "w1", 1.5, 1); err != nil && !errors.Is(err, melody.ErrOverloaded) {
		t.Errorf("post-storm bid: %v", err)
	}
	if _, err := setup.CloseAuction(ctx); err != nil {
		t.Fatal(err)
	}
	if rs, err := srv.lookupRun("current"); err != nil {
		t.Fatal(err)
	} else if err := srv.finishRun(ctx, rs); err != nil {
		t.Fatal(err)
	}
}

func TestRetryAfterValueFormat(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{time.Second, "1"},
		{3 * time.Second, "3"},
		{250 * time.Millisecond, "0.250"},
		{1500 * time.Millisecond, "1.500"},
	}
	for _, c := range cases {
		if got := retryAfterValue(c.d); got != c.want {
			t.Errorf("retryAfterValue(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	for _, v := range []string{"1", "0.250", "3"} {
		if got := parseRetryAfter(v); got <= 0 {
			t.Errorf("parseRetryAfter(%q) = %v, want > 0", v, got)
		}
	}
	if got := parseRetryAfter("Wed, 21 Oct 2015 07:28:00 GMT"); got != 0 {
		t.Errorf("HTTP-date Retry-After parsed to %v, want 0", got)
	}
}
