package platform

import (
	"context"
	"fmt"
	"testing"
	"time"

	"melody/internal/stats"
	"melody/internal/workerpool"
)

// TestEndToEndWithConcurrentAgents spins up the HTTP platform, a fleet of
// autonomous worker agents and a requester, then drives several complete
// runs. It checks that allocations happen, scores flow back, and the
// platform's quality estimates converge toward the agents' latent
// qualities.
func TestEndToEndWithConcurrentAgents(t *testing.T) {
	_, client := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	r := stats.NewRNG(2024)
	const nAgents = 8
	latents := make(map[string]float64, nAgents)
	agents := make([]*WorkerAgent, 0, nAgents)
	for i := 0; i < nAgents; i++ {
		id := fmt.Sprintf("agent-%02d", i)
		latent := r.Uniform(4, 9)
		latents[id] = latent
		agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:        client,
			WorkerID:      id,
			Cost:          r.Uniform(1, 2),
			Frequency:     2,
			LatentQuality: func(int) float64 { return latent },
			ScoreSigma:    0.5,
			PollInterval:  10 * time.Millisecond,
			RNG:           r.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, agent)
	}
	defer func() {
		for _, a := range agents {
			if err := a.Stop(); err != nil {
				t.Errorf("agent stop: %v", err)
			}
		}
	}()

	requester, err := NewRequester(RequesterConfig{
		Client: client,
		Tasks: func(run int) []TaskSpec {
			return []TaskSpec{
				{ID: fmt.Sprintf("r%d-a", run), Threshold: 12},
				{ID: fmt.Sprintf("r%d-b", run), Threshold: 12},
			}
		},
		Budget:        200,
		BidWait:       250 * time.Millisecond,
		AnswerTimeout: 5 * time.Second,
		ScoreLo:       1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	totalSelected := 0
	for run := 1; run <= 5; run++ {
		out, err := requester.RunOnce(ctx, run)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		totalSelected += len(out.SelectedTasks)
	}
	if totalSelected == 0 {
		t.Fatal("no tasks were ever selected across five runs")
	}

	// Quality estimates of workers who actually won tasks should have moved
	// toward their latent qualities.
	moved := 0
	for id, latent := range latents {
		q, err := client.Quality(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if q != 5.5 { // initial estimate
			moved++
			if diff := q - latent; diff > 3 || diff < -3 {
				t.Errorf("worker %s: estimate %.2f far from latent %.2f", id, q, latent)
			}
		}
	}
	if moved == 0 {
		t.Error("no quality estimate ever moved; scores did not flow")
	}
}

// TestWorkerAgentStopsCleanly verifies the managed-goroutine contract: Stop
// returns promptly even mid-poll.
func TestWorkerAgentStopsCleanly(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()
	agent, err := NewWorkerAgent(ctx, WorkerAgentConfig{
		Client:        client,
		WorkerID:      "loner",
		Cost:          1.5,
		Frequency:     1,
		LatentQuality: func(int) float64 { return 5 },
		ScoreSigma:    1,
		PollInterval:  5 * time.Millisecond,
		RNG:           stats.NewRNG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- agent.Stop() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Stop() = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent did not stop within 2s")
	}
}

func TestNewWorkerAgentValidation(t *testing.T) {
	_, client := newTestServer(t)
	ctx := context.Background()
	if _, err := NewWorkerAgent(ctx, WorkerAgentConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewWorkerAgent(ctx, WorkerAgentConfig{
		Client: client, WorkerID: "w",
		LatentQuality: func(int) float64 { return 5 },
	}); err == nil {
		t.Error("missing RNG accepted")
	}
}

func TestNewRequesterValidation(t *testing.T) {
	_, client := newTestServer(t)
	if _, err := NewRequester(RequesterConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewRequester(RequesterConfig{
		Client: client,
		Tasks:  func(int) []TaskSpec { return nil },
		// ScoreHi <= ScoreLo
	}); err == nil {
		t.Error("invalid score range accepted")
	}
}

// TestAgentWithDriftingQuality exercises a worker whose latent quality
// follows a rising trajectory, confirming the platform's estimate follows.
func TestAgentWithDriftingQuality(t *testing.T) {
	_, client := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	r := stats.NewRNG(77)
	traj, err := workerpool.Generate(r.Split(), workerpool.TrajectoryConfig{
		Pattern: workerpool.Rising, Runs: 12, Lo: 1, Hi: 10, Noise: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rising agent plus two stable helpers so tasks can be covered and
	// a pivot exists.
	riser, err := NewWorkerAgent(ctx, WorkerAgentConfig{
		Client:   client,
		WorkerID: "riser",
		Cost:     1.0, Frequency: 2,
		LatentQuality: func(run int) float64 {
			if run-1 < len(traj) && run >= 1 {
				return traj[run-1]
			}
			return traj[len(traj)-1]
		},
		ScoreSigma:   0.3,
		PollInterval: 10 * time.Millisecond,
		RNG:          r.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer riser.Stop()
	for i := 0; i < 3; i++ {
		helper, err := NewWorkerAgent(ctx, WorkerAgentConfig{
			Client:   client,
			WorkerID: fmt.Sprintf("helper-%d", i),
			Cost:     1.4, Frequency: 2,
			LatentQuality: func(int) float64 { return 6 },
			ScoreSigma:    0.3,
			PollInterval:  10 * time.Millisecond,
			RNG:           r.Split(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer helper.Stop()
	}

	requester, err := NewRequester(RequesterConfig{
		Client: client,
		Tasks: func(run int) []TaskSpec {
			return []TaskSpec{{ID: fmt.Sprintf("r%d", run), Threshold: 10}}
		},
		Budget:        100,
		BidWait:       200 * time.Millisecond,
		AnswerTimeout: 5 * time.Second,
		ScoreLo:       1, ScoreHi: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var early, late float64
	for run := 1; run <= 10; run++ {
		if _, err := requester.RunOnce(ctx, run); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		q, err := client.Quality(ctx, "riser")
		if err != nil {
			t.Fatal(err)
		}
		if run == 3 {
			early = q
		}
		if run == 10 {
			late = q
		}
	}
	if late <= early {
		t.Errorf("rising worker's estimate did not rise: run3=%.2f run10=%.2f", early, late)
	}
}
