package ledger

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// EpochPool holds settled-but-unpaid worker earnings between epoch
// payouts. Payments accumulate here instead of landing on worker accounts
// one transfer at a time; every EpochSettler.Every finished runs the pool
// is drained into one aggregated payout batch per worker.
const EpochPool Account = "epoch_pool"

// KindPayout labels the aggregated epoch-boundary transfers from the
// epoch pool to worker accounts.
const KindPayout EntryKind = "payout"

// EpochSettler batches per-run payments into periodic payout epochs,
// modeled on blockchain-style reward pools: individual auction payments
// move budget from escrow into the shared EpochPool while the settler
// accrues each worker's share, and every Every finished runs the pool is
// drained in one sorted pass of aggregated transfers. Money conservation
// is preserved by construction — every movement is a ledger Transfer —
// and the pool returns to (float-residue) zero at each epoch boundary.
//
// All pool movements (accruals and payouts) are serialized under the
// settler's own mutex, so a Settle never observes a payment that reached
// the pool but not the pending table, and concurrent runs from many
// tenants can share one settler on one ledger.
type EpochSettler struct {
	ledger *Ledger
	every  int

	mu      sync.Mutex
	pending map[Account]float64
	runs    int // finished runs since the last settle
	epochs  int // completed payout epochs
}

// NewEpochSettler returns a settler that pays out every `every` finished
// runs; every <= 1 settles after each run (degenerating to per-run payout
// with one extra hop through the pool).
func NewEpochSettler(l *Ledger, every int) *EpochSettler {
	if every < 1 {
		every = 1
	}
	return &EpochSettler{ledger: l, every: every, pending: make(map[Account]float64)}
}

// Every returns the epoch length in runs.
func (s *EpochSettler) Every() int { return s.every }

// Epochs returns the number of completed payout epochs.
func (s *EpochSettler) Epochs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// Pending returns the total accrued-but-unpaid amount (the pool's target
// balance).
func (s *EpochSettler) Pending() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0.0
	for _, v := range s.pending {
		total += v
	}
	return total
}

// pay moves one assignment's payment from escrow into the pool and
// accrues it to the worker, atomically with respect to Settle.
func (s *EpochSettler) pay(worker Account, amount float64, memo string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.ledger.Transfer(KindPayment, Escrow, EpochPool, amount, memo); err != nil {
		return err
	}
	s.pending[worker] += amount
	return nil
}

// RunFinished records one finished run and settles the epoch when the
// epoch length is reached. It returns whether a payout epoch completed.
func (s *EpochSettler) RunFinished() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runs++
	if s.runs < s.every {
		return false, nil
	}
	return true, s.settleLocked()
}

// Flush settles any accrued payments immediately, regardless of epoch
// position — the shutdown path, so no worker earnings stay parked in the
// pool when the platform stops mid-epoch.
func (s *EpochSettler) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		s.runs = 0
		return nil
	}
	return s.settleLocked()
}

// settleLocked drains the pool into per-worker aggregated payouts; callers
// hold s.mu. Workers are paid in sorted order so the entry sequence — and
// therefore every balance — is deterministic for a given accrual history.
func (s *EpochSettler) settleLocked() error {
	epoch := s.epochs + 1
	workers := make([]Account, 0, len(s.pending))
	for w := range s.pending {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })
	for _, w := range workers {
		amount := s.pending[w]
		if amount <= 0 {
			continue
		}
		if _, err := s.ledger.Transfer(KindPayout, EpochPool, w, amount,
			fmt.Sprintf("epoch %d payout", epoch)); err != nil {
			return fmt.Errorf("ledger: epoch %d payout to %q: %w", epoch, w, err)
		}
	}
	// Aggregated per-worker sums and the pool's running balance accumulate
	// the same payments in different orders, so up to a few ULPs can be
	// left behind. Sweep a positive residue back to the requester; anything
	// above float noise means a real accounting bug.
	if residue := s.ledger.Balance(EpochPool); residue > 0 {
		if residue > 1e-6 {
			return fmt.Errorf("ledger: epoch %d left %.9f in the pool", epoch, residue)
		}
		if _, err := s.ledger.Transfer(KindRefund, EpochPool, Requester, residue,
			fmt.Sprintf("epoch %d rounding residue", epoch)); err != nil {
			return err
		}
	}
	s.pending = make(map[Account]float64)
	s.runs = 0
	s.epochs = epoch
	return nil
}

// OpenRunEpoch escrows a run's budget like OpenRun but routes the run's
// payments through the epoch settler's pool instead of paying workers
// directly; the unspent remainder still refunds straight to the requester
// at Close.
func (l *Ledger) OpenRunEpoch(run int, budget float64, settler *EpochSettler) (*RunSettlement, error) {
	if settler == nil {
		return nil, errors.New("ledger: epoch settlement needs a settler")
	}
	if settler.ledger != l {
		return nil, errors.New("ledger: settler is bound to a different ledger")
	}
	s, err := l.OpenRun(run, budget)
	if err != nil {
		return nil, err
	}
	s.epoch = settler
	return s, nil
}
