package ledger_test

// Money-conservation tests driven through the verify checkers: across any
// sequence of deposits, escrows, payments and refunds, the sum of balances
// equals the sum of external deposits, and a finished run leaves nothing
// stuck in escrow.

import (
	"testing"

	"melody/internal/ledger"
	"melody/internal/stats"
	"melody/internal/verify"
)

func TestConservationAcrossRandomSettlements(t *testing.T) {
	r := stats.NewRNG(42)
	l := ledger.New()
	if _, err := l.Deposit(ledger.Requester, 10_000, "funding"); err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 25; run++ {
		budget := r.Uniform(10, 200)
		s, err := l.OpenRun(run, budget)
		if err != nil {
			t.Fatal(err)
		}
		// Conservation must hold mid-run too, with money parked in escrow.
		if err := verify.CheckMoneyConservation(l); err != nil {
			t.Fatalf("run %d after escrow: %v", run, err)
		}
		spent := 0.0
		for w := 0; w < r.Intn(6); w++ {
			amount := r.Uniform(1, 20)
			if spent+amount > budget {
				break
			}
			worker := ledger.Account("w" + string(rune('a'+w)))
			if err := s.Pay(worker, amount, "t1"); err != nil {
				t.Fatal(err)
			}
			spent += amount
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckMoneyConservation(l); err != nil {
			t.Fatalf("run %d after close: %v", run, err)
		}
		if err := verify.CheckEscrowSettled(l); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

func TestEscrowSettledCatchesStuckRun(t *testing.T) {
	l := ledger.New()
	if _, err := l.Deposit(ledger.Requester, 100, "funding"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.OpenRun(1, 40); err != nil {
		t.Fatal(err)
	}
	// The settlement is never closed: 40 sits in escrow. Conservation still
	// holds (no money vanished), but escrow settlement must flag it.
	if err := verify.CheckMoneyConservation(l); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckEscrowSettled(l); err == nil {
		t.Fatal("stuck escrow not detected")
	}
}

func TestOverspendRejectedKeepsConservation(t *testing.T) {
	l := ledger.New()
	if _, err := l.Deposit(ledger.Requester, 50, "funding"); err != nil {
		t.Fatal(err)
	}
	s, err := l.OpenRun(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pay("w1", 25, "t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pay("w2", 10, "t2"); err == nil {
		t.Fatal("payment beyond escrowed budget accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckMoneyConservation(l); err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckEscrowSettled(l); err != nil {
		t.Fatal(err)
	}
}
