package ledger

import (
	"testing"
)

func TestLedgerSnapshotRoundTrip(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 100, "funding"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(KindEscrow, Requester, Escrow, 30, "run 1 budget"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(KindPayment, Escrow, "worker:ada", 12, "run 1 payment"); err != nil {
		t.Fatal(err)
	}

	snap := l.Snapshot()
	restored := New()
	// Pre-restore state — e.g. the boot-time season deposit a recovering
	// process repeats before loading the snapshot — must be discarded, or
	// the requester would be double-funded.
	if _, err := restored.Deposit(Requester, 100, "boot funding"); err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}

	for _, acc := range l.Accounts() {
		if got := restored.Balance(acc.Account); got != acc.Balance {
			t.Errorf("account %s: restored balance %v, want %v", acc.Account, got, acc.Balance)
		}
	}
	liveEntries := l.Entries()
	gotEntries := restored.Entries()
	if len(gotEntries) != len(liveEntries) {
		t.Fatalf("restored %d entries, want %d", len(gotEntries), len(liveEntries))
	}
	for i := range liveEntries {
		if gotEntries[i] != liveEntries[i] {
			t.Errorf("entry %d: restored %+v, want %+v", i, gotEntries[i], liveEntries[i])
		}
	}

	// Sequence numbering continues from the snapshot, not from the discarded
	// pre-restore history.
	seq, err := restored.Deposit(Requester, 1, "post-restore")
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := liveEntries[len(liveEntries)-1].Seq + 1
	if seq != wantSeq {
		t.Errorf("post-restore seq = %d, want %d", seq, wantSeq)
	}
}

func TestLedgerRestoreValidation(t *testing.T) {
	l := New()
	if err := l.Restore(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

func TestLedgerSnapshotIsDeepCopy(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 50, "funding"); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	// Mutating the live ledger after the snapshot must not leak into it.
	if _, err := l.Deposit(Requester, 999, "later"); err != nil {
		t.Fatal(err)
	}
	if snap.Balances[Requester] != 50 {
		t.Errorf("snapshot balance mutated to %v", snap.Balances[Requester])
	}
	if len(snap.Entries) != 1 {
		t.Errorf("snapshot entries mutated: %d", len(snap.Entries))
	}
}
