package ledger

import (
	"math"
	"testing"
)

func fundedLedger(t *testing.T, amount float64) *Ledger {
	t.Helper()
	l := New()
	if _, err := l.Deposit(Requester, amount, "test funding"); err != nil {
		t.Fatal(err)
	}
	return l
}

// settleRun escrows a budget, pays the given worker amounts through the
// settler's pool, refunds the remainder, and reports the run finished.
func settleRun(t *testing.T, l *Ledger, s *EpochSettler, run int, budget float64, payments map[Account]float64) bool {
	t.Helper()
	rs, err := l.OpenRunEpoch(run, budget, s)
	if err != nil {
		t.Fatalf("run %d: %v", run, err)
	}
	for w, amt := range payments {
		if err := rs.Pay(w, amt, "t1"); err != nil {
			t.Fatalf("run %d pay %s: %v", run, w, err)
		}
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("run %d close: %v", run, err)
	}
	settled, err := s.RunFinished()
	if err != nil {
		t.Fatalf("run %d finished: %v", run, err)
	}
	return settled
}

// TestEpochSettlerAccrualAndPayout drives two epochs of two runs each and
// checks the core contract: payments park in the pool mid-epoch, drain
// into one aggregated payout per worker at the boundary, and every epoch
// leaves the pool at (residue-swept) zero with the total conserved.
func TestEpochSettlerAccrualAndPayout(t *testing.T) {
	l := fundedLedger(t, 400)
	s := NewEpochSettler(l, 2)
	if s.Every() != 2 {
		t.Fatalf("Every() = %d, want 2", s.Every())
	}

	// Run 1: mid-epoch — money accrues, nothing pays out.
	if settled := settleRun(t, l, s, 1, 100, map[Account]float64{"w1": 10, "w2": 5}); settled {
		t.Error("epoch settled after 1 of 2 runs")
	}
	if got := l.Balance(EpochPool); math.Abs(got-15) > 1e-9 {
		t.Errorf("pool mid-epoch = %v, want 15", got)
	}
	if got := s.Pending(); math.Abs(got-15) > 1e-9 {
		t.Errorf("Pending() = %v, want 15", got)
	}
	if got := l.Balance("w1"); got != 0 {
		t.Errorf("w1 paid mid-epoch: %v", got)
	}
	if s.Epochs() != 0 {
		t.Errorf("Epochs() = %d mid-epoch, want 0", s.Epochs())
	}

	// Run 2: boundary — the pool drains into aggregated payouts.
	if settled := settleRun(t, l, s, 2, 100, map[Account]float64{"w1": 7}); !settled {
		t.Error("epoch did not settle after 2 runs")
	}
	if got := s.Epochs(); got != 1 {
		t.Errorf("Epochs() = %d, want 1", got)
	}
	if got := l.Balance(EpochPool); math.Abs(got) > 1e-9 {
		t.Errorf("pool after settle = %v, want 0", got)
	}
	if got := l.Balance("w1"); math.Abs(got-17) > 1e-9 {
		t.Errorf("w1 = %v, want 17 (aggregated across runs)", got)
	}
	if got := l.Balance("w2"); math.Abs(got-5) > 1e-9 {
		t.Errorf("w2 = %v, want 5", got)
	}
	// Aggregation: one payout entry per worker per epoch, not per payment.
	payouts := 0
	for _, e := range l.Entries() {
		if e.Kind == KindPayout {
			payouts++
		}
	}
	if payouts != 2 {
		t.Errorf("payout entries = %d, want 2 (one per worker)", payouts)
	}

	// Conservation: balances still sum to the deposit.
	var total float64
	for _, ab := range l.Accounts() {
		total += ab.Balance
	}
	if math.Abs(total-400) > 1e-9 {
		t.Errorf("balances sum to %v, want 400", total)
	}
}

// TestEpochSettlerFlush parks one run's payments mid-epoch and checks
// Flush drains them immediately — the shutdown path — and that a Flush on
// an empty pool is a no-op that still resets the epoch position.
func TestEpochSettlerFlush(t *testing.T) {
	l := fundedLedger(t, 100)
	s := NewEpochSettler(l, 5)
	if settled := settleRun(t, l, s, 1, 50, map[Account]float64{"w1": 12}); settled {
		t.Error("epoch settled after 1 of 5 runs")
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := l.Balance("w1"); math.Abs(got-12) > 1e-9 {
		t.Errorf("w1 after flush = %v, want 12", got)
	}
	if got := l.Balance(EpochPool); math.Abs(got) > 1e-9 {
		t.Errorf("pool after flush = %v, want 0", got)
	}
	if got := s.Epochs(); got != 1 {
		t.Errorf("Epochs() after flush = %d, want 1", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if got := s.Epochs(); got != 1 {
		t.Errorf("empty Flush advanced epochs to %d", got)
	}
}

// TestEpochSettlerEveryFloor checks every <= 1 degenerates to per-run
// settlement.
func TestEpochSettlerEveryFloor(t *testing.T) {
	l := fundedLedger(t, 100)
	s := NewEpochSettler(l, 0)
	if s.Every() != 1 {
		t.Fatalf("Every() = %d, want 1", s.Every())
	}
	if settled := settleRun(t, l, s, 1, 50, map[Account]float64{"w1": 3}); !settled {
		t.Error("every=1 settler did not settle after one run")
	}
	if got := l.Balance("w1"); math.Abs(got-3) > 1e-9 {
		t.Errorf("w1 = %v, want 3", got)
	}
}

// TestOpenRunEpochValidation checks the settler/ledger binding rules.
func TestOpenRunEpochValidation(t *testing.T) {
	l := fundedLedger(t, 100)
	if _, err := l.OpenRunEpoch(1, 10, nil); err == nil {
		t.Error("nil settler accepted")
	}
	other := NewEpochSettler(New(), 2)
	if _, err := l.OpenRunEpoch(1, 10, other); err == nil {
		t.Error("settler bound to another ledger accepted")
	}
}
