// Package ledger implements the platform's money-handling substrate: a
// double-entry ledger with requester escrow and worker balances. A run's
// budget is escrowed when the run opens, payments move from escrow to
// worker balances when the auction settles, and the unspent remainder is
// refunded when the run finishes — making budget feasibility (constraint 9
// of the paper) an accounting invariant instead of a convention.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Account identifies a ledger account.
type Account string

// Reserved accounts.
const (
	// Requester is the requester's funding account.
	Requester Account = "requester"
	// Escrow holds a run's budget between OpenRun and FinishRun.
	Escrow Account = "escrow"
)

// EntryKind labels ledger entries.
type EntryKind string

// The entry kinds.
const (
	KindDeposit EntryKind = "deposit"
	KindEscrow  EntryKind = "escrow"
	KindPayment EntryKind = "payment"
	KindRefund  EntryKind = "refund"
)

// Entry is one immutable ledger record: amount moved from one account to
// another.
type Entry struct {
	Seq    int64
	Kind   EntryKind
	From   Account
	To     Account
	Amount float64
	// Memo carries context (task ID, run number).
	Memo string
}

// Ledger is a thread-safe double-entry ledger. Every mutation preserves
// the invariant that the sum of all balances equals the sum of deposits
// (money is neither created nor destroyed internally).
type Ledger struct {
	mu       sync.Mutex
	balances map[Account]float64
	entries  []Entry
	seq      int64
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{balances: make(map[Account]float64)}
}

// Deposit credits external money into an account.
func (l *Ledger) Deposit(to Account, amount float64, memo string) (int64, error) {
	if err := checkAmount(amount); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances[to] += amount
	return l.record(KindDeposit, "", to, amount, memo), nil
}

// Transfer moves money between accounts, failing on insufficient funds.
func (l *Ledger) Transfer(kind EntryKind, from, to Account, amount float64, memo string) (int64, error) {
	if err := checkAmount(amount); err != nil {
		return 0, err
	}
	if from == to {
		return 0, errors.New("ledger: transfer to self")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.balances[from] < amount-1e-9 {
		return 0, fmt.Errorf("ledger: insufficient funds in %q: have %.6f, need %.6f",
			from, l.balances[from], amount)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	return l.record(kind, from, to, amount, memo), nil
}

// record appends an entry; callers hold l.mu.
func (l *Ledger) record(kind EntryKind, from, to Account, amount float64, memo string) int64 {
	l.seq++
	l.entries = append(l.entries, Entry{
		Seq: l.seq, Kind: kind, From: from, To: to, Amount: amount, Memo: memo,
	})
	return l.seq
}

// Balance returns an account's balance (zero for unknown accounts).
func (l *Ledger) Balance(a Account) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.balances[a]
}

// Entries returns a copy of the full history.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Accounts returns all accounts with their balances, sorted by name.
func (l *Ledger) Accounts() []struct {
	Account Account
	Balance float64
} {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]struct {
		Account Account
		Balance float64
	}, 0, len(l.balances))
	for a, b := range l.balances {
		out = append(out, struct {
			Account Account
			Balance float64
		}{a, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Account < out[j].Account })
	return out
}

func checkAmount(amount float64) error {
	if !(amount > 0) || math.IsInf(amount, 0) || math.IsNaN(amount) {
		return fmt.Errorf("ledger: amount %v must be positive and finite", amount)
	}
	return nil
}

// RunSettlement drives the per-run money flow.
type RunSettlement struct {
	ledger *Ledger
	run    int
	budget float64
	spent  float64
	open   bool
	// epoch, when non-nil, routes payments through the epoch pool instead
	// of paying workers directly (see OpenRunEpoch).
	epoch *EpochSettler
}

// OpenRun escrows the run's budget from the requester account.
func (l *Ledger) OpenRun(run int, budget float64) (*RunSettlement, error) {
	if _, err := l.Transfer(KindEscrow, Requester, Escrow, budget, fmt.Sprintf("run %d budget", run)); err != nil {
		return nil, err
	}
	return &RunSettlement{ledger: l, run: run, budget: budget, open: true}, nil
}

// Pay settles one assignment from escrow to the worker's account. Payments
// beyond the escrowed budget are rejected — the accounting form of budget
// feasibility.
func (s *RunSettlement) Pay(worker Account, amount float64, taskID string) error {
	if !s.open {
		return errors.New("ledger: settlement already closed")
	}
	if s.spent+amount > s.budget+1e-9 {
		return fmt.Errorf("ledger: run %d payment %.6f would exceed budget %.6f (spent %.6f)",
			s.run, amount, s.budget, s.spent)
	}
	memo := fmt.Sprintf("run %d task %s", s.run, taskID)
	if s.epoch != nil {
		if err := s.epoch.pay(worker, amount, memo); err != nil {
			return err
		}
	} else if _, err := s.ledger.Transfer(KindPayment, Escrow, worker, amount, memo); err != nil {
		return err
	}
	s.spent += amount
	return nil
}

// Close refunds the unspent escrow to the requester and seals the
// settlement.
func (s *RunSettlement) Close() error {
	if !s.open {
		return errors.New("ledger: settlement already closed")
	}
	s.open = false
	remainder := s.budget - s.spent
	if remainder <= 1e-12 {
		return nil
	}
	_, err := s.ledger.Transfer(KindRefund, Escrow, Requester, remainder,
		fmt.Sprintf("run %d refund", s.run))
	return err
}

// Spent returns the total paid out so far.
func (s *RunSettlement) Spent() float64 { return s.spent }
