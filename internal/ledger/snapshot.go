package ledger

import "errors"

// Snapshot is a point-in-time copy of the ledger's full state: every
// balance, the complete entry history and the entry sequence counter. It is
// the ledger's contribution to a platform state snapshot, so a restored
// ledger continues exactly where the snapshotted one stopped (same
// balances, same audit trail, same next entry sequence).
type Snapshot struct {
	Balances map[Account]float64 `json:"balances,omitempty"`
	Entries  []Entry             `json:"entries,omitempty"`
	Seq      int64               `json:"seq"`
}

// Snapshot returns a deep copy of the ledger's state. The copy shares no
// memory with the live ledger, so it stays stable while mutations continue.
func (l *Ledger) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &Snapshot{Seq: l.seq}
	if len(l.balances) > 0 {
		s.Balances = make(map[Account]float64, len(l.balances))
		for a, b := range l.balances {
			s.Balances[a] = b
		}
	}
	if len(l.entries) > 0 {
		s.Entries = make([]Entry, len(l.entries))
		copy(s.Entries, l.entries)
	}
	return s
}

// Restore replaces the ledger's state wholesale with the snapshot's. The
// snapshot is authoritative: any state the target ledger accumulated before
// the restore — in particular boot-time deposits an operator repeats on
// every start, which the snapshot already contains — is discarded, so a
// recovery can never double-count funding.
func (l *Ledger) Restore(s *Snapshot) error {
	if s == nil {
		return errors.New("ledger: restore needs a snapshot")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balances = make(map[Account]float64, len(s.Balances))
	for a, b := range s.Balances {
		l.balances[a] = b
	}
	l.entries = nil
	if len(s.Entries) > 0 {
		l.entries = make([]Entry, len(s.Entries))
		copy(l.entries, s.Entries)
	}
	l.seq = s.Seq
	return nil
}
