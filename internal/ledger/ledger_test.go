package ledger

import (
	"math"
	"sync"
	"testing"

	"melody/internal/core"
	"melody/internal/experiments"
	"melody/internal/stats"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDepositAndBalance(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 100, "funding"); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(Requester); got != 100 {
		t.Errorf("balance = %v, want 100", got)
	}
	if got := l.Balance("nobody"); got != 0 {
		t.Errorf("unknown balance = %v, want 0", got)
	}
	if _, err := l.Deposit(Requester, 0, "zero"); err == nil {
		t.Error("zero deposit accepted")
	}
	if _, err := l.Deposit(Requester, math.NaN(), "nan"); err == nil {
		t.Error("NaN deposit accepted")
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	l := New()
	if _, err := l.Transfer(KindPayment, Requester, "w", 5, "no funds"); err == nil {
		t.Error("overdraft accepted")
	}
	if _, err := l.Transfer(KindPayment, Requester, Requester, 5, "self"); err == nil {
		t.Error("self transfer accepted")
	}
}

func TestConservationOfMoney(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 1000, "funding"); err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(6)
	accounts := []Account{"w1", "w2", "w3"}
	for i := 0; i < 200; i++ {
		amount := r.Uniform(0.1, 5)
		to := accounts[r.Intn(len(accounts))]
		if _, err := l.Transfer(KindPayment, Requester, to, amount, "x"); err != nil {
			t.Fatal(err)
		}
	}
	var total float64
	for _, ab := range l.Accounts() {
		total += ab.Balance
	}
	if !almostEqual(total, 1000, 1e-9) {
		t.Errorf("money not conserved: total %v", total)
	}
}

func TestEntriesAreSequencedCopies(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 10, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Transfer(KindPayment, Requester, "w", 4, "b"); err != nil {
		t.Fatal(err)
	}
	entries := l.Entries()
	if len(entries) != 2 || entries[0].Seq != 1 || entries[1].Seq != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	entries[0].Amount = 999 // mutating the copy must not affect the ledger
	if l.Entries()[0].Amount != 10 {
		t.Error("Entries exposed internal state")
	}
}

func TestRunSettlementFlow(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 100, "funding"); err != nil {
		t.Fatal(err)
	}
	s, err := l.OpenRun(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(Escrow); got != 60 {
		t.Errorf("escrow = %v, want 60", got)
	}
	if err := s.Pay("w1", 25, "t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pay("w2", 30, "t2"); err != nil {
		t.Fatal(err)
	}
	// Exceeding the budget must fail even though escrow technically has 5
	// left and the ledger more.
	if err := s.Pay("w3", 6, "t3"); err == nil {
		t.Error("over-budget payment accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(Escrow); !almostEqual(got, 0, 1e-9) {
		t.Errorf("escrow after close = %v, want 0", got)
	}
	if got := l.Balance(Requester); !almostEqual(got, 45, 1e-9) {
		t.Errorf("requester refund wrong: %v, want 45", got)
	}
	if got := s.Spent(); !almostEqual(got, 55, 1e-9) {
		t.Errorf("spent = %v, want 55", got)
	}
	if err := s.Close(); err == nil {
		t.Error("double close accepted")
	}
	if err := s.Pay("w1", 1, "t"); err == nil {
		t.Error("payment after close accepted")
	}
}

func TestOpenRunRequiresFunds(t *testing.T) {
	l := New()
	if _, err := l.OpenRun(1, 50); err == nil {
		t.Error("unfunded escrow accepted")
	}
}

// TestSettleAuctionOutcome: settling a real MELODY outcome through the
// ledger succeeds exactly because the mechanism is budget feasible.
func TestSettleAuctionOutcome(t *testing.T) {
	cfg := experiments.PaperSRA()
	mech, err := core.NewMelody(cfg.AuctionConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := cfg.Instance(stats.NewRNG(8), 120, 80, 300)
	out, err := mech.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Utility() == 0 {
		t.Fatal("trivial outcome; instance too small")
	}
	l := New()
	if _, err := l.Deposit(Requester, in.Budget, "funding"); err != nil {
		t.Fatal(err)
	}
	s, err := l.OpenRun(1, in.Budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out.Assignments {
		if err := s.Pay(Account(a.WorkerID), a.Payment, a.TaskID); err != nil {
			t.Fatalf("settlement failed on a budget-feasible outcome: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Spent(), out.TotalPayment, 1e-6) {
		t.Errorf("ledger spent %v != outcome payment %v", s.Spent(), out.TotalPayment)
	}
	var workerTotal float64
	for _, ab := range l.Accounts() {
		if ab.Account != Requester && ab.Account != Escrow {
			workerTotal += ab.Balance
		}
	}
	if !almostEqual(workerTotal, out.TotalPayment, 1e-6) {
		t.Errorf("worker balances %v != total payment %v", workerTotal, out.TotalPayment)
	}
}

func TestLedgerConcurrentTransfers(t *testing.T) {
	l := New()
	if _, err := l.Deposit(Requester, 10000, "funding"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			to := Account("w" + string(rune('0'+g)))
			for i := 0; i < 100; i++ {
				if _, err := l.Transfer(KindPayment, Requester, to, 1, "c"); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Balance(Requester); !almostEqual(got, 10000-800, 1e-9) {
		t.Errorf("requester balance = %v, want 9200", got)
	}
	if len(l.Entries()) != 801 {
		t.Errorf("entries = %d, want 801", len(l.Entries()))
	}
}
