package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetRun(1)
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 3)
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v", got)
	}
	if tr.Total() != 0 {
		t.Fatalf("nil tracer Total = %d", tr.Total())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Start(fmt.Sprintf("s%d", i))
		sp.End()
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sp.Name != want {
			t.Errorf("spans[%d].Name = %s, want %s (oldest first)", i, sp.Name, want)
		}
	}
}

func TestSpanAttrsAndDoubleEnd(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("wal.commit")
	sp.SetRun(3)
	sp.SetAttrInt("batch", 17)
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // second End must not record again
	if tr.Total() != 1 {
		t.Fatalf("Total = %d after double End, want 1", tr.Total())
	}
	got := tr.Spans()[0]
	if got.Run != 3 || got.Attrs["batch"] != "17" {
		t.Fatalf("span = %+v", got)
	}
	if got.DurationUS <= 0 {
		t.Fatalf("DurationUS = %d, want > 0", got.DurationUS)
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Name: "b", DurationUS: 10},
		{Name: "a", DurationUS: 4},
		{Name: "b", DurationUS: 30},
	}
	stats := Summarize(spans)
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Fatalf("stats = %+v", stats)
	}
	b := stats[1]
	if b.Count != 2 || b.TotalUS != 40 || b.MaxUS != 30 || b.MeanUS != 20 {
		t.Fatalf("b stats = %+v", b)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("melody_test_total", "help").Inc()
	tr := NewTracer(4)
	tr.Start("run.bidding").End()
	h := Handler(reg, tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics content type = %q", ct)
	}
	series, err := ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if series["melody_test_total"] != 1 {
		t.Fatalf("scraped series = %v", series)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces status = %d", rec.Code)
	}
	var resp TracesResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 1 || len(resp.Spans) != 1 || resp.Spans[0].Name != "run.bidding" {
		t.Fatalf("traces response = %+v", resp)
	}
}

func TestTracesHandlerEmptyIsNotNull(t *testing.T) {
	rec := httptest.NewRecorder()
	TracesHandler(NewTracer(4)).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(rec.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["spans"]) != "[]" {
		t.Fatalf("spans = %s, want []", raw["spans"])
	}
}
