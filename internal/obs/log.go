package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns the platform's shared slog configuration: a text handler
// on w at the given level. Components attach per-run / per-worker dimensions
// with logger.With("run", r) / .With("worker", id) so every line of one run
// carries the same keys.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// library components given a nil logger, so call sites never nil-check.
func NopLogger() *slog.Logger {
	return slog.New(nopHandler{})
}

// nopHandler discards all records without formatting them (cheaper than a
// text handler on io.Discard, and available before slog.DiscardHandler's Go
// version).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
