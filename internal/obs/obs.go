// Package obs is the platform's stdlib-only observability layer: a metrics
// registry (sharded atomic counters, gauges and fixed-bucket histograms with
// Prometheus text-format exposition), lightweight run-scoped trace spans
// recorded into a bounded in-memory ring, and shared log/slog helpers. Every
// serving-path subsystem — the WAL group-commit pipeline, the HTTP server and
// client, the chaos middleware, the auction and the EM re-estimator — takes an
// optional *Registry / *Tracer and stays zero-overhead when they are nil: all
// instrument methods are no-ops on nil receivers, so the disabled path costs
// one predictable branch.
//
// The exposition side is plain net/http: Handler mounts GET /metrics
// (Prometheus text format) and GET /debug/traces (the last N spans as JSON),
// and cmd/melody-platform serves it on the -metrics side listener (and on the
// -pprof listener when one is configured).
package obs

// Metric names, in one place so instrumentation, exposition checks and the
// DESIGN.md catalog cannot drift. Label conventions: a family has at most one
// label; values are low-cardinality identifiers (endpoint and fault names,
// never worker or task IDs).
const (
	// WAL group-commit pipeline (internal/eventlog).
	MetricWALAppendsTotal    = "melody_wal_appends_total"
	MetricWALCommitsTotal    = "melody_wal_commits_total"
	MetricWALCommitBatchSize = "melody_wal_commit_batch_size"
	MetricWALFsyncSeconds    = "melody_wal_fsync_seconds"

	// Segmented storage engine (internal/eventlog): segment lifecycle,
	// snapshot freshness, bounded recovery and replication progress.
	MetricWALSegmentsTotal           = "melody_wal_segments_total"
	MetricWALActiveSegmentBytes      = "melody_wal_active_segment_bytes"
	MetricWALSnapshotAgeSeconds      = "melody_wal_snapshot_age_seconds"
	MetricWALSnapshotsTotal          = "melody_wal_snapshots_total"
	MetricWALCompactedSegmentsTotal  = "melody_wal_compacted_segments_total"
	MetricWALRecoveryReplayedRecords = "melody_wal_recovery_replayed_records"
	MetricReplicaBytesTotal          = "melody_replica_bytes_total"
	MetricReplicaLagBytes            = "melody_replica_lag_bytes"

	// HTTP serving path (internal/platform server), labelled by endpoint.
	MetricHTTPRequestsTotal  = "melody_http_requests_total"
	MetricHTTPErrorsTotal    = "melody_http_errors_total"
	MetricHTTPRequestSeconds = "melody_http_request_seconds"

	// Admission control (internal/platform server), labelled by endpoint
	// where a label makes sense. Queue depth counts requests waiting for an
	// ingest slot; shed requests were answered 429 without touching the
	// backend.
	MetricAdmissionShedTotal        = "melody_admission_shed_total"
	MetricAdmissionRateLimitedTotal = "melody_admission_rate_limited_total"
	MetricAdmissionQueueDepth       = "melody_admission_queue_depth"
	MetricAdmissionInFlight         = "melody_admission_in_flight"

	// Retrying client (internal/platform client).
	MetricClientRequestsTotal = "melody_client_requests_total"
	MetricClientRetriesTotal  = "melody_client_retries_total"
	MetricClientWindow        = "melody_client_concurrency_window"

	// Chaos middleware (internal/chaos), labelled by fault.
	MetricChaosInjectedTotal = "melody_chaos_injected_total"

	// Auction mechanism (internal/core via the melody facade).
	MetricAuctionDurationSeconds = "melody_auction_duration_seconds"
	MetricAuctionWinners         = "melody_auction_winners"
	MetricAuctionSpentBudget     = "melody_auction_spent_budget"
	MetricRunsCompletedTotal     = "melody_runs_completed_total"

	// Incremental auction cache (core.AuctionState).
	MetricAuctionIncrementalRepairsTotal = "melody_auction_incremental_repairs_total"
	MetricAuctionFullRebuildsTotal       = "melody_auction_full_rebuilds_total"
	MetricAuctionCacheChurnRatio         = "melody_auction_cache_churn_ratio"

	// EM re-estimation (internal/quality).
	MetricEMReestimateSeconds = "melody_em_reestimate_seconds"
	MetricEMRunsTotal         = "melody_em_runs_total"
	MetricEMLogLikelihood     = "melody_em_log_likelihood"
)

// RegisterBaseline pre-registers the platform's standard metric families so
// an exposition endpoint advertises the full catalog (with zero values) from
// boot, before any traffic has touched a subsystem. Instrumented components
// re-register the same families idempotently and share the handles.
func RegisterBaseline(r *Registry) {
	if r == nil {
		return
	}
	r.Counter(MetricWALAppendsTotal, "Durable WAL appends accepted.")
	r.Counter(MetricWALCommitsTotal, "WAL group commits (one write+fsync each).")
	r.Histogram(MetricWALCommitBatchSize, "Records per WAL group commit.", BatchBuckets())
	r.Histogram(MetricWALFsyncSeconds, "Wall time of one WAL write+fsync batch.", TimeBuckets())
	r.Counter(MetricWALSegmentsTotal, "WAL segments created (including the first of each boot).")
	r.Gauge(MetricWALActiveSegmentBytes, "Bytes written to the active WAL segment.")
	r.Gauge(MetricWALSnapshotAgeSeconds, "Seconds since the newest state snapshot, updated on storage-engine activity.")
	r.Counter(MetricWALSnapshotsTotal, "State snapshots written.")
	r.Counter(MetricWALCompactedSegmentsTotal, "WAL segments dropped by compaction.")
	r.Gauge(MetricWALRecoveryReplayedRecords, "Records replayed by the most recent recovery.")
	r.Counter(MetricReplicaBytesTotal, "Bytes streamed to this replica from its primary.")
	r.Gauge(MetricReplicaLagBytes, "Durable bytes the primary holds that this replica has not yet acked.")
	r.CounterVec(MetricHTTPRequestsTotal, "HTTP requests served, by endpoint.", "endpoint")
	r.CounterVec(MetricHTTPErrorsTotal, "HTTP requests answered with a non-2xx status, by endpoint.", "endpoint")
	r.HistogramVec(MetricHTTPRequestSeconds, "HTTP request handling time, by endpoint.", "endpoint", TimeBuckets())
	r.CounterVec(MetricAdmissionShedTotal, "Requests shed with 429 by admission control, by endpoint.", "endpoint")
	r.Counter(MetricAdmissionRateLimitedTotal, "Requests shed because a tenant exhausted its rate budget.")
	r.Gauge(MetricAdmissionQueueDepth, "Ingest requests currently queued for an admission slot.")
	r.Gauge(MetricAdmissionInFlight, "Ingest requests currently holding an admission slot.")
	r.Counter(MetricClientRequestsTotal, "Client request attempts issued.")
	r.Counter(MetricClientRetriesTotal, "Client attempts that were retries of a failed attempt.")
	r.Gauge(MetricClientWindow, "Adaptive client concurrency window (floor of the AIMD window).")
	r.CounterVec(MetricChaosInjectedTotal, "Faults injected by the chaos layer, by fault kind.", "fault")
	r.Histogram(MetricAuctionDurationSeconds, "Wall time of one auction mechanism run.", TimeBuckets())
	r.Gauge(MetricAuctionWinners, "Distinct winning workers in the latest auction.")
	r.Gauge(MetricAuctionSpentBudget, "Total payment committed by the latest auction.")
	r.Counter(MetricRunsCompletedTotal, "Completed platform runs.")
	r.Counter(MetricAuctionIncrementalRepairsTotal, "Auction cache deltas applied by local repair.")
	r.Counter(MetricAuctionFullRebuildsTotal, "Auction cache deltas applied by full rebuild.")
	r.Gauge(MetricAuctionCacheChurnRatio, "Registry fraction mutated by the latest delta.")
	r.Histogram(MetricEMReestimateSeconds, "Wall time of one per-worker EM re-estimation.", TimeBuckets())
	r.Counter(MetricEMRunsTotal, "EM re-estimations performed.")
	r.Gauge(MetricEMLogLikelihood, "Final log marginal likelihood of the latest EM re-estimation.")
}
