package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Registry holds named metric families and renders them in Prometheus text
// format. All methods are safe for concurrent use, and every method is a
// no-op on a nil *Registry: handles fetched from a nil registry are nil, and
// nil handles discard their updates, so instrumented hot paths pay one
// branch when observability is disabled.
//
// Registration is idempotent: fetching an already-registered family returns
// the same handles, so independent subsystems can share a family by name.
// Re-registering a name with a different kind, label or bucket layout is a
// programming error and panics.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family; unlabelled families keep a single child
// under the empty label value.
type family struct {
	name    string
	help    string
	kind    metricKind
	label   string // label key; "" for unlabelled families
	buckets []float64

	mu       sync.RWMutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram
	ordered  []string       // label values in first-registration order
}

// lookup returns (creating if needed) the family, enforcing a consistent
// shape across registrations.
func (r *Registry) lookup(name, help string, kind metricKind, label string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name: name, help: help, kind: kind, label: label,
				buckets:  append([]float64(nil), buckets...),
				children: make(map[string]any),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || f.label != label || len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s(label=%q), was %s(label=%q)",
			name, kind, label, f.kind, f.label))
	}
	return f
}

// child returns (creating if needed) the family's metric for a label value.
func (f *family) child(value string) any {
	f.mu.RLock()
	m := f.children[value]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.children[value]; m != nil {
		return m
	}
	switch f.kind {
	case kindCounter:
		m = new(Counter)
	case kindGauge:
		m = new(Gauge)
	default:
		m = newHistogram(f.buckets)
	}
	f.children[value] = m
	f.ordered = append(f.ordered, value)
	return m
}

// Counter returns the unlabelled counter family's single counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, "", nil).child("").(*Counter)
}

// Gauge returns the unlabelled gauge family's single gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, "", nil).child("").(*Gauge)
}

// Histogram returns the unlabelled histogram family's single histogram.
// buckets are the upper bounds (le) of the finite buckets, ascending; a
// +Inf overflow bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, "", buckets).child("").(*Histogram)
}

// CounterVec returns a counter family labelled by one key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, label, nil)}
}

// HistogramVec returns a histogram family labelled by one key.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, label, buckets)}
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// With returns the counter for a label value.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(value).(*Counter)
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// With returns the histogram for a label value.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(value).(*Histogram)
}

// counterShards stripes a counter across cache lines so concurrent writers
// (the group-commit pipeline, GOMAXPROCS HTTP handlers) do not serialize on
// one contended word. Must be a power of two.
const counterShards = 16

type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// shardIndex spreads concurrent writers across shards using the goroutine's
// stack page address — stable within a goroutine, distinct across them —
// without any per-call allocation or locking.
func shardIndex() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe))>>12) & (counterShards - 1)
}

// Counter is a monotonically increasing sharded atomic counter. Nil
// counters discard updates.
type Counter struct {
	shards [counterShards]counterShard
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Value returns the counter's current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is an atomic float64 instantaneous value. Nil gauges discard
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency/size histogram: counts per le bucket
// plus a running sum, all atomic. Nil histograms discard observations.
type Histogram struct {
	upper  []float64 // ascending finite upper bounds
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest bucket whose upper bound covers v (le semantics); past the
	// last finite bound lands in the +Inf overflow slot.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	// Upper are the finite bucket upper bounds; Cumulative[i] counts
	// observations <= Upper[i]. Cumulative has one extra entry: the +Inf
	// bucket, equal to Count.
	Upper      []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Upper:      append([]float64(nil), h.upper...),
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        math.Float64frombits(h.sum.Load()),
	}
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		s.Cumulative[i] = running
	}
	s.Count = running
	return s
}

// TimeBuckets returns the standard latency bucket layout (seconds), spanning
// 100 microseconds to 10 seconds.
func TimeBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// BatchBuckets returns the standard batch-size bucket layout: powers of two
// up to the wire protocol's 4096-item batch limit.
func BatchBuckets() []float64 {
	b := make([]float64, 0, 13)
	for v := 1.0; v <= 4096; v *= 2 {
		b = append(b, v)
	}
	return b
}

// LinearBuckets returns n buckets starting at start, width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n buckets starting at start, growing by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// WritePrometheus renders every family in Prometheus text exposition format,
// families sorted by name and series by label value, so the output is stable
// for golden tests and scrape diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeTo(b *strings.Builder) {
	f.mu.RLock()
	values := append([]string(nil), f.ordered...)
	f.mu.RUnlock()
	sort.Strings(values)

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, value := range values {
		f.mu.RLock()
		m := f.children[value]
		f.mu.RUnlock()
		switch f.kind {
		case kindCounter:
			writeSeries(b, f.name, f.label, value, "", float64(m.(*Counter).Value()))
		case kindGauge:
			writeSeries(b, f.name, f.label, value, "", m.(*Gauge).Value())
		default:
			s := m.(*Histogram).Snapshot()
			for i, upper := range s.Upper {
				writeSeries(b, f.name+"_bucket", f.label, value,
					formatFloat(upper), float64(s.Cumulative[i]))
			}
			writeSeries(b, f.name+"_bucket", f.label, value, "+Inf", float64(s.Count))
			writeSeries(b, f.name+"_sum", f.label, value, "", s.Sum)
			writeSeries(b, f.name+"_count", f.label, value, "", float64(s.Count))
		}
	}
}

// writeSeries emits one sample line, assembling the label set from the
// family label (optional) and the histogram le bound (optional).
func writeSeries(b *strings.Builder, name, label, value, le string, v float64) {
	b.WriteString(name)
	if label != "" || le != "" {
		b.WriteByte('{')
		sep := ""
		if label != "" {
			fmt.Fprintf(b, "%s=%q", label, escapeLabel(value))
			sep = ","
		}
		if le != "" {
			fmt.Fprintf(b, "%sle=%q", sep, le)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// ParseText parses Prometheus text exposition into a flat series map keyed
// exactly as written (name plus any label set, e.g.
// `melody_http_requests_total{endpoint="bid_batch"}`). It understands the
// subset WritePrometheus emits, which is what the smoke checks and loadgen
// verification need.
func ParseText(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: malformed value in %q: %w", line, err)
		}
		series[line[:sp]] = v
	}
	return series, nil
}

// FamilyPresent reports whether any series of the named family appears in a
// ParseText result (histogram families appear via their _bucket/_sum/_count
// series).
func FamilyPresent(series map[string]float64, name string) bool {
	for key := range series {
		base := key
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base == name || base == name+"_bucket" || base == name+"_sum" || base == name+"_count" {
			return true
		}
	}
	return false
}
