package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives one registry from GOMAXPROCS goroutines
// mixing registration, writes and exposition; run under -race this is the
// package's thread-safety proof, and the final tallies check that no
// increment is lost by the sharded counters.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const iters = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_depth", "")
			h := r.Histogram("hammer_seconds", "", TimeBuckets())
			v := r.CounterVec("hammer_by_endpoint_total", "", "endpoint")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				v.With([]string{"bid", "score", "open"}[i%3]).Inc()
				sp := tr.Start("hammer")
				sp.SetAttrInt("i", int64(i))
				sp.End()
				if i%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
					_ = tr.Spans()
				}
			}
		}()
	}
	wg.Wait()

	want := int64(workers * iters)
	if got := r.Counter("hammer_total", "").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("hammer_depth", "").Value(); got != float64(want) {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := r.Histogram("hammer_seconds", "", TimeBuckets()).Snapshot().Count; got != uint64(want) {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var vecSum int64
	for _, ep := range []string{"bid", "score", "open"} {
		vecSum += r.CounterVec("hammer_by_endpoint_total", "", "endpoint").With(ep).Value()
	}
	if vecSum != want {
		t.Errorf("vec sum = %d, want %d", vecSum, want)
	}
	if tr.Total() != uint64(want) {
		t.Errorf("tracer total = %d, want %d", tr.Total(), want)
	}
}
