package obs

import (
	"encoding/json"
	"net/http"
)

// TracesResponse is the body of GET /debug/traces.
type TracesResponse struct {
	// Total counts every span ever recorded; Spans holds the retained tail,
	// oldest first.
	Total uint64 `json:"total"`
	Spans []Span `json:"spans"`
}

// Handler mounts the exposition endpoints: GET /metrics (Prometheus text
// format) and GET /debug/traces (the retained spans as JSON). Either
// argument may be nil; its endpoint then serves an empty document.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /debug/traces", TracesHandler(tr))
	return mux
}

// MetricsHandler serves the registry in Prometheus text format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// TracesHandler serves the tracer's retained spans as JSON.
func TracesHandler(tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		resp := TracesResponse{Total: tr.Total(), Spans: tr.Spans()}
		if resp.Spans == nil {
			resp.Spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
}
