package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one completed trace span: a named, run-scoped interval with
// low-cardinality string attributes. Spans are recorded into the Tracer's
// bounded ring when they end and exposed as JSON at /debug/traces.
type Span struct {
	// Name identifies the operation (e.g. "run.bidding", "wal.commit",
	// "em.reestimate", "client.retry").
	Name string `json:"name"`
	// Run is the 1-based run index the span belongs to; 0 when the span is
	// not tied to a run.
	Run int `json:"run,omitempty"`
	// Attrs carries extra dimensions (batch size, worker count, endpoint).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// DurationUS is the span's length in microseconds.
	DurationUS int64 `json:"duration_us"`
}

// Tracer records completed spans into a fixed-capacity in-memory ring: the
// last Capacity spans are retained, older ones are overwritten. A nil
// *Tracer discards everything, so instrumented paths stay zero-overhead
// when tracing is disabled.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// DefaultTraceCapacity bounds the ring when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 512

// NewTracer returns a tracer retaining the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// ActiveSpan is an in-flight span; End records it. Nil active spans (from a
// nil tracer) discard every call.
type ActiveSpan struct {
	tr    *Tracer
	span  Span
	ended bool
}

// Start opens a span now. Attach dimensions with SetAttr/SetRun before End.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{tr: t, span: Span{Name: name, Start: time.Now()}}
}

// SetRun tags the span with a run index.
func (s *ActiveSpan) SetRun(run int) {
	if s == nil {
		return
	}
	s.span.Run = run
}

// SetAttr attaches one string attribute.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = value
}

// SetAttrInt attaches one integer attribute.
func (s *ActiveSpan) SetAttrInt(key string, value int64) {
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End closes the span and records it. Ending twice records once.
func (s *ActiveSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.span.DurationUS = time.Since(s.span.Start).Microseconds()
	s.tr.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns how many spans have been recorded over the tracer's
// lifetime, including those already evicted from the ring.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// SpanStat aggregates the retained spans of one name.
type SpanStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalUS int64   `json:"total_us"`
	MaxUS   int64   `json:"max_us"`
	MeanUS  float64 `json:"mean_us"`
}

// Summarize groups the retained spans by name, sorted by name — the view
// cmd/melody-load prints after a run.
func Summarize(spans []Span) []SpanStat {
	byName := make(map[string]*SpanStat)
	for _, sp := range spans {
		st := byName[sp.Name]
		if st == nil {
			st = &SpanStat{Name: sp.Name}
			byName[sp.Name] = st
		}
		st.Count++
		st.TotalUS += sp.DurationUS
		if sp.DurationUS > st.MaxUS {
			st.MaxUS = sp.DurationUS
		}
	}
	out := make([]SpanStat, 0, len(byName))
	for _, st := range byName {
		st.MeanUS = float64(st.TotalUS) / float64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
