package obs

import (
	"math"
	"strings"
	"testing"
)

func TestNilRegistryAndHandlesAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d", got)
	}
	g := r.Gauge("g", "")
	g.Set(3)
	g.Add(1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %v", got)
	}
	h := r.Histogram("h", "", TimeBuckets())
	h.Observe(0.5)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram Count = %d", s.Count)
	}
	r.CounterVec("cv", "", "k").With("v").Inc()
	r.HistogramVec("hv", "", "k", TimeBuckets()).With("v").Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus = %q, %v", b.String(), err)
	}
	RegisterBaseline(nil) // must not panic
}

func TestCounterAccumulates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests", "total requests")
	for i := 0; i < 100; i++ {
		c.Inc()
	}
	c.Add(11)
	if got := c.Value(); got != 111 {
		t.Fatalf("Value = %d, want 111", got)
	}
	// Idempotent registration shares the handle.
	if again := r.Counter("requests", "total requests"); again.Value() != 111 {
		t.Fatalf("re-registered counter lost state: %d", again.Value())
	}
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewRegistry().Gauge("depth", "")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("Value = %v, want 2", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to an
// upper bound lands in that bucket, a value just above it in the next, and
// values beyond the last finite bound in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.01, 0.010000001, 0.1, 1, 1.5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	wantCumulative := []uint64{1, 3, 4, 5} // le=0.01, le=0.1, le=1, +Inf
	for i, want := range wantCumulative {
		if s.Cumulative[i] != want {
			t.Errorf("Cumulative[%d] = %d, want %d", i, s.Cumulative[i], want)
		}
	}
	wantSum := 0.01 + 0.010000001 + 0.1 + 1 + 1.5
	if math.Abs(s.Sum-wantSum) > 1e-12 {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramBelowFirstBucket(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", []float64{1, 2})
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Cumulative[0] != 2 {
		t.Fatalf("first bucket = %d, want 2 (values at or below the bound)", s.Cumulative[0])
	}
}

func TestMismatchedReRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	bb := BatchBuckets()
	if bb[0] != 1 || bb[len(bb)-1] != 4096 {
		t.Fatalf("BatchBuckets = %v", bb)
	}
}

// TestExpositionGolden pins the exposition format byte for byte: Prometheus
// text parsers are strict about HELP/TYPE lines, label quoting and the +Inf
// bucket, so any drift here is a wire-format break.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("melody_test_total", "A test counter.").Add(3)
	r.Gauge("melody_test_depth", "A test gauge.").Set(1.5)
	h := r.Histogram("melody_test_seconds", "A test histogram.", []float64{0.1, 2.5})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(7)
	v := r.CounterVec("melody_test_by_endpoint_total", "A labelled counter.", "endpoint")
	v.With("bid").Add(2)
	v.With("score").Inc()

	const want = `# HELP melody_test_by_endpoint_total A labelled counter.
# TYPE melody_test_by_endpoint_total counter
melody_test_by_endpoint_total{endpoint="bid"} 2
melody_test_by_endpoint_total{endpoint="score"} 1
# HELP melody_test_depth A test gauge.
# TYPE melody_test_depth gauge
melody_test_depth 1.5
# HELP melody_test_seconds A test histogram.
# TYPE melody_test_seconds histogram
melody_test_seconds_bucket{le="0.1"} 2
melody_test_seconds_bucket{le="2.5"} 2
melody_test_seconds_bucket{le="+Inf"} 3
melody_test_seconds_sum 7.1
melody_test_seconds_count 3
# HELP melody_test_total A test counter.
# TYPE melody_test_total counter
melody_test_total 3
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionParsesBack round-trips the text format through ParseText,
// the parser the loadgen verification and obs-smoke scrape use.
func TestExpositionParsesBack(t *testing.T) {
	r := NewRegistry()
	RegisterBaseline(r)
	r.CounterVec(MetricHTTPRequestsTotal, "", "endpoint").With("bid_batch").Add(42)
	r.Histogram(MetricWALFsyncSeconds, "", TimeBuckets()).Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	series, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := series[MetricHTTPRequestsTotal+`{endpoint="bid_batch"}`]; got != 42 {
		t.Errorf("parsed requests counter = %v, want 42", got)
	}
	if got := series[MetricWALFsyncSeconds+"_count"]; got != 1 {
		t.Errorf("parsed fsync count = %v, want 1", got)
	}
	for _, fam := range []string{
		MetricWALCommitBatchSize, MetricWALFsyncSeconds, MetricHTTPRequestsTotal,
		MetricClientRetriesTotal, MetricAuctionDurationSeconds, MetricEMReestimateSeconds,
	} {
		if !FamilyPresent(series, fam) {
			t.Errorf("baseline family %s missing from exposition", fam)
		}
	}
	if FamilyPresent(series, "melody_nonexistent") {
		t.Error("FamilyPresent reported a family that was never registered")
	}
}
