package eventlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "platform.log")
}

func TestAppendAndReadAll(t *testing.T) {
	path := tempLog(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Kind: KindRegister, Worker: "w1"},
		{Kind: KindOpenRun, Tasks: []TaskRecord{{ID: "t1", Threshold: 5}}, Budget: 10},
		{Kind: KindBid, Worker: "w1", Cost: 1.5, Frequency: 2},
		{Kind: KindClose},
		{Kind: KindScore, Worker: "w1", Task: "t1", Score: 7},
		{Kind: KindFinish},
	}
	for i, e := range events {
		seq, err := log.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if seq != int64(i+1) {
			t.Errorf("seq = %d, want %d", seq, i+1)
		}
	}
	if log.Seq() != 6 {
		t.Errorf("Seq = %d, want 6", log.Seq())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i, e := range got {
		if e.Kind != events[i].Kind {
			t.Errorf("event %d kind %q, want %q", i, e.Kind, events[i].Kind)
		}
	}
	if got[2].Cost != 1.5 || got[2].Frequency != 2 {
		t.Errorf("bid payload lost: %+v", got[2])
	}
	if got[1].Tasks[0].Threshold != 5 || got[1].Budget != 10 {
		t.Errorf("open_run payload lost: %+v", got[1])
	}
}

func TestAppendValidation(t *testing.T) {
	log, err := Open(tempLog(t), false)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	bad := []Event{
		{Kind: KindRegister},                 // no worker
		{Kind: KindOpenRun},                  // no tasks
		{Kind: KindBid},                      // no worker
		{Kind: KindScore, Worker: "w"},       // no task
		{Kind: Kind("mystery"), Worker: "w"}, // unknown kind
	}
	for i, e := range bad {
		if _, err := log.Append(e); err == nil {
			t.Errorf("case %d: invalid event accepted", i)
		}
	}
	if log.Seq() != 0 {
		t.Errorf("failed appends advanced seq to %d", log.Seq())
	}
}

func TestOpenResumesSequence(t *testing.T) {
	path := tempLog(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(Event{Kind: KindRegister, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := reopened.Append(Event{Kind: KindRegister, Worker: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Errorf("resumed seq = %d, want 2", seq)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Worker != "w2" {
		t.Errorf("events = %+v", events)
	}
}

func TestReadAllToleratesTornFinalWrite(t *testing.T) {
	path := tempLog(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(Event{Kind: KindRegister, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial JSON line without newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"kind":"regi`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	events, err := ReadAll(path)
	if err != nil {
		t.Fatalf("torn final write should be tolerated: %v", err)
	}
	if len(events) != 1 {
		t.Errorf("got %d events, want 1", len(events))
	}
}

func TestReadAllRejectsMidLogCorruption(t *testing.T) {
	path := tempLog(t)
	content := `{"seq":1,"kind":"register","worker":"w1"}` + "\n" +
		"GARBAGE LINE\n" +
		`{"seq":3,"kind":"register","worker":"w3"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(path); err == nil {
		t.Error("mid-log corruption accepted")
	}
}

func TestReadAllRejectsSequenceGap(t *testing.T) {
	path := tempLog(t)
	content := `{"seq":1,"kind":"register","worker":"w1"}` + "\n" +
		`{"seq":3,"kind":"register","worker":"w3"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(path); err == nil {
		t.Error("sequence gap accepted")
	}
}

func TestReadAllMissingFile(t *testing.T) {
	_, err := ReadAll(filepath.Join(t.TempDir(), "nope.log"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v", err)
	}
}
