package eventlog

// Tests for the context-aware durability waits introduced with the
// ctx-first API: a cancelled wait returns promptly with the context error,
// but never un-appends the record — the write still reaches disk and
// replays (the "unknown outcome" semantics of a lost response, which the
// idempotent protocol makes safe to retry).

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAppendAsyncWaitHonorsCancelledContext: the wait returned by
// AppendAsync selects on ctx and unblocks with ctx.Err() when cancelled,
// while the record itself stays in the log and replays after Close.
func TestAppendAsyncWaitHonorsCancelledContext(t *testing.T) {
	target := &countingTarget{syncDelay: 50 * time.Millisecond}
	log := newLog(target, 0, Options{SyncEveryAppend: true})

	_, wait, err := log.AppendAsync(Event{Kind: KindRegister, Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	werr := wait(ctx)
	if werr != nil && !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled wait = %v, want nil (already durable) or context.Canceled", werr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled wait blocked for %v", elapsed)
	}

	// The abandoned record still commits: a background-ctx wait on a fresh
	// append (strictly later in the sequence) confirms both are durable.
	_, wait2, err := log.AppendAsync(Event{Kind: KindRegister, Worker: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := wait2(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendAsyncAbandonedRecordReplays: an append whose wait was abandoned
// is still on disk after Close and replays with its sequence intact.
func TestAppendAsyncAbandonedRecordReplays(t *testing.T) {
	path := tempLog(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	_, wait, err := log.AppendAsync(Event{Kind: KindRegister, Worker: "abandoned"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = wait(ctx) // abandon the wait; outcome is unknown to the caller
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Worker != "abandoned" {
		t.Fatalf("replayed %v, want the abandoned record", events)
	}
}

// TestRecorderContextCancellation: a recorder mutation with an
// already-cancelled context fails without reaching the platform.
func TestRecorderContextCancellation(t *testing.T) {
	pp, wal, err := OpenPersistent(tempLog(t), newPlatform(t))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pp.RegisterWorker(ctx, "w1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RegisterWorker with cancelled ctx = %v, want context.Canceled", err)
	}
	if got := pp.Workers(); len(got) != 0 {
		t.Fatalf("cancelled RegisterWorker still applied: %v", got)
	}
}
