package eventlog

// Tests for the group-commit pipeline: concurrent appends coalesce into
// shared fsyncs without changing the on-disk format, failure semantics are
// uniform across the write/flush/fsync branches (sticky ErrFailed), and a
// steady-state append allocates nothing.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingTarget is an in-memory commitTarget with injectable faults and
// an optional per-fsync delay (to model real disk latency).
type countingTarget struct {
	syncDelay time.Duration

	mu        sync.Mutex
	data      []byte
	writes    int
	syncs     int
	failWrite error
	failSync  error
}

func (t *countingTarget) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failWrite != nil {
		return 0, t.failWrite
	}
	t.writes++
	t.data = append(t.data, p...)
	return len(p), nil
}

func (t *countingTarget) Sync() error {
	if t.syncDelay > 0 {
		time.Sleep(t.syncDelay)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failSync != nil {
		return t.failSync
	}
	t.syncs++
	return nil
}

func (t *countingTarget) Close() error { return nil }

func (t *countingTarget) stats() (writes, syncs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writes, t.syncs
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	const goroutines, perG = 16, 25
	path := tempLog(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				worker := fmt.Sprintf("w%d-%d", g, i)
				if _, err := log.Append(Event{Kind: KindRegister, Worker: worker}); err != nil {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d concurrent appends failed", n)
	}
	if got := log.Seq(); got != goroutines*perG {
		t.Errorf("Seq = %d, want %d", got, goroutines*perG)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The existing replay machinery (JSON lines, contiguous sequence, CRC
	// verification) must accept the group-committed log unchanged.
	events, err := ReadAll(path)
	if err != nil {
		t.Fatalf("replay of group-committed log: %v", err)
	}
	if len(events) != goroutines*perG {
		t.Fatalf("replayed %d events, want %d", len(events), goroutines*perG)
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
}

// TestGroupCommitCoalescesFsyncs pins the point of the pipeline: far fewer
// fsyncs than appends under concurrency.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	const appends = 200
	// A 1ms fsync models disk latency; while one commit is in flight, the
	// other appenders accumulate into the next batch.
	target := &countingTarget{syncDelay: time.Millisecond}
	log := newLog(target, 0, Options{SyncEveryAppend: true})
	var wg sync.WaitGroup
	for i := 0; i < appends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := log.Append(Event{Kind: KindRegister, Worker: fmt.Sprintf("w%d", i)}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	_, syncs := target.stats()
	if syncs >= appends {
		t.Errorf("group commit issued %d fsyncs for %d appends; expected coalescing", syncs, appends)
	}
	if syncs == 0 {
		t.Error("no fsync ever issued on a durable log")
	}
}

// TestSerialCommitBaseline pins the baseline mode: exactly one fsync per
// append, same on-disk format.
func TestSerialCommitBaseline(t *testing.T) {
	target := &countingTarget{}
	log := newLog(target, 0, Options{SyncEveryAppend: true, SerialCommit: true})
	for i := 0; i < 5; i++ {
		if _, err := log.Append(Event{Kind: KindRegister, Worker: fmt.Sprintf("w%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	writes, syncs := target.stats()
	if writes != 5 || syncs != 5 {
		t.Errorf("serial mode did %d writes, %d syncs for 5 appends; want 5 and 5", writes, syncs)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendFormatByteIdentical verifies that the pipeline's encoder emits
// exactly json.Marshal(event) + '\n' with the CRC populated — the format
// the seed's serial path wrote and the replay corpus depends on.
func TestAppendFormatByteIdentical(t *testing.T) {
	events := []Event{
		{Kind: KindRegister, Worker: "w1"},
		{Kind: KindOpenRun, Tasks: []TaskRecord{{ID: "t<&>", Threshold: 5}}, Budget: 10},
		{Kind: KindBid, Worker: "w1", Cost: 1.5, Frequency: 2},
		{Kind: KindClose},
		{Kind: KindScore, Worker: "w1", Task: "t<&>", Score: 7},
		{Kind: KindFinish},
	}
	var want []byte
	for i, e := range events {
		e.Seq = int64(i + 1)
		want = append(want, mustLine(t, e)...)
	}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"group", Options{SyncEveryAppend: true}},
		{"serial", Options{SyncEveryAppend: true, SerialCommit: true}},
		{"buffered", Options{}},
	} {
		target := &countingTarget{}
		log := newLog(target, 0, mode.opts)
		for _, e := range events {
			if _, err := log.Append(e); err != nil {
				t.Fatalf("%s: %v", mode.name, err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatalf("%s: close: %v", mode.name, err)
		}
		if string(target.data) != string(want) {
			t.Errorf("%s mode bytes differ from canonical format:\n got %q\nwant %q",
				mode.name, target.data, want)
		}
	}
}

// TestAppendFailureSemantics pins the uniform error contract: any write or
// fsync failure poisons the log — the failing append reports it, every
// later append returns ErrFailed, and the sequence number is not reused
// (the record may be partially on disk; only a reopen re-establishes a
// clean tail).
func TestAppendFailureSemantics(t *testing.T) {
	cases := []struct {
		name   string
		opts   Options
		inject func(*countingTarget)
	}{
		{"group/write", Options{SyncEveryAppend: true},
			func(ct *countingTarget) { ct.failWrite = errors.New("disk gone") }},
		{"group/fsync", Options{SyncEveryAppend: true},
			func(ct *countingTarget) { ct.failSync = errors.New("fsync eio") }},
		{"serial/write", Options{SyncEveryAppend: true, SerialCommit: true},
			func(ct *countingTarget) { ct.failWrite = errors.New("disk gone") }},
		{"serial/fsync", Options{SyncEveryAppend: true, SerialCommit: true},
			func(ct *countingTarget) { ct.failSync = errors.New("fsync eio") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			target := &countingTarget{}
			log := newLog(target, 0, tc.opts)
			if _, err := log.Append(Event{Kind: KindRegister, Worker: "ok"}); err != nil {
				t.Fatal(err)
			}
			tc.inject(target)
			target.mu.Lock()
			target.mu.Unlock()
			if _, err := log.Append(Event{Kind: KindRegister, Worker: "boom"}); !errors.Is(err, ErrFailed) {
				t.Fatalf("failing append error = %v, want ErrFailed", err)
			}
			seqAfterFailure := log.Seq()
			if seqAfterFailure != 2 {
				t.Errorf("failed append's seq was rolled back to %d; the record may be on disk", seqAfterFailure)
			}
			if _, err := log.Append(Event{Kind: KindRegister, Worker: "after"}); !errors.Is(err, ErrFailed) {
				t.Errorf("append after failure error = %v, want sticky ErrFailed", err)
			}
			if got := log.Seq(); got != seqAfterFailure {
				t.Errorf("poisoned log advanced seq to %d", got)
			}
			if err := log.Close(); !errors.Is(err, ErrFailed) {
				t.Errorf("Close of failed log = %v, want ErrFailed", err)
			}
		})
	}
}

// TestBufferedWriteFailurePoisons covers the non-durable branch of the same
// contract.
func TestBufferedWriteFailurePoisons(t *testing.T) {
	target := &countingTarget{failWrite: errors.New("disk gone")}
	log := newLog(target, 0, Options{})
	// bufio absorbs small writes; fill past its buffer to force the fault.
	long := make([]byte, 5000)
	for i := range long {
		long[i] = 'x'
	}
	var sawErr bool
	for i := 0; i < 10 && !sawErr; i++ {
		_, err := log.Append(Event{Kind: KindRegister, Worker: string(long)})
		sawErr = err != nil
		if err != nil && !errors.Is(err, ErrFailed) {
			t.Fatalf("buffered write failure = %v, want ErrFailed", err)
		}
	}
	if !sawErr {
		t.Fatal("write fault never surfaced")
	}
	if _, err := log.Append(Event{Kind: KindRegister, Worker: "after"}); !errors.Is(err, ErrFailed) {
		t.Errorf("append after buffered failure = %v, want sticky ErrFailed", err)
	}
}

// TestAppendClosedLog pins ErrClosed.
func TestAppendClosedLog(t *testing.T) {
	log, err := Open(tempLog(t), true)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(Event{Kind: KindRegister, Worker: "w"}); !errors.Is(err, ErrClosed) {
		t.Errorf("append to closed log = %v, want ErrClosed", err)
	}
	if err := log.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// discardTarget swallows everything, for allocation measurement.
type discardTarget struct{}

func (discardTarget) Write(p []byte) (int, error) { return len(p), nil }
func (discardTarget) Sync() error                 { return nil }
func (discardTarget) Close() error                { return nil }

var _ io.Writer = discardTarget{}
