//go:build !race

package eventlog

// The race detector's instrumentation adds allocations of its own, so the
// zero-alloc pin lives behind !race.

import "testing"

// TestAppendSteadyStateAllocs pins the scratch-buffer reuse: after warmup,
// a buffered append allocates nothing (the encoder state is pooled by
// encoding/json, the record buffers are owned by the Log).
func TestAppendSteadyStateAllocs(t *testing.T) {
	log := newLog(discardTarget{}, 0, Options{})
	ev := Event{Kind: KindBid, Worker: "worker-123", Cost: 1.25, Frequency: 3}
	// Warm the encoder pools and the pending buffer.
	for i := 0; i < 100; i++ {
		if _, err := log.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := log.Append(ev); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Append allocates %.1f times per op, want 0", allocs)
	}
}
