package eventlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSegmentHeaderRoundTrip(t *testing.T) {
	line, err := EncodeSegmentHeader(SegmentHeader{Base: 42, PrevCRC: 0xdeadbeef})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatal("encoded header is not newline-terminated")
	}
	h, err := DecodeSegmentHeader(line)
	if err != nil {
		t.Fatal(err)
	}
	if h.Magic != SegmentMagic || h.Version != 1 || h.Base != 42 || h.PrevCRC != 0xdeadbeef {
		t.Errorf("round-trip lost fields: %+v", h)
	}
}

func TestSegmentHeaderDecodeRejects(t *testing.T) {
	good, err := EncodeSegmentHeader(SegmentHeader{Base: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"not json":      []byte("nope\n"),
		"wrong magic":   []byte(`{"magic":"other","version":1,"base":1,"crc":1}` + "\n"),
		"zero base":     []byte(`{"magic":"melodyseg","version":1,"base":0,"crc":1}` + "\n"),
		"bad version":   []byte(`{"magic":"melodyseg","version":9,"base":1,"crc":1}` + "\n"),
		"flipped bytes": bytes.Replace(good, []byte(`"base":1`), []byte(`"base":7`), 1),
	}
	for name, line := range cases {
		if _, err := DecodeSegmentHeader(line); err == nil {
			t.Errorf("%s: decode accepted %q", name, line)
		}
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	name := segmentName(987654321)
	base, ok := parseSegmentName(name)
	if !ok || base != 987654321 {
		t.Fatalf("parse(%q) = %d, %v", name, base, ok)
	}
	for _, bad := range []string{"seg-123.wal", "seg-aaaaaaaaaaaaaaaa.wal", "snap-0000000000000001.json", "seg-0000000000000001.wal.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	enc, err := EncodeSnapshot(Snapshot{Seq: 99, Runs: 7, State: []byte(`{"a": 1}`)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seq != 99 || s.Runs != 7 || string(s.State) != `{"a":1}` {
		t.Errorf("round-trip lost fields: %+v", s)
	}
	// Any byte flip in the payload must be caught by the CRC.
	bad := bytes.Replace(enc, []byte(`"a":1`), []byte(`"a":2`), 1)
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("corrupted snapshot decoded cleanly")
	}
}

// openSegmented is a test helper with fatal error handling.
func openSegmented(t *testing.T, dir string, opts SegmentedOptions) (*SegmentedLog, *RecoveredState) {
	t.Helper()
	opts.SyncEveryAppend = true
	l, rec, err := OpenSegmented(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

// appendN appends n tiny events and returns the last sequence.
func appendN(t *testing.T, l *Log, n int) int64 {
	t.Helper()
	var last int64
	for i := 0; i < n; i++ {
		seq, err := l.Append(Event{Kind: KindRegister, Worker: "w"})
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	return last
}

func TestSegmentedRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256} // a few records per segment
	l, rec := openSegmented(t, dir, opts)
	if rec.Snapshot != nil || len(rec.Events) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendN(t, l.Log, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if segs[0].base != 1 {
		t.Errorf("first segment base = %d, want 1", segs[0].base)
	}

	l2, rec2 := openSegmented(t, dir, opts)
	defer l2.Close()
	if len(rec2.Events) != 40 {
		t.Fatalf("recovered %d events, want 40", len(rec2.Events))
	}
	for i, e := range rec2.Events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if l2.Seq() != 40 {
		t.Errorf("resumed Seq = %d, want 40", l2.Seq())
	}
	// Appends resume in the last segment without disturbing the chain.
	if seq := appendN(t, l2.Log, 5); seq != 45 {
		t.Errorf("post-recovery append seq = %d, want 45", seq)
	}
}

func TestSegmentedTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 1 << 20}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the only segment mid-record.
	name := segmentName(1)
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openSegmented(t, dir, opts)
	defer l2.Close()
	if len(rec.Events) != 9 {
		t.Fatalf("recovered %d events after torn tail, want 9", len(rec.Events))
	}
	if l2.Seq() != 9 {
		t.Errorf("Seq = %d, want 9", l2.Seq())
	}
	// The torn bytes are gone from disk: a new append must follow record 9.
	if seq := appendN(t, l2.Log, 1); seq != 10 {
		t.Errorf("append after truncation got seq %d, want 10", seq)
	}
}

func TestSegmentedRejectsTornSealedSegment(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	// Corrupt a mid-chain (sealed) segment: recovery must refuse, because a
	// torn tail is only legal on the final segment.
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenSegmented(dir, opts); err == nil {
		t.Fatal("recovery accepted a torn sealed segment")
	}
}

func TestSegmentedChainVerification(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need at least 3 segments, got %d", len(segs))
	}
	// Deleting a mid-chain segment must break recovery (base continuity).
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	_, _, err = OpenSegmented(dir, opts)
	if err == nil {
		t.Fatal("recovery accepted a missing mid-chain segment")
	}
	if !strings.Contains(err.Error(), "chain") && !strings.Contains(err.Error(), "expected") {
		t.Logf("recovery error (ok, just informative): %v", err)
	}
}

func TestSnapshotBoundsRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256, DisableCompaction: true}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 30)
	// Install a snapshot covering seq 30, then append a tail.
	if err := l.WriteSnapshot(30, 3, []byte(`{"state":"s30"}`)); err != nil {
		t.Fatal(err)
	}
	appendN(t, l.Log, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openSegmented(t, dir, opts)
	defer l2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 30 {
		t.Fatalf("recovered snapshot = %+v, want seq 30", rec.Snapshot)
	}
	if string(rec.Snapshot.State) != `{"state":"s30"}` {
		t.Errorf("snapshot state = %s", rec.Snapshot.State)
	}
	if len(rec.Events) != 10 {
		t.Fatalf("recovered %d tail events, want 10", len(rec.Events))
	}
	if rec.Events[0].Seq != 31 {
		t.Errorf("tail starts at seq %d, want 31", rec.Events[0].Seq)
	}
	if rec.SkippedSegments == 0 {
		t.Error("bounded recovery read every segment despite the snapshot")
	}
	if l2.Seq() != 40 {
		t.Errorf("Seq = %d, want 40", l2.Seq())
	}
}

func TestCompactionDropsCoveredSegmentsOnly(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 30)
	before, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 3 {
		t.Fatalf("need several segments, got %d", len(before))
	}
	// Snapshot at seq 20: segments wholly at or below 20 must go, the rest
	// must stay.
	if err := l.WriteSnapshot(20, 2, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	after, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("compaction dropped nothing: %d -> %d segments", len(before), len(after))
	}
	// Every surviving sealed segment must still hold records above 20; the
	// dropped ones were wholly covered.
	for i, seg := range after {
		if i == len(after)-1 {
			continue // active segment
		}
		if after[i+1].base-1 <= 20 {
			t.Errorf("segment %s (records %d..%d) survived but is wholly covered", seg.name, seg.base, after[i+1].base-1)
		}
	}
	appendN(t, l.Log, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery over the compacted directory still reconstructs everything
	// past the snapshot.
	l2, rec := openSegmented(t, dir, opts)
	defer l2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 20 {
		t.Fatalf("recovered snapshot %+v", rec.Snapshot)
	}
	if len(rec.Events) != 20 || rec.Events[0].Seq != 21 {
		t.Fatalf("recovered %d tail events starting at %d, want 20 starting at 21", len(rec.Events), rec.Events[0].Seq)
	}
}

func TestCompactionKeepsSegmentsPastSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 1 << 20} // single active segment
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 10)
	if err := l.WriteSnapshot(5, 1, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	segs, err := scanSegmentDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("the active segment (holding records past the snapshot) was touched: %d segments", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSnapshotRejectsStaleSeq(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSegmented(t, dir, SegmentedOptions{})
	defer l.Close()
	appendN(t, l.Log, 10)
	if err := l.WriteSnapshot(8, 1, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(8, 1, []byte(`{}`)); err == nil {
		t.Error("duplicate snapshot seq accepted")
	}
	if err := l.WriteSnapshot(5, 1, []byte(`{}`)); err == nil {
		t.Error("regressing snapshot seq accepted")
	}
}

func TestNewestSnapshotSkipsInvalid(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int64{10, 20} {
		enc, err := EncodeSnapshot(Snapshot{Seq: seq, Runs: 1, State: []byte(`{}`)})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotFileName(seq)), enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt newer snapshot must lose to the valid older one.
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName(30)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, name, err := newestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 20 || name != snapshotFileName(20) {
		t.Fatalf("newestSnapshot picked %v (%s), want seq 20", snap, name)
	}
}

func TestManifestAndReadFileRange(t *testing.T) {
	dir := t.TempDir()
	opts := SegmentedOptions{SegmentBytes: 256}
	l, _ := openSegmented(t, dir, opts)
	defer l.Close()
	appendN(t, l.Log, 30)
	if err := l.WriteSnapshot(20, 2, []byte(`{"k":"v"}`)); err != nil {
		t.Fatal(err)
	}
	m, err := l.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 30 {
		t.Errorf("manifest seq = %d, want 30", m.Seq)
	}
	if m.Snapshot == nil || m.Snapshot.Seq != 20 {
		t.Fatalf("manifest snapshot = %+v", m.Snapshot)
	}
	if len(m.Segments) == 0 {
		t.Fatal("manifest offers no segments")
	}
	if !m.Segments[len(m.Segments)-1].Sealed == false {
		t.Error("last manifest segment should be the unsealed active one")
	}

	// Reading each offered file in small chunks reassembles it exactly.
	for _, seg := range m.Segments {
		var got []byte
		var off int64
		for {
			chunk, done, err := l.ReadFileRange(seg.Name, off, 37)
			if err != nil {
				t.Fatalf("read %s at %d: %v", seg.Name, off, err)
			}
			got = append(got, chunk...)
			off += int64(len(chunk))
			if done || len(chunk) == 0 {
				break
			}
		}
		want, err := os.ReadFile(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[:seg.Size]) {
			t.Errorf("chunked read of %s differs from the file", seg.Name)
		}
		// Chunk boundaries land on record frames.
		if len(got) > 0 && got[len(got)-1] != '\n' {
			t.Errorf("read of %s did not end on a record boundary", seg.Name)
		}
	}

	// Unknown and traversal-style names are refused.
	for _, bad := range []string{"../etc/passwd", "seg-9999999999999999.wal", "x", ""} {
		if _, _, err := l.ReadFileRange(bad, 0, 10); !errors.Is(err, ErrUnknownFile) {
			t.Errorf("ReadFileRange(%q) err = %v, want ErrUnknownFile", bad, err)
		}
	}
}

func TestRemoveTempDebris(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-0000000000000009.wal.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000005.json.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openSegmented(t, dir, SegmentedOptions{})
	defer l.Close()
	if rec.Snapshot != nil || len(rec.Events) != 0 {
		t.Fatalf("debris leaked into recovery: %+v", rec)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Errorf("debris %s survived open", ent.Name())
		}
	}
}
