package eventlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// compactLocked drops every sealed segment whose records are wholly covered
// by the installed snapshot, plus the superseded snapshot file, returning
// how many segments it removed. Snapshots are taken only at run boundaries
// (every run at or below the snapshot sequence is settled), so coverage by
// sequence is exactly the "no unsettled run" safety condition: a segment
// holding any record of an open run necessarily extends past the snapshot
// sequence and is kept. The active segment is never a candidate.
//
// Callers hold s.snapMu.
func (s *SegmentedLog) compactLocked(prevSnapshot string) (int, error) {
	snapSeq := s.snapSeq
	s.sw.mu.Lock()
	defer s.sw.mu.Unlock()
	var kept []sealedSegment
	var errs []error
	dropped := 0
	for _, seg := range s.sw.sealed {
		if seg.last > snapSeq {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, seg.name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, fmt.Errorf("eventlog: compact %s: %w", seg.name, err))
			kept = append(kept, seg)
			continue
		}
		dropped++
	}
	s.sw.sealed = kept
	if prevSnapshot != "" && prevSnapshot != s.snapName {
		if err := os.Remove(filepath.Join(s.dir, prevSnapshot)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, fmt.Errorf("eventlog: drop superseded snapshot %s: %w", prevSnapshot, err))
		}
	}
	if dropped > 0 {
		if err := syncDir(s.dir); err != nil {
			errs = append(errs, err)
		}
		s.compacted.Add(int64(dropped))
	}
	return dropped, errors.Join(errs...)
}
