package eventlog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"melody"
)

// Recorder wraps a melody.Platform so that every successful state-changing
// operation is appended to a durable event log. A platform rebuilt with
// Replay from the same log reaches the identical state (same quality
// estimates, same run counter), because the platform is deterministic.
//
// Operations are applied to the platform first and logged only on success,
// so the log never contains rejected operations; a crash between apply and
// append loses at most the operation whose acknowledgment was never
// written.
//
// The recorder's mutex covers only "apply + enqueue", which pins the log's
// record order to the platform's application order; the wait for the fsync
// happens outside it. Concurrent mutations therefore stack up behind a
// microsecond-scale critical section instead of a millisecond-scale fsync,
// and their records ride shared group commits (see Log.AppendAsync).
type Recorder struct {
	mu  sync.Mutex
	p   *melody.Platform
	log *Log

	// seg, when non-nil, is the segmented engine owning the log: FinishRun
	// then takes periodic state snapshots at run boundaries (the only
	// points where the platform can export a consistent snapshot).
	seg *SegmentedLog
	// snapErr records the most recent snapshot failure. Snapshots are a
	// recovery-time optimization, so a failure never fails the run that
	// triggered it; it is surfaced here for operators and tests instead.
	snapErr error
}

// NewRecorder wraps platform with the log.
func NewRecorder(p *melody.Platform, log *Log) (*Recorder, error) {
	if p == nil || log == nil {
		return nil, errors.New("eventlog: recorder needs a platform and a log")
	}
	return &Recorder{p: p, log: log}, nil
}

// Platform exposes the wrapped platform for read-only queries (Quality,
// Workers, Run).
func (r *Recorder) Platform() *melody.Platform { return r.p }

// record applies op to the platform and enqueues ev under the recorder's
// ordering lock, then waits for durability outside it. The ctx deadline
// applies to the durability wait only: once applied + enqueued, the
// operation will reach disk even if the caller stops waiting (see
// Log.AppendAsync).
func (r *Recorder) record(ctx context.Context, op func() error, ev Event) error {
	r.mu.Lock()
	if err := op(); err != nil {
		r.mu.Unlock()
		return err
	}
	_, wait, err := r.log.AppendAsync(ev)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return wait(ctx)
}

// RegisterWorker registers and records a worker.
func (r *Recorder) RegisterWorker(ctx context.Context, workerID string) error {
	return r.record(ctx,
		func() error { return r.p.RegisterWorker(ctx, workerID) },
		Event{Kind: KindRegister, Worker: workerID})
}

// OpenRun opens and records a run.
func (r *Recorder) OpenRun(ctx context.Context, tasks []melody.Task, budget float64) error {
	records := make([]TaskRecord, len(tasks))
	for i, t := range tasks {
		records[i] = TaskRecord{ID: t.ID, Threshold: t.Threshold}
	}
	return r.record(ctx,
		func() error { return r.p.OpenRun(ctx, tasks, budget) },
		Event{Kind: KindOpenRun, Tasks: records, Budget: budget})
}

// SubmitBid submits and records a bid.
func (r *Recorder) SubmitBid(ctx context.Context, workerID string, bid melody.Bid) error {
	return r.record(ctx,
		func() error { return r.p.SubmitBid(ctx, workerID, bid) },
		Event{Kind: KindBid, Worker: workerID, Cost: bid.Cost, Frequency: bid.Frequency})
}

// SubmitBids applies and records a whole batch of bids, reporting per-item
// outcomes in the BatchResult. The batch is applied and enqueued under one
// acquisition of the ordering lock and waits on a single group commit, so
// its durability cost is one fsync regardless of size.
func (r *Recorder) SubmitBids(ctx context.Context, bids []melody.WorkerBid) melody.BatchResult {
	errs := make([]error, len(bids))
	r.mu.Lock()
	applied := r.p.SubmitBids(ctx, bids)
	var wait func(context.Context) error
	for i, b := range bids {
		if err := applied.ErrAt(i); err != nil {
			errs[i] = err
			continue
		}
		_, w, err := r.log.AppendAsync(Event{
			Kind: KindBid, Worker: b.WorkerID, Cost: b.Bid.Cost, Frequency: b.Bid.Frequency,
		})
		if err != nil {
			errs[i] = err
			continue
		}
		wait = w // durability is monotone: the last record covers the batch
	}
	r.mu.Unlock()
	if wait != nil {
		if werr := wait(ctx); werr != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = werr
				}
			}
		}
	}
	return melody.NewBatchResult(errs)
}

// SubmitScores applies and records a whole batch of scores, reporting
// per-item outcomes in the BatchResult; like SubmitBids it costs one lock
// acquisition and one group commit.
func (r *Recorder) SubmitScores(ctx context.Context, scores []melody.TaskScore) melody.BatchResult {
	errs := make([]error, len(scores))
	r.mu.Lock()
	applied := r.p.SubmitScores(ctx, scores)
	var wait func(context.Context) error
	for i, s := range scores {
		if err := applied.ErrAt(i); err != nil {
			errs[i] = err
			continue
		}
		_, w, err := r.log.AppendAsync(Event{
			Kind: KindScore, Worker: s.WorkerID, Task: s.TaskID, Score: s.Score,
		})
		if err != nil {
			errs[i] = err
			continue
		}
		wait = w
	}
	r.mu.Unlock()
	if wait != nil {
		if werr := wait(ctx); werr != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = werr
				}
			}
		}
	}
	return melody.NewBatchResult(errs)
}

// CloseAuction closes the auction and records the closure. The outcome
// itself is not logged: replaying the close recomputes it exactly.
func (r *Recorder) CloseAuction(ctx context.Context) (*melody.Outcome, error) {
	r.mu.Lock()
	out, err := r.p.CloseAuction(ctx)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	_, wait, err := r.log.AppendAsync(Event{Kind: KindClose})
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := wait(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitScore submits and records a score.
func (r *Recorder) SubmitScore(ctx context.Context, workerID, taskID string, score float64) error {
	return r.record(ctx,
		func() error { return r.p.SubmitScore(ctx, workerID, taskID, score) },
		Event{Kind: KindScore, Worker: workerID, Task: taskID, Score: score})
}

// FinishRun finishes and records the run. On a segmented log that is due
// for a snapshot, the platform's state is captured under the ordering lock
// — so it reflects exactly the log prefix ending at the finish record — and
// written out only after that record is durable, keeping the snapshot's
// covered sequence at or below the durable tail (a snapshot may never claim
// records a crash could still tear away).
func (r *Recorder) FinishRun(ctx context.Context) error {
	if r.seg == nil {
		return r.record(ctx,
			func() error { return r.p.FinishRun(ctx) },
			Event{Kind: KindFinish})
	}
	r.mu.Lock()
	if err := r.p.FinishRun(ctx); err != nil {
		r.mu.Unlock()
		return err
	}
	seq, wait, err := r.log.AppendAsync(Event{Kind: KindFinish})
	var snap *melody.PlatformSnapshot
	var runs int
	if err == nil && r.seg.ShouldSnapshot() {
		runs = r.p.Run()
		var serr error
		if snap, serr = r.p.SnapshotState(); serr != nil {
			// The estimator may not support snapshots (ErrNoSnapshot);
			// recovery then falls back to full replay.
			r.snapErr = serr
			snap = nil
		}
	}
	r.mu.Unlock()
	if err != nil {
		return err
	}
	if werr := wait(ctx); werr != nil {
		return werr
	}
	if snap != nil {
		r.writeSnapshot(seq, runs, snap)
	}
	return nil
}

// writeSnapshot encodes and installs a platform snapshot, recording rather
// than returning failures: the run that triggered the snapshot has already
// committed.
func (r *Recorder) writeSnapshot(seq int64, runs int, snap *melody.PlatformSnapshot) {
	state, err := json.Marshal(snap)
	if err == nil {
		err = r.seg.WriteSnapshot(seq, runs, state)
	}
	r.mu.Lock()
	r.snapErr = err
	r.mu.Unlock()
}

// SnapshotErr returns the most recent snapshot failure (nil after a
// successful snapshot or when none was attempted).
func (r *Recorder) SnapshotErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapErr
}

// Replay applies every event from the log at path to a fresh platform,
// rebuilding its state after a crash or restart. The platform must have
// been constructed with the same configuration (auction intervals and
// estimator parameters) as the one that wrote the log.
func Replay(path string, p *melody.Platform) error {
	if p == nil {
		return errors.New("eventlog: replay needs a platform")
	}
	events, err := ReadAll(path)
	if err != nil {
		return err
	}
	for _, e := range events {
		if err := apply(p, e); err != nil {
			return fmt.Errorf("eventlog: replay seq %d (%s): %w", e.Seq, e.Kind, err)
		}
	}
	return nil
}

func apply(p *melody.Platform, e Event) error {
	ctx := context.Background()
	switch e.Kind {
	case KindRegister:
		return p.RegisterWorker(ctx, e.Worker)
	case KindOpenRun:
		tasks := make([]melody.Task, len(e.Tasks))
		for i, t := range e.Tasks {
			tasks[i] = melody.Task{ID: t.ID, Threshold: t.Threshold}
		}
		return p.OpenRun(ctx, tasks, e.Budget)
	case KindBid:
		return p.SubmitBid(ctx, e.Worker, melody.Bid{Cost: e.Cost, Frequency: e.Frequency})
	case KindClose:
		_, err := p.CloseAuction(ctx)
		return err
	case KindScore:
		return p.SubmitScore(ctx, e.Worker, e.Task, e.Score)
	case KindFinish:
		return p.FinishRun(ctx)
	default:
		return fmt.Errorf("eventlog: unknown event kind %q", e.Kind)
	}
}
