package eventlog

import (
	"errors"
	"fmt"
	"sync"

	"melody"
)

// Recorder wraps a melody.Platform so that every successful state-changing
// operation is appended to a durable event log. A platform rebuilt with
// Replay from the same log reaches the identical state (same quality
// estimates, same run counter), because the platform is deterministic.
//
// Operations are applied to the platform first and logged only on success,
// so the log never contains rejected operations; a crash between apply and
// append loses at most the operation whose acknowledgment was never
// written.
type Recorder struct {
	mu  sync.Mutex
	p   *melody.Platform
	log *Log
}

// NewRecorder wraps platform with the log.
func NewRecorder(p *melody.Platform, log *Log) (*Recorder, error) {
	if p == nil || log == nil {
		return nil, errors.New("eventlog: recorder needs a platform and a log")
	}
	return &Recorder{p: p, log: log}, nil
}

// Platform exposes the wrapped platform for read-only queries (Quality,
// Workers, Run).
func (r *Recorder) Platform() *melody.Platform { return r.p }

// RegisterWorker registers and records a worker.
func (r *Recorder) RegisterWorker(workerID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.p.RegisterWorker(workerID); err != nil {
		return err
	}
	_, err := r.log.Append(Event{Kind: KindRegister, Worker: workerID})
	return err
}

// OpenRun opens and records a run.
func (r *Recorder) OpenRun(tasks []melody.Task, budget float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.p.OpenRun(tasks, budget); err != nil {
		return err
	}
	records := make([]TaskRecord, len(tasks))
	for i, t := range tasks {
		records[i] = TaskRecord{ID: t.ID, Threshold: t.Threshold}
	}
	_, err := r.log.Append(Event{Kind: KindOpenRun, Tasks: records, Budget: budget})
	return err
}

// SubmitBid submits and records a bid.
func (r *Recorder) SubmitBid(workerID string, bid melody.Bid) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.p.SubmitBid(workerID, bid); err != nil {
		return err
	}
	_, err := r.log.Append(Event{
		Kind: KindBid, Worker: workerID, Cost: bid.Cost, Frequency: bid.Frequency,
	})
	return err
}

// CloseAuction closes the auction and records the closure. The outcome
// itself is not logged: replaying the close recomputes it exactly.
func (r *Recorder) CloseAuction() (*melody.Outcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out, err := r.p.CloseAuction()
	if err != nil {
		return nil, err
	}
	if _, err := r.log.Append(Event{Kind: KindClose}); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitScore submits and records a score.
func (r *Recorder) SubmitScore(workerID, taskID string, score float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.p.SubmitScore(workerID, taskID, score); err != nil {
		return err
	}
	_, err := r.log.Append(Event{Kind: KindScore, Worker: workerID, Task: taskID, Score: score})
	return err
}

// FinishRun finishes and records the run.
func (r *Recorder) FinishRun() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.p.FinishRun(); err != nil {
		return err
	}
	_, err := r.log.Append(Event{Kind: KindFinish})
	return err
}

// Replay applies every event from the log at path to a fresh platform,
// rebuilding its state after a crash or restart. The platform must have
// been constructed with the same configuration (auction intervals and
// estimator parameters) as the one that wrote the log.
func Replay(path string, p *melody.Platform) error {
	if p == nil {
		return errors.New("eventlog: replay needs a platform")
	}
	events, err := ReadAll(path)
	if err != nil {
		return err
	}
	for _, e := range events {
		if err := apply(p, e); err != nil {
			return fmt.Errorf("eventlog: replay seq %d (%s): %w", e.Seq, e.Kind, err)
		}
	}
	return nil
}

func apply(p *melody.Platform, e Event) error {
	switch e.Kind {
	case KindRegister:
		return p.RegisterWorker(e.Worker)
	case KindOpenRun:
		tasks := make([]melody.Task, len(e.Tasks))
		for i, t := range e.Tasks {
			tasks[i] = melody.Task{ID: t.ID, Threshold: t.Threshold}
		}
		return p.OpenRun(tasks, e.Budget)
	case KindBid:
		return p.SubmitBid(e.Worker, melody.Bid{Cost: e.Cost, Frequency: e.Frequency})
	case KindClose:
		_, err := p.CloseAuction()
		return err
	case KindScore:
		return p.SubmitScore(e.Worker, e.Task, e.Score)
	case KindFinish:
		return p.FinishRun()
	default:
		return fmt.Errorf("eventlog: unknown event kind %q", e.Kind)
	}
}
