package eventlog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"melody/internal/chaos"
)

// TestFailpointMidSegmentAppend kills the engine halfway through a batch
// write (half the bytes reach the file, then the "process" dies) and
// requires recovery to truncate the torn half-batch and resume cleanly.
func TestFailpointMidSegmentAppend(t *testing.T) {
	dir := t.TempDir()
	fp := chaos.NewFailpoints()
	opts := SegmentedOptions{SegmentBytes: 1 << 20, Failpoint: fp.Hook()}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 10)

	fp.Arm(FailpointSegmentAppend, 1)
	if _, err := l.Append(Event{Kind: KindRegister, Worker: "doomed"}); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("armed append err = %v, want ErrInjected", err)
	}
	if fp.Fired(FailpointSegmentAppend) != 1 {
		t.Fatal("failpoint never fired")
	}
	l.Close() // the poisoned log's close error is the crash, not a failure

	// The file now ends in half a record. Recovery must drop it.
	l2, rec := openSegmented(t, dir, SegmentedOptions{SegmentBytes: 1 << 20})
	defer l2.Close()
	if len(rec.Events) != 10 {
		t.Fatalf("recovered %d events, want 10 (torn batch dropped)", len(rec.Events))
	}
	if seq := appendN(t, l2.Log, 1); seq != 11 {
		t.Errorf("post-recovery seq = %d, want 11", seq)
	}
}

// TestFailpointMidRotationRename kills the engine after the next segment's
// temp file is staged but before the rename installs it. Recovery must
// sweep the debris and keep appending to the old segment chain.
func TestFailpointMidRotationRename(t *testing.T) {
	dir := t.TempDir()
	fp := chaos.NewFailpoints()
	opts := SegmentedOptions{SegmentBytes: 256, Failpoint: fp.Hook()}
	l, _ := openSegmented(t, dir, opts)

	fp.Arm(FailpointRotateRename, 1)
	var crashed int64
	for i := 0; i < 100; i++ {
		seq, err := l.Append(Event{Kind: KindRegister, Worker: "w"})
		if err != nil {
			if !errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("append %d: %v", i, err)
			}
			crashed = int64(i) // records 1..i landed before the crash
			break
		}
		if seq != int64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if crashed == 0 {
		t.Fatal("rotation failpoint never fired within 100 appends")
	}
	l.Close()

	// Temp debris must exist now (staged segment that was never renamed)...
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	debris := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			debris++
		}
	}
	if debris == 0 {
		t.Fatal("no staged temp file found after mid-rotation crash")
	}

	// ...and recovery sweeps it, resuming exactly after the last durable
	// record.
	l2, rec := openSegmented(t, dir, SegmentedOptions{SegmentBytes: 256})
	defer l2.Close()
	if int64(len(rec.Events)) != crashed {
		t.Fatalf("recovered %d events, want %d", len(rec.Events), crashed)
	}
	if seq := appendN(t, l2.Log, 1); seq != crashed+1 {
		t.Errorf("post-recovery seq = %d, want %d", seq, crashed+1)
	}
}

// TestFailpointMidSnapshotWrite kills the engine halfway through staging a
// snapshot temp file. The failure must not poison the log, and recovery
// must fall back to the previous snapshot (or none) and full tail replay.
func TestFailpointMidSnapshotWrite(t *testing.T) {
	dir := t.TempDir()
	fp := chaos.NewFailpoints()
	opts := SegmentedOptions{SegmentBytes: 1 << 20, Failpoint: fp.Hook()}
	l, _ := openSegmented(t, dir, opts)
	appendN(t, l.Log, 10)
	if err := l.WriteSnapshot(5, 1, []byte(`{"good":true}`)); err != nil {
		t.Fatal(err)
	}

	fp.Arm(FailpointSnapshotWrite, 1)
	if err := l.WriteSnapshot(10, 2, []byte(`{"doomed":true}`)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("armed snapshot err = %v, want ErrInjected", err)
	}
	// The log itself is unharmed: appends still work.
	if seq := appendN(t, l.Log, 2); seq != 12 {
		t.Fatalf("append after snapshot failure got seq %d", seq)
	}
	l.Close()

	l2, rec := openSegmented(t, dir, SegmentedOptions{SegmentBytes: 1 << 20})
	defer l2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 5 {
		t.Fatalf("recovered snapshot %+v, want the intact seq-5 one", rec.Snapshot)
	}
	if len(rec.Events) != 7 || rec.Events[0].Seq != 6 {
		t.Fatalf("recovered tail %d events from %d, want 7 from 6", len(rec.Events), rec.Events[0].Seq)
	}
}

// TestDirectorySyncOnCreateAndInstall is the crash-durability regression for
// the missing parent-directory fsync: creating a log file, installing a
// rotated segment, and installing a snapshot must each fsync the directory
// entry, or a power cut can forget the file itself even though its contents
// were synced.
func TestDirectorySyncOnCreateAndInstall(t *testing.T) {
	before := dirSyncs.Load()
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := OpenOptions(path, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	afterCreate := dirSyncs.Load()
	if afterCreate <= before {
		t.Error("creating a single-file WAL never fsynced its parent directory")
	}
	// Reopening an existing file must not redundantly sync the directory.
	log, err = OpenOptions(path, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dirSyncs.Load(); got != afterCreate {
		t.Errorf("reopening an existing WAL synced the directory %d extra times", got-afterCreate)
	}

	// Segment rotation and snapshot install both create directory entries;
	// each must fsync the directory.
	dir := t.TempDir()
	mark := dirSyncs.Load()
	l, _ := openSegmented(t, dir, SegmentedOptions{SegmentBytes: 256})
	defer l.Close()
	afterOpen := dirSyncs.Load()
	if afterOpen <= mark {
		t.Error("creating the first segment never fsynced the directory")
	}
	appendN(t, l.Log, 40) // forces rotations
	afterRotate := dirSyncs.Load()
	if afterRotate <= afterOpen {
		t.Error("segment rotation never fsynced the directory")
	}
	if err := l.WriteSnapshot(30, 3, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if dirSyncs.Load() <= afterRotate {
		t.Error("snapshot install never fsynced the directory")
	}
}
