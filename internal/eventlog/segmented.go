package eventlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"melody/internal/obs"
)

// DefaultSegmentBytes is the rotation threshold when SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// SegmentedOptions configures a segmented log beyond the base Options.
type SegmentedOptions struct {
	Options
	// SegmentBytes is the size at which the active segment is sealed and a
	// new one started; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// SnapshotEvery arms ShouldSnapshot once this many records have been
	// appended since the last snapshot; the owner (the Recorder) then takes
	// a state snapshot at the next run boundary. Zero disables snapshots.
	SnapshotEvery int
	// DisableCompaction keeps every sealed segment on disk even when a
	// snapshot fully covers it. Differential tests use it to retain the
	// full history for from-scratch replay oracles.
	DisableCompaction bool
	// Failpoint is the chaos kill-point hook (see FailpointSegmentAppend
	// and friends); nil disables injection.
	Failpoint func(string) error
}

// RecoveredState is what OpenSegmented reconstructed: the newest valid
// snapshot (nil on a fresh or snapshot-less log) and the tail events with
// sequences above it, in order. The caller restores the snapshot into its
// platform and replays the events.
type RecoveredState struct {
	Snapshot *Snapshot
	Events   []Event
	// SkippedSegments counts sealed segments recovery did not read because
	// the snapshot covers them — the measure of bounded recovery.
	SkippedSegments int
}

// SegmentedLog is the segmented storage engine: an event Log whose records
// land in size-bounded segment files, plus state snapshots that bound
// recovery to the tail and compaction that bounds disk to the tail. It
// embeds *Log, so the append pipeline (group commit, torn-tail semantics,
// failure poisoning) is exactly the single-file engine's.
type SegmentedLog struct {
	*Log
	sw   *segmentWriter
	dir  string
	opts SegmentedOptions

	snapMu   sync.Mutex
	snapSeq  int64 // sequence covered by the newest valid snapshot
	snapName string
	snapTime time.Time

	snapshots *obs.Counter
	compacted *obs.Counter
	snapAge   *obs.Gauge
	replayed  *obs.Gauge
	tracer    *obs.Tracer
}

// Dir returns the storage directory.
func (s *SegmentedLog) Dir() string { return s.dir }

// OpenSegmented opens (creating if needed) the segmented log in dir and
// recovers its state: sweep temp debris, load the newest valid snapshot,
// scan only the segments the snapshot does not cover (truncating a torn
// tail on the last one), verify the header chain across the segments read,
// and resume appending to the last segment. The returned RecoveredState
// carries the snapshot and tail events the caller replays.
func OpenSegmented(dir string, opts SegmentedOptions) (*SegmentedLog, *RecoveredState, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("eventlog: create %s: %w", dir, err)
	}
	sp := opts.Tracer.Start("wal.recover")
	defer sp.End()
	if _, err := removeTempDebris(dir); err != nil {
		return nil, nil, err
	}
	snap, snapName, err := newestSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	var snapSeq int64
	if snap != nil {
		snapSeq = snap.Seq
	}

	segs, err := scanSegmentDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &RecoveredState{Snapshot: snap}
	seq := snapSeq
	var active *segmentWriter
	switch {
	case len(segs) == 0:
		// Fresh directory (or everything compacted away then crashed before
		// the next segment was created): start the chain at the next record.
		f, hdrLen, hdrCRC, err := createSegment(dir, SegmentHeader{
			Magic: SegmentMagic, Version: segmentVersion, Base: snapSeq + 1,
		}, nil)
		if err != nil {
			return nil, nil, err
		}
		active = &segmentWriter{
			dir: dir, f: f, base: snapSeq + 1, last: snapSeq,
			size: hdrLen, committed: hdrLen, crc: hdrCRC,
		}
	default:
		// Bounded recovery: skip sealed segments the snapshot fully covers.
		// A sealed segment's records end where the next segment begins, so
		// coverage is decidable from the name chain alone, without IO.
		for i := 0; i < len(segs)-1; i++ {
			segs[i].last = segs[i+1].base - 1
		}
		firstRead := 0
		for i := 0; i < len(segs)-1; i++ {
			if segs[i+1].base-1 <= snapSeq {
				firstRead = i + 1
			}
		}
		rec.SkippedSegments = firstRead
		var prev *sealedSegment
		var lastHeader SegmentHeader
		var lastValid int64
		var lastCRC uint32
		for i := firstRead; i < len(segs); i++ {
			path := filepath.Join(dir, segs[i].name)
			header, events, valid, crc, err := readSegment(path)
			if err != nil {
				return nil, nil, err
			}
			if header.Base != segs[i].base {
				return nil, nil, fmt.Errorf("eventlog: segment %s header base %d does not match its name", segs[i].name, header.Base)
			}
			if prev != nil {
				if header.Base != prev.last+1 {
					return nil, nil, fmt.Errorf("eventlog: segment chain gap: %s starts at %d after %d", segs[i].name, header.Base, prev.last)
				}
				if header.PrevCRC != prev.crc {
					return nil, nil, fmt.Errorf("eventlog: segment chain broken: %s prev checksum mismatch", segs[i].name)
				}
			}
			last := header.Base - 1
			if n := len(events); n > 0 {
				last = events[n-1].Seq
			}
			if i < len(segs)-1 {
				if valid != segs[i].size {
					return nil, nil, fmt.Errorf("eventlog: sealed segment %s has a torn tail", segs[i].name)
				}
				if last != segs[i].last {
					return nil, nil, fmt.Errorf("eventlog: segment %s ends at seq %d but the next segment expects %d",
						segs[i].name, last, segs[i].last)
				}
				segs[i].crc = crc
				prev = &segs[i]
			} else {
				lastHeader = header
				lastValid = valid
				lastCRC = crc
			}
			for _, e := range events {
				if e.Seq > snapSeq {
					rec.Events = append(rec.Events, e)
				}
			}
			if last > seq {
				seq = last
			}
		}
		if len(rec.Events) > 0 && rec.Events[0].Seq != snapSeq+1 {
			return nil, nil, fmt.Errorf("eventlog: recovery gap: snapshot covers %d but the tail starts at %d", snapSeq, rec.Events[0].Seq)
		}
		if snapSeq > seq {
			return nil, nil, fmt.Errorf("eventlog: snapshot covers seq %d but the log ends at %d", snapSeq, seq)
		}

		lastPath := filepath.Join(dir, segs[len(segs)-1].name)
		if info, statErr := os.Stat(lastPath); statErr == nil && info.Size() > lastValid {
			if err := os.Truncate(lastPath, lastValid); err != nil {
				return nil, nil, fmt.Errorf("eventlog: truncate torn tail of %s: %w", lastPath, err)
			}
		}
		f, err := os.OpenFile(lastPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("eventlog: open %s: %w", lastPath, err)
		}
		active = &segmentWriter{
			dir: dir, f: f, base: lastHeader.Base, last: seq,
			size: lastValid, committed: lastValid, crc: lastCRC,
			sealed: segs[:len(segs)-1],
		}
	}

	active.limit = opts.SegmentBytes
	active.failpoint = opts.Failpoint
	active.tracer = opts.Tracer
	active.segments = opts.Metrics.Counter(obs.MetricWALSegmentsTotal, "WAL segments created (including the first of each boot).")
	active.activeBytes = opts.Metrics.Gauge(obs.MetricWALActiveSegmentBytes, "Bytes written to the active WAL segment.")
	active.segments.Inc()
	active.activeBytes.Set(float64(active.size))

	l := newLog(active, seq, opts.Options)
	l.mu.Lock()
	l.seg = active
	l.mu.Unlock()
	s := &SegmentedLog{
		Log:       l,
		sw:        active,
		dir:       dir,
		opts:      opts,
		snapSeq:   snapSeq,
		snapName:  snapName,
		snapTime:  time.Now(),
		snapshots: opts.Metrics.Counter(obs.MetricWALSnapshotsTotal, "State snapshots written."),
		compacted: opts.Metrics.Counter(obs.MetricWALCompactedSegmentsTotal, "WAL segments dropped by compaction."),
		snapAge:   opts.Metrics.Gauge(obs.MetricWALSnapshotAgeSeconds, "Seconds since the newest state snapshot, updated on storage-engine activity."),
		replayed:  opts.Metrics.Gauge(obs.MetricWALRecoveryReplayedRecords, "Records replayed by the most recent recovery."),
		tracer:    opts.Tracer,
	}
	s.replayed.Set(float64(len(rec.Events)))
	sp.SetAttrInt("replayed_records", int64(len(rec.Events)))
	sp.SetAttrInt("skipped_segments", int64(rec.SkippedSegments))
	sp.SetAttrInt("snapshot_seq", snapSeq)
	return s, rec, nil
}

// ShouldSnapshot reports whether enough records have accumulated since the
// last snapshot that the owner should take one at the next run boundary.
func (s *SegmentedLog) ShouldSnapshot() bool {
	if s.opts.SnapshotEvery <= 0 {
		return false
	}
	s.snapMu.Lock()
	snapSeq := s.snapSeq
	s.snapMu.Unlock()
	s.observeSnapshotAge()
	return s.Seq()-snapSeq >= int64(s.opts.SnapshotEvery)
}

// SnapshotSeq returns the sequence covered by the newest installed
// snapshot (zero when none exists).
func (s *SegmentedLog) SnapshotSeq() int64 {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapSeq
}

// observeSnapshotAge refreshes the snapshot-age gauge. The obs registry has
// no callback gauges, so the age is updated on storage-engine activity
// (snapshot checks, snapshot writes, manifests) rather than at scrape time.
func (s *SegmentedLog) observeSnapshotAge() {
	s.snapMu.Lock()
	age := time.Since(s.snapTime).Seconds()
	s.snapMu.Unlock()
	s.snapAge.Set(age)
}

// WriteSnapshot atomically installs a state snapshot covering every record
// up to and including seq (which must already be durable — the Recorder
// waits for the FinishRun record's fsync first), then compacts away the
// sealed segments the snapshot covers. runs is the completed-run count at
// the snapshot; state is the platform-layer payload.
//
// A failed snapshot write never poisons the log: the previous snapshot
// stays authoritative and appends continue, so snapshotting is a liveness
// optimization, not a correctness dependency.
func (s *SegmentedLog) WriteSnapshot(seq int64, runs int, state []byte) error {
	sp := s.tracer.Start("wal.snapshot")
	defer sp.End()
	sp.SetAttrInt("seq", seq)
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if seq <= s.snapSeq {
		return fmt.Errorf("eventlog: snapshot at seq %d not beyond the installed one at %d", seq, s.snapSeq)
	}
	name, err := writeSnapshotFile(s.dir, Snapshot{
		Format:  SnapshotFormat,
		Version: snapshotFileVersion,
		Seq:     seq,
		Runs:    runs,
		State:   state,
	}, s.opts.Failpoint)
	if err != nil {
		return err
	}
	prevName := s.snapName
	s.snapSeq = seq
	s.snapName = name
	s.snapTime = time.Now()
	s.snapshots.Inc()
	s.snapAge.Set(0)
	if !s.opts.DisableCompaction {
		dropped, err := s.compactLocked(prevName)
		sp.SetAttrInt("compacted_segments", int64(dropped))
		if err != nil {
			return err
		}
	}
	return nil
}

// SegmentInfo describes one segment file in a replication manifest. Size is
// the durable byte count: the full file for sealed segments, the fsynced
// prefix for the active one — a replica may copy exactly these bytes and
// never sees unacknowledged data.
type SegmentInfo struct {
	Name   string `json:"name"`
	Base   int64  `json:"base"`
	Size   int64  `json:"size"`
	Sealed bool   `json:"sealed"`
}

// SnapshotInfo describes the installed snapshot in a replication manifest.
type SnapshotInfo struct {
	Name string `json:"name"`
	Seq  int64  `json:"seq"`
	Size int64  `json:"size"`
}

// Manifest is the primary's replication offer: the durable sequence, the
// installed snapshot (if any) and every segment with its durable size.
type Manifest struct {
	Seq      int64         `json:"seq"`
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	Segments []SegmentInfo `json:"segments"`
}

// Manifest reports the log's current durable file set for replication.
func (s *SegmentedLog) Manifest() (Manifest, error) {
	s.observeSnapshotAge()
	var m Manifest
	s.Log.mu.Lock()
	m.Seq = s.Log.durable
	s.Log.mu.Unlock()

	s.snapMu.Lock()
	snapName := s.snapName
	snapSeq := s.snapSeq
	s.snapMu.Unlock()
	if snapName != "" {
		info, err := os.Stat(filepath.Join(s.dir, snapName))
		if err != nil {
			return Manifest{}, fmt.Errorf("eventlog: manifest: %w", err)
		}
		m.Snapshot = &SnapshotInfo{Name: snapName, Seq: snapSeq, Size: info.Size()}
	}

	s.sw.mu.Lock()
	for _, seg := range s.sw.sealed {
		m.Segments = append(m.Segments, SegmentInfo{Name: seg.name, Base: seg.base, Size: seg.size, Sealed: true})
	}
	m.Segments = append(m.Segments, SegmentInfo{
		Name: segmentName(s.sw.base), Base: s.sw.base, Size: s.sw.committed,
	})
	s.sw.mu.Unlock()
	return m, nil
}

// ErrUnknownFile is returned by ReadFileRange for names outside the log's
// current file set.
var ErrUnknownFile = errors.New("eventlog: unknown replication file")

// ReadFileRange serves up to maxLen durable bytes of the named segment or
// snapshot file starting at off, for replication streaming. Only names from
// the current Manifest resolve (no path traversal), reads are clamped to
// the durable prefix, and a partial window is cut at the last record
// boundary (newline) so replica acks land on whole frames. done reports
// that the returned bytes reach the durable end of the file.
func (s *SegmentedLog) ReadFileRange(name string, off int64, maxLen int) (data []byte, done bool, err error) {
	if maxLen <= 0 {
		maxLen = 1 << 20
	}
	var limit int64 = -1
	if base, ok := parseSegmentName(name); ok {
		s.sw.mu.Lock()
		if base == s.sw.base {
			limit = s.sw.committed
		} else {
			for _, seg := range s.sw.sealed {
				if seg.name == name {
					limit = seg.size
					break
				}
			}
		}
		s.sw.mu.Unlock()
	} else if _, ok := parseSnapshotName(name); ok {
		s.snapMu.Lock()
		if name == s.snapName {
			if info, serr := os.Stat(filepath.Join(s.dir, name)); serr == nil {
				limit = info.Size()
			}
		}
		s.snapMu.Unlock()
	}
	if limit < 0 {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownFile, name)
	}
	if off < 0 || off > limit {
		return nil, false, fmt.Errorf("eventlog: offset %d outside durable range [0, %d] of %s", off, limit, name)
	}
	if off == limit {
		return nil, true, nil
	}
	n := limit - off
	if n > int64(maxLen) {
		n = int64(maxLen)
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, false, fmt.Errorf("eventlog: read %s: %w", name, err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, false, fmt.Errorf("eventlog: read %s at %d: %w", name, off, err)
	}
	if off+n < limit {
		// Partial window: end on a frame boundary when one exists, so the
		// replica's ack offsets always name a whole-record prefix.
		if cut := lastNewline(buf); cut >= 0 {
			buf = buf[:cut+1]
		}
	}
	return buf, off+int64(len(buf)) >= limit, nil
}

// lastNewline returns the index of the final '\n' in p, or -1.
func lastNewline(p []byte) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '\n' {
			return i
		}
	}
	return -1
}
