package eventlog

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"melody"
)

func newPlatform(t *testing.T) *melody.Platform {
	t.Helper()
	tracker, err := melody.NewQualityTracker(melody.QualityTrackerConfig{
		InitialMean: 5.5, InitialVar: 2.25,
		Params:   melody.QualityParams{A: 1, Gamma: 0.3, Eta: 4},
		EMPeriod: 5, EMWindow: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := melody.NewPlatform(melody.PlatformConfig{
		Auction:   melody.AuctionConfig{QualityMin: 1, QualityMax: 10, CostMin: 1, CostMax: 2},
		Estimator: tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

// driveRuns runs a deterministic workload through a recorder.
func driveRuns(t *testing.T, rec *Recorder, runs int) {
	ctx := context.Background()
	t.Helper()
	workers := []string{"ada", "bob", "cyd", "dee"}
	for _, id := range workers {
		if err := rec.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	latent := map[string]float64{"ada": 8, "bob": 6, "cyd": 7, "dee": 4}
	for run := 1; run <= runs; run++ {
		tasks := []melody.Task{
			{ID: fmt.Sprintf("r%d-a", run), Threshold: 11},
			{ID: fmt.Sprintf("r%d-b", run), Threshold: 11},
		}
		if err := rec.OpenRun(ctx, tasks, 30); err != nil {
			t.Fatal(err)
		}
		for i, id := range workers {
			bid := melody.Bid{Cost: 1.0 + 0.2*float64(i), Frequency: 2}
			if err := rec.SubmitBid(ctx, id, bid); err != nil {
				t.Fatal(err)
			}
		}
		out, err := rec.CloseAuction(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range out.Assignments {
			// Deterministic "scores" derived from latent quality and run.
			score := latent[a.WorkerID] + 0.1*float64(run%3)
			if err := rec.SubmitScore(ctx, a.WorkerID, a.TaskID, score); err != nil {
				t.Fatal(err)
			}
		}
		if err := rec.FinishRun(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayReconstructsState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	original := newPlatform(t)
	rec, err := NewRecorder(original, log)
	if err != nil {
		t.Fatal(err)
	}
	driveRuns(t, rec, 7)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	restored := newPlatform(t)
	if err := Replay(path, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Run() != original.Run() {
		t.Errorf("restored runs %d, original %d", restored.Run(), original.Run())
	}
	for _, id := range original.Workers() {
		qo, err := original.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		qr, err := restored.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qo-qr) > 1e-12 {
			t.Errorf("worker %s: restored quality %v != original %v", id, qr, qo)
		}
	}
}

func TestReplayMidRunCrash(t *testing.T) {
	ctx := context.Background()
	// Crash after the auction closed but before the run finished: replay
	// must land in the same mid-run state and allow the run to complete.
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(newPlatform(t), log)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := rec.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.OpenRun(ctx, []melody.Task{{ID: "t", Threshold: 10}}, 20); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := rec.SubmitBid(ctx, id, melody.Bid{Cost: 1.3, Frequency: 1}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rec.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil { // crash here
		t.Fatal(err)
	}

	restored := newPlatform(t)
	if err := Replay(path, restored); err != nil {
		t.Fatal(err)
	}
	// The restored platform is mid-run: scores can be submitted and the
	// run finished.
	for _, a := range out.Assignments {
		if err := restored.SubmitScore(ctx, a.WorkerID, a.TaskID, 6.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	if restored.Run() != 1 {
		t.Errorf("restored run counter = %d, want 1", restored.Run())
	}
}

func TestRecorderDoesNotLogRejectedOps(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "wal.log")
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(newPlatform(t), log)
	if err != nil {
		t.Fatal(err)
	}
	// Rejected: bid with no open run.
	if err := rec.SubmitBid(ctx, "ghost", melody.Bid{Cost: 1, Frequency: 1}); err == nil {
		t.Fatal("invalid bid accepted")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("rejected operation was logged: %+v", events)
	}
}

func TestReplayNilPlatform(t *testing.T) {
	if err := Replay("whatever", nil); err == nil {
		t.Error("nil platform accepted")
	}
}
