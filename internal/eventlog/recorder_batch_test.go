package eventlog

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"melody"
)

// TestRecorderBatchReplayEquivalence drives a season through the batch
// submission path (SubmitBids/SubmitScores: one lock acquisition, one group
// commit per batch) and verifies a fresh platform replayed from the log
// reaches identical state — the batch path must log exactly what the
// single-op path would have.
func TestRecorderBatchReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "batch.wal")
	p := newPlatform(t)
	log, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(p, log)
	if err != nil {
		t.Fatal(err)
	}

	workers := []string{"ada", "bob", "cyd", "dee"}
	for _, id := range workers {
		if err := rec.RegisterWorker(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.OpenRun(ctx, []melody.Task{{ID: "t1", Threshold: 11}}, 30); err != nil {
		t.Fatal(err)
	}
	// One invalid item in the middle: it must fail alone, not poison the
	// batch, and must not be logged.
	bids := []melody.WorkerBid{
		{WorkerID: "ada", Bid: melody.Bid{Cost: 1.2, Frequency: 2}},
		{WorkerID: "ghost", Bid: melody.Bid{Cost: 1.2, Frequency: 2}},
		{WorkerID: "bob", Bid: melody.Bid{Cost: 1.4, Frequency: 2}},
		{WorkerID: "cyd", Bid: melody.Bid{Cost: 1.1, Frequency: 2}},
		{WorkerID: "dee", Bid: melody.Bid{Cost: 1.6, Frequency: 2}},
	}
	res := rec.SubmitBids(ctx, bids)
	for i, e := range res.Errs() {
		if i == 1 {
			if !errors.Is(e, melody.ErrUnknownWorker) {
				t.Fatalf("ghost bid error = %v, want ErrUnknownWorker", e)
			}
			continue
		}
		if e != nil {
			t.Fatalf("bid %d: %v", i, e)
		}
	}
	out, err := rec.CloseAuction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]melody.TaskScore, 0, len(out.Assignments))
	for i, a := range out.Assignments {
		scores = append(scores, melody.TaskScore{
			WorkerID: a.WorkerID, TaskID: a.TaskID, Score: 4 + float64(i),
		})
	}
	for i, e := range rec.SubmitScores(ctx, scores).Errs() {
		if e != nil {
			t.Fatalf("score %d: %v", i, e)
		}
	}
	if err := rec.FinishRun(ctx); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := newPlatform(t)
	if err := Replay(path, replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.Run() != p.Run() {
		t.Errorf("replayed run counter %d != live %d", replayed.Run(), p.Run())
	}
	for _, id := range workers {
		want, err := p.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replayed.Quality(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("worker %s: replayed quality %v != live %v", id, got, want)
		}
	}
	// The rejected bid must not appear in the log.
	events, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Kind == KindBid && e.Worker == "ghost" {
			t.Error("rejected bid was logged")
		}
	}
}
