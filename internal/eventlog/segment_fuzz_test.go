package eventlog

import (
	"bytes"
	"testing"
)

// FuzzSegmentHeaderDecode feeds arbitrary bytes to the segment-header
// decoder and checks the framing contract:
//
//  1. DecodeSegmentHeader never panics, whatever the line contains;
//  2. anything it accepts satisfies the header invariants (magic, version,
//     positive base, verified CRC);
//  3. accepted headers round-trip: re-encoding the decoded header produces
//     a line the decoder accepts and that decodes to the same header.
//
// Explore with `go test ./internal/eventlog -run '^$' -fuzz FuzzSegmentHeaderDecode`.
func FuzzSegmentHeaderDecode(f *testing.F) {
	for _, h := range []SegmentHeader{
		{Base: 1},
		{Base: 5001, PrevCRC: 0xdeadbeef},
		{Base: 1<<62 + 7, PrevCRC: 1},
	} {
		line, err := EncodeSegmentHeader(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"magic":"melodyseg","version":1,"base":1,"crc":12345}` + "\n")) // CRC mismatch
	f.Add([]byte(`{"magic":"other","version":1,"base":1}` + "\n"))                 // wrong magic
	f.Add([]byte(`{"magic":"melodyseg","version":9,"base":1}` + "\n"))             // future version
	f.Add([]byte(`{"magic":"melodyseg","version":1,"base":0}` + "\n"))             // base < 1
	f.Add([]byte(`{garbage`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, line []byte) {
		h, err := DecodeSegmentHeader(line)
		if err != nil {
			return
		}
		if h.Magic != SegmentMagic || h.Version != segmentVersion {
			t.Fatalf("decoder accepted magic %q version %d", h.Magic, h.Version)
		}
		if h.Base < 1 {
			t.Fatalf("decoder accepted base %d", h.Base)
		}
		want, werr := h.checksum()
		if werr != nil || h.CRC != want {
			t.Fatalf("decoder accepted CRC %d, canonical is %d (%v)", h.CRC, want, werr)
		}
		again, err := EncodeSegmentHeader(h)
		if err != nil {
			t.Fatalf("re-encode of accepted header failed: %v", err)
		}
		h2, err := DecodeSegmentHeader(again)
		if err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
		if h2 != h {
			t.Fatalf("round trip changed header: %+v -> %+v", h, h2)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder and
// checks the same contract as FuzzSegmentHeaderDecode for the snapshot
// envelope: no panics, accepted snapshots satisfy the envelope invariants
// (format, version, non-negative seq/runs, verified CRC when present), and
// accepted snapshots survive an encode/decode round trip with identical
// metadata and payload bytes.
//
// Explore with `go test ./internal/eventlog -run '^$' -fuzz FuzzSnapshotDecode`.
func FuzzSnapshotDecode(f *testing.F) {
	for _, s := range []Snapshot{
		{Seq: 0, Runs: 0},
		{Seq: 42, Runs: 3, State: []byte(`{"version":1,"completed_runs":3}`)},
		{Seq: 9000, Runs: 17, State: []byte(`{"nested":{"floats":[0.1,2.5e-3]}}`)},
	} {
		line, err := EncodeSnapshot(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"format":"melody-snapshot","version":1,"seq":1,"runs":1,"crc":99}` + "\n")) // CRC mismatch
	f.Add([]byte(`{"format":"other","version":1,"seq":1,"runs":1}` + "\n"))                    // wrong format
	f.Add([]byte(`{"format":"melody-snapshot","version":2,"seq":1,"runs":1}` + "\n"))          // future version
	f.Add([]byte(`{"format":"melody-snapshot","version":1,"seq":-1,"runs":0}` + "\n"))         // negative seq
	f.Add([]byte(`{"format":"melody-snapshot","version":1,"seq":1,"runs":1}` + "\n"))          // no CRC: legacy accept
	f.Add([]byte(`{garbage`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if s.Format != SnapshotFormat || s.Version != snapshotFileVersion {
			t.Fatalf("decoder accepted format %q version %d", s.Format, s.Version)
		}
		if s.Seq < 0 || s.Runs < 0 {
			t.Fatalf("decoder accepted seq %d runs %d", s.Seq, s.Runs)
		}
		if s.CRC != 0 {
			want, werr := s.checksum()
			if werr != nil || s.CRC != want {
				t.Fatalf("decoder accepted CRC %d, canonical is %d (%v)", s.CRC, want, werr)
			}
		}
		again, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		s2, err := DecodeSnapshot(again)
		if err != nil {
			t.Fatalf("re-encoded snapshot rejected: %v", err)
		}
		if s2.Seq != s.Seq || s2.Runs != s.Runs {
			t.Fatalf("round trip changed metadata: %+v -> %+v", s, s2)
		}
		// EncodeSnapshot canonicalizes (compacts) the payload, so compare
		// the round trip against the canonical form of what was accepted.
		canon, err := EncodeSnapshot(Snapshot{Seq: s.Seq, Runs: s.Runs, State: s.State})
		if err != nil {
			t.Fatalf("canonicalize accepted payload: %v", err)
		}
		cs, err := DecodeSnapshot(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		if !bytes.Equal(s2.State, cs.State) {
			t.Fatalf("round trip changed payload: %q -> %q", cs.State, s2.State)
		}
	})
}
