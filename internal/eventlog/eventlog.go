// Package eventlog provides durable, append-only persistence for the
// MELODY platform: every state-changing platform operation is recorded as a
// JSON-lines event, and a crashed platform is rebuilt by replaying the log
// into a fresh instance. Replay is exact because the platform is
// deterministic given its inputs (the auction breaks ties by ID and the
// quality model is a closed-form recursion).
//
// Durable appends go through a group-commit pipeline: concurrent Appends
// encode their records into a shared batch, a single committer goroutine
// flushes the batch with one write and one fsync, and every waiter releases
// when its record is on disk. Under concurrent load (a bid burst from the
// whole worker pool) the fsync cost is amortized across the batch while
// each Append keeps the write-ahead-log contract — it returns only after
// its record is durable — and the on-disk format is byte-identical to the
// serial path.
package eventlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"melody/internal/obs"
)

// Kind discriminates event payloads.
type Kind string

// The event kinds, one per state-changing platform operation.
const (
	KindRegister Kind = "register"
	KindOpenRun  Kind = "open_run"
	KindBid      Kind = "bid"
	KindClose    Kind = "close_auction"
	KindScore    Kind = "score"
	KindFinish   Kind = "finish_run"
	// KindTenantPolicy records a tenant-policy install/update on a
	// multi-run (scheduler) log; replay reconstructs quotas exactly,
	// last write winning.
	KindTenantPolicy Kind = "tenant_policy"
)

// TaskRecord is a task inside an open_run event.
type TaskRecord struct {
	ID        string  `json:"id"`
	Threshold float64 `json:"threshold"`
}

// PolicyRecord is the durable form of a melody.TenantPolicy inside a
// tenant_policy event. Quotas keep the in-memory sign convention
// (negative = unlimited), so the full policy state round-trips.
type PolicyRecord struct {
	BudgetQuota      float64 `json:"budgetQuota"`
	EpochBudgetQuota float64 `json:"epochBudgetQuota"`
	MaxRuns          int     `json:"maxRuns,omitempty"`
	Weight           float64 `json:"weight,omitempty"`
}

// Event is one durable platform operation. Fields are populated according
// to Kind; unused fields are omitted from the encoding.
type Event struct {
	Seq       int64        `json:"seq"`
	Kind      Kind         `json:"kind"`
	Worker    string       `json:"worker,omitempty"`
	Task      string       `json:"task,omitempty"`
	Cost      float64      `json:"cost,omitempty"`
	Frequency int          `json:"frequency,omitempty"`
	Score     float64      `json:"score,omitempty"`
	Budget    float64      `json:"budget,omitempty"`
	Tasks     []TaskRecord `json:"tasks,omitempty"`
	// Run tags the event with its run ID on a multi-run (scheduler) log, so
	// interleaved events from concurrent runs replay against the right run.
	// Empty on single-run logs, which replay unchanged.
	Run string `json:"run,omitempty"`
	// Tenant names the run's tenant on a multi-run open_run event, and the
	// policy's tenant on a tenant_policy event.
	Tenant string `json:"tenant,omitempty"`
	// Policy carries a tenant_policy event's full policy record.
	Policy *PolicyRecord `json:"policy,omitempty"`
	// CRC is the IEEE CRC-32 of the record's canonical encoding (the JSON
	// of the event with CRC itself zeroed), detecting silent on-disk
	// corruption. Zero means "no checksum": records written before
	// checksumming was introduced still replay.
	CRC uint32 `json:"crc,omitempty"`
}

// checksum computes the event's CRC over its canonical encoding.
func (e Event) checksum() (uint32, error) {
	e.CRC = 0
	buf, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("eventlog: encode: %w", err)
	}
	return crc32.ChecksumIEEE(buf), nil
}

// validate checks kind-specific invariants before an event is persisted.
func (e Event) validate() error {
	switch e.Kind {
	case KindRegister:
		if e.Worker == "" {
			return errors.New("eventlog: register event without worker")
		}
	case KindOpenRun:
		if len(e.Tasks) == 0 {
			return errors.New("eventlog: open_run event without tasks")
		}
	case KindBid:
		if e.Worker == "" {
			return errors.New("eventlog: bid event without worker")
		}
	case KindScore:
		if e.Worker == "" || e.Task == "" {
			return errors.New("eventlog: score event without worker or task")
		}
	case KindClose, KindFinish:
	case KindTenantPolicy:
		if e.Tenant == "" || e.Policy == nil {
			return errors.New("eventlog: tenant_policy event without tenant or policy")
		}
	default:
		return fmt.Errorf("eventlog: unknown event kind %q", e.Kind)
	}
	return nil
}

// Log state errors, matchable with errors.Is.
var (
	// ErrClosed is returned by appends to a closed log.
	ErrClosed = errors.New("eventlog: log is closed")
	// ErrFailed is returned once a write, flush or fsync has failed: the
	// durable tail is unknown, so the log refuses every further append
	// until it is reopened (Open re-scans the file and truncates any torn
	// tail, re-establishing a known-good end).
	ErrFailed = errors.New("eventlog: log failed")
)

// Options configures a Log beyond the Open defaults.
type Options struct {
	// SyncEveryAppend makes every Append return only after its record is
	// fsynced (write-ahead-log durability); otherwise appends are buffered
	// and flushed on Close.
	SyncEveryAppend bool
	// SerialCommit disables the group-commit pipeline: each durable append
	// performs its own write+fsync while holding the log lock, the
	// pre-pipeline behavior. It exists as a measured baseline for
	// cmd/melody-load and melody-bench; production callers want the
	// default. Ignored unless SyncEveryAppend is set.
	SerialCommit bool
	// Metrics optionally receives the WAL pipeline metrics: accepted
	// appends, group commits, records per commit and write+fsync wall time.
	// Nil disables instrumentation.
	Metrics *obs.Registry
	// Tracer optionally records a "wal.commit" span per write+fsync batch.
	Tracer *obs.Tracer
}

// commitTarget is the log's durable destination: an *os.File in production,
// a fault-injecting fake in the failure-semantics tests.
type commitTarget interface {
	io.Writer
	Sync() error
	Close() error
}

// Log is an append-only JSON-lines event log, safe for concurrent use.
// Durable appends (SyncEveryAppend) are coalesced by a group-commit
// pipeline; see Append.
type Log struct {
	mu   sync.Mutex
	f    commitTarget
	w    *bufio.Writer // buffered path for non-durable logs
	seq  int64
	sync bool
	ser  bool // serial commit (baseline mode)

	// seg, when non-nil, routes batch writes through the segmented engine's
	// rotation-aware writer instead of a plain file append. The commit
	// pipeline is otherwise unchanged — record encoding, fsync semantics and
	// failure poisoning are identical to the single-file engine.
	seg *segmentWriter

	// pending accumulates encoded records awaiting the next commit; enc
	// writes through an indirection so the committer can swap buffers.
	pending *bytes.Buffer
	spare   *bytes.Buffer
	enc     *json.Encoder
	crcBuf  bytes.Buffer // scratch for canonical (CRC-zeroed) encodings
	crcEnc  *json.Encoder
	scratch Event // reused so Encode's any-boxing never allocates

	durable int64 // highest sequence number known to be on disk
	failed  error // sticky ErrFailed-wrapped durability failure
	closed  bool

	work *sync.Cond // wakes the committer: pending data or close
	// doneCh is closed and replaced whenever durable advances or the log
	// fails; waiters select on the channel they captured, so a wait can also
	// honour a context deadline (a sync.Cond cannot).
	doneCh   chan struct{}
	commExit chan struct{} // closed when the committer goroutine exits

	// pendingCount tracks how many records the pending buffer holds, so the
	// committer can report records-per-commit without parsing the batch.
	pendingCount int

	// Instrumentation handles; nil (no-op) when Options.Metrics/Tracer are
	// nil, so the uninstrumented pipeline pays one predictable branch.
	appends   *obs.Counter
	commits   *obs.Counter
	batchSize *obs.Histogram
	fsyncSecs *obs.Histogram
	tracer    *obs.Tracer
}

// pendingWriter routes the encoder's output to the log's current pending
// buffer, surviving the committer's buffer swaps.
type pendingWriter struct{ l *Log }

func (pw pendingWriter) Write(p []byte) (int, error) { return pw.l.pending.Write(p) }

// newLog assembles a Log over an already-positioned commit target.
func newLog(f commitTarget, seq int64, opts Options) *Log {
	l := &Log{
		f:       f,
		w:       bufio.NewWriter(f),
		seq:     seq,
		sync:    opts.SyncEveryAppend,
		ser:     opts.SerialCommit,
		pending: new(bytes.Buffer),
		spare:   new(bytes.Buffer),
	}
	l.enc = json.NewEncoder(pendingWriter{l})
	l.crcEnc = json.NewEncoder(&l.crcBuf)
	l.work = sync.NewCond(&l.mu)
	l.doneCh = make(chan struct{})
	l.appends = opts.Metrics.Counter(obs.MetricWALAppendsTotal, "Durable WAL appends accepted.")
	l.commits = opts.Metrics.Counter(obs.MetricWALCommitsTotal, "WAL group commits (one write+fsync each).")
	l.batchSize = opts.Metrics.Histogram(obs.MetricWALCommitBatchSize, "Records per WAL group commit.", obs.BatchBuckets())
	l.fsyncSecs = opts.Metrics.Histogram(obs.MetricWALFsyncSeconds, "Wall time of one WAL write+fsync batch.", obs.TimeBuckets())
	l.tracer = opts.Tracer
	if l.sync && !l.ser {
		l.commExit = make(chan struct{})
		go l.commitLoop()
	}
	return l
}

// Open opens (creating if needed) the log at path in append mode and scans
// existing events to resume the sequence number. When syncEveryAppend is
// true every Append fsyncs before returning (write-ahead-log durability),
// with concurrent appends coalesced into shared fsyncs; otherwise appends
// are buffered and flushed on Close.
//
// A torn final record (a partial line left by a crash mid-write) is
// truncated away before appending resumes, so the next record never lands
// after garbage and a later replay sees a clean log.
func Open(path string, syncEveryAppend bool) (*Log, error) {
	return OpenOptions(path, Options{SyncEveryAppend: syncEveryAppend})
}

// OpenOptions is Open with explicit Options.
func OpenOptions(path string, opts Options) (*Log, error) {
	events, valid, err := readAll(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	var seq int64
	if n := len(events); n > 0 {
		seq = events[n-1].Seq
	}
	if info, statErr := os.Stat(path); statErr == nil && info.Size() > valid {
		// Crash recovery: drop the torn tail so appends continue from the
		// end of the last complete record.
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("eventlog: truncate torn tail of %s: %w", path, err)
		}
	}
	_, statErr := os.Stat(path)
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eventlog: open %s: %w", path, err)
	}
	if created {
		// Make the new file's directory entry durable: without the parent
		// fsync a crash shortly after boot can lose the whole log file even
		// though every appended record was fsynced into it.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return newLog(f, seq, opts), nil
}

// Append persists one event, assigning and returning its sequence number.
// Every record carries a CRC-32 of its canonical encoding so silent disk
// corruption is detected at replay instead of being deserialized.
//
// On a durable log, Append returns only once the record has been written
// and fsynced; concurrent Appends share write+fsync batches through the
// group-commit pipeline. Once any write, flush or fsync fails, the log's
// durable tail is unknown: the failing appends report the failure, and
// every later append returns ErrFailed until the log is reopened. (A
// failed append keeps its sequence number — the record may be partially on
// disk — so reopening, which truncates the torn tail, is the only way to
// re-establish a consistent end of log.)
func (l *Log) Append(e Event) (int64, error) {
	seq, wait, err := l.AppendAsync(e)
	if err != nil {
		return 0, err
	}
	if err := wait(context.Background()); err != nil {
		return 0, err
	}
	return seq, nil
}

// waitDone is the no-op wait returned when the record is already as durable
// as the log's mode promises.
func waitDone(context.Context) error { return nil }

// AppendAsync validates and enqueues one event, returning its assigned
// sequence number and a wait function that blocks until the record is as
// durable as the log's mode promises (fsynced for durable logs, buffered
// otherwise). It exists so a caller holding its own ordering lock — the
// Recorder — can serialize "apply + enqueue" yet wait for the fsync outside
// that lock, letting the group-commit pipeline coalesce concurrent
// operations.
//
// The wait function honours its context: when the deadline expires or the
// context is cancelled before the record is durable, the wait returns the
// context's error and the caller may give up — but the append itself is
// already enqueued and will still reach disk with its sequence number, so
// an abandoned wait is "unknown outcome", exactly like a lost response on
// the wire (the idempotent mutation protocol makes retrying safe).
func (l *Log) AppendAsync(e Event) (int64, func(context.Context) error, error) {
	if err := e.validate(); err != nil {
		return 0, nil, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, nil, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, nil, err
	}
	l.seq++
	e.Seq = l.seq
	if err := l.encodeLocked(e); err != nil {
		// Nothing reached the file: the sequence number is safely reusable.
		l.seq--
		l.mu.Unlock()
		return 0, nil, err
	}
	seq := l.seq
	l.pendingCount++
	l.appends.Inc()
	switch {
	case !l.sync:
		// Buffered mode: hand the record to the bufio writer now; a write
		// failure here poisons the log like any durability failure. A
		// segmented log skips the bufio layer so rotation still sees every
		// record (the per-record write is one syscall either way at the
		// segment sizes in play).
		var werr error
		if l.seg != nil {
			werr = l.seg.writeBatch(l.pending.Bytes(), seq, seq)
		} else {
			_, werr = l.w.Write(l.pending.Bytes())
		}
		l.pending.Reset()
		l.pendingCount = 0
		if werr != nil {
			l.failLocked(fmt.Errorf("append: %v", werr))
			err := l.failed
			l.mu.Unlock()
			return 0, nil, err
		}
		l.mu.Unlock()
		return seq, waitDone, nil
	case l.ser:
		// Baseline mode: one write+fsync per append, under the lock.
		if err := l.commitLocked(); err != nil {
			l.mu.Unlock()
			return 0, nil, err
		}
		l.mu.Unlock()
		return seq, waitDone, nil
	default:
		l.work.Signal()
		l.mu.Unlock()
		return seq, func(ctx context.Context) error { return l.await(ctx, seq) }, nil
	}
}

// encodeLocked appends e's record bytes to the pending buffer: the JSON of
// the event with its CRC populated, newline-terminated — byte-identical to
// json.Marshal plus '\n'. All scratch buffers are reused, so a steady-state
// append allocates nothing. Callers hold l.mu.
func (l *Log) encodeLocked(e Event) error {
	l.crcBuf.Reset()
	l.scratch = e
	l.scratch.CRC = 0
	if err := l.crcEnc.Encode(&l.scratch); err != nil {
		return fmt.Errorf("eventlog: encode: %w", err)
	}
	canon := l.crcBuf.Bytes()
	// The encoder terminates the value with '\n'; the checksum covers the
	// canonical value bytes only.
	l.scratch.CRC = crc32.ChecksumIEEE(canon[:len(canon)-1])
	mark := l.pending.Len()
	if err := l.enc.Encode(&l.scratch); err != nil {
		l.pending.Truncate(mark)
		return fmt.Errorf("eventlog: encode: %w", err)
	}
	return nil
}

// failLocked poisons the log after a durability failure. Callers hold l.mu.
func (l *Log) failLocked(cause error) {
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %w (reopen to recover)", ErrFailed, cause)
	}
	l.notifyLocked()
	l.work.Broadcast()
}

// notifyLocked wakes every waiter by closing the current done channel and
// installing a fresh one. Callers hold l.mu.
func (l *Log) notifyLocked() {
	close(l.doneCh)
	l.doneCh = make(chan struct{})
}

// writeAll lands one encoded batch covering sequences [lo, hi] on the
// commit target: the segmented writer (which may rotate first) when one is
// attached, a plain append otherwise.
func (l *Log) writeAll(p []byte, lo, hi int64) error {
	if l.seg != nil {
		return l.seg.writeBatch(p, lo, hi)
	}
	_, err := l.f.Write(p)
	return err
}

// commitLocked flushes the pending buffer with one write+fsync. Callers
// hold l.mu; used by the serial baseline mode and by Close's final drain.
func (l *Log) commitLocked() error {
	if l.pending.Len() == 0 {
		return nil
	}
	count := l.pendingCount
	l.pendingCount = 0
	start := time.Now()
	err := l.writeAll(l.pending.Bytes(), l.seq-int64(count)+1, l.seq)
	l.pending.Reset()
	if err == nil {
		err = l.f.Sync()
	}
	l.fsyncSecs.Observe(time.Since(start).Seconds())
	if err != nil {
		l.failLocked(err)
		return l.failed
	}
	l.commits.Inc()
	l.batchSize.Observe(float64(count))
	l.durable = l.seq
	l.notifyLocked()
	return nil
}

// await blocks until seq is durable, the log has failed, or ctx is done.
// Abandoning the wait does not un-append the record; see AppendAsync.
func (l *Log) await(ctx context.Context, seq int64) error {
	for {
		l.mu.Lock()
		if l.durable >= seq {
			l.mu.Unlock()
			return nil
		}
		if l.failed != nil {
			err := l.failed
			l.mu.Unlock()
			return err
		}
		ch := l.doneCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// commitLoop is the group-commit pipeline: it swaps out the pending batch,
// writes it with one write+fsync, and releases every waiter whose record
// the batch carried. New appends accumulate into the other buffer while a
// commit is in flight, so the pipeline self-batches under load.
func (l *Log) commitLoop() {
	defer close(l.commExit)
	l.mu.Lock()
	for {
		for l.pending.Len() == 0 && !l.closed && l.failed == nil {
			l.work.Wait()
		}
		if l.failed != nil || (l.closed && l.pending.Len() == 0) {
			l.mu.Unlock()
			return
		}
		// Commit window: the waiters released by the previous commit are
		// runnable but may not have enqueued their next record yet, and
		// sealing the batch now would strand them on an extra fsync (the
		// observed steady state is batches of 1-2 even with many closed-loop
		// appenders). Yield while the batch keeps growing — each yield lets
		// every runnable appender encode — and seal once it stabilizes. An
		// idle log pays one ~100ns yield; the spin cap bounds added latency
		// under open-loop floods.
		for spins := 0; spins < 16 && !l.closed; spins++ {
			n := l.pendingCount
			l.mu.Unlock()
			runtime.Gosched()
			l.mu.Lock()
			if l.pendingCount == n || l.failed != nil {
				break
			}
		}
		if l.failed != nil || (l.closed && l.pending.Len() == 0) {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		count := l.pendingCount
		l.pending, l.spare = l.spare, nil // appenders write into the other buffer
		l.pendingCount = 0
		hi := l.seq
		l.mu.Unlock()

		sp := l.tracer.Start("wal.commit")
		sp.SetAttrInt("records", int64(count))
		start := time.Now()
		err := l.writeAll(batch.Bytes(), hi-int64(count)+1, hi)
		if err == nil {
			err = l.f.Sync()
		}
		l.fsyncSecs.Observe(time.Since(start).Seconds())
		sp.End()
		batch.Reset()

		l.mu.Lock()
		l.spare = batch
		if err != nil {
			l.failLocked(err)
			l.mu.Unlock()
			return
		}
		l.commits.Inc()
		l.batchSize.Observe(float64(count))
		l.durable = hi
		l.notifyLocked()
	}
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Close drains any in-flight commits, flushes buffered records and closes
// the log. Appends after Close return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.commExit != nil {
		// Let the committer drain the pending batch and exit.
		l.work.Broadcast()
		l.mu.Unlock()
		<-l.commExit
		l.mu.Lock()
	}
	err := l.failed
	if err == nil && !l.sync {
		if ferr := l.w.Flush(); ferr != nil {
			err = fmt.Errorf("eventlog: flush: %w", ferr)
		}
	}
	l.mu.Unlock()
	cerr := l.f.Close()
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("eventlog: close: %w", cerr)
	}
	return nil
}

// ReadAll reads every event from the log at path. A truncated final line
// (torn write from a crash) is tolerated and ignored, matching
// write-ahead-log recovery semantics; corruption elsewhere — including a
// CRC mismatch on a checksummed record — is an error.
func ReadAll(path string) ([]Event, error) {
	events, _, err := readAll(path)
	return events, err
}

// readAll is ReadAll plus the byte offset of the end of the last complete,
// valid record — the point Open truncates a torn tail back to.
func readAll(path string) ([]Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var events []Event
	var valid int64
	reader := bufio.NewReader(f)
	var prevSeq int64
	for {
		line, err := reader.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			var e Event
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				return nil, valid, fmt.Errorf("eventlog: corrupt event after seq %d: %w", prevSeq, jsonErr)
			}
			if e.Seq != prevSeq+1 {
				return nil, valid, fmt.Errorf("eventlog: sequence gap: %d follows %d", e.Seq, prevSeq)
			}
			if vErr := e.validate(); vErr != nil {
				return nil, valid, vErr
			}
			if e.CRC != 0 {
				// Checksummed record: verify against the canonical encoding.
				// Records without a CRC (older logs) replay unverified.
				want := e.CRC
				got, sumErr := e.checksum()
				if sumErr != nil {
					return nil, valid, sumErr
				}
				if got != want {
					return nil, valid, fmt.Errorf(
						"eventlog: checksum mismatch on seq %d: record is corrupt", e.Seq)
				}
				e.CRC = 0
			}
			prevSeq = e.Seq
			events = append(events, e)
			valid += int64(len(line))
			continue
		}
		if errors.Is(err, io.EOF) {
			// A partial line without a newline is a torn final write.
			return events, valid, nil
		}
		if err != nil {
			return nil, valid, fmt.Errorf("eventlog: read: %w", err)
		}
	}
}
