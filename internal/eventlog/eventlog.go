// Package eventlog provides durable, append-only persistence for the
// MELODY platform: every state-changing platform operation is recorded as a
// JSON-lines event, and a crashed platform is rebuilt by replaying the log
// into a fresh instance. Replay is exact because the platform is
// deterministic given its inputs (the auction breaks ties by ID and the
// quality model is a closed-form recursion).
package eventlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Kind discriminates event payloads.
type Kind string

// The event kinds, one per state-changing platform operation.
const (
	KindRegister Kind = "register"
	KindOpenRun  Kind = "open_run"
	KindBid      Kind = "bid"
	KindClose    Kind = "close_auction"
	KindScore    Kind = "score"
	KindFinish   Kind = "finish_run"
)

// TaskRecord is a task inside an open_run event.
type TaskRecord struct {
	ID        string  `json:"id"`
	Threshold float64 `json:"threshold"`
}

// Event is one durable platform operation. Fields are populated according
// to Kind; unused fields are omitted from the encoding.
type Event struct {
	Seq       int64        `json:"seq"`
	Kind      Kind         `json:"kind"`
	Worker    string       `json:"worker,omitempty"`
	Task      string       `json:"task,omitempty"`
	Cost      float64      `json:"cost,omitempty"`
	Frequency int          `json:"frequency,omitempty"`
	Score     float64      `json:"score,omitempty"`
	Budget    float64      `json:"budget,omitempty"`
	Tasks     []TaskRecord `json:"tasks,omitempty"`
	// CRC is the IEEE CRC-32 of the record's canonical encoding (the JSON
	// of the event with CRC itself zeroed), detecting silent on-disk
	// corruption. Zero means "no checksum": records written before
	// checksumming was introduced still replay.
	CRC uint32 `json:"crc,omitempty"`
}

// checksum computes the event's CRC over its canonical encoding.
func (e Event) checksum() (uint32, error) {
	e.CRC = 0
	buf, err := json.Marshal(e)
	if err != nil {
		return 0, fmt.Errorf("eventlog: encode: %w", err)
	}
	return crc32.ChecksumIEEE(buf), nil
}

// validate checks kind-specific invariants before an event is persisted.
func (e Event) validate() error {
	switch e.Kind {
	case KindRegister:
		if e.Worker == "" {
			return errors.New("eventlog: register event without worker")
		}
	case KindOpenRun:
		if len(e.Tasks) == 0 {
			return errors.New("eventlog: open_run event without tasks")
		}
	case KindBid:
		if e.Worker == "" {
			return errors.New("eventlog: bid event without worker")
		}
	case KindScore:
		if e.Worker == "" || e.Task == "" {
			return errors.New("eventlog: score event without worker or task")
		}
	case KindClose, KindFinish:
	default:
		return fmt.Errorf("eventlog: unknown event kind %q", e.Kind)
	}
	return nil
}

// Log is an append-only JSON-lines event log. Not safe for concurrent use;
// the Recorder serializes access.
type Log struct {
	f    *os.File
	w    *bufio.Writer
	seq  int64
	sync bool
}

// Open opens (creating if needed) the log at path in append mode and scans
// existing events to resume the sequence number. When syncEveryAppend is
// true every Append fsyncs before returning (write-ahead-log durability);
// otherwise appends are buffered and flushed on Close.
//
// A torn final record (a partial line left by a crash mid-write) is
// truncated away before appending resumes, so the next record never lands
// after garbage and a later replay sees a clean log.
func Open(path string, syncEveryAppend bool) (*Log, error) {
	events, valid, err := readAll(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	var seq int64
	if n := len(events); n > 0 {
		seq = events[n-1].Seq
	}
	if info, statErr := os.Stat(path); statErr == nil && info.Size() > valid {
		// Crash recovery: drop the torn tail so appends continue from the
		// end of the last complete record.
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("eventlog: truncate torn tail of %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eventlog: open %s: %w", path, err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), seq: seq, sync: syncEveryAppend}, nil
}

// Append persists one event, assigning and returning its sequence number.
// Every record carries a CRC-32 of its canonical encoding so silent disk
// corruption is detected at replay instead of being deserialized.
func (l *Log) Append(e Event) (int64, error) {
	if err := e.validate(); err != nil {
		return 0, err
	}
	l.seq++
	e.Seq = l.seq
	crc, err := e.checksum()
	if err != nil {
		l.seq--
		return 0, err
	}
	e.CRC = crc
	buf, err := json.Marshal(e)
	if err != nil {
		l.seq--
		return 0, fmt.Errorf("eventlog: encode: %w", err)
	}
	if _, err := l.w.Write(append(buf, '\n')); err != nil {
		l.seq--
		return 0, fmt.Errorf("eventlog: append: %w", err)
	}
	if l.sync {
		if err := l.w.Flush(); err != nil {
			return 0, fmt.Errorf("eventlog: flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("eventlog: fsync: %w", err)
		}
	}
	return e.Seq, nil
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() int64 { return l.seq }

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("eventlog: flush: %w", err)
	}
	return l.f.Close()
}

// ReadAll reads every event from the log at path. A truncated final line
// (torn write from a crash) is tolerated and ignored, matching
// write-ahead-log recovery semantics; corruption elsewhere — including a
// CRC mismatch on a checksummed record — is an error.
func ReadAll(path string) ([]Event, error) {
	events, _, err := readAll(path)
	return events, err
}

// readAll is ReadAll plus the byte offset of the end of the last complete,
// valid record — the point Open truncates a torn tail back to.
func readAll(path string) ([]Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var events []Event
	var valid int64
	reader := bufio.NewReader(f)
	var prevSeq int64
	for {
		line, err := reader.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			var e Event
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				return nil, valid, fmt.Errorf("eventlog: corrupt event after seq %d: %w", prevSeq, jsonErr)
			}
			if e.Seq != prevSeq+1 {
				return nil, valid, fmt.Errorf("eventlog: sequence gap: %d follows %d", e.Seq, prevSeq)
			}
			if vErr := e.validate(); vErr != nil {
				return nil, valid, vErr
			}
			if e.CRC != 0 {
				// Checksummed record: verify against the canonical encoding.
				// Records without a CRC (older logs) replay unverified.
				want := e.CRC
				got, sumErr := e.checksum()
				if sumErr != nil {
					return nil, valid, sumErr
				}
				if got != want {
					return nil, valid, fmt.Errorf(
						"eventlog: checksum mismatch on seq %d: record is corrupt", e.Seq)
				}
				e.CRC = 0
			}
			prevSeq = e.Seq
			events = append(events, e)
			valid += int64(len(line))
			continue
		}
		if errors.Is(err, io.EOF) {
			// A partial line without a newline is a torn final write.
			return events, valid, nil
		}
		if err != nil {
			return nil, valid, fmt.Errorf("eventlog: read: %w", err)
		}
	}
}
