package eventlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"melody/internal/obs"
)

// Failpoint names the storage engine consults (via SegmentedOptions.
// Failpoint) so chaos tests can kill the process at the exact moments crash
// recovery must survive. See internal/chaos.Failpoints.
const (
	// FailpointSegmentAppend fires halfway through a segment batch write,
	// leaving a genuine torn tail on disk.
	FailpointSegmentAppend = "wal.segment.append"
	// FailpointRotateRename fires after the new segment's header is staged
	// in a temp file but before the rename installs it.
	FailpointRotateRename = "wal.rotate.rename"
	// FailpointSnapshotWrite fires halfway through staging a snapshot temp
	// file, before the rename installs it.
	FailpointSnapshotWrite = "wal.snapshot.write"
)

// SegmentMagic identifies a segment header line.
const SegmentMagic = "melodyseg"

// segmentVersion guards the segment header encoding.
const segmentVersion = 1

// SegmentHeader is the first line of every segment file: a CRC-framed JSON
// record naming the format, the sequence number of the first event record
// the segment holds, and the checksum of the previous segment at seal time
// (zero for the head of the chain), chaining segments together so a replaced
// or reordered file is detected at recovery.
type SegmentHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	Base    int64  `json:"base"`
	// PrevCRC is the IEEE CRC-32 of the entire previous segment file at the
	// moment this segment was created; zero for the first segment.
	PrevCRC uint32 `json:"prev_crc,omitempty"`
	// CRC is the IEEE CRC-32 of the header's canonical encoding (the JSON
	// with CRC itself zeroed).
	CRC uint32 `json:"crc"`
}

// checksum computes the header's CRC over its canonical encoding.
func (h SegmentHeader) checksum() (uint32, error) {
	h.CRC = 0
	buf, err := json.Marshal(h)
	if err != nil {
		return 0, fmt.Errorf("eventlog: encode segment header: %w", err)
	}
	return crc32.ChecksumIEEE(buf), nil
}

// EncodeSegmentHeader renders the header as its on-disk line (JSON plus a
// trailing newline) with the CRC populated.
func EncodeSegmentHeader(h SegmentHeader) ([]byte, error) {
	if h.Magic == "" {
		h.Magic = SegmentMagic
	}
	if h.Version == 0 {
		h.Version = segmentVersion
	}
	crc, err := h.checksum()
	if err != nil {
		return nil, err
	}
	h.CRC = crc
	buf, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("eventlog: encode segment header: %w", err)
	}
	return append(buf, '\n'), nil
}

// DecodeSegmentHeader parses and verifies one segment header line (with or
// without its trailing newline). It never panics on malformed input.
func DecodeSegmentHeader(line []byte) (SegmentHeader, error) {
	var h SegmentHeader
	line = bytes.TrimSuffix(line, []byte("\n"))
	if err := json.Unmarshal(line, &h); err != nil {
		return SegmentHeader{}, fmt.Errorf("eventlog: corrupt segment header: %w", err)
	}
	if h.Magic != SegmentMagic {
		return SegmentHeader{}, fmt.Errorf("eventlog: segment magic %q (want %q)", h.Magic, SegmentMagic)
	}
	if h.Version != segmentVersion {
		return SegmentHeader{}, fmt.Errorf("eventlog: segment version %d (want %d)", h.Version, segmentVersion)
	}
	if h.Base < 1 {
		return SegmentHeader{}, fmt.Errorf("eventlog: segment base %d must be positive", h.Base)
	}
	want := h.CRC
	got, err := h.checksum()
	if err != nil {
		return SegmentHeader{}, err
	}
	if got != want {
		return SegmentHeader{}, errors.New("eventlog: segment header checksum mismatch")
	}
	return h, nil
}

// segmentName renders the canonical file name of the segment whose first
// record is seq.
func segmentName(seq int64) string { return fmt.Sprintf("seg-%016d.wal", seq) }

// parseSegmentName extracts the base sequence from a segment file name.
func parseSegmentName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".wal")
	if !ok || len(digits) != 16 {
		return 0, false
	}
	base, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || base < 1 {
		return 0, false
	}
	return base, true
}

// dirSyncs counts directory fsyncs, so the crash-durability regression
// tests can assert that every creation and rename path syncs the directory
// entry (the fix for the gap where a crash right after rename could lose
// the file name even though its bytes were durable).
var dirSyncs atomic.Int64

// syncDir fsyncs the directory itself, making a just-created or
// just-renamed directory entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("eventlog: open dir %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("eventlog: fsync dir %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("eventlog: close dir %s: %w", dir, cerr)
	}
	dirSyncs.Add(1)
	return nil
}

// sealedSegment is the bookkeeping for an immutable (rotated-out) segment.
type sealedSegment struct {
	name string
	base int64
	last int64 // sequence of the final record
	size int64
	crc  uint32 // CRC of the whole file; zero when recovery skipped reading it
}

// segmentWriter is the rotation-aware commit target backing a SegmentedLog:
// it appends record batches to the active segment file, seals the segment
// and starts a new one when the configured size is exceeded, and tracks the
// durable (fsynced) byte count replication streams from. Batches never
// split across segments — rotation happens between batches — so each
// segment is independently recoverable with the single-file torn-tail scan.
//
// The commit paths call writeBatch/Sync from one goroutine at a time (the
// committer, or the appender under the log lock in serial/buffered modes);
// the mutex exists for Manifest and ReadFileRange, which run on replication
// goroutines.
type segmentWriter struct {
	mu        sync.Mutex
	dir       string
	limit     int64
	failpoint func(string) error

	f         *os.File
	base      int64 // active segment's first record sequence
	last      int64 // last sequence written to the active segment
	size      int64 // bytes written to the active segment (header included)
	committed int64 // bytes of the active segment known fsynced
	crc       uint32
	sealed    []sealedSegment

	segments    *obs.Counter
	activeBytes *obs.Gauge
	tracer      *obs.Tracer
}

// hit consults the armed failpoints; nil hook means none.
func (sw *segmentWriter) hit(name string) error {
	if sw.failpoint == nil {
		return nil
	}
	return sw.failpoint(name)
}

// createSegment stages a new segment file with a durable header and
// installs it atomically: temp file, fsync, rename, directory fsync. A
// crash at any point leaves either no new segment or a complete one.
func createSegment(dir string, h SegmentHeader, hook func(string) error) (*os.File, int64, uint32, error) {
	line, err := EncodeSegmentHeader(h)
	if err != nil {
		return nil, 0, 0, err
	}
	final := filepath.Join(dir, segmentName(h.Base))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, line, 0o644); err != nil {
		return nil, 0, 0, fmt.Errorf("eventlog: stage segment %s: %w", final, err)
	}
	if tf, err := os.OpenFile(tmp, os.O_WRONLY, 0); err == nil {
		serr := tf.Sync()
		tf.Close()
		if serr != nil {
			return nil, 0, 0, fmt.Errorf("eventlog: fsync staged segment %s: %w", tmp, serr)
		}
	} else {
		return nil, 0, 0, fmt.Errorf("eventlog: reopen staged segment %s: %w", tmp, err)
	}
	if hook != nil {
		if err := hook(FailpointRotateRename); err != nil {
			// Simulated crash between staging and rename: the temp file is
			// left behind, exactly the debris recovery must sweep.
			return nil, 0, 0, err
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, 0, 0, fmt.Errorf("eventlog: install segment %s: %w", final, err)
	}
	if err := syncDir(dir); err != nil {
		return nil, 0, 0, err
	}
	f, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("eventlog: open segment %s: %w", final, err)
	}
	return f, int64(len(line)), crc32.ChecksumIEEE(line), nil
}

// writeBatch appends one encoded record batch covering sequences [lo, hi],
// rotating to a fresh segment first when the active one is full.
func (sw *segmentWriter) writeBatch(p []byte, lo, hi int64) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.limit > 0 && sw.last >= sw.base && sw.size+int64(len(p)) > sw.limit {
		// The active segment holds at least one record and this batch would
		// overflow it: seal and rotate. An oversized batch landing on an
		// empty segment grows it past the limit instead — batches are never
		// split across segment boundaries.
		if err := sw.rotateLocked(lo); err != nil {
			return err
		}
	}
	if err := sw.hit(FailpointSegmentAppend); err != nil {
		// Simulated crash mid-write: half the batch reaches the file, the
		// torn tail recovery truncates.
		half := p[:len(p)/2]
		if _, werr := sw.f.Write(half); werr == nil {
			sw.size += int64(len(half))
		}
		return err
	}
	if _, err := sw.f.Write(p); err != nil {
		return err
	}
	sw.size += int64(len(p))
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	sw.last = hi
	sw.activeBytes.Set(float64(sw.size))
	return nil
}

// rotateLocked seals the active segment (fsync, record its chain CRC) and
// installs a fresh one whose base is the next record's sequence.
func (sw *segmentWriter) rotateLocked(nextSeq int64) error {
	sp := sw.tracer.Start("wal.rotate")
	defer sp.End()
	sp.SetAttrInt("sealed_bytes", sw.size)
	sp.SetAttrInt("next_base", nextSeq)
	if err := sw.f.Sync(); err != nil {
		return fmt.Errorf("eventlog: seal segment %s: %w", segmentName(sw.base), err)
	}
	sw.committed = sw.size
	f, hdrLen, hdrCRC, err := createSegment(sw.dir, SegmentHeader{
		Magic:   SegmentMagic,
		Version: segmentVersion,
		Base:    nextSeq,
		PrevCRC: sw.crc,
	}, sw.failpoint)
	if err != nil {
		return err
	}
	if cerr := sw.f.Close(); cerr != nil {
		f.Close()
		return fmt.Errorf("eventlog: close sealed segment: %w", cerr)
	}
	sw.sealed = append(sw.sealed, sealedSegment{
		name: segmentName(sw.base),
		base: sw.base,
		last: sw.last,
		size: sw.size,
		crc:  sw.crc,
	})
	sw.f = f
	sw.base = nextSeq
	sw.last = nextSeq - 1
	sw.size = hdrLen
	sw.committed = hdrLen
	sw.crc = hdrCRC
	sw.segments.Inc()
	sw.activeBytes.Set(float64(sw.size))
	return nil
}

// Write satisfies commitTarget; the segmented commit paths go through
// writeBatch instead, so this plain append exists only for interface
// completeness (no rotation, no sequence tracking).
func (sw *segmentWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	n, err := sw.f.Write(p)
	sw.size += int64(n)
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Sync fsyncs the active segment and advances the durable byte mark.
func (sw *segmentWriter) Sync() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if err := sw.f.Sync(); err != nil {
		return err
	}
	sw.committed = sw.size
	return nil
}

// Close closes the active segment file.
func (sw *segmentWriter) Close() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.f.Close()
}

// readSegment scans one segment file: header first, then event records with
// the single-file scan's integrity rules (contiguous sequences from the
// header's base, per-record CRCs). It returns the events, the byte offset
// of the end of the last complete record (the torn-tail truncation point)
// and the CRC of the valid prefix (the chain value the next segment's
// header must carry).
func readSegment(path string) (SegmentHeader, []Event, int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return SegmentHeader{}, nil, 0, 0, err
	}
	defer f.Close()

	reader := bufio.NewReader(f)
	headerLine, err := reader.ReadBytes('\n')
	if err != nil {
		// A segment is installed only after its header is durable, so a
		// torn or missing header is corruption, not a crash artifact.
		return SegmentHeader{}, nil, 0, 0, fmt.Errorf("eventlog: segment %s: unreadable header: %w", path, err)
	}
	header, err := DecodeSegmentHeader(headerLine)
	if err != nil {
		return SegmentHeader{}, nil, 0, 0, fmt.Errorf("eventlog: segment %s: %w", path, err)
	}

	var events []Event
	valid := int64(len(headerLine))
	crc := crc32.ChecksumIEEE(headerLine)
	prevSeq := header.Base - 1
	for {
		line, err := reader.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			var e Event
			if jsonErr := json.Unmarshal(line, &e); jsonErr != nil {
				return header, nil, valid, crc, fmt.Errorf("eventlog: segment %s: corrupt event after seq %d: %w", path, prevSeq, jsonErr)
			}
			if e.Seq != prevSeq+1 {
				return header, nil, valid, crc, fmt.Errorf("eventlog: segment %s: sequence gap: %d follows %d", path, e.Seq, prevSeq)
			}
			if vErr := e.validate(); vErr != nil {
				return header, nil, valid, crc, vErr
			}
			if e.CRC != 0 {
				want := e.CRC
				got, sumErr := e.checksum()
				if sumErr != nil {
					return header, nil, valid, crc, sumErr
				}
				if got != want {
					return header, nil, valid, crc, fmt.Errorf("eventlog: segment %s: checksum mismatch on seq %d", path, e.Seq)
				}
				e.CRC = 0
			}
			prevSeq = e.Seq
			events = append(events, e)
			valid += int64(len(line))
			crc = crc32.Update(crc, crc32.IEEETable, line)
			continue
		}
		if errors.Is(err, io.EOF) {
			// A partial final line is a torn write; the caller decides
			// whether that is tolerable (active segment) or fatal (sealed).
			return header, events, valid, crc, nil
		}
		if err != nil {
			return header, events, valid, crc, fmt.Errorf("eventlog: segment %s: read: %w", path, err)
		}
	}
}

// scanSegmentDir lists the segment files in dir sorted by base sequence,
// failing on duplicate or malformed bases.
func scanSegmentDir(dir string) ([]sealedSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: scan %s: %w", dir, err)
	}
	var segs []sealedSegment
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		base, ok := parseSegmentName(ent.Name())
		if !ok {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("eventlog: stat %s: %w", ent.Name(), err)
		}
		segs = append(segs, sealedSegment{name: ent.Name(), base: base, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	for i := 1; i < len(segs); i++ {
		if segs[i].base == segs[i-1].base {
			return nil, fmt.Errorf("eventlog: duplicate segment base %d", segs[i].base)
		}
	}
	return segs, nil
}

// removeTempDebris sweeps *.tmp files a crash mid-install left behind.
func removeTempDebris(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("eventlog: scan %s: %w", dir, err)
	}
	removed := 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
			return removed, fmt.Errorf("eventlog: sweep %s: %w", ent.Name(), err)
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
